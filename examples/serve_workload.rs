//! Multi-threaded mock request loop against the `OracleService` serving
//! layer: register once, execute from several client threads, report
//! throughput and cache hit rates.
//!
//! This is the production shape the ROADMAP's north star describes — many
//! clients, one shared tuned state. Each matrix is tuned, converted and
//! planned exactly once at registration; after that, every request from
//! every thread replays the shared `ExecPlan` with zero locks and zero
//! allocation (outputs go to per-thread workspaces). A slice of requests
//! also goes down the per-call `tune_and_spmv` path to show the decision
//! cache absorbing repeat structures.
//!
//! The per-stage report at the end comes from the service's unified
//! metrics registry (`serve.request_ns`, `serve.plan_ns`,
//! `pool.queue_wait_ns`) — no hand-rolled sampler threads; the runtime
//! itself is the instrument.
//!
//! ```text
//! cargo run --release --example serve_workload [clients] [requests-per-client]
//! ```

use morpheus_repro::corpus::gen::banded::tridiagonal;
use morpheus_repro::corpus::gen::powerlaw::zipf_rows;
use morpheus_repro::corpus::gen::stencil::poisson2d;
use morpheus_repro::machine::{systems, Backend, VirtualEngine};
use morpheus_repro::morpheus::{DynamicMatrix, Workspace};
use morpheus_repro::oracle::{Oracle, RunFirstTuner};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let clients: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let requests_per_client: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(2000);

    let mut rng = StdRng::seed_from_u64(7);
    let matrices = vec![
        ("tridiagonal", DynamicMatrix::from(tridiagonal(20_000))),
        ("zipf", DynamicMatrix::from(zipf_rows(8_000, 60_000, 1.1, &mut rng))),
        ("poisson2d", DynamicMatrix::from(poisson2d(90, 90))),
    ];

    let service = Arc::new(
        Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(1))
            .build_service()
            .expect("engine and tuner set"),
    );

    // Register once: the whole tuning + conversion + planning cost, paid
    // here, amortises over every request below.
    let t0 = Instant::now();
    let handles: Vec<_> = matrices
        .iter()
        .map(|(name, m)| {
            let h = service.register(m.clone()).expect("register");
            println!(
                "registered {name:<12} {}x{} ({} nnz) -> {} [{}]",
                h.nrows(),
                h.ncols(),
                h.nnz(),
                h.format_id(),
                if h.report().cache_hit { "cached decision" } else { "fresh decision" },
            );
            h
        })
        .collect();
    println!("registration took {:.2} ms total\n", t0.elapsed().as_secs_f64() * 1e3);

    let inputs: Vec<Vec<f64>> =
        matrices.iter().map(|(_, m)| (0..m.ncols()).map(|i| 1.0 + (i % 11) as f64 * 0.5).collect()).collect();
    let served = AtomicU64::new(0);
    let tuned = AtomicU64::new(0);

    // The mock request loop: every client hammers the shared service.
    // Most requests ride a registered handle; every 16th is a per-call
    // tune of a fresh structurally-identical matrix, exercising the
    // decision cache instead. Pool pressure is read afterwards from the
    // registry's `pool.queue_wait_ns` histogram — every job dispatched to
    // the worker pool gets its queue wait recorded by the runtime, which
    // replaces the sampler thread earlier revisions ran alongside the
    // clients.
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let service = Arc::clone(&service);
            let (handles, inputs, matrices) = (&handles, &inputs, &matrices);
            let (served, tuned) = (&served, &tuned);
            s.spawn(move || {
                let mut ws = Workspace::new();
                for r in 0..requests_per_client {
                    let mi = (r + c) % handles.len();
                    if r % 16 == 15 {
                        let mut m = matrices[mi].1.clone();
                        let mut y = vec![0.0f64; m.nrows()];
                        let report =
                            service.tune_and_spmv(&mut m, &inputs[mi], &mut y).expect("tune request");
                        assert!(report.cache_hit, "repeat structures must be cache hits");
                        tuned.fetch_add(1, Ordering::Relaxed);
                    } else {
                        let y =
                            service.spmv_into(&handles[mi], &inputs[mi], &mut ws).expect("handle request");
                        std::hint::black_box(y);
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();

    let total = served.load(Ordering::Relaxed) + tuned.load(Ordering::Relaxed);
    // One coherent snapshot instead of racing four accessors.
    let snap = service.snapshot();
    let (stats, decisions, plans) = (snap.serve, snap.decisions, snap.plans);
    println!("{clients} client(s) x {requests_per_client} requests: {total} served in {wall:.3} s");
    println!("  throughput:        {:>10.0} req/s", total as f64 / wall);
    println!("  handle requests:   {:>10}", stats.handle_requests);
    println!("  per-call tunes:    {:>10}", tuned.load(Ordering::Relaxed));
    println!("  busy fallbacks:    {:>10}", stats.pool_busy_fallbacks);
    println!(
        "  decision cache:    {:>10.1}% hit rate ({} hits / {} lookups)",
        decisions.hit_rate() * 100.0,
        decisions.hits,
        decisions.hits + decisions.misses
    );
    println!("  plan cache:        {:>10.1}% hit rate ({} entries)", plans.hit_rate() * 100.0, plans.len);

    // The per-stage breakdown, straight from the unified registry.
    let metrics = service.obs_snapshot().metrics;
    let us = |ns: u64| ns as f64 / 1e3;
    println!("\nstage latencies (registry histograms):");
    for name in ["serve.request_ns", "serve.plan_ns", "pool.queue_wait_ns"] {
        let h = metrics.hist(name);
        println!(
            "  {name:<20} {:>8} samples  p50 {:>9.1} us  p99 {:>9.1} us  max {:>9.1} us",
            h.count,
            us(h.p50_ns()),
            us(h.p99_ns()),
            us(h.max_ns)
        );
    }
    println!("  pool.jobs_queued     {:>8} now", metrics.gauge("pool.jobs_queued"));
}
