//! Conjugate-gradient solver whose SpMV format is chosen by the Oracle —
//! the paper's motivating use-case ("solving a time-dependent PDE ... would
//! require many thousands of SpMV operations", §VII-E, so the tuning cost
//! amortises away).
//!
//! Solves the 2D Poisson system on an `nx x nx` grid twice — once pinned to
//! CSR, once with the auto-selected format — and reports iterations, the
//! residual and host wall time for the solve. All vector updates run on the
//! threaded backend via `morpheus::vecops`.
//!
//! ```text
//! cargo run --release --example cg_solver [nx]
//! ```

use morpheus_repro::machine::{systems, Backend, VirtualEngine};
use morpheus_repro::morpheus::vecops::{axpy_threaded, dot_threaded, norm2_threaded, xpby_threaded};
use morpheus_repro::morpheus::{ConvertOptions, DynamicMatrix, ExecPlan, FormatId};
use morpheus_repro::oracle::{Oracle, RunFirstTuner};
use morpheus_repro::parallel::global_pool;

/// Unpreconditioned CG on `A x = b`; returns (iterations, final residual).
fn cg(a: &DynamicMatrix<f64>, b: &[f64], x: &mut [f64], tol: f64, max_iters: usize) -> (usize, f64) {
    let n = b.len();
    let pool = global_pool();
    // Plan once, replay every iteration — the planned execution layer's
    // intended shape for solver loops: the thread schedule is a per-matrix
    // artifact, so it is not re-derived inside the hot loop.
    let plan = ExecPlan::build(a, pool.num_threads(), None);
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0f64; n];
    let mut rsold = dot_threaded(&r, &r, pool);
    let rs0 = rsold.sqrt().max(1e-300);
    for it in 0..max_iters {
        plan.spmv(a, &p, &mut ap, pool).expect("plan was built for this matrix");
        let pap = dot_threaded(&p, &ap, pool);
        let alpha = rsold / pap;
        axpy_threaded(alpha, &p, x, pool);
        axpy_threaded(-alpha, &ap, &mut r, pool);
        let rsnew = dot_threaded(&r, &r, pool);
        if rsnew.sqrt() / rs0 < tol {
            return (it + 1, rsnew.sqrt());
        }
        xpby_threaded(&r, rsnew / rsold, &mut p, pool);
        rsold = rsnew;
    }
    (max_iters, norm2_threaded(&r, pool))
}

fn solve_and_time(a: &DynamicMatrix<f64>, b: &[f64]) -> (usize, f64, std::time::Duration) {
    let mut x = vec![0.0f64; b.len()];
    let t0 = std::time::Instant::now();
    let (iters, resid) = cg(a, b, &mut x, 1e-8, 4000);
    (iters, resid, t0.elapsed())
}

fn main() {
    let nx: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(192);
    let matrix = DynamicMatrix::from(morpheus_corpus::gen::stencil::poisson2d(nx, nx));
    let n = matrix.nrows();
    let b = vec![1.0f64; n];
    println!("2D Poisson on a {nx}x{nx} grid: {} unknowns, {} non-zeros", n, matrix.nnz());

    // Baseline: CSR, the general-purpose default.
    let csr = matrix.to_format(FormatId::Csr, &ConvertOptions::default()).unwrap();
    let (it_csr, res_csr, t_csr) = solve_and_time(&csr, &b);
    println!("CSR     : {it_csr} iterations, residual {res_csr:.2e}, wall {t_csr:.2?}");

    // Auto-tuned: an Oracle session picks the format for the A64FX-like
    // target (the session would also serve every further system matrix of a
    // time-dependent PDE, cache-amortised).
    let mut tuned = matrix.clone();
    let mut oracle = Oracle::builder()
        .engine(VirtualEngine::new(systems::a64fx(), Backend::OpenMp))
        .tuner(RunFirstTuner::new(5))
        .build()
        .unwrap();
    let engine = oracle.engine().clone();
    let report = oracle.tune(&mut tuned).unwrap();
    let (it_tuned, res_tuned, t_tuned) = solve_and_time(&tuned, &b);
    println!(
        "{:<8}: {it_tuned} iterations, residual {res_tuned:.2e}, wall {t_tuned:.2?}  (selected for {})",
        report.chosen.to_string(),
        engine.label()
    );

    assert_eq!(it_csr, it_tuned, "format switching must not change the math");

    // The interesting number is the *target's* speedup: the tuner optimised
    // for the simulated A64FX, not for this build machine.
    let analysis = morpheus_repro::machine::analyze(&tuned);
    let modelled = engine.spmv_time(FormatId::Csr, &analysis) / engine.spmv_time(report.chosen, &analysis);
    println!("modelled SpMV speedup on {}: {modelled:.2}x", engine.label());
    let host = t_csr.as_secs_f64() / t_tuned.as_secs_f64();
    println!(
        "host wall ratio: {host:.2}x (informational — this machine is not an A64FX; \
         the right format is hardware-specific, which is the paper's point)"
    );
}
