//! The full Oracle life-cycle in miniature (Figure 1, both stages):
//!
//! **offline** — generate a small corpus, run profiling, extract features,
//! train a random forest, export it to a model file;
//! **online** — load the model into a `RandomForestTuner`, tune unseen
//! matrices, and compare its picks against the true (profiled) optimum.
//!
//! ```text
//! cargo run --release --example train_and_predict
//! ```

use morpheus_repro::corpus::CorpusSpec;
use morpheus_repro::machine::{analyze, systems, Backend, VirtualEngine};
use morpheus_repro::ml::{Dataset, ForestParams, RandomForest};
use morpheus_repro::morpheus::format::FORMAT_COUNT;
use morpheus_repro::morpheus::DynamicMatrix;
use morpheus_repro::oracle::model_db::ModelDatabase;
use morpheus_repro::oracle::{FeatureVector, Oracle, NUM_FEATURES};

fn main() {
    // ---------------- offline stage ----------------
    let spec = CorpusSpec { n_matrices: 160, ..CorpusSpec::small(160) };
    let engine = VirtualEngine::new(systems::cirrus(), Backend::Cuda);
    println!("profiling {} matrices for {} ...", spec.n_matrices, engine.label());

    let mut train = Dataset::empty(NUM_FEATURES, FORMAT_COUNT, vec![]).unwrap();
    let mut held_out = Vec::new();
    for entry in spec.iter() {
        let m = DynamicMatrix::from(entry.matrix);
        let analysis = analyze(&m);
        let features = FeatureVector::from_stats(&analysis.stats);
        let optimal = engine.profile(&analysis).optimal;
        if entry.is_test {
            held_out.push((entry.name, m, features, optimal));
        } else {
            train.push(features.as_slice(), optimal.index()).unwrap();
        }
    }
    println!("training random forest on {} samples ...", train.len());
    let forest = RandomForest::fit(&train, &ForestParams { n_estimators: 30, seed: 1, ..Default::default() })
        .expect("fit");

    // Export to the model database, exactly as Sparse.Tree would.
    let db_dir = std::env::temp_dir().join("morpheus-example-models");
    let db = ModelDatabase::new(&db_dir);
    let path = db.save_forest("Cirrus", Backend::Cuda, &forest).expect("save model");
    println!("model written to {}", path.display());

    // ---------------- online stage ----------------
    // One session serves the whole held-out stream: load the model once,
    // let the decision cache absorb repeated structures.
    let tuner = db.load_forest_tuner("Cirrus", Backend::Cuda).expect("load model");
    let mut oracle = Oracle::builder().engine(engine).tuner(tuner).build().expect("configured");
    let mut hits = 0usize;
    let mut total = 0usize;
    println!("\ntuning {} held-out matrices:", held_out.len());
    for (name, mut m, _features, optimal) in held_out {
        let report = oracle.tune(&mut m).expect("tune");
        total += 1;
        if report.chosen == optimal {
            hits += 1;
        } else {
            println!(
                "  {name:<24} predicted {:<4} optimal {:<4} (miss)",
                report.chosen.name(),
                optimal.name()
            );
        }
    }
    println!("selection accuracy on held-out matrices: {hits}/{total}");
    let stats = oracle.cache_stats();
    println!("decision cache: {} hits / {} misses over the stream", stats.hits, stats.misses);
    let _ = std::fs::remove_dir_all(&db_dir);
}
