//! End-to-end observability dump: drive mixed direct + ingress traffic
//! through an `OracleService`, then print everything the observability
//! subsystem exposes — the text exposition of the unified metrics
//! registry, the JSON snapshot, one request's span tree, and the
//! slow-request flight recorder.
//!
//! ```text
//! cargo run --release --example obs_dump [--text | --json]
//! ```
//!
//! With `--text` only the machine-readable text exposition is printed
//! (the scrape surface — CI parses it back through
//! `obs::expose::parse_text`); with `--json` only the JSON snapshot.

use morpheus_repro::corpus::gen::banded::tridiagonal;
use morpheus_repro::corpus::gen::powerlaw::zipf_rows;
use morpheus_repro::machine::{systems, Backend, VirtualEngine};
use morpheus_repro::morpheus::DynamicMatrix;
use morpheus_repro::oracle::obs::expose::{metric_lines, render_flight_json, render_json, render_text};
use morpheus_repro::oracle::{Ingress, IngressConfig, IngressError, ObsConfig, Oracle, RunFirstTuner};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let text_only = args.iter().any(|a| a == "--text");
    let json_only = args.iter().any(|a| a == "--json");
    let quiet = text_only || json_only;

    let mut rng = StdRng::seed_from_u64(17);
    let matrices = [
        DynamicMatrix::from(tridiagonal(6_000)),
        DynamicMatrix::from(zipf_rows(3_000, 24_000, 1.1, &mut rng)),
    ];

    // Coarse tracing is the default; add a slow-request threshold so the
    // flight recorder also captures outliers on deadline-less traffic.
    let service = Arc::new(
        Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(1))
            .workers(2)
            .observability(ObsConfig {
                slow_threshold: Some(Duration::from_millis(5)),
                ..ObsConfig::default()
            })
            .build_service()
            .expect("engine and tuner set"),
    );
    let handles: Vec<_> = matrices.iter().map(|m| service.register(m.clone()).expect("register")).collect();
    let inputs: Vec<Vec<f64>> =
        matrices.iter().map(|m| (0..m.ncols()).map(|i| 1.0 + (i % 7) as f64 * 0.5).collect()).collect();

    // Direct registered-path traffic (serve.* metrics).
    for round in 0..32 {
        let mi = round % handles.len();
        let mut y = vec![0.0f64; handles[mi].nrows()];
        service.spmv(&handles[mi], &inputs[mi], &mut y).expect("handle spmv");
    }

    // Ingress traffic (ingress.* metrics + request span trees): bursts
    // against one handle so the coalescer engages, plus a few requests
    // with already-expired deadlines so the flight recorder has breaches
    // to capture.
    let ingress = Ingress::start(
        Arc::clone(&service),
        IngressConfig { default_slo: Some(Duration::from_millis(250)), ..IngressConfig::default() },
    );
    let mut last_trace = None;
    for burst in 0..8 {
        let tickets: Vec<_> = (0..4)
            .map(|_| ingress.submit("tenant-a", &handles[0], inputs[0].clone()).expect("submit"))
            .collect();
        for t in tickets {
            last_trace = Some(t.trace());
            t.wait().expect("ingress request");
        }
        if burst % 4 == 3 {
            let expired = Instant::now() - Duration::from_millis(1);
            match ingress.submit_with_deadline("tenant-b", &handles[0], inputs[0].clone(), expired) {
                Ok(t) => match t.wait() {
                    Err(IngressError::Backpressure(_)) => {} // shed, as intended
                    other => drop(other),
                },
                Err(e) => panic!("submit_with_deadline: {e}"),
            }
        }
    }

    let snap = service.obs_snapshot();
    let lines = metric_lines(&snap.metrics);

    if text_only {
        print!("{}", render_text(&lines));
        return;
    }
    if json_only {
        println!("{}", render_json(&snap));
        return;
    }

    if !quiet {
        println!("==== text exposition ====");
        print!("{}", render_text(&lines));
        println!();
        println!("==== json snapshot ====");
        println!("{}", render_json(&snap));
        println!();

        if let Some(trace) = last_trace.filter(|t| t.is_some()) {
            println!("==== span tree of trace {} ====", trace.0);
            for s in service.obs().trace_spans(trace) {
                println!(
                    "  {:>18} start {:>12} ns  dur {:>10} ns  detail {}",
                    s.stage.name(),
                    s.start_ns,
                    s.dur_ns,
                    s.detail
                );
            }
            println!();
        }

        let slow = service.obs().flight().snapshot();
        println!("==== flight recorder ({} captured) ====", snap.slow_captured);
        println!("{}", render_flight_json(&slow));
    }
}
