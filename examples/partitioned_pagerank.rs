//! PageRank power iteration over a partitioned handle: one internally
//! heterogeneous graph (hub rows over a banded tail), sharded at
//! registration so each row regime runs in its own format.
//!
//! The service decides *whether* to shard with its machine-model cost
//! gate; here a small shard target plus `cost_gate: false` forces the
//! partitioned path so the example is deterministic, and the printed
//! shard table shows per-shard format + variant choices. The iteration
//! itself is ordinary `service.spmv` calls — partitioned execution is
//! transparent to the caller.
//!
//! ```text
//! cargo run --release --example partitioned_pagerank [nodes] [iterations]
//! ```

use morpheus_repro::corpus::gen::hetero::hub_plus_banded;
use morpheus_repro::machine::{systems, Backend, VirtualEngine};
use morpheus_repro::morpheus::DynamicMatrix;
use morpheus_repro::oracle::{Oracle, PartitionPolicy, RunFirstTuner};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let iterations: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(40);
    let damping = 0.85;

    // Hub rows (~n/20 of them, scattered links) over a banded tail: the
    // shape whole-matrix format selection loses on, and the reason the
    // partitioner splits at the regime shift.
    let mut rng = StdRng::seed_from_u64(42);
    let hub = (n / 20).max(1);
    let m = DynamicMatrix::from(hub_plus_banded(n, hub, 48.min(n), 2, &mut rng));
    let nnz = m.nnz();

    let service = Oracle::builder()
        .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
        .tuner(RunFirstTuner::new(1))
        .workers(4)
        .partition_policy(PartitionPolicy {
            target_shard_nnz: Some((nnz / 6).max(2_048)),
            cost_gate: false,
            ..Default::default()
        })
        .build_service()
        .expect("engine and tuner set");

    let t0 = Instant::now();
    let h = service.register_partitioned(m).expect("register");
    println!(
        "registered {n}x{n} ({nnz} nnz) as {} shard(s) in {:.1} ms",
        h.num_shards(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    let pm = h.partition().expect("partitioned handle");
    for (i, s) in pm.shards().iter().enumerate() {
        println!(
            "  shard {i}: rows {:>6}..{:<6} nnz {:>8}  format {:<5} variant {}",
            s.rows().start,
            s.rows().end,
            s.nnz(),
            s.format_id().to_string(),
            s.plan().dominant_variant()
        );
    }

    // Power iteration: r <- (1-d)/n + d * A r, normalised each step.
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let base = (1.0 - damping) / n as f64;
    let t1 = Instant::now();
    for it in 0..iterations {
        service.spmv(&h, &rank, &mut next).expect("spmv");
        let mut norm = 0.0;
        for v in next.iter_mut() {
            *v = base + damping * *v;
            norm += v.abs();
        }
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b / norm).abs()).sum::<f64>();
        for v in next.iter_mut() {
            *v /= norm;
        }
        std::mem::swap(&mut rank, &mut next);
        if delta < 1e-12 {
            println!("converged after {} iteration(s)", it + 1);
            break;
        }
    }
    let elapsed = t1.elapsed().as_secs_f64();

    let mut top: Vec<(usize, f64)> = rank.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "{iterations} iteration(s) in {:.1} ms ({:.1} us/spmv)",
        elapsed * 1e3,
        elapsed / iterations as f64 * 1e6
    );
    println!("top ranked nodes (hub rows are 0..{hub}):");
    for (node, score) in top.iter().take(5) {
        println!("  node {node:>6}: {score:.3e}");
    }
    let stats = service.serve_stats();
    println!(
        "service: {} handle(s), {} request(s)",
        service.registered_matrices().len(),
        stats.handle_requests
    );
}
