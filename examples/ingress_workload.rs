//! Multi-tenant workload through the async batched ingress front door:
//! several tenants submit SpMV requests against the *same* registered
//! matrix under a latency SLO, and the ingress pump coalesces queued
//! same-handle runs into single planned SpMM executions when the engine's
//! cost model prices the batch cheaper than individual SpMVs.
//!
//! Contrast with `serve_workload`: there, contending clients drive the
//! pool directly and overload shows up as silent serial fallbacks; here,
//! the front door admits (per-tenant quotas), queues, coalesces and sheds
//! with explicit typed backpressure — the request lifecycle is
//! submit → admit → coalesce-or-direct → execute → scatter.
//!
//! ```text
//! cargo run --release --example ingress_workload [tenants] [requests-per-tenant]
//! ```

use morpheus_repro::corpus::gen::powerlaw::zipf_rows;
use morpheus_repro::machine::{systems, Backend, VirtualEngine};
use morpheus_repro::morpheus::DynamicMatrix;
use morpheus_repro::oracle::{Ingress, IngressConfig, IngressError, Oracle, RunFirstTuner, Ticket};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let tenants: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let requests_per_tenant: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(600);
    let slo = Duration::from_millis(25);

    let mut rng = StdRng::seed_from_u64(11);
    let matrix = DynamicMatrix::from(zipf_rows(8_000, 60_000, 1.1, &mut rng));

    let service = Arc::new(
        Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(1))
            .build_service()
            .expect("engine and tuner set"),
    );
    let handle = service.register(matrix).expect("register");
    println!(
        "registered {}x{} ({} nnz) -> {}\n",
        handle.nrows(),
        handle.ncols(),
        handle.nnz(),
        handle.format_id()
    );

    let cfg = IngressConfig { default_slo: Some(slo), tenant_quota: 64, ..IngressConfig::default() };
    let ingress = Arc::new(Ingress::start(Arc::clone(&service), cfg));

    let x: Vec<f64> = (0..handle.ncols()).map(|i| 1.0 + (i % 11) as f64 * 0.5).collect();

    // Every tenant fires bursts of requests at the same handle, waiting
    // each burst out before the next — exactly the traffic shape the
    // coalescer exists for: whatever queues while the pump is busy becomes
    // one planned SpMM.
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..tenants {
            let ingress = Arc::clone(&ingress);
            let (handle, x) = (&handle, &x);
            s.spawn(move || {
                let tenant = format!("tenant-{t}");
                let burst = 8usize;
                let mut submitted = 0usize;
                let mut ok = 0usize;
                let mut backpressured = 0usize;
                while submitted < requests_per_tenant {
                    let mut tickets: Vec<Ticket<f64>> = Vec::with_capacity(burst);
                    for _ in 0..burst.min(requests_per_tenant - submitted) {
                        submitted += 1;
                        match ingress.submit(&tenant, handle, x.clone()) {
                            Ok(ticket) => tickets.push(ticket),
                            Err(IngressError::Backpressure(_)) => backpressured += 1,
                            Err(e) => panic!("{tenant}: {e}"),
                        }
                    }
                    for ticket in tickets {
                        match ticket.wait() {
                            Ok(y) => {
                                std::hint::black_box(&y);
                                ok += 1;
                            }
                            Err(IngressError::Backpressure(_)) => backpressured += 1,
                            Err(e) => panic!("{tenant}: {e}"),
                        }
                    }
                }
                println!("{tenant}: {ok} ok, {backpressured} backpressured");
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();

    // The ingress snapshot folds service counters and front-door counters
    // into one coherent operator view.
    let snap = ingress.snapshot();
    let istats = snap.ingress.expect("snapshot taken through the ingress");
    let total = tenants * requests_per_tenant;
    println!("\n{tenants} tenant(s) x {requests_per_tenant} requests, SLO {slo:?}: {wall:.3} s");
    println!("  throughput:         {:>10.0} req/s", total as f64 / wall);
    println!("  completed:          {:>10}", istats.completed);
    println!(
        "  coalesced:          {:>10} requests in {} SpMM batches ({:.1}% coalescing ratio)",
        istats.coalesced_requests,
        istats.coalesced_batches,
        istats.coalescing_ratio() * 100.0
    );
    println!("  direct SpMVs:       {:>10}", istats.direct_requests);
    println!("  cost-gate declines: {:>10}", istats.cost_gate_declined);
    println!(
        "  shed / rejected:    {:>10} deadline, {} queue-full, {} quota",
        istats.shed_deadline, istats.rejected_queue_full, istats.rejected_quota
    );
    println!("  deadline misses:    {:>10}", istats.deadline_misses);
    println!("  queue depth now:    {:>10}", istats.queue_depth);
    println!("  silent fallbacks:   {:>10} (ingress path never takes them)", snap.serve.pool_busy_fallbacks);

    // The per-stage breakdown, straight from the unified registry: where
    // a request's lifetime actually went — queue wait, the coalesce gate,
    // kernel execution, result scatter.
    let obs = service.obs_snapshot();
    let us = |ns: u64| ns as f64 / 1e3;
    println!("\nstage latencies (registry histograms):");
    for name in ["ingress.queue_wait_ns", "ingress.coalesce_ns", "ingress.exec_ns", "ingress.scatter_ns"] {
        let h = obs.metrics.hist(name);
        println!(
            "  {name:<22} {:>8} samples  p50 {:>9.1} us  p99 {:>9.1} us  max {:>9.1} us",
            h.count,
            us(h.p50_ns()),
            us(h.p99_ns()),
            us(h.max_ns)
        );
    }
    println!(
        "\ntracer: {} spans recorded ({} overwritten), {} slow/SLO-breaching requests captured",
        obs.spans_recorded, obs.spans_overwritten, obs.slow_captured
    );
}
