//! Quickstart: build a sparse matrix, let the Oracle pick its format, run
//! SpMV.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use morpheus_repro::machine::{systems, Backend, VirtualEngine};
use morpheus_repro::morpheus::spmv::spmv_serial;
use morpheus_repro::morpheus::{ConvertOptions, CooMatrix, DynamicMatrix};
use morpheus_repro::oracle::{tune_multiply, FeatureVector, RunFirstTuner};

fn main() {
    // 1. Assemble a 2D Poisson system (the classic iterative-solver matrix).
    let nx = 64usize;
    let n = nx * nx;
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for y in 0..nx {
        for x in 0..nx {
            let i = y * nx + x;
            rows.push(i);
            cols.push(i);
            vals.push(4.0);
            for (dx, dy) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
                let (xx, yy) = (x as i64 + dx, y as i64 + dy);
                if xx >= 0 && yy >= 0 && xx < nx as i64 && yy < nx as i64 {
                    rows.push(i);
                    cols.push((yy as usize) * nx + xx as usize);
                    vals.push(-1.0);
                }
            }
        }
    }
    let mut matrix = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());
    println!("matrix: {}x{} with {} non-zeros, starting in {}", n, n, matrix.nnz(), matrix.format_id());

    // 2. Inspect the Table-I features the ML tuners would see.
    let features = FeatureVector::extract(&matrix);
    println!("features: {features}");

    // 3. Tune for the A64FX Serial backend (simulated) with the run-first
    //    tuner and switch the matrix to the winner.
    let engine = VirtualEngine::new(systems::a64fx(), Backend::Serial);
    let report = tune_multiply(&mut matrix, &RunFirstTuner::new(10), &engine, &ConvertOptions::default())
        .expect("tuning succeeds");
    println!(
        "tuned for {}: {} -> {} (decision cost {:.2} us on the virtual clock)",
        engine.label(),
        report.previous,
        report.chosen,
        report.cost.total() * 1e6
    );

    // 4. SpMV in the selected format — same numbers, faster layout.
    let x = vec![1.0f64; n];
    let mut y = vec![0.0f64; n];
    spmv_serial(&matrix, &x, &mut y).expect("shapes agree");
    let checksum: f64 = y.iter().sum();
    println!("y = A*1 checksum: {checksum:.1} (boundary rows keep a positive residue)");
}
