//! Quickstart: build a sparse matrix, let the Oracle pick its format, run
//! SpMV.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use morpheus_repro::machine::{systems, Backend, VirtualEngine};
use morpheus_repro::morpheus::{CooMatrix, DynamicMatrix};
use morpheus_repro::oracle::{FeatureVector, Oracle, RunFirstTuner};

fn main() {
    // 1. Assemble a 2D Poisson system (the classic iterative-solver matrix).
    let nx = 64usize;
    let n = nx * nx;
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for y in 0..nx {
        for x in 0..nx {
            let i = y * nx + x;
            rows.push(i);
            cols.push(i);
            vals.push(4.0);
            for (dx, dy) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
                let (xx, yy) = (x as i64 + dx, y as i64 + dy);
                if xx >= 0 && yy >= 0 && xx < nx as i64 && yy < nx as i64 {
                    rows.push(i);
                    cols.push((yy as usize) * nx + xx as usize);
                    vals.push(-1.0);
                }
            }
        }
    }
    let mut matrix = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());
    println!("matrix: {}x{} with {} non-zeros, starting in {}", n, n, matrix.nnz(), matrix.format_id());

    // 2. Inspect the Table-I features the ML tuners would see.
    let features = FeatureVector::extract(&matrix);
    println!("features: {features}");

    // 3. Open a tuning session for the A64FX Serial backend (simulated)
    //    with the run-first tuner: the Oracle picks the format, switches
    //    the matrix in place, and runs the SpMV in one call.
    let mut oracle = Oracle::builder()
        .engine(VirtualEngine::new(systems::a64fx(), Backend::Serial))
        .tuner(RunFirstTuner::new(10))
        .build()
        .expect("engine and tuner are set");
    let x = vec![1.0f64; n];
    let mut y = vec![0.0f64; n];
    let report = oracle.tune_and_spmv(&mut matrix, &x, &mut y).expect("tuning succeeds");
    println!(
        "tuned for {}: {} -> {} (decision cost {:.2} us on the virtual clock)",
        oracle.engine().label(),
        report.previous,
        report.chosen,
        report.cost.total() * 1e6
    );
    let checksum: f64 = y.iter().sum();
    println!("y = A*1 checksum: {checksum:.1} (boundary rows keep a positive residue)");

    // 4. The session caches its decisions: tuning a structurally identical
    //    matrix again costs nothing.
    let mut twin = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());
    let cached = oracle.tune(&mut twin).expect("tuning succeeds");
    let stats = oracle.cache_stats();
    println!(
        "second tune of the same structure: cache hit = {}, cost {:.2} us ({} hit / {} miss)",
        cached.cache_hit,
        cached.cost.total() * 1e6,
        stats.hits,
        stats.misses
    );
}
