//! The adaptive learning loop end to end: serve (measured-kernel
//! telemetry), sweep (trial-run every viable format), retrain + hot-swap,
//! and the forced-drift fallback — all against one live `OracleService`,
//! no restarts.
//!
//! ```text
//! cargo run --release --example adaptive_serve [rounds] [requests-per-matrix]
//! ```

use morpheus_repro::corpus::gen::banded::{multi_diagonal, tridiagonal};
use morpheus_repro::corpus::gen::powerlaw::zipf_rows;
use morpheus_repro::corpus::gen::stencil::poisson2d;
use morpheus_repro::machine::{systems, Backend, VirtualEngine};
use morpheus_repro::ml::Dataset;
use morpheus_repro::morpheus::DynamicMatrix;
use morpheus_repro::oracle::adapt::{
    AdaptiveConfig, AdaptiveEngine, AdaptiveTuner, CollectorConfig, RetrainOutcome, SampleCollector,
};
use morpheus_repro::oracle::{Oracle, RunFirstTuner, NUM_FEATURES};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let rounds: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let requests: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(200);

    let mut rng = StdRng::seed_from_u64(3);
    let matrices = vec![
        ("tridiagonal", DynamicMatrix::from(tridiagonal(12_000))),
        ("tridiagonal-s", DynamicMatrix::from(tridiagonal(5_000))),
        ("penta-diagonal", DynamicMatrix::from(multi_diagonal(8_000, 5, &mut rng))),
        ("zipf", DynamicMatrix::from(zipf_rows(5_000, 30_000, 1.1, &mut rng))),
        ("zipf-s", DynamicMatrix::from(zipf_rows(2_500, 14_000, 1.2, &mut rng))),
        ("poisson2d", DynamicMatrix::from(poisson2d(80, 80))),
    ];

    // One collector shared between the service (which feeds it) and the
    // adaptive engine (which drains it).
    let collector = Arc::new(SampleCollector::new(CollectorConfig::default()));
    let service = Arc::new(
        Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::Serial))
            .tuner(AdaptiveTuner::new(RunFirstTuner::new(1)))
            .collector(Arc::clone(&collector))
            .build_service()
            .expect("engine and tuner set"),
    );
    let engine =
        AdaptiveEngine::new(Arc::clone(&service), AdaptiveConfig { min_samples: 6, ..Default::default() })
            .expect("service has a collector");

    // Phase 1: serve. Every registered-path execution is timestamped into
    // the lock-free telemetry ring.
    let handles: Vec<_> =
        matrices.iter().map(|(_, m)| service.register(m.clone()).expect("register")).collect();
    for (i, (name, m)) in matrices.iter().enumerate() {
        let x: Vec<f64> = (0..m.ncols()).map(|j| 1.0 + (j % 9) as f64 * 0.5).collect();
        let mut y = vec![0.0f64; m.nrows()];
        for _ in 0..requests {
            service.spmv(&handles[i], &x, &mut y).expect("serve");
        }
        println!("served {requests:>5} requests of {name:<14} in {}", handles[i].format_id());
    }
    let snap = service.snapshot();
    let adaptation = snap.adaptation.as_ref().expect("collector attached");
    println!(
        "telemetry: {} measured executions across {} populations ({} dropped)\n",
        adaptation.telemetry.recorded, adaptation.telemetry.slots_used, adaptation.telemetry.dropped
    );

    // Phase 2: adapt. Sweeps fill in the formats serving never executed,
    // then each round retrains, validates on a holdout and hot-swaps.
    for r in 0..rounds.max(1) {
        for (_, m) in &matrices {
            engine.sweep(m).expect("sweep");
        }
        let report = engine.round().expect("round");
        println!(
            "round {r}: {} samples, candidate {:?} (holdout accuracy {:.2}) -> {:?}",
            report.samples,
            report.candidate,
            report.candidate_accuracy.unwrap_or(f64::NAN),
            report.outcome,
        );
    }
    // On a noisy host a tiny holdout can reject every candidate; retry a
    // few rounds (each adds sweep observations) until a model is live.
    let mut retries = 0;
    while service.tuner().current().is_none() && retries < 3 {
        for (_, m) in &matrices {
            engine.sweep(m).expect("sweep");
        }
        println!("retry round -> {:?}", engine.round().expect("round").outcome);
        retries += 1;
    }
    assert!(service.tuner().current().is_some(), "adaptation must install a model");
    println!("sweep seconds charged to TuningCost::measured: {:.4}\n", collector.measured_seconds());

    // The adapted model now serves fresh tuning decisions.
    for (name, m) in &matrices {
        let mut fresh = m.clone();
        let report = service.tune(&mut fresh).expect("tune");
        println!(
            "adapted decision for {name:<14} -> {} (prediction {:.2e}s, profiling {:.2e}s)",
            report.chosen, report.cost.prediction, report.cost.profiling
        );
    }

    // Phase 3: forced drift. Identical features with irreconcilable labels
    // simulate the hardware no longer matching anything learnable: the
    // engine drops the model and the analytical tuner takes over — same
    // service, no restart.
    let mut drifted = Dataset::empty(NUM_FEATURES, 6, vec![]).unwrap();
    let row = [600.0, 600.0, 3000.0, 5.0, 0.008, 24.0, 1.0, 2.0, 19.0, 0.0];
    for i in 0..30 {
        drifted.push(&row, i % 6).unwrap();
    }
    let drift = engine.round_with(drifted).expect("drift round");
    println!("\nforced drift -> {:?}", drift.outcome);
    assert!(matches!(drift.outcome, RetrainOutcome::FellBack { .. }), "drift must fall back");
    let mut again = matrices[0].1.clone();
    let fallback = service.tune(&mut again).expect("post-drift tune");
    println!(
        "post-drift decision for tridiagonal -> {} via the analytical fallback (profiling {:.2e}s)",
        fallback.chosen, fallback.cost.profiling
    );
    assert!(fallback.cost.profiling > 0.0, "fallback must be the run-first tuner");
    println!("\nepochs: {} (swaps + fallback), service never restarted", service.tuner().epoch());
}
