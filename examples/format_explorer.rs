//! Format explorer: inspect how every storage format performs for a matrix
//! across all simulated systems and backends — the "which format should I
//! use where?" question the Oracle automates.
//!
//! With a path argument it reads a MatrixMarket file (e.g. a SuiteSparse
//! download); otherwise it walks three built-in matrices with very
//! different sparsity patterns.
//!
//! ```text
//! cargo run --release --example format_explorer [matrix.mtx]
//! ```

use morpheus_repro::machine::{analyze, systems, VirtualEngine};
use morpheus_repro::morpheus::format::ALL_FORMATS;
use morpheus_repro::morpheus::io::read_matrix_market;
use morpheus_repro::morpheus::{CooMatrix, DynamicMatrix};
use morpheus_repro::oracle::FeatureVector;
use rand::SeedableRng;

fn explore(name: &str, matrix: DynamicMatrix<f64>) {
    println!("================================================================");
    println!("{name}: {}x{}, {} non-zeros", matrix.nrows(), matrix.ncols(), matrix.nnz());
    let analysis = analyze(&matrix);
    println!("features: {}", FeatureVector::from_stats(&analysis.stats));
    println!();
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}   optimal",
        "system/backend", "COO", "CSR", "DIA", "ELL", "HYB", "HDC"
    );
    for pair in systems::all_system_backends() {
        let engine = VirtualEngine::for_pair(&pair);
        let profile = engine.profile(&analysis);
        print!("{:<16}", pair.label());
        for fmt in ALL_FORMATS {
            match profile.times[fmt.index()] {
                Some(t) => print!(" {:>8.1}u", t * 1e6),
                None => print!(" {:>9}", "n/a"),
            }
        }
        println!("   {} ({:.2}x vs CSR)", profile.optimal, profile.optimal_speedup());
    }
    println!();
}

fn main() {
    if let Some(path) = std::env::args().nth(1) {
        let file = std::fs::File::open(&path).unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
        let coo: CooMatrix<f64> =
            read_matrix_market(std::io::BufReader::new(file)).unwrap_or_else(|e| panic!("parse {path}: {e}"));
        explore(&path, DynamicMatrix::from(coo));
        return;
    }

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // A banded PDE matrix: DIA territory.
    explore(
        "poisson2d (128x128 grid)",
        DynamicMatrix::from(morpheus_corpus::gen::stencil::poisson2d(128, 128)),
    );

    // A regular-degree random matrix: ELL territory on GPUs.
    explore(
        "uniform-degree random (40k rows, 8/row)",
        DynamicMatrix::from(morpheus_corpus::gen::random::uniform_degree(40_000, 8, &mut rng)),
    );

    // A scale-free hub matrix: the GPU-CSR pathology of §VII-C.
    explore(
        "hub rows (mawi-like)",
        DynamicMatrix::from(morpheus_corpus::gen::powerlaw::hub_rows(200_000, 2, 100_000, 300_000, &mut rng)),
    );
}
