//! The pre-trained model database under `models/` must stay loadable and
//! schema-compatible with the Oracle's feature extractor.

use morpheus_repro::machine::systems;
use morpheus_repro::morpheus::format::FORMAT_COUNT;
use morpheus_repro::oracle::{ModelDatabase, NUM_FEATURES};

fn models_dir() -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("models");
    dir.exists().then_some(dir)
}

#[test]
fn shipped_models_load_for_every_pair() {
    let Some(dir) = models_dir() else {
        eprintln!("models/ not present; skipping (regenerate with sparse_tree)");
        return;
    };
    let db = ModelDatabase::new(&dir);
    for pair in systems::all_system_backends() {
        let tuner = db
            .load_forest_tuner(pair.system.name, pair.backend)
            .unwrap_or_else(|e| panic!("{}: {e}", pair.label()));
        assert_eq!(tuner.model().n_features(), NUM_FEATURES, "{}", pair.label());
        assert_eq!(tuner.model().n_classes(), FORMAT_COUNT, "{}", pair.label());
        assert!(!tuner.model().trees().is_empty(), "{}", pair.label());

        // A plausible feature vector must yield a legal format id.
        let probe = [5000.0, 5000.0, 40_000.0, 8.0, 0.0016, 12.0, 2.0, 1.5, 900.0, 1.0];
        let pred = tuner.model().predict(&probe);
        assert!(pred < FORMAT_COUNT, "{}: predicted {pred}", pair.label());
    }
}

#[test]
fn shipped_models_listing_is_complete() {
    let Some(dir) = models_dir() else {
        return;
    };
    let db = ModelDatabase::new(&dir);
    let listing = db.list();
    assert_eq!(listing.len(), 11, "one forest model per pair: {listing:?}");
    assert!(listing.iter().all(|n| n.ends_with(".forest.model")));
}
