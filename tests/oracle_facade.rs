//! Integration tests for the `Oracle` session facade: cache accounting,
//! `f32`/`f64` parity across the corpus generators, operation awareness and
//! the CSR fallback path.

use morpheus_repro::corpus::CorpusSpec;
use morpheus_repro::machine::{systems, Backend, MatrixAnalysis, Op, VirtualEngine};
use morpheus_repro::morpheus::format::FormatId;
use morpheus_repro::morpheus::spmm::spmm_serial;
use morpheus_repro::morpheus::{ConvertOptions, CooMatrix, DynamicMatrix};
use morpheus_repro::oracle::{FormatTuner, Oracle, RunFirstTuner, TuneDecision, TuningCost};

#[test]
fn facade_and_service_agree_on_every_corpus_decision() {
    // The Oracle facade is a single-owner wrapper over OracleService; both
    // paths must produce identical decisions, costs and realized formats
    // for every structure in the corpus.
    let spec = CorpusSpec::small(10);
    let mut facade = Oracle::builder()
        .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
        .tuner(RunFirstTuner::new(2))
        .build()
        .unwrap();
    let service = Oracle::builder()
        .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
        .tuner(RunFirstTuner::new(2))
        .build_service()
        .unwrap();
    for entry in spec.iter() {
        let mut via_facade = DynamicMatrix::from(entry.matrix.clone());
        let mut via_service = DynamicMatrix::from(entry.matrix);
        let rf = facade.tune(&mut via_facade).unwrap();
        let rs = service.tune(&mut via_service).unwrap();
        assert_eq!(rf.chosen, rs.chosen, "{}", entry.name);
        assert_eq!(rf.predicted, rs.predicted, "{}", entry.name);
        assert_eq!(rf.cache_hit, rs.cache_hit, "{}", entry.name);
        assert_eq!(via_facade.format_id(), via_service.format_id(), "{}", entry.name);
    }
    assert_eq!(facade.cache_stats(), service.cache_stats(), "identical streams, identical accounting");
}

/// Rebuilds a corpus matrix with its values narrowed to `f32` (structure
/// identical by construction).
fn to_f32(m: &DynamicMatrix<f64>) -> DynamicMatrix<f32> {
    let coo = m.to_coo();
    let vals: Vec<f32> = coo.values().iter().map(|&v| v as f32).collect();
    DynamicMatrix::from(
        CooMatrix::from_triplets(coo.nrows(), coo.ncols(), coo.row_indices(), coo.col_indices(), &vals)
            .unwrap(),
    )
}

#[test]
fn cache_accounting_over_a_request_stream() {
    let spec = CorpusSpec::small(12);
    let mut oracle = Oracle::builder()
        .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
        .tuner(RunFirstTuner::new(3))
        .cache_capacity(64)
        .build()
        .unwrap();

    // First sweep: every structure is new.
    let mut chosen = Vec::new();
    for entry in spec.iter() {
        let mut m = DynamicMatrix::from(entry.matrix);
        let report = oracle.tune(&mut m).unwrap();
        assert!(!report.cache_hit, "{}", entry.name);
        assert!(report.cost.total() > 0.0);
        chosen.push(report.chosen);
    }
    let after_first = oracle.cache_stats();
    assert_eq!(after_first.misses, 12);
    assert_eq!(after_first.hits, 0);
    // One entry per structure plus a post-conversion alias for each matrix
    // that actually switched format.
    assert!((12..=24).contains(&after_first.len), "len {}", after_first.len);

    // Second sweep over regenerated (structurally identical) matrices:
    // all hits, all free, same decisions.
    for (entry, &first_choice) in spec.iter().zip(&chosen) {
        let mut m = DynamicMatrix::from(entry.matrix);
        let report = oracle.tune(&mut m).unwrap();
        assert!(report.cache_hit, "{}", entry.name);
        assert!(report.cost.cache_hit);
        assert_eq!(report.cost.feature_extraction, 0.0);
        assert_eq!(report.cost.prediction, 0.0);
        assert_eq!(report.cost.profiling, 0.0);
        assert_eq!(report.chosen, first_choice, "{}", entry.name);
    }
    let after_second = oracle.cache_stats();
    assert_eq!(after_second.hits, 12);
    assert_eq!(after_second.misses, 12);
    assert!((after_second.hit_rate() - 0.5).abs() < 1e-12);
}

#[test]
fn retuning_the_same_matrix_is_a_free_cache_hit() {
    // The acceptance shape: tune the *same* matrix object twice. The first
    // call switches its format; the second must still be answered from
    // cache at zero cost.
    let mut oracle = Oracle::builder()
        .engine(VirtualEngine::new(systems::a64fx(), Backend::Serial))
        .tuner(RunFirstTuner::new(5))
        .build()
        .unwrap();
    let n = 3000usize;
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    for i in 0..n {
        for d in [-1isize, 0, 1] {
            let j = i as isize + d;
            if j >= 0 && (j as usize) < n {
                rows.push(i);
                cols.push(j as usize);
            }
        }
    }
    let vals = vec![1.0f64; rows.len()];
    let mut m = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());

    let first = oracle.tune(&mut m).unwrap();
    assert!(!first.cache_hit);
    assert!(first.converted, "the tridiagonal system should leave COO");

    let second = oracle.tune(&mut m).unwrap();
    assert!(second.cache_hit);
    assert_eq!(second.cost.feature_extraction, 0.0);
    assert_eq!(second.cost.prediction, 0.0);
    assert_eq!(second.chosen, first.chosen);
    assert!(!second.converted, "already in the tuned format");
    assert_eq!(oracle.cache_stats().hits, 1);
}

#[test]
fn f32_tunes_end_to_end_in_parity_with_f64() {
    let spec = CorpusSpec::small(20);
    // One session serves both precisions: the tuners implement
    // `FormatTuner<f32>` and `FormatTuner<f64>` alike.
    let mut oracle = Oracle::builder()
        .engine(VirtualEngine::new(systems::a64fx(), Backend::Serial))
        .tuner(RunFirstTuner::new(3))
        .build()
        .unwrap();

    for entry in spec.iter() {
        let mut m64 = DynamicMatrix::from(entry.matrix);
        let mut m32 = to_f32(&m64);

        let r64 = oracle.tune(&mut m64).unwrap();
        let r32 = oracle.tune(&mut m32).unwrap();

        // Identical structure: identical format selection (the decision
        // depends only on the sparsity pattern), each executed in its own
        // precision.
        assert_eq!(r32.predicted, r64.predicted, "{}", entry.name);
        assert_eq!(r32.chosen, r64.chosen, "{}", entry.name);
        assert_eq!(m32.format_id(), r32.chosen);
        assert_eq!(m64.format_id(), r64.chosen);

        // The scalar width is part of the cache key, so the f32 question
        // was answered by the tuner, not by the f64 cache entry.
        assert!(!r32.cache_hit, "{}", entry.name);

        // And the tuned f32 matrix actually multiplies.
        let x = vec![1.0f32; m32.ncols()];
        let mut y = vec![0.0f32; m32.nrows()];
        morpheus_repro::morpheus::spmv::spmv_serial(&m32, &x, &mut y).unwrap();
        assert!(y.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn f32_spmv_results_match_f64_within_precision() {
    let spec = CorpusSpec::small(6);
    let mut oracle = Oracle::builder()
        .engine(VirtualEngine::new(systems::cirrus(), Backend::Serial))
        .tuner(RunFirstTuner::new(2))
        .build()
        .unwrap();
    for entry in spec.iter() {
        let mut m64 = DynamicMatrix::from(entry.matrix);
        let mut m32 = to_f32(&m64);
        let n = m64.nrows();

        let x64: Vec<f64> = (0..m64.ncols()).map(|i| ((i % 9) as f64) * 0.25 - 1.0).collect();
        let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
        let mut y64 = vec![0.0f64; n];
        let mut y32 = vec![0.0f32; n];

        oracle.tune_and_spmv(&mut m64, &x64, &mut y64).unwrap();
        oracle.tune_and_spmv(&mut m32, &x32, &mut y32).unwrap();

        for i in 0..n {
            let scale = 1.0 + y64[i].abs();
            assert!(
                (y64[i] - y32[i] as f64).abs() < 1e-3 * scale,
                "{} row {i}: f64 {} vs f32 {}",
                entry.name,
                y64[i],
                y32[i]
            );
        }
    }
}

#[test]
fn csr_fallback_on_nonviable_prediction_through_the_facade() {
    /// Always predicts ELL, even when ELL cannot hold the matrix.
    struct AlwaysEll;
    impl FormatTuner<f64> for AlwaysEll {
        fn name(&self) -> &'static str {
            "always-ell"
        }
        fn select(
            &self,
            _: &DynamicMatrix<f64>,
            _: &MatrixAnalysis,
            _: &VirtualEngine,
            op: Op,
        ) -> TuneDecision {
            TuneDecision {
                format: FormatId::Ell,
                params: Default::default(),
                op,
                cost: TuningCost::default(),
            }
        }
    }

    // Hypersparse with one long row: ELL width explodes.
    let n = 50_000usize;
    let mut rows: Vec<usize> = (0..500).map(|k| (k * 97) % n).collect();
    let mut cols: Vec<usize> = (0..500).map(|k| (k * 31) % n).collect();
    for k in 0..4000 {
        rows.push(7);
        cols.push((k * 11) % n);
    }
    let vals = vec![1.0; rows.len()];

    let mut oracle = Oracle::builder()
        .engine(VirtualEngine::new(systems::cirrus(), Backend::Serial))
        .tuner(AlwaysEll)
        .build()
        .unwrap();

    let mut m = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());
    let report = oracle.tune(&mut m).unwrap();
    assert_eq!(report.predicted, FormatId::Ell);
    assert_eq!(report.chosen, FormatId::Csr);
    assert_eq!(m.format_id(), FormatId::Csr);

    // The cache stores the *realized* decision (CSR), so hits go straight
    // to the viable format instead of re-paying the failing ELL attempt.
    let mut again = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());
    let cached = oracle.tune(&mut again).unwrap();
    assert!(cached.cache_hit);
    assert_eq!(cached.predicted, FormatId::Csr);
    assert_eq!(cached.chosen, FormatId::Csr);
    assert_eq!(again.format_id(), FormatId::Csr);
}

#[test]
fn spmm_tuning_is_a_distinct_cached_question() {
    let mut oracle = Oracle::builder()
        .engine(VirtualEngine::new(systems::a64fx(), Backend::Serial))
        .tuner(RunFirstTuner::new(3))
        .build()
        .unwrap();

    // A partially-filled banded matrix (padding-sensitive).
    let n = 4000usize;
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    for i in 0..n {
        for d in [-4isize, -1, 0, 1, 4] {
            let j = i as isize + d;
            if j >= 0 && (j as usize) < n && (i + d.unsigned_abs()) % 5 != 0 {
                rows.push(i);
                cols.push(j as usize);
            }
        }
    }
    let vals = vec![1.0f64; rows.len()];
    let build = || DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());

    let spmv = oracle.tune_for(&mut build(), Op::Spmv).unwrap();
    let spmm = oracle.tune_for(&mut build(), Op::Spmm { k: 32 }).unwrap();
    assert!(!spmm.cache_hit, "different op must be a fresh decision");
    assert_eq!(spmv.op, Op::Spmv);
    assert_eq!(spmm.op, Op::Spmm { k: 32 });

    // tune_and_spmm computes the right product in the selected format.
    let k = 3usize;
    let mut m = build();
    let x: Vec<f64> = (0..n * k).map(|i| ((i * 29 + 3) % 17) as f64 - 8.0).collect();
    let mut y = vec![f64::NAN; n * k];
    let report = oracle.tune_and_spmm(&mut m, &x, &mut y, k).unwrap();
    assert_eq!(m.format_id(), report.chosen);

    let reference = build();
    let mut y_ref = vec![0.0f64; n * k];
    spmm_serial(&reference, &x, &mut y_ref, k).unwrap();
    for i in 0..y.len() {
        let scale = 1.0 + y_ref[i].abs();
        assert!((y[i] - y_ref[i]).abs() < 1e-9 * scale, "slot {i}");
    }
}

#[test]
fn plan_cache_is_shared_by_spmv_and_spmm_but_split_by_scalar() {
    use morpheus_repro::oracle::PlanStatus;

    let mut oracle = Oracle::builder()
        .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
        .tuner(RunFirstTuner::new(2))
        .build()
        .unwrap();

    // A scatter matrix that tunes to the same format for SpMV and SpMM.
    let n = 1200usize;
    let rows: Vec<usize> = (0..n).flat_map(|i| [i, i]).collect();
    let cols: Vec<usize> = (0..n).flat_map(|i| [(i * 5) % n, (i * 11 + 3) % n]).collect();
    let vals = vec![1.0f64; rows.len()];
    let mut m64 = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());
    let x = vec![1.0f64; n];
    let mut y = vec![0.0f64; n];

    let first = oracle.tune_and_spmv(&mut m64, &x, &mut y).unwrap();
    assert_eq!(first.plan, PlanStatus::Built);
    let second = oracle.tune_and_spmv(&mut m64, &x, &mut y).unwrap();
    assert_eq!(second.plan, PlanStatus::Reused);

    // SpMM replays the same per-structure plan when the realized format is
    // unchanged (partitioning is operation-agnostic).
    let k = 2usize;
    let xk = vec![1.0f64; n * k];
    let mut yk = vec![0.0f64; n * k];
    let mm = oracle.tune_and_spmm(&mut m64, &xk, &mut yk, k).unwrap();
    if !mm.converted {
        assert_eq!(mm.plan, PlanStatus::Reused);
    }

    // An f32 matrix of the same structure needs its own plan: the scalar
    // width is part of the plan key.
    let mut m32 = to_f32(&m64);
    let x32 = vec![1.0f32; n];
    let mut y32 = vec![0.0f32; n];
    let r32 = oracle.tune_and_spmv(&mut m32, &x32, &mut y32).unwrap();
    assert_eq!(r32.plan, PlanStatus::Built, "f32 must not replay the f64 plan");

    let stats = oracle.plan_cache_stats();
    assert!(stats.hits >= 1, "{stats:?}");
    assert!(stats.len >= 2, "{stats:?}");
}

#[test]
fn boxed_trait_object_tuner_drives_a_session() {
    // Strategy chosen at runtime: the session accepts a boxed tuner
    // without a type parameter leaking to the caller.
    let tuner: Box<dyn FormatTuner<f64>> = Box::new(RunFirstTuner::new(2));
    let mut oracle = Oracle::builder()
        .engine(VirtualEngine::new(systems::xci(), Backend::OpenMp))
        .tuner(tuner)
        .build()
        .unwrap();
    let mut m = DynamicMatrix::from(
        CooMatrix::<f64>::from_triplets(
            64,
            64,
            &(0..64).collect::<Vec<_>>(),
            &(0..64).collect::<Vec<_>>(),
            &vec![2.0; 64],
        )
        .unwrap(),
    );
    let report = oracle.tune(&mut m).unwrap();
    assert_eq!(m.format_id(), report.chosen);
}

#[test]
fn convert_options_are_honoured_by_the_session() {
    // A forgiving padding policy lets DIA materialise where the default
    // would refuse; the session must thread its options into conversions.
    let opts = ConvertOptions { min_padded_allowance: 1 << 24, ..Default::default() };
    let mut oracle = Oracle::builder()
        .engine(VirtualEngine::new(systems::a64fx(), Backend::Serial))
        .tuner(RunFirstTuner::new(2))
        .convert_options(opts)
        .build()
        .unwrap();
    assert_eq!(oracle.convert_options().min_padded_allowance, 1 << 24);
    let mut m = DynamicMatrix::from(
        CooMatrix::<f64>::from_triplets(
            300,
            300,
            &(0..300).collect::<Vec<_>>(),
            &(0..300).collect::<Vec<_>>(),
            &vec![1.0; 300],
        )
        .unwrap(),
    );
    let report = oracle.tune(&mut m).unwrap();
    assert_eq!(report.chosen, report.predicted, "no fallback under the forgiving policy");
}
