//! Property-based integration tests: format invariants under random
//! matrices, spanning the corpus generators and the format library.

use morpheus_repro::morpheus::format::{FormatId, ALL_FORMATS};
use morpheus_repro::morpheus::spmv::{spmv_serial, spmv_threaded};
use morpheus_repro::morpheus::stats::stats_of;
use morpheus_repro::morpheus::{ConvertOptions, CooMatrix, DynamicMatrix};
use morpheus_repro::oracle::FeatureVector;
use morpheus_repro::parallel::{Schedule, ThreadPool};
use proptest::prelude::*;

/// Strategy: a small random sparse matrix as (nrows, ncols, entries).
fn arb_matrix() -> impl Strategy<Value = DynamicMatrix<f64>> {
    (2usize..40, 2usize..40).prop_flat_map(|(nrows, ncols)| {
        let entry = (0..nrows, 0..ncols, -100i32..100).prop_map(|(r, c, v)| (r, c, v));
        proptest::collection::vec(entry, 0..120).prop_map(move |entries| {
            let rows: Vec<usize> = entries.iter().map(|e| e.0).collect();
            let cols: Vec<usize> = entries.iter().map(|e| e.1).collect();
            // Avoid explicit zeros (DIA storage cannot distinguish them
            // from padding) and duplicate-sum cancellations.
            let vals: Vec<f64> = entries.iter().map(|e| f64::from(e.2) + 1000.5).collect();
            DynamicMatrix::from(CooMatrix::from_triplets(nrows, ncols, &rows, &cols, &vals).unwrap())
        })
    })
}

fn tolerant_opts() -> ConvertOptions {
    // Small matrices: allow any amount of padding so every format converts.
    ConvertOptions { min_padded_allowance: 1 << 24, ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any format -> any format -> COO preserves the entry set exactly.
    #[test]
    fn conversion_chain_is_lossless(m in arb_matrix(), path in proptest::collection::vec(0usize..8, 1..5)) {
        let reference = m.to_coo();
        let opts = tolerant_opts();
        let mut current = m;
        for step in path {
            let target = FormatId::from_index(step).unwrap();
            current = current.to_format(target, &opts).unwrap();
            prop_assert_eq!(current.format_id(), target);
        }
        prop_assert_eq!(current.to_coo(), reference);
    }

    /// SpMV agrees with the dense reference in every format.
    #[test]
    fn spmv_matches_dense_in_every_format(m in arb_matrix()) {
        let opts = tolerant_opts();
        let dense = m.to_dense();
        let x: Vec<f64> = (0..m.ncols()).map(|i| ((i * 31 + 7) % 13) as f64 - 6.0).collect();
        let mut expect = vec![0.0; m.nrows()];
        dense.spmv(&x, &mut expect);
        for &fmt in &ALL_FORMATS {
            let converted = m.to_format(fmt, &opts).unwrap();
            let mut y = vec![f64::NAN; m.nrows()];
            spmv_serial(&converted, &x, &mut y).unwrap();
            for i in 0..y.len() {
                let scale = 1.0 + expect[i].abs();
                prop_assert!((y[i] - expect[i]).abs() < 1e-9 * scale,
                    "{} row {}: {} vs {}", fmt, i, y[i], expect[i]);
            }
        }
    }

    /// The threaded backend equals the serial backend bit-for-bit.
    #[test]
    fn threaded_equals_serial(m in arb_matrix(), threads in 1usize..5) {
        let opts = tolerant_opts();
        let pool = ThreadPool::new(threads);
        let x: Vec<f64> = (0..m.ncols()).map(|i| (i % 7) as f64 * 0.5 - 1.0).collect();
        for &fmt in &ALL_FORMATS {
            let converted = m.to_format(fmt, &opts).unwrap();
            let mut ys = vec![0.0; m.nrows()];
            spmv_serial(&converted, &x, &mut ys).unwrap();
            let mut yt = vec![0.0; m.nrows()];
            spmv_threaded(&converted, &x, &mut yt, &pool, Schedule::default()).unwrap();
            prop_assert_eq!(&ys, &yt, "{} with {} threads", fmt, threads);
        }
    }

    /// Feature extraction sees through the active format (§VI-C): the same
    /// ten numbers regardless of representation.
    #[test]
    fn features_invariant_under_format(m in arb_matrix()) {
        let opts = tolerant_opts();
        let reference = FeatureVector::extract(&m);
        for &fmt in &ALL_FORMATS {
            let converted = m.to_format(fmt, &opts).unwrap();
            prop_assert_eq!(FeatureVector::extract(&converted), reference, "{}", fmt);
        }
    }

    /// Statistics invariants: totals and bounds are internally consistent.
    #[test]
    fn stats_are_internally_consistent(m in arb_matrix()) {
        let s = stats_of(&m, 0.2);
        prop_assert_eq!(s.nnz, m.nnz());
        prop_assert!(s.row_nnz_min <= s.row_nnz_max);
        prop_assert!(s.row_nnz_mean <= s.row_nnz_max as f64 + 1e-12);
        prop_assert!(s.row_nnz_mean >= s.row_nnz_min as f64 - 1e-12);
        prop_assert!(s.ntrue_diags <= s.ndiags);
        prop_assert!(s.ndiags <= s.nnz);
        prop_assert!(s.density() <= 1.0 + 1e-12);
    }

    /// Storage accounting: padded formats never report fewer bytes than the
    /// values they actually hold.
    #[test]
    fn storage_bytes_lower_bound(m in arb_matrix()) {
        let opts = tolerant_opts();
        for &fmt in &ALL_FORMATS {
            let converted = m.to_format(fmt, &opts).unwrap();
            prop_assert!(converted.storage_bytes() >= converted.nnz() * 8, "{}", fmt);
        }
    }
}
