//! End-to-end integration test: the complete Figure-1 pipeline on a reduced
//! corpus — generate → profile → extract features → train → export → load →
//! tune → execute.

use morpheus_repro::corpus::CorpusSpec;
use morpheus_repro::machine::{analyze, systems, Backend, VirtualEngine};
use morpheus_repro::ml::metrics::accuracy;
use morpheus_repro::ml::{Dataset, ForestParams, RandomForest};
use morpheus_repro::morpheus::format::{FormatId, FORMAT_COUNT};
use morpheus_repro::morpheus::spmv::spmv_serial;
use morpheus_repro::morpheus::DynamicMatrix;
use morpheus_repro::oracle::model_db::ModelDatabase;
use morpheus_repro::oracle::{FeatureVector, Oracle, RunFirstTuner, NUM_FEATURES};

#[test]
fn offline_stage_trains_useful_model_and_online_stage_uses_it() {
    let spec = CorpusSpec::small(150);
    let engine = VirtualEngine::new(systems::cirrus(), Backend::Serial);

    // --- offline: profile + assemble dataset ---
    let mut train = Dataset::empty(NUM_FEATURES, FORMAT_COUNT, vec![]).unwrap();
    let mut test_entries = Vec::new();
    for entry in spec.iter() {
        let m = DynamicMatrix::from(entry.matrix);
        let analysis = analyze(&m);
        let fv = FeatureVector::from_stats(&analysis.stats);
        let optimal = engine.profile(&analysis).optimal;
        if entry.is_test {
            test_entries.push((m, fv, optimal));
        } else {
            train.push(fv.as_slice(), optimal.index()).unwrap();
        }
    }
    assert!(train.len() >= 100, "training split too small: {}", train.len());
    assert!(test_entries.len() >= 15, "test split too small: {}", test_entries.len());

    // --- train + export + load ---
    let forest =
        RandomForest::fit(&train, &ForestParams { n_estimators: 25, seed: 7, ..Default::default() }).unwrap();
    let dir = std::env::temp_dir().join(format!("morpheus-pipeline-test-{}", std::process::id()));
    let db = ModelDatabase::new(&dir);
    db.save_forest("Cirrus", Backend::Serial, &forest).unwrap();
    let tuner = db.load_forest_tuner("Cirrus", Backend::Serial).unwrap();

    // The exported/reloaded model must agree with the in-memory one.
    for (_, fv, _) in &test_entries {
        assert_eq!(tuner.model().predict(fv.as_slice()), forest.predict(fv.as_slice()));
    }

    // --- evaluate: must beat always-predict-the-majority-class ---
    let majority = {
        let counts = train.class_counts();
        (0..FORMAT_COUNT).max_by_key(|&c| counts[c]).unwrap()
    };
    let y_true: Vec<usize> = test_entries.iter().map(|(_, _, o)| o.index()).collect();
    let y_model: Vec<usize> =
        test_entries.iter().map(|(_, fv, _)| tuner.model().predict(fv.as_slice())).collect();
    let y_major: Vec<usize> = vec![majority; y_true.len()];
    let acc_model = accuracy(&y_true, &y_model);
    let acc_major = accuracy(&y_true, &y_major);
    assert!(
        acc_model > acc_major,
        "model accuracy {acc_model:.3} should beat majority baseline {acc_major:.3}"
    );
    assert!(acc_model > 0.5, "model accuracy {acc_model:.3} too low");

    // --- online: one session tunes + switches + executes, numerics
    //     preserved ---
    let mut oracle = Oracle::builder().engine(engine).tuner(tuner).build().unwrap();
    let mut tuned_matches_optimal = 0usize;
    for (m, _, optimal) in test_entries.iter().take(10) {
        let mut matrix = m.clone();
        let x = vec![1.0f64; matrix.ncols()];
        let mut y_before = vec![0.0f64; matrix.nrows()];
        spmv_serial(&matrix, &x, &mut y_before).unwrap();

        let mut y_after = vec![0.0f64; matrix.nrows()];
        let report = oracle.tune_and_spmv(&mut matrix, &x, &mut y_after).unwrap();
        assert_eq!(matrix.format_id(), report.chosen);
        if report.chosen == *optimal {
            tuned_matches_optimal += 1;
        }

        for i in 0..y_before.len() {
            let scale = 1.0 + y_before[i].abs();
            assert!((y_before[i] - y_after[i]).abs() < 1e-10 * scale, "row {i} changed");
        }
    }
    assert!(tuned_matches_optimal >= 5, "only {tuned_matches_optimal}/10 tuned to the optimum");
    // Ten distinct test matrices: the tuning stage ran for each of them.
    assert_eq!(oracle.cache_stats().misses, 10);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_first_tuner_always_lands_on_profiled_optimum() {
    let spec = CorpusSpec::small(30);
    let engine = VirtualEngine::new(systems::p3(), Backend::Cuda);
    let mut oracle = Oracle::builder().engine(engine.clone()).tuner(RunFirstTuner::new(3)).build().unwrap();
    for entry in spec.iter() {
        let mut m = DynamicMatrix::from(entry.matrix);
        let analysis = analyze(&m);
        let optimal = engine.profile(&analysis).optimal;
        let report = oracle.tune(&mut m).unwrap();
        assert_eq!(report.predicted, optimal, "{}", entry.name);
    }
}

#[test]
fn profiled_optimum_is_never_worse_than_csr() {
    let spec = CorpusSpec::small(40);
    for pair in morpheus_repro::machine::systems::all_system_backends() {
        let engine = VirtualEngine::for_pair(&pair);
        for entry in spec.iter().take(20) {
            let m = DynamicMatrix::from(entry.matrix);
            let analysis = analyze(&m);
            let profile = engine.profile(&analysis);
            assert!(profile.optimal_speedup() >= 1.0, "{} on {}", entry.name, engine.label());
            assert!(profile.times[FormatId::Csr.index()].is_some());
        }
    }
}
