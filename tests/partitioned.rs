//! Partitioned-handle integration tests: shard boundary properties,
//! partitioned execution vs. the serial reference (bitwise when
//! order-preserving, ULP-bounded otherwise), streaming ingestion, and the
//! service-level partitioned registration path.

use morpheus_repro::corpus::gen::hetero::{hub_plus_banded, three_regime};
use morpheus_repro::machine::{systems, Backend, VirtualEngine};
use morpheus_repro::morpheus::format::FormatId;
use morpheus_repro::morpheus::partition::split_rows;
use morpheus_repro::morpheus::spmm::spmm_serial;
use morpheus_repro::morpheus::spmv::spmv_serial;
use morpheus_repro::morpheus::{
    for_each_entry_row_major, Analysis, ConvertOptions, CooBuilder, CooMatrix, DynamicMatrix, Partition,
    PartitionConfig, PartitionedMatrix, Scalar, StreamingPartitioner,
};
use morpheus_repro::oracle::adapt::{CollectorConfig, SampleCollector};
use morpheus_repro::oracle::{Oracle, PartitionPolicy, RunFirstTuner};
use morpheus_repro::parallel::ThreadPool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn analysis_of<V: Scalar>(m: &DynamicMatrix<V>) -> Analysis {
    Analysis::of_auto_with_hash(m, ConvertOptions::default().true_diag_alpha, m.structure_hash())
}

fn hetero(n: usize, hub_rows: usize, hub_deg: usize, seed: u64) -> DynamicMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    DynamicMatrix::from(hub_plus_banded(n, hub_rows, hub_deg, 2, &mut rng))
}

/// Relative-error check scaled to re-associated accumulation headroom.
fn assert_close<V: Scalar>(got: &[V], want: &[V], eps: f64) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let (g, w) = (g.to_f64(), w.to_f64());
        assert!((g - w).abs() <= eps * w.abs().max(1.0), "row {i}: {g} vs {w}");
    }
}

fn bitwise_eq<V: Scalar>(a: &[V], b: &[V]) -> bool {
    a.iter().zip(b).all(|(x, y)| x.to_f64().to_bits() == y.to_f64().to_bits())
}

#[test]
fn partition_is_deterministic_across_runs() {
    // Two independently generated (same seed) matrices must partition
    // identically: boundary selection is a pure function of the analysis.
    let cfg = PartitionConfig { target_shard_nnz: 2_000, ..Default::default() };
    let p1 = Partition::from_analysis(&analysis_of(&hetero(2_000, 100, 40, 11)), &cfg);
    let p2 = Partition::from_analysis(&analysis_of(&hetero(2_000, 100, 40, 11)), &cfg);
    assert_eq!(p1, p2);
    assert!(p1.num_shards() >= 2);
}

#[test]
fn degenerate_all_nnz_in_first_shard_and_empty_rows() {
    // One dense row, everything else empty: all nnz land in the first
    // shard and trailing all-empty row ranges still zero their y slice.
    let n = 64;
    let cols: Vec<usize> = (0..n).collect();
    let rows = vec![0usize; n];
    let vals = vec![1.5f64; n];
    let m = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());
    let a = analysis_of(&m);
    let cfg = PartitionConfig { max_shards: 4, target_shard_nnz: 8, ..Default::default() };
    let p = Partition::from_analysis(&a, &cfg);
    assert_eq!(p.shard_nnz()[0], n, "all nnz in the first shard");
    assert_eq!(p.shard_nnz()[1..].iter().sum::<usize>(), 0);
    let pm =
        PartitionedMatrix::build(&m, &p, &ConvertOptions::default(), 4, Some(&a), |_, _, _| FormatId::Csr)
            .unwrap();
    let x = vec![2.0; n];
    let mut y = vec![f64::NAN; n];
    pm.spmv_unpooled(&x, &mut y).unwrap();
    assert_eq!(y[0], 2.0 * 1.5 * n as f64);
    assert!(y[1..].iter().all(|&v| v == 0.0), "empty shards must still zero y");
}

#[test]
fn shard_count_capped_by_rows() {
    // Asking for far more shards than rows must cap at one row per shard.
    let m = hetero(5, 2, 3, 3);
    let a = analysis_of(&m);
    let cfg = PartitionConfig { max_shards: 64, target_shard_nnz: 1, ..Default::default() };
    let p = Partition::from_analysis(&a, &cfg);
    assert!(p.num_shards() <= 5);
    let subs = split_rows(&m, &p, Some(&a)).unwrap();
    assert_eq!(subs.iter().map(|s| s.nnz()).sum::<usize>(), m.nnz());
}

/// Partitioned SpMV with per-shard formats matches the serial reference on
/// the same converted shards: bitwise when every shard plan preserves
/// order, ULP-bounded otherwise. Exercised for f64 and f32.
fn partitioned_matches_reference<V: Scalar>(eps: f64) {
    let mut rng = StdRng::seed_from_u64(21);
    let coo = three_regime(1_200, 60, 50, 400, 8, 2, &mut rng);
    let mut b = CooBuilder::with_capacity(1_200, 1_200, coo.nnz());
    for (r, c, v) in coo.iter() {
        b.push(r, c, V::from_f64(v)).unwrap();
    }
    let m = DynamicMatrix::from(b.build());
    let a = analysis_of(&m);
    let cfg = PartitionConfig { target_shard_nnz: m.nnz() / 5, ..Default::default() };
    let p = Partition::from_analysis(&a, &cfg);
    assert!(p.num_shards() >= 3);

    let x: Vec<V> = (0..1_200).map(|i| V::from_f64(((i % 23) as f64 - 11.0) * 0.25)).collect();
    for fmts in [
        vec![FormatId::Csr],
        vec![FormatId::Csr, FormatId::Ell, FormatId::Dia, FormatId::Hyb, FormatId::Coo, FormatId::Hdc],
    ] {
        let pm = PartitionedMatrix::build(&m, &p, &ConvertOptions::default(), 3, Some(&a), |i, _, _| {
            fmts[i % fmts.len()]
        })
        .unwrap();
        // Reference: serial SpMV over the *converted* shards, row range by
        // row range — the unsharded accumulation order per row.
        let mut want = vec![V::ZERO; 1_200];
        for s in pm.shards() {
            let rows = s.rows();
            let mut ys = vec![V::ZERO; rows.len()];
            spmv_serial(s.matrix(), &x, &mut ys).unwrap();
            want[rows].copy_from_slice(&ys);
        }
        let mut got = vec![V::ZERO; 1_200];
        pm.spmv_unpooled(&x, &mut got).unwrap();
        if pm.preserves_order() {
            assert!(bitwise_eq(&got, &want), "order-preserving plans must match bitwise");
        } else {
            assert_close(&got, &want, eps);
        }
        // Pooled path is bitwise identical to unpooled, at any pool width.
        for threads in [1, 3, 7] {
            let pool = ThreadPool::new(threads);
            let mut pooled = vec![V::from_f64(9.0); 1_200];
            pm.spmv(&x, &mut pooled, &pool).unwrap();
            assert!(bitwise_eq(&pooled, &got), "pooled != unpooled at {threads} threads");
        }
        // SpMM across the same path: shard kernels are the serial scalar
        // bodies, so the per-shard serial SpMM reference matches bitwise.
        let k = 3;
        let xk: Vec<V> = (0..1_200 * k).map(|i| V::from_f64(((i % 7) as f64) * 0.5)).collect();
        let mut yk = vec![V::ZERO; 1_200 * k];
        let pool = ThreadPool::new(3);
        pm.spmm(&xk, &mut yk, k, &pool).unwrap();
        let mut yk_ref = vec![V::ZERO; 1_200 * k];
        for s in pm.shards() {
            let rows = s.rows();
            let mut ys = vec![V::ZERO; rows.len() * k];
            spmm_serial(s.matrix(), &xk, &mut ys, k).unwrap();
            yk_ref[rows.start * k..rows.end * k].copy_from_slice(&ys);
        }
        assert!(bitwise_eq(&yk, &yk_ref), "partitioned SpMM must match per-shard serial");
    }
}

#[test]
fn partitioned_matches_reference_f64() {
    partitioned_matches_reference::<f64>(1e-12);
}

#[test]
fn partitioned_matches_reference_f32() {
    partitioned_matches_reference::<f32>(1e-4);
}

#[test]
fn streaming_ingestion_equals_batch_build() {
    let m = hetero(1_500, 80, 40, 5);
    let cfg = PartitionConfig { target_shard_nnz: m.nnz() / 4, ..Default::default() };
    let mut sp = StreamingPartitioner::new(1_500, 1_500, &cfg);
    for_each_entry_row_major(&m, |r, c, v| sp.push(r, c, v).unwrap());
    let (partition, parts) = sp.finish().unwrap();
    assert!(partition.num_shards() >= 2);
    assert_eq!(partition.shard_nnz().iter().sum::<usize>(), m.nnz());
    let pm = PartitionedMatrix::assemble(1_500, parts, 2, |_, _, _| Ok(())).unwrap();
    let x: Vec<f64> = (0..1_500).map(|i| (i as f64 * 0.01).cos()).collect();
    let mut want = vec![0.0; 1_500];
    spmv_serial(&m, &x, &mut want).unwrap();
    let mut got = vec![0.0; 1_500];
    pm.spmv_unpooled(&x, &mut got).unwrap();
    assert_close(&got, &want, 1e-12);
}

#[test]
fn service_registers_partitioned_handle_with_shard_telemetry() {
    let collector = Arc::new(SampleCollector::new(CollectorConfig::default()));
    let service = Oracle::builder()
        .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
        .tuner(RunFirstTuner::new(1))
        .workers(4)
        .collector(Arc::clone(&collector))
        .partition_policy(PartitionPolicy {
            target_shard_nnz: Some(4_000),
            cost_gate: false, // force the partitioned path deterministically
            ..Default::default()
        })
        .build_service()
        .unwrap();
    let m = hetero(4_000, 150, 60, 9);
    let x: Vec<f64> = (0..4_000).map(|i| ((i * 7) % 13) as f64).collect();
    let mut want = vec![0.0; 4_000];
    spmv_serial(&m, &x, &mut want).unwrap();

    let before = collector.stats().telemetry.recorded;
    let h = service.register_partitioned(m).unwrap();
    assert!(h.is_partitioned());
    assert!(h.num_shards() >= 2);
    assert_eq!(h.report().shards, h.num_shards());
    let info = service.registered_matrices();
    assert_eq!(info.last().unwrap().shards, h.num_shards());

    let mut y = vec![0.0; 4_000];
    for _ in 0..3 {
        service.spmv(&h, &x, &mut y).unwrap();
        assert_close(&y, &want, 1e-12);
    }
    // Per-shard telemetry: every execution lands one sample per shard.
    let recorded = collector.stats().telemetry.recorded - before;
    assert!(
        recorded >= 3 * h.num_shards() as u64,
        "expected shard-level samples, got {recorded} for {} shards",
        h.num_shards()
    );

    // SpMM through the same handle.
    let k = 2;
    let xk: Vec<f64> = x.iter().flat_map(|&v| [v, -v]).collect();
    let mut yk = vec![0.0; 4_000 * k];
    service.spmm(&h, &xk, &mut yk, k).unwrap();
    let wide: Vec<f64> = want.iter().flat_map(|&v| [v, -v]).collect();
    assert_close(&yk, &wide, 1e-12);
}

#[test]
fn service_auto_shards_above_threshold_and_streams() {
    let service = Oracle::builder()
        .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
        .tuner(RunFirstTuner::new(1))
        .workers(2)
        .partition_policy(PartitionPolicy {
            auto_nnz_threshold: Some(10_000),
            target_shard_nnz: Some(5_000),
            cost_gate: false,
            ..Default::default()
        })
        .build_service()
        .unwrap();
    // Below threshold: register() stays whole-matrix.
    let small = hetero(300, 20, 20, 2);
    let hs = service.register(small).unwrap();
    assert!(!hs.is_partitioned());
    assert_eq!(hs.report().shards, 1);
    // Above threshold: register() shards automatically.
    let big = hetero(5_000, 200, 50, 2);
    let x = vec![1.0; 5_000];
    let mut want = vec![0.0; 5_000];
    spmv_serial(&big, &x, &mut want).unwrap();
    let hb = service.register(big).unwrap();
    assert!(hb.is_partitioned(), "auto threshold must shard large matrices");
    let mut y = vec![0.0; 5_000];
    service.spmv(&hb, &x, &mut y).unwrap();
    assert_close(&y, &want, 1e-12);

    // Streaming front door: same matrix fed row-major, never held whole.
    let big2 = hetero(5_000, 200, 50, 2);
    let mut entries = Vec::new();
    for_each_entry_row_major(&big2, |r, c, v| entries.push((r, c, v)));
    let hstream = service.register_stream(5_000, 5_000, entries).unwrap();
    assert!(hstream.is_partitioned());
    let mut ys = vec![0.0; 5_000];
    service.spmv(&hstream, &x, &mut ys).unwrap();
    assert_close(&ys, &want, 1e-12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Partition invariants on random row histograms: boundaries strictly
    /// increasing, tiling 0..nrows, shard nnz summing to the total, shard
    /// count within bounds, determinism, and split+execute ≡ serial.
    #[test]
    fn partition_invariants(
        hist in proptest::collection::vec(0u32..120, 1..300),
        max_shards in 1usize..12,
        target in 1usize..5_000,
        window in 1usize..64,
    ) {
        let n = hist.len();
        let mut b = CooBuilder::new(n, n);
        b.push(0, 0, 1.0f64).unwrap(); // never fully empty
        for (r, &k) in hist.iter().enumerate() {
            for j in 0..k as usize {
                b.push(r, j % n, 1.0 + j as f64).unwrap();
            }
        }
        let m = DynamicMatrix::from(b.build());
        let a = analysis_of(&m);
        let cfg = PartitionConfig {
            max_shards,
            target_shard_nnz: target,
            regime_window: window,
            ..Default::default()
        };
        let p = Partition::from_analysis(&a, &cfg);
        prop_assert!(p.num_shards() >= 1 && p.num_shards() <= max_shards.min(n));
        prop_assert_eq!(p.boundaries()[0], 0);
        prop_assert_eq!(*p.boundaries().last().unwrap(), n);
        prop_assert!(p.boundaries().windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(p.shard_nnz().iter().sum::<usize>(), m.nnz());
        prop_assert_eq!(&p, &Partition::from_analysis(&a, &cfg));
        let pm = PartitionedMatrix::build(
            &m, &p, &ConvertOptions::default(), 3, Some(&a), |_, _, _| FormatId::Csr,
        ).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut want = vec![0.0; n];
        spmv_serial(&m, &x, &mut want).unwrap();
        let mut got = vec![0.0; n];
        pm.spmv_unpooled(&x, &mut got).unwrap();
        // ULP-bounded: planned kernel bodies may fuse multiply-adds.
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert!((g - w).abs() <= 1e-12 * w.abs().max(1.0), "row {}: {} vs {}", i, g, w);
        }
    }
}
