//! Integration tests for the async batched ingress layer: coalesced SpMM
//! executions must be bitwise identical to individual planned SpMVs across
//! every storage format and scalar width, deadline-shed requests must
//! surface typed backpressure and never partial results, and per-tenant
//! admission must keep a greedy tenant from starving the rest.
//!
//! Determinism: every test pauses the ingress before submitting, so the
//! pump drains one exactly-known batch when resumed — coalescing windows
//! are constructed, not raced for.

use morpheus_repro::machine::{systems, Backend, MatrixAnalysis, Op, VirtualEngine};
use morpheus_repro::morpheus::format::FormatId;
use morpheus_repro::morpheus::{CooMatrix, DynamicMatrix, Scalar};
use morpheus_repro::oracle::adapt::{CollectorConfig, SampleCollector};
use morpheus_repro::oracle::{
    Backpressure, CoalescePolicy, FormatTuner, Ingress, IngressConfig, IngressError, Oracle, OracleService,
    RunFirstTuner, TuneDecision, TuningCost,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn workers() -> usize {
    std::env::var("MORPHEUS_BENCH_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(2)
}

/// Always selects one fixed format, so the property test can pin each of
/// the six storage formats in turn.
#[derive(Clone, Copy)]
struct Fixed(FormatId);

impl<V: Scalar> FormatTuner<V> for Fixed {
    fn name(&self) -> &'static str {
        "fixed-format"
    }
    fn select(&self, _: &DynamicMatrix<V>, _: &MatrixAnalysis, _: &VirtualEngine, op: Op) -> TuneDecision {
        TuneDecision { format: self.0, params: Default::default(), op, cost: TuningCost::default() }
    }
}

fn fixed_service(fmt: FormatId) -> Arc<OracleService<Fixed>> {
    Arc::new(
        Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(Fixed(fmt))
            .workers(workers())
            .build_service()
            .unwrap(),
    )
}

/// A small banded matrix with every stored value nonzero and distinct, so
/// bitwise comparisons are meaningful and convertible to all six formats.
fn banded_triplets(n: usize) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..n {
        for d in [-2isize, 0, 1] {
            let j = i as isize + d;
            if j >= 0 && (j as usize) < n {
                rows.push(i);
                cols.push(j as usize);
                vals.push(0.5 + ((i * 7 + j as usize * 3) % 19) as f64 * 0.125);
            }
        }
    }
    (rows, cols, vals)
}

fn matrix_f64(n: usize) -> DynamicMatrix<f64> {
    let (rows, cols, vals) = banded_triplets(n);
    DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
}

fn matrix_f32(n: usize) -> DynamicMatrix<f32> {
    let (rows, cols, vals) = banded_triplets(n);
    let vals32: Vec<f32> = vals.iter().map(|&v| v as f32).collect();
    DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals32).unwrap())
}

/// The j-th client's input vector: nonzero everywhere, distinct per client.
fn input(n: usize, client: usize) -> Vec<f64> {
    (0..n).map(|i| 0.25 + ((i * 13 + client * 31) % 29) as f64 * 0.5).collect()
}

fn assert_bitwise_f64(got: &[f64], expect: &[f64], ctx: &str) {
    assert_eq!(got.len(), expect.len(), "{ctx}: length");
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        assert_eq!(g.to_bits(), e.to_bits(), "{ctx}: row {i}: got {g}, expected {e}");
    }
}

fn assert_bitwise_f32(got: &[f32], expect: &[f32], ctx: &str) {
    assert_eq!(got.len(), expect.len(), "{ctx}: length");
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        assert_eq!(g.to_bits(), e.to_bits(), "{ctx}: row {i}: got {g}, expected {e}");
    }
}

/// Spin until `cond` holds (the pump drops request state slightly after it
/// resolves tickets; quota release is on that drop).
fn eventually(cond: impl Fn() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

#[test]
fn coalesced_spmm_is_bitwise_identical_to_planned_spmv_across_formats_and_scalars() {
    const FORMATS: [FormatId; 6] =
        [FormatId::Coo, FormatId::Csr, FormatId::Dia, FormatId::Ell, FormatId::Hyb, FormatId::Hdc];
    let n = 120usize;
    for fmt in FORMATS {
        let service = fixed_service(fmt);
        let h64 = service.register(matrix_f64(n)).unwrap();
        let h32 = service.register(matrix_f32(n)).unwrap();
        assert_eq!(h64.format_id(), fmt, "f64 handle must realize the pinned format");
        assert_eq!(h32.format_id(), fmt, "f32 handle must realize the pinned format");

        // References through the direct (uncontended, planned) handle path.
        let xs64: Vec<Vec<f64>> = (0..4).map(|c| input(n, c)).collect();
        let xs32: Vec<Vec<f32>> = (4..7).map(|c| input(n, c).iter().map(|&v| v as f32).collect()).collect();
        let refs64: Vec<Vec<f64>> = xs64
            .iter()
            .map(|x| {
                let mut y = vec![0.0f64; n];
                service.spmv(&h64, x, &mut y).unwrap();
                y
            })
            .collect();
        let refs32: Vec<Vec<f32>> = xs32
            .iter()
            .map(|x| {
                let mut y = vec![0.0f32; n];
                service.spmv(&h32, x, &mut y).unwrap();
                y
            })
            .collect();

        let cfg = IngressConfig { coalesce: CoalescePolicy::Always, ..IngressConfig::default() };
        let ingress = Ingress::start(Arc::clone(&service), cfg);
        ingress.pause();
        let t64: Vec<_> =
            xs64.iter().map(|x| ingress.submit("sixty-four", &h64, x.clone()).unwrap()).collect();
        let t32: Vec<_> =
            xs32.iter().map(|x| ingress.submit("thirty-two", &h32, x.clone()).unwrap()).collect();
        ingress.resume();

        for (c, t) in t64.into_iter().enumerate() {
            let y = t.wait().unwrap_or_else(|e| panic!("{fmt:?} f64 client {c}: {e}"));
            assert_bitwise_f64(&y, &refs64[c], &format!("{fmt:?} f64 client {c}"));
        }
        for (c, t) in t32.into_iter().enumerate() {
            let y = t.wait().unwrap_or_else(|e| panic!("{fmt:?} f32 client {c}: {e}"));
            assert_bitwise_f32(&y, &refs32[c], &format!("{fmt:?} f32 client {c}"));
        }

        let stats = ingress.stats();
        assert_eq!(stats.completed, 7, "{fmt:?}: all seven requests must complete");
        assert_eq!(stats.coalesced_requests, 7, "{fmt:?}: every request must ride a coalesced SpMM");
        assert_eq!(stats.coalesced_batches, 2, "{fmt:?}: one f64 batch and one f32 batch");
        assert_eq!(stats.direct_requests, 0, "{fmt:?}");
        assert_eq!(stats.failed, 0, "{fmt:?}");
        assert!((stats.coalescing_ratio() - 1.0).abs() < f64::EPSILON, "{fmt:?}");
    }
}

#[test]
fn coalesce_never_policy_serves_every_request_as_direct_spmv() {
    let service = fixed_service(FormatId::Csr);
    let n = 80usize;
    let h = service.register(matrix_f64(n)).unwrap();
    let xs: Vec<Vec<f64>> = (0..3).map(|c| input(n, c)).collect();
    let refs: Vec<Vec<f64>> = xs
        .iter()
        .map(|x| {
            let mut y = vec![0.0f64; n];
            service.spmv(&h, x, &mut y).unwrap();
            y
        })
        .collect();

    let cfg = IngressConfig { coalesce: CoalescePolicy::Never, ..IngressConfig::default() };
    let ingress = Ingress::start(Arc::clone(&service), cfg);
    ingress.pause();
    let tickets: Vec<_> = xs.iter().map(|x| ingress.submit("t", &h, x.clone()).unwrap()).collect();
    ingress.resume();
    for (c, t) in tickets.into_iter().enumerate() {
        assert_bitwise_f64(&t.wait().unwrap(), &refs[c], &format!("direct client {c}"));
    }
    let stats = ingress.stats();
    assert_eq!(stats.direct_requests, 3);
    assert_eq!(stats.coalesced_batches, 0);
    assert_eq!(stats.coalescing_ratio(), 0.0);
}

#[test]
fn expired_deadlines_shed_with_typed_backpressure_and_no_partial_results() {
    let service = fixed_service(FormatId::Csr);
    let n = 60usize;
    let h = service.register(matrix_f64(n)).unwrap();
    let executed_before = service.serve_stats().handle_requests;

    let ingress = Ingress::start(Arc::clone(&service), IngressConfig::default());
    ingress.pause();
    // Already expired when the pump will look at it (expiry is inclusive).
    let doomed = ingress.submit_with_deadline("t", &h, input(n, 0), Instant::now()).unwrap();
    // No deadline: must execute normally in the same drained batch.
    let healthy = ingress.submit("t", &h, input(n, 1)).unwrap();
    ingress.resume();

    match doomed.wait() {
        Err(IngressError::Backpressure(Backpressure::DeadlineExpired)) => {}
        other => panic!("shed request must surface DeadlineExpired, got {other:?}"),
    }
    let y = healthy.wait().expect("undeadlined request must execute");
    let mut y_ref = vec![0.0f64; n];
    service.spmv(&h, &input(n, 1), &mut y_ref).unwrap();
    assert_bitwise_f64(&y, &y_ref, "healthy request");

    let stats = ingress.stats();
    assert_eq!(stats.shed_deadline, 1);
    assert_eq!(stats.completed, 1);
    // The shed request never reached a kernel: only the healthy request
    // (plus the reference above) count as handle executions.
    assert_eq!(service.serve_stats().handle_requests, executed_before + 2);
}

#[test]
fn greedy_tenant_hits_its_quota_without_blocking_other_tenants() {
    let service = fixed_service(FormatId::Csr);
    let n = 50usize;
    let h = service.register(matrix_f64(n)).unwrap();

    let cfg = IngressConfig { tenant_quota: 16, ..IngressConfig::default() }.with_tenant_quota("greedy", 3);
    let ingress = Ingress::start(Arc::clone(&service), cfg);
    ingress.pause();

    let greedy: Vec<_> = (0..3).map(|c| ingress.submit("greedy", &h, input(n, c)).unwrap()).collect();
    assert_eq!(ingress.tenant_inflight("greedy"), 3);
    match ingress.submit("greedy", &h, input(n, 9)) {
        Err(IngressError::Backpressure(Backpressure::TenantQuota { limit: 3 })) => {}
        other => panic!("over-quota submission must be refused, got {other:?}"),
    }
    // The refusal of the greedy tenant must not consume anyone's capacity.
    let modest = ingress.submit("modest", &h, input(n, 4)).unwrap();
    assert_eq!(ingress.tenant_inflight("modest"), 1);

    ingress.resume();
    for t in greedy {
        t.wait().expect("admitted greedy requests still execute");
    }
    modest.wait().expect("modest tenant must not be starved");

    // Quota slots release once the pump retires the requests.
    eventually(|| ingress.tenant_inflight("greedy") == 0, "greedy quota release");
    ingress.submit("greedy", &h, input(n, 5)).unwrap().wait().unwrap();

    let stats = ingress.stats();
    assert_eq!(stats.rejected_quota, 1);
    assert_eq!(stats.completed, 5);
}

#[test]
fn full_queue_refuses_with_queue_full_and_admits_again_after_draining() {
    let service = fixed_service(FormatId::Csr);
    let n = 40usize;
    let h = service.register(matrix_f64(n)).unwrap();

    let cfg = IngressConfig { queue_capacity: 2, ..IngressConfig::default() };
    let ingress = Ingress::start(Arc::clone(&service), cfg);
    ingress.pause();
    let a = ingress.submit("t", &h, input(n, 0)).unwrap();
    let b = ingress.submit("t", &h, input(n, 1)).unwrap();
    assert_eq!(ingress.stats().queue_depth, 2);
    match ingress.submit("t", &h, input(n, 2)) {
        Err(IngressError::Backpressure(Backpressure::QueueFull { capacity: 2 })) => {}
        other => panic!("overflow must be refused, got {other:?}"),
    }
    ingress.resume();
    a.wait().unwrap();
    b.wait().unwrap();
    // Capacity is available again once drained.
    ingress.submit("t", &h, input(n, 3)).unwrap().wait().unwrap();
    assert_eq!(ingress.stats().rejected_queue_full, 1);
}

#[test]
fn mismatched_input_length_is_rejected_at_submission() {
    let service = fixed_service(FormatId::Csr);
    let h = service.register(matrix_f64(30)).unwrap();
    let ingress = Ingress::start(Arc::clone(&service), IngressConfig::default());
    match ingress.submit("t", &h, vec![1.0f64; 7]) {
        Err(IngressError::Rejected(msg)) => assert!(msg.contains("30"), "{msg}"),
        other => panic!("length mismatch must be rejected, got {other:?}"),
    }
}

#[test]
fn coalesced_executions_are_timestamped_into_spmm_telemetry() {
    let collector = Arc::new(SampleCollector::new(CollectorConfig::default()));
    let service = Arc::new(
        Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(1))
            .collector(Arc::clone(&collector))
            .workers(workers())
            .build_service()
            .unwrap(),
    );
    let n = 90usize;
    let h = service.register(matrix_f64(n)).unwrap();

    let cfg = IngressConfig { coalesce: CoalescePolicy::Always, ..IngressConfig::default() };
    let ingress = Ingress::start(Arc::clone(&service), cfg);
    ingress.pause();
    let tickets: Vec<_> = (0..3).map(|c| ingress.submit("t", &h, input(n, c)).unwrap()).collect();
    ingress.resume();
    for t in tickets {
        t.wait().unwrap();
    }

    let kernels = collector.telemetry().snapshot();
    let spmm = kernels
        .iter()
        .find(|mk| mk.key.op == (Op::Spmm { k: 3 }))
        .expect("coalesced execution must be attributed to an Op::Spmm population");
    assert!(spmm.count >= 1);
    assert_eq!(spmm.key.scalar_bytes, 8);
}

#[test]
fn snapshot_through_ingress_carries_both_service_and_ingress_counters() {
    let service = fixed_service(FormatId::Csr);
    let n = 40usize;
    let h = service.register(matrix_f64(n)).unwrap();
    let ingress = Ingress::start(Arc::clone(&service), IngressConfig::default());
    ingress.submit("t", &h, input(n, 0)).unwrap().wait().unwrap();

    let snap = ingress.snapshot();
    let istats = snap.ingress.expect("ingress snapshot must carry ingress counters");
    assert_eq!(istats.submitted, 1);
    assert_eq!(istats.completed, 1);
    assert!(snap.serve.handle_requests >= 1);
    // The plain service snapshot does not know about front doors.
    assert!(service.snapshot().ingress.is_none());
}
