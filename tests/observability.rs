//! Integration tests for the observability subsystem: tracing at the
//! default (coarse) level must not wreck registered-path throughput,
//! every resolved ingress ticket must leave exactly one complete span
//! tree behind (no orphans, no duplicates — even under concurrent
//! multi-client load), the flight recorder must retain only
//! SLO-breaching requests, and the text exposition must survive a
//! render → parse → render round trip.

use morpheus_repro::corpus::gen::banded::tridiagonal;
use morpheus_repro::machine::{systems, Backend, VirtualEngine};
use morpheus_repro::morpheus::DynamicMatrix;
use morpheus_repro::oracle::obs::expose::{metric_lines, parse_text, render_text};
use morpheus_repro::oracle::{
    Ingress, IngressConfig, IngressError, ObsConfig, Oracle, OracleService, RunFirstTuner, Stage, TraceId,
    TraceLevel,
};
use std::io::BufReader;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn workers() -> usize {
    std::env::var("MORPHEUS_BENCH_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(2)
}

fn service_with(obs: ObsConfig) -> Arc<OracleService<RunFirstTuner>> {
    Arc::new(
        Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(1))
            .workers(workers())
            .observability(obs)
            .build_service()
            .unwrap(),
    )
}

fn input(ncols: usize) -> Vec<f64> {
    (0..ncols).map(|i| 1.0 + (i % 5) as f64 * 0.5).collect()
}

/// Registered-path throughput with coarse tracing (the default) must stay
/// within a generous factor of tracing-off throughput. The threshold is
/// deliberately loose — shared-runner noise dwarfs the real overhead,
/// which is two clock reads and a few relaxed atomics per request — but
/// it still catches pathological regressions (a lock on the hot path, a
/// span allocation per request) that cost integer factors.
#[test]
fn coarse_tracing_keeps_registered_path_throughput() {
    let m = DynamicMatrix::from(tridiagonal(4_000));
    let x = input(m.ncols());
    let iters = 600usize;

    let rps = |level: TraceLevel| -> f64 {
        let service = service_with(ObsConfig { trace: level, ..ObsConfig::default() });
        let h = service.register(m.clone()).unwrap();
        let mut y = vec![0.0f64; h.nrows()];
        // Warm up plans and caches before timing.
        for _ in 0..50 {
            service.spmv(&h, &x, &mut y).unwrap();
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            service.spmv(&h, &x, &mut y).unwrap();
        }
        iters as f64 / t0.elapsed().as_secs_f64()
    };

    let off = rps(TraceLevel::Off);
    let coarse = rps(TraceLevel::Coarse);
    assert!(
        coarse >= off * 0.2,
        "coarse tracing must not collapse throughput: off {off:.0} rps, coarse {coarse:.0} rps"
    );
}

/// Every resolved ingress ticket leaves exactly one complete span tree in
/// the ring: exactly one Admit, exactly one Resolve, at least one Exec —
/// under four concurrent clients racing the pump.
#[test]
fn every_resolved_ticket_yields_one_complete_span_tree() {
    let service = service_with(ObsConfig { span_capacity: 1 << 14, ..ObsConfig::default() });
    let m = DynamicMatrix::from(tridiagonal(2_000));
    let h = service.register(m).unwrap();
    let x = input(h.ncols());
    let ingress =
        Ingress::start(Arc::clone(&service), IngressConfig { tenant_quota: 256, ..IngressConfig::default() });

    let clients = 4usize;
    let per_client = 40usize;
    let traces: Vec<TraceId> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..clients)
            .map(|c| {
                let (ingress, h, x) = (&ingress, &h, &x);
                s.spawn(move || {
                    let tenant = format!("tenant-{c}");
                    let mut traces = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let t = ingress.submit(&tenant, h, x.clone()).unwrap();
                        let trace = t.trace();
                        t.wait().unwrap();
                        traces.push(trace);
                    }
                    traces
                })
            })
            .collect();
        joins.into_iter().flat_map(|j| j.join().unwrap()).collect()
    });

    let spans = service.obs().spans();
    assert_eq!(
        service.obs().spans_overwritten(),
        0,
        "ring sized for the workload; the census below needs every span"
    );
    assert_eq!(traces.len(), clients * per_client);
    // Trace ids are unique per ticket.
    let mut unique = traces.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), traces.len(), "duplicate trace ids handed out");

    for &trace in &traces {
        assert!(trace.is_some(), "resolved tickets carry real trace ids at coarse level");
        let tree: Vec<_> = spans.iter().filter(|s| s.trace == trace).collect();
        let count = |stage: Stage| tree.iter().filter(|s| s.stage == stage).count();
        assert_eq!(count(Stage::Admit), 1, "trace {trace:?}: {tree:?}");
        assert_eq!(count(Stage::Resolve), 1, "trace {trace:?}: {tree:?}");
        assert!(count(Stage::Exec) >= 1, "trace {trace:?}: {tree:?}");
        assert_eq!(count(Stage::QueueWait), 1, "trace {trace:?}: {tree:?}");
        // Resolve spans the whole request: no stage may end after it.
        let resolve = tree.iter().find(|s| s.stage == Stage::Resolve).unwrap();
        let resolve_end = resolve.start_ns + resolve.dur_ns;
        for s in &tree {
            assert!(
                s.start_ns + s.dur_ns <= resolve_end,
                "stage {} ends after resolve: {tree:?}",
                s.stage.name()
            );
        }
    }
}

/// The flight recorder retains breaching requests (shed or delivered past
/// their deadline) and nothing else.
#[test]
fn flight_recorder_captures_only_breaching_requests() {
    let service = service_with(ObsConfig::default());
    let m = DynamicMatrix::from(tridiagonal(2_000));
    let h = service.register(m).unwrap();
    let x = input(h.ncols());
    let ingress = Ingress::start(Arc::clone(&service), IngressConfig::default());

    // Healthy traffic: generous deadlines, none should be captured.
    for _ in 0..20 {
        let deadline = Instant::now() + Duration::from_secs(30);
        ingress.submit_with_deadline("healthy", &h, x.clone(), deadline).unwrap().wait().unwrap();
    }
    assert_eq!(service.obs().flight().captured_total(), 0, "healthy requests must not be captured");

    // Breaching traffic: deadlines already expired at submission; the
    // pump sheds them, and every shed is an SLO breach.
    let mut breached = Vec::new();
    for _ in 0..5 {
        let deadline = Instant::now() - Duration::from_millis(1);
        let t = ingress.submit_with_deadline("late", &h, x.clone(), deadline).unwrap();
        breached.push(t.trace());
        match t.wait() {
            Err(IngressError::Backpressure(_)) => {}
            other => panic!("expired request must shed, got {other:?}"),
        }
    }

    let slow = service.obs().flight().snapshot();
    assert_eq!(service.obs().flight().captured_total(), 5);
    assert_eq!(slow.len(), 5);
    for sr in &slow {
        assert!(breached.contains(&sr.trace), "captured a non-breaching trace: {sr:?}");
        assert!(
            sr.spans.iter().any(|s| s.stage == Stage::Resolve && s.detail == 2),
            "captured tree must record the shed resolve: {sr:?}"
        );
    }
}

/// The text exposition of a real service's registry parses back and
/// re-renders byte-identically.
#[test]
fn text_exposition_round_trips_through_parser() {
    let service = service_with(ObsConfig::default());
    let m = DynamicMatrix::from(tridiagonal(1_000));
    let h = service.register(m).unwrap();
    let x = input(h.ncols());
    let mut y = vec![0.0f64; h.nrows()];
    for _ in 0..10 {
        service.spmv(&h, &x, &mut y).unwrap();
    }

    let lines = metric_lines(&service.obs_snapshot().metrics);
    let text = render_text(&lines);
    let parsed = parse_text(BufReader::new(text.as_bytes())).expect("own exposition must parse");
    assert_eq!(render_text(&parsed), text, "render → parse → render must be the identity");
    assert!(text.contains("counter serve.requests_served 10"), "core serve family missing:\n{text}");
    assert!(text.contains("hist serve.request_ns "), "request histogram missing:\n{text}");
}
