//! Integration tests for the hardware model against the format library:
//! the simulator must rank formats consistently with the qualitative
//! behaviours the paper reports, for matrices produced by the real
//! generators.

use morpheus_repro::corpus::gen::{banded, powerlaw, random, stencil};
use morpheus_repro::machine::{analyze, systems, Backend, VirtualEngine};
use morpheus_repro::morpheus::{DynamicMatrix, FormatId};
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn quiet(system: morpheus_repro::machine::SystemProfile, backend: Backend) -> VirtualEngine {
    VirtualEngine::new(system, backend).with_noise(0.0, 0)
}

#[test]
fn stencils_prefer_diagonal_formats_on_wide_simd_cpus() {
    let m = DynamicMatrix::from(stencil::poisson2d(300, 300));
    let a = analyze(&m);
    let engine = quiet(systems::a64fx(), Backend::Serial);
    let p = engine.profile(&a);
    assert!(
        matches!(p.optimal, FormatId::Dia | FormatId::Hdc),
        "expected a diagonal format for a stencil on A64FX, got {}",
        p.optimal
    );
}

#[test]
fn scatter_prefers_csr_on_commodity_cpus() {
    let m = DynamicMatrix::from(random::erdos_renyi(30_000, 300_000, &mut rng(1)));
    let a = analyze(&m);
    for engine in [quiet(systems::cirrus(), Backend::Serial), quiet(systems::xci(), Backend::Serial)] {
        let p = engine.profile(&a);
        assert_eq!(p.optimal, FormatId::Csr, "{}", engine.label());
    }
}

#[test]
fn hypersparse_prefers_coo() {
    let m = DynamicMatrix::from(random::hypersparse(400_000, 3_000, &mut rng(2)));
    let a = analyze(&m);
    let engine = quiet(systems::archer2(), Backend::Serial);
    let p = engine.profile(&a);
    assert_eq!(p.optimal, FormatId::Coo);
}

#[test]
fn uniform_degree_prefers_ell_on_gpu() {
    let m = DynamicMatrix::from(random::uniform_degree(120_000, 8, &mut rng(3)));
    let a = analyze(&m);
    let engine = quiet(systems::cirrus(), Backend::Cuda);
    let p = engine.profile(&a);
    assert_eq!(p.optimal, FormatId::Ell);
}

#[test]
fn hub_matrix_is_csr_pathological_on_gpu() {
    // The mawi effect (§VII-C): a hub row makes GPU CSR orders of magnitude
    // slower than the optimum.
    let m = DynamicMatrix::from(powerlaw::hub_rows(400_000, 2, 200_000, 500_000, &mut rng(4)));
    let a = analyze(&m);
    let engine = quiet(systems::p3(), Backend::Cuda);
    let p = engine.profile(&a);
    assert_ne!(p.optimal, FormatId::Csr);
    assert!(p.optimal_speedup() > 20.0, "speedup only {:.1}x", p.optimal_speedup());
}

#[test]
fn skewed_rows_penalise_openmp_csr_up_to_the_hub_row() {
    // Threaded execution runs over an ExecPlan's nnz-weighted row
    // partition, so OpenMP CSR no longer pays schedule(static)'s
    // contiguous-chunk skew and the model follows what actually runs. The
    // residual, irreducible penalty is the largest row: rows cannot be
    // split across threads (§VII-B's serial-vs-OpenMP distribution shift,
    // post-balancing). One 60k-entry hub over a light 3-per-row background
    // fits a serial sweep but pins one worker for ~14 ideal chunks.
    let m = DynamicMatrix::from(powerlaw::hub_rows(30_000, 1, 60_000, 150_000, &mut rng(5)));
    let a = analyze(&m);
    let threads = systems::cirrus().cpu.cores;
    let balanced = a.balanced_row_imbalance(threads);
    let ideal = a.nnz() as f64 / threads as f64;
    // The hub lower-bounds the slowest chunk; the greedy may pack at most
    // ~one target's worth of light rows around it...
    let row_bound = a.stats.row_nnz_max as f64 / ideal;
    assert!(
        balanced >= row_bound - 1e-9 && balanced <= row_bound + 1.0,
        "hub must bound the balanced partition: {balanced} vs row bound {row_bound}"
    );
    assert!(balanced > 5.0, "hub must dominate the ideal chunk: {balanced}");
    // ...and the planned partition can only improve on schedule(static).
    assert!(balanced <= a.static_row_imbalance(threads) + 1e-9);

    // End to end: the hub keeps OpenMP CSR far from the parallel scaling a
    // uniform matrix of the same shape enjoys.
    let uniform = DynamicMatrix::from(random::uniform_degree(30_000, 5, &mut rng(6)));
    let ua = analyze(&uniform);
    let serial = quiet(systems::cirrus(), Backend::Serial);
    let openmp = quiet(systems::cirrus(), Backend::OpenMp);
    let hub_scaling = serial.spmv_time(FormatId::Csr, &a) / openmp.spmv_time(FormatId::Csr, &a);
    let uni_scaling = serial.spmv_time(FormatId::Csr, &ua) / openmp.spmv_time(FormatId::Csr, &ua);
    assert!(
        hub_scaling < uni_scaling / 2.0,
        "hub-bound CSR must scale far worse than uniform CSR: {hub_scaling:.2}x vs {uni_scaling:.2}x"
    );
}

#[test]
fn banded_partial_band_padding_sinks_dia() {
    // A sparsely-filled band has many partial diagonals: DIA pays padding
    // and loses to CSR/HDC.
    let m = DynamicMatrix::from(banded::banded_partial(20_000, 20, 0.15, &mut rng(6)));
    let a = analyze(&m);
    let engine = quiet(systems::cirrus(), Backend::Serial);
    let t_dia = engine.spmv_time(FormatId::Dia, &a);
    let t_csr = engine.spmv_time(FormatId::Csr, &a);
    assert!(t_csr < t_dia, "CSR {t_csr:e} should beat padded DIA {t_dia:e}");
}

#[test]
fn hip_csr_penalty_shows_up_end_to_end() {
    let m = DynamicMatrix::from(random::near_diagonal(50_000, 10, 40.0, &mut rng(7)));
    let a = analyze(&m);
    let cuda = quiet(systems::p3(), Backend::Cuda);
    let hip = quiet(systems::p3(), Backend::Hip);
    // Same matrix: the MI100's CSR path is slower relative to its optimum.
    assert!(hip.profile(&a).optimal_speedup() > cuda.profile(&a).optimal_speedup());
}

#[test]
fn every_pair_profiles_every_generator_family() {
    let mut r = rng(8);
    let matrices: Vec<DynamicMatrix<f64>> = vec![
        DynamicMatrix::from(stencil::poisson2d(40, 40)),
        DynamicMatrix::from(banded::tridiagonal(900)),
        DynamicMatrix::from(banded::diag_plus_scatter(800, 1200, &mut r)),
        DynamicMatrix::from(random::uniform_degree(700, 6, &mut r)),
        DynamicMatrix::from(random::erdos_renyi(600, 2400, &mut r)),
        DynamicMatrix::from(powerlaw::rmat(9, 6, [0.57, 0.19, 0.19, 0.05], &mut r)),
    ];
    for pair in systems::all_system_backends() {
        let engine = VirtualEngine::for_pair(&pair);
        for (i, m) in matrices.iter().enumerate() {
            let a = analyze(m);
            let p = engine.profile(&a);
            let t = p.optimal_time();
            assert!(t.is_finite() && t > 0.0, "matrix {i} on {}", engine.label());
            // Tuning-stage costs are finite and positive everywhere.
            assert!(engine.feature_extraction_time(FormatId::Csr, &a) > 0.0);
            assert!(engine.prediction_time(100) > 0.0);
        }
    }
}
