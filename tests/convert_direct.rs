//! Property-based equivalence of the direct conversion engine with the COO
//! hub, and the shared-analysis reuse contract.
//!
//! Three guarantees are pinned here:
//! 1. For **every** source/target format pair, the dispatched conversion
//!    (direct kernel where one exists) is pattern- *and* value-equivalent to
//!    the reference COO-hub path, including edge shapes.
//! 2. An [`Analysis`]-derived `MatrixStats` is bitwise-equal to `stats_of`
//!    on every active format, and supplying the analysis to feature
//!    extraction, cache keying and conversion planning performs **zero**
//!    additional full matrix traversals (the `passes` counter).
//! 3. A full Oracle tuning call performs a bounded number of traversals:
//!    hash + fused analysis + machine walk on a miss, hash only on a hit.

use morpheus_repro::machine::{systems, Backend, VirtualEngine};
use morpheus_repro::morpheus::analysis::{passes, Analysis};
use morpheus_repro::morpheus::format::{FormatId, ALL_FORMATS};
use morpheus_repro::morpheus::stats::stats_of;
use morpheus_repro::morpheus::{convert_via_hub, ConvertOptions, ConvertPath, CooMatrix, DynamicMatrix};
use morpheus_repro::oracle::{FeatureVector, Oracle, RunFirstTuner};
use proptest::prelude::*;

/// Strategy: a small random sparse matrix with strictly non-zero values
/// (DIA storage elides explicit zeros, which would be a legitimate — but
/// noisy — difference).
fn arb_matrix() -> impl Strategy<Value = DynamicMatrix<f64>> {
    (1usize..36, 1usize..36).prop_flat_map(|(nrows, ncols)| {
        let entry = (0..nrows, 0..ncols, -100i32..100).prop_map(|(r, c, v)| (r, c, v));
        proptest::collection::vec(entry, 0..140).prop_map(move |entries| {
            let rows: Vec<usize> = entries.iter().map(|e| e.0).collect();
            let cols: Vec<usize> = entries.iter().map(|e| e.1).collect();
            let vals: Vec<f64> = entries.iter().map(|e| f64::from(e.2) + 1000.5).collect();
            DynamicMatrix::from(CooMatrix::from_triplets(nrows, ncols, &rows, &cols, &vals).unwrap())
        })
    })
}

fn tolerant_opts() -> ConvertOptions {
    ConvertOptions { min_padded_allowance: 1 << 24, ..Default::default() }
}

/// Every (source, target) pair: the dispatcher's result equals the
/// reference COO-hub result exactly (same representation, not just the same
/// entries).
fn assert_all_pairs_match_hub(base: &DynamicMatrix<f64>, opts: &ConvertOptions) {
    for &src in &ALL_FORMATS {
        let m = convert_via_hub(base, src, opts).unwrap();
        for &target in &ALL_FORMATS {
            let expect = convert_via_hub(&m, target, opts).unwrap();
            let (got, outcome) = m.to_format_with(target, opts, None).unwrap();
            assert_eq!(got, expect, "{src} -> {target}");
            // The dispatcher must use a direct kernel whenever one side of
            // the pair is an interchange format, and the block formats
            // (BSR/BELL) build directly from any row-major source.
            let direct_exists = src == target
                || matches!(src, FormatId::Coo | FormatId::Csr)
                || matches!(target, FormatId::Coo | FormatId::Csr)
                || matches!(target, FormatId::Bsr | FormatId::Bell);
            let expected_path = if src == target {
                ConvertPath::Identity
            } else if direct_exists {
                ConvertPath::Direct
            } else {
                ConvertPath::Hub
            };
            assert_eq!(outcome.path, expected_path, "{src} -> {target}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn direct_equals_hub_for_all_pairs(base in arb_matrix()) {
        assert_all_pairs_match_hub(&base, &tolerant_opts());
    }

    #[test]
    fn analysis_stats_bitwise_equal_on_every_format(base in arb_matrix()) {
        let opts = tolerant_opts();
        for &fmt in &ALL_FORMATS {
            let m = base.to_format(fmt, &opts).unwrap();
            for alpha in [0.1, 0.2, 0.9] {
                let a = Analysis::of(&m, alpha);
                let s = stats_of(&m, alpha);
                // Bitwise: both reduce through the same accumulation order.
                prop_assert_eq!(&a.stats, &s, "{} alpha {}", fmt, alpha);
                prop_assert_eq!(
                    FeatureVector::from_analysis(&a).as_slice(),
                    FeatureVector::from_stats(&s).as_slice()
                );
            }
        }
    }

    #[test]
    fn planned_conversion_adds_zero_traversals(base in arb_matrix()) {
        let opts = tolerant_opts();
        let a = Analysis::of(&base, opts.true_diag_alpha);
        passes::reset();
        // Feature extraction, cache keying and conversion planning off the
        // shared artifact: no traversal may be recorded.
        let _ = FeatureVector::from_analysis(&a);
        let _ = a.structure_hash;
        for &target in &ALL_FORMATS {
            let _ = base.to_format_with(target, &opts, Some(&a)).unwrap();
        }
        prop_assert_eq!(passes::count(), 0, "analysis reuse must not re-traverse the matrix");
    }
}

#[test]
fn edge_shapes_convert_identically() {
    let opts = tolerant_opts();

    // Empty matrix.
    let empty = DynamicMatrix::from(CooMatrix::<f64>::new(6, 4));

    // Single dense row.
    let n = 12usize;
    let dense_row = DynamicMatrix::from(
        CooMatrix::from_triplets(n, n, &vec![3usize; n], &(0..n).collect::<Vec<_>>(), &vec![2.5f64; n])
            .unwrap(),
    );

    // All-diagonal (pure DIA pattern, every diagonal true).
    let diag = DynamicMatrix::from(
        CooMatrix::from_triplets(
            n,
            n,
            &(0..n).collect::<Vec<_>>(),
            &(0..n).collect::<Vec<_>>(),
            &(0..n).map(|i| i as f64 + 1.0).collect::<Vec<_>>(),
        )
        .unwrap(),
    );

    // Single column (transpose of the dense-row shape).
    let col = DynamicMatrix::from(
        CooMatrix::from_triplets(n, n, &(0..n).collect::<Vec<_>>(), &vec![0usize; n], &vec![1.5f64; n])
            .unwrap(),
    );

    for m in [&empty, &dense_row, &diag, &col] {
        assert_all_pairs_match_hub(m, &opts);
        for &fmt in &ALL_FORMATS {
            let conv = m.to_format(fmt, &opts).unwrap();
            assert_eq!(Analysis::of(&conv, 0.2).stats, stats_of(&conv, 0.2), "{fmt}");
        }
    }
}

#[test]
fn oracle_tune_traversal_budget() {
    // Tridiagonal matrix, tuned twice: the miss pays hash + fused analysis
    // + the machine model's entry walk (3 traversals), the hit only the
    // hash (plus the one-off post-conversion alias hash on the miss).
    let n = 3000usize;
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    for i in 0..n {
        for d in [-1isize, 0, 1] {
            let j = i as isize + d;
            if j >= 0 && (j as usize) < n {
                rows.push(i);
                cols.push(j as usize);
            }
        }
    }
    let vals = vec![1.0f64; rows.len()];
    let base = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());

    let mut oracle = Oracle::builder()
        .engine(VirtualEngine::new(systems::a64fx(), Backend::Serial))
        .tuner(RunFirstTuner::new(3))
        .build()
        .unwrap();

    let mut first = base.clone();
    passes::reset();
    let r1 = oracle.tune(&mut first).unwrap();
    assert!(!r1.cache_hit);
    let miss_traversals = passes::count();
    // hash + Analysis::of + analyze_from walk (+1 alias hash if converted).
    let budget = 3 + u64::from(r1.converted);
    assert!(miss_traversals <= budget, "cache miss performed {miss_traversals} traversals, budget {budget}");

    let mut second = base.clone();
    passes::reset();
    let r2 = oracle.tune(&mut second).unwrap();
    assert!(r2.cache_hit);
    // A hit skips analysis entirely: the key hash, plus at most one
    // planning scan inside the conversion (no Analysis is built on hits).
    let hit_traversals = passes::count();
    assert!(hit_traversals <= 2, "cache hit performed {hit_traversals} traversals, budget 2");
}

#[test]
fn tune_report_carries_conversion_outcome() {
    let n = 800usize;
    let rows: Vec<usize> = (0..n).collect();
    let cols: Vec<usize> = (0..n).collect();
    let vals = vec![1.0f64; n];
    let mut m = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());

    let mut oracle = Oracle::builder()
        .engine(VirtualEngine::new(systems::a64fx(), Backend::Serial))
        .tuner(RunFirstTuner::new(2))
        .build()
        .unwrap();
    let report = oracle.tune(&mut m).unwrap();
    if report.converted {
        // COO source: every conversion target has a direct kernel.
        assert_eq!(report.convert.path, ConvertPath::Direct);
    } else {
        assert_eq!(report.convert.path, ConvertPath::Identity);
    }
    assert!(report.convert.seconds >= 0.0);

    // Re-tuning the already-switched matrix is an identity conversion.
    let again = oracle.tune(&mut m).unwrap();
    assert!(!again.converted);
    assert_eq!(again.convert.path, ConvertPath::Identity);
    assert_eq!(again.convert.seconds, 0.0);
}
