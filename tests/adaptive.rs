//! Integration tests for the adaptive learning subsystem: measured-kernel
//! telemetry through the serving layer, online sample collection, seeded
//! retrain determinism, atomic model hot-swap under concurrent clients and
//! the forced-drift fallback to the analytical tuner.

use morpheus_repro::machine::{systems, Backend, Op, VirtualEngine};
use morpheus_repro::ml::Dataset;
use morpheus_repro::morpheus::format::{FormatId, FORMAT_COUNT};
use morpheus_repro::morpheus::{CooMatrix, DynamicMatrix, KernelVariant};
use morpheus_repro::oracle::adapt::{
    AdaptiveConfig, AdaptiveEngine, AdaptiveTuner, CollectorConfig, LearnedModel, ModelEpoch, RetrainOutcome,
    SampleCollector, SampleKey,
};
use morpheus_repro::oracle::{Oracle, OracleService, RunFirstTuner, NUM_FEATURES};
use std::sync::Arc;
use std::time::Duration;

fn tridiag(n: usize) -> DynamicMatrix<f64> {
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    for i in 0..n {
        for d in [-1isize, 0, 1] {
            let j = i as isize + d;
            if j >= 0 && (j as usize) < n {
                rows.push(i);
                cols.push(j as usize);
            }
        }
    }
    let vals = vec![1.0; rows.len()];
    DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
}

fn scattered(n: usize, stride: usize) -> DynamicMatrix<f64> {
    let rows: Vec<usize> = (0..n).collect();
    let cols: Vec<usize> = (0..n).map(|i| (i * stride + 1) % n).collect();
    let vals = vec![1.0; n];
    DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
}

type AdaptiveService = Arc<OracleService<AdaptiveTuner<RunFirstTuner>>>;

fn adaptive_service(collector: &Arc<SampleCollector>, cache_capacity: usize) -> AdaptiveService {
    Arc::new(
        Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::Serial))
            .tuner(AdaptiveTuner::new(RunFirstTuner::new(1)))
            .collector(Arc::clone(collector))
            .cache_capacity(cache_capacity)
            .build_service()
            .unwrap(),
    )
}

/// Deterministic measured observations: structure `s` has features keyed
/// by `s`, DIA fastest for even structures, CSR fastest for odd ones.
fn feed_observations(collector: &SampleCollector, structures: u64) {
    for s in 0..structures {
        let mut fv = [0.0f64; NUM_FEATURES];
        fv[0] = 100.0 + s as f64;
        fv[1] = 100.0;
        fv[2] = 300.0 + (s % 2) as f64 * 5_000.0;
        fv[3] = 3.0;
        fv[4] = 0.03;
        fv[5] = 3.0 + (s % 2) as f64 * 40.0;
        fv[6] = 1.0;
        fv[8] = 3.0;
        fv[9] = 3.0;
        collector.note_features(s, &morpheus_repro::oracle::FeatureVector(fv));
        for (fmt, us) in [(FormatId::Csr, 40 + s % 2 * 60), (FormatId::Dia, 70 - s % 2 * 60)] {
            for _ in 0..3 {
                collector.record(
                    SampleKey {
                        structure: s,
                        format: fmt,
                        op: Op::Spmv,
                        scalar_bytes: 8,
                        workers: 1,
                        variant: KernelVariant::Scalar,
                        param_code: 0,
                    },
                    Duration::from_micros(us),
                );
            }
        }
    }
}

#[test]
fn seeded_collector_and_retrain_are_bitwise_deterministic() {
    let serialize_after_round = || {
        let collector = Arc::new(SampleCollector::new(CollectorConfig::default()));
        feed_observations(&collector, 24);
        let service = adaptive_service(&collector, 64);
        let engine = AdaptiveEngine::new(Arc::clone(&service), AdaptiveConfig::default()).unwrap();
        let report = engine.round().unwrap();
        assert!(
            matches!(report.outcome, RetrainOutcome::Swapped { .. }),
            "consistent observations must install a model: {report:?}"
        );
        let epoch = service.tuner().current().expect("installed");
        let mut buf = Vec::new();
        epoch.model.save(&mut buf).unwrap();
        (buf, epoch.holdout_accuracy)
    };
    let (a, acc_a) = serialize_after_round();
    let (b, acc_b) = serialize_after_round();
    assert_eq!(a, b, "two identical seeded runs must serialize bitwise-identical models");
    assert_eq!(acc_a, acc_b);
    assert!(acc_a >= 0.5, "learnable rule must clear the floor: {acc_a}");
}

#[test]
fn hot_swap_under_concurrent_clients_is_never_torn() {
    // Single-class datasets make constant-prediction models: the old model
    // always answers ELL, the new one always HYB. Any other prediction
    // observed by a client while models are being swapped would mean a
    // torn or partially installed model.
    let constant_model = |fmt: FormatId| {
        let mut ds = Dataset::empty(NUM_FEATURES, FORMAT_COUNT, vec![]).unwrap();
        for i in 0..12 {
            let row = [50.0 + i as f64, 50.0, 150.0, 3.0, 0.06, 3.0, 1.0, 0.5, 3.0, 3.0, 0.4, 1.1];
            ds.push(&row, fmt.index()).unwrap();
        }
        LearnedModel::Forest(
            morpheus_repro::ml::RandomForest::fit(
                &ds,
                &morpheus_repro::ml::ForestParams { n_estimators: 3, ..Default::default() },
            )
            .unwrap(),
        )
    };

    let collector = Arc::new(SampleCollector::new(CollectorConfig::default()));
    // Cache capacity 0: every tune consults the tuner, so clients observe
    // the live model on every call.
    let service = adaptive_service(&collector, 0);
    service.tuner().install(ModelEpoch {
        model: constant_model(FormatId::Ell),
        op: Op::Spmv,
        holdout_accuracy: 1.0,
    });

    let swaps = 40;
    std::thread::scope(|s| {
        for _ in 0..4 {
            let service = Arc::clone(&service);
            s.spawn(move || {
                let base = tridiag(300);
                while service.tuner().epoch() < swaps {
                    let mut m = base.clone();
                    let report = service.tune(&mut m).unwrap();
                    assert!(
                        report.predicted == FormatId::Ell || report.predicted == FormatId::Hyb,
                        "decision must come from exactly the old or the new model, got {:?}",
                        report.predicted
                    );
                }
            });
        }
        // Swap back and forth while the clients hammer the tuner.
        let mut next = FormatId::Hyb;
        while service.tuner().epoch() < swaps {
            service.tuner().install(ModelEpoch {
                model: constant_model(next),
                op: Op::Spmv,
                holdout_accuracy: 1.0,
            });
            next = if next == FormatId::Hyb { FormatId::Ell } else { FormatId::Hyb };
            std::thread::yield_now();
        }
    });
    assert!(service.tuner().epoch() >= swaps);
}

#[test]
fn serving_feeds_telemetry_and_sweep_fills_coverage() {
    let collector = Arc::new(SampleCollector::new(CollectorConfig::default()));
    let service = adaptive_service(&collector, 64);
    let engine = AdaptiveEngine::new(Arc::clone(&service), AdaptiveConfig::default()).unwrap();

    let corpus: Vec<DynamicMatrix<f64>> =
        vec![tridiag(300), tridiag(500), scattered(400, 7), scattered(600, 11)];
    // Serve: registered-path executions are measured on the hot path.
    for m in &corpus {
        let handle = service.register(m.clone()).unwrap();
        let x = vec![1.0; m.ncols()];
        let mut y = vec![0.0; m.nrows()];
        for _ in 0..3 {
            service.spmv(&handle, &x, &mut y).unwrap();
        }
    }
    let snap = service.snapshot();
    let adaptation = snap.adaptation.expect("collector attached");
    assert_eq!(adaptation.telemetry.recorded, 12, "every handle execution must be measured");
    assert_eq!(adaptation.telemetry.dropped, 0);
    assert_eq!(adaptation.structures_profiled, corpus.len());
    assert_eq!(snap.serve.handle_requests, 12);
    assert_eq!(snap.decisions.misses, 4);

    // Serving alone observes only the tuned format per matrix: nothing to
    // compare, nothing to label.
    let before = collector.build_dataset(Op::Spmv).unwrap();
    assert_eq!(before.labeled, 0);
    assert_eq!(before.skipped_sparse, corpus.len());

    // The trial sweep measures every viable format and unlocks labeling.
    for m in &corpus {
        let report = engine.sweep(m).unwrap();
        assert!(report.formats_timed >= 2);
        assert!(report.cost.measured > 0.0, "sweep seconds must be charged");
    }
    let after = collector.build_dataset(Op::Spmv).unwrap();
    assert_eq!(after.labeled, corpus.len(), "sweeps must label every structure: {after:?}");
    assert!(collector.measured_seconds() > 0.0);
}

#[test]
fn adaptation_round_swaps_and_forced_drift_falls_back_without_restart() {
    let collector = Arc::new(SampleCollector::new(CollectorConfig::default()));
    let service = adaptive_service(&collector, 64);
    let config = AdaptiveConfig { accuracy_floor: 0.8, min_samples: 6, ..Default::default() };
    let engine = AdaptiveEngine::new(Arc::clone(&service), config).unwrap();

    feed_observations(&collector, 16);
    let report = engine.round().unwrap();
    let RetrainOutcome::Swapped { epoch } = report.outcome else {
        panic!("first round on consistent data must swap: {report:?}");
    };
    assert_eq!(service.tuner().epoch(), epoch);
    assert!(report.candidate_accuracy.unwrap() >= 0.8);
    assert!(report.candidate.is_some());

    // Independent verification of the reported holdout accuracy: rebuild
    // the (deterministic) dataset the round consumed and re-evaluate the
    // installed model through `cv::holdout_score` with the same fraction
    // and seed — the determinism contract says it must reproduce the
    // round's own holdout split exactly.
    let installed = service.tuner().current().unwrap();
    let collected = collector.build_dataset(Op::Spmv).unwrap().dataset;
    let defaults = AdaptiveConfig::default();
    let independent = morpheus_repro::ml::cv::holdout_score(
        &collected,
        defaults.holdout_fraction,
        defaults.seed,
        |_, held| {
            let preds: Vec<usize> = (0..held.len()).map(|i| installed.model.predict(held.row(i))).collect();
            morpheus_repro::ml::metrics::accuracy(held.targets(), &preds)
        },
    );
    assert_eq!(Some(independent), report.candidate_accuracy, "reported accuracy must be reproducible");

    // The swapped model now serves selections (prediction cost charged,
    // no run-first profiling).
    let mut m = tridiag(400);
    let tuned = service.tune(&mut m).unwrap();
    assert_eq!(tuned.cost.profiling, 0.0, "learned model must replace run-first profiling");
    assert!(tuned.cost.prediction > 0.0);

    // Forced drift: identical features now measure fastest in rotating
    // formats — nothing learnable, and the incumbent's rule is wrong too.
    let mut drifted = Dataset::empty(NUM_FEATURES, FORMAT_COUNT, vec![]).unwrap();
    for i in 0..30 {
        let row = [800.0, 800.0, 4000.0, 5.0, 0.006, 30.0, 1.0, 2.0, 25.0, 0.0, 0.1, 1.4];
        let label = [FormatId::Coo, FormatId::Csr, FormatId::Dia][i % 3];
        drifted.push(&row, label.index()).unwrap();
    }
    let drift_report = engine.round_with(drifted).unwrap();
    let RetrainOutcome::FellBack { epoch: fell_at } = drift_report.outcome else {
        panic!("drift must trigger the analytical fallback: {drift_report:?}");
    };
    assert!(fell_at > epoch);
    assert!(drift_report.candidate_accuracy.unwrap() < 0.8);
    assert!(drift_report.incumbent_accuracy.unwrap() < 0.8);

    // No restart: the same service keeps answering, now via the
    // analytical run-first fallback (profiling cost returns).
    assert!(service.tuner().current().is_none());
    let mut again = tridiag(700);
    let fallback_report = service.tune(&mut again).unwrap();
    assert!(fallback_report.cost.profiling > 0.0, "fallback must be the analytical tuner");

    // And the fallback decision matches a plain RunFirstTuner session.
    let mut reference_session = Oracle::builder()
        .engine(VirtualEngine::new(systems::cirrus(), Backend::Serial))
        .tuner(RunFirstTuner::new(1))
        .build()
        .unwrap();
    let mut reference = tridiag(700);
    assert_eq!(fallback_report.chosen, reference_session.tune(&mut reference).unwrap().chosen);
}

#[test]
fn retained_incumbent_survives_weaker_candidates() {
    let collector = Arc::new(SampleCollector::new(CollectorConfig::default()));
    let service = adaptive_service(&collector, 64);
    let config = AdaptiveConfig { accuracy_floor: 0.6, min_samples: 6, ..Default::default() };
    let engine = AdaptiveEngine::new(Arc::clone(&service), config).unwrap();

    feed_observations(&collector, 16);
    let first = engine.round().unwrap();
    assert!(matches!(first.outcome, RetrainOutcome::Swapped { .. }));
    let epoch_after_swap = service.tuner().epoch();

    // A noisy-but-not-drifted batch: the incumbent still clears the floor
    // on it, the fresh candidate cannot beat it -> retained, no epoch bump.
    let incumbent = service.tuner().current().unwrap();
    let mut noisy = Dataset::empty(NUM_FEATURES, FORMAT_COUNT, vec![]).unwrap();
    for s in 0..12u64 {
        let mut fv = [0.0f64; NUM_FEATURES];
        fv[0] = 100.0 + s as f64;
        fv[1] = 100.0;
        fv[2] = 300.0 + (s % 2) as f64 * 5_000.0;
        fv[3] = 3.0;
        fv[4] = 0.03;
        fv[5] = 3.0 + (s % 2) as f64 * 40.0;
        fv[6] = 1.0;
        fv[8] = 3.0;
        fv[9] = 3.0;
        // Labels agree with what the incumbent already predicts.
        noisy.push(&fv, incumbent.model.predict(&fv)).unwrap();
    }
    let second = engine.round_with(noisy).unwrap();
    assert!(
        matches!(second.outcome, RetrainOutcome::Swapped { .. } | RetrainOutcome::Retained),
        "agreeing data must never force a fallback: {second:?}"
    );
    if second.outcome == RetrainOutcome::Retained {
        assert_eq!(service.tuner().epoch(), epoch_after_swap, "retain must not bump the epoch");
    }
    assert_eq!(engine.rounds(), 2);
}

#[test]
fn skipped_rounds_report_reasons_and_touch_nothing() {
    let collector = Arc::new(SampleCollector::new(CollectorConfig::default()));
    let service = adaptive_service(&collector, 64);
    let engine = AdaptiveEngine::new(Arc::clone(&service), AdaptiveConfig::default()).unwrap();
    let report = engine.round().unwrap();
    let RetrainOutcome::Skipped { reason } = &report.outcome else {
        panic!("empty collector must skip: {report:?}");
    };
    assert!(reason.contains("min_samples"), "{reason}");
    assert_eq!(service.tuner().epoch(), 0);
    assert!(service.tuner().current().is_none());
}

#[test]
fn base_dataset_warm_start_composes_with_collected_samples() {
    let collector = Arc::new(SampleCollector::new(CollectorConfig::default()));
    let service = adaptive_service(&collector, 64);
    // Offline corpus alone is enough to retrain even before any traffic.
    let mut base = Dataset::empty(NUM_FEATURES, FORMAT_COUNT, vec![]).unwrap();
    for i in 0..20 {
        let wide = i % 2 == 0;
        let row =
            [500.0, 500.0, 2500.0, 5.0, 0.01, if wide { 50.0 } else { 5.0 }, 1.0, 1.0, 20.0, 1.0, 0.2, 1.3];
        base.push(&row, if wide { FormatId::Ell.index() } else { FormatId::Csr.index() }).unwrap();
    }
    let config = AdaptiveConfig { base_dataset: Some(base), ..Default::default() };
    let engine = AdaptiveEngine::new(Arc::clone(&service), config).unwrap();
    let report = engine.round().unwrap();
    assert_eq!(report.samples, 20, "base dataset must participate");
    assert!(matches!(report.outcome, RetrainOutcome::Swapped { .. }), "{report:?}");
}
