//! Failure-injection integration tests: malformed model files, inconsistent
//! matrices and degenerate inputs must produce errors, not corruption.

use morpheus_repro::ml::serialize::load_model;
use morpheus_repro::morpheus::io::read_matrix_market;
use morpheus_repro::morpheus::spmv::spmv_serial;
use morpheus_repro::morpheus::{
    ConvertOptions, CooMatrix, CsrMatrix, DynamicMatrix, FormatId, MorpheusError,
};
use morpheus_repro::oracle::{DecisionTreeTuner, RandomForestTuner};
use std::io::Cursor;

#[test]
fn truncated_model_files_are_rejected_at_every_line() {
    // A valid single-tree model file, truncated after each line: every
    // prefix must fail to parse (never panic, never half-load).
    let full = "morpheus-oracle-model v1\nkind tree\nclasses 6\nfeatures 10\ntrees 1\n\
                tree 0 nodes 3\nnode 0 split 2 1.5e3 1 2\nnode 1 leaf 1 0 9 0 0 0 0\n\
                node 2 leaf 3 0 0 0 7 0 0\nend\n";
    let lines: Vec<&str> = full.lines().collect();
    for cut in 0..lines.len() {
        let partial = lines[..cut].join("\n");
        assert!(load_model(Cursor::new(partial.as_bytes())).is_err(), "prefix of {cut} lines parsed");
    }
    assert!(load_model(Cursor::new(full.as_bytes())).is_ok());
}

#[test]
fn corrupted_node_references_rejected() {
    let cases = [
        // Forward reference beyond the node table.
        "morpheus-oracle-model v1\nkind tree\nclasses 2\nfeatures 10\ntrees 1\ntree 0 nodes 2\nnode 0 split 0 1.0 1 5\nnode 1 leaf 0 1 0\nend\n",
        // Backward reference (cycle).
        "morpheus-oracle-model v1\nkind tree\nclasses 2\nfeatures 10\ntrees 1\ntree 0 nodes 3\nnode 0 split 0 1.0 1 2\nnode 1 split 0 2.0 0 2\nnode 2 leaf 0 1 0\nend\n",
        // NaN threshold.
        "morpheus-oracle-model v1\nkind tree\nclasses 2\nfeatures 10\ntrees 1\ntree 0 nodes 1\nnode 0 split 0 NaN 1 2\nend\n",
    ];
    for text in cases {
        assert!(load_model(Cursor::new(text.as_bytes())).is_err());
    }
}

#[test]
fn tuner_constructors_reject_mismatched_models() {
    // 3-feature model: incompatible with the 10-feature extractor.
    let text = "morpheus-oracle-model v1\nkind tree\nclasses 2\nfeatures 3\ntrees 1\ntree 0 nodes 1\nnode 0 leaf 0 1 0\nend\n";
    assert!(DecisionTreeTuner::from_reader(Cursor::new(text.as_bytes())).is_err());
    // 10 features but 9 classes: more classes than formats.
    let text = "morpheus-oracle-model v1\nkind forest\nclasses 9\nfeatures 10\ntrees 1\ntree 0 nodes 1\nnode 0 leaf 0 1 0 0 0 0 0 0 0 0\nend\n";
    assert!(RandomForestTuner::from_reader(Cursor::new(text.as_bytes())).is_err());
}

#[test]
fn matrix_market_failures_do_not_panic() {
    let bads = [
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n4 1 1.0\n", // row out of bounds
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 abc\n", // bad value
        "%%MatrixMarket matrix coordinate real general\n-1 3 1\n",         // negative size
        "garbage\n1 1 1\n",
    ];
    for text in bads {
        let r: Result<CooMatrix<f64>, _> = read_matrix_market(Cursor::new(text.as_bytes()));
        assert!(r.is_err());
    }
}

#[test]
fn invalid_csr_structures_rejected() {
    // Offsets describing more entries than provided.
    assert!(CsrMatrix::<f64>::from_parts(2, 2, vec![0, 3, 4], vec![0, 1], vec![1.0, 2.0]).is_err());
    // Decreasing offsets.
    assert!(CsrMatrix::<f64>::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
}

#[test]
fn excessive_padding_error_carries_diagnostics() {
    // Wide scatter: DIA would need every diagonal.
    let n = 5000usize;
    let rows: Vec<usize> = (0..n / 4).map(|k| (k * 17) % n).collect();
    let cols: Vec<usize> = (0..n / 4).map(|k| (k * 113) % n).collect();
    let vals = vec![1.0f64; rows.len()];
    let m = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());
    let opts = ConvertOptions { max_fill: 2.0, min_padded_allowance: 64, ..Default::default() };
    match m.to_format(FormatId::Dia, &opts) {
        Err(MorpheusError::ExcessivePadding { format, padded, nnz, limit }) => {
            assert_eq!(format, FormatId::Dia);
            assert!(padded > limit);
            assert_eq!(nnz, m.nnz());
        }
        other => panic!("expected ExcessivePadding, got {other:?}"),
    }
}

#[test]
fn zero_dimension_matrices_are_harmless() {
    for (r, c) in [(0usize, 0usize), (0, 5), (5, 0)] {
        let m = DynamicMatrix::from(CooMatrix::<f64>::new(r, c));
        assert_eq!(m.nnz(), 0);
        let x = vec![0.0; c];
        let mut y = vec![0.0; r];
        spmv_serial(&m, &x, &mut y).unwrap();
        // CSR conversion of degenerate shapes also works.
        let csr = m.to_format(FormatId::Csr, &ConvertOptions::default()).unwrap();
        assert_eq!(csr.nnz(), 0);
    }
}
