//! Property-based integration tests for the planned execution layer:
//! planned threaded SpMV and threaded SpMM must be **bitwise** identical to
//! the serial kernels in every format (including edge shapes), plan
//! construction must add zero matrix traversals on top of an `Analysis`,
//! and the Oracle must amortise plans across an iterative loop.

use morpheus_repro::machine::{systems, Backend, VirtualEngine};
use morpheus_repro::morpheus::analysis::passes;
use morpheus_repro::morpheus::format::{FormatId, ALL_FORMATS};
use morpheus_repro::morpheus::spmm::{spmm_serial, spmm_threaded};
use morpheus_repro::morpheus::spmv::spmv_serial;
use morpheus_repro::morpheus::{Analysis, ConvertOptions, CooMatrix, DynamicMatrix, ExecPlan};
use morpheus_repro::oracle::{Oracle, PlanStatus, RunFirstTuner};
use morpheus_repro::parallel::ThreadPool;
use proptest::prelude::*;

/// Strategy: a small random sparse matrix as (nrows, ncols, entries).
fn arb_matrix() -> impl Strategy<Value = DynamicMatrix<f64>> {
    (2usize..40, 2usize..40).prop_flat_map(|(nrows, ncols)| {
        let entry = (0..nrows, 0..ncols, -100i32..100).prop_map(|(r, c, v)| (r, c, v));
        proptest::collection::vec(entry, 0..120).prop_map(move |entries| {
            let rows: Vec<usize> = entries.iter().map(|e| e.0).collect();
            let cols: Vec<usize> = entries.iter().map(|e| e.1).collect();
            // Avoid explicit zeros (DIA storage cannot distinguish them
            // from padding) and duplicate-sum cancellations.
            let vals: Vec<f64> = entries.iter().map(|e| f64::from(e.2) + 1000.5).collect();
            DynamicMatrix::from(CooMatrix::from_triplets(nrows, ncols, &rows, &cols, &vals).unwrap())
        })
    })
}

fn tolerant_opts() -> ConvertOptions {
    // Small matrices: allow any amount of padding so every format converts.
    ConvertOptions { min_padded_allowance: 1 << 24, ..Default::default() }
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Hand-picked edge shapes the fuzzer rarely lands on exactly: empty
/// matrices, a single row, leading/trailing all-zero rows, one giant row.
fn edge_matrices() -> Vec<DynamicMatrix<f64>> {
    let t = |nr: usize, nc: usize, rows: &[usize], cols: &[usize]| {
        let vals = vec![1.5f64; rows.len()];
        DynamicMatrix::from(CooMatrix::from_triplets(nr, nc, rows, cols, &vals).unwrap())
    };
    vec![
        DynamicMatrix::from(CooMatrix::<f64>::new(0, 0)),
        DynamicMatrix::from(CooMatrix::<f64>::new(7, 7)),
        DynamicMatrix::from(CooMatrix::<f64>::new(0, 5)),
        DynamicMatrix::from(CooMatrix::<f64>::new(5, 0)),
        // Single row.
        t(1, 9, &[0, 0, 0], &[1, 4, 8]),
        // First and last rows empty.
        t(6, 6, &[2, 3, 3], &[0, 2, 5]),
        // One giant row among singletons (cannot be split by any
        // row-aligned partition).
        t(
            10,
            40,
            &{
                let mut r = vec![4usize; 35];
                r.extend([0, 9]);
                r
            },
            &{
                let mut c: Vec<usize> = (0..35).collect();
                c.extend([3, 7]);
                c
            },
        ),
        // All-zero-row heavy: only the middle row is populated.
        t(30, 4, &[15, 15, 15, 15], &[0, 1, 2, 3]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Planned threaded SpMV is bitwise identical to serial in every
    /// format, whether the plan was derived from an `Analysis` or from the
    /// matrix alone, and whether executed on 1, 3 or 5 workers.
    #[test]
    fn planned_spmv_bitwise_identical_to_serial(m in arb_matrix(), threads in 1usize..6) {
        let pool = ThreadPool::new(threads);
        let opts = tolerant_opts();
        let x: Vec<f64> = (0..m.ncols()).map(|i| ((i * 31 + 7) % 13) as f64 - 6.0).collect();
        for &fmt in &ALL_FORMATS {
            let converted = m.to_format(fmt, &opts).unwrap();
            let mut y_ref = vec![0.0; m.nrows()];
            spmv_serial(&converted, &x, &mut y_ref).unwrap();
            let analysis = Analysis::of(&converted, opts.true_diag_alpha);
            for plan in [
                ExecPlan::build(&converted, pool.num_threads(), None),
                ExecPlan::build(&converted, pool.num_threads(), Some(&analysis)),
            ] {
                let mut y = vec![f64::NAN; m.nrows()];
                plan.spmv(&converted, &x, &mut y, &pool).unwrap();
                prop_assert!(bits_eq(&y, &y_ref), "{fmt} x{threads}: planned SpMV diverged");
            }
        }
    }

    /// Threaded SpMM is bitwise identical to serial in every format.
    #[test]
    fn threaded_spmm_bitwise_identical_to_serial(m in arb_matrix(), threads in 1usize..6, k in 1usize..5) {
        let pool = ThreadPool::new(threads);
        let opts = tolerant_opts();
        let x: Vec<f64> = (0..m.ncols() * k).map(|i| ((i * 17 + 3) % 11) as f64 - 5.0).collect();
        for &fmt in &ALL_FORMATS {
            let converted = m.to_format(fmt, &opts).unwrap();
            let mut y_ref = vec![0.0; m.nrows() * k];
            spmm_serial(&converted, &x, &mut y_ref, k).unwrap();
            let mut y = vec![f64::NAN; m.nrows() * k];
            spmm_threaded(&converted, &x, &mut y, k, &pool).unwrap();
            prop_assert!(bits_eq(&y, &y_ref), "{fmt} x{threads} k={k}: threaded SpMM diverged");
        }
    }

    /// The plan's reusable workspace produces the same bits as
    /// caller-provided outputs, across alternating SpMV/SpMM calls.
    #[test]
    fn workspace_execution_bitwise_identical(m in arb_matrix(), k in 1usize..4) {
        let pool = ThreadPool::new(3);
        let opts = tolerant_opts();
        let converted = m.to_format(FormatId::Csr, &opts).unwrap();
        let x: Vec<f64> = (0..m.ncols()).map(|i| (i % 9) as f64 + 0.25).collect();
        let xk: Vec<f64> = (0..m.ncols() * k).map(|i| (i % 9) as f64 - 4.0).collect();
        let mut plan = ExecPlan::build(&converted, pool.num_threads(), None);

        let mut y_ref = vec![0.0; m.nrows()];
        spmv_serial(&converted, &x, &mut y_ref).unwrap();
        let mut ymm_ref = vec![0.0; m.nrows() * k];
        spmm_serial(&converted, &xk, &mut ymm_ref, k).unwrap();

        let y = plan.spmv_workspace(&converted, &x, &pool).unwrap().to_vec();
        prop_assert!(bits_eq(&y, &y_ref));
        let ymm = plan.spmm_workspace(&converted, &xk, k, &pool).unwrap().to_vec();
        prop_assert!(bits_eq(&ymm, &ymm_ref));
        // And back again: the workspace shrinks correctly.
        let y2 = plan.spmv_workspace(&converted, &x, &pool).unwrap();
        prop_assert!(bits_eq(y2, &y_ref));
    }

    /// Traversal budget: given an `Analysis`, building a plan for every
    /// format performs **zero** additional matrix traversals, and planned
    /// executions add none either.
    #[test]
    fn plan_construction_and_execution_add_zero_traversals(m in arb_matrix(), threads in 1usize..5) {
        let opts = tolerant_opts();
        let pool = ThreadPool::new(threads);
        let x: Vec<f64> = (0..m.ncols()).map(|_| 1.0).collect();
        for &fmt in &ALL_FORMATS {
            let converted = m.to_format(fmt, &opts).unwrap();
            let analysis = Analysis::of(&converted, opts.true_diag_alpha);
            passes::reset();
            let plan = ExecPlan::build(&converted, pool.num_threads(), Some(&analysis));
            prop_assert_eq!(passes::count(), 0, "{} plan construction traversed the matrix", fmt);
            let mut y = vec![0.0; m.nrows()];
            plan.spmv(&converted, &x, &mut y, &pool).unwrap();
            prop_assert_eq!(passes::count(), 0, "{} planned execution traversed the matrix", fmt);
        }
    }
}

#[test]
fn edge_shapes_planned_spmv_and_spmm_match_serial_bitwise() {
    let pool = ThreadPool::new(4);
    let opts = tolerant_opts();
    let k = 3usize;
    for (i, m) in edge_matrices().into_iter().enumerate() {
        let x: Vec<f64> = (0..m.ncols()).map(|i| 1.0 + i as f64 * 0.5).collect();
        let xk: Vec<f64> = (0..m.ncols() * k).map(|i| (i % 5) as f64 - 2.0).collect();
        for &fmt in &ALL_FORMATS {
            let Ok(converted) = m.to_format(fmt, &opts) else { continue };
            let analysis = Analysis::of(&converted, opts.true_diag_alpha);
            let plan = ExecPlan::build(&converted, pool.num_threads(), Some(&analysis));

            let mut y_ref = vec![0.0; m.nrows()];
            spmv_serial(&converted, &x, &mut y_ref).unwrap();
            let mut y = vec![f64::NAN; m.nrows()];
            plan.spmv(&converted, &x, &mut y, &pool).unwrap();
            assert!(bits_eq(&y, &y_ref), "edge {i} {fmt}: planned SpMV diverged");

            let mut ymm_ref = vec![0.0; m.nrows() * k];
            spmm_serial(&converted, &xk, &mut ymm_ref, k).unwrap();
            let mut ymm = vec![f64::NAN; m.nrows() * k];
            plan.spmm(&converted, &xk, &mut ymm, k, &pool).unwrap();
            assert!(bits_eq(&ymm, &ymm_ref), "edge {i} {fmt}: planned SpMM diverged");
        }
    }
}

/// The end-to-end amortisation story: an OpenMP session in an iterative
/// loop pays planning once; SpMV and SpMM share the structure's plan.
#[test]
fn oracle_session_amortises_plans_across_iterations() {
    let mut oracle = Oracle::builder()
        .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
        .tuner(RunFirstTuner::new(2))
        .build()
        .unwrap();
    let n = 900usize;
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    for i in 0..n {
        rows.push(i);
        cols.push((i * 7) % n);
        rows.push(i);
        cols.push((i * 13 + 1) % n);
    }
    let vals = vec![1.0f64; rows.len()];
    let mut m = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());
    let x = vec![1.0f64; n];
    let mut y = vec![0.0f64; n];

    let first = oracle.tune_and_spmv(&mut m, &x, &mut y).unwrap();
    assert_eq!(first.plan, PlanStatus::Built);
    let mut y_ref = vec![0.0f64; n];
    spmv_serial(&m, &x, &mut y_ref).unwrap();
    assert_eq!(y, y_ref);

    for _ in 0..4 {
        let next = oracle.tune_and_spmv(&mut m, &x, &mut y).unwrap();
        assert!(next.cache_hit, "steady-state tuning must hit the decision cache");
        assert_eq!(next.plan, PlanStatus::Reused, "steady-state execution must replay the plan");
    }
    assert!(oracle.plan_cache_stats().hits >= 4);
    assert_eq!(oracle.plan_cache_stats().len, 1, "one structure, one plan");
}
