//! Property tests for parameterized formats (PR 9).
//!
//! Every [`ParamStrategy`] realization must convert losslessly and execute
//! planned/threaded SpMV and SpMM **bitwise** identical to the serial
//! kernels across worker counts; forced kernel variants must stay
//! ULP-bounded against the serial CSR reference; and hand-picked parameter
//! edge cases — block dims that don't divide the shape, explicit bucket
//! ladders narrower or wider than the row distribution — must round-trip.

use morpheus_repro::machine::analyze;
use morpheus_repro::morpheus::format::{FormatId, ALL_FORMATS};
use morpheus_repro::morpheus::spmm::spmm_serial;
use morpheus_repro::morpheus::spmv::spmv_serial;
use morpheus_repro::morpheus::spmv::variant::ALL_VARIANTS;
use morpheus_repro::morpheus::{ConvertOptions, CooMatrix, DynamicMatrix, ExecPlan, FormatParams};
use morpheus_repro::oracle::params::{realize, strategies};
use morpheus_repro::parallel::ThreadPool;
use proptest::prelude::*;

/// Strategy: a small random sparse matrix as (nrows, ncols, entries).
fn arb_matrix() -> impl Strategy<Value = DynamicMatrix<f64>> {
    (2usize..40, 2usize..40).prop_flat_map(|(nrows, ncols)| {
        let entry = (0..nrows, 0..ncols, -100i32..100).prop_map(|(r, c, v)| (r, c, v));
        proptest::collection::vec(entry, 0..120).prop_map(move |entries| {
            let rows: Vec<usize> = entries.iter().map(|e| e.0).collect();
            let cols: Vec<usize> = entries.iter().map(|e| e.1).collect();
            // Avoid explicit zeros (DIA storage cannot distinguish them
            // from padding) and duplicate-sum cancellations.
            let vals: Vec<f64> = entries.iter().map(|e| f64::from(e.2) + 1000.5).collect();
            DynamicMatrix::from(CooMatrix::from_triplets(nrows, ncols, &rows, &cols, &vals).unwrap())
        })
    })
}

fn opts_with(params: FormatParams) -> ConvertOptions {
    // Small matrices: allow any amount of padding so every format converts.
    ConvertOptions { min_padded_allowance: 1 << 24, params, ..Default::default() }
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// ULP distance between two finite f64s (`u64::MAX` across a sign change).
fn ulp_distance(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_sign_negative() != b.is_sign_negative() {
        return u64::MAX;
    }
    a.to_bits().abs_diff(b.to_bits())
}

fn ulp_close(got: &[f64], reference: &[f64]) -> bool {
    got.len() == reference.len()
        && got
            .iter()
            .zip(reference)
            .all(|(&g, &r)| ulp_distance(g, r) <= 512 || (g - r).abs() <= 1e-9 * r.abs().max(1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every strategy realization of every format converts losslessly and
    /// its planned SpMV and SpMM stay bitwise identical to the serial
    /// kernels on 1–5 workers.
    #[test]
    fn strategy_realizations_are_lossless_and_plan_bitwise(m in arb_matrix(), threads in 1usize..6) {
        let pool = ThreadPool::new(threads);
        let reference = m.to_coo();
        let a = analyze(&m);
        let x: Vec<f64> = (0..m.ncols()).map(|i| ((i * 31 + 7) % 13) as f64 - 6.0).collect();
        let k = 3usize;
        let xk: Vec<f64> = (0..m.ncols() * k).map(|i| (i % 5) as f64 - 2.0).collect();
        for &fmt in &ALL_FORMATS {
            for &s in strategies(fmt) {
                let opts = opts_with(realize(s, &a));
                let converted = m.to_format(fmt, &opts).unwrap();
                prop_assert_eq!(converted.to_coo(), reference.clone(), "{} {:?}: lossy conversion", fmt, s);

                let mut y_ref = vec![0.0; m.nrows()];
                spmv_serial(&converted, &x, &mut y_ref).unwrap();
                let plan = ExecPlan::build(&converted, pool.num_threads(), None);
                let mut y = vec![f64::NAN; m.nrows()];
                plan.spmv(&converted, &x, &mut y, &pool).unwrap();
                prop_assert!(bits_eq(&y, &y_ref), "{} {:?} x{}: planned SpMV diverged", fmt, s, threads);

                let mut ymm_ref = vec![0.0; m.nrows() * k];
                spmm_serial(&converted, &xk, &mut ymm_ref, k).unwrap();
                let mut ymm = vec![f64::NAN; m.nrows() * k];
                plan.spmm(&converted, &xk, &mut ymm, k, &pool).unwrap();
                prop_assert!(bits_eq(&ymm, &ymm_ref), "{} {:?} x{}: planned SpMM diverged", fmt, s, threads);
            }
        }
    }

    /// Forced kernel variants stay ULP-bounded against the serial CSR
    /// reference in every format: reordered accumulation may perturb the
    /// last bits, never the value.
    #[test]
    fn forced_variants_ulp_bounded_against_csr_reference(m in arb_matrix(), threads in 1usize..6) {
        let pool = ThreadPool::new(threads);
        let opts = opts_with(FormatParams::default());
        let x: Vec<f64> = (0..m.ncols()).map(|i| ((i * 17 + 3) % 11) as f64 - 5.0).collect();
        let csr = m.to_format(FormatId::Csr, &opts).unwrap();
        let mut y_ref = vec![0.0; m.nrows()];
        spmv_serial(&csr, &x, &mut y_ref).unwrap();
        for &fmt in &ALL_FORMATS {
            let converted = m.to_format(fmt, &opts).unwrap();
            for forced in ALL_VARIANTS {
                let plan = ExecPlan::build_with_variant(&converted, pool.num_threads(), None, forced);
                let mut y = vec![f64::NAN; m.nrows()];
                plan.spmv(&converted, &x, &mut y, &pool).unwrap();
                prop_assert!(ulp_close(&y, &y_ref),
                    "{} forced {:?} x{}: diverged beyond ULP bound", fmt, forced, threads);
            }
        }
    }
}

/// Parameter edge cases the fuzzer rarely hits exactly: block dims that
/// don't divide the shape, explicit bucket ladders narrower and wider than
/// the row distribution, degenerate HYB/DIA overrides. Each must
/// round-trip losslessly and execute planned SpMV bitwise-identical to
/// serial on an uneven worker count.
#[test]
fn parameter_edge_cases_round_trip_and_execute() {
    let t = |nr: usize, nc: usize, rows: &[usize], cols: &[usize]| {
        let vals: Vec<f64> = (0..rows.len()).map(|i| 1.5 + i as f64).collect();
        DynamicMatrix::from(CooMatrix::from_triplets(nr, nc, rows, cols, &vals).unwrap())
    };
    let shapes = [
        // 7x13: no block dim divides either side.
        t(7, 13, &[0, 0, 3, 3, 4, 6, 6], &[0, 12, 5, 6, 2, 0, 11]),
        // 9x5 with a full row.
        t(9, 5, &[1, 1, 1, 1, 1, 4, 8], &[0, 1, 2, 3, 4, 2, 4]),
        // Single row, single column.
        t(1, 3, &[0, 0], &[0, 2]),
        t(3, 1, &[0, 2], &[0, 0]),
        // Empty matrix still converts under any parameters.
        DynamicMatrix::from(CooMatrix::<f64>::new(4, 4)),
    ];
    let param_sets: Vec<FormatParams> = vec![
        FormatParams { bsr_block: (2, 2), ..Default::default() },
        FormatParams { bsr_block: (4, 4), ..Default::default() },
        FormatParams { bsr_block: (8, 8), ..Default::default() },
        // Ladder narrower than the widest row: conversion must widen.
        FormatParams::default().with_bell_ladder(&[1]),
        FormatParams::default().with_bell_ladder(&[1, 3, 7]),
        // Ladder far wider than any row: everything pads into one bucket.
        FormatParams::default().with_bell_ladder(&[64]),
        FormatParams { hyb_width: Some(1), ..Default::default() },
        FormatParams { hyb_width: Some(1000), ..Default::default() },
        FormatParams { dia_fill: Some(1e9), ..Default::default() },
    ];
    let pool = ThreadPool::new(3);
    for (si, m) in shapes.iter().enumerate() {
        let reference = m.to_coo();
        let x: Vec<f64> = (0..m.ncols()).map(|i| 1.0 + i as f64 * 0.5).collect();
        for (pi, params) in param_sets.iter().enumerate() {
            let opts = opts_with(*params);
            for &fmt in &ALL_FORMATS {
                let converted = m.to_format(fmt, &opts).unwrap();
                assert_eq!(converted.to_coo(), reference, "shape {si} params {pi} {fmt}: lossy");
                let mut y_ref = vec![0.0; m.nrows()];
                spmv_serial(&converted, &x, &mut y_ref).unwrap();
                let plan = ExecPlan::build(&converted, pool.num_threads(), None);
                let mut y = vec![f64::NAN; m.nrows()];
                plan.spmv(&converted, &x, &mut y, &pool).unwrap();
                assert!(bits_eq(&y, &y_ref), "shape {si} params {pi} {fmt}: planned SpMV diverged");
            }
        }
    }
}
