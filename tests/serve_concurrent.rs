//! Concurrency tests for the `OracleService` serving layer: N client
//! threads hammering one shared service over a mixed corpus must produce
//! results bitwise identical to a serial `Oracle` session, and the sharded
//! caches must not lose hits or inserts under contention.
//!
//! The worker count for the service's private pool comes from
//! `MORPHEUS_BENCH_THREADS` (default 2), so CI's multi-worker matrix leg
//! exercises the genuinely concurrent paths.

use morpheus_repro::machine::{systems, Backend, Op, VirtualEngine};
use morpheus_repro::morpheus::{CooMatrix, DynamicMatrix, Workspace};
use morpheus_repro::oracle::{Oracle, OracleService, RunFirstTuner};
use morpheus_repro::parallel::ThreadPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn workers() -> usize {
    std::env::var("MORPHEUS_BENCH_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(2)
}

/// A small mixed corpus: banded (DIA-friendly), powerlaw (CSR/HYB
/// territory), stencil and scattered structures, so concurrent clients mix
/// formats, plans and partition styles.
fn corpus() -> Vec<(String, DynamicMatrix<f64>)> {
    use morpheus_repro::corpus::gen::banded::{multi_diagonal, tridiagonal};
    use morpheus_repro::corpus::gen::powerlaw::zipf_rows;
    use morpheus_repro::corpus::gen::random::variable_degree;
    use morpheus_repro::corpus::gen::stencil::poisson2d;
    let mut rng = StdRng::seed_from_u64(99);
    vec![
        ("tridiagonal".into(), DynamicMatrix::from(tridiagonal(700))),
        ("multi-diagonal".into(), DynamicMatrix::from(multi_diagonal(500, 5, &mut rng))),
        ("zipf".into(), DynamicMatrix::from(zipf_rows(600, 4_000, 1.1, &mut rng))),
        ("poisson2d".into(), DynamicMatrix::from(poisson2d(24, 24))),
        ("variable-degree".into(), DynamicMatrix::from(variable_degree(400, 1, 24, &mut rng))),
    ]
}

fn input_for(m: &DynamicMatrix<f64>) -> Vec<f64> {
    (0..m.ncols()).map(|i| 0.5 + ((i % 17) as f64) * 0.25).collect()
}

fn service() -> OracleService<RunFirstTuner> {
    Oracle::builder()
        .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
        .tuner(RunFirstTuner::new(2))
        .workers(workers())
        .build_service()
        .unwrap()
}

/// Bitwise comparison (NaN-free inputs, so `to_bits` equality is exact).
fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn concurrent_tune_and_spmv_is_bitwise_identical_to_a_serial_session() {
    let corpus = corpus();

    // Serial reference: one single-owner Oracle session over the same
    // engine, executing on a same-width private pool so the planned
    // partitions agree with the service's.
    let mut reference = Oracle::builder()
        .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
        .tuner(RunFirstTuner::new(2))
        .workers(workers())
        .build()
        .unwrap();
    let mut expected = Vec::new();
    for (_, base) in &corpus {
        let mut m = base.clone();
        let x = input_for(base);
        let mut y = vec![0.0f64; base.nrows()];
        reference.tune_and_spmv(&mut m, &x, &mut y).unwrap();
        expected.push((m.format_id(), y));
    }

    let service = Arc::new(service());
    let clients = 4usize;
    let rounds = 3usize;
    std::thread::scope(|s| {
        for c in 0..clients {
            let service = Arc::clone(&service);
            let corpus = &corpus;
            let expected = &expected;
            s.spawn(move || {
                for round in 0..rounds {
                    for (i, (name, base)) in corpus.iter().enumerate() {
                        let mut m = base.clone();
                        let x = input_for(base);
                        let mut y = vec![f64::NAN; base.nrows()];
                        let report = service.tune_and_spmv(&mut m, &x, &mut y).unwrap();
                        let (expect_fmt, expect_y) = &expected[i];
                        assert_eq!(
                            report.chosen, *expect_fmt,
                            "client {c} round {round}: {name} format diverged"
                        );
                        assert!(bitwise_eq(&y, expect_y), "client {c} round {round}: {name} result diverged");
                    }
                }
            });
        }
    });

    // Aggregate accounting under contention: every tune does exactly one
    // counted decision lookup; nothing may be lost.
    let stats = service.cache_stats();
    let total_tunes = (clients * rounds * corpus.len()) as u64;
    assert_eq!(stats.hits + stats.misses, total_tunes, "decision lookups lost under contention: {stats:?}");
    // At most the first round per client can miss; everything after the
    // corpus is cached must hit.
    let first_round_lookups = (clients * corpus.len()) as u64;
    assert!(stats.hits >= total_tunes - first_round_lookups, "too few hits: {stats:?}");
    assert!(stats.len as u64 <= 2 * corpus.len() as u64, "at most structure + alias per entry");

    // Plan accounting: one counted plan lookup per threaded execution.
    let plan = service.plan_cache_stats();
    assert_eq!(plan.hits + plan.misses, total_tunes, "plan lookups lost under contention: {plan:?}");
}

#[test]
fn concurrent_registered_handles_are_deterministic_and_ulp_close_to_serial() {
    let corpus = corpus();
    let service = Arc::new(service());

    // Register once (the amortised path), snapshot each handle's planned
    // result (the plan's bodies run inline — bitwise identical to the
    // pooled execution) on the *realized* matrices. Plans whose ranges all
    // preserve accumulation order are additionally bitwise identical to
    // the serial kernel; `Unrolled` ranges reassociate per-row sums, so
    // those are ULP-bounded against it instead.
    let handles: Vec<_> = corpus.iter().map(|(_, m)| service.register(m.clone()).unwrap()).collect();
    let expected: Vec<Vec<f64>> = handles
        .iter()
        .map(|h| {
            let x = input_for(h.matrix());
            let mut y = vec![f64::NAN; h.nrows()];
            h.plan().spmv_unpooled(h.matrix(), &x, &mut y).unwrap();
            let mut y_serial = vec![0.0f64; h.nrows()];
            morpheus_repro::morpheus::spmv::spmv_serial(h.matrix(), &x, &mut y_serial).unwrap();
            if h.plan().preserves_order() {
                assert!(bitwise_eq(&y, &y_serial), "order-preserving plan must match serial bitwise");
            } else {
                for (a, b) in y.iter().zip(&y_serial) {
                    let tol = 1e-12 * b.abs().max(1.0);
                    assert!((a - b).abs() <= tol, "planned {a} vs serial {b} beyond ULP bound");
                }
            }
            y
        })
        .collect();

    let clients = 4usize;
    let rounds = 8usize;
    std::thread::scope(|s| {
        for c in 0..clients {
            let service = Arc::clone(&service);
            let handles = &handles;
            let expected = &expected;
            let corpus = &corpus;
            s.spawn(move || {
                let mut ws = Workspace::new();
                for round in 0..rounds {
                    for (i, h) in handles.iter().enumerate() {
                        let x = input_for(h.matrix());
                        let y = service.spmv_into(h, &x, &mut ws).unwrap();
                        assert!(
                            bitwise_eq(y, &expected[i]),
                            "client {c} round {round}: {} diverged through its handle",
                            corpus[i].0
                        );
                    }
                }
            });
        }
    });

    let stats = service.serve_stats();
    assert_eq!(
        stats.handle_requests,
        (clients * rounds * handles.len()) as u64,
        "handle executions lost under contention: {stats:?}"
    );
    assert_eq!(stats.registered, handles.len() as u64);

    // SpMM through the same handles agrees with the serial kernel too.
    let k = 3usize;
    let h = &handles[0];
    let xk: Vec<f64> = (0..h.ncols() * k).map(|i| 1.0 + (i % 5) as f64).collect();
    let mut yk = vec![0.0f64; h.nrows() * k];
    service.spmm(h, &xk, &mut yk, k).unwrap();
    let mut yk_ref = vec![0.0f64; h.nrows() * k];
    morpheus_repro::morpheus::spmm::spmm_serial(h.matrix(), &xk, &mut yk_ref, k).unwrap();
    assert!(bitwise_eq(&yk, &yk_ref));
}

#[test]
fn mixed_precision_clients_share_one_service() {
    // f32 and f64 clients of one service: cached decisions are keyed by
    // scalar width, so neither precision contaminates the other.
    let service = Arc::new(service());
    let base64 = DynamicMatrix::from(morpheus_repro::corpus::gen::banded::tridiagonal(400));
    let coo = base64.to_coo();
    let vals32: Vec<f32> = coo.values().iter().map(|&v| v as f32).collect();
    let base32: DynamicMatrix<f32> = DynamicMatrix::from(
        CooMatrix::from_triplets(coo.nrows(), coo.ncols(), coo.row_indices(), coo.col_indices(), &vals32)
            .unwrap(),
    );

    std::thread::scope(|s| {
        let s64 = Arc::clone(&service);
        let m64 = base64.clone();
        s.spawn(move || {
            let h = s64.register(m64).unwrap();
            let x = vec![1.0f64; 400];
            let mut y = vec![0.0f64; 400];
            for _ in 0..5 {
                s64.spmv(&h, &x, &mut y).unwrap();
            }
        });
        let s32 = Arc::clone(&service);
        let m32 = base32.clone();
        s.spawn(move || {
            let h = s32.register(m32).unwrap();
            let x = vec![1.0f32; 400];
            let mut y = vec![0.0f32; 400];
            for _ in 0..5 {
                s32.spmv(&h, &x, &mut y).unwrap();
            }
        });
    });

    let infos = service.registered_matrices();
    assert_eq!(infos.len(), 2);
    let mut widths: Vec<usize> = infos.iter().map(|i| i.scalar_bytes).collect();
    widths.sort_unstable();
    assert_eq!(widths, vec![4, 8]);
    assert_eq!(service.serve_stats().handle_requests, 10);
}

#[test]
fn tune_for_spmm_from_many_threads_converges_to_one_decision() {
    let service = Arc::new(service());
    let mut first = DynamicMatrix::from(morpheus_repro::corpus::gen::stencil::poisson2d(20, 20));
    let fmt = service.tune_for(&mut first, Op::Spmm { k: 8 }).unwrap().chosen;
    std::thread::scope(|s| {
        for _ in 0..4 {
            let service = Arc::clone(&service);
            s.spawn(move || {
                let mut m = DynamicMatrix::from(morpheus_repro::corpus::gen::stencil::poisson2d(20, 20));
                let r = service.tune_for(&mut m, Op::Spmm { k: 8 }).unwrap();
                assert!(r.cache_hit);
                assert_eq!(r.chosen, fmt);
            });
        }
    });
}

#[test]
fn service_keeps_serving_while_an_unrelated_pool_is_saturated() {
    // Saturate a *different* pool user's batch on the service's pool via a
    // long-running job, then serve requests: they must complete promptly
    // through the serial fallback and agree bitwise.
    let service = service();
    let base = DynamicMatrix::from(morpheus_repro::corpus::gen::banded::tridiagonal(500));
    let handle = service.register(base).unwrap();
    let x = input_for(handle.matrix());
    let mut y_free = vec![0.0f64; handle.nrows()];
    service.spmv(&handle, &x, &mut y_free).unwrap();

    // An independent pool (stands in for "another client's batch" on a
    // saturated host) plus the service's own: hammer both.
    let other = ThreadPool::new(workers());
    let gate = std::sync::Barrier::new(2);
    let mut y_busy = vec![f64::NAN; handle.nrows()];
    std::thread::scope(|s| {
        let (other_ref, gate_ref) = (&other, &gate);
        s.spawn(move || {
            other_ref.run_on_all(&|w| {
                if w == 0 {
                    gate_ref.wait();
                }
            });
        });
        // The service's pool is its own; requests go planned. This checks
        // the fallback *doesn't* trigger spuriously while an unrelated
        // pool is saturated.
        service.spmv(&handle, &x, &mut y_busy).unwrap();
        gate.wait();
    });
    assert!(bitwise_eq(&y_busy, &y_free));
    assert_eq!(
        service.serve_stats().pool_busy_fallbacks,
        0,
        "an unrelated pool's saturation must not force fallbacks"
    );
}
