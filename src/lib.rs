//! Umbrella crate for the Morpheus-Oracle reproduction.
//!
//! Re-exports the workspace crates so the examples and integration tests can
//! use a single dependency. See `README.md` for the architecture overview and
//! `DESIGN.md` for the full system inventory.

pub use morpheus;
pub use morpheus_corpus as corpus;
pub use morpheus_machine as machine;
pub use morpheus_ml as ml;
pub use morpheus_oracle as oracle;
pub use morpheus_parallel as parallel;
