//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two primitives `morpheus-parallel` uses — an unbounded MPMC
//! [`channel`] and a [`sync::WaitGroup`] — implemented on `std::sync`
//! mutexes and condvars. Semantics match crossbeam for the supported
//! surface: cloned receivers compete for messages, `recv` returns `Err`
//! once all senders are gone and the queue is drained, and a `WaitGroup`
//! unblocks `wait` when every clone has been dropped.

pub mod channel {
    //! Unbounded multi-producer multi-consumer FIFO channel.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<ChannelState<T>>,
        ready: Condvar,
    }

    struct ChannelState<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Sending half; cloning adds a producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloning adds a competing consumer.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Like crossbeam: no `T: Debug` bound, payload elided.
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is closed and
    /// drained.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(ChannelState { items: VecDeque::new(), senders: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues a message; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders += 1;
            drop(state);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let closed = state.senders == 0;
            drop(state);
            if closed {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel closes empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }
}

pub mod sync {
    //! Synchronisation helpers.

    use std::sync::{Arc, Condvar, Mutex};

    struct WgInner {
        count: Mutex<usize>,
        zero: Condvar,
    }

    /// Blocks until every clone has been dropped (mirrors
    /// `crossbeam::sync::WaitGroup`).
    pub struct WaitGroup {
        inner: Arc<WgInner>,
    }

    impl WaitGroup {
        /// A group with one member (the returned handle).
        pub fn new() -> Self {
            WaitGroup { inner: Arc::new(WgInner { count: Mutex::new(1), zero: Condvar::new() }) }
        }

        /// Drops this handle and blocks until the member count reaches zero.
        pub fn wait(self) {
            let inner = Arc::clone(&self.inner);
            drop(self); // decrements our own membership
            let mut count = inner.count.lock().unwrap_or_else(|e| e.into_inner());
            while *count > 0 {
                count = inner.zero.wait(count).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl Default for WaitGroup {
        fn default() -> Self {
            WaitGroup::new()
        }
    }

    impl Clone for WaitGroup {
        fn clone(&self) -> Self {
            let mut count = self.inner.count.lock().unwrap_or_else(|e| e.into_inner());
            *count += 1;
            drop(count);
            WaitGroup { inner: Arc::clone(&self.inner) }
        }
    }

    impl Drop for WaitGroup {
        fn drop(&mut self) {
            let mut count = self.inner.count.lock().unwrap_or_else(|e| e.into_inner());
            *count -= 1;
            let hit_zero = *count == 0;
            drop(count);
            if hit_zero {
                self.inner.zero.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};
    use super::sync::WaitGroup;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (tx, rx) = unbounded::<usize>();
        let consumed = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            let consumed = Arc::clone(&consumed);
            handles.push(std::thread::spawn(move || {
                while rx.recv().is_ok() {
                    consumed.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn recv_errors_after_close() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn waitgroup_blocks_for_all_members() {
        let wg = WaitGroup::new();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let wg = wg.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
                drop(wg);
            });
        }
        wg.wait();
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }
}
