//! Offline stand-in for the `parking_lot` crate.
//!
//! Only [`Mutex`] is provided (the single type this workspace uses). It
//! wraps `std::sync::Mutex` and mirrors parking_lot's API shape: `lock()`
//! returns the guard directly and poisoning is ignored — a panic while the
//! lock is held does not poison it for later users.

use std::sync::MutexGuard;

/// Poison-free mutex with parking_lot's `lock() -> guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn not_poisoned_by_panics() {
        let m = Mutex::new(0);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock();
            panic!("poison attempt");
        }));
        assert_eq!(*m.lock(), 0);
    }
}
