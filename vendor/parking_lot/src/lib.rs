//! Offline stand-in for the `parking_lot` crate.
//!
//! [`Mutex`] and [`RwLock`] are provided (the two types this workspace
//! uses). They wrap their `std::sync` counterparts and mirror parking_lot's
//! API shape: `lock()`/`read()`/`write()` return the guard directly and
//! poisoning is ignored — a panic while the lock is held does not poison it
//! for later users.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex with parking_lot's `lock() -> guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock with parking_lot's `read()`/`write()`
/// guard signatures.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn not_poisoned_by_panics() {
        let m = Mutex::new(0);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock();
            panic!("poison attempt");
        }));
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_read_write_and_into_inner() {
        let l = RwLock::new(3);
        assert_eq!(*l.read(), 3);
        *l.write() += 4;
        assert_eq!(*l.read(), 7);
        assert_eq!(l.into_inner(), 7);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(1);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 2);
    }

    #[test]
    fn rwlock_not_poisoned_by_panics() {
        let l = RwLock::new(0);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = l.write();
            panic!("poison attempt");
        }));
        assert_eq!(*l.read(), 0);
    }
}
