//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the (small) slice of the `rand` 0.8 API the workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], uniform
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. Everything is deterministic: `StdRng` is a
//! SplitMix64 generator, so a given seed reproduces the same stream on every
//! platform — which is all the corpus generators and the ML stack require.

use std::ops::{Range, RangeInclusive};

/// A source of randomness. Only the methods this workspace calls are
/// provided; all of them derive from [`RngCore::next_u64`].
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing extension methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive, int or float).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        next_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Uniform `[0, 1)` double from the top 53 bits.
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to sample itself (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi - lo + 1) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, isize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                self.start + (next_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                lo + (next_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s `StdRng`.
    ///
    /// Not cryptographic — statistical quality is ample for synthetic-corpus
    /// generation and bootstrap sampling, and determinism per seed is the
    /// property the workspace actually relies on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::RngCore;

    /// Slice shuffling (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
