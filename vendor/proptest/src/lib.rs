//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`ProptestConfig`], and the
//! [`proptest!`] macro. Sampling is deterministic — the RNG is seeded from
//! the test's module path, name and case index — and there is **no
//! shrinking**: a failing case panics with its case number so it can be
//! replayed by rerunning the test.

use std::ops::Range;

/// Deterministic per-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one (test, case) pair: same inputs, same stream, every run.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty strategy range");
        self.next_u64() % n
    }
}

/// Number of cases to run per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases per property (proptest's default is 256; the stub keeps it).
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator (mirrors `proptest::strategy::Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "empty strategy range");
                (lo + rng.uniform_below((hi - lo) as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, isize, u32, u64, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.lo..self.size.hi).generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut prop_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case as u64,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                $body
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 4);
        assert_ne!(TestRng::for_case("x", 3).next_u64(), c.next_u64());
    }

    #[test]
    fn flat_map_and_vec_compose() {
        let strat = (2usize..6).prop_flat_map(|n| crate::collection::vec(0usize..n, n));
        let mut rng = TestRng::for_case("compose", 0);
        for _ in 0..50 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(x in 0usize..10, pair in (0i32..5, 1i32..4)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 5 && pair.1 >= 1);
            prop_assert_eq!(pair.1 < 4, true);
        }
    }
}
