//! Offline stand-in for the `criterion` crate.
//!
//! Benchmarks written against the criterion API (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!`) run unmodified: each benchmark is
//! warmed up once, timed over an adaptive number of iterations targeting
//! ~60 ms of wall clock, and reported as `group/name: median  (min … max)`
//! per-iteration times on stdout. There is no statistical analysis, HTML
//! report or baseline comparison — this is a smoke-level harness for an
//! offline build environment.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle (one per `criterion_group!` run).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10 }
    }
}

/// Identifier composed of a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up, also touches the caches

        // Calibrate: how many iterations fit the per-sample budget?
        let probe = Instant::now();
        std::hint::black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(20));
        let budget = Duration::from_millis(60) / self.sample_size as u32;
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;

        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters);
        }
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        self.report(&id.into(), &mut b.samples);
        self
    }

    /// Benchmarks `f` with an explicit input value under `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        self.report(&id.label, &mut b.samples);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}

    fn report(&self, label: &str, samples: &mut [Duration]) {
        if samples.is_empty() {
            println!("  {}/{label}: no samples (Bencher::iter never called)", self.name);
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let (min, max) = (samples[0], samples[samples.len() - 1]);
        println!("  {}/{label}: {median:?}  ({min:?} … {max:?})", self.name);
    }
}

/// Re-exported for API compatibility with criterion's `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..100u64 * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
