//! CPU timing model for the Serial and OpenMP backends.
//!
//! Each format's runtime is the max of a bandwidth term and a compute term,
//! scaled by a load-imbalance factor derived from the *actual* row
//! distribution, plus loop overheads and (for OpenMP) fork/barrier costs:
//!
//! ```text
//! t = max(bytes / BW(p), flops / (F(p) * eff)) * imbalance
//!     + overhead_cycles / (p * f) + omp_overhead
//! ```
//!
//! where `p` is the number of usable cores (capped when the matrix has too
//! few rows to feed them) and `bytes` accounts for padding, gather locality
//! and cache residency of the `x`/`y` vectors.

use crate::analyze::MatrixAnalysis;
use crate::calib::Calibration;
use crate::spec::CpuSpec;
use morpheus::spmv::variant::{BLOCK_MIN_DIAGS, BLOCK_MIN_WIDTH, BLOCK_ROWS, UNROLL_MIN_AVG_NNZ};
use morpheus::{FormatId, KernelVariant};

const VAL: f64 = 8.0; // f64 value bytes
const IDX: f64 = 8.0; // index bytes on the CPU backends (usize)

/// Cost of one elemental kernel (COO/CSR/DIA/ELL); hybrids compose two.
struct PartCost {
    bytes: f64,
    flops: f64,
    overhead_cycles: f64,
    /// Ratio of the slowest thread's work to the mean (1.0 when balanced).
    imbalance: f64,
    /// Rows that must exist for a thread to have work (drives the usable
    /// core cap).
    parallel_items: f64,
}

/// `x`-gather traffic for index-gathering kernels (CSR/COO/ELL).
fn gather_x_bytes(nnz: f64, ncols: f64, locality: f64, cache: f64, calib: &Calibration) -> f64 {
    let x_resident = VAL * ncols;
    if x_resident <= cache * calib.cache_usable_fraction {
        // x stays cached: pay roughly one sweep.
        x_resident.min(nnz * VAL)
    } else {
        nnz * (locality * calib.gather_hit_bytes + (1.0 - locality) * calib.gather_miss_bytes)
    }
}

/// Imbalance of a row-partition that cannot split rows: the largest row
/// bounds the slowest chunk.
fn row_partition_imbalance(nnz: f64, max_row: f64, threads: usize) -> f64 {
    if threads <= 1 || nnz <= 0.0 {
        return 1.0;
    }
    let ideal = nnz / threads as f64;
    (max_row.max(ideal)) / ideal
}

fn coo_part(
    nnz: f64,
    rows_touched: f64,
    max_row: f64,
    a: &MatrixAnalysis,
    spec: &CpuSpec,
    threads: usize,
    calib: &Calibration,
) -> PartCost {
    let bytes = nnz * (VAL + 2.0 * IDX)
        + gather_x_bytes(nnz, a.ncols() as f64, a.locality, spec.cache_bytes(), calib)
        + rows_touched * 3.0 * VAL; // zero + read-modify-write of y
    PartCost {
        bytes,
        flops: 2.0 * nnz,
        overhead_cycles: nnz * calib.cpu_coo_entry_cycles,
        imbalance: row_partition_imbalance(nnz, max_row, threads),
        parallel_items: rows_touched,
    }
}

fn csr_part(
    nnz: f64,
    nrows: f64,
    imbalance: f64,
    a: &MatrixAnalysis,
    spec: &CpuSpec,
    calib: &Calibration,
) -> PartCost {
    let bytes = nnz * (VAL + IDX)
        + (nrows + 1.0) * IDX
        + gather_x_bytes(nnz, a.ncols() as f64, a.locality, spec.cache_bytes(), calib)
        + nrows * 2.0 * VAL;
    PartCost {
        bytes,
        flops: 2.0 * nnz,
        overhead_cycles: nrows * calib.cpu_row_cycles,
        // Threaded CSR executes over an ExecPlan's nnz-weighted row
        // partition; the caller supplies the imbalance of the partition
        // that actually runs (whole-matrix plan for standalone CSR, the
        // remainder's own distribution for the HDC composite). Hub rows
        // still cannot be split, which is the residual effect that lets
        // regular formats overtake CSR on extreme skew.
        imbalance,
        parallel_items: nrows,
    }
}

fn dia_part(padded: f64, ndiags: f64, a: &MatrixAnalysis, spec: &CpuSpec, calib: &Calibration) -> PartCost {
    let cache = spec.cache_bytes() * calib.cache_usable_fraction;
    let nrows = a.nrows() as f64;
    let ncols = a.ncols() as f64;
    // x and y are streamed once per diagonal when they outgrow the cache.
    let x_bytes = if VAL * ncols <= cache { VAL * ncols } else { padded * VAL };
    let y_bytes = if VAL * nrows <= cache { 2.0 * VAL * nrows } else { 2.0 * padded * VAL };
    PartCost {
        bytes: padded * VAL + ndiags * IDX + x_bytes + y_bytes,
        flops: 2.0 * padded,
        overhead_cycles: ndiags * calib.cpu_diag_cycles,
        imbalance: 1.0, // padded work is uniform across rows
        parallel_items: nrows,
    }
}

fn ell_part(padded: f64, nnz: f64, a: &MatrixAnalysis, spec: &CpuSpec, calib: &Calibration) -> PartCost {
    let nrows = a.nrows() as f64;
    let bytes = padded * (VAL + IDX)
        + gather_x_bytes(nnz, a.ncols() as f64, a.locality, spec.cache_bytes(), calib)
        + nrows * 2.0 * VAL;
    PartCost {
        bytes,
        flops: 2.0 * padded,
        overhead_cycles: nrows * 1.0,
        imbalance: 1.0,
        parallel_items: nrows,
    }
}

fn bsr_part(
    padded: f64,
    nblocks: f64,
    block_dim: f64,
    a: &MatrixAnalysis,
    spec: &CpuSpec,
    threads: usize,
    calib: &Calibration,
) -> PartCost {
    let nbrows = (a.nrows() as f64 / block_dim).ceil();
    // Dense value slabs plus one column index and occupancy mask per block;
    // each gathered x line serves the whole block column, so misses are
    // amortised over the block width.
    let nnz = a.nnz() as f64;
    let block_local = 1.0 - (1.0 - a.locality) / block_dim;
    let bytes = padded * VAL
        + nblocks * (IDX + 8.0)
        + (nbrows + 1.0) * IDX
        + gather_x_bytes(nnz, a.ncols() as f64, block_local, spec.cache_bytes(), calib)
        + a.nrows() as f64 * 2.0 * VAL;
    PartCost {
        bytes,
        // Padding is multiplied through branch-free.
        flops: 2.0 * padded,
        overhead_cycles: nbrows * calib.cpu_row_cycles,
        // Block rows partition by block weight — same greedy, coarser rows.
        imbalance: row_partition_imbalance(nnz, block_dim * a.stats.row_nnz_max as f64, threads),
        parallel_items: nbrows,
    }
}

fn bell_part(
    padded: f64,
    nbuckets: f64,
    a: &MatrixAnalysis,
    spec: &CpuSpec,
    calib: &Calibration,
) -> PartCost {
    let nnz = a.nnz() as f64;
    let bytes = padded * (VAL + IDX)
        + gather_x_bytes(nnz, a.ncols() as f64, a.locality, spec.cache_bytes(), calib)
        + a.nrows() as f64 * 2.0 * VAL;
    PartCost {
        bytes,
        flops: 2.0 * padded,
        overhead_cycles: a.nrows() as f64 + nbuckets * calib.cpu_row_cycles,
        // Segments are cell-balanced across workers.
        imbalance: 1.0,
        parallel_items: a.nrows() as f64,
    }
}

fn part_time(part: &PartCost, eff: f64, spec: &CpuSpec, threads: usize, calib: &Calibration) -> f64 {
    if part.bytes <= 0.0 && part.flops <= 0.0 {
        return 0.0;
    }
    // A matrix with few rows cannot feed every core.
    let usable = if threads > 1 {
        let cap = (part.parallel_items / calib.omp_min_rows_per_core).ceil().max(1.0);
        (threads as f64).min(cap) as usize
    } else {
        1
    };
    let mem = part.bytes / spec.bandwidth(usable);
    let cpu = part.flops / (spec.peak_flops(usable) * eff);
    let overhead = part.overhead_cycles / (usable as f64 * spec.freq_ghz * 1e9);
    mem.max(cpu) * part.imbalance + overhead
}

/// Modelled runtime, in seconds, of one SpMV in format `fmt` on `threads`
/// cores of `spec` (1 = the Serial backend).
pub fn spmv_time(
    spec: &CpuSpec,
    threads: usize,
    calib: &Calibration,
    fmt: FormatId,
    a: &MatrixAnalysis,
) -> f64 {
    let threads = threads.clamp(1, spec.cores);
    let nnz = a.nnz() as f64;
    let nrows = a.nrows() as f64;
    let max_row = a.stats.row_nnz_max as f64;

    let kernel_time = match fmt {
        FormatId::Coo => {
            let p = coo_part(nnz, nrows, max_row, a, spec, threads, calib);
            part_time(&p, calib.simd_eff_coo(), spec, threads, calib)
        }
        FormatId::Csr => {
            let p = csr_part(nnz, nrows, a.balanced_row_imbalance(threads), a, spec, calib);
            part_time(&p, calib.simd_eff_csr(), spec, threads, calib)
        }
        FormatId::Dia => {
            let p = dia_part(a.dia_padded() as f64, a.stats.ndiags as f64, a, spec, calib);
            part_time(&p, calib.simd_eff_dia(), spec, threads, calib)
        }
        FormatId::Ell => {
            let p = ell_part(a.ell_padded() as f64, nnz, a, spec, calib);
            part_time(&p, calib.simd_eff_ell(), spec, threads, calib)
        }
        FormatId::Hyb => {
            let ell_nnz = nnz - a.hyb_coo_nnz as f64;
            let ell = ell_part(a.hyb_padded() as f64, ell_nnz, a, spec, calib);
            let surplus = a.hyb_coo_nnz as f64;
            let rows_touched = surplus.min(nrows);
            // Surplus rows were all truncated at K_H, so the largest COO row
            // is max_row - K_H.
            let coo_max = (max_row - a.hyb_width as f64).max(0.0);
            let coo = coo_part(surplus, rows_touched, coo_max, a, spec, threads, calib);
            part_time(&ell, calib.simd_eff_ell(), spec, threads, calib)
                + part_time(&coo, calib.simd_eff_coo(), spec, threads, calib)
        }
        FormatId::Bsr => {
            let (b, _) = morpheus::FormatParams::default().normalized_block();
            let p =
                bsr_part(a.bsr_padded(b) as f64, a.bsr_nblocks(b) as f64, b as f64, a, spec, threads, calib);
            // Dense register blocks vectorise like diagonal slabs.
            part_time(&p, calib.simd_eff_dia(), spec, threads, calib)
        }
        FormatId::Bell => {
            let p = bell_part(a.bell_padded as f64, a.bell_nbuckets as f64, a, spec, calib);
            part_time(&p, calib.simd_eff_ell(), spec, threads, calib)
        }
        FormatId::Hdc => {
            let dia = dia_part(a.hdc_padded() as f64, a.hdc_ntrue as f64, a, spec, calib);
            // The ExecPlan partitions the CSR remainder by the remainder's
            // *own* row weights, so its imbalance comes from the same
            // greedy replayed over the remainder histogram — not the
            // whole-matrix one (mis-predicts when DIA absorbs the skew),
            // and not a closed-form bound (would rank HDC inconsistently
            // against standalone CSR when the remainder is the whole
            // matrix).
            let csr =
                csr_part(a.hdc_csr_nnz as f64, nrows, a.hdc_csr_balanced_imbalance(threads), a, spec, calib);
            part_time(&dia, calib.simd_eff_dia(), spec, threads, calib)
                + part_time(&csr, calib.simd_eff_csr(), spec, threads, calib)
        }
    };

    let omp = if threads > 1 {
        calib.omp_base_overhead + threads as f64 * calib.omp_per_core_overhead
    } else {
        0.0
    };
    kernel_time + omp
}

/// First-order speedup factor (≥ 1) of executing `fmt` with `variant`
/// kernel bodies on a matrix like `a` — 1.0 wherever the variant has no
/// body for the format, or where per-range selection would fall back to
/// the scalar reference anyway (short rows, few diagonals, narrow slabs;
/// the same thresholds `morpheus::spmv::variant` selects by). Gains are
/// weighted by the share of the kernel's work the variant's body actually
/// covers, so composite formats (the CSR remainder of an HDC, the ELL
/// portion of a HYB) price fairly against the elementals.
pub fn variant_gain(calib: &Calibration, fmt: FormatId, variant: KernelVariant, a: &MatrixAnalysis) -> f64 {
    if variant == KernelVariant::Scalar || !variant.applies_to(fmt) || a.nnz() == 0 {
        return 1.0;
    }
    let nnz = a.nnz() as f64;
    let nrows = (a.nrows() as f64).max(1.0);
    // The CSR-accumulation portion the Unrolled/Prefetch bodies run on:
    // everything for CSR, the remainder for HDC.
    let csr_portion = || -> (f64, f64) {
        match fmt {
            FormatId::Csr => (nnz, 1.0),
            FormatId::Hdc => {
                let rem = a.hdc_csr_nnz as f64;
                (rem, rem / (a.hdc_padded() as f64 + rem).max(1.0))
            }
            _ => (0.0, 0.0),
        }
    };
    match variant {
        KernelVariant::Scalar => 1.0,
        KernelVariant::Unrolled => {
            let (part_nnz, share) = csr_portion();
            if part_nnz / nrows < UNROLL_MIN_AVG_NNZ {
                return 1.0;
            }
            // Extra accumulators only help when operands arrive: a
            // miss-bound gather stream stalls the core regardless, so the
            // compute-side gain is attenuated by the gather hit rate.
            1.0 + (calib.cpu_unroll_gain - 1.0) * share * a.locality
        }
        KernelVariant::Prefetch => {
            let (part_nnz, share) = csr_portion();
            if part_nnz / nrows < UNROLL_MIN_AVG_NNZ {
                // Same short-row floor as the selection rules: issuing
                // prefetches per entry costs more than the few misses it
                // hides when rows end after a handful of entries.
                return 1.0;
            }
            // Prefetch pays only on the missed fraction of the gathers.
            1.0 + calib.cpu_prefetch_hide * (1.0 - a.locality) * share
        }
        KernelVariant::Blocked => {
            let (share, wide_enough) = match fmt {
                FormatId::Dia => (1.0, a.stats.ndiags >= BLOCK_MIN_DIAGS),
                FormatId::Ell => (1.0, a.ell_width >= BLOCK_MIN_WIDTH),
                FormatId::Hyb => {
                    let padded = a.hyb_padded() as f64;
                    (padded / (padded + a.hyb_coo_nnz as f64).max(1.0), a.hyb_width >= BLOCK_MIN_WIDTH)
                }
                FormatId::Hdc => {
                    let padded = a.hdc_padded() as f64;
                    (padded / (padded + a.hdc_csr_nnz as f64).max(1.0), a.hdc_ntrue >= BLOCK_MIN_DIAGS)
                }
                FormatId::Bsr => {
                    // Mirrors `variant::select_bsr`: enough cells per block
                    // row and enough block rows to chunk.
                    let (b, c) = morpheus::FormatParams::default().normalized_block();
                    (1.0, b * c >= BLOCK_MIN_WIDTH && a.nrows().div_ceil(b) > BLOCK_ROWS)
                }
                _ => (0.0, false),
            };
            if !wide_enough || nrows <= BLOCK_ROWS as f64 {
                return 1.0;
            }
            1.0 + (calib.cpu_block_gain - 1.0) * share
        }
    }
}

/// Modelled runtime, in seconds, of one SpMV in format `fmt` executed with
/// `variant` kernel bodies: the scalar-reference [`spmv_time`] divided by
/// the matrix-dependent [`variant_gain`]. This is what lets the virtual
/// engine price (format, variant) pairs instead of formats alone.
pub fn spmv_time_variant(
    spec: &CpuSpec,
    threads: usize,
    calib: &Calibration,
    fmt: FormatId,
    variant: KernelVariant,
    a: &MatrixAnalysis,
) -> f64 {
    spmv_time(spec, threads, calib, fmt, a) / variant_gain(calib, fmt, variant, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::systems;
    use morpheus::{CooMatrix, DynamicMatrix};

    fn tridiag(n: usize) -> MatrixAnalysis {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for i in 0..n {
            for d in [-1isize, 0, 1] {
                let j = i as isize + d;
                if j >= 0 && (j as usize) < n {
                    rows.push(i);
                    cols.push(j as usize);
                }
            }
        }
        let vals = vec![1.0f64; rows.len()];
        analyze(&DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap()))
    }

    fn scatter(nrows: usize, per_row: usize) -> MatrixAnalysis {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for r in 0..nrows {
            for k in 0..per_row {
                rows.push(r);
                cols.push((r * 7919 + k * 104729) % nrows);
            }
        }
        let vals = vec![1.0f64; rows.len()];
        analyze(&DynamicMatrix::from(CooMatrix::from_triplets(nrows, nrows, &rows, &cols, &vals).unwrap()))
    }

    #[test]
    fn all_times_positive_and_finite() {
        let a = scatter(2000, 5);
        let calib = Calibration::default();
        for sys in systems::all_systems() {
            for threads in [1, sys.cpu.cores] {
                for fmt in morpheus::format::ALL_FORMATS {
                    let t = spmv_time(&sys.cpu, threads, &calib, fmt, &a);
                    assert!(t.is_finite() && t > 0.0, "{} {fmt} x{threads}: {t}", sys.name);
                }
            }
        }
    }

    #[test]
    fn banded_matrix_prefers_dia() {
        let a = tridiag(200_000);
        let calib = Calibration::default();
        let cpu = systems::a64fx().cpu;
        let t_csr = spmv_time(&cpu, 1, &calib, FormatId::Csr, &a);
        let t_dia = spmv_time(&cpu, 1, &calib, FormatId::Dia, &a);
        assert!(t_dia < t_csr, "DIA {t_dia} vs CSR {t_csr}");
    }

    #[test]
    fn scattered_matrix_prefers_csr_over_dia() {
        let a = scatter(20_000, 6);
        let calib = Calibration::default();
        let cpu = systems::archer2().cpu;
        let t_csr = spmv_time(&cpu, 1, &calib, FormatId::Csr, &a);
        let t_dia = spmv_time(&cpu, 1, &calib, FormatId::Dia, &a);
        assert!(t_csr < t_dia, "CSR {t_csr} vs DIA {t_dia} (padding should sink DIA)");
    }

    #[test]
    fn hypersparse_prefers_coo_serial() {
        // Many empty rows, nnz << nrows: COO avoids the per-row offsets
        // sweep (the Monakov observation cited in §IV-A).
        let nrows = 500_000usize;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for k in 0..2000 {
            rows.push((k * 211) % nrows);
            cols.push((k * 613) % nrows);
        }
        let vals = vec![1.0f64; rows.len()];
        let a = analyze(&DynamicMatrix::from(
            CooMatrix::from_triplets(nrows, nrows, &rows, &cols, &vals).unwrap(),
        ));
        let calib = Calibration::default();
        let cpu = systems::cirrus().cpu;
        let t_csr = spmv_time(&cpu, 1, &calib, FormatId::Csr, &a);
        let t_coo = spmv_time(&cpu, 1, &calib, FormatId::Coo, &a);
        assert!(t_coo < t_csr, "COO {t_coo} vs CSR {t_csr}");
    }

    #[test]
    fn openmp_faster_than_serial_on_large_matrices() {
        let a = scatter(200_000, 8);
        let calib = Calibration::default();
        let cpu = systems::archer2().cpu;
        let t1 = spmv_time(&cpu, 1, &calib, FormatId::Csr, &a);
        let tp = spmv_time(&cpu, cpu.cores, &calib, FormatId::Csr, &a);
        assert!(tp < t1 / 4.0, "parallel {tp} vs serial {t1}");
    }

    #[test]
    fn openmp_overhead_dominates_tiny_matrices() {
        let a = tridiag(64);
        let calib = Calibration::default();
        let cpu = systems::archer2().cpu;
        let t1 = spmv_time(&cpu, 1, &calib, FormatId::Csr, &a);
        let tp = spmv_time(&cpu, cpu.cores, &calib, FormatId::Csr, &a);
        assert!(tp > t1, "tiny matrix: parallel {tp} should exceed serial {t1}");
    }

    #[test]
    fn skewed_rows_create_openmp_imbalance() {
        // One row holds half the entries.
        let nrows = 10_000usize;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for r in 0..nrows {
            rows.push(r);
            cols.push((r * 31) % nrows);
        }
        for k in 0..nrows {
            rows.push(0);
            cols.push(k);
        }
        let vals = vec![1.0f64; rows.len()];
        let a = analyze(&DynamicMatrix::from(
            CooMatrix::from_triplets(nrows, nrows, &rows, &cols, &vals).unwrap(),
        ));
        let calib = Calibration::default();
        let cpu = systems::cirrus().cpu;
        let t_csr = spmv_time(&cpu, cpu.cores, &calib, FormatId::Csr, &a);
        let t_hyb = spmv_time(&cpu, cpu.cores, &calib, FormatId::Hyb, &a);
        // HYB spills the dense row into COO entries that *can* be split
        // across threads in our model? No — COO also splits at row
        // boundaries, but the surplus part is half the traffic. The key
        // check: the imbalance factor materially inflates CSR.
        let ideal = a.nnz() as f64 / cpu.cores as f64;
        assert!(a.stats.row_nnz_max as f64 > 2.0 * ideal);
        assert!(t_csr > 0.0 && t_hyb > 0.0);
    }

    fn banded(n: usize, half_width: isize) -> MatrixAnalysis {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for i in 0..n {
            for d in -half_width..=half_width {
                let j = i as isize + d;
                if j >= 0 && (j as usize) < n {
                    rows.push(i);
                    cols.push(j as usize);
                }
            }
        }
        let vals = vec![1.0f64; rows.len()];
        analyze(&DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap()))
    }

    #[test]
    fn variant_gains_follow_the_bottleneck() {
        let calib = Calibration::default();
        // Scattered gathers miss: prefetch hides latency, extra
        // accumulators mostly stall.
        let sc = scatter(2000, 48);
        let pf = variant_gain(&calib, FormatId::Csr, KernelVariant::Prefetch, &sc);
        let un = variant_gain(&calib, FormatId::Csr, KernelVariant::Unrolled, &sc);
        assert!(pf > 1.0 && pf > un, "scatter: prefetch {pf} must beat unrolled {un}");
        // Below the short-row floor neither specialized body pays.
        let short = scatter(2000, 5);
        assert_eq!(variant_gain(&calib, FormatId::Csr, KernelVariant::Prefetch, &short), 1.0);
        assert_eq!(variant_gain(&calib, FormatId::Csr, KernelVariant::Unrolled, &short), 1.0);
        // Dense contiguous rows hit in cache: the unrolled accumulators win.
        let dense = banded(1000, 16);
        let pf = variant_gain(&calib, FormatId::Csr, KernelVariant::Prefetch, &dense);
        let un = variant_gain(&calib, FormatId::Csr, KernelVariant::Unrolled, &dense);
        assert!(un > 1.2 && un > pf, "dense rows: unrolled {un} must beat prefetch {pf}");
        // Rows below the unroll threshold stay on the scalar body.
        let tri = tridiag(4000);
        assert_eq!(variant_gain(&calib, FormatId::Csr, KernelVariant::Unrolled, &tri), 1.0);
        // Blocking needs enough diagonals (tridiagonal has 3 < 4) and rows.
        assert_eq!(variant_gain(&calib, FormatId::Dia, KernelVariant::Blocked, &tri), 1.0);
        let penta = banded(4000, 2);
        assert!(variant_gain(&calib, FormatId::Dia, KernelVariant::Blocked, &penta) > 1.0);
        assert_eq!(variant_gain(&calib, FormatId::Dia, KernelVariant::Blocked, &banded(100, 2)), 1.0);
        // COO has no variant bodies; Scalar is neutral everywhere.
        for v in morpheus::ALL_VARIANTS {
            assert_eq!(variant_gain(&calib, FormatId::Coo, v, &sc), 1.0);
        }
        for fmt in morpheus::format::ALL_FORMATS {
            assert_eq!(variant_gain(&calib, fmt, KernelVariant::Scalar, &sc), 1.0);
        }
    }

    #[test]
    fn variant_times_never_exceed_the_scalar_reference() {
        let calib = Calibration::default();
        let cpu = systems::cirrus().cpu;
        for a in [scatter(3000, 6), tridiag(3000), banded(3000, 4)] {
            for fmt in morpheus::format::ALL_FORMATS {
                let base = spmv_time(&cpu, 1, &calib, fmt, &a);
                for v in morpheus::ALL_VARIANTS {
                    let t = spmv_time_variant(&cpu, 1, &calib, fmt, v, &a);
                    assert!(t.is_finite() && t > 0.0 && t <= base, "{fmt} {v}: {t} vs {base}");
                }
            }
        }
    }

    #[test]
    fn empty_matrix_costs_only_overhead() {
        let a = analyze(&DynamicMatrix::from(CooMatrix::<f64>::new(10, 10)));
        let calib = Calibration::default();
        let cpu = systems::xci().cpu;
        let t = spmv_time(&cpu, 1, &calib, FormatId::Csr, &a);
        assert!(t < 1e-6, "near-zero cost expected, got {t}");
    }
}
