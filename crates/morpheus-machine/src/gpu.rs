//! GPU (SIMT) timing model for the CUDA and HIP backends.
//!
//! Kernels are modelled at warp granularity, following the CUSP-lineage
//! kernels Morpheus uses (Bell & Garland):
//!
//! * **CSR (scalar)** — one thread per row. Three effects drive its cost:
//!   memory-coalescing waste (lanes of a warp read 32 different rows whose
//!   entries are `mean_row * 12` bytes apart), warp divergence
//!   (`Σ_warp max(row nnz)` iterations instead of `Σ nnz / 32`), and a
//!   *tail-latency* term — a warp containing one huge row serialises that
//!   row on a single lane, which is the `mawi_201512020030` pathology of
//!   §VII-C (5x the memory requests, 10x lower occupancy, up to 1000x
//!   slower than the optimum).
//! * **ELL** — one thread per row over column-major slabs: fully coalesced,
//!   cost scales with padding.
//! * **DIA** — one thread per row sweeping diagonals: coalesced on values,
//!   `x` and `y`.
//! * **COO** — segmented reduction over entries: coalesced but with a
//!   fixed per-entry overhead and uncoalesced per-row flushes.
//! * **HYB / HDC** — compose their parts plus an extra kernel launch.

use crate::analyze::{MatrixAnalysis, WARP};
use crate::calib::Calibration;
use crate::spec::GpuSpec;
use morpheus::FormatId;

const VAL: f64 = 8.0; // f64 value bytes
const IDX: f64 = 4.0; // 32-bit device indices

/// Device utilisation for a launch with `threads` logical threads: below
/// `sms * gpu_threads_per_sm_full` resident threads the device cannot hide
/// memory latency.
fn utilisation(spec: &GpuSpec, calib: &Calibration, threads: f64) -> f64 {
    let full = spec.sms as f64 * calib.gpu_threads_per_sm_full;
    (threads / full).clamp(calib.gpu_min_utilisation, 1.0)
}

/// `x`-gather bytes on the device: cached sweep if `x` fits in L2,
/// otherwise one transaction per miss.
fn gather_x_bytes(spec: &GpuSpec, calib: &Calibration, nnz: f64, ncols: f64, locality: f64) -> f64 {
    let x_resident = VAL * ncols;
    if x_resident <= spec.l2_bytes() * 0.5 {
        x_resident.min(nnz * VAL)
    } else {
        nnz * (locality * VAL + (1.0 - locality) * calib.gpu_gather_miss_bytes)
    }
}

struct GpuPart {
    bytes: f64,
    warp_iters: f64,
    /// Logical threads launched (for the utilisation model).
    threads: f64,
    /// Longest single-lane serial chain (iterations), for tail latency.
    tail_iters: f64,
}

fn csr_scalar_part(
    spec: &GpuSpec,
    calib: &Calibration,
    a: &MatrixAnalysis,
    nnz: f64,
    mean_row: f64,
    max_row: f64,
    warp_iters: f64,
) -> GpuPart {
    let nrows = a.nrows() as f64;
    // Coalescing waste grows with column irregularity; row-contiguous data
    // with good locality caches well even under the scalar thread mapping.
    let waste = 1.0 + calib.gpu_csr_locality_waste * (1.0 - a.locality);
    let bytes = nnz * (VAL + IDX) * waste
        + gather_x_bytes(spec, calib, nnz, a.ncols() as f64, a.locality)
        + nrows * (VAL + 2.0 * IDX); // y write + row offsets
                                     // A row much longer than its warp peers serialises on one lane; rows
                                     // within ~a warp-quantum of the mean are hidden by scheduling.
    let tail_iters = (max_row - 32.0 * mean_row).max(0.0);
    GpuPart { bytes, warp_iters, threads: nrows, tail_iters }
}

fn ell_part(
    spec: &GpuSpec,
    calib: &Calibration,
    a: &MatrixAnalysis,
    padded: f64,
    width: f64,
    nnz: f64,
) -> GpuPart {
    let nrows = a.nrows() as f64;
    let bytes =
        padded * (VAL + IDX) + gather_x_bytes(spec, calib, nnz, a.ncols() as f64, a.locality) + nrows * VAL;
    GpuPart {
        bytes,
        warp_iters: (nrows / WARP as f64).ceil() * width,
        threads: nrows,
        // Uniform trip count across lanes: no divergence tail.
        tail_iters: 0.0,
    }
}

fn dia_part(spec: &GpuSpec, a: &MatrixAnalysis, padded: f64, ndiags: f64) -> GpuPart {
    let nrows = a.nrows() as f64;
    let ncols = a.ncols() as f64;
    let x_bytes = if VAL * ncols <= spec.l2_bytes() * 0.5 { VAL * ncols } else { padded * VAL };
    let bytes = padded * VAL + ndiags * IDX + x_bytes + nrows * VAL;
    GpuPart {
        bytes,
        warp_iters: (nrows / WARP as f64).ceil() * ndiags,
        threads: nrows,
        // Uniform trip count across lanes: no divergence tail.
        tail_iters: 0.0,
    }
}

fn coo_part(spec: &GpuSpec, calib: &Calibration, a: &MatrixAnalysis, nnz: f64, rows_touched: f64) -> GpuPart {
    let bytes = nnz * (VAL + 2.0 * IDX + calib.gpu_coo_seg_bytes)
        + gather_x_bytes(spec, calib, nnz, a.ncols() as f64, a.locality)
        + rows_touched * calib.gpu_coo_row_flush_bytes;
    GpuPart {
        bytes,
        warp_iters: (nnz / WARP as f64).ceil() * calib.gpu_coo_seg_factor,
        // Segmented reduction exposes entry-level parallelism, but the
        // in-warp segment scan serialises ~4 entries per effective thread.
        threads: (nnz / 4.0).max(1.0),
        tail_iters: 0.0,
    }
}

fn part_time(spec: &GpuSpec, calib: &Calibration, part: &GpuPart) -> f64 {
    if part.bytes <= 0.0 && part.warp_iters <= 0.0 {
        return 0.0;
    }
    let util = utilisation(spec, calib, part.threads);
    let mem = part.bytes / (spec.bandwidth() * util);
    let compute = part.warp_iters * calib.gpu_cycles_per_iter / (spec.warp_iter_rate() * util);
    // A single lane grinding through `tail_iters` entries is latency-bound:
    // each iteration pays a (partially pipelined) memory round-trip.
    let tail = part.tail_iters * calib.gpu_tail_cycles / (spec.clock_ghz * 1e9);
    mem.max(compute).max(tail)
}

/// Modelled runtime, in seconds, of one SpMV in format `fmt` on the device.
pub fn spmv_time(spec: &GpuSpec, calib: &Calibration, fmt: FormatId, a: &MatrixAnalysis) -> f64 {
    let nnz = a.nnz() as f64;
    let nrows = a.nrows() as f64;
    let launch = calib.gpu_launch_overhead;
    match fmt {
        FormatId::Csr => {
            let p = csr_scalar_part(
                spec,
                calib,
                a,
                nnz,
                a.mean_row(),
                a.stats.row_nnz_max as f64,
                a.warp_iters_csr as f64,
            );
            part_time(spec, calib, &p) * spec.csr_quality + launch
        }
        FormatId::Coo => {
            let p = coo_part(spec, calib, a, nnz, nrows.min(nnz));
            part_time(spec, calib, &p) + launch
        }
        FormatId::Dia => {
            let p = dia_part(spec, a, a.dia_padded() as f64, a.stats.ndiags as f64);
            part_time(spec, calib, &p) + launch
        }
        FormatId::Ell => {
            let p = ell_part(spec, calib, a, a.ell_padded() as f64, a.ell_width as f64, nnz);
            part_time(spec, calib, &p) + launch
        }
        FormatId::Hyb => {
            let ell_nnz = nnz - a.hyb_coo_nnz as f64;
            let ell = ell_part(spec, calib, a, a.hyb_padded() as f64, a.hyb_width as f64, ell_nnz);
            let surplus = a.hyb_coo_nnz as f64;
            let coo = coo_part(spec, calib, a, surplus, surplus.min(nrows));
            // The second kernel's launch partially overlaps the first.
            part_time(spec, calib, &ell) + part_time(spec, calib, &coo) + 1.5 * launch
        }
        FormatId::Bsr => {
            // One thread per block row sweeping dense value slabs: coalesced
            // like ELL, with the effective width set by the padded slots per
            // row and the trip count by blocks per block row.
            let b = morpheus::FormatParams::default().normalized_block().0;
            let padded = a.bsr_padded(b) as f64;
            let width = if nrows > 0.0 { padded / nrows } else { 0.0 };
            let p = ell_part(spec, calib, a, padded, width, nnz);
            part_time(spec, calib, &p) + launch
        }
        FormatId::Bell => {
            // Each bucket is an ELL slab; one kernel per bucket, uniform trip
            // count inside a bucket so divergence stays bounded by bucketing.
            let padded = a.bell_padded as f64;
            let width = if nrows > 0.0 { padded / nrows } else { 0.0 };
            let p = ell_part(spec, calib, a, padded, width, nnz);
            part_time(spec, calib, &p) + launch * (a.bell_nbuckets.max(1) as f64) * 0.5 + launch
        }
        FormatId::Hdc => {
            let dia = dia_part(spec, a, a.hdc_padded() as f64, a.hdc_ntrue as f64);
            let csr = csr_scalar_part(
                spec,
                calib,
                a,
                a.hdc_csr_nnz as f64,
                a.hdc_csr_mean_row,
                a.hdc_csr_max_row as f64,
                a.warp_iters_hdc_csr as f64,
            );
            part_time(spec, calib, &dia) + part_time(spec, calib, &csr) * spec.csr_quality + 1.5 * launch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::systems;
    use morpheus::{CooMatrix, DynamicMatrix};

    fn v100() -> GpuSpec {
        systems::cirrus().gpus[0].clone()
    }

    fn mi100() -> GpuSpec {
        systems::p3().gpus[1].clone()
    }

    fn uniform_rows(nrows: usize, per_row: usize) -> MatrixAnalysis {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for r in 0..nrows {
            for k in 0..per_row {
                rows.push(r);
                cols.push((r + k * 17) % nrows);
            }
        }
        let vals = vec![1.0f64; rows.len()];
        analyze(&DynamicMatrix::from(CooMatrix::from_triplets(nrows, nrows, &rows, &cols, &vals).unwrap()))
    }

    /// Scale-free-like pattern: most rows tiny, one enormous row (the mawi
    /// shape of §VII-C).
    fn powerlaw(nrows: usize, dense_row_len: usize) -> MatrixAnalysis {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for r in 1..nrows {
            rows.push(r);
            cols.push((r * 48271) % nrows);
        }
        for k in 0..dense_row_len {
            rows.push(0);
            cols.push((k * 7) % nrows);
        }
        let vals = vec![1.0f64; rows.len()];
        analyze(&DynamicMatrix::from(CooMatrix::from_triplets(nrows, nrows, &rows, &cols, &vals).unwrap()))
    }

    #[test]
    fn all_times_positive_and_finite() {
        let a = uniform_rows(50_000, 8);
        let calib = Calibration::default();
        for gpu in [v100(), mi100(), systems::p3().gpus[0].clone()] {
            for fmt in morpheus::format::ALL_FORMATS {
                let t = spmv_time(&gpu, &calib, fmt, &a);
                assert!(t.is_finite() && t > 0.0, "{} {fmt}: {t}", gpu.name);
            }
        }
    }

    #[test]
    fn uniform_rows_favour_ell_on_gpu() {
        // Perfectly regular rows: ELL has zero padding and coalesces, while
        // scalar CSR wastes transactions at mean row length 8.
        let a = uniform_rows(200_000, 8);
        let calib = Calibration::default();
        let t_csr = spmv_time(&v100(), &calib, FormatId::Csr, &a);
        let t_ell = spmv_time(&v100(), &calib, FormatId::Ell, &a);
        assert!(t_ell < t_csr, "ELL {t_ell} vs CSR {t_csr}");
    }

    #[test]
    fn powerlaw_makes_csr_pathological() {
        // The mawi effect: one dense row serialises a warp lane; HYB fixes
        // it by spilling the surplus to the segmented COO kernel. The paper
        // reports speedups reaching 1000x (§VII-C).
        let a = powerlaw(1_000_000, 500_000);
        let calib = Calibration::default();
        let t_csr = spmv_time(&v100(), &calib, FormatId::Csr, &a);
        let t_hyb = spmv_time(&v100(), &calib, FormatId::Hyb, &a);
        let speedup = t_csr / t_hyb;
        assert!(speedup > 25.0, "expected orders-of-magnitude speedup, got {speedup:.1}x");
        // Scaling the hub up scales the pathology up (the paper's 1000x
        // came from mawi-scale hubs).
        let a_big = powerlaw(4_000_000, 3_000_000);
        let big = spmv_time(&v100(), &calib, FormatId::Csr, &a_big)
            / spmv_time(&v100(), &calib, FormatId::Hyb, &a_big);
        assert!(big > speedup, "bigger hub must hurt CSR more: {big:.1}x vs {speedup:.1}x");
    }

    #[test]
    fn hip_csr_penalty_applies() {
        let a = uniform_rows(100_000, 6);
        let calib = Calibration::default();
        let mut amd = mi100();
        let t_penalised = spmv_time(&amd, &calib, FormatId::Csr, &a);
        amd.csr_quality = 1.0;
        let t_tuned = spmv_time(&amd, &calib, FormatId::Csr, &a);
        assert!(t_penalised > 2.0 * t_tuned);
    }

    #[test]
    fn tiny_matrices_are_launch_bound() {
        let a = uniform_rows(64, 3);
        let calib = Calibration::default();
        let t = spmv_time(&v100(), &calib, FormatId::Csr, &a);
        assert!(t >= calib.gpu_launch_overhead);
        assert!(t < 20.0 * calib.gpu_launch_overhead, "tiny matrix should cost ~launch, got {t}");
    }

    #[test]
    fn banded_favours_dia_on_gpu() {
        let n = 300_000usize;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for i in 0..n {
            for d in [-1isize, 0, 1] {
                let j = i as isize + d;
                if j >= 0 && (j as usize) < n {
                    rows.push(i);
                    cols.push(j as usize);
                }
            }
        }
        let vals = vec![1.0f64; rows.len()];
        let a = analyze(&DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap()));
        let calib = Calibration::default();
        let t_csr = spmv_time(&v100(), &calib, FormatId::Csr, &a);
        let t_dia = spmv_time(&v100(), &calib, FormatId::Dia, &a);
        assert!(t_dia < t_csr, "DIA {t_dia} vs CSR {t_csr}");
    }
}
