//! Calibration constants of the performance models.
//!
//! All "magic numbers" of the CPU and GPU models live here so the benchmark
//! harness (and the ablation study) can vary them in one place. Defaults are
//! order-of-magnitude figures for the hardware generation of Table II;
//! experiments consume *relative* format rankings, which are robust to
//! moderate miscalibration.

/// Tunable constants of the machine model.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    // -- CPU -------------------------------------------------------------
    /// CSR/HDC per-row loop overhead, cycles (pointer chase + branch).
    pub cpu_row_cycles: f64,
    /// DIA per-diagonal loop setup, cycles.
    pub cpu_diag_cycles: f64,
    /// Per-entry COO overhead beyond CSR, cycles (extra row-index load).
    pub cpu_coo_entry_cycles: f64,
    /// SIMD efficiency of each kernel's inner loop on cache-resident data:
    /// fraction of peak FLOP/s attainable. Order: COO, CSR, DIA, ELL.
    pub cpu_simd_eff: [f64; 4],
    /// GPU CSR coalescing penalty slope: waste factor is
    /// `1 + slope * (1 - locality)` — irregular column patterns burn
    /// partially-used memory transactions.
    pub gpu_csr_locality_waste: f64,
    /// Cycles per serialised tail iteration (a single lane grinding a row
    /// far longer than its warp peers).
    pub gpu_tail_cycles: f64,
    /// OpenMP fork/barrier base cost, seconds.
    pub omp_base_overhead: f64,
    /// OpenMP per-core barrier scaling, seconds per core.
    pub omp_per_core_overhead: f64,
    /// Rows per core below which the threaded backend cannot use all cores.
    pub omp_min_rows_per_core: f64,
    /// Fraction of LLC usable for `x`/`y` reuse before streaming evicts it.
    pub cache_usable_fraction: f64,
    /// Bytes fetched per missed `x` gather (one cache line).
    pub gather_miss_bytes: f64,
    /// Bytes fetched per hit `x` gather.
    pub gather_hit_bytes: f64,
    /// Peak speedup of the unrolled multi-accumulator CSR body over the
    /// scalar reference on rows dense enough to fill its accumulators.
    /// Realised gain is attenuated by gather locality (a miss-bound inner
    /// loop stalls no matter how many accumulators it has).
    pub cpu_unroll_gain: f64,
    /// Fraction of a missed `x`-gather's latency the software-prefetch CSR
    /// body hides (prefetch distance ahead of the access stream).
    pub cpu_prefetch_hide: f64,
    /// Speedup of the row-blocked DIA/ELL bodies from `x`/`y` block reuse
    /// across diagonals / slab columns, once the matrix is tall and wide
    /// enough for blocking to engage.
    pub cpu_block_gain: f64,
    /// Per-shard dispatch cost of a partitioned execution, seconds: the
    /// scheduling, plan lookup and cache warm-up a worker pays each time it
    /// switches to the next owned shard. Charged once per shard executed on
    /// the critical-path worker when costing whether to shard at all.
    pub cpu_shard_dispatch: f64,

    // -- GPU -------------------------------------------------------------
    /// Kernel launch latency, seconds.
    pub gpu_launch_overhead: f64,
    /// Cycles per warp-iteration of the row-per-thread kernels.
    pub gpu_cycles_per_iter: f64,
    /// Bytes per uncoalesced gather transaction.
    pub gpu_gather_miss_bytes: f64,
    /// Segmented-reduction overhead factor of the COO kernel (iterations per
    /// entry beyond 1/WARP).
    pub gpu_coo_seg_factor: f64,
    /// Uncoalesced atomic/segment flush bytes per written row in COO.
    pub gpu_coo_row_flush_bytes: f64,
    /// Segment-bookkeeping bytes per entry of the COO kernel (carry flags,
    /// partial sums re-read by the reduction passes).
    pub gpu_coo_seg_bytes: f64,
    /// Threads per SM the device needs resident for full throughput.
    pub gpu_threads_per_sm_full: f64,
    /// Floor of the GPU utilisation factor for tiny launches.
    pub gpu_min_utilisation: f64,

    // -- Tuning-stage costs (Table IV inputs) ------------------------------
    /// Feature-extraction arithmetic per entry, cycles (CPU backends).
    pub fe_cycles_per_entry: f64,
    /// Per-tree-node prediction cost, seconds (pointer-chasing a tree).
    pub predict_per_node: f64,
    /// Fixed prediction overhead (model dispatch), seconds.
    pub predict_base: f64,
    /// Conversion cost factor: bytes moved per structural byte (read,
    /// sort/permute, write).
    pub convert_byte_factor: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            cpu_row_cycles: 6.0,
            cpu_diag_cycles: 40.0,
            cpu_coo_entry_cycles: 1.5,
            cpu_simd_eff: [0.50, 0.85, 1.00, 0.76],
            omp_base_overhead: 3.0e-6,
            omp_per_core_overhead: 4.0e-8,
            omp_min_rows_per_core: 48.0,
            cache_usable_fraction: 0.5,
            gather_miss_bytes: 64.0,
            gather_hit_bytes: 8.0,
            cpu_unroll_gain: 1.5,
            cpu_prefetch_hide: 0.35,
            cpu_block_gain: 1.15,
            cpu_shard_dispatch: 1.5e-7,
            gpu_launch_overhead: 5.0e-6,
            gpu_cycles_per_iter: 4.0,
            gpu_gather_miss_bytes: 32.0,
            gpu_coo_seg_factor: 2.0,
            gpu_csr_locality_waste: 1.0,
            gpu_tail_cycles: 24.0,
            gpu_coo_row_flush_bytes: 32.0,
            gpu_coo_seg_bytes: 10.0,
            gpu_threads_per_sm_full: 1024.0,
            gpu_min_utilisation: 0.25,
            fe_cycles_per_entry: 8.0,
            predict_per_node: 15.0e-9,
            predict_base: 1.0e-6,
            convert_byte_factor: 3.0,
        }
    }
}

impl Calibration {
    /// SIMD efficiency for the four elemental kernels by format index
    /// (hybrids compose their parts).
    pub fn simd_eff_coo(&self) -> f64 {
        self.cpu_simd_eff[0]
    }
    /// See [`Calibration::simd_eff_coo`].
    pub fn simd_eff_csr(&self) -> f64 {
        self.cpu_simd_eff[1]
    }
    /// See [`Calibration::simd_eff_coo`].
    pub fn simd_eff_dia(&self) -> f64 {
        self.cpu_simd_eff[2]
    }
    /// See [`Calibration::simd_eff_coo`].
    pub fn simd_eff_ell(&self) -> f64 {
        self.cpu_simd_eff[3]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Calibration::default();
        assert!(c.cpu_row_cycles > 0.0);
        assert!(c.omp_base_overhead > 0.0 && c.omp_base_overhead < 1e-3);
        assert!(c.gpu_launch_overhead > 1e-6 && c.gpu_launch_overhead < 1e-4);
        for eff in c.cpu_simd_eff {
            assert!(eff > 0.0 && eff <= 1.0);
        }
        // DIA's unit-stride, index-free inner loop is the most SIMD-friendly;
        // COO's scatter is the least.
        assert!(c.simd_eff_dia() >= c.simd_eff_csr());
        assert!(c.simd_eff_dia() >= c.simd_eff_ell());
        assert!(c.simd_eff_coo() <= c.simd_eff_csr());
        assert!(c.simd_eff_coo() <= c.simd_eff_ell());
        // Variant gains are genuine speedups but stay modest — a mis-set
        // constant here would make the variant model override format
        // rankings, which it must not.
        assert!(c.cpu_unroll_gain > 1.0 && c.cpu_unroll_gain < 3.0);
        assert!(c.cpu_prefetch_hide > 0.0 && c.cpu_prefetch_hide < 1.0);
        assert!(c.cpu_block_gain > 1.0 && c.cpu_block_gain < 2.0);
        assert!(c.cpu_shard_dispatch > 0.0 && c.cpu_shard_dispatch < c.omp_base_overhead);
    }
}
