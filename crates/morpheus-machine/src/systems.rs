//! Profiles of the five systems in Table II.
//!
//! Spec numbers are public figures for the node architectures the paper
//! lists; the `csr_quality` factors encode the relative maturity of the
//! vendor CSR kernels the paper's results imply (§VII-C, §VII-F).

use crate::spec::{Backend, CpuSpec, GpuSpec, GpuVendor, SystemBackend, SystemProfile};

/// ARCHER2: 2x AMD EPYC 7742 (128 cores), no GPUs.
pub fn archer2() -> SystemProfile {
    SystemProfile {
        name: "ARCHER2",
        cpu: CpuSpec {
            name: "2x AMD EPYC 7742",
            cores: 128,
            freq_ghz: 2.25,
            simd_bytes: 32,
            mem_bw_gbs: 380.0,
            core_bw_gbs: 22.0,
            cache_mib: 512.0,
        },
        gpus: vec![],
    }
}

/// Cirrus standard + GPU queues: 2x Intel Xeon E5-2695 (36 cores) and
/// 4x NVIDIA V100 16GB (we model one device; the paper times one GPU).
pub fn cirrus() -> SystemProfile {
    SystemProfile {
        name: "Cirrus",
        cpu: CpuSpec {
            name: "2x Intel Xeon E5-2695",
            cores: 36,
            freq_ghz: 2.1,
            simd_bytes: 32,
            mem_bw_gbs: 153.0,
            core_bw_gbs: 12.0,
            cache_mib: 90.0,
        },
        gpus: vec![GpuSpec {
            name: "NVIDIA V100 16GB",
            vendor: GpuVendor::Nvidia,
            sms: 80,
            clock_ghz: 1.38,
            mem_bw_gbs: 900.0,
            l2_mib: 6.0,
            csr_quality: 1.0,
        }],
    }
}

/// Isambard A64FX queue: 1x Fujitsu A64FX (48 cores, HBM2, 512-bit SVE).
pub fn a64fx() -> SystemProfile {
    SystemProfile {
        name: "A64FX",
        cpu: CpuSpec {
            name: "Fujitsu A64FX",
            cores: 48,
            freq_ghz: 1.8,
            simd_bytes: 64,
            mem_bw_gbs: 1000.0,
            core_bw_gbs: 55.0,
            cache_mib: 32.0,
        },
        gpus: vec![],
    }
}

/// Isambard XCI queue: 1x Marvell ThunderX2 (32 cores, NEON).
pub fn xci() -> SystemProfile {
    SystemProfile {
        name: "XCI",
        cpu: CpuSpec {
            name: "Marvell ThunderX2",
            cores: 32,
            freq_ghz: 2.2,
            simd_bytes: 16,
            mem_bw_gbs: 160.0,
            core_bw_gbs: 11.0,
            cache_mib: 32.0,
        },
        gpus: vec![],
    }
}

/// Isambard P3: AMD EPYC 7543P host with NVIDIA A100 (Ampere queue) and
/// AMD Instinct MI100 (Instinct queue) accelerators.
pub fn p3() -> SystemProfile {
    SystemProfile {
        name: "P3",
        cpu: CpuSpec {
            name: "AMD EPYC 7543P",
            cores: 32,
            freq_ghz: 2.8,
            simd_bytes: 32,
            mem_bw_gbs: 200.0,
            core_bw_gbs: 24.0,
            cache_mib: 256.0,
        },
        gpus: vec![
            GpuSpec {
                name: "NVIDIA A100 40GB",
                vendor: GpuVendor::Nvidia,
                sms: 108,
                clock_ghz: 1.41,
                mem_bw_gbs: 1555.0,
                l2_mib: 40.0,
                csr_quality: 1.0,
            },
            GpuSpec {
                name: "AMD Instinct MI100",
                vendor: GpuVendor::Amd,
                sms: 120,
                clock_ghz: 1.5,
                mem_bw_gbs: 1228.0,
                l2_mib: 8.0,
                // The paper's HIP numbers (avg 8-10x speedup over CSR,
                // §VII-C/F) imply a markedly less tuned CSR path.
                csr_quality: 3.5,
            },
        ],
    }
}

/// All five systems.
pub fn all_systems() -> Vec<SystemProfile> {
    vec![a64fx(), archer2(), cirrus(), p3(), xci()]
}

/// The eleven (system, backend) pairs of Tables III and IV.
pub fn all_system_backends() -> Vec<SystemBackend> {
    let mut out = Vec::new();
    for sys in [archer2(), cirrus(), a64fx(), p3(), xci()] {
        let backends: &[Backend] = match sys.name {
            "P3" => &[Backend::Cuda, Backend::Hip],
            "Cirrus" => &[Backend::Serial, Backend::OpenMp, Backend::Cuda],
            _ => &[Backend::Serial, Backend::OpenMp],
        };
        for &b in backends {
            out.push(SystemBackend { system: sys.clone(), backend: b });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_pairs_match_table_iii() {
        let pairs = all_system_backends();
        assert_eq!(pairs.len(), 11);
        let labels: Vec<String> = pairs.iter().map(|p| p.label()).collect();
        for expect in [
            "ARCHER2/Serial",
            "ARCHER2/OpenMP",
            "Cirrus/Serial",
            "Cirrus/OpenMP",
            "Cirrus/CUDA",
            "A64FX/Serial",
            "A64FX/OpenMP",
            "P3/CUDA",
            "P3/HIP",
            "XCI/Serial",
            "XCI/OpenMP",
        ] {
            assert!(labels.contains(&expect.to_string()), "missing {expect}");
        }
    }

    #[test]
    fn every_pair_is_supported() {
        for p in all_system_backends() {
            assert!(p.system.supports(p.backend), "{}", p.label());
        }
    }

    #[test]
    fn five_systems() {
        assert_eq!(all_systems().len(), 5);
    }
}
