//! The virtual execution engine: one per (system, backend) pair.

use crate::analyze::MatrixAnalysis;
use crate::calib::Calibration;
use crate::op::Op;
use crate::spec::{Backend, SystemBackend, SystemProfile};
use crate::{cpu, gpu};
use morpheus::format::{FormatId, FORMAT_COUNT};
use morpheus::{KernelVariant, ALL_VARIANTS};

/// Padding-viability rule shared with `morpheus::ConvertOptions`: DIA/ELL
/// style storage is considered non-viable when it would need more than
/// `max(20 * nnz, 4096)` padded slots. The profiling harness skips such
/// formats, exactly as a conversion failure would on the real systems.
pub fn padding_viable(padded: usize, nnz: usize) -> bool {
    padded <= (20usize.saturating_mul(nnz)).max(4096)
}

/// Result of profiling one matrix on one engine: the per-format runtimes of
/// a single SpMV (None = format not viable) and the winner.
#[derive(Debug, Clone)]
pub struct ProfileResult {
    /// Modelled seconds per SpMV, indexed by `FormatId::index()`.
    pub times: [Option<f64>; FORMAT_COUNT],
    /// The optimal (minimum-time) format.
    pub optimal: FormatId,
}

impl ProfileResult {
    /// Runtime of the optimal format.
    pub fn optimal_time(&self) -> f64 {
        self.times[self.optimal.index()].expect("optimal format is viable")
    }

    /// Runtime of CSR (always viable), the paper's baseline format.
    pub fn csr_time(&self) -> f64 {
        self.times[FormatId::Csr.index()].expect("CSR is always viable")
    }

    /// Speedup of the optimal format over CSR (≥ 1).
    pub fn optimal_speedup(&self) -> f64 {
        self.csr_time() / self.optimal_time()
    }
}

/// A simulated (system, backend) execution engine with a deterministic
/// virtual clock.
///
/// All times are modelled from matrix structure (see the crate docs); a
/// small deterministic log-normal perturbation (default σ = 3%) stands in
/// for run-to-run machine noise so that near-ties between formats resolve
/// differently across systems, as they do in the paper's Figure 2.
#[derive(Debug, Clone)]
pub struct VirtualEngine {
    system: SystemProfile,
    backend: Backend,
    calib: Calibration,
    noise_sigma: f64,
    noise_seed: u64,
}

impl VirtualEngine {
    /// Engine for `backend` on `system` with default calibration and noise.
    ///
    /// # Panics
    /// If the system does not support the backend (e.g. CUDA on ARCHER2).
    pub fn new(system: SystemProfile, backend: Backend) -> Self {
        assert!(system.supports(backend), "{} does not support {backend}", system.name);
        VirtualEngine {
            system,
            backend,
            calib: Calibration::default(),
            noise_sigma: 0.02,
            noise_seed: 0x5EED,
        }
    }

    /// Engine for a [`SystemBackend`] pair.
    pub fn for_pair(pair: &SystemBackend) -> Self {
        VirtualEngine::new(pair.system.clone(), pair.backend)
    }

    /// Replaces the calibration constants.
    pub fn with_calibration(mut self, calib: Calibration) -> Self {
        self.calib = calib;
        self
    }

    /// Sets the noise level (σ of the log-normal factor; 0 disables noise).
    pub fn with_noise(mut self, sigma: f64, seed: u64) -> Self {
        self.noise_sigma = sigma;
        self.noise_seed = seed;
        self
    }

    /// The simulated system.
    pub fn system(&self) -> &SystemProfile {
        &self.system
    }

    /// The simulated backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// `"System/Backend"` label.
    pub fn label(&self) -> String {
        format!("{}/{}", self.system.name, self.backend)
    }

    /// Deterministic log-normal noise factor for (matrix, format).
    fn noise(&self, a: &MatrixAnalysis, fmt: FormatId) -> f64 {
        if self.noise_sigma == 0.0 {
            return 1.0;
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.noise_seed;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
            h ^= h >> 29;
        };
        mix(a.nrows() as u64);
        mix(a.ncols() as u64);
        mix(a.nnz() as u64);
        mix(a.stats.ndiags as u64);
        mix(fmt.index() as u64);
        mix(self.backend as u64);
        for b in self.system.name.bytes() {
            mix(b as u64);
        }
        // Two uniforms -> one standard normal (Box-Muller).
        let u1 = ((h >> 11) as f64 + 1.0) / (u64::MAX >> 11) as f64;
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
        let u2 = ((h >> 11) as f64 + 1.0) / (u64::MAX >> 11) as f64;
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.noise_sigma * z).exp()
    }

    /// Modelled seconds for one SpMV in `fmt`, including noise. Does not
    /// check viability — see [`VirtualEngine::is_viable`].
    pub fn spmv_time(&self, fmt: FormatId, a: &MatrixAnalysis) -> f64 {
        let base = match self.backend {
            Backend::Serial => cpu::spmv_time(&self.system.cpu, 1, &self.calib, fmt, a),
            Backend::OpenMp => cpu::spmv_time(&self.system.cpu, self.system.cpu.cores, &self.calib, fmt, a),
            b => {
                let dev = self.system.gpu_for(b).expect("backend support checked at construction");
                gpu::spmv_time(dev, &self.calib, fmt, a)
            }
        };
        base * self.noise(a, fmt)
    }

    /// Modelled seconds for one SpMV in `fmt` executed with `variant`
    /// kernel bodies. Shares the noise draw of [`VirtualEngine::spmv_time`]
    /// (noise models machine variance, which hits every variant alike), so
    /// variant comparisons on one engine are never confounded by the
    /// perturbation. On GPU backends every variant prices as Scalar — the
    /// variant taxonomy covers the CPU bodies only.
    pub fn spmv_time_variant(&self, fmt: FormatId, variant: KernelVariant, a: &MatrixAnalysis) -> f64 {
        let gain = match self.backend {
            Backend::Serial | Backend::OpenMp => cpu::variant_gain(&self.calib, fmt, variant, a),
            _ => 1.0,
        };
        self.spmv_time(fmt, a) / gain
    }

    /// The cheapest (variant, modelled seconds) pair for `fmt` on this
    /// engine — how (format, variant) pairs are priced when ranking goes
    /// one level below format selection. Scalar is always a candidate, so
    /// the result never costs more than [`VirtualEngine::spmv_time`].
    pub fn best_spmv_variant(&self, fmt: FormatId, a: &MatrixAnalysis) -> (KernelVariant, f64) {
        ALL_VARIANTS
            .into_iter()
            .filter(|v| v.applies_to(fmt))
            .map(|v| (v, self.spmv_time_variant(fmt, v, a)))
            .min_by(|x, y| x.1.total_cmp(&y.1))
            .unwrap_or((KernelVariant::Scalar, self.spmv_time(fmt, a)))
    }

    /// Modelled seconds for one SpMV in `fmt` at an explicit worker count
    /// (clamped to the virtual CPU's cores). CPU backends honour
    /// `threads`; GPU backends price as [`VirtualEngine::spmv_time`] — a
    /// device kernel has no host worker count. This is the query the
    /// partitioned cost gate compares both sides with: the serving pool's
    /// real worker count rather than the virtual system's full core
    /// complement.
    pub fn spmv_time_at(&self, fmt: FormatId, a: &MatrixAnalysis, threads: usize) -> f64 {
        let base = match self.backend {
            Backend::Serial | Backend::OpenMp => {
                cpu::spmv_time(&self.system.cpu, threads, &self.calib, fmt, a)
            }
            b => {
                let dev = self.system.gpu_for(b).expect("backend support checked at construction");
                gpu::spmv_time(dev, &self.calib, fmt, a)
            }
        };
        base * self.noise(a, fmt)
    }

    /// The cheapest viable whole-matrix `(format, seconds)` at `threads`
    /// workers — the single-format baseline a partitioned plan must beat.
    pub fn best_spmv_time_at(&self, a: &MatrixAnalysis, threads: usize) -> (FormatId, f64) {
        morpheus::FormatEntry::all()
            .iter()
            .map(|e| e.id)
            .filter(|&f| self.is_viable(f, a))
            .map(|f| (f, self.spmv_time_at(f, a, threads)))
            .min_by(|x, y| x.1.total_cmp(&y.1))
            .unwrap_or((FormatId::Csr, self.spmv_time_at(FormatId::Csr, a, threads)))
    }

    /// Cheapest `(variant, seconds)` for a *shard* kernel in `fmt`: shards
    /// execute single-threaded (parallelism comes from running shards
    /// concurrently), so this prices the 1-thread kernel across applicable
    /// variants. GPU backends price as Scalar at device speed.
    pub fn best_shard_spmv_variant(&self, fmt: FormatId, a: &MatrixAnalysis) -> (KernelVariant, f64) {
        match self.backend {
            Backend::Serial | Backend::OpenMp => ALL_VARIANTS
                .into_iter()
                .filter(|v| v.applies_to(fmt))
                .map(|v| {
                    let t = cpu::spmv_time_variant(&self.system.cpu, 1, &self.calib, fmt, v, a);
                    (v, t * self.noise(a, fmt))
                })
                .min_by(|x, y| x.1.total_cmp(&y.1))
                .unwrap_or((KernelVariant::Scalar, self.spmv_time_at(fmt, a, 1))),
            _ => (KernelVariant::Scalar, self.spmv_time_at(fmt, a, 1)),
        }
    }

    /// Critical-path model of a partitioned SpMV (§ROADMAP item 4): shards
    /// run across `workers` with contiguous nnz-weighted ownership, so the
    /// makespan is bounded below by both the mean per-worker load and the
    /// longest single shard (a shard never splits). Each shard on the
    /// critical path pays [`Calibration::cpu_shard_dispatch`]; a pooled
    /// execution adds one fork-join. The tuner decides *whether* to shard
    /// by comparing this against [`VirtualEngine::best_spmv_time_at`].
    pub fn partitioned_spmv_time(&self, shard_times: &[f64], workers: usize) -> f64 {
        if shard_times.is_empty() {
            return 0.0;
        }
        let w = workers.clamp(1, self.system.cpu.cores) as f64;
        let total: f64 = shard_times.iter().sum();
        let longest = shard_times.iter().cloned().fold(0.0f64, f64::max);
        let path_shards = (shard_times.len() as f64 / w).ceil();
        let mut t = (total / w).max(longest) + self.calib.cpu_shard_dispatch * path_shards;
        if w > 1.0 {
            t += self.calib.omp_base_overhead + self.calib.omp_per_core_overhead * w;
        }
        t
    }

    /// Modelled seconds for one execution of `op` in `fmt`, including
    /// noise. This is the query operation-aware tuners rank formats by.
    pub fn op_time(&self, op: Op, fmt: FormatId, a: &MatrixAnalysis) -> f64 {
        match op {
            Op::Spmv => self.spmv_time(fmt, a),
            Op::Spmm { k } => self.spmm_time(fmt, a, k),
        }
    }

    /// Computational slots one pass over the matrix touches in `fmt`
    /// (padded formats do padded work on every right-hand side).
    fn op_work_slots(fmt: FormatId, a: &MatrixAnalysis) -> f64 {
        let nnz = a.nnz() as f64;
        match fmt {
            FormatId::Coo | FormatId::Csr => nnz,
            FormatId::Dia => a.dia_padded() as f64,
            FormatId::Ell => a.ell_padded() as f64,
            FormatId::Hyb => (a.hyb_padded() + a.hyb_coo_nnz) as f64,
            FormatId::Hdc => (a.hdc_padded() + a.hdc_csr_nnz) as f64,
            FormatId::Bsr => a.bsr_padded(Self::bsr_dim()) as f64,
            FormatId::Bell => a.bell_padded as f64,
        }
    }

    /// Square block dim the model prices BSR at (the default parameters,
    /// matching what an unparameterized conversion builds).
    fn bsr_dim() -> usize {
        morpheus::FormatParams::default().normalized_block().0
    }

    /// Modelled seconds for one SpMM (`Y = A X`) with `k` right-hand sides
    /// in `fmt`.
    ///
    /// Modelled as one SpMV plus `k - 1` incremental right-hand sides. The
    /// matrix arrays stream once regardless of `k` and, with row-major `X`,
    /// the `k` gathered `x` values per non-zero are contiguous — so each
    /// additional right-hand side pays only streaming traffic over the
    /// format's *work slots* plus the `y` update, with none of the gather
    /// penalty of the first pass. Padded formats therefore scale worse in
    /// `k` than CSR/COO, which is exactly why tuners must be
    /// operation-aware.
    pub fn spmm_time(&self, fmt: FormatId, a: &MatrixAnalysis, k: usize) -> f64 {
        let base = self.spmv_time(fmt, a);
        let k = k.max(1) as f64;
        if k == 1.0 {
            return base;
        }
        let work = Self::op_work_slots(fmt, a);
        let bytes = (work + 2.0 * a.nrows() as f64) * 8.0;
        let per_rhs = match self.backend {
            Backend::Serial => bytes / self.system.cpu.bandwidth(1),
            Backend::OpenMp => bytes / self.system.cpu.bandwidth(self.system.cpu.cores),
            b => {
                let dev = self.system.gpu_for(b).expect("backend support checked at construction");
                bytes / dev.bandwidth()
            }
        };
        base + (k - 1.0) * per_rhs * self.noise(a, fmt)
    }

    /// `true` when the format's padded storage passes the fill guard.
    pub fn is_viable(&self, fmt: FormatId, a: &MatrixAnalysis) -> bool {
        let nnz = a.nnz();
        match fmt {
            FormatId::Dia => padding_viable(a.dia_padded(), nnz),
            FormatId::Ell => padding_viable(a.ell_padded(), nnz),
            FormatId::Hyb => padding_viable(a.hyb_padded(), nnz),
            FormatId::Hdc => padding_viable(a.hdc_padded(), nnz),
            FormatId::Bsr => padding_viable(a.bsr_padded(Self::bsr_dim()), nnz),
            FormatId::Bell => padding_viable(a.bell_padded, nnz),
            _ => true,
        }
    }

    /// Profiles all formats on this engine (the paper's "profiling runs",
    /// §III-A): per-format single-SpMV time, skipping non-viable formats,
    /// plus the winner.
    pub fn profile(&self, a: &MatrixAnalysis) -> ProfileResult {
        self.profile_op(a, Op::Spmv)
    }

    /// [`VirtualEngine::profile`] for an arbitrary operation.
    pub fn profile_op(&self, a: &MatrixAnalysis, op: Op) -> ProfileResult {
        let mut times = [None; FORMAT_COUNT];
        let mut best = FormatId::Csr;
        let mut best_t = f64::INFINITY;
        for fmt in morpheus::FormatEntry::all().iter().map(|e| e.id) {
            if !self.is_viable(fmt, a) {
                continue;
            }
            let t = self.op_time(op, fmt, a);
            times[fmt.index()] = Some(t);
            if t < best_t {
                best_t = t;
                best = fmt;
            }
        }
        ProfileResult { times, optimal: best }
    }

    /// Modelled cost of the on-line feature-extraction pass (§VI-C) over a
    /// matrix stored in `active` format.
    ///
    /// The pass streams the format's arrays once and maintains row/diagonal
    /// histograms; the histogram updates are scalar work that does not
    /// parallelise well, which is why the OpenMP backends pay relatively
    /// more here than in SpMV (visible in Table IV).
    pub fn feature_extraction_time(&self, active: FormatId, a: &MatrixAnalysis) -> f64 {
        let nnz = a.nnz() as f64;
        let bytes = match active {
            FormatId::Coo => nnz * 24.0,
            FormatId::Csr => nnz * 16.0 + (a.nrows() as f64 + 1.0) * 8.0,
            FormatId::Dia => a.dia_padded() as f64 * 8.0,
            FormatId::Ell => a.ell_padded() as f64 * 16.0,
            FormatId::Hyb => a.hyb_padded() as f64 * 16.0 + a.hyb_coo_nnz as f64 * 24.0,
            FormatId::Hdc => a.hdc_padded() as f64 * 8.0 + a.hdc_csr_nnz as f64 * 16.0,
            FormatId::Bsr => {
                let b = Self::bsr_dim();
                a.bsr_padded(b) as f64 * 8.0 + a.bsr_nblocks(b) as f64 * 16.0
            }
            FormatId::Bell => a.bell_padded as f64 * 16.0,
        };
        match self.backend {
            Backend::Serial => {
                let f = self.system.cpu.freq_ghz * 1e9;
                bytes / self.system.cpu.bandwidth(1) + nnz * self.calib.fe_cycles_per_entry / f
            }
            Backend::OpenMp => {
                let cores = self.system.cpu.cores;
                let f = self.system.cpu.freq_ghz * 1e9;
                // Streaming parallelises; histogram merging is serialised and
                // several stats kernels each pay a fork/barrier.
                bytes / self.system.cpu.bandwidth(cores)
                    + nnz * self.calib.fe_cycles_per_entry / f
                    + 3.0 * (self.calib.omp_base_overhead + cores as f64 * self.calib.omp_per_core_overhead)
            }
            b => {
                let dev = self.system.gpu_for(b).expect("checked");
                // Streamed on-device (no transfers, §VI-C), plus a few kernel
                // launches and a reduced result read-back.
                bytes / dev.bandwidth() + 3.0 * self.calib.gpu_launch_overhead + 10.0e-6
            }
        }
    }

    /// Modelled cost of evaluating a tree-ensemble model that visits
    /// `nodes_visited` internal nodes (runs on the host CPU).
    pub fn prediction_time(&self, nodes_visited: usize) -> f64 {
        self.calib.predict_base + nodes_visited as f64 * self.calib.predict_per_node
    }

    /// Modelled cost of converting a matrix from `from` to `to` (read +
    /// permute + write of both representations' bytes). Used by the
    /// run-first tuner's cost accounting.
    pub fn conversion_time(&self, from: FormatId, to: FormatId, a: &MatrixAnalysis) -> f64 {
        if from == to {
            return 0.0;
        }
        let footprint = |fmt: FormatId| -> f64 {
            let nnz = a.nnz() as f64;
            match fmt {
                FormatId::Coo => nnz * 24.0,
                FormatId::Csr => nnz * 16.0 + (a.nrows() as f64 + 1.0) * 8.0,
                FormatId::Dia => a.dia_padded() as f64 * 8.0,
                FormatId::Ell => a.ell_padded() as f64 * 16.0,
                FormatId::Hyb => a.hyb_padded() as f64 * 16.0 + a.hyb_coo_nnz as f64 * 24.0,
                FormatId::Hdc => a.hdc_padded() as f64 * 8.0 + a.hdc_csr_nnz as f64 * 16.0,
                FormatId::Bsr => {
                    let b = Self::bsr_dim();
                    a.bsr_padded(b) as f64 * 8.0 + a.bsr_nblocks(b) as f64 * 16.0
                }
                FormatId::Bell => a.bell_padded as f64 * 16.0,
            }
        };
        let bytes = (footprint(from) + footprint(to)) * self.calib.convert_byte_factor;
        // Conversions run on the host CPU (device conversions would add
        // transfers; Morpheus converts host-side).
        let threads = match self.backend {
            Backend::OpenMp => self.system.cpu.cores,
            _ => 1,
        };
        bytes / self.system.cpu.bandwidth(threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::systems;
    use morpheus::{CooMatrix, DynamicMatrix};

    fn sample(n: usize, per_row: usize) -> MatrixAnalysis {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for r in 0..n {
            for k in 0..per_row {
                rows.push(r);
                cols.push((r * 31 + k * 1009) % n);
            }
        }
        let vals = vec![1.0f64; rows.len()];
        analyze(&DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap()))
    }

    #[test]
    fn profile_is_deterministic() {
        let a = sample(5000, 7);
        let e = VirtualEngine::new(systems::cirrus(), Backend::OpenMp);
        let p1 = e.profile(&a);
        let p2 = e.profile(&a);
        assert_eq!(p1.optimal, p2.optimal);
        assert_eq!(p1.times, p2.times);
    }

    #[test]
    fn csr_always_viable_and_timed() {
        let a = sample(3000, 4);
        for pair in systems::all_system_backends() {
            let e = VirtualEngine::for_pair(&pair);
            let p = e.profile(&a);
            assert!(p.times[FormatId::Csr.index()].is_some(), "{}", e.label());
            assert!(p.optimal_speedup() >= 1.0, "{}", e.label());
        }
    }

    #[test]
    fn nonviable_formats_are_skipped() {
        // Hypersparse scatter with one dense-ish row: ELL padding explodes.
        let n = 100_000usize;
        let mut rows: Vec<usize> = (0..2000).map(|k| (k * 47) % n).collect();
        let mut cols: Vec<usize> = (0..2000).map(|k| (k * 89) % n).collect();
        for k in 0..3000 {
            rows.push(5);
            cols.push((k * 31) % n);
        }
        let vals = vec![1.0f64; rows.len()];
        let a = analyze(&DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap()));
        assert!(!padding_viable(a.ell_padded(), a.nnz()));
        let e = VirtualEngine::new(systems::cirrus(), Backend::Cuda);
        let p = e.profile(&a);
        assert!(p.times[FormatId::Ell.index()].is_none());
        assert_ne!(p.optimal, FormatId::Ell);
    }

    #[test]
    fn noise_is_bounded_and_deterministic() {
        let a = sample(1000, 5);
        let e = VirtualEngine::new(systems::xci(), Backend::Serial);
        let t1 = e.spmv_time(FormatId::Csr, &a);
        let t2 = e.spmv_time(FormatId::Csr, &a);
        assert_eq!(t1, t2);
        let quiet = VirtualEngine::new(systems::xci(), Backend::Serial).with_noise(0.0, 0);
        let t0 = quiet.spmv_time(FormatId::Csr, &a);
        assert!((t1 / t0 - 1.0).abs() < 0.25, "noise factor out of range: {}", t1 / t0);
    }

    #[test]
    fn feature_extraction_cheaper_than_many_spmvs() {
        // Table IV: at least 75% of matrices need fewer than 100 CSR-SpMV
        // equivalents; sanity-check the same order of magnitude here.
        let a = sample(20_000, 10);
        for pair in systems::all_system_backends() {
            let e = VirtualEngine::for_pair(&pair);
            let fe = e.feature_extraction_time(FormatId::Csr, &a);
            let spmv = e.profile(&a).csr_time();
            let ratio = fe / spmv;
            assert!(ratio > 0.1 && ratio < 400.0, "{}: FE/SpMV = {ratio}", e.label());
        }
    }

    #[test]
    fn best_variant_never_costs_more_than_scalar() {
        let a = sample(5000, 7);
        for pair in systems::all_system_backends() {
            let e = VirtualEngine::for_pair(&pair);
            for fmt in morpheus::format::ALL_FORMATS {
                let scalar = e.spmv_time_variant(fmt, KernelVariant::Scalar, &a);
                assert_eq!(scalar, e.spmv_time(fmt, &a), "{} {fmt}", e.label());
                let (best, t) = e.best_spmv_variant(fmt, &a);
                assert!(t <= scalar, "{} {fmt}: {best} {t} vs scalar {scalar}", e.label());
                assert!(best.applies_to(fmt));
            }
        }
    }

    #[test]
    fn cpu_backends_price_variants_gpu_backends_do_not() {
        // sample() scatters columns, and 48 nnz/row clears the short-row
        // floor, so CSR on a CPU backend should profit from a non-scalar
        // body; CUDA/HIP have no CPU variant bodies.
        let a = sample(5000, 48);
        let omp = VirtualEngine::new(systems::cirrus(), Backend::OpenMp);
        let (best, t) = omp.best_spmv_variant(FormatId::Csr, &a);
        assert_ne!(best, KernelVariant::Scalar, "scattered CSR should pick a specialised body");
        assert!(t < omp.spmv_time(FormatId::Csr, &a));
        let cuda = VirtualEngine::new(systems::cirrus(), Backend::Cuda);
        for v in ALL_VARIANTS {
            assert_eq!(cuda.spmv_time_variant(FormatId::Csr, v, &a), cuda.spmv_time(FormatId::Csr, &a));
        }
    }

    #[test]
    fn prediction_cost_scales_with_nodes() {
        let e = VirtualEngine::new(systems::archer2(), Backend::Serial);
        assert!(e.prediction_time(1000) > e.prediction_time(10));
    }

    #[test]
    fn conversion_cost_zero_for_same_format() {
        let a = sample(1000, 5);
        let e = VirtualEngine::new(systems::archer2(), Backend::Serial);
        assert_eq!(e.conversion_time(FormatId::Csr, FormatId::Csr, &a), 0.0);
        assert!(e.conversion_time(FormatId::Csr, FormatId::Coo, &a) > 0.0);
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn unsupported_backend_panics() {
        let _ = VirtualEngine::new(systems::archer2(), Backend::Cuda);
    }

    #[test]
    fn spmm_with_one_rhs_is_spmv() {
        let a = sample(3000, 5);
        for pair in systems::all_system_backends() {
            let e = VirtualEngine::for_pair(&pair);
            for fmt in morpheus::format::ALL_FORMATS {
                assert_eq!(e.spmm_time(fmt, &a, 1), e.spmv_time(fmt, &a), "{} {fmt}", e.label());
                assert_eq!(e.op_time(Op::Spmv, fmt, &a), e.spmv_time(fmt, &a));
                assert_eq!(e.op_time(Op::Spmm { k: 4 }, fmt, &a), e.spmm_time(fmt, &a, 4));
            }
        }
    }

    #[test]
    fn spmm_amortises_matrix_traffic() {
        let a = sample(20_000, 8);
        let e = VirtualEngine::new(systems::cirrus(), Backend::Serial);
        let k = 16usize;
        let spmm = e.spmm_time(FormatId::Csr, &a, k);
        let repeated = k as f64 * e.spmv_time(FormatId::Csr, &a);
        // Growing in k, but cheaper than k separate SpMVs (the entire point
        // of the blocked kernel).
        assert!(spmm > e.spmv_time(FormatId::Csr, &a));
        assert!(spmm < repeated, "spmm {spmm} vs {k} spmvs {repeated}");
    }

    #[test]
    fn spmm_profile_can_rank_formats_differently() {
        // A banded matrix with partially-filled bands: DIA pads, CSR does
        // not. Padding is re-streamed per right-hand side, so CSR's
        // relative standing must improve (strictly) as k grows.
        let n = 30_000usize;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for i in 0..n {
            for d in [-6isize, -3, 0, 2, 5] {
                let j = i as isize + d;
                if j >= 0 && (j as usize) < n && (i + d.unsigned_abs()) % 3 != 0 {
                    rows.push(i);
                    cols.push(j as usize);
                }
            }
        }
        let vals = vec![1.0f64; rows.len()];
        let a = analyze(&DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap()));
        let e = VirtualEngine::new(systems::a64fx(), Backend::Serial);
        let rel = |k: usize| e.spmm_time(FormatId::Csr, &a, k) / e.spmm_time(FormatId::Dia, &a, k);
        assert!(rel(64) < rel(1), "CSR must gain on DIA as k grows: {} vs {}", rel(64), rel(1));
    }
}
