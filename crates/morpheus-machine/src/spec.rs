//! Hardware specifications of the simulated systems.

/// Execution backend, mirroring Morpheus' four backends (§II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Backend {
    /// Sequential CPU execution.
    Serial,
    /// Multithreaded CPU execution (the "OpenMP" backend).
    OpenMp,
    /// NVIDIA GPU execution (simulated).
    Cuda,
    /// AMD GPU execution (simulated).
    Hip,
}

impl Backend {
    /// Upper-case name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Serial => "Serial",
            Backend::OpenMp => "OpenMP",
            Backend::Cuda => "CUDA",
            Backend::Hip => "HIP",
        }
    }

    /// `true` for the GPU backends.
    pub fn is_gpu(self) -> bool {
        matches!(self, Backend::Cuda | Backend::Hip)
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// GPU vendor, which selects the simulated runtime's kernel maturity
/// factors (the paper's HIP numbers reflect a less-tuned CSR path than
/// CUDA's — see `GpuSpec::csr_quality`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuVendor {
    /// NVIDIA (CUDA backend).
    Nvidia,
    /// AMD (HIP backend).
    Amd,
}

/// CPU package description (per compute node).
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Total hardware cores across sockets.
    pub cores: usize,
    /// Sustained clock in GHz.
    pub freq_ghz: f64,
    /// SIMD register width in bytes (32 = AVX2, 64 = SVE-512, 16 = NEON).
    pub simd_bytes: usize,
    /// Node-level sustained memory bandwidth (STREAM-like), GB/s.
    pub mem_bw_gbs: f64,
    /// Single-core sustained memory bandwidth, GB/s.
    pub core_bw_gbs: f64,
    /// Last-level cache capacity, MiB.
    pub cache_mib: f64,
}

impl CpuSpec {
    /// Peak double-precision FLOP/s for `threads` cores (FMA counted as 2).
    pub fn peak_flops(&self, threads: usize) -> f64 {
        let lanes = (self.simd_bytes / 8).max(1) as f64;
        threads as f64 * self.freq_ghz * 1e9 * lanes * 2.0
    }

    /// Aggregate sustainable bandwidth for `threads` cores, bytes/s.
    pub fn bandwidth(&self, threads: usize) -> f64 {
        (self.core_bw_gbs * threads as f64).min(self.mem_bw_gbs) * 1e9
    }

    /// Last-level cache capacity in bytes.
    pub fn cache_bytes(&self) -> f64 {
        self.cache_mib * 1024.0 * 1024.0
    }
}

/// GPU device description.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Vendor (selects the backend: CUDA vs HIP).
    pub vendor: GpuVendor,
    /// Streaming multiprocessors / compute units.
    pub sms: usize,
    /// Sustained clock in GHz.
    pub clock_ghz: f64,
    /// Device memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// L2 cache capacity, MiB.
    pub l2_mib: f64,
    /// Relative maturity of the vendor library's CSR SpMV kernel
    /// (1.0 = fully tuned; > 1.0 multiplies the modelled CSR runtime). The
    /// paper's AMD results ("average speedup of 8x" over CSR on MI100, §VII-F)
    /// reflect a CSR path well behind the NVIDIA one.
    pub csr_quality: f64,
}

impl GpuSpec {
    /// Device bandwidth in bytes/s.
    pub fn bandwidth(&self) -> f64 {
        self.mem_bw_gbs * 1e9
    }

    /// Warp-iteration retirement rate (warp-iterations per second across the
    /// device) assuming enough resident warps to hide latency.
    pub fn warp_iter_rate(&self) -> f64 {
        // One warp-iteration (load + FMA + bookkeeping) retires roughly every
        // 4 cycles per SM with full occupancy.
        self.sms as f64 * self.clock_ghz * 1e9 / 4.0
    }

    /// L2 capacity in bytes.
    pub fn l2_bytes(&self) -> f64 {
        self.l2_mib * 1024.0 * 1024.0
    }

    /// Backend this device is driven by.
    pub fn backend(&self) -> Backend {
        match self.vendor {
            GpuVendor::Nvidia => Backend::Cuda,
            GpuVendor::Amd => Backend::Hip,
        }
    }
}

/// A full system profile: one CPU node plus optional attached GPUs.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemProfile {
    /// System name as used in the paper (ARCHER2, Cirrus, A64FX, P3, XCI).
    pub name: &'static str,
    /// CPU node description.
    pub cpu: CpuSpec,
    /// Attached accelerators (may be empty).
    pub gpus: Vec<GpuSpec>,
}

impl SystemProfile {
    /// The first GPU handled by `backend`, if any.
    pub fn gpu_for(&self, backend: Backend) -> Option<&GpuSpec> {
        self.gpus.iter().find(|g| g.backend() == backend)
    }

    /// `true` if this system supports the given backend.
    pub fn supports(&self, backend: Backend) -> bool {
        match backend {
            Backend::Serial | Backend::OpenMp => true,
            b => self.gpu_for(b).is_some(),
        }
    }
}

/// A (system, backend) pair — the unit the paper trains one model per
/// (Tables III and IV have one row per pair).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemBackend {
    /// The system profile.
    pub system: SystemProfile,
    /// The backend on that system.
    pub backend: Backend,
}

impl SystemBackend {
    /// `"System/Backend"` label used throughout reports and model file
    /// names.
    pub fn label(&self) -> String {
        format!("{}/{}", self.system.name, self.backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems;

    #[test]
    fn backend_names() {
        assert_eq!(Backend::Serial.name(), "Serial");
        assert_eq!(Backend::OpenMp.name(), "OpenMP");
        assert!(Backend::Cuda.is_gpu());
        assert!(Backend::Hip.is_gpu());
        assert!(!Backend::Serial.is_gpu());
    }

    #[test]
    fn cpu_derived_quantities() {
        let cpu = systems::a64fx().cpu;
        // 48 cores * 1.8 GHz * 8 lanes * 2 = 1382.4 GF.
        assert!((cpu.peak_flops(48) - 1.3824e12).abs() < 1e9);
        // Single core bandwidth below node bandwidth.
        assert!(cpu.bandwidth(1) < cpu.bandwidth(48));
        // Node bandwidth saturates.
        assert_eq!(cpu.bandwidth(48), cpu.bandwidth(1000));
    }

    #[test]
    fn gpu_lookup() {
        let p3 = systems::p3();
        assert!(p3.gpu_for(Backend::Cuda).is_some());
        assert!(p3.gpu_for(Backend::Hip).is_some());
        assert!(p3.supports(Backend::Serial));
        let archer = systems::archer2();
        assert!(!archer.supports(Backend::Cuda));
    }

    #[test]
    fn labels() {
        let sb = SystemBackend { system: systems::cirrus(), backend: Backend::Cuda };
        assert_eq!(sb.label(), "Cirrus/CUDA");
    }
}
