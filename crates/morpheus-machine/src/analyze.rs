//! Structural analysis of a matrix, computed once and shared by all format
//! cost models.
//!
//! Everything the CPU and GPU models need derives from the shared
//! [`Analysis`] artifact (row-length histogram, diagonal populations,
//! Table-I statistics) plus one row-major walk of the *active* format for
//! the entry-order quantities (`x`-gather locality and the HDC remainder's
//! row histogram). No COO view is materialised — [`analyze_from`] reuses a
//! caller-supplied `Analysis` so the whole tuning pipeline performs exactly
//! one histogram pass and one entry walk per matrix.

use morpheus::analysis::passes;
use morpheus::hdc::true_diag_threshold;
use morpheus::hyb::optimal_hyb_width_u32;
use morpheus::stats::MatrixStats;
use morpheus::{for_each_entry_row_major, Analysis, DynamicMatrix, Scalar};

/// GPU warp width used by the SIMT model (both vendors schedule SpMV
/// row-kernels in 32-wide groups; MI100 wavefronts are 64 but rocSPARSE maps
/// rows in 32-groups for these kernels, and the distinction is absorbed by
/// calibration).
pub const WARP: usize = 32;

/// Pre-computed structural facts about one matrix.
#[derive(Debug, Clone)]
pub struct MatrixAnalysis {
    /// Table-I statistics (shape, row distribution, diagonals).
    pub stats: MatrixStats,
    /// Non-zeros per row.
    pub row_hist: Vec<u32>,
    /// Fraction of entries whose column index is within one cache line
    /// (8 doubles) of the previous entry in the same row — the probability
    /// an `x`-gather hits an already-fetched line.
    pub locality: f64,
    /// ELL width (max row length).
    pub ell_width: usize,
    /// HYB split width `K_H` chosen by the storage-optimal rule.
    pub hyb_width: usize,
    /// Entries spilling to the HYB COO portion.
    pub hyb_coo_nnz: usize,
    /// True diagonals (HDC DIA portion).
    pub hdc_ntrue: usize,
    /// Entries stored in the HDC DIA portion.
    pub hdc_dia_nnz: usize,
    /// Entries in the HDC CSR remainder.
    pub hdc_csr_nnz: usize,
    /// `Σ_warp max(row nnz)`: iterations the scalar CSR GPU kernel spends,
    /// counting divergence (idle lanes wait for the longest row in the
    /// 32-row group).
    pub warp_iters_csr: u64,
    /// Same statistic for the HDC CSR remainder.
    pub warp_iters_hdc_csr: u64,
    /// Mean row length of the HDC CSR remainder.
    pub hdc_csr_mean_row: f64,
    /// Maximum row length of the HDC CSR remainder (drives its GPU
    /// tail-latency terms).
    pub hdc_csr_max_row: usize,
    /// Per-row occupancy of the HDC CSR remainder (entries off every true
    /// diagonal) — the weights the planned executor partitions the
    /// remainder by, so its imbalance can be modelled with the same greedy
    /// as standalone CSR.
    pub hdc_csr_hist: Vec<u32>,
    /// Prefix sums of `row_hist` (`row_prefix[i]` = entries in rows `< i`),
    /// for O(threads) static-partition imbalance queries.
    pub row_prefix: Vec<u64>,
    /// Occupied `b x b` blocks for each square block dim in
    /// [`morpheus::BSR_BLOCK_DIMS`] (2, 4, 8) — exact counts from the same
    /// row-major walk, so BSR padding (`blocks * b * b`) and block fill are
    /// known without converting.
    pub bsr_blocks: [usize; 3],
    /// BELL padded slots under the default power-of-two bucket ladder
    /// (each non-empty row rounded up to its bucket width).
    pub bell_padded: usize,
    /// Non-empty BELL buckets under the default ladder (kernel launches /
    /// slab sweeps the bucketed execution pays).
    pub bell_nbuckets: usize,
}

impl MatrixAnalysis {
    /// Load imbalance of an OpenMP `schedule(static)` row partition into
    /// `threads` contiguous chunks: slowest chunk's entries over the mean.
    /// This is the partition Morpheus' OpenMP CSR kernel uses, and it is
    /// what lets regular formats beat CSR on skewed matrices (§VII-C).
    pub fn static_row_imbalance(&self, threads: usize) -> f64 {
        let nrows = self.stats.nrows;
        let nnz = self.stats.nnz as f64;
        if threads <= 1 || nrows == 0 || nnz == 0.0 {
            return 1.0;
        }
        let threads = threads.min(nrows);
        let mean = nnz / threads as f64;
        let mut worst = 0u64;
        for t in 0..threads {
            let lo = t * nrows / threads;
            let hi = (t + 1) * nrows / threads;
            let chunk = self.row_prefix[hi] - self.row_prefix[lo];
            worst = worst.max(chunk);
        }
        (worst as f64 / mean).max(1.0)
    }

    /// Load imbalance of the **nnz-weighted** row partition the planned
    /// executor (`morpheus::ExecPlan`) builds: the *same*
    /// `weighted_partition_with` greedy is replayed over the row histogram
    /// and the slowest chunk compared against the ideal `nnz / threads`,
    /// so the prediction matches the schedule that actually runs — chunks
    /// can never split a row (the largest row lower-bounds the slowest
    /// chunk) and the greedy may overshoot its target by up to one row.
    /// O(rows) per query; compare
    /// [`MatrixAnalysis::static_row_imbalance`] for the OpenMP
    /// `schedule(static)` partition the paper's kernels use.
    pub fn balanced_row_imbalance(&self, threads: usize) -> f64 {
        greedy_balanced_imbalance(&self.row_hist, self.stats.nnz, threads)
    }

    /// [`MatrixAnalysis::balanced_row_imbalance`] for the HDC CSR
    /// remainder: the executor partitions the remainder by its *own* row
    /// weights (`ExecPlan` reads the remainder's `row_offsets`), so the
    /// model replays the greedy over the remainder histogram. Using the
    /// whole-matrix histogram here would mis-predict whenever the DIA
    /// portion absorbs the skew — and using anything *other* than the same
    /// greedy would rank HDC inconsistently against standalone CSR in the
    /// degenerate no-true-diagonals case, where the remainder is the whole
    /// matrix.
    pub fn hdc_csr_balanced_imbalance(&self, threads: usize) -> f64 {
        greedy_balanced_imbalance(&self.hdc_csr_hist, self.hdc_csr_nnz, threads)
    }

    /// Structural non-zeros.
    pub fn nnz(&self) -> usize {
        self.stats.nnz
    }

    /// Rows.
    pub fn nrows(&self) -> usize {
        self.stats.nrows
    }

    /// Columns.
    pub fn ncols(&self) -> usize {
        self.stats.ncols
    }

    /// ELL padded slots (`width * nrows`).
    pub fn ell_padded(&self) -> usize {
        self.ell_width * self.stats.nrows
    }

    /// DIA padded slots (`ndiags * nrows`).
    pub fn dia_padded(&self) -> usize {
        self.stats.ndiags * self.stats.nrows
    }

    /// HYB ELL-portion padded slots.
    pub fn hyb_padded(&self) -> usize {
        self.hyb_width * self.stats.nrows
    }

    /// HDC DIA-portion padded slots.
    pub fn hdc_padded(&self) -> usize {
        self.hdc_ntrue * self.stats.nrows
    }

    /// Mean non-zeros per row (0 for empty).
    pub fn mean_row(&self) -> f64 {
        self.stats.row_nnz_mean
    }

    /// BSR padded slots (`blocks * b * b`) for square block dim `b`.
    ///
    /// # Panics
    /// If `b` is not one of [`morpheus::BSR_BLOCK_DIMS`].
    pub fn bsr_padded(&self, b: usize) -> usize {
        self.bsr_blocks[bsr_dim_index(b)] * b * b
    }

    /// Occupied blocks for square block dim `b`.
    pub fn bsr_nblocks(&self, b: usize) -> usize {
        self.bsr_blocks[bsr_dim_index(b)]
    }

    /// Block fill ratio `nnz / padded` for square dim `b` (1 when empty) —
    /// the quantity that decides whether register blocking pays.
    pub fn bsr_fill(&self, b: usize) -> f64 {
        let padded = self.bsr_padded(b);
        if padded == 0 {
            1.0
        } else {
            self.nnz() as f64 / padded as f64
        }
    }
}

/// Index of square block dim `b` in [`morpheus::BSR_BLOCK_DIMS`].
fn bsr_dim_index(b: usize) -> usize {
    morpheus::BSR_BLOCK_DIMS
        .iter()
        .position(|&d| d == b)
        .unwrap_or_else(|| panic!("unsupported BSR block dim {b}"))
}

/// Load imbalance of the nnz-weighted greedy row partition
/// (`weighted_partition_with`, the one `morpheus::ExecPlan` builds) over
/// the given per-row weights: slowest chunk over the ideal
/// `total / threads`. O(rows) per query.
fn greedy_balanced_imbalance(hist: &[u32], total: usize, threads: usize) -> f64 {
    let total = total as f64;
    if threads <= 1 || hist.is_empty() || total == 0.0 {
        return 1.0;
    }
    let threads = threads.min(hist.len());
    let parts = morpheus_parallel::weighted_partition_with(hist.len(), threads, |r| hist[r] as usize);
    let worst = parts.iter().map(|p| p.clone().map(|r| u64::from(hist[r])).sum::<u64>()).max().unwrap_or(0);
    (worst as f64 / (total / threads as f64)).max(1.0)
}

/// Warp-divergence statistic: sum over consecutive 32-row groups of the
/// maximum row length in the group.
fn warp_divergence_iters(row_hist: &[u32]) -> u64 {
    row_hist.chunks(WARP).map(|w| w.iter().copied().max().unwrap_or(0) as u64).sum()
}

/// Analyses a matrix with the default true-diagonal fraction.
pub fn analyze<V: Scalar>(m: &DynamicMatrix<V>) -> MatrixAnalysis {
    analyze_with_alpha(m, morpheus::hdc::DEFAULT_TRUE_DIAG_ALPHA)
}

/// Analyses a matrix with an explicit true-diagonal fraction `alpha`.
///
/// Convenience wrapper that builds the shared [`Analysis`] first; callers
/// that already hold one (the Oracle does) should use [`analyze_from`] to
/// avoid repeating the histogram pass.
pub fn analyze_with_alpha<V: Scalar>(m: &DynamicMatrix<V>, alpha: f64) -> MatrixAnalysis {
    analyze_from(m, &Analysis::of_auto(m, alpha))
}

/// Derives the machine model's [`MatrixAnalysis`] from a shared
/// [`Analysis`], adding the two entry-order quantities the histograms
/// cannot express (gather locality and the HDC remainder's row histogram)
/// in a single row-major walk of the active format — no COO view, no
/// additional histogram passes.
pub fn analyze_from<V: Scalar>(m: &DynamicMatrix<V>, shared: &Analysis) -> MatrixAnalysis {
    debug_assert!(shared.matches(m), "analysis artifact does not describe this matrix");
    let (nrows, ncols) = (shared.nrows, shared.ncols);
    let nnz = shared.nnz();
    let alpha = shared.stats.true_diag_alpha;
    let row_hist = shared.row_hist.clone();

    // Diagonal summary + HDC split, straight from the population histogram.
    let threshold = true_diag_threshold(nrows, ncols, alpha) as u32;
    let ntrue = shared.stats.ntrue_diags;
    let dia_nnz: usize = shared.diag_pop.iter().filter(|&&p| p >= threshold).map(|&p| p as usize).sum();
    let hdc_csr_nnz = nnz - dia_nnz;

    // HYB split width and surplus.
    let hyb_width = optimal_hyb_width_u32(&row_hist, std::mem::size_of::<V>());
    let hyb_coo_nnz: usize = row_hist.iter().map(|&l| (l as usize).saturating_sub(hyb_width)).sum();

    // BELL bucketing derives from the row histogram alone: mirror
    // `BellMatrix::from_rowmajor` with the default power-of-two ladder —
    // each non-empty row lands in the first bucket wide enough for it.
    let ladder = morpheus::bell::default_bucket_widths(shared.stats.row_nnz_max);
    let mut bucket_rows = vec![0usize; ladder.len()];
    let mut bell_padded = 0usize;
    for &l in &row_hist {
        if l == 0 {
            continue;
        }
        let b = ladder.partition_point(|&w| w < l as usize);
        bucket_rows[b] += 1;
        bell_padded += ladder[b];
    }
    let bell_nbuckets = bucket_rows.iter().filter(|&&n| n > 0).count();

    // One row-major walk for the entry-order quantities: the probability an
    // x-gather hits an already-fetched cache line (consecutive entries of a
    // row within 8 doubles), the per-row occupancy of the HDC CSR
    // remainder (entries off every true diagonal), and the occupied-block
    // counts for each BSR dim. Rows arrive ascending, so a block row is
    // never revisited: remembering the last block row that touched each
    // block column gives exact distinct-block counts in O(1) per entry.
    passes::record_traversal();
    let mut local_hits = 0usize;
    let mut hdc_csr_hist = row_hist.clone();
    let mut prev: Option<(usize, usize)> = None;
    let mut bsr_blocks = [0usize; 3];
    let mut block_seen: [Vec<usize>; 3] =
        std::array::from_fn(|i| vec![usize::MAX; ncols.div_ceil(morpheus::BSR_BLOCK_DIMS[i])]);
    for_each_entry_row_major(m, |r, c, _| {
        if let Some((pr, pc)) = prev {
            if pr == r && c - pc <= 8 {
                local_hits += 1;
            }
        }
        prev = Some((r, c));
        if ntrue > 0 && shared.diag_pop[c + nrows - 1 - r] >= threshold {
            hdc_csr_hist[r] -= 1;
        }
        for (i, &b) in morpheus::BSR_BLOCK_DIMS.iter().enumerate() {
            let (br, bc) = (r / b, c / b);
            if block_seen[i][bc] != br {
                block_seen[i][bc] = br;
                bsr_blocks[i] += 1;
            }
        }
    });
    let locality = if nnz == 0 { 1.0 } else { local_hits as f64 / nnz as f64 };

    let hdc_csr_mean_row = if nrows == 0 { 0.0 } else { hdc_csr_nnz as f64 / nrows as f64 };
    let hdc_csr_max_row = hdc_csr_hist.iter().copied().max().unwrap_or(0) as usize;

    let mut row_prefix = Vec::with_capacity(nrows + 1);
    row_prefix.push(0u64);
    let mut acc = 0u64;
    for &c in &row_hist {
        acc += c as u64;
        row_prefix.push(acc);
    }

    MatrixAnalysis {
        warp_iters_csr: warp_divergence_iters(&row_hist),
        warp_iters_hdc_csr: warp_divergence_iters(&hdc_csr_hist),
        stats: shared.stats.clone(),
        row_hist,
        locality,
        ell_width: shared.stats.row_nnz_max,
        hyb_width,
        hyb_coo_nnz,
        hdc_ntrue: ntrue,
        hdc_dia_nnz: dia_nnz,
        hdc_csr_nnz,
        hdc_csr_mean_row,
        hdc_csr_max_row,
        hdc_csr_hist,
        row_prefix,
        bsr_blocks,
        bell_padded,
        bell_nbuckets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus::CooMatrix;

    fn tridiag(n: usize) -> DynamicMatrix<f64> {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..n {
            for d in [-1isize, 0, 1] {
                let j = i as isize + d;
                if j >= 0 && (j as usize) < n {
                    rows.push(i);
                    cols.push(j as usize);
                    vals.push(1.0);
                }
            }
        }
        DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
    }

    #[test]
    fn tridiagonal_analysis() {
        let a = analyze(&tridiag(100));
        assert_eq!(a.stats.ndiags, 3);
        assert_eq!(a.stats.ntrue_diags, 3);
        assert_eq!(a.ell_width, 3);
        assert_eq!(a.hdc_csr_nnz, 0);
        assert_eq!(a.hdc_dia_nnz, a.nnz());
        // Tridiagonal columns are adjacent -> high gather locality.
        assert!(a.locality > 0.6, "locality {}", a.locality);
        // No divergence: warp iterations equal 3 per warp except boundaries.
        assert_eq!(a.warp_iters_csr, (100usize.div_ceil(32) * 3) as u64);
        assert_eq!(a.warp_iters_hdc_csr, 0);
    }

    #[test]
    fn skewed_matrix_divergence() {
        // 64 rows: 63 singletons + one row of 1000 entries.
        let n = 64usize;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for r in 0..n - 1 {
            rows.push(r);
            cols.push((r * 7) % n);
        }
        // Dense-ish last row in a wider matrix space.
        let m = 1024usize;
        for c in 0..1000 {
            rows.push(n - 1);
            cols.push(c % m);
        }
        let vals = vec![1.0; rows.len()];
        let coo = CooMatrix::from_triplets(n, m, &rows, &cols, &vals).unwrap();
        let a = analyze(&DynamicMatrix::from(coo));
        // Warp 0: max 1; warp 1: contains the dense row -> max 1000.
        assert_eq!(a.warp_iters_csr, 1 + 1000);
        assert_eq!(a.ell_width, 1000);
        // HYB spills the dense row's surplus to COO.
        assert!(a.hyb_width <= 2);
        assert!(a.hyb_coo_nnz >= 998);
    }

    #[test]
    fn scattered_matrix_low_locality() {
        // Deterministic scatter with large strides between columns.
        let n = 500usize;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for r in 0..n {
            for k in 0..4usize {
                rows.push(r);
                cols.push((r * 131 + k * 97) % n);
            }
        }
        let vals = vec![1.0; rows.len()];
        let coo = CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap();
        let a = analyze(&DynamicMatrix::from(coo));
        assert!(a.locality < 0.3, "locality {}", a.locality);
        assert!(a.stats.ndiags > 100);
        assert_eq!(a.stats.ntrue_diags, 0);
    }

    #[test]
    fn empty_matrix_analysis() {
        let m = DynamicMatrix::from(CooMatrix::<f64>::new(10, 10));
        let a = analyze(&m);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.warp_iters_csr, 0);
        assert_eq!(a.ell_padded(), 0);
        assert_eq!(a.locality, 1.0);
    }

    #[test]
    fn balanced_imbalance_bounded_by_largest_row_and_below_static() {
        // 63 singleton rows + one 1000-entry hub: schedule(static) hands
        // one contiguous chunk the hub *plus* its neighbours, the balanced
        // partition isolates the hub.
        let n = 64usize;
        let mut rows: Vec<usize> = (0..n - 1).collect();
        let mut cols: Vec<usize> = (0..n - 1).map(|r| (r * 7) % n).collect();
        let m = 1024usize;
        for c in 0..1000 {
            rows.push(n - 1);
            cols.push(c % m);
        }
        let vals = vec![1.0; rows.len()];
        let a = analyze(&DynamicMatrix::from(CooMatrix::from_triplets(n, m, &rows, &cols, &vals).unwrap()));
        let threads = 8;
        let balanced = a.balanced_row_imbalance(threads);
        let ideal = a.nnz() as f64 / threads as f64;
        assert!((balanced - 1000.0 / ideal).abs() < 1e-9, "hub bounds the slowest chunk: {balanced}");
        assert!(balanced <= a.static_row_imbalance(threads) + 1e-9, "balanced can only help");
        // Uniform matrices are near-perfectly balanced (the greedy may
        // overshoot its per-chunk target by at most one row).
        let u = tridiag(1000);
        let ua = analyze(&u);
        assert!((ua.balanced_row_imbalance(16) - 1.0).abs() < 0.05);
        assert_eq!(ua.balanced_row_imbalance(1), 1.0);
    }

    #[test]
    fn balanced_imbalance_replays_the_real_greedy_not_a_closed_form() {
        // Two heavy rows plus a singleton, two threads: the greedy crosses
        // its target mid-row and packs both heavy rows into one chunk, so
        // the true imbalance is ~2x — a closed-form max(ideal, max_row) /
        // ideal would report ~1x and make CSR look twice as fast as the
        // planned execution actually runs.
        let w = 100usize;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for r in 0..2 {
            for c in 0..w {
                rows.push(r);
                cols.push(c);
            }
        }
        rows.push(2);
        cols.push(0);
        let vals = vec![1.0f64; rows.len()];
        let a = analyze(&DynamicMatrix::from(CooMatrix::from_triplets(3, w, &rows, &cols, &vals).unwrap()));
        let balanced = a.balanced_row_imbalance(2);
        assert!(balanced > 1.9, "both heavy rows land in one chunk: {balanced}");
    }

    #[test]
    fn remainder_imbalance_consistent_with_whole_matrix_when_no_true_diags() {
        // Scattered matrix: no true diagonals, so the HDC CSR remainder is
        // the entire matrix and its modelled imbalance must equal the
        // standalone-CSR one — otherwise the tuner would rank HDC and CSR
        // differently for identical execution.
        let n = 500usize;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for r in 0..n {
            for j in 0..3usize {
                rows.push(r);
                cols.push((r * 131 + j * 97) % n);
            }
        }
        for c in 0..300 {
            rows.push(7);
            cols.push((c * 3 + 1) % n);
        }
        let vals = vec![1.0; rows.len()];
        let a = analyze(&DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap()));
        assert_eq!(a.stats.ntrue_diags, 0);
        assert_eq!(a.hdc_csr_nnz, a.nnz());
        for threads in [2, 8, 32] {
            assert_eq!(
                a.hdc_csr_balanced_imbalance(threads),
                a.balanced_row_imbalance(threads),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn hdc_split_partitions_nnz() {
        let a = analyze(&tridiag(64));
        assert_eq!(a.hdc_dia_nnz + a.hdc_csr_nnz, a.nnz());
    }

    #[test]
    fn analyze_from_is_format_invariant() {
        let base = tridiag(200);
        let reference = analyze(&base);
        let opts = morpheus::ConvertOptions::default();
        for fmt in morpheus::format::ALL_FORMATS {
            let m = base.to_format(fmt, &opts).unwrap();
            let shared = Analysis::of(&m, morpheus::hdc::DEFAULT_TRUE_DIAG_ALPHA);
            let a = analyze_from(&m, &shared);
            assert_eq!(a.stats, reference.stats, "{fmt}");
            assert_eq!(a.row_hist, reference.row_hist, "{fmt}");
            assert_eq!(a.locality, reference.locality, "{fmt}");
            assert_eq!(a.warp_iters_hdc_csr, reference.warp_iters_hdc_csr, "{fmt}");
            assert_eq!(a.hyb_width, reference.hyb_width, "{fmt}");
        }
    }

    #[test]
    fn analyze_from_adds_exactly_one_traversal() {
        let m = tridiag(300);
        let shared = Analysis::of(&m, morpheus::hdc::DEFAULT_TRUE_DIAG_ALPHA);
        passes::reset();
        let _ = analyze_from(&m, &shared);
        assert_eq!(passes::count(), 1, "only the locality/HDC walk may touch the matrix");
    }
}
