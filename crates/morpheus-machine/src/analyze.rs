//! Structural analysis of a matrix, computed once and shared by all format
//! cost models.
//!
//! Everything the CPU and GPU models need derives from the shared
//! [`Analysis`] artifact (row-length histogram, diagonal populations,
//! Table-I statistics) plus one row-major walk of the *active* format for
//! the entry-order quantities (`x`-gather locality and the HDC remainder's
//! row histogram). No COO view is materialised — [`analyze_from`] reuses a
//! caller-supplied `Analysis` so the whole tuning pipeline performs exactly
//! one histogram pass and one entry walk per matrix.

use morpheus::analysis::passes;
use morpheus::hdc::true_diag_threshold;
use morpheus::hyb::optimal_hyb_width_u32;
use morpheus::stats::MatrixStats;
use morpheus::{for_each_entry_row_major, Analysis, DynamicMatrix, Scalar};

/// GPU warp width used by the SIMT model (both vendors schedule SpMV
/// row-kernels in 32-wide groups; MI100 wavefronts are 64 but rocSPARSE maps
/// rows in 32-groups for these kernels, and the distinction is absorbed by
/// calibration).
pub const WARP: usize = 32;

/// Pre-computed structural facts about one matrix.
#[derive(Debug, Clone)]
pub struct MatrixAnalysis {
    /// Table-I statistics (shape, row distribution, diagonals).
    pub stats: MatrixStats,
    /// Non-zeros per row.
    pub row_hist: Vec<u32>,
    /// Fraction of entries whose column index is within one cache line
    /// (8 doubles) of the previous entry in the same row — the probability
    /// an `x`-gather hits an already-fetched line.
    pub locality: f64,
    /// ELL width (max row length).
    pub ell_width: usize,
    /// HYB split width `K_H` chosen by the storage-optimal rule.
    pub hyb_width: usize,
    /// Entries spilling to the HYB COO portion.
    pub hyb_coo_nnz: usize,
    /// True diagonals (HDC DIA portion).
    pub hdc_ntrue: usize,
    /// Entries stored in the HDC DIA portion.
    pub hdc_dia_nnz: usize,
    /// Entries in the HDC CSR remainder.
    pub hdc_csr_nnz: usize,
    /// `Σ_warp max(row nnz)`: iterations the scalar CSR GPU kernel spends,
    /// counting divergence (idle lanes wait for the longest row in the
    /// 32-row group).
    pub warp_iters_csr: u64,
    /// Same statistic for the HDC CSR remainder.
    pub warp_iters_hdc_csr: u64,
    /// Mean row length of the HDC CSR remainder.
    pub hdc_csr_mean_row: f64,
    /// Maximum row length of the HDC CSR remainder (drives its imbalance
    /// and GPU tail-latency terms).
    pub hdc_csr_max_row: usize,
    /// Prefix sums of `row_hist` (`row_prefix[i]` = entries in rows `< i`),
    /// for O(threads) static-partition imbalance queries.
    pub row_prefix: Vec<u64>,
}

impl MatrixAnalysis {
    /// Load imbalance of an OpenMP `schedule(static)` row partition into
    /// `threads` contiguous chunks: slowest chunk's entries over the mean.
    /// This is the partition Morpheus' OpenMP CSR kernel uses, and it is
    /// what lets regular formats beat CSR on skewed matrices (§VII-C).
    pub fn static_row_imbalance(&self, threads: usize) -> f64 {
        let nrows = self.stats.nrows;
        let nnz = self.stats.nnz as f64;
        if threads <= 1 || nrows == 0 || nnz == 0.0 {
            return 1.0;
        }
        let threads = threads.min(nrows);
        let mean = nnz / threads as f64;
        let mut worst = 0u64;
        for t in 0..threads {
            let lo = t * nrows / threads;
            let hi = (t + 1) * nrows / threads;
            let chunk = self.row_prefix[hi] - self.row_prefix[lo];
            worst = worst.max(chunk);
        }
        (worst as f64 / mean).max(1.0)
    }

    /// Structural non-zeros.
    pub fn nnz(&self) -> usize {
        self.stats.nnz
    }

    /// Rows.
    pub fn nrows(&self) -> usize {
        self.stats.nrows
    }

    /// Columns.
    pub fn ncols(&self) -> usize {
        self.stats.ncols
    }

    /// ELL padded slots (`width * nrows`).
    pub fn ell_padded(&self) -> usize {
        self.ell_width * self.stats.nrows
    }

    /// DIA padded slots (`ndiags * nrows`).
    pub fn dia_padded(&self) -> usize {
        self.stats.ndiags * self.stats.nrows
    }

    /// HYB ELL-portion padded slots.
    pub fn hyb_padded(&self) -> usize {
        self.hyb_width * self.stats.nrows
    }

    /// HDC DIA-portion padded slots.
    pub fn hdc_padded(&self) -> usize {
        self.hdc_ntrue * self.stats.nrows
    }

    /// Mean non-zeros per row (0 for empty).
    pub fn mean_row(&self) -> f64 {
        self.stats.row_nnz_mean
    }
}

/// Warp-divergence statistic: sum over consecutive 32-row groups of the
/// maximum row length in the group.
fn warp_divergence_iters(row_hist: &[u32]) -> u64 {
    row_hist.chunks(WARP).map(|w| w.iter().copied().max().unwrap_or(0) as u64).sum()
}

/// Analyses a matrix with the default true-diagonal fraction.
pub fn analyze<V: Scalar>(m: &DynamicMatrix<V>) -> MatrixAnalysis {
    analyze_with_alpha(m, morpheus::hdc::DEFAULT_TRUE_DIAG_ALPHA)
}

/// Analyses a matrix with an explicit true-diagonal fraction `alpha`.
///
/// Convenience wrapper that builds the shared [`Analysis`] first; callers
/// that already hold one (the Oracle does) should use [`analyze_from`] to
/// avoid repeating the histogram pass.
pub fn analyze_with_alpha<V: Scalar>(m: &DynamicMatrix<V>, alpha: f64) -> MatrixAnalysis {
    analyze_from(m, &Analysis::of_auto(m, alpha))
}

/// Derives the machine model's [`MatrixAnalysis`] from a shared
/// [`Analysis`], adding the two entry-order quantities the histograms
/// cannot express (gather locality and the HDC remainder's row histogram)
/// in a single row-major walk of the active format — no COO view, no
/// additional histogram passes.
pub fn analyze_from<V: Scalar>(m: &DynamicMatrix<V>, shared: &Analysis) -> MatrixAnalysis {
    debug_assert!(shared.matches(m), "analysis artifact does not describe this matrix");
    let (nrows, ncols) = (shared.nrows, shared.ncols);
    let nnz = shared.nnz();
    let alpha = shared.stats.true_diag_alpha;
    let row_hist = shared.row_hist.clone();

    // Diagonal summary + HDC split, straight from the population histogram.
    let threshold = true_diag_threshold(nrows, ncols, alpha) as u32;
    let ntrue = shared.stats.ntrue_diags;
    let dia_nnz: usize = shared.diag_pop.iter().filter(|&&p| p >= threshold).map(|&p| p as usize).sum();
    let hdc_csr_nnz = nnz - dia_nnz;

    // HYB split width and surplus.
    let hyb_width = optimal_hyb_width_u32(&row_hist, std::mem::size_of::<V>());
    let hyb_coo_nnz: usize = row_hist.iter().map(|&l| (l as usize).saturating_sub(hyb_width)).sum();

    // One row-major walk for the entry-order quantities: the probability an
    // x-gather hits an already-fetched cache line (consecutive entries of a
    // row within 8 doubles) and the per-row occupancy of the HDC CSR
    // remainder (entries off every true diagonal).
    passes::record_traversal();
    let mut local_hits = 0usize;
    let mut hdc_csr_hist = row_hist.clone();
    let mut prev: Option<(usize, usize)> = None;
    for_each_entry_row_major(m, |r, c, _| {
        if let Some((pr, pc)) = prev {
            if pr == r && c - pc <= 8 {
                local_hits += 1;
            }
        }
        prev = Some((r, c));
        if ntrue > 0 && shared.diag_pop[c + nrows - 1 - r] >= threshold {
            hdc_csr_hist[r] -= 1;
        }
    });
    let locality = if nnz == 0 { 1.0 } else { local_hits as f64 / nnz as f64 };

    let hdc_csr_mean_row = if nrows == 0 { 0.0 } else { hdc_csr_nnz as f64 / nrows as f64 };
    let hdc_csr_max_row = hdc_csr_hist.iter().copied().max().unwrap_or(0) as usize;

    let mut row_prefix = Vec::with_capacity(nrows + 1);
    row_prefix.push(0u64);
    let mut acc = 0u64;
    for &c in &row_hist {
        acc += c as u64;
        row_prefix.push(acc);
    }

    MatrixAnalysis {
        warp_iters_csr: warp_divergence_iters(&row_hist),
        warp_iters_hdc_csr: warp_divergence_iters(&hdc_csr_hist),
        stats: shared.stats.clone(),
        row_hist,
        locality,
        ell_width: shared.stats.row_nnz_max,
        hyb_width,
        hyb_coo_nnz,
        hdc_ntrue: ntrue,
        hdc_dia_nnz: dia_nnz,
        hdc_csr_nnz,
        hdc_csr_mean_row,
        hdc_csr_max_row,
        row_prefix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus::CooMatrix;

    fn tridiag(n: usize) -> DynamicMatrix<f64> {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..n {
            for d in [-1isize, 0, 1] {
                let j = i as isize + d;
                if j >= 0 && (j as usize) < n {
                    rows.push(i);
                    cols.push(j as usize);
                    vals.push(1.0);
                }
            }
        }
        DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
    }

    #[test]
    fn tridiagonal_analysis() {
        let a = analyze(&tridiag(100));
        assert_eq!(a.stats.ndiags, 3);
        assert_eq!(a.stats.ntrue_diags, 3);
        assert_eq!(a.ell_width, 3);
        assert_eq!(a.hdc_csr_nnz, 0);
        assert_eq!(a.hdc_dia_nnz, a.nnz());
        // Tridiagonal columns are adjacent -> high gather locality.
        assert!(a.locality > 0.6, "locality {}", a.locality);
        // No divergence: warp iterations equal 3 per warp except boundaries.
        assert_eq!(a.warp_iters_csr, (100usize.div_ceil(32) * 3) as u64);
        assert_eq!(a.warp_iters_hdc_csr, 0);
    }

    #[test]
    fn skewed_matrix_divergence() {
        // 64 rows: 63 singletons + one row of 1000 entries.
        let n = 64usize;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for r in 0..n - 1 {
            rows.push(r);
            cols.push((r * 7) % n);
        }
        // Dense-ish last row in a wider matrix space.
        let m = 1024usize;
        for c in 0..1000 {
            rows.push(n - 1);
            cols.push(c % m);
        }
        let vals = vec![1.0; rows.len()];
        let coo = CooMatrix::from_triplets(n, m, &rows, &cols, &vals).unwrap();
        let a = analyze(&DynamicMatrix::from(coo));
        // Warp 0: max 1; warp 1: contains the dense row -> max 1000.
        assert_eq!(a.warp_iters_csr, 1 + 1000);
        assert_eq!(a.ell_width, 1000);
        // HYB spills the dense row's surplus to COO.
        assert!(a.hyb_width <= 2);
        assert!(a.hyb_coo_nnz >= 998);
    }

    #[test]
    fn scattered_matrix_low_locality() {
        // Deterministic scatter with large strides between columns.
        let n = 500usize;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for r in 0..n {
            for k in 0..4usize {
                rows.push(r);
                cols.push((r * 131 + k * 97) % n);
            }
        }
        let vals = vec![1.0; rows.len()];
        let coo = CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap();
        let a = analyze(&DynamicMatrix::from(coo));
        assert!(a.locality < 0.3, "locality {}", a.locality);
        assert!(a.stats.ndiags > 100);
        assert_eq!(a.stats.ntrue_diags, 0);
    }

    #[test]
    fn empty_matrix_analysis() {
        let m = DynamicMatrix::from(CooMatrix::<f64>::new(10, 10));
        let a = analyze(&m);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.warp_iters_csr, 0);
        assert_eq!(a.ell_padded(), 0);
        assert_eq!(a.locality, 1.0);
    }

    #[test]
    fn hdc_split_partitions_nnz() {
        let a = analyze(&tridiag(64));
        assert_eq!(a.hdc_dia_nnz + a.hdc_csr_nnz, a.nnz());
    }

    #[test]
    fn analyze_from_is_format_invariant() {
        let base = tridiag(200);
        let reference = analyze(&base);
        let opts = morpheus::ConvertOptions::default();
        for fmt in morpheus::format::ALL_FORMATS {
            let m = base.to_format(fmt, &opts).unwrap();
            let shared = Analysis::of(&m, morpheus::hdc::DEFAULT_TRUE_DIAG_ALPHA);
            let a = analyze_from(&m, &shared);
            assert_eq!(a.stats, reference.stats, "{fmt}");
            assert_eq!(a.row_hist, reference.row_hist, "{fmt}");
            assert_eq!(a.locality, reference.locality, "{fmt}");
            assert_eq!(a.warp_iters_hdc_csr, reference.warp_iters_hdc_csr, "{fmt}");
            assert_eq!(a.hyb_width, reference.hyb_width, "{fmt}");
        }
    }

    #[test]
    fn analyze_from_adds_exactly_one_traversal() {
        let m = tridiag(300);
        let shared = Analysis::of(&m, morpheus::hdc::DEFAULT_TRUE_DIAG_ALPHA);
        passes::reset();
        let _ = analyze_from(&m, &shared);
        assert_eq!(passes::count(), 1, "only the locality/HDC walk may touch the matrix");
    }
}
