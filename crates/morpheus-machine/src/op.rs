//! The sparse operation a tuning decision targets.
//!
//! The paper tunes for SpMV, but notes its "techniques and algorithms ...
//! are transferable to other sparse operations" (§V). Threading the
//! operation through the engine's cost queries makes tuners
//! *operation-aware*: the optimal format for `y = A x` is not always the
//! optimal format for the blocked product `Y = A X` — padded formats
//! (DIA/ELL) redo their padding work on every right-hand side, while CSR's
//! gather penalty is paid once per non-zero and amortises across the block.

/// A tunable sparse operation.
///
/// The `Ord` derive (SpMV before SpMM, SpMM by `k`) exists so telemetry
/// keys containing an `Op` sort deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum Op {
    /// Sparse matrix × dense vector (`y = A x`).
    #[default]
    Spmv,
    /// Sparse matrix × dense matrix (`Y = A X` with `k` right-hand sides).
    Spmm {
        /// Number of right-hand-side columns (≥ 1).
        k: usize,
    },
}

impl Op {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Op::Spmv => "spmv",
            Op::Spmm { .. } => "spmm",
        }
    }

    /// Number of right-hand sides the operation processes per call.
    pub fn rhs_count(self) -> usize {
        match self {
            Op::Spmv => 1,
            Op::Spmm { k } => k.max(1),
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Spmv => write!(f, "spmv"),
            Op::Spmm { k } => write!(f, "spmm(k={k})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rhs_counts() {
        assert_eq!(Op::Spmv.rhs_count(), 1);
        assert_eq!(Op::Spmm { k: 8 }.rhs_count(), 8);
        assert_eq!(Op::Spmm { k: 0 }.rhs_count(), 1);
    }

    #[test]
    fn display_and_name() {
        assert_eq!(Op::Spmv.to_string(), "spmv");
        assert_eq!(Op::Spmm { k: 4 }.to_string(), "spmm(k=4)");
        assert_eq!(Op::Spmm { k: 4 }.name(), "spmm");
        assert_eq!(Op::default(), Op::Spmv);
    }
}
