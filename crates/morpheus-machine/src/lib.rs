//! Hardware performance simulator standing in for the paper's testbeds.
//!
//! The paper profiles SpMV on five HPC systems (Table II: ARCHER2, Cirrus,
//! Isambard A64FX / XCI / P3) across four backends (Serial, OpenMP, CUDA,
//! HIP). This reproduction has none of that hardware, so — per the
//! substitution rule in `DESIGN.md` — it models it: every (system, backend)
//! pair becomes a [`VirtualEngine`] that derives a per-format SpMV runtime
//! from the *actual structure* of the matrix:
//!
//! * memory traffic per format (values, indices, padding, gather/scatter);
//! * `x`-gather locality measured from the real column indices;
//! * OpenMP load imbalance computed from the real row-length distribution
//!   under the same partitioning policy the threaded kernels use;
//! * GPU warp divergence (`Σ_warp max(row nnz)` over 32-row groups),
//!   memory-coalescing waste, occupancy and kernel-launch overheads.
//!
//! The models are deliberately *structure-driven*: a scale-free matrix with
//! one dense row produces the same pathology the paper observed on
//! `mawi_201512020030` (uncoalesced CSR accesses, orders-of-magnitude
//! speedup from switching format), while a banded stencil makes DIA win on
//! wide-SIMD CPUs. Absolute times are modelled; *relative* format rankings
//! are what the experiments consume.
//!
//! # Example
//! ```
//! use morpheus::{CooMatrix, DynamicMatrix, FormatId};
//! use morpheus_machine::{analyze, systems, Backend, VirtualEngine};
//!
//! // A 1000x1000 tridiagonal system.
//! let n: usize = 1000;
//! let mut rows = Vec::new();
//! let mut cols = Vec::new();
//! let mut vals = Vec::new();
//! for i in 0..n {
//!     for j in [i.wrapping_sub(1), i, i + 1] {
//!         if j < n {
//!             rows.push(i);
//!             cols.push(j);
//!             vals.push(1.0f64);
//!         }
//!     }
//! }
//! let m = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());
//! let analysis = morpheus_machine::analyze(&m);
//!
//! let engine = VirtualEngine::new(systems::a64fx(), Backend::Serial);
//! let t_csr = engine.spmv_time(FormatId::Csr, &analysis);
//! let t_dia = engine.spmv_time(FormatId::Dia, &analysis);
//! // On a wide-SIMD, high-bandwidth CPU a banded matrix favours DIA.
//! assert!(t_dia < t_csr);
//! ```

pub mod analyze;
pub mod calib;
pub mod cpu;
pub mod engine;
pub mod gpu;
pub mod op;
pub mod spec;
pub mod systems;

pub use analyze::{analyze, analyze_from, analyze_with_alpha, MatrixAnalysis};
pub use calib::Calibration;
pub use engine::{ProfileResult, VirtualEngine};
pub use op::Op;
pub use spec::{Backend, CpuSpec, GpuSpec, GpuVendor, SystemBackend, SystemProfile};
