//! OpenMP-style loop scheduling policies.

/// Loop scheduling policy for [`crate::ThreadPool::parallel_for`].
///
/// Mirrors OpenMP's `schedule` clause; the hardware model in
/// `morpheus-machine` reproduces the same partitions analytically when
/// estimating load imbalance on the simulated systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous, nearly equal ranges, one per thread (`chunk = None`), or
    /// round-robin chunks of the given size.
    Static { chunk: Option<usize> },
    /// Threads grab chunks of `chunk` iterations from a shared counter.
    Dynamic { chunk: usize },
    /// Like `Dynamic` but the chunk size decays with the remaining work:
    /// `max(remaining / (2 * nthreads), min_chunk)`.
    Guided { min_chunk: usize },
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::Static { chunk: None }
    }
}

impl Schedule {
    /// Dynamic scheduling with a sensible default chunk.
    pub fn dynamic() -> Self {
        Schedule::Dynamic { chunk: 64 }
    }

    /// Guided scheduling with a sensible default minimum chunk.
    pub fn guided() -> Self {
        Schedule::Guided { min_chunk: 32 }
    }

    /// Human-readable name, used in benchmark reports.
    pub fn name(&self) -> &'static str {
        match self {
            Schedule::Static { .. } => "static",
            Schedule::Dynamic { .. } => "dynamic",
            Schedule::Guided { .. } => "guided",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_static() {
        assert_eq!(Schedule::default(), Schedule::Static { chunk: None });
    }

    #[test]
    fn names() {
        assert_eq!(Schedule::default().name(), "static");
        assert_eq!(Schedule::dynamic().name(), "dynamic");
        assert_eq!(Schedule::guided().name(), "guided");
    }
}
