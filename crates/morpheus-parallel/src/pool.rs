//! Persistent worker pool executing scoped parallel loops.
//!
//! Workers block on a channel of jobs. A job is a lifetime-erased reference
//! to the loop body plus a completion latch; `run_on_all` does not return
//! until every worker finished, which is what makes the lifetime erasure
//! sound (the borrowed closure strictly outlives all uses).
//!
//! # Reentrancy and concurrent clients
//!
//! The pool is safe to drive from any number of client threads at once:
//! each `run_on_all` call submits its own independent batch of jobs with
//! its own completion latch, workers drain the shared queue in FIFO order,
//! and a job carries its worker index explicitly, so interleaved batches
//! from different clients never confuse each other's partitioning. Two
//! hazards remain and are handled explicitly:
//!
//! * **Nested parallelism** (a job body itself calling into the pool) would
//!   deadlock a queue-based pool; detected via a thread-local flag, the
//!   nested region is run inline on the calling worker instead — OpenMP's
//!   default of serialising nested regions.
//! * **Saturation**: while one client's batch occupies the workers, another
//!   client's `run_on_all` queues behind it. Latency-sensitive callers
//!   (the Oracle serving layer) can consult [`ThreadPool::is_busy`] and
//!   fall back to an equivalent serial kernel instead of blocking; the
//!   check is advisory (a race may still queue two batches), which is safe
//!   — just slower than the fallback.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use crossbeam::sync::WaitGroup;
use parking_lot::{Mutex, RwLock};

use crate::schedule::Schedule;
use crate::static_partition;

thread_local! {
    /// Set while a worker runs a job; used to detect (and serialise) nested
    /// parallel regions instead of deadlocking.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

type JobFn<'a> = &'a (dyn Fn(usize) + Sync);

struct Job {
    /// Lifetime-erased `&(dyn Fn(worker_index) + Sync)`.
    func: JobFn<'static>,
    wg: WaitGroup,
    panicked: Arc<AtomicBool>,
    worker_index: usize,
    /// Submission timestamp, stamped only while a queue-wait observer is
    /// installed (an uninstrumented pool takes no clock reads).
    sent_at: Option<Instant>,
}

/// Observer of per-job channel wait (send → dequeue). The telemetry hook
/// behind [`ThreadPool::set_queue_wait_observer`].
pub type QueueWaitObserver = Arc<dyn Fn(Duration) + Send + Sync>;

/// Shared cell holding the installed observer. The `enabled` flag mirrors
/// the slot so the send path can skip the `Instant::now` call — and the
/// worker the read lock — with one relaxed load when no observer is set.
#[derive(Default)]
struct HookCell {
    enabled: AtomicBool,
    observer: RwLock<Option<QueueWaitObserver>>,
}

impl HookCell {
    fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn observe(&self, waited: Duration) {
        if self.enabled() {
            if let Some(f) = self.observer.read().as_ref() {
                f(waited);
            }
        }
    }
}

/// A fixed-size pool of persistent worker threads.
///
/// Dropping the pool shuts the workers down. Most callers should use
/// [`global_pool`] instead of owning a pool.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    n_threads: usize,
    /// Number of `run_on_all` batches currently submitted and not yet
    /// completed — the advisory busy signal behind [`ThreadPool::is_busy`].
    inflight: AtomicUsize,
    /// Jobs sent to the worker channel and not yet picked up — the advisory
    /// backlog gauge behind [`ThreadPool::queued_jobs`]. Shared with the
    /// workers, which decrement it on dequeue (the vendored channel exposes
    /// no length).
    queued: Arc<AtomicUsize>,
    /// Queue-wait observer cell, shared with the workers.
    queue_wait: Arc<HookCell>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("n_threads", &self.n_threads).finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `n_threads` workers (minimum 1).
    pub fn new(n_threads: usize) -> Self {
        let n_threads = n_threads.max(1);
        let (sender, receiver) = unbounded::<Job>();
        let queued = Arc::new(AtomicUsize::new(0));
        let queue_wait = Arc::new(HookCell::default());
        let mut handles = Vec::with_capacity(n_threads);
        for w in 0..n_threads {
            let rx = receiver.clone();
            let backlog = Arc::clone(&queued);
            let hook = Arc::clone(&queue_wait);
            let handle = std::thread::Builder::new()
                .name(format!("morpheus-worker-{w}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        backlog.fetch_sub(1, Ordering::Relaxed);
                        if let Some(sent) = job.sent_at {
                            hook.observe(sent.elapsed());
                        }
                        IN_WORKER.with(|f| f.set(true));
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            (job.func)(job.worker_index);
                        }));
                        IN_WORKER.with(|f| f.set(false));
                        if result.is_err() {
                            job.panicked.store(true, Ordering::SeqCst);
                        }
                        drop(job.wg);
                    }
                })
                .expect("failed to spawn morpheus worker thread");
            handles.push(handle);
        }
        ThreadPool {
            sender: Some(sender),
            handles,
            n_threads,
            inflight: AtomicUsize::new(0),
            queued,
            queue_wait,
        }
    }

    /// Installs (or with `None`, removes) the queue-wait observer: it is
    /// called by a worker with the channel-wait duration of every job
    /// dequeued while installed. With no observer the submit path takes no
    /// clock reads at all — this is how the serving layer's
    /// `pool.queue_wait_ns` histogram stays free when observability is off.
    pub fn set_queue_wait_observer(&self, observer: Option<QueueWaitObserver>) {
        let enabled = observer.is_some();
        *self.queue_wait.observer.write() = observer;
        // Published after the slot write so an enabled reader finds it set.
        self.queue_wait.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Number of worker threads in the pool.
    pub fn num_threads(&self) -> usize {
        self.n_threads
    }

    /// Number of `run_on_all` batches submitted by client threads and not
    /// yet completed (nested regions run inline and are not counted).
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Jobs submitted to the worker channel and not yet dequeued by a
    /// worker — an *advisory* backlog depth to pair with
    /// [`ThreadPool::inflight`]. `inflight` says how many client batches
    /// are outstanding; `queued_jobs` says how much of that work is still
    /// waiting for a worker (saturated pool) rather than executing. Like
    /// `is_busy`, the value is racy by nature and suitable only for
    /// admission/backpressure heuristics and telemetry, never correctness.
    pub fn queued_jobs(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// `true` while at least one client's batch is executing or queued — an
    /// *advisory* saturation signal. Callers holding serial fallbacks (the
    /// serving layer's registered-matrix path) check it to avoid queueing
    /// behind another client's work; a concurrent submission between the
    /// check and the call is possible and merely queues, never misbehaves.
    pub fn is_busy(&self) -> bool {
        self.inflight() > 0
    }

    /// Runs `f(worker_index)` once on every worker and waits for completion.
    ///
    /// If called from inside a worker (nested parallelism) the body is run
    /// inline on the calling thread for every index, which keeps semantics
    /// while avoiding deadlock — mirroring OpenMP's default of serialising
    /// nested regions.
    pub fn run_on_all(&self, f: &(dyn Fn(usize) + Sync)) {
        if IN_WORKER.with(|g| g.get()) || self.n_threads == 1 {
            for w in 0..self.n_threads {
                f(w);
            }
            return;
        }
        // SAFETY: we block on the wait group before returning, so the
        // borrowed closure outlives every use inside the workers.
        let f_static: JobFn<'static> = unsafe { std::mem::transmute::<JobFn<'_>, JobFn<'static>>(f) };
        self.inflight.fetch_add(1, Ordering::Relaxed);
        let wg = WaitGroup::new();
        let panicked = Arc::new(AtomicBool::new(false));
        let sender = self.sender.as_ref().expect("pool already shut down");
        let sent_at = self.queue_wait.enabled().then(Instant::now);
        for w in 0..self.n_threads {
            // Count before the send so a worker's decrement cannot land
            // first and underflow the gauge.
            self.queued.fetch_add(1, Ordering::Relaxed);
            sender
                .send(Job {
                    func: f_static,
                    wg: wg.clone(),
                    panicked: Arc::clone(&panicked),
                    worker_index: w,
                    sent_at,
                })
                .expect("worker channel closed");
        }
        wg.wait();
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        if panicked.load(Ordering::SeqCst) {
            panic!("a morpheus-parallel worker panicked");
        }
    }

    /// Runs `body(worker, item)` with stable item→worker ownership: worker
    /// `w` executes the items of `owners[w]` in order, every call with the
    /// same `owners` routing each item to the same worker. This is the
    /// affinity primitive partitioned (sharded) executions use so a
    /// shard's arrays stay hot in one core's cache across repeated calls
    /// (NUMA-friendly ownership). Ranges beyond the pool's worker count
    /// are drained by worker 0 after its own range; with one thread (or
    /// from inside a nested region) everything runs inline, preserving
    /// item order.
    pub fn run_owned(&self, owners: &[Range<usize>], body: &(dyn Fn(usize, usize) + Sync)) {
        let n = self.n_threads;
        self.run_on_all(&|w| {
            if let Some(r) = owners.get(w) {
                for i in r.clone() {
                    body(w, i);
                }
            }
            if w == 0 {
                for r in owners.iter().skip(n) {
                    for i in r.clone() {
                        body(0, i);
                    }
                }
            }
        });
    }

    /// OpenMP-style `parallel for` over `range`, calling `body(i)` exactly
    /// once per index.
    pub fn parallel_for(&self, range: Range<usize>, schedule: Schedule, body: impl Fn(usize) + Sync) {
        self.parallel_for_ranges(range, schedule, |r| {
            for i in r {
                body(i);
            }
        });
    }

    /// Chunk-wise `parallel for`: `body` receives each scheduled sub-range
    /// exactly once. This is the primitive SpMV kernels use so they can hoist
    /// per-chunk work out of the inner loop.
    pub fn parallel_for_ranges(
        &self,
        range: Range<usize>,
        schedule: Schedule,
        body: impl Fn(Range<usize>) + Sync,
    ) {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return;
        }
        let offset = range.start;
        let nt = self.n_threads;
        match schedule {
            Schedule::Static { chunk: None } => {
                let parts = static_partition(len, nt);
                self.run_on_all(&|w| {
                    if let Some(r) = parts.get(w) {
                        if !r.is_empty() {
                            body(offset + r.start..offset + r.end);
                        }
                    }
                });
            }
            Schedule::Static { chunk: Some(c) } => {
                let c = c.max(1);
                self.run_on_all(&|w| {
                    // Round-robin chunks: worker w takes chunks w, w+nt, ...
                    let mut start = w * c;
                    while start < len {
                        let end = (start + c).min(len);
                        body(offset + start..offset + end);
                        start += nt * c;
                    }
                });
            }
            Schedule::Dynamic { chunk } => {
                let c = chunk.max(1);
                let next = AtomicUsize::new(0);
                self.run_on_all(&|_w| loop {
                    let start = next.fetch_add(c, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + c).min(len);
                    body(offset + start..offset + end);
                });
            }
            Schedule::Guided { min_chunk } => {
                let mc = min_chunk.max(1);
                let next = AtomicUsize::new(0);
                self.run_on_all(&|_w| loop {
                    let start = next.load(Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let remaining = len - start;
                    let c = (remaining / (2 * nt)).max(mc);
                    let claimed = next.fetch_add(c, Ordering::Relaxed);
                    if claimed >= len {
                        break;
                    }
                    let end = (claimed + c).min(len);
                    body(offset + claimed..offset + end);
                });
            }
        }
    }

    /// Runs `body` over each of the given precomputed ranges, one task per
    /// range, distributed across workers. Used with
    /// [`crate::weighted_partition`] for nnz-balanced kernels.
    pub fn parallel_over_parts(&self, parts: &[Range<usize>], body: impl Fn(usize, Range<usize>) + Sync) {
        if parts.is_empty() {
            return;
        }
        let next = AtomicUsize::new(0);
        self.run_on_all(&|_w| loop {
            let p = next.fetch_add(1, Ordering::Relaxed);
            if p >= parts.len() {
                break;
            }
            body(p, parts[p].clone());
        });
    }

    /// Executes precomputed, disjoint ranges with **no scheduling state at
    /// all**: range `p` runs on worker `p % num_threads`, so there is no
    /// shared chunk counter and no atomics beyond the pool's own
    /// wake-up/latch pair. This is the executor for `ExecPlan` schedules —
    /// plans carry at most one range per worker, making a call one wake-up
    /// per worker with every partitioning decision already paid for at plan
    /// construction time.
    ///
    /// `body` receives `(part_index, range)`; part indices are stable
    /// across calls, so per-part state (e.g. a workspace slot) can be
    /// reused between iterations of a solver loop.
    pub fn parallel_for_plan(&self, parts: &[Range<usize>], body: impl Fn(usize, Range<usize>) + Sync) {
        if parts.is_empty() {
            return;
        }
        let nt = self.n_threads;
        self.run_on_all(&|w| {
            let mut p = w;
            while p < parts.len() {
                body(p, parts[p].clone());
                p += nt;
            }
        });
    }

    /// Chunk-wise map-reduce: `map` produces a partial result per scheduled
    /// chunk; partials are folded with `reduce` starting from `identity`.
    ///
    /// Reduction order is deterministic given a `Static` schedule (partials
    /// are folded in worker order), which keeps floating-point results
    /// reproducible run-to-run.
    pub fn parallel_reduce<T, M, R>(
        &self,
        range: Range<usize>,
        schedule: Schedule,
        identity: T,
        map: M,
        reduce: R,
    ) -> T
    where
        T: Clone + Send,
        M: Fn(Range<usize>) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
    {
        let slots: Vec<Mutex<Option<T>>> = (0..self.n_threads).map(|_| Mutex::new(None)).collect();
        let map = &map;
        let reduce = &reduce;
        self.parallel_for_worker_ranges(range, schedule, |w, r| {
            let value = map(r);
            let mut guard = slots[w].lock();
            *guard = Some(match guard.take() {
                Some(prev) => reduce(prev, value),
                None => value,
            });
        });
        let mut acc = identity;
        for slot in slots {
            if let Some(v) = slot.into_inner() {
                acc = reduce(acc, v);
            }
        }
        acc
    }

    /// Like [`Self::parallel_for_ranges`] but also passes the worker index,
    /// guaranteeing each worker processes at most one chunk per call site
    /// under `Static { chunk: None }` scheduling.
    pub fn parallel_for_worker_ranges(
        &self,
        range: Range<usize>,
        schedule: Schedule,
        body: impl Fn(usize, Range<usize>) + Sync,
    ) {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return;
        }
        let offset = range.start;
        match schedule {
            Schedule::Static { chunk: None } => {
                let parts = static_partition(len, self.n_threads);
                self.run_on_all(&|w| {
                    if let Some(r) = parts.get(w) {
                        if !r.is_empty() {
                            body(w, offset + r.start..offset + r.end);
                        }
                    }
                });
            }
            other => {
                // For dynamic-style schedules a worker may receive several
                // chunks; forward the worker index for each.
                let nt = self.n_threads;
                let next = AtomicUsize::new(0);
                let chunk_of = |start: usize| -> usize {
                    match other {
                        Schedule::Static { chunk: Some(c) } | Schedule::Dynamic { chunk: c } => c.max(1),
                        Schedule::Guided { min_chunk } => ((len - start) / (2 * nt)).max(min_chunk.max(1)),
                        Schedule::Static { chunk: None } => unreachable!(),
                    }
                };
                self.run_on_all(&|w| loop {
                    let probe = next.load(Ordering::Relaxed);
                    if probe >= len {
                        break;
                    }
                    let c = chunk_of(probe);
                    let start = next.fetch_add(c, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + c).min(len);
                    body(w, offset + start..offset + end);
                });
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The process-wide default pool, sized to the number of available cores.
pub fn global_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        ThreadPool::new(n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn schedules() -> Vec<Schedule> {
        vec![
            Schedule::Static { chunk: None },
            Schedule::Static { chunk: Some(7) },
            Schedule::Dynamic { chunk: 13 },
            Schedule::Guided { min_chunk: 5 },
        ]
    }

    #[test]
    fn run_owned_visits_each_item_once_with_stable_owner() {
        let pool = ThreadPool::new(3);
        let owners = vec![0..2, 2..5, 5..9, 9..11];
        let seen: Vec<AtomicUsize> = (0..11).map(|_| AtomicUsize::new(usize::MAX)).collect();
        for _ in 0..4 {
            let run: Vec<AtomicUsize> = (0..11).map(|_| AtomicUsize::new(0)).collect();
            pool.run_owned(&owners, &|w, i| {
                run[i].fetch_add(1, Ordering::Relaxed);
                // Ownership must be stable across calls; ranges past the
                // worker count fall to worker 0.
                let prev = seen[i].swap(w, Ordering::Relaxed);
                assert!(prev == usize::MAX || prev == w, "item {i} moved workers");
            });
            for (i, v) in run.iter().enumerate() {
                assert_eq!(v.load(Ordering::Relaxed), 1, "item {i}");
            }
        }
        for (i, s) in seen.iter().enumerate().take(11).skip(9) {
            assert_eq!(s.load(Ordering::Relaxed), 0, "overflow range item {i} runs on worker 0");
        }
    }

    #[test]
    fn every_index_visited_exactly_once() {
        let pool = ThreadPool::new(4);
        for sched in schedules() {
            let n = 1003;
            let visits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for(0..n, sched, |i| {
                visits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, v) in visits.iter().enumerate() {
                assert_eq!(v.load(Ordering::Relaxed), 1, "index {i} under {sched:?}");
            }
        }
    }

    #[test]
    fn offset_ranges_respected() {
        let pool = ThreadPool::new(3);
        for sched in schedules() {
            let seen = Mutex::new(Vec::new());
            pool.parallel_for(100..150, sched, |i| {
                seen.lock().push(i);
            });
            let mut v = seen.into_inner();
            v.sort_unstable();
            assert_eq!(v, (100..150).collect::<Vec<_>>(), "{sched:?}");
        }
    }

    #[test]
    fn empty_range_is_noop() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        pool.parallel_for(5..5, Schedule::default(), |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let sum = AtomicU64::new(0);
        pool.parallel_for(0..100, Schedule::dynamic(), |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn reduce_matches_serial() {
        let pool = ThreadPool::new(4);
        let data: Vec<f64> = (0..10_000).map(|i| i as f64 * 0.5).collect();
        let expect: f64 = data.iter().sum();
        let got = pool.parallel_reduce(
            0..data.len(),
            Schedule::default(),
            0.0f64,
            |r| r.map(|i| data[i]).sum::<f64>(),
            |a, b| a + b,
        );
        assert!((got - expect).abs() < 1e-6 * expect.abs());
    }

    #[test]
    fn reduce_empty_range_returns_identity() {
        let pool = ThreadPool::new(4);
        let got = pool.parallel_reduce(0..0, Schedule::default(), 42.0, |_| 7.0, |a, b| a + b);
        assert_eq!(got, 42.0);
    }

    #[test]
    fn nested_parallel_for_serialises() {
        let pool = ThreadPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.parallel_for(0..2, Schedule::default(), |_| {
            // Nested call must not deadlock.
            pool.parallel_for(0..10, Schedule::default(), |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 20);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(2);
        pool.parallel_for(0..4, Schedule::default(), |i| {
            if i == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn pool_survives_job_panic() {
        let pool = ThreadPool::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(0..4, Schedule::default(), |_| panic!("x"));
        }));
        assert!(r.is_err());
        // Pool still usable afterwards.
        let hits = AtomicUsize::new(0);
        pool.parallel_for(0..8, Schedule::default(), |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn parallel_over_parts_visits_each_part_once() {
        let pool = ThreadPool::new(4);
        let parts = vec![0..3, 3..10, 10..11, 11..20];
        let counts: Vec<AtomicUsize> = (0..20).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_over_parts(&parts, |_p, r| {
            for i in r {
                counts[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_plan_visits_each_part_once_with_stable_indices() {
        let pool = ThreadPool::new(3);
        let parts = vec![0..4, 4..4, 4..9, 9..10, 10..17];
        let counts: Vec<AtomicUsize> = (0..17).map(|_| AtomicUsize::new(0)).collect();
        let part_seen: Vec<AtomicUsize> = (0..parts.len()).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_plan(&parts, |p, r| {
            part_seen[p].fetch_add(1, Ordering::Relaxed);
            assert_eq!(r, parts[p], "part index must identify its range");
            for i in r {
                counts[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert!(part_seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_plan_handles_more_parts_than_workers_and_empty_plans() {
        let pool = ThreadPool::new(2);
        let parts: Vec<Range<usize>> = (0..11).map(|i| i * 3..(i + 1) * 3).collect();
        let sum = AtomicU64::new(0);
        pool.parallel_for_plan(&parts, |_p, r| {
            for i in r {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..33).sum::<usize>() as u64);
        pool.parallel_for_plan(&[], |_, _| panic!("empty plan must not run"));
    }

    #[test]
    fn concurrent_clients_share_one_pool_without_interference() {
        // N external client threads drive the same pool at once; every
        // client's parallel-for must visit exactly its own indices exactly
        // once, whatever interleaving the shared job queue produces.
        let pool = ThreadPool::new(3);
        let clients = 6usize;
        let n = 400usize;
        let counts: Vec<Vec<AtomicUsize>> =
            (0..clients).map(|_| (0..n).map(|_| AtomicUsize::new(0)).collect()).collect();
        std::thread::scope(|s| {
            for (c, mine) in counts.iter().enumerate() {
                let pool = &pool;
                s.spawn(move || {
                    for sched in [Schedule::Static { chunk: None }, Schedule::Dynamic { chunk: 7 }] {
                        pool.parallel_for(0..n, sched, |i| {
                            mine[i].fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    // Reductions from concurrent clients stay correct too.
                    let sum = pool.parallel_reduce(
                        0..n,
                        Schedule::default(),
                        0usize,
                        |r| r.sum::<usize>(),
                        |a, b| a + b,
                    );
                    assert_eq!(sum, n * (n - 1) / 2, "client {c}");
                });
            }
        });
        for (c, mine) in counts.iter().enumerate() {
            for (i, v) in mine.iter().enumerate() {
                assert_eq!(v.load(Ordering::Relaxed), 2, "client {c} index {i}");
            }
        }
        assert_eq!(pool.inflight(), 0, "all batches must be retired");
    }

    #[test]
    fn busy_signal_tracks_inflight_batches() {
        let pool = ThreadPool::new(2);
        assert!(!pool.is_busy());
        let observed_busy = AtomicBool::new(false);
        let gate = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            let (pool, gate, observed) = (&pool, &gate, &observed_busy);
            s.spawn(move || {
                pool.run_on_all(&|w| {
                    if w == 0 {
                        gate.wait(); // hold the batch open until observed
                    }
                });
            });
            // Wait until the batch is visibly in flight, then release it.
            while !pool.is_busy() {
                std::thread::yield_now();
            }
            observed.store(true, Ordering::SeqCst);
            gate.wait();
        });
        assert!(observed_busy.load(Ordering::SeqCst));
        assert!(!pool.is_busy(), "signal must clear once the batch completes");
    }

    #[test]
    fn queued_jobs_gauge_tracks_channel_backlog() {
        let pool = ThreadPool::new(2);
        assert_eq!(pool.queued_jobs(), 0);
        // Occupy both workers, then submit a second batch from another
        // thread: its two jobs must sit in the channel (visible via the
        // gauge) until the first batch releases the workers.
        let gate = std::sync::Barrier::new(3);
        std::thread::scope(|s| {
            let (pool, gate) = (&pool, &gate);
            s.spawn(move || {
                pool.run_on_all(&|_| {
                    gate.wait();
                });
            });
            // Wait until both workers are parked inside the first batch
            // (the gauge drains to 0 as they dequeue their jobs).
            while pool.inflight() == 0 || pool.queued_jobs() > 0 {
                std::thread::yield_now();
            }
            s.spawn(move || {
                pool.run_on_all(&|_| {});
            });
            while pool.queued_jobs() < 2 {
                std::thread::yield_now();
            }
            assert_eq!(pool.queued_jobs(), 2, "second batch must be backlogged");
            gate.wait(); // release the first batch; everything drains
        });
        assert_eq!(pool.queued_jobs(), 0, "gauge must drain with the backlog");
        assert!(!pool.is_busy());
    }

    #[test]
    fn queue_wait_observer_sees_every_dispatched_job() {
        let pool = ThreadPool::new(3);
        let observed = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&observed);
        pool.set_queue_wait_observer(Some(Arc::new(move |_d| {
            counter.fetch_add(1, Ordering::Relaxed);
        })));
        pool.run_on_all(&|_| {});
        pool.run_on_all(&|_| {});
        assert_eq!(observed.load(Ordering::Relaxed), 6, "one observation per job");
        // Uninstall: further batches are invisible and take no clock reads.
        pool.set_queue_wait_observer(None);
        pool.run_on_all(&|_| {});
        assert_eq!(observed.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn queue_wait_observer_skips_inline_paths() {
        let pool = ThreadPool::new(1);
        let observed = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&observed);
        pool.set_queue_wait_observer(Some(Arc::new(move |_d| {
            counter.fetch_add(1, Ordering::Relaxed);
        })));
        // Single-thread pools run inline — nothing crosses the channel.
        pool.run_on_all(&|_| {});
        assert_eq!(observed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn global_pool_is_singleton() {
        let a = global_pool() as *const _;
        let b = global_pool() as *const _;
        assert_eq!(a, b);
        assert!(global_pool().num_threads() >= 1);
    }
}
