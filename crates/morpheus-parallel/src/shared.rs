//! Disjoint-write shared output buffers for scoped parallel loops.
//!
//! Parallel kernels in this workspace (SpMV, format conversion) partition
//! their output by row, so every element has exactly one writer and no
//! atomics are needed. [`SharedSlice`] captures that contract once: a
//! lifetime-erased `*mut T` view of a slice that workers may write through,
//! *provided* the index sets they touch are disjoint.

/// A mutable slice shareable across pool workers.
///
/// # Soundness contract
/// Concurrent callers must write **disjoint** index sets (e.g. each worker
/// owns a distinct row range). The constructor borrows the slice mutably, so
/// the underlying buffer cannot be observed through another path while the
/// view is alive; [`ThreadPool::run_on_all`](crate::ThreadPool::run_on_all)
/// blocks until all workers finish, which keeps the erased lifetime honest.
pub struct SharedSlice<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Send for SharedSlice<T> {}
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T: Copy> SharedSlice<T> {
    /// Wraps a slice for disjoint parallel writes.
    pub fn new(data: &mut [T]) -> Self {
        SharedSlice { ptr: data.as_mut_ptr(), len: data.len() }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `i`.
    ///
    /// Bounds are checked unconditionally (an out-of-range index panics,
    /// even in release builds): callers derive indices from data that may
    /// be caller-supplied, and the cost of one predictable branch is noise
    /// next to the store itself.
    ///
    /// # Safety
    /// No other thread accesses index `i` for the duration of the parallel
    /// region.
    #[inline(always)]
    pub unsafe fn set(&self, i: usize, value: T) {
        assert!(i < self.len, "SharedSlice write at {i} out of bounds (len {})", self.len);
        *self.ptr.add(i) = value;
    }

    /// Reads the value at `i` (bounds-checked).
    ///
    /// # Safety
    /// No other thread writes index `i` concurrently.
    #[inline(always)]
    pub unsafe fn get(&self, i: usize) -> T {
        assert!(i < self.len, "SharedSlice read at {i} out of bounds (len {})", self.len);
        *self.ptr.add(i)
    }

    /// Mutable view of `start..start + len` (bounds-checked).
    ///
    /// Lets row-blocked kernels (SpMM writes `k` contiguous outputs per
    /// row) use ordinary slice iteration — which the compiler vectorises —
    /// instead of `k` indexed [`SharedSlice::add`] calls.
    ///
    /// # Safety
    /// No other thread accesses any index in `start..start + len` for the
    /// duration of the parallel region, and the caller must not obtain
    /// overlapping views from the same thread.
    #[inline(always)]
    #[allow(clippy::mut_from_ref)] // the whole point of the disjoint-write view
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= self.len),
            "SharedSlice view {start}..{start}+{len} out of bounds (len {})",
            self.len
        );
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }

    /// Adds `value` to the element at `i` (bounds-checked read-modify-write).
    ///
    /// # Safety
    /// Same as [`SharedSlice::set`]: the index must be owned exclusively by
    /// the calling worker within the parallel region.
    #[inline(always)]
    pub unsafe fn add(&self, i: usize, value: T)
    where
        T: std::ops::AddAssign,
    {
        assert!(i < self.len, "SharedSlice write at {i} out of bounds (len {})", self.len);
        *self.ptr.add(i) += value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{static_partition, Schedule, ThreadPool};

    #[test]
    fn disjoint_parallel_writes_land() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 1000];
        let out = SharedSlice::new(&mut data);
        pool.parallel_for(0..1000, Schedule::default(), |i| {
            // SAFETY: each index is scheduled exactly once.
            unsafe { out.set(i, i * 2) };
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn range_ownership_accumulates() {
        let pool = ThreadPool::new(3);
        let mut data = vec![1u64; 64];
        let out = SharedSlice::new(&mut data);
        let parts = static_partition(64, 3);
        pool.parallel_over_parts(&parts, |_p, r| {
            for i in r {
                // SAFETY: parts are disjoint ranges.
                unsafe { out.add(i, i as u64) };
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == 1 + i as u64));
    }
}
