//! OpenMP-analog parallel runtime used by the Morpheus threaded backend.
//!
//! The paper's "OpenMP" backend maps onto this crate: a persistent pool of
//! worker threads executing *parallel-for* loops with OpenMP-style
//! scheduling policies ([`Schedule::Static`], [`Schedule::Dynamic`],
//! [`Schedule::Guided`]) plus chunk-wise reductions.
//!
//! The pool is deliberately small and predictable rather than work-stealing:
//! SpMV kernels are bandwidth-bound loops whose performance depends on the
//! partitioning policy, which the hardware model in `morpheus-machine`
//! mirrors analytically.
//!
//! The pool is safe to drive from any number of client threads at once
//! (the Oracle serving layer does exactly that): batches from different
//! clients interleave through one FIFO job queue without interference,
//! nested parallel regions serialise inline instead of deadlocking, and
//! [`ThreadPool::is_busy`] exposes an advisory saturation signal so
//! latency-sensitive callers can fall back to serial kernels rather than
//! queue behind another client's batch — see the reentrancy notes on
//! [`ThreadPool`]'s module.
//!
//! # Example
//! ```
//! use morpheus_parallel::{ThreadPool, Schedule};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let pool = ThreadPool::new(4);
//! let sum = AtomicUsize::new(0);
//! pool.parallel_for(0..1000, Schedule::default(), |i| {
//!     sum.fetch_add(i, Ordering::Relaxed);
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
//! ```

mod pool;
mod schedule;
mod shared;

pub use pool::{global_pool, QueueWaitObserver, ThreadPool};
pub use schedule::Schedule;
pub use shared::SharedSlice;

/// Splits `0..len` into at most `parts` contiguous, nearly-equal ranges.
///
/// The first `len % parts` ranges are one element longer, matching the
/// partition OpenMP uses for `schedule(static)` without a chunk size. Used
/// both by the runtime itself and by the machine model when it estimates
/// load imbalance from the real row distribution.
pub fn static_partition(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if parts == 0 || len == 0 {
        return Vec::new();
    }
    let parts = parts.min(len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let sz = base + usize::from(p < extra);
        out.push(start..start + sz);
        start += sz;
    }
    debug_assert_eq!(start, len);
    out
}

/// Splits `0..len` into contiguous ranges whose *weights* (e.g. non-zeros
/// per row) are as balanced as possible, one range per part.
///
/// This is the partition used by the nnz-balanced CSR SpMV kernel. `weights`
/// must have length `len`. Greedy prefix splitting at the ideal weight
/// boundaries; every element lands in exactly one range.
pub fn weighted_partition(weights: &[usize], parts: usize) -> Vec<std::ops::Range<usize>> {
    weighted_partition_with(weights.len(), parts, |i| weights[i])
}

/// [`weighted_partition`] reading weights through a function instead of a
/// materialised slice.
///
/// Callers that can answer "weight of element `i`" in O(1) — a CSR matrix
/// differencing its `row_offsets`, an `Analysis` reading its row histogram —
/// avoid allocating and filling a `len`-sized weights vector just to
/// partition. The weight function is called twice per element (once for the
/// total, once while splitting); results are identical to
/// [`weighted_partition`] on the materialised weights.
pub fn weighted_partition_with(
    len: usize,
    parts: usize,
    weight: impl Fn(usize) -> usize,
) -> Vec<std::ops::Range<usize>> {
    if parts == 0 || len == 0 {
        return Vec::new();
    }
    let parts = parts.min(len);
    let total: usize = (0..len).map(&weight).sum();
    if total == 0 {
        return static_partition(len, parts);
    }
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0usize;
    let mut consumed = 0usize;
    for p in 0..parts {
        if start >= len {
            break;
        }
        // Target cumulative weight at the end of this part.
        let target = (total - consumed).div_ceil(parts - p) + consumed;
        let mut end = start;
        while end < len && (acc < target || end == start) {
            // Leave at least one element per remaining part.
            if len - end < parts - p {
                break;
            }
            acc += weight(end);
            end += 1;
        }
        if end == start {
            end = start + 1;
            acc += weight(start);
        }
        consumed = acc;
        out.push(start..end);
        start = end;
    }
    if start < len {
        match out.last_mut() {
            Some(last) => last.end = len,
            None => out.push(0..len),
        }
    }
    out
}

/// Splits the index space of a *sorted* row array (e.g. COO row indices)
/// into at most `parts` contiguous chunks whose boundaries never split a
/// row: every index `i` with `rows[i] == rows[i - 1]` stays in the same
/// chunk as `i - 1`.
///
/// This is the partition the threaded COO SpMV kernel and the parallel
/// analysis pass use so that per-row outputs have exactly one writer.
/// Starting from [`static_partition`], each boundary is pushed forward to
/// the next row change; because the static partition tiles `0..rows.len()`
/// exactly and boundaries only ever move forward, the aligned chunks tile
/// it too.
pub fn row_aligned_partition(rows: &[usize], parts: usize) -> Vec<std::ops::Range<usize>> {
    let nnz = rows.len();
    let mut chunks: Vec<std::ops::Range<usize>> = Vec::new();
    let mut start = 0usize;
    for r in &static_partition(nnz, parts) {
        // `r.end >= 1` (static partitions are never empty), so `end - 1` is
        // safe. Push the boundary forward until the row changes.
        let mut end = r.end;
        while end < nnz && rows[end] == rows[end - 1] {
            end += 1;
        }
        if end > start {
            chunks.push(start..end);
        }
        start = end;
        if start >= nnz {
            break;
        }
    }
    debug_assert!(
        nnz == 0 || chunks.last().is_some_and(|c| c.end == nnz),
        "static_partition tiles 0..nnz, so the aligned chunks must end at nnz"
    );
    chunks
}

#[cfg(test)]
mod partition_tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn static_partition_covers_all() {
        for len in [0usize, 1, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 64] {
                let ranges = static_partition(len, parts);
                let mut covered = 0;
                let mut prev_end = 0;
                for r in &ranges {
                    assert_eq!(r.start, prev_end);
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, len);
                if len > 0 {
                    assert_eq!(ranges.last().unwrap().end, len);
                }
            }
        }
    }

    #[test]
    fn static_partition_balanced() {
        let ranges = static_partition(10, 3);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn static_partition_more_parts_than_items() {
        let ranges = static_partition(3, 10);
        assert_eq!(ranges.len(), 3);
        assert!(ranges.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn weighted_partition_covers_all() {
        let weights = vec![1usize, 100, 1, 1, 1, 1, 100, 1];
        for parts in 1..=8 {
            let ranges = weighted_partition(&weights, parts);
            let mut prev_end = 0;
            for r in &ranges {
                assert_eq!(r.start, prev_end);
                prev_end = r.end;
            }
            assert_eq!(prev_end, weights.len());
        }
    }

    #[test]
    fn weighted_partition_balances_skew() {
        // One heavy row: with 2 parts the heavy row should sit alone-ish.
        let mut weights = vec![1usize; 100];
        weights[0] = 1000;
        let ranges = weighted_partition(&weights, 2);
        assert_eq!(ranges.len(), 2);
        let w0: usize = ranges[0].clone().map(|i| weights[i]).sum();
        let w1: usize = ranges[1].clone().map(|i| weights[i]).sum();
        // Heavy part should not also swallow most light rows.
        assert!(w0 >= w1);
        assert!(ranges[0].len() < 20, "heavy part took {} rows", ranges[0].len());
    }

    #[test]
    fn weighted_partition_zero_weights() {
        let weights = vec![0usize; 10];
        let ranges = weighted_partition(&weights, 4);
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 10);
    }

    #[test]
    fn weighted_partition_with_matches_slice_variant() {
        let weights = vec![3usize, 0, 0, 17, 1, 1, 1, 9, 2, 0, 4];
        for parts in 1..=12 {
            assert_eq!(
                weighted_partition_with(weights.len(), parts, |i| weights[i]),
                weighted_partition(&weights, parts),
                "parts={parts}"
            );
        }
    }

    #[test]
    fn weighted_partition_empty() {
        assert!(weighted_partition(&[], 4).is_empty());
        assert!(weighted_partition(&[1, 2, 3], 0).is_empty());
    }

    #[test]
    fn row_aligned_partition_single_giant_row() {
        let rows = vec![5usize; 100];
        let chunks = row_aligned_partition(&rows, 8);
        assert_eq!(chunks, vec![0..100]);
    }

    #[test]
    fn row_aligned_partition_empty() {
        assert!(row_aligned_partition(&[], 4).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// Aligned chunks always tile `0..nnz` exactly, never split a row,
        /// and never exceed the requested part count.
        #[test]
        fn row_aligned_partition_tiles_without_splitting_rows(
            run_lengths in proptest::collection::vec(1usize..9, 0..40),
            parts in 1usize..12,
        ) {
            // Build a sorted row array from per-row run lengths (some rows
            // empty is fine: absent rows simply do not appear).
            let mut rows = Vec::new();
            for (row, len) in run_lengths.iter().enumerate() {
                rows.extend(std::iter::repeat_n(row, *len));
            }
            let chunks = row_aligned_partition(&rows, parts);
            prop_assert!(chunks.len() <= parts);
            let mut prev_end = 0usize;
            for c in &chunks {
                prop_assert_eq!(c.start, prev_end);
                prop_assert!(c.end > c.start);
                if c.start > 0 {
                    prop_assert!(
                        rows[c.start] != rows[c.start - 1],
                        "chunk boundary at {} splits row {}", c.start, rows[c.start]
                    );
                }
                prev_end = c.end;
            }
            prop_assert_eq!(prev_end, rows.len());
        }
    }
}
