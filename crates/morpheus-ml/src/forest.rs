//! Random-forest classifier.
//!
//! "An ensemble of decision trees ... that effectively fits a number of
//! decision tree classifiers onto different sub-samples of the dataset"
//! (§V). Trees are fitted in parallel (they are independent); prediction
//! uses the majority-voting scheme of §VI-A, with ties broken toward the
//! lower format ID.

use crate::dataset::Dataset;
use crate::tree::{Criterion, DecisionTree, TreeParams};
use crate::{MlError, Result};
use rand::Rng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Hyperparameters of a [`RandomForest`] — the exact knobs of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestParams {
    /// Number of trees ("Estimators").
    pub n_estimators: usize,
    /// Bootstrap sampling of the training set ("Bootstrap").
    pub bootstrap: bool,
    /// Maximum tree depth ("Max Depth").
    pub max_depth: Option<usize>,
    /// Minimum samples per leaf ("Min Samples Leaf").
    pub min_samples_leaf: usize,
    /// Minimum samples to split ("Min Samples Split").
    pub min_samples_split: usize,
    /// Features considered per split ("Max Features"); `None` = √n_features.
    pub max_features: Option<usize>,
    /// Split criterion ("Criterion").
    pub criterion: Criterion,
    /// Balanced bootstrap: each tree's sample draws equally from every
    /// class, implementing the paper's future-work idea of "balancing the
    /// dataset" (§IX) against the CSR-heavy label imbalance of §VII-B.
    /// Requires `bootstrap = true` to have an effect.
    pub balanced_bootstrap: bool,
    /// Master seed; per-tree seeds derive from it.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_estimators: 100,
            bootstrap: true,
            max_depth: None,
            min_samples_leaf: 1,
            min_samples_split: 2,
            max_features: None,
            criterion: Criterion::Gini,
            balanced_bootstrap: false,
            seed: 0,
        }
    }
}

/// Draws `n` indices with replacement, stratified so every class present in
/// the dataset contributes (nearly) equally — oversampling the rare formats
/// and undersampling CSR.
fn balanced_sample(ds: &Dataset, n: usize, rng: &mut rand::rngs::StdRng) -> Vec<usize> {
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); ds.n_classes()];
    for (i, &t) in ds.targets().iter().enumerate() {
        by_class[t].push(i);
    }
    let present: Vec<&Vec<usize>> = by_class.iter().filter(|v| !v.is_empty()).collect();
    let per_class = (n / present.len().max(1)).max(1);
    let mut idx = Vec::with_capacity(per_class * present.len());
    for members in present {
        for _ in 0..per_class {
            idx.push(members[rng.gen_range(0..members.len())]);
        }
    }
    idx
}

/// A fitted random forest.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    pub(crate) trees: Vec<DecisionTree>,
    pub(crate) n_features: usize,
    pub(crate) n_classes: usize,
    params: ForestParams,
}

impl RandomForest {
    /// Fits the forest; trees build concurrently but the result is
    /// deterministic (per-tree seeds depend only on `params.seed` and the
    /// tree index).
    pub fn fit(ds: &Dataset, params: &ForestParams) -> Result<Self> {
        if ds.is_empty() {
            return Err(MlError::InvalidData("cannot fit on an empty dataset".into()));
        }
        if params.n_estimators == 0 {
            return Err(MlError::InvalidData("n_estimators must be positive".into()));
        }
        let default_mf = (ds.n_features() as f64).sqrt().round() as usize;
        let max_features = params.max_features.unwrap_or(default_mf.max(1));

        let n_trees = params.n_estimators;
        let slots: Vec<Mutex<Option<Result<DecisionTree>>>> =
            (0..n_trees).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(n_trees);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= n_trees {
                        break;
                    }
                    let tree_seed = params.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(t as u64);
                    let tree_params = TreeParams {
                        criterion: params.criterion,
                        max_depth: params.max_depth,
                        min_samples_split: params.min_samples_split,
                        min_samples_leaf: params.min_samples_leaf,
                        max_features: Some(max_features),
                        seed: tree_seed ^ 0xABCD,
                    };
                    let result = if params.bootstrap {
                        let mut rng = rand::rngs::StdRng::seed_from_u64(tree_seed);
                        let idx: Vec<usize> = if params.balanced_bootstrap {
                            balanced_sample(ds, ds.len(), &mut rng)
                        } else {
                            (0..ds.len()).map(|_| rng.gen_range(0..ds.len())).collect()
                        };
                        DecisionTree::fit(&ds.subset(&idx), &tree_params)
                    } else {
                        DecisionTree::fit(ds, &tree_params)
                    };
                    *slots[t].lock().expect("slot lock") = Some(result);
                });
            }
        });
        let mut trees = Vec::with_capacity(n_trees);
        for slot in slots {
            trees.push(slot.into_inner().expect("slot lock").expect("worker filled slot")?);
        }
        Ok(RandomForest {
            trees,
            n_features: ds.n_features(),
            n_classes: ds.n_classes(),
            params: params.clone(),
        })
    }

    /// Majority-vote prediction (§VI-A): each tree casts one vote; ties go
    /// to the lower class ID.
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        for tree in &self.trees {
            votes[tree.predict(x)] += 1;
        }
        let mut best = 0usize;
        for (c, &v) in votes.iter().enumerate() {
            if v > votes[best] {
                best = c;
            }
        }
        best
    }

    /// Per-class vote fractions.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut votes = vec![0.0f64; self.n_classes];
        for tree in &self.trees {
            votes[tree.predict(x)] += 1.0;
        }
        let total = self.trees.len() as f64;
        votes.iter_mut().for_each(|v| *v /= total);
        votes
    }

    /// Predictions for every row of a dataset.
    pub fn predict_dataset(&self, ds: &Dataset) -> Vec<usize> {
        (0..ds.len()).map(|i| self.predict(ds.row(i))).collect()
    }

    /// Total nodes visited across all trees for one prediction — the cost
    /// input of Table IV ("the runtime of the prediction process
    /// proportional to the number of trees used", §VI-A).
    pub fn decision_path_len(&self, x: &[f64]) -> usize {
        self.trees.iter().map(|t| t.decision_path_len(x)).sum()
    }

    /// The fitted trees.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Mean of the trees' feature importances.
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for tree in &self.trees {
            for (slot, v) in imp.iter_mut().zip(tree.feature_importances()) {
                *slot += v;
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            imp.iter_mut().for_each(|v| *v /= total);
        }
        imp
    }

    /// Total node count across trees.
    pub fn n_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.n_nodes()).sum()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of features expected.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The hyperparameters used to fit this forest.
    pub fn params(&self) -> &ForestParams {
        &self.params
    }

    pub(crate) fn from_parts(
        trees: Vec<DecisionTree>,
        n_features: usize,
        n_classes: usize,
        params: ForestParams,
    ) -> Self {
        RandomForest { trees, n_features, n_classes, params }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noisy two-cluster data where single trees overfit the stragglers.
    fn noisy(n: usize) -> Dataset {
        let mut ds = Dataset::empty(3, 2, vec![]).unwrap();
        let mut state = 99u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for i in 0..n {
            let t = i % 2;
            let base = if t == 0 { 0.0 } else { 2.0 };
            ds.push(&[base + rnd(), base + rnd(), rnd() * 4.0], t).unwrap();
        }
        ds
    }

    #[test]
    fn forest_fits_and_predicts() {
        let ds = noisy(300);
        let forest =
            RandomForest::fit(&ds, &ForestParams { n_estimators: 20, ..Default::default() }).unwrap();
        assert_eq!(forest.trees().len(), 20);
        let preds = forest.predict_dataset(&ds);
        let acc = preds.iter().zip(ds.targets()).filter(|(p, t)| p == t).count() as f64 / 300.0;
        assert!(acc > 0.9, "train accuracy {acc}");
    }

    #[test]
    fn deterministic_across_fits() {
        let ds = noisy(150);
        let p = ForestParams { n_estimators: 12, seed: 5, ..Default::default() };
        let f1 = RandomForest::fit(&ds, &p).unwrap();
        let f2 = RandomForest::fit(&ds, &p).unwrap();
        assert_eq!(f1, f2, "parallel fitting must stay deterministic");
    }

    #[test]
    fn different_seeds_differ() {
        let ds = noisy(150);
        let f1 =
            RandomForest::fit(&ds, &ForestParams { n_estimators: 8, seed: 1, ..Default::default() }).unwrap();
        let f2 =
            RandomForest::fit(&ds, &ForestParams { n_estimators: 8, seed: 2, ..Default::default() }).unwrap();
        assert_ne!(f1, f2);
    }

    #[test]
    fn no_bootstrap_uses_full_data() {
        let ds = noisy(100);
        let p = ForestParams {
            n_estimators: 5,
            bootstrap: false,
            max_features: Some(3),
            seed: 3,
            ..Default::default()
        };
        let forest = RandomForest::fit(&ds, &p).unwrap();
        // With identical data and all features, trees may still differ via
        // feature-shuffle order on ties, but predictions should be strong.
        let preds = forest.predict_dataset(&ds);
        let acc = preds.iter().zip(ds.targets()).filter(|(p, t)| p == t).count() as f64 / 100.0;
        assert!(acc > 0.95);
    }

    #[test]
    fn proba_sums_to_one() {
        let ds = noisy(100);
        let forest =
            RandomForest::fit(&ds, &ForestParams { n_estimators: 10, ..Default::default() }).unwrap();
        let p = forest.predict_proba(ds.row(0));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_len_scales_with_estimators() {
        let ds = noisy(200);
        let small =
            RandomForest::fit(&ds, &ForestParams { n_estimators: 5, seed: 1, ..Default::default() }).unwrap();
        let large = RandomForest::fit(&ds, &ForestParams { n_estimators: 50, seed: 1, ..Default::default() })
            .unwrap();
        let x = ds.row(0);
        assert!(large.decision_path_len(x) > small.decision_path_len(x));
    }

    #[test]
    fn rejects_bad_params() {
        let ds = noisy(10);
        assert!(RandomForest::fit(&ds, &ForestParams { n_estimators: 0, ..Default::default() }).is_err());
        let empty = Dataset::empty(3, 2, vec![]).unwrap();
        assert!(RandomForest::fit(&empty, &ForestParams::default()).is_err());
    }

    #[test]
    fn importances_normalised() {
        let ds = noisy(200);
        let forest =
            RandomForest::fit(&ds, &ForestParams { n_estimators: 10, ..Default::default() }).unwrap();
        let imp = forest.feature_importances();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The noise feature (index 2) should matter least.
        assert!(imp[2] < imp[0] && imp[2] < imp[1], "importances {imp:?}");
    }
}

#[cfg(test)]
mod balanced_tests {
    use super::*;
    use crate::metrics::{balanced_accuracy, per_class_recall};

    /// Imbalanced 2-class data (90/10) with weak signal for the minority.
    fn imbalanced(n: usize) -> Dataset {
        let mut ds = Dataset::empty(2, 2, vec![]).unwrap();
        let mut state = 5u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for i in 0..n {
            let t = usize::from(i % 10 == 0);
            // Substantial overlap: under the 90/10 prior the majority-vote
            // forest only flags the far tail as minority, while a balanced
            // prior flags everything past the shift.
            let shift = if t == 1 { 0.45 } else { 0.0 };
            ds.push(&[rnd() + shift, rnd()], t).unwrap();
        }
        ds
    }

    #[test]
    fn balanced_bootstrap_draws_equal_classes() {
        let ds = imbalanced(200);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let idx = balanced_sample(&ds, 200, &mut rng);
        let minority = idx.iter().filter(|&&i| ds.target(i) == 1).count();
        let majority = idx.len() - minority;
        assert_eq!(minority, majority, "balanced sample must draw classes equally");
    }

    #[test]
    fn balanced_forest_improves_minority_recall() {
        // Weak, overlapping minority signal evaluated on a held-out split:
        // the plain forest leans toward the 90% class; the balanced
        // bootstrap trades majority precision for minority recall.
        let (train, test) = imbalanced(2000).stratified_split(0.3, 3);
        let shallow = ForestParams { n_estimators: 40, max_depth: Some(2), seed: 2, ..Default::default() };
        let plain = RandomForest::fit(&train, &shallow).unwrap();
        let balanced =
            RandomForest::fit(&train, &ForestParams { balanced_bootstrap: true, ..shallow.clone() }).unwrap();
        let y_true: Vec<usize> = test.targets().to_vec();
        let recall_plain = per_class_recall(&y_true, &plain.predict_dataset(&test), 2)[1].unwrap();
        let recall_bal = per_class_recall(&y_true, &balanced.predict_dataset(&test), 2)[1].unwrap();
        assert!(
            recall_bal > recall_plain,
            "balanced bootstrap should lift minority recall: {recall_bal:.3} vs {recall_plain:.3}"
        );
        let bacc_plain = balanced_accuracy(&y_true, &plain.predict_dataset(&test), 2);
        let bacc_bal = balanced_accuracy(&y_true, &balanced.predict_dataset(&test), 2);
        assert!(
            bacc_bal >= bacc_plain - 0.02,
            "balanced accuracy should not collapse: {bacc_bal:.3} vs {bacc_plain:.3}"
        );
    }

    #[test]
    fn balanced_flag_is_deterministic() {
        let ds = imbalanced(100);
        let p = ForestParams { n_estimators: 6, balanced_bootstrap: true, seed: 9, ..Default::default() };
        assert_eq!(RandomForest::fit(&ds, &p).unwrap(), RandomForest::fit(&ds, &p).unwrap());
    }
}
