//! Tabular dataset: feature matrix + class targets.

use crate::{MlError, Result};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A dense feature matrix with integer class targets.
///
/// Rows are samples (one per matrix in the corpus); columns are the Table I
/// features; targets are format IDs.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    n_features: usize,
    n_classes: usize,
    features: Vec<f64>, // row-major, len = n_samples * n_features
    targets: Vec<usize>,
    feature_names: Vec<String>,
}

impl Dataset {
    /// Builds a dataset, validating shapes and target range.
    pub fn new(
        n_features: usize,
        n_classes: usize,
        features: Vec<f64>,
        targets: Vec<usize>,
        feature_names: Vec<String>,
    ) -> Result<Self> {
        if n_features == 0 {
            return Err(MlError::InvalidData("n_features must be positive".into()));
        }
        if features.len() != targets.len() * n_features {
            return Err(MlError::InvalidData(format!(
                "features length {} != {} samples * {} features",
                features.len(),
                targets.len(),
                n_features
            )));
        }
        if let Some(&bad) = targets.iter().find(|&&t| t >= n_classes) {
            return Err(MlError::InvalidData(format!("target {bad} out of range for {n_classes} classes")));
        }
        if !feature_names.is_empty() && feature_names.len() != n_features {
            return Err(MlError::InvalidData("feature_names length mismatch".into()));
        }
        if features.iter().any(|v| !v.is_finite()) {
            return Err(MlError::InvalidData("non-finite feature value".into()));
        }
        Ok(Dataset { n_features, n_classes, features, targets, feature_names })
    }

    /// Empty dataset with named features.
    pub fn empty(n_features: usize, n_classes: usize, feature_names: Vec<String>) -> Result<Self> {
        Dataset::new(n_features, n_classes, Vec::new(), Vec::new(), feature_names)
    }

    /// Appends one sample.
    pub fn push(&mut self, row: &[f64], target: usize) -> Result<()> {
        if row.len() != self.n_features {
            return Err(MlError::InvalidData(format!(
                "row has {} features, expected {}",
                row.len(),
                self.n_features
            )));
        }
        if target >= self.n_classes {
            return Err(MlError::InvalidData(format!("target {target} out of range")));
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(MlError::InvalidData("non-finite feature value".into()));
        }
        self.features.extend_from_slice(row);
        self.targets.push(target);
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// `true` if no samples.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of target classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature row of sample `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Feature `j` of sample `i`.
    #[inline]
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.features[i * self.n_features + j]
    }

    /// Target of sample `i`.
    #[inline]
    pub fn target(&self, i: usize) -> usize {
        self.targets[i]
    }

    /// All targets.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// Feature names (may be empty).
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &t in &self.targets {
            counts[t] += 1;
        }
        counts
    }

    /// New dataset containing the given sample indices (duplicates allowed —
    /// this is also the bootstrap-sampling primitive).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut features = Vec::with_capacity(indices.len() * self.n_features);
        let mut targets = Vec::with_capacity(indices.len());
        for &i in indices {
            features.extend_from_slice(self.row(i));
            targets.push(self.targets[i]);
        }
        Dataset {
            n_features: self.n_features,
            n_classes: self.n_classes,
            features,
            targets,
            feature_names: self.feature_names.clone(),
        }
    }

    /// Appends every sample of `other` to this dataset. Both datasets must
    /// agree on feature and class counts (feature names are kept from
    /// `self`) — this is how online-collected samples are folded into an
    /// offline training corpus.
    pub fn merge(&mut self, other: &Dataset) -> Result<()> {
        if other.n_features != self.n_features {
            return Err(MlError::InvalidData(format!(
                "cannot merge {} features into {}",
                other.n_features, self.n_features
            )));
        }
        if other.n_classes != self.n_classes {
            return Err(MlError::InvalidData(format!(
                "cannot merge {} classes into {}",
                other.n_classes, self.n_classes
            )));
        }
        self.features.extend_from_slice(&other.features);
        self.targets.extend_from_slice(&other.targets);
        Ok(())
    }

    /// Deterministic stratified train/test split: within each class, a
    /// seeded shuffle sends `test_fraction` of samples to the test set
    /// (at least one per class when the class has ≥ 2 samples).
    pub fn stratified_split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&test_fraction), "test_fraction in [0, 1)");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes];
        for (i, &t) in self.targets.iter().enumerate() {
            by_class[t].push(i);
        }
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for mut idxs in by_class {
            idxs.shuffle(&mut rng);
            let n_test = if idxs.len() >= 2 {
                ((idxs.len() as f64 * test_fraction).round() as usize).clamp(1, idxs.len() - 1)
            } else {
                0
            };
            test_idx.extend_from_slice(&idxs[..n_test]);
            train_idx.extend_from_slice(&idxs[n_test..]);
        }
        train_idx.sort_unstable();
        test_idx.sort_unstable();
        (self.subset(&train_idx), self.subset(&test_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        // 10 samples, 2 features, 2 classes (6 of class 0, 4 of class 1).
        let mut ds = Dataset::empty(2, 2, vec!["a".into(), "b".into()]).unwrap();
        for i in 0..10 {
            let t = usize::from(i >= 6);
            ds.push(&[i as f64, (i * i) as f64], t).unwrap();
        }
        ds
    }

    #[test]
    fn construction_and_access() {
        let ds = toy();
        assert_eq!(ds.len(), 10);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.row(3), &[3.0, 9.0]);
        assert_eq!(ds.value(3, 1), 9.0);
        assert_eq!(ds.target(7), 1);
        assert_eq!(ds.class_counts(), vec![6, 4]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Dataset::new(0, 2, vec![], vec![], vec![]).is_err());
        assert!(Dataset::new(2, 2, vec![1.0], vec![0], vec![]).is_err());
        assert!(Dataset::new(1, 2, vec![1.0], vec![5], vec![]).is_err());
        assert!(Dataset::new(1, 2, vec![f64::NAN], vec![0], vec![]).is_err());
        let mut ds = toy();
        assert!(ds.push(&[1.0], 0).is_err());
        assert!(ds.push(&[1.0, 2.0], 9).is_err());
        assert!(ds.push(&[f64::INFINITY, 0.0], 0).is_err());
    }

    #[test]
    fn merge_appends_and_validates_schema() {
        let mut a = toy();
        let b = toy();
        a.merge(&b).unwrap();
        assert_eq!(a.len(), 20);
        assert_eq!(a.row(10), b.row(0));
        assert_eq!(a.target(19), 1);
        assert_eq!(a.feature_names(), ["a", "b"]);

        let wrong_features = Dataset::empty(3, 2, vec![]).unwrap();
        assert!(a.merge(&wrong_features).is_err());
        let wrong_classes = Dataset::empty(2, 5, vec![]).unwrap();
        assert!(a.merge(&wrong_classes).is_err());
        assert_eq!(a.len(), 20, "failed merges must not mutate");
    }

    #[test]
    fn subset_with_duplicates() {
        let ds = toy();
        let sub = ds.subset(&[0, 0, 9]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.row(0), sub.row(1));
        assert_eq!(sub.target(2), 1);
    }

    #[test]
    fn stratified_split_preserves_classes() {
        let ds = toy();
        let (train, test) = ds.stratified_split(0.2, 7);
        assert_eq!(train.len() + test.len(), ds.len());
        // Both classes present in both halves.
        assert!(train.class_counts().iter().all(|&c| c > 0));
        assert!(test.class_counts().iter().all(|&c| c > 0));
        // Deterministic.
        let (train2, test2) = ds.stratified_split(0.2, 7);
        assert_eq!(train, train2);
        assert_eq!(test, test2);
        // Different seed, different split (with high probability for this size).
        let (train3, _) = ds.stratified_split(0.2, 8);
        assert_ne!(train, train3);
    }

    #[test]
    fn singleton_class_stays_in_train() {
        let mut ds = Dataset::empty(1, 3, vec![]).unwrap();
        ds.push(&[0.0], 0).unwrap();
        ds.push(&[1.0], 0).unwrap();
        ds.push(&[2.0], 0).unwrap();
        ds.push(&[3.0], 1).unwrap();
        let (train, test) = ds.stratified_split(0.3, 1);
        assert_eq!(train.class_counts()[1], 1);
        assert_eq!(test.class_counts()[1], 0);
    }
}
