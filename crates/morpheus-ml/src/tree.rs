//! CART decision-tree classifier.
//!
//! "A decision tree ML algorithm that effectively learns simple decision
//! rules inferred from the data features" (§V). Axis-aligned binary splits
//! chosen to maximise impurity decrease under gini or entropy, with the
//! regularisation knobs of Table III: `max_depth`, `min_samples_split`,
//! `min_samples_leaf` and `max_features` (random feature subsampling).

use crate::dataset::Dataset;
use crate::{MlError, Result};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Split-quality criterion ("the criterion function used to measure the
/// quality of the split", §VII-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Gini impurity.
    Gini,
    /// Shannon entropy (information gain).
    Entropy,
}

impl Criterion {
    /// Name used in reports and model files.
    pub fn name(self) -> &'static str {
        match self {
            Criterion::Gini => "gini",
            Criterion::Entropy => "entropy",
        }
    }

    /// Parse from name.
    pub fn from_name(s: &str) -> Option<Criterion> {
        match s {
            "gini" => Some(Criterion::Gini),
            "entropy" => Some(Criterion::Entropy),
            _ => None,
        }
    }

    /// Impurity of a class-count histogram with `total` samples.
    fn impurity(self, counts: &[f64], total: f64) -> f64 {
        if total <= 0.0 {
            return 0.0;
        }
        match self {
            Criterion::Gini => {
                let mut s = 0.0;
                for &c in counts {
                    let p = c / total;
                    s += p * p;
                }
                1.0 - s
            }
            Criterion::Entropy => {
                let mut h = 0.0;
                for &c in counts {
                    if c > 0.0 {
                        let p = c / total;
                        h -= p * p.log2();
                    }
                }
                h
            }
        }
    }
}

/// Hyperparameters of a [`DecisionTree`] (the single-tree subset of the
/// Table III space).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Split criterion.
    pub criterion: Criterion,
    /// Maximum tree depth (`None` = unbounded).
    pub max_depth: Option<usize>,
    /// Minimum samples a node needs to be split.
    pub min_samples_split: usize,
    /// Minimum samples each child must keep.
    pub min_samples_leaf: usize,
    /// Features considered per split (`None` = all).
    pub max_features: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            criterion: Criterion::Gini,
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        }
    }
}

/// One node of the flattened tree.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Node {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
        /// Samples that reached this node during training (for importances).
        n_samples: usize,
        /// Impurity decrease contributed by this split (for importances).
        gain: f64,
    },
    Leaf {
        /// Majority class.
        class: usize,
        /// Training class distribution at the leaf (for soft voting).
        counts: Vec<u32>,
    },
}

/// A fitted CART decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) n_features: usize,
    pub(crate) n_classes: usize,
    params: TreeParams,
}

struct Builder<'a> {
    ds: &'a Dataset,
    params: &'a TreeParams,
    nodes: Vec<Node>,
    rng: rand::rngs::StdRng,
    feature_pool: Vec<usize>,
}

impl<'a> Builder<'a> {
    fn leaf(&mut self, counts: &[f64]) -> usize {
        let class = argmax(counts);
        let counts_u32 = counts.iter().map(|&c| c as u32).collect();
        self.nodes.push(Node::Leaf { class, counts: counts_u32 });
        self.nodes.len() - 1
    }

    /// Builds the subtree over `idx` (sample indices), returns node id.
    fn build(&mut self, idx: &mut [usize], depth: usize) -> usize {
        let n = idx.len();
        let mut counts = vec![0.0f64; self.ds.n_classes()];
        for &i in idx.iter() {
            counts[self.ds.target(i)] += 1.0;
        }
        let parent_impurity = self.params.criterion.impurity(&counts, n as f64);

        let depth_stop = self.params.max_depth.is_some_and(|d| depth >= d);
        if n < self.params.min_samples_split || parent_impurity == 0.0 || depth_stop {
            return self.leaf(&counts);
        }

        // Feature subset for this node.
        let k = self.params.max_features.unwrap_or(self.ds.n_features()).clamp(1, self.ds.n_features());
        self.feature_pool.shuffle(&mut self.rng);
        let candidates: Vec<usize> = self.feature_pool[..k].to_vec();

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted_child_impurity)
        let mut sorted: Vec<usize> = Vec::with_capacity(n);
        let mut left_counts = vec![0.0f64; self.ds.n_classes()];
        for &f in &candidates {
            sorted.clear();
            sorted.extend_from_slice(idx);
            sorted.sort_unstable_by(|&a, &b| {
                self.ds.value(a, f).partial_cmp(&self.ds.value(b, f)).expect("finite features")
            });
            left_counts.iter_mut().for_each(|c| *c = 0.0);
            let mut right_counts = counts.clone();
            for split_at in 1..n {
                let prev = sorted[split_at - 1];
                let t_prev = self.ds.target(prev);
                left_counts[t_prev] += 1.0;
                right_counts[t_prev] -= 1.0;
                let v_prev = self.ds.value(prev, f);
                let v_next = self.ds.value(sorted[split_at], f);
                if v_prev == v_next {
                    continue; // cannot split between equal values
                }
                if split_at < self.params.min_samples_leaf || n - split_at < self.params.min_samples_leaf {
                    continue;
                }
                let wl = split_at as f64;
                let wr = (n - split_at) as f64;
                let child = (wl * self.params.criterion.impurity(&left_counts, wl)
                    + wr * self.params.criterion.impurity(&right_counts, wr))
                    / n as f64;
                if best.is_none_or(|(_, _, b)| child < b) {
                    let threshold = v_prev + 0.5 * (v_next - v_prev);
                    best = Some((f, threshold, child));
                }
            }
        }

        let Some((feature, threshold, child_impurity)) = best else {
            return self.leaf(&counts);
        };
        // Note: zero-gain splits are allowed (as in scikit-learn's CART) —
        // XOR-like interactions have no first-level gain yet still need the
        // split. Recursion terminates because both children are non-empty.

        // Partition indices (order within halves irrelevant).
        let mut l = 0usize;
        let mut r = n;
        let slice = &mut *idx;
        while l < r {
            if self.ds.value(slice[l], feature) <= threshold {
                l += 1;
            } else {
                r -= 1;
                slice.swap(l, r);
            }
        }
        debug_assert!(l > 0 && l < n, "degenerate partition");

        let gain = (parent_impurity - child_impurity) * n as f64;
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { class: 0, counts: Vec::new() }); // placeholder
        let (left_slice, right_slice) = idx.split_at_mut(l);
        let left = self.build(left_slice, depth + 1);
        let right = self.build(right_slice, depth + 1);
        self.nodes[me] = Node::Split { feature, threshold, left, right, n_samples: n, gain };
        me
    }
}

fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

impl DecisionTree {
    /// Fits a tree on the dataset.
    pub fn fit(ds: &Dataset, params: &TreeParams) -> Result<Self> {
        if ds.is_empty() {
            return Err(MlError::InvalidData("cannot fit on an empty dataset".into()));
        }
        let mut builder = Builder {
            ds,
            params,
            nodes: Vec::new(),
            rng: rand::rngs::StdRng::seed_from_u64(params.seed),
            feature_pool: (0..ds.n_features()).collect(),
        };
        let mut idx: Vec<usize> = (0..ds.len()).collect();
        let root = builder.build(&mut idx, 0);
        debug_assert_eq!(root, 0);
        Ok(DecisionTree {
            nodes: builder.nodes,
            n_features: ds.n_features(),
            n_classes: ds.n_classes(),
            params: params.clone(),
        })
    }

    /// Predicted class for one feature vector.
    pub fn predict(&self, x: &[f64]) -> usize {
        let (leaf, _) = self.walk(x);
        match &self.nodes[leaf] {
            Node::Leaf { class, .. } => *class,
            Node::Split { .. } => unreachable!("walk ends at a leaf"),
        }
    }

    /// Class-count distribution at the reached leaf (soft vote input).
    pub fn predict_counts(&self, x: &[f64]) -> &[u32] {
        let (leaf, _) = self.walk(x);
        match &self.nodes[leaf] {
            Node::Leaf { counts, .. } => counts,
            Node::Split { .. } => unreachable!("walk ends at a leaf"),
        }
    }

    /// Nodes visited for a prediction (the tuner's cost accounting input).
    pub fn decision_path_len(&self, x: &[f64]) -> usize {
        self.walk(x).1
    }

    fn walk(&self, x: &[f64]) -> (usize, usize) {
        assert_eq!(x.len(), self.n_features, "feature vector length");
        let mut node = 0usize;
        let mut visited = 1usize;
        loop {
            match &self.nodes[node] {
                Node::Split { feature, threshold, left, right, .. } => {
                    node = if x[*feature] <= *threshold { *left } else { *right };
                    visited += 1;
                }
                Node::Leaf { .. } => return (node, visited),
            }
        }
    }

    /// Predictions for every row of a dataset.
    pub fn predict_dataset(&self, ds: &Dataset) -> Vec<usize> {
        (0..ds.len()).map(|i| self.predict(ds.row(i))).collect()
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// Maximum root-to-leaf depth (root = 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth_of(nodes, *left).max(depth_of(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Mean-decrease-in-impurity feature importances, normalised to sum 1
    /// (all-zero when the tree is a single leaf).
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for node in &self.nodes {
            if let Node::Split { feature, gain, .. } = node {
                imp[*feature] += *gain;
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Number of classes the tree predicts over.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of features the tree expects.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The hyperparameters used to fit this tree.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }

    pub(crate) fn from_parts(
        nodes: Vec<Node>,
        n_features: usize,
        n_classes: usize,
        params: TreeParams,
    ) -> Self {
        DecisionTree { nodes, n_features, n_classes, params }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated clusters.
    fn separable(n: usize) -> Dataset {
        let mut ds = Dataset::empty(2, 2, vec![]).unwrap();
        for i in 0..n {
            let t = i % 2;
            let base = if t == 0 { 0.0 } else { 10.0 };
            ds.push(&[base + (i % 5) as f64 * 0.1, base - (i % 3) as f64 * 0.1], t).unwrap();
        }
        ds
    }

    #[test]
    fn perfectly_separable_reaches_full_accuracy() {
        let ds = separable(100);
        let tree = DecisionTree::fit(&ds, &TreeParams::default()).unwrap();
        let preds = tree.predict_dataset(&ds);
        let correct = preds.iter().zip(ds.targets()).filter(|(p, t)| p == t).count();
        assert_eq!(correct, 100);
        assert!(tree.depth() <= 2, "one split suffices, got depth {}", tree.depth());
    }

    #[test]
    fn max_depth_limits_tree() {
        // Pure XOR: no single split has gain, so this also exercises the
        // zero-gain-split behaviour CART needs; depth 1 must underfit.
        let mut ds = Dataset::empty(2, 2, vec![]).unwrap();
        for i in 0..200 {
            let a = (i / 2) % 2;
            let b = i % 2;
            let t = a ^ b;
            ds.push(&[a as f64, b as f64], t).unwrap();
        }
        let deep = DecisionTree::fit(&ds, &TreeParams { max_depth: Some(4), ..Default::default() }).unwrap();
        let shallow =
            DecisionTree::fit(&ds, &TreeParams { max_depth: Some(1), ..Default::default() }).unwrap();
        assert!(shallow.depth() <= 1);
        let acc = |t: &DecisionTree| {
            t.predict_dataset(&ds).iter().zip(ds.targets()).filter(|(p, q)| p == q).count() as f64 / 200.0
        };
        assert!(acc(&deep) > 0.99, "deep accuracy {}", acc(&deep));
        assert!(acc(&shallow) <= 0.75, "shallow accuracy {}", acc(&shallow));
    }

    #[test]
    fn min_samples_leaf_respected() {
        let ds = separable(40);
        let tree =
            DecisionTree::fit(&ds, &TreeParams { min_samples_leaf: 15, ..Default::default() }).unwrap();
        // With leaves of >= 15 of 40 samples, at most 2 leaves fit.
        assert!(tree.n_leaves() <= 2, "{} leaves", tree.n_leaves());
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let mut ds = Dataset::empty(1, 2, vec![]).unwrap();
        for i in 0..10 {
            ds.push(&[i as f64], 0).unwrap();
        }
        let tree = DecisionTree::fit(&ds, &TreeParams::default()).unwrap();
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict(&[3.0]), 0);
        assert_eq!(tree.decision_path_len(&[3.0]), 1);
    }

    #[test]
    fn entropy_and_gini_both_work() {
        let ds = separable(60);
        for criterion in [Criterion::Gini, Criterion::Entropy] {
            let tree = DecisionTree::fit(&ds, &TreeParams { criterion, ..Default::default() }).unwrap();
            let preds = tree.predict_dataset(&ds);
            assert!(preds.iter().zip(ds.targets()).all(|(p, t)| p == t), "{criterion:?}");
        }
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let mut ds = Dataset::empty(2, 2, vec![]).unwrap();
        for i in 0..10 {
            ds.push(&[1.0, 2.0], i % 2).unwrap();
        }
        let tree = DecisionTree::fit(&ds, &TreeParams::default()).unwrap();
        assert_eq!(tree.n_nodes(), 1, "cannot split identical rows");
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = separable(100);
        let p = TreeParams { max_features: Some(1), seed: 42, ..Default::default() };
        let t1 = DecisionTree::fit(&ds, &p).unwrap();
        let t2 = DecisionTree::fit(&ds, &p).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn importances_sum_to_one() {
        let ds = separable(100);
        let tree = DecisionTree::fit(&ds, &TreeParams::default()).unwrap();
        let imp = tree.feature_importances();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = Dataset::empty(2, 2, vec![]).unwrap();
        assert!(DecisionTree::fit(&ds, &TreeParams::default()).is_err());
    }

    #[test]
    fn predict_counts_reflect_leaf_distribution() {
        let ds = separable(50);
        let tree = DecisionTree::fit(&ds, &TreeParams::default()).unwrap();
        let counts = tree.predict_counts(&[0.0, 0.0]);
        assert_eq!(counts.len(), 2);
        assert!(counts[0] > 0);
        assert_eq!(counts[1], 0);
    }
}
