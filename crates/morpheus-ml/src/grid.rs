//! Exhaustive hyperparameter grid search with k-fold CV (§VII-D).
//!
//! "An exhaustive Grid search is performed to search from the optimal
//! hyperparameter values in a defined hyperparameter space", scoring each
//! candidate with stratified 5-fold cross-validation and refitting the best
//! candidate on the full training set.

use crate::cv::cross_val_score;
use crate::dataset::Dataset;
use crate::forest::{ForestParams, RandomForest};
use crate::metrics::{accuracy, balanced_accuracy};
use crate::tree::{Criterion, DecisionTree, TreeParams};
use crate::Result;

/// Model-selection metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scoring {
    /// Plain accuracy.
    Accuracy,
    /// Balanced accuracy — the paper's preferred metric under imbalance.
    BalancedAccuracy,
}

impl Scoring {
    /// Evaluates predictions against the truth.
    pub fn score(self, y_true: &[usize], y_pred: &[usize], n_classes: usize) -> f64 {
        match self {
            Scoring::Accuracy => accuracy(y_true, y_pred),
            Scoring::BalancedAccuracy => balanced_accuracy(y_true, y_pred, n_classes),
        }
    }
}

/// Search space for [`RandomForest`] — defaults mirror the ranges Table III
/// reports tuned values from.
#[derive(Debug, Clone)]
pub struct ForestGrid {
    /// Candidate tree counts.
    pub n_estimators: Vec<usize>,
    /// Candidate depth limits.
    pub max_depth: Vec<Option<usize>>,
    /// Candidate leaf minima.
    pub min_samples_leaf: Vec<usize>,
    /// Candidate split minima.
    pub min_samples_split: Vec<usize>,
    /// Candidate per-split feature budgets.
    pub max_features: Vec<Option<usize>>,
    /// Candidate criteria.
    pub criterion: Vec<Criterion>,
    /// Candidate bootstrap settings.
    pub bootstrap: Vec<bool>,
}

impl Default for ForestGrid {
    fn default() -> Self {
        ForestGrid {
            n_estimators: vec![10, 20, 40, 60],
            max_depth: vec![Some(10), Some(14), Some(18), Some(22)],
            min_samples_leaf: vec![1, 2],
            min_samples_split: vec![2, 5, 10],
            max_features: vec![Some(4), Some(6), Some(10)],
            criterion: vec![Criterion::Gini, Criterion::Entropy],
            bootstrap: vec![true, false],
        }
    }
}

impl ForestGrid {
    /// A reduced grid for tests and quick runs.
    pub fn small() -> Self {
        ForestGrid {
            n_estimators: vec![10, 20],
            max_depth: vec![Some(8), Some(16)],
            min_samples_leaf: vec![1],
            min_samples_split: vec![2],
            max_features: vec![None],
            criterion: vec![Criterion::Gini],
            bootstrap: vec![true],
        }
    }

    /// All parameter combinations, in deterministic order.
    pub fn candidates(&self, seed: u64) -> Vec<ForestParams> {
        let mut out = Vec::new();
        for &n in &self.n_estimators {
            for &d in &self.max_depth {
                for &leaf in &self.min_samples_leaf {
                    for &split in &self.min_samples_split {
                        for &mf in &self.max_features {
                            for &crit in &self.criterion {
                                for &bs in &self.bootstrap {
                                    out.push(ForestParams {
                                        n_estimators: n,
                                        bootstrap: bs,
                                        max_depth: d,
                                        min_samples_leaf: leaf,
                                        min_samples_split: split,
                                        max_features: mf,
                                        criterion: crit,
                                        balanced_bootstrap: false,
                                        seed,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Search space for a single [`DecisionTree`].
#[derive(Debug, Clone)]
pub struct TreeGrid {
    /// Candidate depth limits.
    pub max_depth: Vec<Option<usize>>,
    /// Candidate leaf minima.
    pub min_samples_leaf: Vec<usize>,
    /// Candidate split minima.
    pub min_samples_split: Vec<usize>,
    /// Candidate criteria.
    pub criterion: Vec<Criterion>,
}

impl Default for TreeGrid {
    fn default() -> Self {
        TreeGrid {
            max_depth: vec![Some(6), Some(10), Some(14), Some(18), Some(22), None],
            min_samples_leaf: vec![1, 2, 4],
            min_samples_split: vec![2, 5, 10],
            criterion: vec![Criterion::Gini, Criterion::Entropy],
        }
    }
}

impl TreeGrid {
    /// All parameter combinations, in deterministic order.
    pub fn candidates(&self, seed: u64) -> Vec<TreeParams> {
        let mut out = Vec::new();
        for &d in &self.max_depth {
            for &leaf in &self.min_samples_leaf {
                for &split in &self.min_samples_split {
                    for &crit in &self.criterion {
                        out.push(TreeParams {
                            criterion: crit,
                            max_depth: d,
                            min_samples_split: split,
                            min_samples_leaf: leaf,
                            max_features: None,
                            seed,
                        });
                    }
                }
            }
        }
        out
    }
}

/// Result of a grid search over models of type `P`/`M`.
#[derive(Debug, Clone)]
pub struct GridSearchOutcome<P, M> {
    /// Winning hyperparameters.
    pub best_params: P,
    /// Mean CV score of the winner.
    pub best_cv_score: f64,
    /// The winner refitted on the full training set.
    pub best_model: M,
    /// Number of candidates evaluated.
    pub n_candidates: usize,
}

/// Exhaustive forest search: k-fold CV per candidate, winner refit on the
/// full set. Ties resolve to the earlier candidate (stable order).
pub fn grid_search_forest(
    ds: &Dataset,
    grid: &ForestGrid,
    k: usize,
    seed: u64,
    scoring: Scoring,
) -> Result<GridSearchOutcome<ForestParams, RandomForest>> {
    let candidates = grid.candidates(seed);
    let mut best: Option<(usize, f64)> = None;
    for (ci, params) in candidates.iter().enumerate() {
        let score = cross_val_score(ds, k, seed, |train, val| match RandomForest::fit(train, params) {
            Ok(model) => {
                let preds = model.predict_dataset(val);
                scoring.score(val.targets(), &preds, ds.n_classes())
            }
            Err(_) => 0.0,
        });
        if best.is_none_or(|(_, b)| score > b) {
            best = Some((ci, score));
        }
    }
    let (ci, best_cv_score) = best.expect("grid has at least one candidate");
    let best_params = candidates[ci].clone();
    let best_model = RandomForest::fit(ds, &best_params)?;
    Ok(GridSearchOutcome { best_params, best_cv_score, best_model, n_candidates: candidates.len() })
}

/// Exhaustive decision-tree search, same protocol as
/// [`grid_search_forest`].
pub fn grid_search_tree(
    ds: &Dataset,
    grid: &TreeGrid,
    k: usize,
    seed: u64,
    scoring: Scoring,
) -> Result<GridSearchOutcome<TreeParams, DecisionTree>> {
    let candidates = grid.candidates(seed);
    let mut best: Option<(usize, f64)> = None;
    for (ci, params) in candidates.iter().enumerate() {
        let score = cross_val_score(ds, k, seed, |train, val| match DecisionTree::fit(train, params) {
            Ok(model) => {
                let preds = model.predict_dataset(val);
                scoring.score(val.targets(), &preds, ds.n_classes())
            }
            Err(_) => 0.0,
        });
        if best.is_none_or(|(_, b)| score > b) {
            best = Some((ci, score));
        }
    }
    let (ci, best_cv_score) = best.expect("grid has at least one candidate");
    let best_params = candidates[ci].clone();
    let best_model = DecisionTree::fit(ds, &best_params)?;
    Ok(GridSearchOutcome { best_params, best_cv_score, best_model, n_candidates: candidates.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut ds = Dataset::empty(2, 2, vec![]).unwrap();
        let mut state = 7u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for i in 0..n {
            let t = i % 2;
            let base = if t == 0 { 0.0 } else { 1.5 };
            ds.push(&[base + rnd(), base - rnd()], t).unwrap();
        }
        ds
    }

    #[test]
    fn candidate_counts_are_products() {
        let g = ForestGrid::default();
        let expected = g.n_estimators.len()
            * g.max_depth.len()
            * g.min_samples_leaf.len()
            * g.min_samples_split.len()
            * g.max_features.len()
            * g.criterion.len()
            * g.bootstrap.len();
        assert_eq!(g.candidates(0).len(), expected);
        let t = TreeGrid::default();
        assert_eq!(
            t.candidates(0).len(),
            t.max_depth.len() * t.min_samples_leaf.len() * t.min_samples_split.len() * t.criterion.len()
        );
    }

    #[test]
    fn tree_grid_search_finds_good_model() {
        let ds = toy(120);
        let grid = TreeGrid {
            max_depth: vec![Some(1), Some(6)],
            min_samples_leaf: vec![1],
            min_samples_split: vec![2],
            criterion: vec![Criterion::Gini],
        };
        let out = grid_search_tree(&ds, &grid, 3, 11, Scoring::Accuracy).unwrap();
        assert_eq!(out.n_candidates, 2);
        assert!(out.best_cv_score > 0.8, "cv score {}", out.best_cv_score);
    }

    #[test]
    fn forest_grid_search_runs() {
        let ds = toy(80);
        let grid = ForestGrid {
            n_estimators: vec![5],
            max_depth: vec![Some(4)],
            min_samples_leaf: vec![1],
            min_samples_split: vec![2],
            max_features: vec![None],
            criterion: vec![Criterion::Gini],
            bootstrap: vec![true, false],
        };
        let out = grid_search_forest(&ds, &grid, 3, 2, Scoring::BalancedAccuracy).unwrap();
        assert_eq!(out.n_candidates, 2);
        assert!(out.best_cv_score > 0.7);
        assert_eq!(out.best_model.params().n_estimators, 5);
    }

    #[test]
    fn deterministic_outcome() {
        let ds = toy(60);
        let grid = ForestGrid::small();
        let a = grid_search_forest(&ds, &grid, 3, 4, Scoring::Accuracy).unwrap();
        let b = grid_search_forest(&ds, &grid, 3, 4, Scoring::Accuracy).unwrap();
        assert_eq!(a.best_params, b.best_params);
        assert_eq!(a.best_cv_score, b.best_cv_score);
    }
}
