//! Model (de)serialisation — the "extracted model" files of Figure 1.
//!
//! The offline stage exports tuned models to files; the online tuners load
//! them at runtime ("loads an ML model from a file specified at runtime",
//! §III-B). The format is a versioned, line-oriented text format:
//!
//! ```text
//! morpheus-oracle-model v1
//! kind forest
//! classes 6
//! features 10
//! trees 40
//! tree 0 nodes 5
//! node 0 split <feature> <threshold> <left> <right> [<gain> <n_samples>]
//! node 1 leaf <class> <count_0> ... <count_{classes-1}>
//! ...
//! end
//! ```
//!
//! Whitespace-separated, `#` comments allowed, resilient to trailing
//! newlines. Parsing is strict: structural errors (dangling child ids,
//! wrong counts) are rejected rather than patched.

use crate::forest::{ForestParams, RandomForest};
use crate::gbt::{GbtParams, GradientBoostedTrees, RNode, RegressionTree};
use crate::tree::{Criterion, DecisionTree, Node, TreeParams};
use crate::{MlError, Result};
use std::io::{BufRead, Write};

const MAGIC: &str = "morpheus-oracle-model";
const VERSION: &str = "v1";

/// Writes a decision tree as a single-tree model file.
pub fn save_tree<W: Write>(w: &mut W, tree: &DecisionTree) -> Result<()> {
    writeln!(w, "{MAGIC} {VERSION}")?;
    writeln!(w, "kind tree")?;
    writeln!(w, "classes {}", tree.n_classes())?;
    writeln!(w, "features {}", tree.n_features())?;
    writeln!(w, "trees 1")?;
    write_one_tree(w, 0, tree)?;
    writeln!(w, "end")?;
    Ok(())
}

/// Writes a random forest model file.
pub fn save_forest<W: Write>(w: &mut W, forest: &RandomForest) -> Result<()> {
    writeln!(w, "{MAGIC} {VERSION}")?;
    writeln!(w, "kind forest")?;
    writeln!(w, "classes {}", forest.n_classes())?;
    writeln!(w, "features {}", forest.n_features())?;
    writeln!(w, "trees {}", forest.trees().len())?;
    for (i, tree) in forest.trees().iter().enumerate() {
        write_one_tree(w, i, tree)?;
    }
    writeln!(w, "end")?;
    Ok(())
}

/// Writes a gradient-boosted ensemble as a model file. The layout mirrors
/// the tree/forest format (same magic, same tokenizer) with `kind gbt`:
/// per-round, per-class *regression* trees whose leaves carry `f64` values
/// instead of class votes, plus the class priors and the learning rate —
/// the only hyperparameter that participates in prediction:
///
/// ```text
/// morpheus-oracle-model v1
/// kind gbt
/// classes 6
/// features 10
/// rounds 40
/// learning_rate 1e-1
/// priors <p_0> ... <p_{classes-1}>
/// rtree <round> <class> nodes <n>
/// node 0 split <feature> <threshold> <left> <right>
/// node 1 leaf <value>
/// ...
/// end
/// ```
///
/// `{:e}` formatting keeps full `f64` precision, so save/load round-trips
/// are exact and serialized output is byte-stable for a given model.
pub fn save_gbt<W: Write>(w: &mut W, model: &GradientBoostedTrees) -> Result<()> {
    writeln!(w, "{MAGIC} {VERSION}")?;
    writeln!(w, "kind gbt")?;
    writeln!(w, "classes {}", model.n_classes())?;
    writeln!(w, "features {}", model.n_features())?;
    writeln!(w, "rounds {}", model.n_rounds())?;
    writeln!(w, "learning_rate {:e}", model.params().learning_rate)?;
    write!(w, "priors")?;
    for p in &model.priors {
        write!(w, " {p:e}")?;
    }
    writeln!(w)?;
    for (r, round) in model.trees.iter().enumerate() {
        for (c, tree) in round.iter().enumerate() {
            writeln!(w, "rtree {r} {c} nodes {}", tree.nodes.len())?;
            for (i, node) in tree.nodes.iter().enumerate() {
                match node {
                    RNode::Split { feature, threshold, left, right } => {
                        writeln!(w, "node {i} split {feature} {threshold:e} {left} {right}")?;
                    }
                    RNode::Leaf { value } => writeln!(w, "node {i} leaf {value:e}")?,
                }
            }
        }
    }
    writeln!(w, "end")?;
    Ok(())
}

fn write_one_tree<W: Write>(w: &mut W, index: usize, tree: &DecisionTree) -> Result<()> {
    writeln!(w, "tree {index} nodes {}", tree.nodes.len())?;
    for (i, node) in tree.nodes.iter().enumerate() {
        match node {
            Node::Split { feature, threshold, left, right, n_samples, gain } => {
                // `{:e}` keeps full f64 precision and parses back exactly.
                // The trailing gain/sample fields preserve feature
                // importances across save/load; readers may omit them.
                writeln!(w, "node {i} split {feature} {threshold:e} {left} {right} {gain:e} {n_samples}")?;
            }
            Node::Leaf { class, counts } => {
                write!(w, "node {i} leaf {class}")?;
                for c in counts {
                    write!(w, " {c}")?;
                }
                writeln!(w)?;
            }
        }
    }
    Ok(())
}

/// A model loaded from a file: either kind.
#[derive(Debug, Clone)]
pub enum LoadedModel {
    /// Single decision tree.
    Tree(DecisionTree),
    /// Random forest.
    Forest(RandomForest),
}

impl LoadedModel {
    /// Predicted class.
    pub fn predict(&self, x: &[f64]) -> usize {
        match self {
            LoadedModel::Tree(t) => t.predict(x),
            LoadedModel::Forest(f) => f.predict(x),
        }
    }

    /// Nodes visited for one prediction.
    pub fn decision_path_len(&self, x: &[f64]) -> usize {
        match self {
            LoadedModel::Tree(t) => t.decision_path_len(x),
            LoadedModel::Forest(f) => f.decision_path_len(x),
        }
    }

    /// Number of features the model expects.
    pub fn n_features(&self) -> usize {
        match self {
            LoadedModel::Tree(t) => t.n_features(),
            LoadedModel::Forest(f) => f.n_features(),
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        match self {
            LoadedModel::Tree(t) => t.n_classes(),
            LoadedModel::Forest(f) => f.n_classes(),
        }
    }
}

/// Line tokenizer shared by the workspace's versioned text formats (the
/// model files here, the decision-cache exports in `morpheus-oracle`):
/// skips blank lines and `#` comments, splits on whitespace and tracks
/// 1-based line numbers for error reporting. Error representation is the
/// caller's business — this type only surfaces raw I/O failures.
pub struct LineParser<R: BufRead> {
    reader: R,
    lineno: usize,
}

impl<R: BufRead> LineParser<R> {
    /// Wraps a reader; no lines consumed yet.
    pub fn new(reader: R) -> Self {
        LineParser { reader, lineno: 0 }
    }

    /// 1-based number of the most recently tokenized line.
    pub fn lineno(&self) -> usize {
        self.lineno
    }

    /// Next non-blank, non-comment line, whitespace-tokenized; `None` at
    /// EOF.
    pub fn next_line(&mut self) -> std::io::Result<Option<Vec<String>>> {
        let mut buf = String::new();
        loop {
            buf.clear();
            let n = self.reader.read_line(&mut buf)?;
            if n == 0 {
                return Ok(None);
            }
            self.lineno += 1;
            let t = buf.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            return Ok(Some(t.split_whitespace().map(String::from).collect()));
        }
    }
}

struct Parser<R: BufRead> {
    lines: LineParser<R>,
}

impl<R: BufRead> Parser<R> {
    fn next_line(&mut self) -> Result<Option<Vec<String>>> {
        Ok(self.lines.next_line()?)
    }

    fn err(&self, msg: impl Into<String>) -> MlError {
        MlError::Parse { line: self.lines.lineno(), msg: msg.into() }
    }

    fn expect_kv(&mut self, key: &str) -> Result<String> {
        let toks = self.next_line()?.ok_or_else(|| self.err(format!("expected '{key} ...', got EOF")))?;
        if toks.len() != 2 || toks[0] != key {
            return Err(self.err(format!("expected '{key} <value>', got '{}'", toks.join(" "))));
        }
        Ok(toks[1].clone())
    }

    fn parse_usize(&self, s: &str) -> Result<usize> {
        s.parse().map_err(|_| self.err(format!("bad integer '{s}'")))
    }

    fn parse_f64(&self, s: &str) -> Result<f64> {
        let v: f64 = s.parse().map_err(|_| self.err(format!("bad float '{s}'")))?;
        if !v.is_finite() {
            return Err(self.err(format!("non-finite threshold '{s}'")));
        }
        Ok(v)
    }
}

/// Loads a model file (either kind), validating structure.
pub fn load_model<R: BufRead>(reader: R) -> Result<LoadedModel> {
    let mut p = Parser { lines: LineParser::new(reader) };

    let header = p.next_line()?.ok_or_else(|| p.err("empty model file"))?;
    if header.len() != 2 || header[0] != MAGIC {
        return Err(p.err(format!("bad header: expected '{MAGIC} {VERSION}'")));
    }
    if header[1] != VERSION {
        return Err(p.err(format!("unsupported model version '{}'", header[1])));
    }
    let kind = p.expect_kv("kind")?;
    if kind == "gbt" {
        return Err(p.err("file contains a gradient-boosted ensemble; use load_gbt"));
    }
    if kind != "tree" && kind != "forest" {
        return Err(p.err(format!("unknown model kind '{kind}'")));
    }
    let classes_str = p.expect_kv("classes")?;
    let n_classes = p.parse_usize(&classes_str)?;
    let features_str = p.expect_kv("features")?;
    let n_features = p.parse_usize(&features_str)?;
    let trees_str = p.expect_kv("trees")?;
    let n_trees = p.parse_usize(&trees_str)?;
    if n_classes == 0 || n_features == 0 || n_trees == 0 {
        return Err(p.err("classes, features and trees must be positive"));
    }
    if kind == "tree" && n_trees != 1 {
        return Err(p.err("kind 'tree' requires exactly one tree"));
    }

    let mut trees = Vec::with_capacity(n_trees);
    for expect_idx in 0..n_trees {
        let toks = p.next_line()?.ok_or_else(|| p.err("expected 'tree ...', got EOF"))?;
        if toks.len() != 4 || toks[0] != "tree" || toks[2] != "nodes" {
            return Err(p.err(format!("expected 'tree <i> nodes <n>', got '{}'", toks.join(" "))));
        }
        let idx = p.parse_usize(&toks[1])?;
        if idx != expect_idx {
            return Err(p.err(format!("tree index {idx}, expected {expect_idx}")));
        }
        let n_nodes = p.parse_usize(&toks[3])?;
        if n_nodes == 0 {
            return Err(p.err("tree must have at least one node"));
        }
        let mut nodes: Vec<Node> = Vec::with_capacity(n_nodes);
        for expect_node in 0..n_nodes {
            let toks = p.next_line()?.ok_or_else(|| p.err("expected 'node ...', got EOF"))?;
            if toks.len() < 3 || toks[0] != "node" {
                return Err(p.err(format!("expected 'node ...', got '{}'", toks.join(" "))));
            }
            let ni = p.parse_usize(&toks[1])?;
            if ni != expect_node {
                return Err(p.err(format!("node index {ni}, expected {expect_node}")));
            }
            match toks[2].as_str() {
                "split" => {
                    if toks.len() != 7 && toks.len() != 9 {
                        return Err(p.err("split node needs: feature threshold left right [gain n_samples]"));
                    }
                    let feature = p.parse_usize(&toks[3])?;
                    if feature >= n_features {
                        return Err(p.err(format!("feature {feature} out of range")));
                    }
                    let threshold = p.parse_f64(&toks[4])?;
                    let left = p.parse_usize(&toks[5])?;
                    let right = p.parse_usize(&toks[6])?;
                    if left >= n_nodes || right >= n_nodes || left <= ni || right <= ni {
                        return Err(p.err(format!("child ids ({left}, {right}) invalid for node {ni}")));
                    }
                    let (gain, n_samples) = if toks.len() == 9 {
                        (p.parse_f64(&toks[7])?, p.parse_usize(&toks[8])?)
                    } else {
                        (0.0, 0)
                    };
                    nodes.push(Node::Split { feature, threshold, left, right, n_samples, gain });
                }
                "leaf" => {
                    if toks.len() != 4 + n_classes && toks.len() != 4 {
                        // Accept either bare class or class + per-class counts.
                        if toks.len() != 4 + n_classes {
                            return Err(p.err(format!(
                                "leaf node needs class (+ optional {n_classes} counts), got {} fields",
                                toks.len() - 3
                            )));
                        }
                    }
                    let class = p.parse_usize(&toks[3])?;
                    if class >= n_classes {
                        return Err(p.err(format!("class {class} out of range")));
                    }
                    let mut counts = vec![0u32; n_classes];
                    if toks.len() == 4 + n_classes {
                        for c in 0..n_classes {
                            counts[c] = toks[4 + c]
                                .parse()
                                .map_err(|_| p.err(format!("bad count '{}'", toks[4 + c])))?;
                        }
                    } else {
                        counts[class] = 1;
                    }
                    nodes.push(Node::Leaf { class, counts });
                }
                other => return Err(p.err(format!("unknown node type '{other}'"))),
            }
        }
        trees.push(DecisionTree::from_parts(nodes, n_features, n_classes, TreeParams::default()));
    }
    let toks = p.next_line()?.ok_or_else(|| p.err("expected 'end', got EOF"))?;
    if toks != ["end"] {
        return Err(p.err(format!("expected 'end', got '{}'", toks.join(" "))));
    }

    if kind == "tree" {
        Ok(LoadedModel::Tree(trees.into_iter().next().expect("one tree")))
    } else {
        Ok(LoadedModel::Forest(RandomForest::from_parts(
            trees,
            n_features,
            n_classes,
            ForestParams { criterion: Criterion::Gini, ..ForestParams::default() },
        )))
    }
}

/// Loads a `kind gbt` model file written by [`save_gbt`], validating
/// structure the same way [`load_model`] does for trees and forests.
pub fn load_gbt<R: BufRead>(reader: R) -> Result<GradientBoostedTrees> {
    let mut p = Parser { lines: LineParser::new(reader) };

    let header = p.next_line()?.ok_or_else(|| p.err("empty model file"))?;
    if header.len() != 2 || header[0] != MAGIC {
        return Err(p.err(format!("bad header: expected '{MAGIC} {VERSION}'")));
    }
    if header[1] != VERSION {
        return Err(p.err(format!("unsupported model version '{}'", header[1])));
    }
    let kind = p.expect_kv("kind")?;
    if kind != "gbt" {
        return Err(p.err(format!("expected kind 'gbt', found '{kind}' (use load_model)")));
    }
    let n_classes = {
        let v = p.expect_kv("classes")?;
        p.parse_usize(&v)?
    };
    let n_features = {
        let v = p.expect_kv("features")?;
        p.parse_usize(&v)?
    };
    let n_rounds = {
        let v = p.expect_kv("rounds")?;
        p.parse_usize(&v)?
    };
    if n_classes == 0 || n_features == 0 || n_rounds == 0 {
        return Err(p.err("classes, features and rounds must be positive"));
    }
    let learning_rate = {
        let v = p.expect_kv("learning_rate")?;
        let lr = p.parse_f64(&v)?;
        if lr <= 0.0 {
            return Err(p.err(format!("learning rate must be positive, got {lr}")));
        }
        lr
    };
    let toks = p.next_line()?.ok_or_else(|| p.err("expected 'priors ...', got EOF"))?;
    if toks.len() != 1 + n_classes || toks[0] != "priors" {
        return Err(p.err(format!("expected 'priors' with {n_classes} values, got '{}'", toks.join(" "))));
    }
    let mut priors = Vec::with_capacity(n_classes);
    for t in &toks[1..] {
        priors.push(p.parse_f64(t)?);
    }

    let mut rounds: Vec<Vec<RegressionTree>> = Vec::with_capacity(n_rounds);
    for expect_round in 0..n_rounds {
        let mut round = Vec::with_capacity(n_classes);
        for expect_class in 0..n_classes {
            let toks = p.next_line()?.ok_or_else(|| p.err("expected 'rtree ...', got EOF"))?;
            if toks.len() != 5 || toks[0] != "rtree" || toks[3] != "nodes" {
                return Err(p.err(format!("expected 'rtree <r> <c> nodes <n>', got '{}'", toks.join(" "))));
            }
            let (r, c) = (p.parse_usize(&toks[1])?, p.parse_usize(&toks[2])?);
            if r != expect_round || c != expect_class {
                return Err(p.err(format!("rtree ({r}, {c}), expected ({expect_round}, {expect_class})")));
            }
            let n_nodes = p.parse_usize(&toks[4])?;
            if n_nodes == 0 {
                return Err(p.err("regression tree must have at least one node"));
            }
            let mut nodes: Vec<RNode> = Vec::with_capacity(n_nodes);
            for expect_node in 0..n_nodes {
                let toks = p.next_line()?.ok_or_else(|| p.err("expected 'node ...', got EOF"))?;
                if toks.len() < 3 || toks[0] != "node" {
                    return Err(p.err(format!("expected 'node ...', got '{}'", toks.join(" "))));
                }
                let ni = p.parse_usize(&toks[1])?;
                if ni != expect_node {
                    return Err(p.err(format!("node index {ni}, expected {expect_node}")));
                }
                match toks[2].as_str() {
                    "split" => {
                        if toks.len() != 7 {
                            return Err(p.err("split node needs: feature threshold left right"));
                        }
                        let feature = p.parse_usize(&toks[3])?;
                        if feature >= n_features {
                            return Err(p.err(format!("feature {feature} out of range")));
                        }
                        let threshold = p.parse_f64(&toks[4])?;
                        let left = p.parse_usize(&toks[5])?;
                        let right = p.parse_usize(&toks[6])?;
                        if left >= n_nodes || right >= n_nodes || left <= ni || right <= ni {
                            return Err(p.err(format!("child ids ({left}, {right}) invalid for node {ni}")));
                        }
                        nodes.push(RNode::Split { feature, threshold, left, right });
                    }
                    "leaf" => {
                        if toks.len() != 4 {
                            return Err(p.err("leaf node needs exactly one value"));
                        }
                        nodes.push(RNode::Leaf { value: p.parse_f64(&toks[3])? });
                    }
                    other => return Err(p.err(format!("unknown node type '{other}'"))),
                }
            }
            round.push(RegressionTree { nodes });
        }
        rounds.push(round);
    }
    let toks = p.next_line()?.ok_or_else(|| p.err("expected 'end', got EOF"))?;
    if toks != ["end"] {
        return Err(p.err(format!("expected 'end', got '{}'", toks.join(" "))));
    }

    Ok(GradientBoostedTrees::from_parts(
        rounds,
        priors,
        n_features,
        n_classes,
        GbtParams { n_rounds, learning_rate, ..GbtParams::default() },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::ForestParams;
    use crate::tree::TreeParams;
    use std::io::Cursor;

    fn toy() -> Dataset {
        let mut ds = Dataset::empty(3, 4, vec![]).unwrap();
        let mut state = 3u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for i in 0..200 {
            let t = i % 4;
            ds.push(&[t as f64 * 2.0 + rnd(), rnd() * 3.0, (t as f64) - rnd()], t).unwrap();
        }
        ds
    }

    #[test]
    fn tree_roundtrip_preserves_predictions() {
        let ds = toy();
        let tree = DecisionTree::fit(&ds, &TreeParams::default()).unwrap();
        let mut buf = Vec::new();
        save_tree(&mut buf, &tree).unwrap();
        let loaded = load_model(Cursor::new(&buf)).unwrap();
        for i in 0..ds.len() {
            assert_eq!(loaded.predict(ds.row(i)), tree.predict(ds.row(i)), "sample {i}");
            assert_eq!(loaded.decision_path_len(ds.row(i)), tree.decision_path_len(ds.row(i)));
        }
        assert!(matches!(loaded, LoadedModel::Tree(_)));
    }

    #[test]
    fn forest_roundtrip_preserves_predictions() {
        let ds = toy();
        let forest =
            RandomForest::fit(&ds, &ForestParams { n_estimators: 7, seed: 1, ..Default::default() }).unwrap();
        let mut buf = Vec::new();
        save_forest(&mut buf, &forest).unwrap();
        let loaded = load_model(Cursor::new(&buf)).unwrap();
        for i in 0..ds.len() {
            assert_eq!(loaded.predict(ds.row(i)), forest.predict(ds.row(i)), "sample {i}");
        }
        assert_eq!(loaded.n_features(), 3);
        assert_eq!(loaded.n_classes(), 4);
    }

    #[test]
    fn gbt_roundtrip_preserves_scores_and_paths() {
        let ds = toy();
        let model = GradientBoostedTrees::fit(&ds, &GbtParams { n_rounds: 6, ..Default::default() }).unwrap();
        let mut buf = Vec::new();
        save_gbt(&mut buf, &model).unwrap();
        let loaded = load_gbt(Cursor::new(&buf)).unwrap();
        assert_eq!(loaded.n_features(), model.n_features());
        assert_eq!(loaded.n_classes(), model.n_classes());
        assert_eq!(loaded.n_rounds(), model.n_rounds());
        for i in 0..ds.len() {
            assert_eq!(loaded.decision_scores(ds.row(i)), model.decision_scores(ds.row(i)), "sample {i}");
            assert_eq!(loaded.predict(ds.row(i)), model.predict(ds.row(i)));
            assert_eq!(loaded.decision_path_len(ds.row(i)), model.decision_path_len(ds.row(i)));
        }
        // Serialization is byte-stable: saving the loaded model reproduces
        // the file exactly.
        let mut buf2 = Vec::new();
        save_gbt(&mut buf2, &loaded).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn gbt_loader_rejects_wrong_kind_and_malformed_files() {
        let ds = toy();
        let forest = RandomForest::fit(&ds, &ForestParams { n_estimators: 3, ..Default::default() }).unwrap();
        let mut forest_buf = Vec::new();
        save_forest(&mut forest_buf, &forest).unwrap();
        assert!(load_gbt(Cursor::new(&forest_buf)).is_err(), "forest file must be rejected");

        let model = GradientBoostedTrees::fit(&ds, &GbtParams { n_rounds: 2, ..Default::default() }).unwrap();
        let mut gbt_buf = Vec::new();
        save_gbt(&mut gbt_buf, &model).unwrap();
        let err = load_model(Cursor::new(&gbt_buf)).unwrap_err();
        assert!(err.to_string().contains("load_gbt"), "{err}");

        let header =
            "morpheus-oracle-model v1\nkind gbt\nclasses 2\nfeatures 1\nrounds 1\nlearning_rate 1e-1\n";
        for bad in [
            "".to_string(),
            "morpheus-oracle-model v1\nkind gbt\nclasses 0\nfeatures 1\nrounds 1\n".to_string(),
            format!("{header}priors 0.0\nend\n"),
            format!("{header}priors -0.7 -0.7\nrtree 0 0 nodes 1\nnode 0 leaf 1.0\n"),
            format!("{header}priors -0.7 -0.7\nrtree 0 0 nodes 1\nnode 0 split 0 1.0 0 0\nend\n"),
            format!("{header}priors -0.7 -0.7\nrtree 0 0 nodes 1\nnode 0 leaf 1.0\nrtree 0 0 nodes 1\nnode 0 leaf 1.0\nend\n"),
        ] {
            assert!(load_gbt(Cursor::new(bad.as_bytes())).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn rejects_malformed_files() {
        let cases: Vec<(&str, &str)> = vec![
            ("", "empty"),
            ("wrong-magic v1\n", "bad magic"),
            ("morpheus-oracle-model v9\n", "bad version"),
            ("morpheus-oracle-model v1\nkind blob\n", "bad kind"),
            (
                "morpheus-oracle-model v1\nkind tree\nclasses 2\nfeatures 2\ntrees 2\n",
                "tree kind with 2 trees",
            ),
            (
                "morpheus-oracle-model v1\nkind tree\nclasses 2\nfeatures 2\ntrees 1\ntree 0 nodes 1\nnode 0 split 0 1.0 0 0\nend\n",
                "self-referencing children",
            ),
            (
                "morpheus-oracle-model v1\nkind tree\nclasses 2\nfeatures 2\ntrees 1\ntree 0 nodes 1\nnode 0 split 5 1.0 1 2\nend\n",
                "feature out of range",
            ),
            (
                "morpheus-oracle-model v1\nkind tree\nclasses 2\nfeatures 2\ntrees 1\ntree 0 nodes 1\nnode 0 leaf 7\nend\n",
                "class out of range",
            ),
            (
                "morpheus-oracle-model v1\nkind tree\nclasses 2\nfeatures 2\ntrees 1\ntree 0 nodes 1\nnode 0 leaf 0 1 2\n",
                "missing end",
            ),
        ];
        for (text, why) in cases {
            assert!(load_model(Cursor::new(text)).is_err(), "expected failure: {why}");
        }
    }

    #[test]
    fn comments_and_blank_lines_tolerated() {
        let text = "# a comment\n\nmorpheus-oracle-model v1\nkind tree\nclasses 2\nfeatures 1\ntrees 1\n# tree follows\ntree 0 nodes 3\nnode 0 split 0 5e-1 1 2\nnode 1 leaf 0 3 0\nnode 2 leaf 1 0 4\nend\n";
        let m = load_model(Cursor::new(text)).unwrap();
        assert_eq!(m.predict(&[0.2]), 0);
        assert_eq!(m.predict(&[0.9]), 1);
        assert_eq!(m.decision_path_len(&[0.9]), 2);
    }

    #[test]
    fn bare_leaf_without_counts_accepted() {
        let text = "morpheus-oracle-model v1\nkind tree\nclasses 2\nfeatures 1\ntrees 1\ntree 0 nodes 1\nnode 0 leaf 1\nend\n";
        let m = load_model(Cursor::new(text)).unwrap();
        assert_eq!(m.predict(&[0.0]), 1);
    }
}
