//! From-scratch machine-learning stack for format selection (§V).
//!
//! The paper trains scikit-learn decision trees and random forests; this
//! crate re-implements the pieces the pipeline needs, natively:
//!
//! * [`DecisionTree`] — CART multi-class classifier (gini/entropy, depth,
//!   leaf-size and feature-subsampling controls);
//! * [`RandomForest`] — bootstrap-aggregated trees with majority voting
//!   (§VI-A) and parallel fitting;
//! * [`GradientBoostedTrees`] — the paper's "further work" extension (§IX);
//! * [`cv`] — stratified k-fold cross-validation (§VII-D uses 5-fold);
//! * [`grid`] — exhaustive grid search over the Table III hyperparameter
//!   space;
//! * [`metrics`] — accuracy and *balanced accuracy*, the metric the paper
//!   argues is the honest one under class imbalance (§VII-B);
//! * [`serialize`] — the versioned text model format the Oracle tuners load
//!   at runtime ("extract the ML model in a file", §III-A).
//!
//! Determinism: every stochastic choice (bootstrap, feature subsets, fold
//! assignment) derives from caller-provided seeds, so the full training
//! pipeline is reproducible.

pub mod cv;
pub mod dataset;
pub mod forest;
pub mod gbt;
pub mod grid;
pub mod metrics;
pub mod serialize;
pub mod tree;

pub use dataset::Dataset;
pub use forest::{ForestParams, RandomForest};
pub use gbt::{GbtParams, GradientBoostedTrees};
pub use grid::{ForestGrid, GridSearchOutcome, Scoring, TreeGrid};
pub use tree::{Criterion, DecisionTree, TreeParams};

/// Errors produced by model training, evaluation and (de)serialisation.
#[derive(Debug)]
pub enum MlError {
    /// Dataset shape or content invalid for the requested operation.
    InvalidData(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Model file parse failure.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        msg: String,
    },
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::InvalidData(m) => write!(f, "invalid data: {m}"),
            MlError::Io(e) => write!(f, "i/o error: {e}"),
            MlError::Parse { line, msg } => write!(f, "model parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}

impl From<std::io::Error> for MlError {
    fn from(e: std::io::Error) -> Self {
        MlError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MlError>;
