//! Stratified k-fold cross-validation.
//!
//! "To account for overfitting and ensure the model generalizes well on
//! unseen data we perform a 5-fold CV on the training set and iteratively
//! fit the model 5 times each time training on 4 folds and validating on
//! the 5th" (§VII-D). Stratification keeps the rare formats represented in
//! every fold, which matters under the paper's class imbalance.

use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministic stratified k-fold assignment: returns `k` pairs of
/// `(train_indices, validation_indices)` covering the dataset.
///
/// Samples of each class are shuffled with `seed` and dealt round-robin
/// into folds, so every fold's class mix approximates the global one.
pub fn stratified_kfold(ds: &Dataset, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(ds.len() >= k, "need at least k samples");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut fold_of = vec![0usize; ds.len()];
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); ds.n_classes()];
    for (i, &t) in ds.targets().iter().enumerate() {
        by_class[t].push(i);
    }
    let mut dealer = 0usize;
    for mut idxs in by_class {
        idxs.shuffle(&mut rng);
        for i in idxs {
            fold_of[i] = dealer % k;
            dealer += 1;
        }
    }
    (0..k)
        .map(|fold| {
            let mut train = Vec::new();
            let mut val = Vec::new();
            for (i, &f) in fold_of.iter().enumerate() {
                if f == fold {
                    val.push(i);
                } else {
                    train.push(i);
                }
            }
            (train, val)
        })
        .collect()
}

/// Mean validation score of `fit_score` across the folds. `fit_score`
/// receives `(train, validation)` datasets and returns the fold's score.
pub fn cross_val_score<F>(ds: &Dataset, k: usize, seed: u64, mut fit_score: F) -> f64
where
    F: FnMut(&Dataset, &Dataset) -> f64,
{
    let folds = stratified_kfold(ds, k, seed);
    let mut total = 0.0;
    for (train_idx, val_idx) in &folds {
        let train = ds.subset(train_idx);
        let val = ds.subset(val_idx);
        total += fit_score(&train, &val);
    }
    total / folds.len() as f64
}

/// Single stratified holdout evaluation: splits `ds` once (seeded,
/// deterministic), hands `fit_score` the `(train, holdout)` pair and
/// returns its score. The one-shot counterpart of [`cross_val_score`] for
/// callers that need the *same* holdout to compare several models (e.g.
/// a retrained candidate against the incumbent).
pub fn holdout_score<F>(ds: &Dataset, test_fraction: f64, seed: u64, mut fit_score: F) -> f64
where
    F: FnMut(&Dataset, &Dataset) -> f64,
{
    let (train, holdout) = ds.stratified_split(test_fraction, seed);
    fit_score(&train, &holdout)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut ds = Dataset::empty(1, 3, vec![]).unwrap();
        for i in 0..n {
            // Class mix 60/30/10.
            let t = match i % 10 {
                0..=5 => 0,
                6..=8 => 1,
                _ => 2,
            };
            ds.push(&[i as f64], t).unwrap();
        }
        ds
    }

    #[test]
    fn folds_partition_dataset() {
        let ds = toy(100);
        let folds = stratified_kfold(&ds, 5, 1);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; 100];
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 100);
            for &i in val {
                seen[i] += 1;
            }
            // No overlap.
            for &i in val {
                assert!(!train.contains(&i));
            }
        }
        // Every sample validates exactly once.
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn folds_are_stratified() {
        let ds = toy(100);
        for (_, val) in stratified_kfold(&ds, 5, 2) {
            let sub = ds.subset(&val);
            let counts = sub.class_counts();
            assert!((10..=14).contains(&counts[0]), "class 0 count {:?}", counts);
            assert!((4..=8).contains(&counts[1]));
            assert!((1..=3).contains(&counts[2]));
        }
    }

    #[test]
    fn deterministic() {
        let ds = toy(50);
        assert_eq!(stratified_kfold(&ds, 5, 9), stratified_kfold(&ds, 5, 9));
        assert_ne!(stratified_kfold(&ds, 5, 9), stratified_kfold(&ds, 5, 10));
    }

    #[test]
    fn cross_val_runs_k_times() {
        let ds = toy(40);
        let mut calls = 0;
        let score = cross_val_score(&ds, 4, 3, |train, val| {
            calls += 1;
            assert!(train.len() > val.len());
            1.0
        });
        assert_eq!(calls, 4);
        assert_eq!(score, 1.0);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn k_too_small_panics() {
        stratified_kfold(&toy(10), 1, 0);
    }

    #[test]
    fn holdout_score_is_deterministic_and_stratified() {
        let ds = toy(40);
        let mut sizes = (0, 0);
        let s1 = holdout_score(&ds, 0.25, 5, |train, val| {
            sizes = (train.len(), val.len());
            assert!(train.class_counts().iter().all(|&c| c > 0));
            assert!(val.class_counts().iter().all(|&c| c > 0));
            val.len() as f64
        });
        assert_eq!(sizes.0 + sizes.1, 40);
        let s2 = holdout_score(&ds, 0.25, 5, |_, val| val.len() as f64);
        assert_eq!(s1, s2);
    }
}
