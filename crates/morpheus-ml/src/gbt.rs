//! Gradient-boosted decision trees — the paper's "further work" extension.
//!
//! §IX: "we will explore ways of further improving the accuracy of our
//! models either through balancing the dataset or other ML methods such as
//! gradient-boosted decision trees." This module implements multi-class
//! boosting with the softmax (multinomial deviance) loss: each round fits
//! one shallow regression tree per class on the gradient residuals and
//! applies a Newton-style leaf update.

use crate::dataset::Dataset;
use crate::{MlError, Result};

/// Hyperparameters of [`GradientBoostedTrees`].
#[derive(Debug, Clone, PartialEq)]
pub struct GbtParams {
    /// Boosting rounds (each fits `n_classes` regression trees).
    pub n_rounds: usize,
    /// Shrinkage applied to every leaf update.
    pub learning_rate: f64,
    /// Depth of the per-round regression trees.
    pub max_depth: usize,
    /// Minimum samples per regression leaf.
    pub min_samples_leaf: usize,
}

impl Default for GbtParams {
    fn default() -> Self {
        GbtParams { n_rounds: 50, learning_rate: 0.1, max_depth: 4, min_samples_leaf: 3 }
    }
}

/// Node of a regression tree (flattened). `pub(crate)` so the
/// [`crate::serialize`] module can round-trip fitted ensembles through the
/// model-file format.
#[derive(Debug, Clone)]
pub(crate) enum RNode {
    Split { feature: usize, threshold: f64, left: usize, right: usize },
    Leaf { value: f64 },
}

/// A shallow regression tree fitted to residuals (squared-error splits,
/// Newton leaf values supplied by the caller).
#[derive(Debug, Clone)]
pub(crate) struct RegressionTree {
    pub(crate) nodes: Vec<RNode>,
}

struct RegBuilder<'a> {
    ds: &'a Dataset,
    gradients: &'a [f64],
    hessians: &'a [f64],
    max_depth: usize,
    min_samples_leaf: usize,
    nodes: Vec<RNode>,
}

impl<'a> RegBuilder<'a> {
    fn leaf_value(&self, idx: &[usize]) -> f64 {
        // Newton step: sum(g) / sum(h), guarded against tiny curvature.
        let g: f64 = idx.iter().map(|&i| self.gradients[i]).sum();
        let h: f64 = idx.iter().map(|&i| self.hessians[i]).sum();
        if h.abs() < 1e-12 {
            0.0
        } else {
            (g / h).clamp(-4.0, 4.0)
        }
    }

    fn build(&mut self, idx: &mut [usize], depth: usize) -> usize {
        let n = idx.len();
        if depth >= self.max_depth || n < 2 * self.min_samples_leaf {
            let value = self.leaf_value(idx);
            self.nodes.push(RNode::Leaf { value });
            return self.nodes.len() - 1;
        }
        // Best squared-error split on the gradient targets.
        let total_g: f64 = idx.iter().map(|&i| self.gradients[i]).sum();
        let mut best: Option<(usize, f64, f64)> = None; // feature, threshold, score
        let mut sorted = idx.to_vec();
        for f in 0..self.ds.n_features() {
            sorted.sort_unstable_by(|&a, &b| {
                self.ds.value(a, f).partial_cmp(&self.ds.value(b, f)).expect("finite features")
            });
            let mut left_g = 0.0;
            for s in 1..n {
                left_g += self.gradients[sorted[s - 1]];
                let v_prev = self.ds.value(sorted[s - 1], f);
                let v_next = self.ds.value(sorted[s], f);
                if v_prev == v_next || s < self.min_samples_leaf || n - s < self.min_samples_leaf {
                    continue;
                }
                // Variance-reduction proxy: maximise sum of squared child
                // means weighted by size.
                let right_g = total_g - left_g;
                let score = left_g * left_g / s as f64 + right_g * right_g / (n - s) as f64;
                if best.is_none_or(|(_, _, b)| score > b) {
                    best = Some((f, v_prev + 0.5 * (v_next - v_prev), score));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            let value = self.leaf_value(idx);
            self.nodes.push(RNode::Leaf { value });
            return self.nodes.len() - 1;
        };
        let mut l = 0usize;
        let mut r = idx.len();
        while l < r {
            if self.ds.value(idx[l], feature) <= threshold {
                l += 1;
            } else {
                r -= 1;
                idx.swap(l, r);
            }
        }
        if l == 0 || l == n {
            let value = self.leaf_value(idx);
            self.nodes.push(RNode::Leaf { value });
            return self.nodes.len() - 1;
        }
        let me = self.nodes.len();
        self.nodes.push(RNode::Leaf { value: 0.0 });
        let (left_idx, right_idx) = idx.split_at_mut(l);
        let left = self.build(left_idx, depth + 1);
        let right = self.build(right_idx, depth + 1);
        self.nodes[me] = RNode::Split { feature, threshold, left, right };
        me
    }
}

impl RegressionTree {
    fn predict(&self, x: &[f64], ds_features: usize) -> f64 {
        debug_assert_eq!(x.len(), ds_features);
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                RNode::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { *left } else { *right };
                }
                RNode::Leaf { value } => return *value,
            }
        }
    }

    /// Nodes visited for one prediction, counting the leaf (the same
    /// convention as [`crate::DecisionTree::decision_path_len`]).
    fn path_len(&self, x: &[f64]) -> usize {
        let mut node = 0usize;
        let mut visited = 1usize;
        loop {
            match &self.nodes[node] {
                RNode::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { *left } else { *right };
                    visited += 1;
                }
                RNode::Leaf { .. } => return visited,
            }
        }
    }
}

/// A fitted multi-class gradient-boosted tree ensemble.
#[derive(Debug, Clone)]
pub struct GradientBoostedTrees {
    /// `rounds x n_classes` regression trees.
    pub(crate) trees: Vec<Vec<RegressionTree>>,
    /// Per-class prior (log of class frequency).
    pub(crate) priors: Vec<f64>,
    pub(crate) n_features: usize,
    pub(crate) n_classes: usize,
    pub(crate) params: GbtParams,
}

impl GradientBoostedTrees {
    /// Fits the ensemble with softmax boosting.
    pub fn fit(ds: &Dataset, params: &GbtParams) -> Result<Self> {
        if ds.is_empty() {
            return Err(MlError::InvalidData("cannot fit on an empty dataset".into()));
        }
        if params.n_rounds == 0 {
            return Err(MlError::InvalidData("n_rounds must be positive".into()));
        }
        let n = ds.len();
        let k = ds.n_classes();
        let counts = ds.class_counts();
        let priors: Vec<f64> = counts.iter().map(|&c| (((c as f64) + 1.0) / ((n + k) as f64)).ln()).collect();

        // Raw scores F[i][c], initialised to the priors.
        let mut scores = vec![0.0f64; n * k];
        for i in 0..n {
            scores[i * k..(i + 1) * k].copy_from_slice(&priors);
        }

        let mut all_trees = Vec::with_capacity(params.n_rounds);
        let mut grad = vec![0.0f64; n];
        let mut hess = vec![0.0f64; n];
        for _round in 0..params.n_rounds {
            // Softmax probabilities per sample.
            let mut probs = vec![0.0f64; n * k];
            for i in 0..n {
                let row = &scores[i * k..(i + 1) * k];
                let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut z = 0.0;
                for c in 0..k {
                    let e = (row[c] - m).exp();
                    probs[i * k + c] = e;
                    z += e;
                }
                for c in 0..k {
                    probs[i * k + c] /= z;
                }
            }
            let mut round_trees = Vec::with_capacity(k);
            for c in 0..k {
                for i in 0..n {
                    let y = f64::from(ds.target(i) == c);
                    let p = probs[i * k + c];
                    grad[i] = y - p;
                    hess[i] = (p * (1.0 - p)).max(1e-6);
                }
                let mut builder = RegBuilder {
                    ds,
                    gradients: &grad,
                    hessians: &hess,
                    max_depth: params.max_depth,
                    min_samples_leaf: params.min_samples_leaf,
                    nodes: Vec::new(),
                };
                let mut idx: Vec<usize> = (0..n).collect();
                builder.build(&mut idx, 0);
                let tree = RegressionTree { nodes: builder.nodes };
                for i in 0..n {
                    scores[i * k + c] += params.learning_rate * tree.predict(ds.row(i), ds.n_features());
                }
                round_trees.push(tree);
            }
            all_trees.push(round_trees);
        }
        Ok(GradientBoostedTrees {
            trees: all_trees,
            priors,
            n_features: ds.n_features(),
            n_classes: k,
            params: params.clone(),
        })
    }

    /// Raw (log-odds) scores for one feature vector.
    pub fn decision_scores(&self, x: &[f64]) -> Vec<f64> {
        let mut scores = self.priors.clone();
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                scores[c] += self.params.learning_rate * tree.predict(x, self.n_features);
            }
        }
        scores
    }

    /// Predicted class (argmax of scores).
    pub fn predict(&self, x: &[f64]) -> usize {
        let scores = self.decision_scores(x);
        let mut best = 0;
        for (c, &s) in scores.iter().enumerate() {
            if s > scores[best] {
                best = c;
            }
        }
        best
    }

    /// Predictions for every row of a dataset.
    pub fn predict_dataset(&self, ds: &Dataset) -> Vec<usize> {
        (0..ds.len()).map(|i| self.predict(ds.row(i))).collect()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of features the ensemble expects.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Boosting rounds held (each contributes `n_classes` regression
    /// trees to a prediction).
    pub fn n_rounds(&self) -> usize {
        self.trees.len()
    }

    /// Total regression-tree nodes visited for one prediction — the
    /// ensemble analogue of [`crate::DecisionTree::decision_path_len`],
    /// used by prediction-cost models.
    pub fn decision_path_len(&self, x: &[f64]) -> usize {
        self.trees.iter().flatten().map(|t| t.path_len(x)).sum()
    }

    /// The hyperparameters used to fit this ensemble.
    pub fn params(&self) -> &GbtParams {
        &self.params
    }

    /// Reassembles an ensemble from deserialized parts (the inverse of
    /// [`crate::serialize::save_gbt`]). Only the learning rate of `params`
    /// affects predictions; the remaining hyperparameters are metadata.
    pub(crate) fn from_parts(
        trees: Vec<Vec<RegressionTree>>,
        priors: Vec<f64>,
        n_features: usize,
        n_classes: usize,
        params: GbtParams,
    ) -> Self {
        GradientBoostedTrees { trees, priors, n_features, n_classes, params }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_class(n: usize) -> Dataset {
        let mut ds = Dataset::empty(2, 3, vec![]).unwrap();
        let mut state = 42u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for i in 0..n {
            let t = i % 3;
            let (cx, cy) = match t {
                0 => (0.0, 0.0),
                1 => (3.0, 0.0),
                _ => (1.5, 3.0),
            };
            ds.push(&[cx + rnd(), cy + rnd()], t).unwrap();
        }
        ds
    }

    #[test]
    fn learns_three_clusters() {
        let ds = three_class(150);
        let model =
            GradientBoostedTrees::fit(&ds, &GbtParams { n_rounds: 20, ..Default::default() }).unwrap();
        let preds = model.predict_dataset(&ds);
        let acc = preds.iter().zip(ds.targets()).filter(|(p, t)| p == t).count() as f64 / 150.0;
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn more_rounds_do_not_hurt_train_fit() {
        let ds = three_class(90);
        let acc = |rounds: usize| {
            let m = GradientBoostedTrees::fit(&ds, &GbtParams { n_rounds: rounds, ..Default::default() })
                .unwrap();
            let p = m.predict_dataset(&ds);
            p.iter().zip(ds.targets()).filter(|(a, b)| a == b).count() as f64 / 90.0
        };
        assert!(acc(30) >= acc(2) - 1e-9);
    }

    #[test]
    fn imbalanced_priors_predict_majority_with_no_signal() {
        // Constant features, imbalanced classes: prediction falls back to
        // the prior (majority class).
        let mut ds = Dataset::empty(1, 2, vec![]).unwrap();
        for i in 0..20 {
            ds.push(&[1.0], usize::from(i >= 15)).unwrap();
        }
        let model = GradientBoostedTrees::fit(&ds, &GbtParams { n_rounds: 3, ..Default::default() }).unwrap();
        assert_eq!(model.predict(&[1.0]), 0);
    }

    #[test]
    fn rejects_bad_input() {
        let empty = Dataset::empty(2, 2, vec![]).unwrap();
        assert!(GradientBoostedTrees::fit(&empty, &GbtParams::default()).is_err());
        let ds = three_class(9);
        assert!(GradientBoostedTrees::fit(&ds, &GbtParams { n_rounds: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn scores_have_class_dimension() {
        let ds = three_class(30);
        let model = GradientBoostedTrees::fit(&ds, &GbtParams { n_rounds: 2, ..Default::default() }).unwrap();
        assert_eq!(model.decision_scores(ds.row(0)).len(), 3);
    }
}
