//! Classification metrics.
//!
//! The paper reports both plain accuracy and *balanced accuracy* —
//! "calculated as the average of the proportion of correctly classified
//! samples of each class individually" (§VII-D) — because the format
//! distribution is heavily imbalanced toward CSR (§VII-B).

/// Fraction of predictions matching the truth.
///
/// # Panics
/// If the slices differ in length or are empty.
pub fn accuracy(y_true: &[usize], y_pred: &[usize]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    assert!(!y_true.is_empty(), "empty evaluation set");
    let correct = y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count();
    correct as f64 / y_true.len() as f64
}

/// Per-class recall, `None` for classes absent from `y_true`.
pub fn per_class_recall(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> Vec<Option<f64>> {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    let mut support = vec![0usize; n_classes];
    let mut hits = vec![0usize; n_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        support[t] += 1;
        if t == p {
            hits[t] += 1;
        }
    }
    (0..n_classes)
        .map(|c| if support[c] > 0 { Some(hits[c] as f64 / support[c] as f64) } else { None })
        .collect()
}

/// Mean of the per-class recalls over classes present in `y_true`.
pub fn balanced_accuracy(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> f64 {
    let recalls = per_class_recall(y_true, y_pred, n_classes);
    let present: Vec<f64> = recalls.into_iter().flatten().collect();
    assert!(!present.is_empty(), "no classes present");
    present.iter().sum::<f64>() / present.len() as f64
}

/// Row-major confusion matrix: `m[t][p]` counts samples of true class `t`
/// predicted as `p`.
pub fn confusion_matrix(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        m[t][p] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[2, 2], &[2, 2]), 1.0);
    }

    #[test]
    fn balanced_accuracy_penalises_majority_guessing() {
        // 9 of class 0, 1 of class 1; always predicting 0 gives 90%
        // accuracy but only 50% balanced accuracy.
        let y_true = [0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let y_pred = [0; 10];
        assert_eq!(accuracy(&y_true, &y_pred), 0.9);
        assert_eq!(balanced_accuracy(&y_true, &y_pred, 2), 0.5);
    }

    #[test]
    fn balanced_accuracy_ignores_absent_classes() {
        let y_true = [0, 0, 1, 1];
        let y_pred = [0, 0, 1, 0];
        // Classes 0 (recall 1.0) and 1 (recall 0.5) present; class 2 absent.
        assert!((balanced_accuracy(&y_true, &y_pred, 3) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn per_class_recall_values() {
        let r = per_class_recall(&[0, 0, 1], &[0, 1, 1], 3);
        assert_eq!(r[0], Some(0.5));
        assert_eq!(r[1], Some(1.0));
        assert_eq!(r[2], None);
    }

    #[test]
    fn confusion_matrix_counts() {
        let m = confusion_matrix(&[0, 0, 1, 1, 1], &[0, 1, 1, 1, 0], 2);
        assert_eq!(m, vec![vec![1, 1], vec![1, 2]]);
        // Row sums equal class supports.
        assert_eq!(m[0].iter().sum::<usize>(), 2);
        assert_eq!(m[1].iter().sum::<usize>(), 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        accuracy(&[0], &[0, 1]);
    }
}
