//! Property-based tests of the ML stack: model behaviour and serialisation
//! under randomly generated datasets and trees.

use morpheus_ml::serialize::{load_model, save_forest, save_tree, LoadedModel};
use morpheus_ml::{Criterion, Dataset, DecisionTree, ForestParams, RandomForest, TreeParams};
use proptest::prelude::*;
use std::io::Cursor;

/// Strategy: a random dataset with 2-4 classes, 2-5 features, 10-80 samples.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..5, 2usize..6, 10usize..80).prop_flat_map(|(n_classes, n_features, n_samples)| {
        let row = proptest::collection::vec(-1000i32..1000, n_features);
        proptest::collection::vec((row, 0..n_classes), n_samples).prop_map(move |samples| {
            let mut ds = Dataset::empty(n_features, n_classes, vec![]).unwrap();
            for (row, target) in samples {
                let row_f: Vec<f64> = row.iter().map(|&v| f64::from(v) / 7.0).collect();
                ds.push(&row_f, target).unwrap();
            }
            ds
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Predictions always land in the class range, for any fitted tree.
    #[test]
    fn tree_predictions_in_range(ds in arb_dataset(), probe in proptest::collection::vec(-2000i32..2000, 2..6)) {
        let tree = DecisionTree::fit(&ds, &TreeParams { max_depth: Some(8), ..Default::default() }).unwrap();
        let mut x: Vec<f64> = probe.iter().map(|&v| f64::from(v) / 3.0).collect();
        x.resize(ds.n_features(), 0.0);
        let pred = tree.predict(&x);
        prop_assert!(pred < ds.n_classes());
        prop_assert!(tree.decision_path_len(&x) >= 1);
        prop_assert!(tree.depth() <= 8);
    }

    /// Training accuracy of an unrestricted tree is at least the majority
    /// share (a tree can always do as well as the root-leaf prediction).
    #[test]
    fn tree_never_worse_than_majority(ds in arb_dataset()) {
        let tree = DecisionTree::fit(&ds, &TreeParams::default()).unwrap();
        let preds = tree.predict_dataset(&ds);
        let correct = preds.iter().zip(ds.targets()).filter(|(p, t)| p == t).count();
        let majority = ds.class_counts().into_iter().max().unwrap();
        prop_assert!(correct >= majority, "tree {} vs majority {}", correct, majority);
    }

    /// Tree save -> load -> save produces identical bytes (canonical form)
    /// and identical predictions.
    #[test]
    fn tree_serialisation_canonical(ds in arb_dataset()) {
        let tree = DecisionTree::fit(&ds, &TreeParams { max_depth: Some(6), ..Default::default() }).unwrap();
        let mut first = Vec::new();
        save_tree(&mut first, &tree).unwrap();
        let loaded = match load_model(Cursor::new(&first)).unwrap() {
            LoadedModel::Tree(t) => t,
            LoadedModel::Forest(_) => unreachable!("saved a tree"),
        };
        let mut second = Vec::new();
        save_tree(&mut second, &loaded).unwrap();
        prop_assert_eq!(&first, &second, "serialisation must be canonical");
        for i in 0..ds.len() {
            prop_assert_eq!(loaded.predict(ds.row(i)), tree.predict(ds.row(i)));
        }
    }

    /// Forest votes agree with a manual tally of its trees' predictions.
    #[test]
    fn forest_vote_matches_manual_tally(ds in arb_dataset()) {
        let forest = RandomForest::fit(
            &ds,
            &ForestParams { n_estimators: 7, max_depth: Some(5), criterion: Criterion::Entropy, ..Default::default() },
        )
        .unwrap();
        for i in 0..ds.len().min(10) {
            let x = ds.row(i);
            let mut votes = vec![0usize; ds.n_classes()];
            for t in forest.trees() {
                votes[t.predict(x)] += 1;
            }
            let manual = votes.iter().enumerate().max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0))).unwrap().0;
            prop_assert_eq!(forest.predict(x), manual);
        }
    }

    /// Forest serialisation round-trips predictions (spot-checked).
    #[test]
    fn forest_serialisation_roundtrip(ds in arb_dataset()) {
        let forest = RandomForest::fit(
            &ds,
            &ForestParams { n_estimators: 4, max_depth: Some(5), ..Default::default() },
        )
        .unwrap();
        let mut buf = Vec::new();
        save_forest(&mut buf, &forest).unwrap();
        let loaded = load_model(Cursor::new(&buf)).unwrap();
        for i in 0..ds.len().min(10) {
            prop_assert_eq!(loaded.predict(ds.row(i)), forest.predict(ds.row(i)));
        }
    }
}
