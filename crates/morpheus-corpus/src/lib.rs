//! Synthetic SuiteSparse stand-in (§III-A, §VII-A).
//!
//! The paper trains on "approximately 2200 real-valued, square matrices of
//! varying sizes, sparsity patterns and different application domains,
//! available from the SuiteSparse Collection". That collection cannot be
//! bundled here, so this crate generates a deterministic corpus spanning the
//! same structural regions:
//!
//! * regular stencils (2D/3D Poisson, 9-point) — the DIA-friendly region;
//! * banded systems with full or partially filled bands;
//! * FEM-like block matrices with irregular diagonal structure;
//! * uniform-degree random matrices (ELL-friendly);
//! * Erdős–Rényi random scatter;
//! * power-law / scale-free graphs, including `mawi`-like hub rows
//!   (the CSR-on-GPU pathology of §VII-C);
//! * hypersparse matrices with many empty rows (COO-friendly);
//! * dominant-diagonal + scatter mixtures (HDC-friendly);
//! * block-diagonal matrices and a few degenerate shapes.
//!
//! Every matrix derives from a `(corpus seed, index)` pair; regenerating the
//! corpus is bit-reproducible. Real SuiteSparse `.mtx` files can be mixed in
//! via `morpheus::io` if available.

pub mod corpus;
pub mod gen;

pub use corpus::{default_corpus, small_corpus, CorpusEntry, CorpusSpec, MatrixClass};
