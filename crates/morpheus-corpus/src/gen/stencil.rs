//! Regular stencil matrices from structured-grid PDE discretisations —
//! full-diagonal patterns where DIA shines.

use morpheus::{CooBuilder, CooMatrix};

/// 5-point 2D Poisson stencil on an `nx x ny` grid (matrix is
/// `nx*ny x nx*ny`, SPD, tridiagonal-with-fringes).
pub fn poisson2d(nx: usize, ny: usize) -> CooMatrix<f64> {
    let n = nx * ny;
    let mut b = CooBuilder::with_capacity(n, n, 5 * n);
    for y in 0..ny {
        for x in 0..nx {
            let i = y * nx + x;
            b.push(i, i, 4.0).expect("in bounds");
            if x > 0 {
                b.push(i, i - 1, -1.0).expect("in bounds");
            }
            if x + 1 < nx {
                b.push(i, i + 1, -1.0).expect("in bounds");
            }
            if y > 0 {
                b.push(i, i - nx, -1.0).expect("in bounds");
            }
            if y + 1 < ny {
                b.push(i, i + nx, -1.0).expect("in bounds");
            }
        }
    }
    b.build()
}

/// 7-point 3D Poisson stencil on an `nx x ny x nz` grid.
pub fn poisson3d(nx: usize, ny: usize, nz: usize) -> CooMatrix<f64> {
    let n = nx * ny * nz;
    let mut b = CooBuilder::with_capacity(n, n, 7 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = (z * ny + y) * nx + x;
                b.push(i, i, 6.0).expect("in bounds");
                if x > 0 {
                    b.push(i, i - 1, -1.0).expect("in bounds");
                }
                if x + 1 < nx {
                    b.push(i, i + 1, -1.0).expect("in bounds");
                }
                if y > 0 {
                    b.push(i, i - nx, -1.0).expect("in bounds");
                }
                if y + 1 < ny {
                    b.push(i, i + nx, -1.0).expect("in bounds");
                }
                if z > 0 {
                    b.push(i, i - nx * ny, -1.0).expect("in bounds");
                }
                if z + 1 < nz {
                    b.push(i, i + nx * ny, -1.0).expect("in bounds");
                }
            }
        }
    }
    b.build()
}

/// 9-point 2D stencil (adds the diagonal neighbours).
pub fn stencil9(nx: usize, ny: usize) -> CooMatrix<f64> {
    let n = nx * ny;
    let mut b = CooBuilder::with_capacity(n, n, 9 * n);
    for y in 0..ny {
        for x in 0..nx {
            let i = y * nx + x;
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let (xx, yy) = (x as isize + dx, y as isize + dy);
                    if xx < 0 || yy < 0 || xx >= nx as isize || yy >= ny as isize {
                        continue;
                    }
                    let j = (yy as usize) * nx + xx as usize;
                    let v = if i == j { 8.0 } else { -1.0 };
                    b.push(i, j, v).expect("in bounds");
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::test_util::check_valid;
    use morpheus::stats::stats_coo;

    #[test]
    fn poisson2d_structure() {
        let m = poisson2d(10, 10);
        check_valid(&m);
        assert_eq!(m.nrows(), 100);
        // Interior rows have 5 entries; 5 diagonals total.
        let s = stats_coo(&m, 0.2);
        assert_eq!(s.row_nnz_max, 5);
        assert_eq!(s.ndiags, 5);
        assert_eq!(s.ntrue_diags, 5);
        assert_eq!(s.nnz, 5 * 100 - 4 * 10); // 4 boundary edges of 10 cells
    }

    #[test]
    fn poisson3d_structure() {
        let m = poisson3d(5, 5, 5);
        check_valid(&m);
        assert_eq!(m.nrows(), 125);
        let s = stats_coo(&m, 0.2);
        assert_eq!(s.ndiags, 7);
        assert_eq!(s.row_nnz_max, 7);
    }

    #[test]
    fn stencil9_has_nine_diagonals() {
        let m = stencil9(8, 8);
        check_valid(&m);
        let s = stats_coo(&m, 0.2);
        assert_eq!(s.ndiags, 9);
        assert_eq!(s.row_nnz_max, 9);
    }

    #[test]
    fn symmetric_pattern() {
        let m = poisson2d(6, 4);
        let entries: std::collections::HashSet<(usize, usize)> = m.iter().map(|(r, c, _)| (r, c)).collect();
        for &(r, c) in &entries {
            assert!(entries.contains(&(c, r)), "asymmetric at ({r},{c})");
        }
    }
}
