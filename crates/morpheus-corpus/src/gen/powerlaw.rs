//! Scale-free / power-law graph matrices — the skewed row distributions
//! where HYB wins and GPU CSR collapses (§VII-C's `mawi` case).

use crate::gen::assemble;
use morpheus::CooMatrix;
use rand::Rng;

/// Zipf-distributed row degrees: row `r`'s target degree is proportional to
/// `1 / (rank+1)^alpha`, scaled so the total is ~`nnz_target`. Row ranks are
/// shuffled so the heavy rows land at random positions.
pub fn zipf_rows<R: Rng>(n: usize, nnz_target: usize, alpha: f64, rng: &mut R) -> CooMatrix<f64> {
    // Normalising constant of the truncated zeta distribution.
    let z: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(alpha)).sum();
    let mut ranks: Vec<usize> = (0..n).collect();
    // Fisher-Yates with the caller's rng.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ranks.swap(i, j);
    }
    let mut pairs = Vec::with_capacity(nnz_target + n);
    for (rank, &row) in ranks.iter().enumerate() {
        let expected = nnz_target as f64 / (rank as f64 + 1.0).powf(alpha) / z;
        let k = (expected.round() as usize).clamp(1, n);
        for _ in 0..k {
            pairs.push((row, rng.gen_range(0..n)));
        }
    }
    assemble(n, n, &pairs, rng)
}

/// R-MAT / Kronecker-style recursive generator (Graph500 parameters by
/// default) — clustered scale-free structure.
pub fn rmat<R: Rng>(scale: u32, edge_factor: usize, probs: [f64; 4], rng: &mut R) -> CooMatrix<f64> {
    let n = 1usize << scale;
    let edges = n * edge_factor;
    let mut pairs = Vec::with_capacity(edges);
    for _ in 0..edges {
        let (mut r, mut c) = (0usize, 0usize);
        for _level in 0..scale {
            let p: f64 = rng.gen_range(0.0..1.0);
            let (dr, dc) = if p < probs[0] {
                (0, 0)
            } else if p < probs[0] + probs[1] {
                (0, 1)
            } else if p < probs[0] + probs[1] + probs[2] {
                (1, 0)
            } else {
                (1, 1)
            };
            r = (r << 1) | dr;
            c = (c << 1) | dc;
        }
        pairs.push((r, c));
    }
    assemble(n, n, &pairs, rng)
}

/// A handful of hub rows/columns holding most entries over a light random
/// background — an extreme `mawi`-like traffic-matrix shape.
pub fn hub_rows<R: Rng>(
    n: usize,
    hubs: usize,
    hub_degree: usize,
    background: usize,
    rng: &mut R,
) -> CooMatrix<f64> {
    let mut pairs = Vec::with_capacity(hubs * hub_degree + background);
    for h in 0..hubs {
        let row = rng.gen_range(0..n);
        let deg = hub_degree / (h + 1); // geometric-ish decay of hub sizes
        for _ in 0..deg.max(1) {
            pairs.push((row, rng.gen_range(0..n)));
        }
    }
    for _ in 0..background {
        pairs.push((rng.gen_range(0..n), rng.gen_range(0..n)));
    }
    assemble(n, n, &pairs, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::test_util::check_valid;
    use morpheus::stats::stats_coo;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn zipf_rows_are_skewed() {
        let m = zipf_rows(2000, 20_000, 1.3, &mut rng(1));
        check_valid(&m);
        let s = stats_coo(&m, 0.2);
        assert!(
            s.row_nnz_max as f64 > 20.0 * s.row_nnz_mean,
            "max {} vs mean {}",
            s.row_nnz_max,
            s.row_nnz_mean
        );
        assert!(s.row_nnz_std > s.row_nnz_mean, "heavy tail expected");
    }

    #[test]
    fn rmat_shape_and_skew() {
        let m = rmat(10, 8, [0.57, 0.19, 0.19, 0.05], &mut rng(2));
        check_valid(&m);
        assert_eq!(m.nrows(), 1024);
        let s = stats_coo(&m, 0.2);
        assert!(s.row_nnz_max > 4 * (s.row_nnz_mean.ceil() as usize));
    }

    #[test]
    fn hub_rows_concentrate_mass() {
        let m = hub_rows(5000, 3, 4000, 2000, &mut rng(3));
        check_valid(&m);
        let s = stats_coo(&m, 0.2);
        // The biggest hub should hold a large share of all entries.
        assert!(s.row_nnz_max as f64 > 0.2 * s.nnz as f64);
    }

    #[test]
    fn deterministic() {
        let a = rmat(8, 4, [0.57, 0.19, 0.19, 0.05], &mut rng(7));
        let b = rmat(8, 4, [0.57, 0.19, 0.19, 0.05], &mut rng(7));
        assert_eq!(a, b);
    }
}
