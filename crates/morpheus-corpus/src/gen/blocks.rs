//! Block-structured matrices: FEM-style coupled blocks and block-diagonal
//! systems.

use crate::gen::assemble;
use morpheus::CooMatrix;
use rand::Rng;

/// FEM-like pattern: dense `bs x bs` blocks on the diagonal plus a few
/// random off-diagonal coupling blocks per block-row. Diagonal-ish structure
/// with irregular breaks — neither pure DIA nor pure scatter.
pub fn fem_blocks<R: Rng>(nblocks: usize, bs: usize, couplings: usize, rng: &mut R) -> CooMatrix<f64> {
    let n = nblocks * bs;
    let mut pairs = Vec::new();
    for b in 0..nblocks {
        let base = b * bs;
        // Dense diagonal block.
        for i in 0..bs {
            for j in 0..bs {
                pairs.push((base + i, base + j));
            }
        }
        // Random coupling blocks (symmetric placement).
        for _ in 0..couplings {
            let other = rng.gen_range(0..nblocks);
            if other == b {
                continue;
            }
            let obase = other * bs;
            for i in 0..bs {
                for j in 0..bs {
                    pairs.push((base + i, obase + j));
                    pairs.push((obase + i, base + j));
                }
            }
        }
    }
    assemble(n, n, &pairs, rng)
}

/// Register-blocking's ideal input: fully dense `b x b` blocks *aligned to
/// the `b`-grid* — the diagonal block plus `extra` random aligned
/// off-diagonal blocks per block-row. Every stored block is 100% full, so
/// BSR at block dim `b` carries zero fill and 1/(b*b) of CSR's index
/// traffic.
pub fn aligned_blocks<R: Rng>(nblocks: usize, b: usize, extra: usize, rng: &mut R) -> CooMatrix<f64> {
    let n = nblocks * b;
    let mut pairs = Vec::with_capacity(nblocks * (1 + extra) * b * b);
    for br in 0..nblocks {
        let mut bcols = vec![br];
        for _ in 0..extra {
            bcols.push(rng.gen_range(0..nblocks));
        }
        bcols.sort_unstable();
        bcols.dedup();
        for bc in bcols {
            for i in 0..b {
                for j in 0..b {
                    pairs.push((br * b + i, bc * b + j));
                }
            }
        }
    }
    assemble(n, n, &pairs, rng)
}

/// Pure block-diagonal matrix with variable block sizes in `lo..=hi`.
pub fn block_diagonal<R: Rng>(n_target: usize, lo: usize, hi: usize, rng: &mut R) -> CooMatrix<f64> {
    let mut sizes = Vec::new();
    let mut total = 0usize;
    while total < n_target {
        let s = rng.gen_range(lo..=hi.max(lo)).min(n_target - total).max(1);
        sizes.push(s);
        total += s;
    }
    let mut pairs = Vec::new();
    let mut base = 0usize;
    for &s in &sizes {
        for i in 0..s {
            for j in 0..s {
                pairs.push((base + i, base + j));
            }
        }
        base += s;
    }
    assemble(total, total, &pairs, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::test_util::check_valid;
    use morpheus::stats::stats_coo;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn fem_blocks_structure() {
        let m = fem_blocks(40, 4, 2, &mut rng(1));
        check_valid(&m);
        assert_eq!(m.nrows(), 160);
        let s = stats_coo(&m, 0.2);
        // Each row has at least its dense diagonal block.
        assert!(s.row_nnz_min >= 4);
        // Pattern is symmetric by construction.
        let entries: std::collections::HashSet<(usize, usize)> = m.iter().map(|(r, c, _)| (r, c)).collect();
        for &(r, c) in entries.iter().take(500) {
            assert!(entries.contains(&(c, r)));
        }
    }

    #[test]
    fn aligned_blocks_land_on_the_grid() {
        let b = 4;
        let m = aligned_blocks(60, b, 2, &mut rng(7));
        check_valid(&m);
        assert_eq!(m.nrows(), 240);
        // Every entry's block is fully populated: nnz is a multiple of b*b,
        // and each row's entries arrive in groups of b aligned columns.
        assert_eq!(m.nnz() % (b * b), 0, "partial blocks would mean BSR fill");
        let s = stats_coo(&m, 0.2);
        assert!(s.row_nnz_min >= b, "diagonal block populates every row");
        assert_eq!(s.row_nnz_min % b, 0);
        assert_eq!(s.row_nnz_max % b, 0);
    }

    #[test]
    fn block_diagonal_covers_target() {
        let m = block_diagonal(500, 3, 9, &mut rng(2));
        check_valid(&m);
        assert!(m.nrows() >= 500);
        // Entries never leave their block: row and col within hi of each other.
        for (r, c, _) in m.iter() {
            assert!((r as isize - c as isize).unsigned_abs() < 9);
        }
    }

    #[test]
    fn deterministic() {
        let a = fem_blocks(10, 3, 1, &mut rng(3));
        let b = fem_blocks(10, 3, 1, &mut rng(3));
        assert_eq!(a, b);
    }
}
