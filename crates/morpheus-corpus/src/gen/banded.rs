//! Banded and diagonal-dominant matrices.

use crate::gen::{assemble, coeff};
use morpheus::{CooBuilder, CooMatrix};
use rand::Rng;

/// Tridiagonal matrix of order `n`.
pub fn tridiagonal(n: usize) -> CooMatrix<f64> {
    let mut b = CooBuilder::with_capacity(n, n, 3 * n);
    for i in 0..n {
        b.push(i, i, 2.0).expect("in bounds");
        if i > 0 {
            b.push(i, i - 1, -1.0).expect("in bounds");
        }
        if i + 1 < n {
            b.push(i, i + 1, -1.0).expect("in bounds");
        }
    }
    b.build()
}

/// Full band of half-width `hw` (`2*hw + 1` dense diagonals).
pub fn banded_full<R: Rng>(n: usize, hw: usize, rng: &mut R) -> CooMatrix<f64> {
    let mut b = CooBuilder::with_capacity(n, n, (2 * hw + 1) * n);
    for i in 0..n {
        let lo = i.saturating_sub(hw);
        let hi = (i + hw).min(n - 1);
        for j in lo..=hi {
            let v = if i == j { 2.0 + coeff(rng).abs() } else { coeff(rng) };
            b.push(i, j, v).expect("in bounds");
        }
    }
    b.build()
}

/// Band of half-width `hw` where each off-diagonal entry survives with
/// probability `fill` — diagonals are only partially populated, degrading
/// DIA (padding) while HDC can still capture the dense ones.
pub fn banded_partial<R: Rng>(n: usize, hw: usize, fill: f64, rng: &mut R) -> CooMatrix<f64> {
    let mut pairs = Vec::new();
    for i in 0..n {
        pairs.push((i, i));
        let lo = i.saturating_sub(hw);
        let hi = (i + hw).min(n - 1);
        for j in lo..=hi {
            if j != i && rng.gen_bool(fill) {
                pairs.push((i, j));
            }
        }
    }
    assemble(n, n, &pairs, rng)
}

/// Dominant main diagonal plus uniform random scatter of `extra` entries —
/// the HDC sweet spot (one true diagonal + CSR-shaped remainder).
pub fn diag_plus_scatter<R: Rng>(n: usize, extra: usize, rng: &mut R) -> CooMatrix<f64> {
    let mut pairs: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
    for _ in 0..extra {
        pairs.push((rng.gen_range(0..n), rng.gen_range(0..n)));
    }
    assemble(n, n, &pairs, rng)
}

/// A few full diagonals at random offsets (not a contiguous band).
pub fn multi_diagonal<R: Rng>(n: usize, ndiags: usize, rng: &mut R) -> CooMatrix<f64> {
    let mut offsets = vec![0isize];
    while offsets.len() < ndiags.max(1) {
        let span = (n as isize - 1).max(1);
        let off = rng.gen_range(-span..=span);
        if !offsets.contains(&off) {
            offsets.push(off);
        }
    }
    let mut b = CooBuilder::with_capacity(n, n, n * offsets.len());
    for &off in &offsets {
        for i in 0..n {
            let j = i as isize + off;
            if j >= 0 && (j as usize) < n {
                let v = if off == 0 { 2.0 } else { coeff(rng) };
                b.push(i, j as usize, v).expect("in bounds");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::test_util::check_valid;
    use morpheus::stats::stats_coo;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn tridiagonal_structure() {
        let m = tridiagonal(50);
        check_valid(&m);
        let s = stats_coo(&m, 0.2);
        assert_eq!(s.ndiags, 3);
        assert_eq!(s.nnz, 3 * 50 - 2);
    }

    #[test]
    fn banded_full_has_expected_diagonals() {
        let m = banded_full(100, 3, &mut rng());
        check_valid(&m);
        let s = stats_coo(&m, 0.2);
        assert_eq!(s.ndiags, 7);
        assert_eq!(s.ntrue_diags, 7);
        assert_eq!(s.row_nnz_max, 7);
    }

    #[test]
    fn banded_partial_degrades_diagonals() {
        // Fill 0.12 keeps off-diagonals below the 20% true-diag threshold.
        let m = banded_partial(200, 10, 0.12, &mut rng());
        check_valid(&m);
        let s = stats_coo(&m, 0.2);
        // 21 possible diagonals, most present but only the main one full.
        assert!(s.ndiags > 10);
        assert!(s.ntrue_diags >= 1, "main diagonal is always full");
        assert!(s.ntrue_diags < s.ndiags, "ntrue {} ndiags {}", s.ntrue_diags, s.ndiags);
    }

    #[test]
    fn diag_plus_scatter_has_one_true_diagonal() {
        let m = diag_plus_scatter(500, 800, &mut rng());
        check_valid(&m);
        let s = stats_coo(&m, 0.2);
        assert!(s.ntrue_diags >= 1);
        assert!(s.ndiags > 100, "scatter should populate many diagonals");
        assert!(s.nnz >= 500);
    }

    #[test]
    fn multi_diagonal_counts() {
        let m = multi_diagonal(300, 5, &mut rng());
        check_valid(&m);
        let s = stats_coo(&m, 0.2);
        assert_eq!(s.ndiags, 5);
        assert!(s.ntrue_diags >= 4, "long random offsets may clip a few rows");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = banded_partial(100, 4, 0.5, &mut rng());
        let b = banded_partial(100, 4, 0.5, &mut rng());
        assert_eq!(a, b);
    }
}
