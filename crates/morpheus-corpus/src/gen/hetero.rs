//! Internally heterogeneous matrices: structurally distinct row regimes
//! glued into one matrix.
//!
//! These are the shapes whole-matrix format selection loses on by
//! construction — every single format is wrong for one of the regimes —
//! and the shapes partitioned handles (`morpheus::PartitionedMatrix`)
//! exist for: the row-nnz histogram shifts regime at the block seams, so
//! boundary refinement splits the regimes into shards that each get their
//! own format.

use crate::gen::coeff;
use morpheus::{CooBuilder, CooMatrix};
use rand::Rng;

/// A hub block over a regular banded tail: rows `0..hub_rows` each hold
/// `hub_degree` entries scattered uniformly over all columns (CSR/HYB
/// territory — long irregular rows, gather-bound), rows `hub_rows..n` a
/// dense band of half-width `hw` (DIA territory — few fully populated
/// diagonals). One matrix, two regimes, a sharp regime shift at
/// `hub_rows`.
///
/// Sizing rule of thumb for multi-shard partitioning: make
/// `hub_rows * hub_degree` and `(n - hub_rows) * (2*hw + 1)` each large
/// against the partitioner's shard nnz target, and the tail several times
/// the hub so the banded regime dominates total nnz (a whole-matrix CSR
/// plan then leaves most of the matrix's DIA win on the table).
pub fn hub_plus_banded<R: Rng>(
    n: usize,
    hub_rows: usize,
    hub_degree: usize,
    hw: usize,
    rng: &mut R,
) -> CooMatrix<f64> {
    let hub_rows = hub_rows.min(n);
    let mut b = CooBuilder::with_capacity(n, n, hub_rows * hub_degree + (n - hub_rows) * (2 * hw + 1));
    for i in 0..hub_rows {
        for _ in 0..hub_degree {
            b.push(i, rng.gen_range(0..n), coeff(rng)).expect("in bounds");
        }
    }
    for i in hub_rows..n {
        let lo = i.saturating_sub(hw);
        let hi = (i + hw).min(n - 1);
        for j in lo..=hi {
            let v = if i == j { 2.0 + coeff(rng).abs() } else { coeff(rng) };
            b.push(i, j, v).expect("in bounds");
        }
    }
    b.build()
}

/// Three stacked regimes — scattered hub rows, an ELL-friendly
/// fixed-width random block, then a banded tail — for partition tests
/// that need more than one interior regime shift.
pub fn three_regime<R: Rng>(
    n: usize,
    hub_rows: usize,
    hub_degree: usize,
    mid_rows: usize,
    mid_width: usize,
    hw: usize,
    rng: &mut R,
) -> CooMatrix<f64> {
    let hub_rows = hub_rows.min(n);
    let mid_end = (hub_rows + mid_rows).min(n);
    let mut b = CooBuilder::new(n, n);
    for i in 0..hub_rows {
        for _ in 0..hub_degree {
            b.push(i, rng.gen_range(0..n), coeff(rng)).expect("in bounds");
        }
    }
    for i in hub_rows..mid_end {
        // Fixed row width, clustered columns: regular enough for ELL.
        let start = rng.gen_range(0..n.saturating_sub(mid_width).max(1));
        for j in start..(start + mid_width).min(n) {
            b.push(i, j, coeff(rng)).expect("in bounds");
        }
    }
    for i in mid_end..n {
        let lo = i.saturating_sub(hw);
        let hi = (i + hw).min(n - 1);
        for j in lo..=hi {
            let v = if i == j { 2.0 + coeff(rng).abs() } else { coeff(rng) };
            b.push(i, j, v).expect("in bounds");
        }
    }
    b.build()
}

/// A hub block over several band blocks with *different* diagonal offsets
/// and half-widths — the domain-decomposition shape (one stencil per
/// subdomain, a few dense coupling rows).
///
/// Rows `0..hub_rows` scatter `hub_degree` entries each; the remaining
/// rows split evenly into `bands.len()` blocks, where block `k` holds a
/// dense band of half-width `bands[k].1` centered `bands[k].0` columns
/// off the main diagonal (entries falling outside the column range are
/// dropped, so edge rows thin out).
///
/// This is the shape where per-shard selection beats *every* whole-matrix
/// format structurally, not just by a variant margin: whole-matrix
/// DIA/HDC must store the union of all blocks' diagonals (each populated
/// in only one block — fill grows with the block count), ELL pads every
/// row to the widest block, and CSR runs scalar short rows; a shard per
/// block gets perfect-fill DIA. Give blocks distinct widths so the
/// row-nnz histogram shifts at each seam and boundary refinement can find
/// them.
pub fn shifted_bands<R: Rng>(
    n: usize,
    hub_rows: usize,
    hub_degree: usize,
    bands: &[(isize, usize)],
    rng: &mut R,
) -> CooMatrix<f64> {
    let hub_rows = hub_rows.min(n);
    assert!(!bands.is_empty(), "need at least one band block");
    let mut b = CooBuilder::new(n, n);
    for i in 0..hub_rows {
        for _ in 0..hub_degree {
            b.push(i, rng.gen_range(0..n), coeff(rng)).expect("in bounds");
        }
    }
    let body = n - hub_rows;
    let per_block = (body / bands.len()).max(1);
    for i in hub_rows..n {
        let k = ((i - hub_rows) / per_block).min(bands.len() - 1);
        let (offset, hw) = bands[k];
        let center = i as isize + offset;
        for j in (center - hw as isize)..=(center + hw as isize) {
            if (0..n as isize).contains(&j) {
                b.push(i, j as usize, coeff(rng)).expect("in bounds");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::test_util::check_valid;
    use rand::SeedableRng;

    #[test]
    fn hub_plus_banded_has_two_regimes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let m = hub_plus_banded(500, 40, 60, 2, &mut rng);
        check_valid(&m);
        assert_eq!(m.nrows(), 500);
        // Row-nnz must collapse across the seam.
        let mut hist = vec![0usize; 500];
        for (r, _, _) in m.iter() {
            hist[r] += 1;
        }
        let hub_mean = hist[..40].iter().sum::<usize>() as f64 / 40.0;
        let tail_mean = hist[40..].iter().sum::<usize>() as f64 / 460.0;
        assert!(hub_mean > 5.0 * tail_mean, "hub {hub_mean} vs tail {tail_mean}");
    }

    #[test]
    fn shifted_bands_blocks_have_distinct_offsets() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let m = shifted_bands(600, 20, 40, &[(-50, 2), (100, 6)], &mut rng);
        check_valid(&m);
        // Block rows carry their own offset: a row in each block must have
        // all columns near i + offset.
        for (r, c, _) in m.iter() {
            if (50..300).contains(&r) {
                let d = c as isize - r as isize;
                assert!((-52..=-48).contains(&d), "block 0 row {r} col {c}");
            }
            if (360..540).contains(&r) {
                let d = c as isize - r as isize;
                assert!((94..=106).contains(&d), "block 1 row {r} col {c}");
            }
        }
    }

    #[test]
    fn three_regime_valid() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let m = three_regime(600, 30, 50, 200, 8, 1, &mut rng);
        check_valid(&m);
        assert_eq!(m.nrows(), 600);
    }
}
