//! Unstructured random matrices: uniform-degree (ELL-friendly),
//! Erdős–Rényi scatter and hypersparse patterns (COO-friendly).

use crate::gen::assemble;
use morpheus::CooMatrix;
use rand::Rng;

/// Every row gets exactly `per_row` entries at uniform random columns —
/// the semi-structured shape ELL is built for (§II-B).
pub fn uniform_degree<R: Rng>(n: usize, per_row: usize, rng: &mut R) -> CooMatrix<f64> {
    let mut pairs = Vec::with_capacity(n * per_row);
    for r in 0..n {
        for _ in 0..per_row {
            pairs.push((r, rng.gen_range(0..n)));
        }
    }
    assemble(n, n, &pairs, rng)
}

/// Row degrees drawn uniformly from `lo..=hi` — mildly irregular rows.
pub fn variable_degree<R: Rng>(n: usize, lo: usize, hi: usize, rng: &mut R) -> CooMatrix<f64> {
    let mut pairs = Vec::new();
    for r in 0..n {
        let k = rng.gen_range(lo..=hi.max(lo));
        for _ in 0..k {
            pairs.push((r, rng.gen_range(0..n)));
        }
    }
    assemble(n, n, &pairs, rng)
}

/// Erdős–Rényi scatter with ~`nnz` entries anywhere in the matrix.
pub fn erdos_renyi<R: Rng>(n: usize, nnz: usize, rng: &mut R) -> CooMatrix<f64> {
    let mut pairs = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        pairs.push((rng.gen_range(0..n), rng.gen_range(0..n)));
    }
    assemble(n, n, &pairs, rng)
}

/// Hypersparse: `nnz` entries scattered over a matrix with vastly more
/// rows than entries ("very sparse matrices with many empty rows", the COO
/// case of §IV-A).
pub fn hypersparse<R: Rng>(n: usize, nnz: usize, rng: &mut R) -> CooMatrix<f64> {
    assert!(nnz * 8 <= n.saturating_mul(n), "too dense for hypersparse");
    erdos_renyi(n, nnz, rng)
}

/// Two sharply separated row populations: most rows carry `narrow` entries,
/// every `wide_every`-th row carries `wide`. The bucketed-ELL sweet spot —
/// one dense slab per population — where plain ELL pads every narrow row to
/// `wide` and HYB spills the entire wide population to COO.
pub fn bimodal_rows<R: Rng>(
    n: usize,
    narrow: usize,
    wide: usize,
    wide_every: usize,
    rng: &mut R,
) -> CooMatrix<f64> {
    assert!(narrow <= wide && wide_every >= 1, "narrow <= wide, wide_every >= 1");
    let mut pairs = Vec::new();
    for r in 0..n {
        let k = if r % wide_every == 0 { wide } else { narrow };
        for _ in 0..k {
            pairs.push((r, rng.gen_range(0..n)));
        }
    }
    assemble(n, n, &pairs, rng)
}

/// Entries clustered near the diagonal with geometric column offsets —
/// locality-rich but not strictly banded (FEM-on-good-mesh flavour).
pub fn near_diagonal<R: Rng>(n: usize, per_row: usize, spread: f64, rng: &mut R) -> CooMatrix<f64> {
    let mut pairs = Vec::with_capacity(n * per_row);
    for r in 0..n {
        pairs.push((r, r));
        for _ in 1..per_row {
            // Two-sided geometric-ish offset.
            let mag = (rng.gen_range(0.0f64..1.0).powi(2) * spread) as isize + 1;
            let off = if rng.gen_bool(0.5) { mag } else { -mag };
            let j = (r as isize + off).clamp(0, n as isize - 1) as usize;
            pairs.push((r, j));
        }
    }
    assemble(n, n, &pairs, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::test_util::check_valid;
    use morpheus::stats::stats_coo;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_degree_rows_regular() {
        let m = uniform_degree(400, 6, &mut rng(1));
        check_valid(&m);
        let s = stats_coo(&m, 0.2);
        // Duplicate collisions can shave a few entries off a row.
        assert!(s.row_nnz_max <= 6);
        assert!(s.row_nnz_min >= 4);
        assert!(s.row_nnz_std < 1.0, "std {}", s.row_nnz_std);
    }

    #[test]
    fn variable_degree_bounds_respected() {
        let m = variable_degree(300, 2, 12, &mut rng(2));
        check_valid(&m);
        let s = stats_coo(&m, 0.2);
        assert!(s.row_nnz_max <= 12);
        assert!(s.row_nnz_min >= 1);
    }

    #[test]
    fn erdos_renyi_is_unstructured() {
        let m = erdos_renyi(500, 2500, &mut rng(3));
        check_valid(&m);
        let s = stats_coo(&m, 0.2);
        assert_eq!(s.ntrue_diags, 0, "scatter should have no true diagonals");
        assert!(s.ndiags > 400);
    }

    #[test]
    fn hypersparse_mostly_empty_rows() {
        let m = hypersparse(10_000, 600, &mut rng(4));
        check_valid(&m);
        let s = stats_coo(&m, 0.2);
        assert_eq!(s.row_nnz_min, 0);
        assert!(s.row_nnz_mean < 0.1);
    }

    #[test]
    #[should_panic(expected = "too dense")]
    fn hypersparse_guards_density() {
        hypersparse(10, 1000, &mut rng(5));
    }

    #[test]
    fn bimodal_rows_have_two_populations() {
        let m = bimodal_rows(600, 3, 48, 50, &mut rng(8));
        check_valid(&m);
        let s = stats_coo(&m, 0.2);
        // Duplicate-column collisions can shave an entry or two off a row.
        assert!(s.row_nnz_max >= 44, "wide rows present: max {}", s.row_nnz_max);
        assert!(s.row_nnz_min <= 3, "narrow rows present: min {}", s.row_nnz_min);
        assert!(s.row_nnz_mean < 6.0, "narrow population dominates: {}", s.row_nnz_mean);
    }

    #[test]
    fn near_diagonal_has_locality() {
        let m = near_diagonal(1000, 8, 30.0, &mut rng(6));
        check_valid(&m);
        // Columns should concentrate near the diagonal.
        let close = m.iter().filter(|&(r, c, _)| (r as isize - c as isize).unsigned_abs() <= 31).count();
        assert!(close == m.nnz(), "all entries within spread");
    }
}
