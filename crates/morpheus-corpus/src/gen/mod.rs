//! Matrix generators, one module per structural family.

pub mod banded;
pub mod blocks;
pub mod hetero;
pub mod powerlaw;
pub mod random;
pub mod stencil;

use morpheus::{CooBuilder, CooMatrix};
use rand::Rng;

/// Draws a nonzero coefficient value in `[-1, 1] \ {0}`.
pub(crate) fn coeff<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let v: f64 = rng.gen_range(-1.0..=1.0);
        if v != 0.0 {
            return v;
        }
    }
}

/// Assembles a COO matrix from `(row, col)` pairs with random coefficients,
/// merging duplicates.
pub(crate) fn assemble<R: Rng>(
    nrows: usize,
    ncols: usize,
    pairs: &[(usize, usize)],
    rng: &mut R,
) -> CooMatrix<f64> {
    let mut b = CooBuilder::with_capacity(nrows, ncols, pairs.len());
    for &(r, c) in pairs {
        b.push(r, c, coeff(rng)).expect("generator produced in-bounds indices");
    }
    b.build()
}

#[cfg(test)]
pub(crate) mod test_util {
    use morpheus::CooMatrix;

    /// Structural sanity checks every generator output must satisfy.
    pub fn check_valid(m: &CooMatrix<f64>) {
        assert!(m.nnz() > 0, "generator produced an empty matrix");
        for (r, c, v) in m.iter() {
            assert!(r < m.nrows() && c < m.ncols());
            assert!(v.is_finite() && v != 0.0);
        }
    }
}
