//! Corpus assembly: a deterministic population of ~2200 matrices with the
//! class mix, size range and imbalance characteristics of the paper's
//! SuiteSparse dataset.

use crate::gen::{banded, blocks, powerlaw, random, stencil};
use morpheus::CooMatrix;
use rand::Rng;
use rand::SeedableRng;

/// Structural family of a generated matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatrixClass {
    /// 2D/3D Poisson and 9-point stencils.
    Stencil,
    /// Tridiagonal and fully-populated bands.
    BandedFull,
    /// Partially-populated bands.
    BandedPartial,
    /// A few full diagonals at random offsets.
    MultiDiagonal,
    /// Dominant diagonal plus random scatter.
    DiagPlusScatter,
    /// FEM-style dense blocks with couplings.
    FemBlocks,
    /// Pure block-diagonal.
    BlockDiagonal,
    /// Constant row degree at random columns.
    UniformDegree,
    /// Uniformly varying row degree.
    VariableDegree,
    /// Clustered near the diagonal.
    NearDiagonal,
    /// Erdős–Rényi scatter.
    ErdosRenyi,
    /// Very sparse with many empty rows.
    Hypersparse,
    /// Zipf-distributed row degrees.
    ZipfRows,
    /// R-MAT recursive graphs.
    Rmat,
    /// A few enormous hub rows.
    HubRows,
}

impl MatrixClass {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            MatrixClass::Stencil => "stencil",
            MatrixClass::BandedFull => "banded-full",
            MatrixClass::BandedPartial => "banded-partial",
            MatrixClass::MultiDiagonal => "multi-diagonal",
            MatrixClass::DiagPlusScatter => "diag+scatter",
            MatrixClass::FemBlocks => "fem-blocks",
            MatrixClass::BlockDiagonal => "block-diagonal",
            MatrixClass::UniformDegree => "uniform-degree",
            MatrixClass::VariableDegree => "variable-degree",
            MatrixClass::NearDiagonal => "near-diagonal",
            MatrixClass::ErdosRenyi => "erdos-renyi",
            MatrixClass::Hypersparse => "hypersparse",
            MatrixClass::ZipfRows => "zipf-rows",
            MatrixClass::Rmat => "rmat",
            MatrixClass::HubRows => "hub-rows",
        }
    }
}

/// `(class, weight)` mix. Weights follow the application-domain mix of the
/// SuiteSparse population: a majority of PDE/FEM-flavoured matrices with
/// irregular structure (where CSR tends to win, keeping the label
/// distribution imbalanced as in §VII-B) plus minorities of regular,
/// hypersparse and scale-free patterns.
const CLASS_MIX: &[(MatrixClass, u32)] = &[
    (MatrixClass::Stencil, 3),
    (MatrixClass::BandedFull, 2),
    (MatrixClass::BandedPartial, 6),
    (MatrixClass::MultiDiagonal, 1),
    (MatrixClass::DiagPlusScatter, 4),
    (MatrixClass::FemBlocks, 18),
    (MatrixClass::BlockDiagonal, 3),
    (MatrixClass::UniformDegree, 6),
    (MatrixClass::VariableDegree, 24),
    (MatrixClass::NearDiagonal, 8),
    (MatrixClass::ErdosRenyi, 10),
    (MatrixClass::Hypersparse, 5),
    (MatrixClass::ZipfRows, 5),
    (MatrixClass::Rmat, 3),
    (MatrixClass::HubRows, 2),
];

/// One corpus member.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Stable index within the corpus.
    pub id: usize,
    /// Human-readable name (`class-id`).
    pub name: String,
    /// Structural family.
    pub class: MatrixClass,
    /// The matrix itself.
    pub matrix: CooMatrix<f64>,
    /// `true` if the entry belongs to the held-out test set (80/20 split,
    /// §VII-A).
    pub is_test: bool,
}

/// Corpus parameters.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Number of matrices.
    pub n_matrices: usize,
    /// Master seed.
    pub seed: u64,
    /// Smallest matrix dimension drawn.
    pub min_n: usize,
    /// Largest matrix dimension drawn (log-uniform between the two).
    pub max_n: usize,
    /// Fraction of entries held out for testing.
    pub test_fraction: f64,
}

impl CorpusSpec {
    /// The paper-scale corpus: ~2200 matrices.
    pub fn paper_scale() -> Self {
        CorpusSpec { n_matrices: 2200, seed: 0x5EED_CAFE, min_n: 500, max_n: 60_000, test_fraction: 0.2 }
    }

    /// A reduced corpus for tests and examples.
    pub fn small(n_matrices: usize) -> Self {
        CorpusSpec { n_matrices, seed: 0x5EED_CAFE, min_n: 100, max_n: 2_000, test_fraction: 0.2 }
    }

    fn hash(&self, i: usize, salt: u64) -> u64 {
        let mut z = self.seed ^ salt ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Generates entry `i` (deterministic in `(seed, i)` alone).
    pub fn entry(&self, i: usize) -> CorpusEntry {
        assert!(i < self.n_matrices, "entry {i} out of range");
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.hash(i, 0xA));

        // Class by weighted draw.
        let total: u32 = CLASS_MIX.iter().map(|&(_, w)| w).sum();
        let mut pick = rng.gen_range(0..total);
        let mut class = CLASS_MIX[0].0;
        for &(c, w) in CLASS_MIX {
            if pick < w {
                class = c;
                break;
            }
            pick -= w;
        }

        // Log-uniform dimension draw.
        let ln_lo = (self.min_n as f64).ln();
        let ln_hi = (self.max_n as f64).ln();
        let n = (rng.gen_range(ln_lo..ln_hi)).exp() as usize;
        let n = n.clamp(self.min_n, self.max_n).max(16);

        let matrix = match class {
            MatrixClass::Stencil => {
                let side = (n as f64).sqrt() as usize + 2;
                match rng.gen_range(0..3) {
                    0 => stencil::poisson2d(side, side),
                    1 => {
                        let s3 = (n as f64).cbrt() as usize + 2;
                        stencil::poisson3d(s3, s3, s3)
                    }
                    _ => stencil::stencil9(side, side),
                }
            }
            MatrixClass::BandedFull => {
                if rng.gen_bool(0.4) {
                    banded::tridiagonal(n)
                } else {
                    let hw = rng.gen_range(1..=6);
                    banded::banded_full(n, hw, &mut rng)
                }
            }
            MatrixClass::BandedPartial => {
                let hw = rng.gen_range(3..=24);
                let fill = rng.gen_range(0.1..0.7);
                banded::banded_partial(n, hw, fill, &mut rng)
            }
            MatrixClass::MultiDiagonal => {
                let nd = rng.gen_range(2..=9);
                banded::multi_diagonal(n, nd, &mut rng)
            }
            MatrixClass::DiagPlusScatter => {
                let extra = (n as f64 * rng.gen_range(0.5..4.0)) as usize;
                banded::diag_plus_scatter(n, extra, &mut rng)
            }
            MatrixClass::FemBlocks => {
                let bs: usize = rng.gen_range(2..=6);
                let nblocks = (n / bs).max(2);
                let couplings = rng.gen_range(1..=3);
                blocks::fem_blocks(nblocks, bs, couplings, &mut rng)
            }
            MatrixClass::BlockDiagonal => {
                let lo = rng.gen_range(2..=4);
                let hi = lo + rng.gen_range(1usize..=8);
                blocks::block_diagonal(n, lo, hi, &mut rng)
            }
            MatrixClass::UniformDegree => {
                let k = rng.gen_range(2..=24);
                random::uniform_degree(n, k, &mut rng)
            }
            MatrixClass::VariableDegree => {
                let lo = rng.gen_range(1..=4);
                let hi = lo + rng.gen_range(2usize..=28);
                random::variable_degree(n, lo, hi, &mut rng)
            }
            MatrixClass::NearDiagonal => {
                let k = rng.gen_range(3..=12);
                let spread = rng.gen_range(8.0..200.0);
                random::near_diagonal(n, k, spread, &mut rng)
            }
            MatrixClass::ErdosRenyi => {
                let nnz = (n as f64 * rng.gen_range(2.0..12.0)) as usize;
                random::erdos_renyi(n, nnz, &mut rng)
            }
            MatrixClass::Hypersparse => {
                let big_n = n * rng.gen_range(8usize..=40);
                let nnz = (big_n / rng.gen_range(4usize..=20)).max(8);
                random::hypersparse(big_n, nnz, &mut rng)
            }
            MatrixClass::ZipfRows => {
                let nnz = n * rng.gen_range(6usize..=24);
                let alpha = rng.gen_range(1.1..1.8);
                powerlaw::zipf_rows(n, nnz, alpha, &mut rng)
            }
            MatrixClass::Rmat => {
                let scale = (n as f64).log2().floor().clamp(8.0, 16.0) as u32;
                let ef = rng.gen_range(4..=12);
                powerlaw::rmat(scale, ef, [0.57, 0.19, 0.19, 0.05], &mut rng)
            }
            MatrixClass::HubRows => {
                // Hubs live in a larger-dimension matrix (traffic-matrix
                // shape): a few rows hold a large share of all entries.
                let big_n = n * 8;
                let hubs = rng.gen_range(1..=4);
                let hub_degree = (big_n / 2).max(64);
                let background = big_n * rng.gen_range(1usize..=2);
                powerlaw::hub_rows(big_n, hubs, hub_degree, background, &mut rng)
            }
        };

        let is_test = (self.hash(i, 0xB) % 10_000) as f64 / 10_000.0 < self.test_fraction;
        CorpusEntry { id: i, name: format!("{}-{i:04}", class.name()), class, matrix, is_test }
    }

    /// Iterator over all entries (generated lazily; entries are large).
    pub fn iter(&self) -> impl Iterator<Item = CorpusEntry> + '_ {
        (0..self.n_matrices).map(move |i| self.entry(i))
    }
}

/// The paper-scale corpus specification (~2200 matrices).
pub fn default_corpus() -> CorpusSpec {
    CorpusSpec::paper_scale()
}

/// A small corpus specification for tests, examples and CI.
pub fn small_corpus(n: usize) -> CorpusSpec {
    CorpusSpec::small(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn entries_are_deterministic() {
        let spec = small_corpus(50);
        let a = spec.entry(17);
        let b = spec.entry(17);
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.class, b.class);
        assert_eq!(a.is_test, b.is_test);
    }

    #[test]
    fn corpus_covers_many_classes() {
        let spec = small_corpus(120);
        let mut by_class: HashMap<&'static str, usize> = HashMap::new();
        for e in spec.iter() {
            *by_class.entry(e.class.name()).or_default() += 1;
            assert!(e.matrix.nnz() > 0, "{} empty", e.name);
        }
        assert!(by_class.len() >= 10, "only {} classes: {:?}", by_class.len(), by_class.keys());
    }

    #[test]
    fn split_fraction_roughly_respected() {
        let spec = small_corpus(300);
        let test_count = spec.iter().filter(|e| e.is_test).count();
        let frac = test_count as f64 / 300.0;
        assert!((0.12..=0.28).contains(&frac), "test fraction {frac}");
    }

    #[test]
    fn matrices_are_square_except_hypersparse_scaling() {
        let spec = small_corpus(60);
        for e in spec.iter() {
            assert_eq!(e.matrix.nrows(), e.matrix.ncols(), "{}", e.name);
        }
    }

    #[test]
    fn sizes_within_expected_range() {
        let spec = small_corpus(80);
        for e in spec.iter() {
            // Hypersparse blows the dimension up by design (x8..x40); the
            // stencil/rmat families round to grids/powers of two.
            assert!(e.matrix.nrows() >= 16, "{} too small", e.name);
            assert!(e.matrix.nrows() <= spec.max_n * 80, "{} too large: {}", e.name, e.matrix.nrows());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_entry_panics() {
        small_corpus(5).entry(5);
    }
}
