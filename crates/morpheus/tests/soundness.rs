//! The conversion kernels' fill passes write through raw pointers
//! (`SharedSlice`) at indices derived from a caller-supplied `Analysis`
//! plan. `Analysis::matches` can only check shape and nnz cheaply, so a
//! *wrong-pattern* plan with matching shape must be rejected by the fill
//! passes themselves — with a safe panic, never an out-of-bounds write.
//! The bounds checks involved are unconditional (not `debug_assert`s), so
//! this holds in release builds too.

use morpheus::{Analysis, ConvertOptions, CooMatrix, DynamicMatrix, FormatId};

#[test]
fn wrong_pattern_plan_is_rejected_by_a_safe_panic() {
    // A: both entries in row 0; B: one entry per row. Same dims and nnz, so
    // B's analysis passes the cheap `matches()` guard against A — but its
    // histograms understate A's row 0 and miss A's superdiagonal.
    let a = DynamicMatrix::from(CooMatrix::from_triplets(2, 2, &[0, 0], &[0, 1], &[1.0f64, 2.0]).unwrap());
    let b = DynamicMatrix::from(CooMatrix::from_triplets(2, 2, &[0, 1], &[0, 1], &[1.0f64, 2.0]).unwrap());
    let plan = Analysis::of(&b, 0.2);
    assert!(plan.matches(&a), "precondition: the cheap guard cannot tell A from B");

    let opts = ConvertOptions::default();
    for target in [FormatId::Ell, FormatId::Dia, FormatId::Hyb] {
        let r = std::panic::catch_unwind(|| a.to_format_with(target, &opts, Some(&plan)));
        assert!(r.is_err(), "{target}: stale plan must be rejected by a safe panic");
    }

    // A *correct* plan for A sails through.
    let good = Analysis::of(&a, 0.2);
    for target in [FormatId::Ell, FormatId::Dia, FormatId::Hyb, FormatId::Hdc] {
        a.to_format_with(target, &opts, Some(&good)).unwrap();
    }
}
