//! Property suite for the per-range SpMV kernel-variant layer.
//!
//! Contract under test: for every storage format, scalar width, worker
//! count and forced [`KernelVariant`], planned execution agrees with the
//! scalar serial reference —
//!
//! * **bitwise**, whenever the plan's ranges all preserve the reference
//!   accumulation order ([`ExecPlan::preserves_order`]; always true for
//!   `Scalar`/`Prefetch`/`Blocked` plans), and
//! * within a tight per-row ULP bound otherwise (`Unrolled` splits each
//!   row's sum across multiple accumulators, reassociating it; the AVX2
//!   bodies additionally contract multiply-add with FMA).
//!
//! The suite also pins the busy-pool fallback property the serving layer
//! relies on: [`ExecPlan::spmv_unpooled`] is bitwise identical to the
//! pooled execution of the same plan, variants included.

use morpheus::spmm::spmm_serial;
use morpheus::spmv::spmv_serial;
use morpheus::{Analysis, ConvertOptions, CooMatrix, DynamicMatrix, ExecPlan, Scalar, ALL_VARIANTS};
use morpheus_parallel::ThreadPool;

/// SplitMix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Random COO with `nnz_target` draws (duplicates collapse, so the
/// realized nnz may be slightly lower). Values are signed, non-trivial.
fn random_coo(nrows: usize, ncols: usize, nnz_target: usize, seed: u64) -> CooMatrix<f64> {
    let mut rng = Rng(seed);
    let mut entries = std::collections::BTreeMap::new();
    for _ in 0..nnz_target {
        let r = (rng.next() % nrows as u64) as usize;
        let c = (rng.next() % ncols as u64) as usize;
        let v = ((rng.next() % 2000) as f64 - 1000.0) / 250.0;
        entries.insert((r, c), if v == 0.0 { 1.0 } else { v });
    }
    let (mut rows, mut cols, mut vals) = (Vec::new(), Vec::new(), Vec::new());
    for ((r, c), v) in entries {
        rows.push(r);
        cols.push(c);
        vals.push(v);
    }
    CooMatrix::from_triplets(nrows, ncols, &rows, &cols, &vals).unwrap()
}

/// Banded matrix: diagonals at the given offsets — DIA/ELL territory, and
/// tall enough (rows > 256) to engage the blocked bodies.
fn banded(n: usize, offsets: &[isize], seed: u64) -> CooMatrix<f64> {
    let mut rng = Rng(seed);
    let (mut rows, mut cols, mut vals) = (Vec::new(), Vec::new(), Vec::new());
    for i in 0..n {
        for &d in offsets {
            let j = i as isize + d;
            if j >= 0 && (j as usize) < n {
                rows.push(i);
                cols.push(j as usize);
                vals.push(1.0 + ((rng.next() % 97) as f64) * 0.03);
            }
        }
    }
    CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap()
}

/// The shape gallery: general scatter, banded, a hub row next to sparse
/// tails, and the degenerate edges (empty, single row, single column,
/// mostly-empty rows).
fn gallery() -> Vec<(&'static str, CooMatrix<f64>)> {
    let mut hub_rows = vec![0usize; 260];
    let mut hub_cols: Vec<usize> = (0..260).collect();
    let mut hub_vals: Vec<f64> = (0..260).map(|i| 0.5 + (i % 7) as f64 * 0.25).collect();
    for r in 1..300 {
        hub_rows.push(r);
        hub_cols.push((r * 13) % 260);
        hub_vals.push(1.0 + (r % 5) as f64);
    }
    vec![
        ("random", random_coo(220, 180, 2600, 11)),
        ("banded-penta", banded(500, &[-2, -1, 0, 1, 2], 5)),
        ("hub-and-tails", CooMatrix::from_triplets(300, 260, &hub_rows, &hub_cols, &hub_vals).unwrap()),
        ("empty", CooMatrix::from_triplets(50, 40, &[], &[], &[]).unwrap()),
        ("single-row", random_coo(1, 90, 60, 3)),
        ("single-col", random_coo(90, 1, 40, 4)),
        ("mostly-empty-rows", {
            let dense = random_coo(40, 120, 600, 9);
            // Spread the 40 occupied rows across 280: rows 7k are live.
            let rows: Vec<usize> = dense.row_indices().iter().map(|&r| r * 7).collect();
            CooMatrix::from_triplets(280, 120, &rows, dense.col_indices(), dense.values()).unwrap()
        }),
    ]
}

fn cast<V: Scalar>(m: &CooMatrix<f64>) -> DynamicMatrix<V> {
    let vals: Vec<V> = m.values().iter().map(|&v| V::from_f64(v)).collect();
    DynamicMatrix::from(
        CooMatrix::from_triplets(m.nrows(), m.ncols(), m.row_indices(), m.col_indices(), &vals).unwrap(),
    )
}

fn input<V: Scalar>(ncols: usize) -> Vec<V> {
    (0..ncols).map(|i| V::from_f64(((i as f64) * 0.37).sin() * 1.5 - 0.2)).collect()
}

/// Per-row magnitude scales `Σ |a_ij x_j|` from the COO triplets — the
/// correct yardstick for reassociation error (cancellation can make the
/// result itself tiny while the intermediate terms are not).
fn row_scales<V: Scalar>(m: &CooMatrix<f64>, x: &[V]) -> (Vec<f64>, Vec<usize>) {
    let mut scale = vec![0.0f64; m.nrows()];
    let mut counts = vec![0usize; m.nrows()];
    for ((&r, &c), &v) in m.row_indices().iter().zip(m.col_indices()).zip(m.values()) {
        scale[r] += (v * x[c].to_f64()).abs();
        counts[r] += 1;
    }
    (scale, counts)
}

fn check_against_reference<V: Scalar>(
    y: &[V],
    y_ref: &[V],
    bitwise: bool,
    eps: f64,
    scales: &(Vec<f64>, Vec<usize>),
    context: &str,
) {
    for (r, (a, b)) in y.iter().zip(y_ref).enumerate() {
        if bitwise {
            assert!(
                a.to_f64().to_bits() == b.to_f64().to_bits(),
                "{context}: row {r}: {a} != {b} (order-preserving plan must be bitwise)"
            );
        } else {
            // Reassociation across up to 8 accumulators plus FMA
            // contraction: error per row is O(row_nnz) rounding steps on
            // terms of magnitude `scale`.
            let bound = (scales.1[r] as f64 + 8.0) * eps * scales.0[r].max(1e-30);
            let diff = (a.to_f64() - b.to_f64()).abs();
            assert!(diff <= bound, "{context}: row {r}: |{a} - {b}| = {diff} > {bound}");
        }
    }
}

fn run_suite<V: Scalar>(eps: f64) {
    let opts = ConvertOptions { min_padded_allowance: 1 << 22, ..Default::default() };
    for (name, coo) in gallery() {
        let base: DynamicMatrix<V> = cast(&coo);
        let x = input::<V>(base.ncols());
        let scales = row_scales(&coo, &x);
        let mut y_ref = vec![V::ZERO; base.nrows()];
        spmv_serial(&base, &x, &mut y_ref).unwrap();

        for fmt in morpheus::format::ALL_FORMATS {
            let Ok(m) = base.to_format(fmt, &opts) else {
                continue; // non-viable realization (e.g. DIA of a scatter)
            };
            // The reference is the serial kernel of the *realized* format
            // (conversion itself may legally reorder within-row terms for
            // some formats, which is not what this suite is probing).
            let mut y_fmt = vec![V::ZERO; m.nrows()];
            spmv_serial(&m, &x, &mut y_fmt).unwrap();
            let analysis = Analysis::of(&m, 0.2);

            for workers in 1..=5usize {
                let pool = ThreadPool::new(workers);
                for variant in ALL_VARIANTS {
                    let plan = ExecPlan::build_with_variant(&m, workers, Some(&analysis), variant);
                    let context = format!("{name}/{fmt}/{variant}/{workers}w");
                    let mut y = vec![V::from_f64(f64::NAN); m.nrows()];
                    plan.spmv(&m, &x, &mut y, &pool).unwrap();
                    check_against_reference(&y, &y_fmt, plan.preserves_order(), eps, &scales, &context);

                    if workers == 3 {
                        // The serving layer's busy-pool fallback: inline
                        // replay must be bitwise identical to the pooled
                        // execution, whatever the variant.
                        let mut y_inline = vec![V::from_f64(f64::NAN); m.nrows()];
                        plan.spmv_unpooled(&m, &x, &mut y_inline).unwrap();
                        for (r, (a, b)) in y_inline.iter().zip(&y).enumerate() {
                            assert!(
                                a.to_f64().to_bits() == b.to_f64().to_bits(),
                                "{context}: row {r}: unpooled {a} != pooled {b}"
                            );
                        }
                    }
                }

                // Auto-selected plans obey the same contract.
                let plan = ExecPlan::build(&m, workers, Some(&analysis));
                let context = format!("{name}/{fmt}/auto/{workers}w");
                let mut y = vec![V::from_f64(f64::NAN); m.nrows()];
                plan.spmv(&m, &x, &mut y, &pool).unwrap();
                check_against_reference(&y, &y_fmt, plan.preserves_order(), eps, &scales, &context);
            }
        }
    }
}

#[test]
fn forced_variants_match_the_scalar_reference_f64() {
    run_suite::<f64>(f64::EPSILON);
}

#[test]
fn forced_variants_match_the_scalar_reference_f32() {
    run_suite::<f32>(f32::EPSILON as f64);
}

#[test]
fn planned_spmm_stays_bitwise_identical_to_serial() {
    // SpMM replays the plan's partitions with the scalar bodies: variants
    // must not leak into it, whatever the plan selected for SpMV.
    let opts = ConvertOptions { min_padded_allowance: 1 << 22, ..Default::default() };
    let k = 3usize;
    for (name, coo) in gallery() {
        let base: DynamicMatrix<f64> = cast(&coo);
        let x: Vec<f64> = (0..base.ncols() * k).map(|i| 1.0 + (i % 11) as f64 * 0.125).collect();
        for fmt in morpheus::format::ALL_FORMATS {
            let Ok(m) = base.to_format(fmt, &opts) else { continue };
            let mut y_ref = vec![0.0f64; m.nrows() * k];
            spmm_serial(&m, &x, &mut y_ref, k).unwrap();
            let analysis = Analysis::of(&m, 0.2);
            let pool = ThreadPool::new(4);
            for variant in ALL_VARIANTS {
                let plan = ExecPlan::build_with_variant(&m, 4, Some(&analysis), variant);
                let mut y = vec![f64::NAN; m.nrows() * k];
                plan.spmm(&m, &x, &mut y, k, &pool).unwrap();
                assert!(
                    y.iter().zip(&y_ref).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{name}/{fmt}/{variant}: planned SpMM diverged from serial"
                );
            }
        }
    }
}
