//! Hybrid ELL + COO (HYB) format.

use crate::coo::CooMatrix;
use crate::ell::EllMatrix;
use crate::error::MorpheusError;
use crate::format::FormatId;
use crate::scalar::Scalar;
use crate::Result;

/// Policy for choosing the HYB split width `K_H` (§II-B: "the number of
/// non-zeros per row to be stored in the ELL portion").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum HybSplit {
    /// Pick the `K_H` minimising total storage bytes: each ELL slot costs a
    /// value plus an index, each COO surplus entry costs a value plus two
    /// indices; the optimum is found by scanning the row-length histogram.
    #[default]
    Auto,
    /// Fixed `K_H`.
    Width(usize),
}

/// Hybrid ELL/COO matrix (§II-B).
///
/// The first `K_H` entries of every row live in the ELL portion; any surplus
/// spills into the COO portion. Combines ELL's regular, vectorisable layout
/// with COO's tolerance of a few long rows.
#[derive(Debug, Clone, PartialEq)]
pub struct HybMatrix<V> {
    ell: EllMatrix<V>,
    coo: CooMatrix<V>,
}

impl<V: Scalar> HybMatrix<V> {
    /// Builds from an ELL and a COO part with identical shapes.
    pub fn from_parts(ell: EllMatrix<V>, coo: CooMatrix<V>) -> Result<Self> {
        if ell.nrows() != coo.nrows() || ell.ncols() != coo.ncols() {
            return Err(MorpheusError::ShapeMismatch {
                expected: format!("{}x{}", ell.nrows(), ell.ncols()),
                got: format!("{}x{}", coo.nrows(), coo.ncols()),
            });
        }
        Ok(HybMatrix { ell, coo })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.ell.nrows()
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ell.ncols()
    }

    /// Structural non-zeros across both portions.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.ell.nnz() + self.coo.nnz()
    }

    /// Format identifier ([`FormatId::Hyb`]).
    #[inline]
    pub fn format_id(&self) -> FormatId {
        FormatId::Hyb
    }

    /// The ELL portion.
    #[inline]
    pub fn ell(&self) -> &EllMatrix<V> {
        &self.ell
    }

    /// The COO portion.
    #[inline]
    pub fn coo(&self) -> &CooMatrix<V> {
        &self.coo
    }

    /// The split width `K_H` in effect.
    #[inline]
    pub fn split_width(&self) -> usize {
        self.ell.width()
    }

    /// Bytes of heap storage across both portions.
    pub fn storage_bytes(&self) -> usize {
        self.ell.storage_bytes() + self.coo.storage_bytes()
    }

    /// Consumes the matrix, returning the two portions.
    pub fn into_parts(self) -> (EllMatrix<V>, CooMatrix<V>) {
        (self.ell, self.coo)
    }
}

/// Chooses the storage-optimal `K_H` from a row-length histogram.
///
/// Minimises `ell_slot_bytes * nrows * K + coo_entry_bytes * surplus(K)`
/// where `surplus(K) = Σ_i max(0, len_i - K)`. Scans all candidate `K` in
/// `0..=max_len` using suffix sums, O(nrows + max_len).
pub fn optimal_hyb_width(row_lengths: &[usize], value_bytes: usize) -> usize {
    optimal_hyb_width_iter(row_lengths.len(), row_lengths.iter().copied(), value_bytes)
}

/// [`optimal_hyb_width`] reading a `u32` row-nnz histogram, the shape the
/// shared [`crate::analysis::Analysis`] artifact stores — so HYB planning
/// can reuse the one-pass analysis instead of rescanning the matrix.
pub fn optimal_hyb_width_u32(row_lengths: &[u32], value_bytes: usize) -> usize {
    optimal_hyb_width_iter(row_lengths.len(), row_lengths.iter().map(|&l| l as usize), value_bytes)
}

fn optimal_hyb_width_iter(
    nrows: usize,
    row_lengths: impl Iterator<Item = usize> + Clone,
    value_bytes: usize,
) -> usize {
    if nrows == 0 {
        return 0;
    }
    let max_len = row_lengths.clone().max().unwrap_or(0);
    if max_len == 0 {
        return 0;
    }
    let index_bytes = std::mem::size_of::<usize>();
    let ell_slot = (value_bytes + index_bytes) as u128;
    let coo_entry = (value_bytes + 2 * index_bytes) as u128;

    // rows_with_len[l] = number of rows of length exactly l.
    let mut rows_with_len = vec![0u64; max_len + 1];
    for l in row_lengths {
        rows_with_len[l] += 1;
    }
    // For K from max_len down to 0 maintain:
    //   rows_longer = #rows with len > K
    //   surplus     = Σ max(0, len_i - K)
    // and evaluate cost(K).
    let mut rows_longer: u128 = 0;
    let mut surplus: u128 = 0;
    let mut best_k = max_len;
    let mut best_cost = ell_slot * (nrows as u128) * (max_len as u128);
    for k in (0..max_len).rev() {
        rows_longer += rows_with_len[k + 1] as u128;
        surplus += rows_longer;
        let cost = ell_slot * (nrows as u128) * (k as u128) + coo_entry * surplus;
        // Prefer larger K on ties: keeps more entries in the regular portion.
        if cost < best_cost {
            best_cost = cost;
            best_k = k;
        }
    }
    best_k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_rows_go_fully_to_ell() {
        // All rows length 4: surplus is zero at K = 4 and ELL slots are
        // cheaper than COO entries, so the optimum keeps everything in ELL.
        let lens = vec![4usize; 100];
        assert_eq!(optimal_hyb_width(&lens, 8), 4);
    }

    #[test]
    fn single_long_row_spills_to_coo() {
        // 99 rows of length 2, one row of length 1000. Padding all rows to
        // 1000 would be absurd; optimum keeps K near 2.
        let mut lens = vec![2usize; 99];
        lens.push(1000);
        let k = optimal_hyb_width(&lens, 8);
        assert_eq!(k, 2);
    }

    #[test]
    fn empty_and_zero_rows() {
        assert_eq!(optimal_hyb_width(&[], 8), 0);
        assert_eq!(optimal_hyb_width(&[0, 0, 0], 8), 0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let ell = EllMatrix::<f64>::new(3, 3);
        let coo = CooMatrix::<f64>::new(4, 3);
        assert!(HybMatrix::from_parts(ell, coo).is_err());
    }

    #[test]
    fn nnz_sums_portions() {
        let ell = EllMatrix::<f64>::from_parts(2, 2, 1, vec![0, 1], vec![1.0, 2.0]).unwrap();
        let coo = CooMatrix::<f64>::from_triplets(2, 2, &[0], &[1], &[3.0]).unwrap();
        let hyb = HybMatrix::from_parts(ell, coo).unwrap();
        assert_eq!(hyb.nnz(), 3);
        assert_eq!(hyb.split_width(), 1);
    }
}
