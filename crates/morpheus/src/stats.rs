//! Per-format matrix statistics (§VI-C).
//!
//! The Oracle's ML tuners need the ten features of Table I *without*
//! converting the matrix out of its active format — "Morpheus has been
//! extended to provide matrix statistics on a per-format basis ...
//! eliminating the need for any data transfers". Each format here computes
//! the row-occupancy histogram and the diagonal populations directly from
//! its own arrays, fusing passes where possible.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dia::DiaMatrix;
use crate::dynamic::DynamicMatrix;
use crate::ell::{EllMatrix, ELL_PAD};
use crate::hdc::{true_diag_threshold, HdcMatrix};
use crate::hyb::HybMatrix;
use crate::scalar::Scalar;

/// Summary statistics of a sparsity pattern: everything Table I's features
/// derive from.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Number of rows (`M`).
    pub nrows: usize,
    /// Number of columns (`N`).
    pub ncols: usize,
    /// Structural non-zeros (`NNZ`).
    pub nnz: usize,
    /// Minimum non-zeros in any row (`min(NNZ)` of Table I).
    pub row_nnz_min: usize,
    /// Maximum non-zeros in any row (`max(NNZ)` of Table I).
    pub row_nnz_max: usize,
    /// Mean non-zeros per row (`NNZ̄`).
    pub row_nnz_mean: f64,
    /// Population standard deviation of non-zeros per row (`σ_NNZ`).
    pub row_nnz_std: f64,
    /// Number of non-empty diagonals (`ND`).
    pub ndiags: usize,
    /// Number of *true* diagonals (`NTD`): population ≥
    /// `true_diag_alpha * min(nrows, ncols)`.
    pub ntrue_diags: usize,
    /// The threshold fraction used for `ntrue_diags`.
    pub true_diag_alpha: f64,
    /// Fraction of entries lying on a populated diagonal whose immediate
    /// left-neighbour diagonal is also populated. Dense `r x c` blocks
    /// place their entries on runs of adjacent diagonals, so this is the
    /// block-compactness (BSR-suitability) signal; scattered patterns score
    /// near zero.
    pub block_density: f64,
    /// Padded slots of the default power-of-two BELL bucket ladder divided
    /// by `nnz` (1.0 = no padding, and for empty matrices). Large values
    /// mean the row-length distribution fights bucketing — the
    /// heavy-tail / bucket-skew signal.
    pub bucket_skew: f64,
}

impl MatrixStats {
    /// Density `ρ = NNZ / (M * N)`; zero for degenerate shapes.
    pub fn density(&self) -> f64 {
        let cells = self.nrows as f64 * self.ncols as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.nnz as f64 / cells
        }
    }
}

/// Accumulates row and diagonal histograms, then reduces them to
/// [`MatrixStats`]. The `diag_pop` array indexes diagonals by
/// `col - row + (nrows - 1)`, covering all `nrows + ncols - 1` diagonals.
struct StatsAccum {
    nrows: usize,
    ncols: usize,
    row_counts: Vec<u32>,
    diag_pop: Vec<u32>,
}

impl StatsAccum {
    fn new(nrows: usize, ncols: usize) -> Self {
        let slots = if nrows == 0 || ncols == 0 { 0 } else { nrows + ncols - 1 };
        StatsAccum { nrows, ncols, row_counts: vec![0; nrows], diag_pop: vec![0; slots] }
    }

    #[inline(always)]
    fn record(&mut self, r: usize, c: usize) {
        self.row_counts[r] += 1;
        self.diag_pop[c + self.nrows - 1 - r] += 1;
    }

    fn finish(self, alpha: f64) -> MatrixStats {
        reduce_stats(self.nrows, self.ncols, &self.row_counts, &self.diag_pop, alpha)
    }
}

/// Reduces a row-nnz histogram and diagonal-population array to
/// [`MatrixStats`].
///
/// This is the single reduction every stats producer goes through — the
/// per-format [`stats_of`] accumulators and the shared
/// [`crate::analysis::Analysis`] artifact — so their results are **bitwise**
/// identical (summation order over the histograms is fixed).
pub(crate) fn reduce_stats(
    nrows: usize,
    ncols: usize,
    row_counts: &[u32],
    diag_pop: &[u32],
    alpha: f64,
) -> MatrixStats {
    let nnz: usize = row_counts.iter().map(|&c| c as usize).sum();
    let (mut min, mut max) = if nrows == 0 { (0, 0) } else { (u32::MAX, 0u32) };
    for &c in row_counts {
        min = min.min(c);
        max = max.max(c);
    }
    if nrows == 0 {
        min = 0;
    }
    let mean = if nrows == 0 { 0.0 } else { nnz as f64 / nrows as f64 };
    let var = if nrows == 0 {
        0.0
    } else {
        row_counts.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / nrows as f64
    };
    let threshold = true_diag_threshold(nrows, ncols, alpha) as u32;
    let mut ndiags = 0usize;
    let mut ntrue = 0usize;
    for &p in diag_pop {
        if p > 0 {
            ndiags += 1;
            if p >= threshold {
                ntrue += 1;
            }
        }
    }
    // Population-weighted diagonal adjacency: entries of dense blocks land
    // on runs of adjacent diagonals.
    let mut adjacent_pop = 0u64;
    for d in 1..diag_pop.len() {
        if diag_pop[d] > 0 && diag_pop[d - 1] > 0 {
            adjacent_pop += diag_pop[d] as u64;
        }
    }
    let block_density = if nnz == 0 { 0.0 } else { adjacent_pop as f64 / nnz as f64 };
    // Exact BELL padding under the default ladder, straight from the row
    // histogram: each non-empty row rounds up to its bucket width.
    let ladder = crate::bell::default_bucket_widths(max as usize);
    let mut bell_padded = 0u64;
    for &c in row_counts {
        if c > 0 {
            let b = ladder.partition_point(|&w| w < c as usize);
            bell_padded += ladder[b] as u64;
        }
    }
    let bucket_skew = if nnz == 0 { 1.0 } else { bell_padded as f64 / nnz as f64 };
    MatrixStats {
        nrows,
        ncols,
        nnz,
        row_nnz_min: min as usize,
        row_nnz_max: max as usize,
        row_nnz_mean: mean,
        row_nnz_std: var.sqrt(),
        ndiags,
        ntrue_diags: ntrue,
        true_diag_alpha: alpha,
        block_density,
        bucket_skew,
    }
}

/// Streams every structural entry of `m` (in its active format) into a
/// row-nnz histogram and a diagonal-population array
/// (`diag[col + nrows - 1 - row]`), using the cache-friendliest walk each
/// format affords. `row` must have length `nrows`, `diag` length
/// `nrows + ncols - 1` (0 for degenerate shapes). Shared by [`stats_of`] and
/// the fused analysis pass.
pub(crate) fn accumulate_hists<V: Scalar>(m: &DynamicMatrix<V>, row: &mut [u32], diag: &mut [u32]) {
    let nrows = m.nrows();
    let mut record = |r: usize, c: usize| {
        row[r] += 1;
        diag[c + nrows - 1 - r] += 1;
    };
    match m {
        DynamicMatrix::Coo(a) => {
            for i in 0..a.nnz() {
                record(a.row_indices()[i], a.col_indices()[i]);
            }
        }
        DynamicMatrix::Csr(a) => {
            for r in 0..a.nrows() {
                for &c in a.row_cols(r) {
                    record(r, c);
                }
            }
        }
        DynamicMatrix::Dia(a) => accumulate_dia(a, &mut record),
        DynamicMatrix::Ell(a) => accumulate_ell(a, &mut record),
        DynamicMatrix::Hyb(a) => {
            accumulate_ell(a.ell(), &mut record);
            for i in 0..a.coo().nnz() {
                record(a.coo().row_indices()[i], a.coo().col_indices()[i]);
            }
        }
        DynamicMatrix::Hdc(a) => {
            accumulate_dia(a.dia(), &mut record);
            for r in 0..a.csr().nrows() {
                for &c in a.csr().row_cols(r) {
                    record(r, c);
                }
            }
        }
        DynamicMatrix::Bsr(a) => accumulate_rowmajor(a, &mut record),
        DynamicMatrix::Bell(a) => accumulate_rowmajor(a, &mut record),
    }
}

fn accumulate_rowmajor<V: Scalar>(
    a: &dyn crate::rowmajor::RowMajor<V>,
    record: &mut impl FnMut(usize, usize),
) {
    for r in 0..a.nrows() {
        a.emit_row(r, &mut |c, _v| record(r, c));
    }
}

fn accumulate_dia<V: Scalar>(a: &DiaMatrix<V>, record: &mut impl FnMut(usize, usize)) {
    for d in 0..a.ndiags() {
        let off = a.offsets()[d];
        let diag = a.diagonal(d);
        for i in a.diag_row_range(d) {
            if diag[i] != V::ZERO {
                record(i, (i as isize + off) as usize);
            }
        }
    }
}

fn accumulate_ell<V: Scalar>(a: &EllMatrix<V>, record: &mut impl FnMut(usize, usize)) {
    let nrows = a.nrows();
    for k in 0..a.width() {
        let base = k * nrows;
        for i in 0..nrows {
            let c = a.col_indices()[base + i];
            if c != ELL_PAD {
                record(i, c);
            }
        }
    }
}

/// Statistics from COO storage: single fused pass over the triplets.
pub fn stats_coo<V: Scalar>(a: &CooMatrix<V>, alpha: f64) -> MatrixStats {
    let mut acc = StatsAccum::new(a.nrows(), a.ncols());
    for i in 0..a.nnz() {
        acc.record(a.row_indices()[i], a.col_indices()[i]);
    }
    acc.finish(alpha)
}

/// Statistics from CSR storage: row lengths come from the offsets array,
/// diagonal populations from one pass over the column indices.
pub fn stats_csr<V: Scalar>(a: &CsrMatrix<V>, alpha: f64) -> MatrixStats {
    let mut acc = StatsAccum::new(a.nrows(), a.ncols());
    for r in 0..a.nrows() {
        for &c in a.row_cols(r) {
            acc.record(r, c);
        }
    }
    acc.finish(alpha)
}

/// Statistics from DIA storage: walks only the in-bounds slots of each
/// stored diagonal; padding (zero) slots are not structural entries.
pub fn stats_dia<V: Scalar>(a: &DiaMatrix<V>, alpha: f64) -> MatrixStats {
    let mut acc = StatsAccum::new(a.nrows(), a.ncols());
    for d in 0..a.ndiags() {
        let off = a.offsets()[d];
        let diag = a.diagonal(d);
        for i in a.diag_row_range(d) {
            if diag[i] != V::ZERO {
                acc.record(i, (i as isize + off) as usize);
            }
        }
    }
    acc.finish(alpha)
}

/// Statistics from ELL storage: walks the slabs, skipping padding slots via
/// the sentinel.
pub fn stats_ell<V: Scalar>(a: &EllMatrix<V>, alpha: f64) -> MatrixStats {
    let mut acc = StatsAccum::new(a.nrows(), a.ncols());
    let nrows = a.nrows();
    for k in 0..a.width() {
        let base = k * nrows;
        for i in 0..nrows {
            let c = a.col_indices()[base + i];
            if c != ELL_PAD {
                acc.record(i, c);
            }
        }
    }
    acc.finish(alpha)
}

/// Statistics from HYB storage: both portions stream into one accumulator,
/// so hybrid storage needs no merge step.
pub fn stats_hyb<V: Scalar>(a: &HybMatrix<V>, alpha: f64) -> MatrixStats {
    let mut acc = StatsAccum::new(a.nrows(), a.ncols());
    let ell = a.ell();
    let nrows = ell.nrows();
    for k in 0..ell.width() {
        let base = k * nrows;
        for i in 0..nrows {
            let c = ell.col_indices()[base + i];
            if c != ELL_PAD {
                acc.record(i, c);
            }
        }
    }
    for i in 0..a.coo().nnz() {
        acc.record(a.coo().row_indices()[i], a.coo().col_indices()[i]);
    }
    acc.finish(alpha)
}

/// Statistics from HDC storage: both portions stream into one accumulator.
pub fn stats_hdc<V: Scalar>(a: &HdcMatrix<V>, alpha: f64) -> MatrixStats {
    let mut acc = StatsAccum::new(a.nrows(), a.ncols());
    let dia = a.dia();
    for d in 0..dia.ndiags() {
        let off = dia.offsets()[d];
        let diag = dia.diagonal(d);
        for i in dia.diag_row_range(d) {
            if diag[i] != V::ZERO {
                acc.record(i, (i as isize + off) as usize);
            }
        }
    }
    let csr = a.csr();
    for r in 0..csr.nrows() {
        for &c in csr.row_cols(r) {
            acc.record(r, c);
        }
    }
    acc.finish(alpha)
}

/// Statistics of a [`DynamicMatrix`], computed from whichever format is
/// active — the "online feature extraction by inspecting the active format"
/// of §VI-C.
pub fn stats_of<V: Scalar>(m: &DynamicMatrix<V>, alpha: f64) -> MatrixStats {
    crate::analysis::passes::record_traversal();
    match m {
        DynamicMatrix::Coo(a) => stats_coo(a, alpha),
        DynamicMatrix::Csr(a) => stats_csr(a, alpha),
        DynamicMatrix::Dia(a) => stats_dia(a, alpha),
        DynamicMatrix::Ell(a) => stats_ell(a, alpha),
        DynamicMatrix::Hyb(a) => stats_hyb(a, alpha),
        DynamicMatrix::Hdc(a) => stats_hdc(a, alpha),
        DynamicMatrix::Bsr(a) => stats_rowmajor(a, a.ncols(), alpha),
        DynamicMatrix::Bell(a) => stats_rowmajor(a, a.ncols(), alpha),
    }
}

/// Statistics from any row-major-walkable storage (BSR and BELL reuse
/// their kernel-facing walk; padding slots are never emitted).
pub(crate) fn stats_rowmajor<V: Scalar>(
    a: &dyn crate::rowmajor::RowMajor<V>,
    ncols: usize,
    alpha: f64,
) -> MatrixStats {
    let mut acc = StatsAccum::new(a.nrows(), ncols);
    for r in 0..a.nrows() {
        a.emit_row(r, &mut |c, _v| acc.record(r, c));
    }
    acc.finish(alpha)
}

/// Per-row non-zero counts of a [`DynamicMatrix`] (used by the machine
/// model's load-imbalance and warp-divergence estimators).
pub fn row_nnz_histogram<V: Scalar>(m: &DynamicMatrix<V>) -> Vec<u32> {
    crate::analysis::passes::record_traversal();
    let mut counts = vec![0u32; m.nrows()];
    match m {
        DynamicMatrix::Coo(a) => {
            for &r in a.row_indices() {
                counts[r] += 1;
            }
        }
        DynamicMatrix::Csr(a) => {
            for (r, slot) in counts.iter_mut().enumerate() {
                *slot = a.row_nnz(r) as u32;
            }
        }
        _ => {
            // Remaining formats: derive from a COO view. Only used on the
            // cold path (profiling), never by the online tuners.
            for &r in m.to_coo().row_indices() {
                counts[r] += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::ConvertOptions;
    use crate::format::ALL_FORMATS;
    use crate::test_util::random_coo;

    #[test]
    fn known_matrix_stats() {
        // [1 0 2 0]
        // [0 3 0 0]
        // [4 0 5 6]
        // [0 0 0 0]
        let coo = CooMatrix::<f64>::from_triplets(
            4,
            4,
            &[0, 0, 1, 2, 2, 2],
            &[0, 2, 1, 0, 2, 3],
            &[1., 2., 3., 4., 5., 6.],
        )
        .unwrap();
        let s = stats_coo(&coo, 0.2);
        assert_eq!(s.nrows, 4);
        assert_eq!(s.ncols, 4);
        assert_eq!(s.nnz, 6);
        assert_eq!(s.row_nnz_min, 0);
        assert_eq!(s.row_nnz_max, 3);
        assert!((s.row_nnz_mean - 1.5).abs() < 1e-12);
        // Row counts [2, 1, 3, 0]; population variance = 1.25.
        assert!((s.row_nnz_std - 1.25f64.sqrt()).abs() < 1e-12);
        // Diagonals with entries: offsets {0 (x3), 2, -2, 1} -> 4 distinct.
        assert_eq!(s.ndiags, 4);
        // Threshold = ceil(0.2 * 4) = 1 -> every non-empty diagonal is true.
        assert_eq!(s.ntrue_diags, 4);
        assert!((s.density() - 6.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn true_diag_threshold_filters() {
        // 10x10, main diagonal full (10 entries), one stray entry.
        let mut rows: Vec<usize> = (0..10).collect();
        let mut cols: Vec<usize> = (0..10).collect();
        rows.push(0);
        cols.push(5);
        let vals = vec![1.0; 11];
        let coo = CooMatrix::<f64>::from_triplets(10, 10, &rows, &cols, &vals).unwrap();
        let s = stats_coo(&coo, 0.5); // threshold = 5
        assert_eq!(s.ndiags, 2);
        assert_eq!(s.ntrue_diags, 1);
    }

    #[test]
    fn stats_invariant_across_formats() {
        for seed in 0..4u64 {
            let coo = random_coo::<f64>(50, 40, 350, seed);
            let base = DynamicMatrix::from(coo);
            let reference = stats_of(&base, 0.2);
            let opts = ConvertOptions::default();
            for &f in &ALL_FORMATS {
                let m = base.to_format(f, &opts).unwrap();
                let s = stats_of(&m, 0.2);
                assert_eq!(s, reference, "stats differ for {f} (seed {seed})");
            }
        }
    }

    #[test]
    fn empty_matrix_stats() {
        let m = DynamicMatrix::from(CooMatrix::<f64>::new(3, 3));
        let s = stats_of(&m, 0.2);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.row_nnz_min, 0);
        assert_eq!(s.row_nnz_max, 0);
        assert_eq!(s.ndiags, 0);
        assert_eq!(s.ntrue_diags, 0);
        assert_eq!(s.density(), 0.0);
    }

    #[test]
    fn zero_sized_matrix_stats() {
        let m = DynamicMatrix::from(CooMatrix::<f64>::new(0, 0));
        let s = stats_of(&m, 0.2);
        assert_eq!(s.nrows, 0);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.density(), 0.0);
    }

    #[test]
    fn row_histogram_matches_formats() {
        let coo = random_coo::<f64>(30, 30, 150, 11);
        let base = DynamicMatrix::from(coo);
        let expect = row_nnz_histogram(&base);
        let opts = ConvertOptions::default();
        for &f in &ALL_FORMATS {
            let m = base.to_format(f, &opts).unwrap();
            assert_eq!(row_nnz_histogram(&m), expect, "{f}");
        }
    }
}
