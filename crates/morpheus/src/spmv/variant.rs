//! Bottleneck-aware kernel variants: the optimization axis under the
//! format axis.
//!
//! The Oracle picks a storage *format*; Elafrou et al. ("A lightweight
//! optimization selection method for SpMV") show the next win is picking
//! the *optimization*: classify what actually limits a matrix's SpMV —
//! memory **bandwidth**, memory **latency** (scattered `x` gathers), or
//! thread **imbalance** — and dispatch a kernel body specialised for that
//! bottleneck. This module defines the taxonomy shared by every layer:
//!
//! * [`KernelVariant`] — which per-range loop body runs. Every format has
//!   the scalar reference body; CSR additionally has an unrolled/SIMD
//!   accumulation body ([`KernelVariant::Unrolled`]) and a
//!   software-prefetch body ([`KernelVariant::Prefetch`]); the padded
//!   formats (DIA/ELL, and their composite portions) have a row-blocked
//!   body ([`KernelVariant::Blocked`]).
//! * [`Bottleneck`] — the per-matrix label derived from the Table-I
//!   features ([`crate::Analysis::bottleneck`]), which drives per-range
//!   variant selection in [`crate::ExecPlan`].
//! * [`CpuFeatures`] — runtime ISA detection
//!   (`std::is_x86_feature_detected!`) with a stable fingerprint, so a
//!   plan records the features its bodies were dispatched under and is
//!   never replayed under a different set.
//!
//! The SIMD bodies are *runtime dispatched*: [`dot_row_unrolled`] checks
//! the cached [`CpuFeatures`] and the scalar type once per row range and
//! uses AVX2+FMA intrinsics where available, falling back to a portable
//! four-accumulator `mul_add` unroll on every other arch. Both change the
//! per-row accumulation order (that is where the speed comes from), so
//! `Unrolled` results are *not* bitwise identical to the scalar reference
//! — they are within a small ULP bound (property-tested in
//! `tests/kernel_variants.rs`). `Prefetch` and `Blocked` preserve the
//! reference accumulation order exactly and remain bitwise identical.

use crate::format::FormatId;
use crate::scalar::Scalar;
use std::any::TypeId;
use std::fmt;
use std::sync::OnceLock;

/// Bump when the variant taxonomy or the selection rules change: the
/// serving layer folds this into its plan-cache key so cached plans from
/// an older selection policy are never replayed under a newer one.
pub const TAXONOMY_VERSION: u64 = 1;

/// Which specialised loop body a row (or entry) range runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum KernelVariant {
    /// The reference body — the exact per-row accumulation order of the
    /// serial kernels. Always applicable.
    #[default]
    Scalar,
    /// Multi-accumulator CSR row reduction: AVX2+FMA lanes where the CPU
    /// has them (runtime-detected), a portable four-accumulator `mul_add`
    /// unroll otherwise. Changes accumulation order (ULP-bounded, not
    /// bitwise). For bandwidth/compute-limited matrices with enough
    /// non-zeros per row to fill the accumulators.
    Unrolled,
    /// The scalar CSR body plus software prefetch of the `x` gathers a
    /// fixed distance ahead — hides DRAM latency on scattered column
    /// patterns. Same accumulation order as the reference (bitwise).
    Prefetch,
    /// Row-blocked DIA/ELL traversal: the diagonal/slab sweep runs over
    /// blocks of rows so the output block and its `x` window stay
    /// cache-resident across all diagonals. Per-row accumulation order is
    /// unchanged (bitwise).
    Blocked,
}

/// All variants, in [`KernelVariant::index`] order.
pub const ALL_VARIANTS: [KernelVariant; 4] =
    [KernelVariant::Scalar, KernelVariant::Unrolled, KernelVariant::Prefetch, KernelVariant::Blocked];

impl KernelVariant {
    /// Number of variants (the size of [`ALL_VARIANTS`]).
    pub const COUNT: usize = 4;

    /// Stable small index (used by telemetry packing and fingerprints).
    pub fn index(self) -> usize {
        match self {
            KernelVariant::Scalar => 0,
            KernelVariant::Unrolled => 1,
            KernelVariant::Prefetch => 2,
            KernelVariant::Blocked => 3,
        }
    }

    /// Inverse of [`KernelVariant::index`].
    pub fn from_index(i: usize) -> Option<KernelVariant> {
        ALL_VARIANTS.get(i).copied()
    }

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Scalar => "scalar",
            KernelVariant::Unrolled => "unrolled",
            KernelVariant::Prefetch => "prefetch",
            KernelVariant::Blocked => "blocked",
        }
    }

    /// `true` when the body performs the reference per-row accumulation
    /// order, making its results bitwise identical to the serial kernels.
    pub fn preserves_order(self) -> bool {
        !matches!(self, KernelVariant::Unrolled)
    }

    /// `true` when this variant has a specialised body for `format`'s
    /// per-range loops (composites report the union of their portions).
    pub fn applies_to(self, format: FormatId) -> bool {
        match self {
            KernelVariant::Scalar => true,
            KernelVariant::Unrolled | KernelVariant::Prefetch => {
                matches!(format, FormatId::Csr | FormatId::Hdc)
            }
            KernelVariant::Blocked => {
                matches!(
                    format,
                    FormatId::Dia | FormatId::Ell | FormatId::Hyb | FormatId::Hdc | FormatId::Bsr
                )
            }
        }
    }

    /// The variants worth benchmarking for `format`: [`ALL_VARIANTS`]
    /// filtered by [`KernelVariant::applies_to`].
    pub fn applicable(format: FormatId) -> Vec<KernelVariant> {
        ALL_VARIANTS.iter().copied().filter(|v| v.applies_to(format)).collect()
    }
}

impl fmt::Display for KernelVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What limits a matrix's SpMV throughput — the label that drives variant
/// selection (taxonomy of Elafrou et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bottleneck {
    /// Streaming the matrix arrays saturates memory bandwidth: regular
    /// access, balanced rows. The unrolled body helps where rows are long
    /// enough to fill its accumulators.
    Bandwidth,
    /// Scattered `x` gathers stall on memory latency: many populated
    /// diagonals (near-random column patterns) with little `x` reuse.
    /// Software prefetch hides part of the miss latency.
    Latency,
    /// A skewed row-length distribution makes a few hub rows dominate
    /// wall time. The nnz-weighted partition absorbs the skew; hub-heavy
    /// ranges still profit from the unrolled body.
    Imbalance,
}

impl Bottleneck {
    /// Classifies from the Table-I features. Shared by
    /// [`crate::Analysis::bottleneck`] and the serving layer's
    /// `FeatureVector`, so the two derivations cannot disagree.
    ///
    /// Rules, checked in order:
    /// 1. **Imbalance** — the longest row is ≥ 8× the mean and the row
    ///    std-dev exceeds 2× the mean: a handful of hub rows carry the
    ///    matrix.
    /// 2. **Latency** — a large fraction (> 25%) of all possible
    ///    diagonals is populated (a near-random column pattern) while
    ///    each `x` element is reused fewer than 16 times: the gathers
    ///    miss cache and dominate.
    /// 3. **Bandwidth** — everything else (banded, stenciled or dense-ish
    ///    structure streams predictably).
    pub fn classify(
        nrows: usize,
        ncols: usize,
        nnz: usize,
        row_mean: f64,
        row_max: usize,
        row_std: f64,
        ndiags: usize,
    ) -> Bottleneck {
        if nnz == 0 {
            return Bottleneck::Bandwidth;
        }
        let mean = row_mean.max(1e-9);
        if row_max as f64 >= 8.0 * mean.max(1.0) && row_std > 2.0 * mean {
            return Bottleneck::Imbalance;
        }
        let slots = (nrows + ncols).saturating_sub(1).max(1);
        let scatter = ndiags as f64 / slots as f64;
        let x_reuse = nnz as f64 / ncols.max(1) as f64;
        if scatter > 0.25 && x_reuse < 16.0 {
            return Bottleneck::Latency;
        }
        Bottleneck::Bandwidth
    }

    /// Stable small index (used by bench snapshots).
    pub fn index(self) -> usize {
        match self {
            Bottleneck::Bandwidth => 0,
            Bottleneck::Latency => 1,
            Bottleneck::Imbalance => 2,
        }
    }

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Bottleneck::Bandwidth => "bandwidth",
            Bottleneck::Latency => "latency",
            Bottleneck::Imbalance => "imbalance",
        }
    }
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// Selection rules (shared by ExecPlan and the per-call composite kernels)
// ---------------------------------------------------------------------------

/// Minimum mean non-zeros per row in a range before the unrolled body is
/// worth its per-row reduce overhead. Measured on AVX2+FMA hardware: below
/// ~32 the multi-accumulator setup/remainder costs more than the compiler's
/// auto-vectorized scalar loop; the win grows from there (≈1.1× at 32,
/// ≈1.35× at 128, ≈2× at 256 nnz/row).
pub const UNROLL_MIN_AVG_NNZ: f64 = 32.0;
/// Above this mean row length the unrolled body's raw throughput beats
/// latency hiding even on scattered-gather matrices, so the prefetch body
/// yields to it. Below [`UNROLL_MIN_AVG_NNZ`] both specialized bodies lose
/// to scalar — prefetch only pays in the band between the two.
pub const PREFETCH_MAX_AVG_NNZ: f64 = 128.0;
/// Minimum populated diagonals before the row-blocked DIA body beats the
/// plain sweep (with fewer, the output block never leaves cache anyway).
pub const BLOCK_MIN_DIAGS: usize = 4;
/// Minimum ELL slab width before the row-blocked ELL body pays off.
pub const BLOCK_MIN_WIDTH: usize = 4;
/// Row-block length of the blocked DIA/ELL bodies: 256 rows of `f64`
/// output plus the matching `x` window sit comfortably in L1.
pub const BLOCK_ROWS: usize = 256;
/// How many entries ahead the prefetch body requests the `x` gather.
pub(crate) const PREFETCH_DIST: usize = 16;

/// Variant for one CSR row range holding `nnz` entries over `rows` rows.
pub(crate) fn select_csr(bottleneck: Bottleneck, rows: usize, nnz: usize) -> KernelVariant {
    if rows == 0 || nnz == 0 {
        return KernelVariant::Scalar;
    }
    let avg = nnz as f64 / rows as f64;
    if avg < UNROLL_MIN_AVG_NNZ {
        // Short rows: both specialized bodies cost more than they save.
        return KernelVariant::Scalar;
    }
    if bottleneck == Bottleneck::Latency && avg < PREFETCH_MAX_AVG_NNZ {
        return KernelVariant::Prefetch;
    }
    KernelVariant::Unrolled
}

/// Variant for one DIA row range of a matrix with `ndiags` diagonals.
pub(crate) fn select_dia(ndiags: usize, rows: usize) -> KernelVariant {
    if ndiags >= BLOCK_MIN_DIAGS && rows > BLOCK_ROWS {
        KernelVariant::Blocked
    } else {
        KernelVariant::Scalar
    }
}

/// Variant for one ELL row range of a slab of `width` columns.
pub(crate) fn select_ell(width: usize, rows: usize) -> KernelVariant {
    if width >= BLOCK_MIN_WIDTH && rows > BLOCK_ROWS {
        KernelVariant::Blocked
    } else {
        KernelVariant::Scalar
    }
}

/// Variant for one BSR block-row range of `block_cells`-cell blocks.
/// (BELL segments carry no variants: each segment is already a bounded
/// slab walk.)
pub(crate) fn select_bsr(block_cells: usize, block_rows: usize) -> KernelVariant {
    if block_cells >= BLOCK_MIN_WIDTH && block_rows > BLOCK_ROWS {
        KernelVariant::Blocked
    } else {
        KernelVariant::Scalar
    }
}

// ---------------------------------------------------------------------------
// CPU feature detection
// ---------------------------------------------------------------------------

/// The ISA features the runtime-dispatched bodies can use, detected once
/// per process. A plan records the set it was built under; replaying a
/// plan under a different set (a decision file imported on another
/// machine, a migrated VM) is refused by [`crate::ExecPlan::matches`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuFeatures {
    /// AVX2 available (256-bit integer/FP lanes).
    pub avx2: bool,
    /// FMA3 available (fused multiply-add, the unrolled body's workhorse).
    pub fma: bool,
}

static DETECTED: OnceLock<CpuFeatures> = OnceLock::new();

impl CpuFeatures {
    /// Runtime detection, cached for the process lifetime.
    pub fn detect() -> CpuFeatures {
        *DETECTED.get_or_init(|| {
            #[cfg(target_arch = "x86_64")]
            {
                CpuFeatures {
                    avx2: std::arch::is_x86_feature_detected!("avx2"),
                    fma: std::arch::is_x86_feature_detected!("fma"),
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                CpuFeatures::none()
            }
        })
    }

    /// No ISA extensions — the portable-fallback feature set.
    pub fn none() -> CpuFeatures {
        CpuFeatures { avx2: false, fma: false }
    }

    /// `true` when the AVX2+FMA lanes of the unrolled body can engage.
    pub fn simd_unroll(&self) -> bool {
        self.avx2 && self.fma
    }

    /// Stable fingerprint of (architecture, feature set, taxonomy
    /// version). FNV-1a like the serving layer's engine fingerprint:
    /// written into plan-cache keys that must stay meaningful across
    /// toolchain upgrades, so no `DefaultHasher`.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for b in std::env::consts::ARCH.bytes() {
            eat(b);
        }
        eat(self.avx2 as u8);
        eat(self.fma as u8);
        for b in TAXONOMY_VERSION.to_le_bytes() {
            eat(b);
        }
        h
    }
}

// ---------------------------------------------------------------------------
// Row-dot bodies (runtime dispatched)
// ---------------------------------------------------------------------------

/// Reinterprets `&[V]` as `&[T]` once `TypeId` equality is established.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn cast_slice<V: 'static, T: 'static>(s: &[V]) -> &[T] {
    debug_assert_eq!(TypeId::of::<V>(), TypeId::of::<T>());
    // SAFETY: V and T are the same type (checked by the caller's TypeId
    // guard), so layout and validity are identical.
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const T, s.len()) }
}

/// Unrolled dot product of one CSR row (`vals[i] * x[cols[i]]` summed with
/// multiple accumulators). Dispatches to AVX2+FMA lanes when the detected
/// [`CpuFeatures`] allow and `V` is `f32`/`f64`; otherwise runs the
/// portable four-accumulator unroll. Accumulation order differs from the
/// scalar reference (ULP-bounded).
#[inline]
pub(crate) fn dot_row_unrolled<V: Scalar>(vals: &[V], cols: &[usize], x: &[V]) -> V {
    debug_assert_eq!(vals.len(), cols.len());
    #[cfg(target_arch = "x86_64")]
    {
        if CpuFeatures::detect().simd_unroll() {
            if TypeId::of::<V>() == TypeId::of::<f64>() {
                // SAFETY: AVX2+FMA presence was runtime-verified.
                let s = unsafe { dot_row_f64_avx2(cast_slice(vals), cols, cast_slice(x)) };
                return V::from_f64(s);
            }
            if TypeId::of::<V>() == TypeId::of::<f32>() {
                // SAFETY: AVX2+FMA presence was runtime-verified.
                let s = unsafe { dot_row_f32_avx2(cast_slice(vals), cols, cast_slice(x)) };
                return V::from_f64(s as f64);
            }
        }
    }
    dot_row_portable(vals, cols, x)
}

/// Portable four-accumulator unroll: the fallback body on every arch
/// without AVX2+FMA (and for exotic scalar types). Still reorders the
/// reduction, so it carries the same ULP contract as the SIMD lanes.
#[inline]
pub(crate) fn dot_row_portable<V: Scalar>(vals: &[V], cols: &[usize], x: &[V]) -> V {
    let n = vals.len();
    let (mut a0, mut a1, mut a2, mut a3) = (V::ZERO, V::ZERO, V::ZERO, V::ZERO);
    let mut i = 0;
    while i + 4 <= n {
        a0 = vals[i].mul_add(x[cols[i]], a0);
        a1 = vals[i + 1].mul_add(x[cols[i + 1]], a1);
        a2 = vals[i + 2].mul_add(x[cols[i + 2]], a2);
        a3 = vals[i + 3].mul_add(x[cols[i + 3]], a3);
        i += 4;
    }
    let mut s = (a0 + a1) + (a2 + a3);
    while i < n {
        s = vals[i].mul_add(x[cols[i]], s);
        i += 1;
    }
    s
}

/// AVX2+FMA `f64` row dot: two 4-lane accumulators (8-way unroll), lanes
/// reduced in a fixed order, scalar FMA tail.
///
/// # Safety
/// The caller must have verified AVX2 and FMA are available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_row_f64_avx2(vals: &[f64], cols: &[usize], x: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = vals.len();
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut i = 0;
    while i + 8 <= n {
        let gather = |o: usize| -> __m256d {
            _mm256_set_pd(
                *x.get_unchecked(*cols.get_unchecked(o + 3)),
                *x.get_unchecked(*cols.get_unchecked(o + 2)),
                *x.get_unchecked(*cols.get_unchecked(o + 1)),
                *x.get_unchecked(*cols.get_unchecked(o)),
            )
        };
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(vals.as_ptr().add(i)), gather(i), acc0);
        acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(vals.as_ptr().add(i + 4)), gather(i + 4), acc1);
        i += 8;
    }
    if i + 4 <= n {
        let g = _mm256_set_pd(
            *x.get_unchecked(*cols.get_unchecked(i + 3)),
            *x.get_unchecked(*cols.get_unchecked(i + 2)),
            *x.get_unchecked(*cols.get_unchecked(i + 1)),
            *x.get_unchecked(*cols.get_unchecked(i)),
        );
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(vals.as_ptr().add(i)), g, acc0);
        i += 4;
    }
    let acc = _mm256_add_pd(acc0, acc1);
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    while i < n {
        s = vals.get_unchecked(i).mul_add(*x.get_unchecked(*cols.get_unchecked(i)), s);
        i += 1;
    }
    s
}

/// AVX2+FMA `f32` row dot: one 8-lane accumulator, fixed-order reduce,
/// scalar FMA tail.
///
/// # Safety
/// The caller must have verified AVX2 and FMA are available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_row_f32_avx2(vals: &[f32], cols: &[usize], x: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = vals.len();
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        let g = _mm256_set_ps(
            *x.get_unchecked(*cols.get_unchecked(i + 7)),
            *x.get_unchecked(*cols.get_unchecked(i + 6)),
            *x.get_unchecked(*cols.get_unchecked(i + 5)),
            *x.get_unchecked(*cols.get_unchecked(i + 4)),
            *x.get_unchecked(*cols.get_unchecked(i + 3)),
            *x.get_unchecked(*cols.get_unchecked(i + 2)),
            *x.get_unchecked(*cols.get_unchecked(i + 1)),
            *x.get_unchecked(*cols.get_unchecked(i)),
        );
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(vals.as_ptr().add(i)), g, acc);
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut s =
        ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    while i < n {
        s = vals.get_unchecked(i).mul_add(*x.get_unchecked(*cols.get_unchecked(i)), s);
        i += 1;
    }
    s
}

/// Best-effort read prefetch hint; a no-op off x86_64.
#[inline(always)]
pub(crate) fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint — it never faults, even on a wild
    // address (the pointer here is always in-bounds anyway).
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(p as *const i8)
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_roundtrip_and_names_are_distinct() {
        for (i, v) in ALL_VARIANTS.iter().enumerate() {
            assert_eq!(v.index(), i);
            assert_eq!(KernelVariant::from_index(i), Some(*v));
        }
        assert_eq!(KernelVariant::from_index(KernelVariant::COUNT), None);
        let names: std::collections::HashSet<_> = ALL_VARIANTS.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), KernelVariant::COUNT);
    }

    #[test]
    fn applicability_matches_the_taxonomy() {
        use FormatId::*;
        for fmt in [Coo, Csr, Dia, Ell, Hyb, Hdc] {
            assert!(KernelVariant::Scalar.applies_to(fmt), "{fmt}");
        }
        assert!(KernelVariant::Unrolled.applies_to(Csr));
        assert!(KernelVariant::Unrolled.applies_to(Hdc));
        assert!(!KernelVariant::Unrolled.applies_to(Coo));
        assert!(!KernelVariant::Unrolled.applies_to(Dia));
        assert!(KernelVariant::Blocked.applies_to(Dia));
        assert!(KernelVariant::Blocked.applies_to(Ell));
        assert!(KernelVariant::Blocked.applies_to(Hyb));
        assert!(!KernelVariant::Blocked.applies_to(Csr));
        assert!(KernelVariant::Blocked.applies_to(Bsr));
        assert!(!KernelVariant::Unrolled.applies_to(Bsr));
        assert_eq!(KernelVariant::applicable(Bell), vec![KernelVariant::Scalar]);
        assert_eq!(KernelVariant::applicable(Coo), vec![KernelVariant::Scalar]);
    }

    #[test]
    fn order_preservation_contract() {
        assert!(KernelVariant::Scalar.preserves_order());
        assert!(KernelVariant::Prefetch.preserves_order());
        assert!(KernelVariant::Blocked.preserves_order());
        assert!(!KernelVariant::Unrolled.preserves_order());
    }

    #[test]
    fn bottleneck_classification_rules() {
        // Hub matrix: one row of 5000 nnz among rows of ~5 → imbalance.
        assert_eq!(
            Bottleneck::classify(10_000, 10_000, 55_000, 5.5, 5000, 60.0, 18_000),
            Bottleneck::Imbalance
        );
        // Uniform random scatter: most diagonals populated, low x reuse.
        assert_eq!(Bottleneck::classify(20_000, 20_000, 60_000, 3.0, 9, 1.9, 35_000), Bottleneck::Latency);
        // Tridiagonal: three diagonals, fully regular streaming.
        assert_eq!(Bottleneck::classify(120_000, 120_000, 360_000, 3.0, 3, 0.1, 3), Bottleneck::Bandwidth);
        // Empty matrices stream nothing; default to bandwidth.
        assert_eq!(Bottleneck::classify(0, 0, 0, 0.0, 0, 0.0, 0), Bottleneck::Bandwidth);
    }

    #[test]
    fn selection_rules_follow_the_bottleneck() {
        // Latency-bound ranges prefetch only in the mid band: short rows
        // stay scalar, and very long rows favour raw unrolled throughput.
        assert_eq!(select_csr(Bottleneck::Latency, 1000, 64_000), KernelVariant::Prefetch);
        assert_eq!(select_csr(Bottleneck::Latency, 1000, 3000), KernelVariant::Scalar);
        assert_eq!(select_csr(Bottleneck::Latency, 1000, 200_000), KernelVariant::Unrolled);
        // Bandwidth-bound long rows unroll; short rows stay scalar.
        assert_eq!(select_csr(Bottleneck::Bandwidth, 100, 6400), KernelVariant::Unrolled);
        assert_eq!(select_csr(Bottleneck::Bandwidth, 1000, 2000), KernelVariant::Scalar);
        // Hub-heavy ranges of an imbalanced matrix unroll too.
        assert_eq!(select_csr(Bottleneck::Imbalance, 4, 5000), KernelVariant::Unrolled);
        assert_eq!(select_csr(Bottleneck::Bandwidth, 0, 0), KernelVariant::Scalar);
        // Padded formats block only when wide and long enough.
        assert_eq!(select_dia(8, 4096), KernelVariant::Blocked);
        assert_eq!(select_dia(3, 4096), KernelVariant::Scalar);
        assert_eq!(select_dia(8, 64), KernelVariant::Scalar);
        assert_eq!(select_ell(6, 4096), KernelVariant::Blocked);
        assert_eq!(select_ell(2, 4096), KernelVariant::Scalar);
    }

    #[test]
    fn unrolled_dot_agrees_with_reference_within_ulp_bound() {
        for n in [0usize, 1, 3, 4, 7, 8, 9, 15, 16, 33, 100, 257] {
            let vals: Vec<f64> = (0..n).map(|i| ((i * 37 + 5) % 23) as f64 * 0.37 - 3.0).collect();
            let cols: Vec<usize> = (0..n).map(|i| (i * 13 + 7) % 300).collect();
            let x: Vec<f64> = (0..300).map(|i| (i as f64 * 0.11).sin()).collect();
            let reference: f64 = vals.iter().zip(&cols).fold(0.0, |acc, (&v, &c)| acc + v * x[c]);
            let abs_sum: f64 = vals.iter().zip(&cols).map(|(&v, &c)| (v * x[c]).abs()).sum();
            let bound = (n as f64 + 8.0) * f64::EPSILON * abs_sum.max(1e-300);
            let got = dot_row_unrolled(&vals, &cols, &x);
            assert!((got - reference).abs() <= bound, "n={n}: |{got} - {reference}| > {bound}");
            let portable = dot_row_portable(&vals, &cols, &x);
            assert!((portable - reference).abs() <= bound, "portable n={n}");
        }
    }

    #[test]
    fn fingerprint_is_stable_and_feature_sensitive() {
        let a = CpuFeatures { avx2: true, fma: true };
        let b = CpuFeatures { avx2: false, fma: false };
        assert_eq!(a.fingerprint(), a.fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(CpuFeatures::detect(), CpuFeatures::detect());
        assert!(!CpuFeatures::none().simd_unroll());
    }
}
