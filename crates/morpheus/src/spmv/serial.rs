//! Serial SpMV kernels, one per format.
//!
//! All kernels compute `y = A x`, overwriting `y` entirely. Shapes are
//! checked by the dispatching functions in [`crate::spmv`]; the kernels
//! assume `x.len() == ncols` and `y.len() == nrows`.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dia::DiaMatrix;
use crate::ell::{EllMatrix, ELL_PAD};
use crate::hdc::HdcMatrix;
use crate::hyb::HybMatrix;
use crate::scalar::Scalar;

/// COO kernel: zero `y`, then scatter-accumulate each triplet.
pub fn spmv_coo<V: Scalar>(a: &CooMatrix<V>, x: &[V], y: &mut [V]) {
    y.fill(V::ZERO);
    spmv_coo_acc(a, x, y);
}

/// COO accumulate kernel: `y += A x` (used by the HYB composite).
pub fn spmv_coo_acc<V: Scalar>(a: &CooMatrix<V>, x: &[V], y: &mut [V]) {
    let rows = a.row_indices();
    let cols = a.col_indices();
    let vals = a.values();
    for i in 0..vals.len() {
        y[rows[i]] += vals[i] * x[cols[i]];
    }
}

/// CSR kernel: per-row gather and reduce. Every row is written, no
/// pre-zeroing needed.
pub fn spmv_csr<V: Scalar>(a: &CsrMatrix<V>, x: &[V], y: &mut [V]) {
    let cols = a.col_indices();
    let vals = a.values();
    let offs = a.row_offsets();
    for r in 0..a.nrows() {
        let mut acc = V::ZERO;
        for i in offs[r]..offs[r + 1] {
            acc += vals[i] * x[cols[i]];
        }
        y[r] = acc;
    }
}

/// CSR accumulate kernel: `y += A x` (used by the HDC composite).
pub fn spmv_csr_acc<V: Scalar>(a: &CsrMatrix<V>, x: &[V], y: &mut [V]) {
    let cols = a.col_indices();
    let vals = a.values();
    let offs = a.row_offsets();
    for r in 0..a.nrows() {
        let mut acc = V::ZERO;
        for i in offs[r]..offs[r + 1] {
            acc += vals[i] * x[cols[i]];
        }
        y[r] += acc;
    }
}

/// DIA kernel: zero `y`, then stream each diagonal with contiguous,
/// vectorisable inner loops — the access pattern that makes DIA "a good fit
/// for vector-like processors" (§II-B).
pub fn spmv_dia<V: Scalar>(a: &DiaMatrix<V>, x: &[V], y: &mut [V]) {
    y.fill(V::ZERO);
    spmv_dia_acc(a, x, y);
}

/// DIA accumulate kernel: `y += A x` (used by the HDC composite).
pub fn spmv_dia_acc<V: Scalar>(a: &DiaMatrix<V>, x: &[V], y: &mut [V]) {
    for d in 0..a.ndiags() {
        let off = a.offsets()[d];
        let diag = a.diagonal(d);
        let range = a.diag_row_range(d);
        // Both y[i] and x[i + off] advance contiguously with i.
        for i in range {
            let j = (i as isize + off) as usize;
            y[i] += diag[i] * x[j];
        }
    }
}

/// ELL kernel: zero `y`, then stream the column-major slabs entry-column by
/// entry-column; padding slots are skipped via the sentinel.
pub fn spmv_ell<V: Scalar>(a: &EllMatrix<V>, x: &[V], y: &mut [V]) {
    y.fill(V::ZERO);
    spmv_ell_acc(a, x, y);
}

/// ELL accumulate kernel: `y += A x` (used by the HYB composite).
pub fn spmv_ell_acc<V: Scalar>(a: &EllMatrix<V>, x: &[V], y: &mut [V]) {
    let nrows = a.nrows();
    let cols = a.col_indices();
    let vals = a.values();
    for k in 0..a.width() {
        let base = k * nrows;
        for i in 0..nrows {
            let c = cols[base + i];
            if c != ELL_PAD {
                y[i] += vals[base + i] * x[c];
            }
        }
    }
}

/// HYB kernel: ELL portion first (defines `y`), COO surplus accumulates.
pub fn spmv_hyb<V: Scalar>(a: &HybMatrix<V>, x: &[V], y: &mut [V]) {
    spmv_ell(a.ell(), x, y);
    spmv_coo_acc(a.coo(), x, y);
}

/// HDC kernel: DIA portion first (defines `y`), CSR remainder accumulates.
pub fn spmv_hdc<V: Scalar>(a: &HdcMatrix<V>, x: &[V], y: &mut [V]) {
    spmv_dia(a.dia(), x, y);
    spmv_csr_acc(a.csr(), x, y);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{coo_to_dia, coo_to_ell, coo_to_hdc, coo_to_hyb, ConvertOptions};
    use crate::test_util::random_coo;

    #[test]
    fn csr_kernel_simple() {
        // [1 2]   [1]   [5]
        // [0 3] x [2] = [6]
        let a = CsrMatrix::from_parts(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1.0, 2.0, 3.0]).unwrap();
        let mut y = vec![0.0; 2];
        spmv_csr(&a, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![5.0, 6.0]);
    }

    #[test]
    fn acc_kernels_add_to_existing() {
        let coo = random_coo::<f64>(15, 15, 60, 4);
        let x = vec![1.0; 15];
        let mut base = vec![0.0; 15];
        spmv_coo(&coo, &x, &mut base);

        let mut y = vec![10.0; 15];
        spmv_coo_acc(&coo, &x, &mut y);
        for i in 0..15 {
            assert!((y[i] - base[i] - 10.0).abs() < 1e-12);
        }

        let opts = ConvertOptions::default();
        let dia = coo_to_dia(&coo, &opts).unwrap();
        let mut y = vec![10.0; 15];
        spmv_dia_acc(&dia, &x, &mut y);
        for i in 0..15 {
            assert!((y[i] - base[i] - 10.0).abs() < 1e-12);
        }

        let ell = coo_to_ell(&coo, &opts).unwrap();
        let mut y = vec![10.0; 15];
        spmv_ell_acc(&ell, &x, &mut y);
        for i in 0..15 {
            assert!((y[i] - base[i] - 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn hybrid_composites_match_coo() {
        let coo = random_coo::<f64>(30, 30, 180, 6);
        let x: Vec<f64> = (0..30).map(|i| i as f64 * 0.1).collect();
        let mut expect = vec![0.0; 30];
        spmv_coo(&coo, &x, &mut expect);

        let opts = ConvertOptions::default();
        let hyb = coo_to_hyb(&coo, &opts).unwrap();
        let mut y = vec![f64::NAN; 30];
        spmv_hyb(&hyb, &x, &mut y);
        for i in 0..30 {
            assert!((y[i] - expect[i]).abs() < 1e-12, "hyb row {i}");
        }

        let hdc = coo_to_hdc(&coo, &opts).unwrap();
        let mut y = vec![f64::NAN; 30];
        spmv_hdc(&hdc, &x, &mut y);
        for i in 0..30 {
            assert!((y[i] - expect[i]).abs() < 1e-12, "hdc row {i}");
        }
    }

    #[test]
    fn kernels_overwrite_stale_y() {
        let coo = random_coo::<f64>(10, 10, 30, 8);
        let x = vec![2.0; 10];
        let mut clean = vec![0.0; 10];
        spmv_coo(&coo, &x, &mut clean);
        let mut dirty = vec![999.0; 10];
        spmv_coo(&coo, &x, &mut dirty);
        assert_eq!(clean, dirty);
    }
}
