//! Serial SpMV kernels, one per format.
//!
//! All kernels compute `y = A x`, overwriting `y` entirely. Shapes are
//! checked by the dispatching functions in [`crate::spmv`]; the kernels
//! assume `x.len() == ncols` and `y.len() == nrows`.

use crate::bell::BellMatrix;
use crate::bsr::BsrMatrix;
use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dia::DiaMatrix;
use crate::ell::{EllMatrix, ELL_PAD};
use crate::hdc::HdcMatrix;
use crate::hyb::HybMatrix;
use crate::scalar::Scalar;

/// COO kernel: zero `y`, then scatter-accumulate each triplet.
pub fn spmv_coo<V: Scalar>(a: &CooMatrix<V>, x: &[V], y: &mut [V]) {
    y.fill(V::ZERO);
    spmv_coo_acc(a, x, y);
}

/// COO accumulate kernel: `y += A x` (used by the HYB composite).
pub fn spmv_coo_acc<V: Scalar>(a: &CooMatrix<V>, x: &[V], y: &mut [V]) {
    let rows = a.row_indices();
    let cols = a.col_indices();
    let vals = a.values();
    for i in 0..vals.len() {
        y[rows[i]] += vals[i] * x[cols[i]];
    }
}

/// CSR kernel: per-row gather and reduce. Every row is written, no
/// pre-zeroing needed.
pub fn spmv_csr<V: Scalar>(a: &CsrMatrix<V>, x: &[V], y: &mut [V]) {
    let cols = a.col_indices();
    let vals = a.values();
    let offs = a.row_offsets();
    for r in 0..a.nrows() {
        let mut acc = V::ZERO;
        for i in offs[r]..offs[r + 1] {
            acc += vals[i] * x[cols[i]];
        }
        y[r] = acc;
    }
}

/// CSR accumulate kernel: `y += A x` (used by the HDC composite).
pub fn spmv_csr_acc<V: Scalar>(a: &CsrMatrix<V>, x: &[V], y: &mut [V]) {
    let cols = a.col_indices();
    let vals = a.values();
    let offs = a.row_offsets();
    for r in 0..a.nrows() {
        let mut acc = V::ZERO;
        for i in offs[r]..offs[r + 1] {
            acc += vals[i] * x[cols[i]];
        }
        y[r] += acc;
    }
}

/// DIA kernel: zero `y`, then stream each diagonal with contiguous,
/// vectorisable inner loops — the access pattern that makes DIA "a good fit
/// for vector-like processors" (§II-B).
pub fn spmv_dia<V: Scalar>(a: &DiaMatrix<V>, x: &[V], y: &mut [V]) {
    y.fill(V::ZERO);
    spmv_dia_acc(a, x, y);
}

/// DIA accumulate kernel: `y += A x` (used by the HDC composite).
pub fn spmv_dia_acc<V: Scalar>(a: &DiaMatrix<V>, x: &[V], y: &mut [V]) {
    for d in 0..a.ndiags() {
        let off = a.offsets()[d];
        let diag = a.diagonal(d);
        let range = a.diag_row_range(d);
        // Both y[i] and x[i + off] advance contiguously with i.
        for i in range {
            let j = (i as isize + off) as usize;
            y[i] += diag[i] * x[j];
        }
    }
}

/// ELL kernel: zero `y`, then stream the column-major slabs entry-column by
/// entry-column; padding slots are skipped via the sentinel.
pub fn spmv_ell<V: Scalar>(a: &EllMatrix<V>, x: &[V], y: &mut [V]) {
    y.fill(V::ZERO);
    spmv_ell_acc(a, x, y);
}

/// ELL accumulate kernel: `y += A x` (used by the HYB composite).
pub fn spmv_ell_acc<V: Scalar>(a: &EllMatrix<V>, x: &[V], y: &mut [V]) {
    let nrows = a.nrows();
    let cols = a.col_indices();
    let vals = a.values();
    for k in 0..a.width() {
        let base = k * nrows;
        for i in 0..nrows {
            let c = cols[base + i];
            if c != ELL_PAD {
                y[i] += vals[base + i] * x[c];
            }
        }
    }
}

/// BSR kernel: per block row, accumulate the dense blocks with
/// fixed-trip-count inner loops (monomorphised for the supported square
/// block dims so the right-hand side stays in registers). Padding slots
/// hold zero and multiply through — branch-free inner loops.
pub fn spmv_bsr<V: Scalar>(a: &BsrMatrix<V>, x: &[V], y: &mut [V]) {
    match (a.block_r(), a.block_c()) {
        (2, 2) => bsr_body::<V, 2, 2>(a, x, y),
        (4, 4) => bsr_body::<V, 4, 4>(a, x, y),
        (8, 8) => bsr_body::<V, 8, 8>(a, x, y),
        _ => bsr_body_dyn(a, x, y),
    }
}

fn bsr_body<V: Scalar, const R: usize, const C: usize>(a: &BsrMatrix<V>, x: &[V], y: &mut [V]) {
    let offs = a.block_row_offsets();
    let bcols = a.block_cols();
    let vals = a.values();
    let (nrows, ncols) = (a.nrows(), a.ncols());
    for br in 0..a.nblockrows() {
        let r0 = br * R;
        let rcount = R.min(nrows - r0);
        let mut acc = [V::ZERO; R];
        for b in offs[br]..offs[br + 1] {
            let c0 = bcols[b] * C;
            let bv = &vals[b * R * C..(b + 1) * R * C];
            if c0 + C <= ncols {
                let xs: &[V] = &x[c0..c0 + C];
                for rr in 0..R {
                    let mut s = acc[rr];
                    for cc in 0..C {
                        s += bv[rr * C + cc] * xs[cc];
                    }
                    acc[rr] = s;
                }
            } else {
                for rr in 0..R {
                    for cc in 0..ncols - c0 {
                        acc[rr] += bv[rr * C + cc] * x[c0 + cc];
                    }
                }
            }
        }
        y[r0..r0 + rcount].copy_from_slice(&acc[..rcount]);
    }
}

fn bsr_body_dyn<V: Scalar>(a: &BsrMatrix<V>, x: &[V], y: &mut [V]) {
    let (r, c) = (a.block_r(), a.block_c());
    let offs = a.block_row_offsets();
    let bcols = a.block_cols();
    let vals = a.values();
    let (nrows, ncols) = (a.nrows(), a.ncols());
    let mut acc = vec![V::ZERO; r];
    for br in 0..a.nblockrows() {
        let r0 = br * r;
        let rcount = r.min(nrows - r0);
        acc.fill(V::ZERO);
        for b in offs[br]..offs[br + 1] {
            let c0 = bcols[b] * c;
            let ccount = c.min(ncols - c0);
            let bv = &vals[b * r * c..(b + 1) * r * c];
            for (rr, slot) in acc.iter_mut().enumerate() {
                for cc in 0..ccount {
                    *slot += bv[rr * c + cc] * x[c0 + cc];
                }
            }
        }
        y[r0..r0 + rcount].copy_from_slice(&acc[..rcount]);
    }
}

/// BELL kernel: zero `y`, then stream each bucket's column-major slab —
/// ELL's coalesced access pattern, without the pad-to-global-max waste.
pub fn spmv_bell<V: Scalar>(a: &BellMatrix<V>, x: &[V], y: &mut [V]) {
    y.fill(V::ZERO);
    spmv_bell_acc(a, x, y);
}

/// BELL accumulate kernel: `y += A x`.
///
/// Rows are walked row-major *through* the column-major slab: per row the
/// accumulator stays in a register and the trailing padding (the layout
/// contract — pads only after real entries) breaks the stride walk early,
/// so `y` is touched once per row instead of once per slab column.
/// Successive rows revisit the same cache lines per slab column, so the
/// strided loads still stream.
pub fn spmv_bell_acc<V: Scalar>(a: &BellMatrix<V>, x: &[V], y: &mut [V]) {
    for bucket in a.buckets() {
        let rows = bucket.rows();
        let cols = bucket.cols();
        let vals = bucket.vals();
        // Narrow buckets dominate heavy-tail inputs, so a compile-time
        // width lets the stride walk fully unroll for the common ladder
        // rungs; everything else takes the dynamic-width body.
        match bucket.width() {
            1 => bell_bucket::<V, 1>(rows, cols, vals, x, y),
            2 => bell_bucket::<V, 2>(rows, cols, vals, x, y),
            3 => bell_bucket::<V, 3>(rows, cols, vals, x, y),
            4 => bell_bucket::<V, 4>(rows, cols, vals, x, y),
            6 => bell_bucket::<V, 6>(rows, cols, vals, x, y),
            8 => bell_bucket::<V, 8>(rows, cols, vals, x, y),
            w => bell_bucket_dyn(rows, cols, vals, w, x, y),
        }
    }
}

/// One BELL bucket with the width a compile-time constant: the inner
/// stride walk unrolls completely. Same traversal as
/// [`bell_bucket_dyn`] — four rows per step, k-ascending per row.
#[inline(always)]
fn bell_bucket<V: Scalar, const W: usize>(rows: &[usize], cols: &[usize], vals: &[V], x: &[V], y: &mut [V]) {
    let len = rows.len();
    let mut j = 0usize;
    while j + 4 <= len {
        let mut acc = [V::ZERO; 4];
        let mut idx = j;
        for _ in 0..W {
            for l in 0..4 {
                let c = cols[idx + l];
                let c = if c == ELL_PAD { 0 } else { c };
                acc[l] += vals[idx + l] * x[c];
            }
            idx += len;
        }
        for l in 0..4 {
            y[rows[j + l]] += acc[l];
        }
        j += 4;
    }
    for j in j..len {
        let mut acc = V::ZERO;
        let mut idx = j;
        for _ in 0..W {
            let c = cols[idx];
            if c == ELL_PAD {
                break;
            }
            acc += vals[idx] * x[c];
            idx += len;
        }
        y[rows[j]] += acc;
    }
}

/// One BELL bucket, dynamic width. Four rows per step: the slab is
/// column-major, so each k-level reads four *contiguous* cols/vals
/// elements, and four independent accumulators hide the FP-add latency.
/// Padding is branchless: pad slots store `V::ZERO` (layout contract),
/// so redirecting their column to 0 contributes exactly zero.
fn bell_bucket_dyn<V: Scalar>(
    rows: &[usize],
    cols: &[usize],
    vals: &[V],
    width: usize,
    x: &[V],
    y: &mut [V],
) {
    let len = rows.len();
    let mut j = 0usize;
    while j + 4 <= len {
        let mut acc = [V::ZERO; 4];
        let mut idx = j;
        for _ in 0..width {
            for l in 0..4 {
                let c = cols[idx + l];
                let c = if c == ELL_PAD { 0 } else { c };
                acc[l] += vals[idx + l] * x[c];
            }
            idx += len;
        }
        for l in 0..4 {
            y[rows[j + l]] += acc[l];
        }
        j += 4;
    }
    for j in j..len {
        let mut acc = V::ZERO;
        let mut idx = j;
        for _ in 0..width {
            let c = cols[idx];
            if c == ELL_PAD {
                break;
            }
            acc += vals[idx] * x[c];
            idx += len;
        }
        y[rows[j]] += acc;
    }
}

/// HYB kernel: ELL portion first (defines `y`), COO surplus accumulates.
pub fn spmv_hyb<V: Scalar>(a: &HybMatrix<V>, x: &[V], y: &mut [V]) {
    spmv_ell(a.ell(), x, y);
    spmv_coo_acc(a.coo(), x, y);
}

/// HDC kernel: DIA portion first (defines `y`), CSR remainder accumulates.
pub fn spmv_hdc<V: Scalar>(a: &HdcMatrix<V>, x: &[V], y: &mut [V]) {
    spmv_dia(a.dia(), x, y);
    spmv_csr_acc(a.csr(), x, y);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{coo_to_dia, coo_to_ell, coo_to_hdc, coo_to_hyb, ConvertOptions};
    use crate::test_util::random_coo;

    #[test]
    fn csr_kernel_simple() {
        // [1 2]   [1]   [5]
        // [0 3] x [2] = [6]
        let a = CsrMatrix::from_parts(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1.0, 2.0, 3.0]).unwrap();
        let mut y = vec![0.0; 2];
        spmv_csr(&a, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![5.0, 6.0]);
    }

    #[test]
    fn acc_kernels_add_to_existing() {
        let coo = random_coo::<f64>(15, 15, 60, 4);
        let x = vec![1.0; 15];
        let mut base = vec![0.0; 15];
        spmv_coo(&coo, &x, &mut base);

        let mut y = vec![10.0; 15];
        spmv_coo_acc(&coo, &x, &mut y);
        for i in 0..15 {
            assert!((y[i] - base[i] - 10.0).abs() < 1e-12);
        }

        let opts = ConvertOptions::default();
        let dia = coo_to_dia(&coo, &opts).unwrap();
        let mut y = vec![10.0; 15];
        spmv_dia_acc(&dia, &x, &mut y);
        for i in 0..15 {
            assert!((y[i] - base[i] - 10.0).abs() < 1e-12);
        }

        let ell = coo_to_ell(&coo, &opts).unwrap();
        let mut y = vec![10.0; 15];
        spmv_ell_acc(&ell, &x, &mut y);
        for i in 0..15 {
            assert!((y[i] - base[i] - 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn hybrid_composites_match_coo() {
        let coo = random_coo::<f64>(30, 30, 180, 6);
        let x: Vec<f64> = (0..30).map(|i| i as f64 * 0.1).collect();
        let mut expect = vec![0.0; 30];
        spmv_coo(&coo, &x, &mut expect);

        let opts = ConvertOptions::default();
        let hyb = coo_to_hyb(&coo, &opts).unwrap();
        let mut y = vec![f64::NAN; 30];
        spmv_hyb(&hyb, &x, &mut y);
        for i in 0..30 {
            assert!((y[i] - expect[i]).abs() < 1e-12, "hyb row {i}");
        }

        let hdc = coo_to_hdc(&coo, &opts).unwrap();
        let mut y = vec![f64::NAN; 30];
        spmv_hdc(&hdc, &x, &mut y);
        for i in 0..30 {
            assert!((y[i] - expect[i]).abs() < 1e-12, "hdc row {i}");
        }
    }

    #[test]
    fn kernels_overwrite_stale_y() {
        let coo = random_coo::<f64>(10, 10, 30, 8);
        let x = vec![2.0; 10];
        let mut clean = vec![0.0; 10];
        spmv_coo(&coo, &x, &mut clean);
        let mut dirty = vec![999.0; 10];
        spmv_coo(&coo, &x, &mut dirty);
        assert_eq!(clean, dirty);
    }
}
