//! Sparse matrix–vector multiplication (`y = A x`) for every format, on the
//! Serial and the threaded ("OpenMP") backend.
//!
//! SpMV is "the operation that often dominates the runtime of computing the
//! solution to linear systems" (§I) and the operation all of the paper's
//! tuners optimise for. Kernels are exposed per format (for benchmarks) and
//! behind a single dynamic dispatch ([`spmv`]).

pub mod serial;
pub mod threaded;
pub mod variant;

use crate::dynamic::DynamicMatrix;
use crate::error::MorpheusError;
use crate::scalar::Scalar;
use crate::Result;
use morpheus_parallel::{Schedule, ThreadPool};

/// Execution policy for [`spmv`]: the Rust analogue of Morpheus' execution
/// spaces (§II-C lists Serial, OpenMP, CUDA and HIP; the GPU spaces live in
/// `morpheus-machine` as simulated engines).
#[derive(Clone, Copy)]
pub enum ExecPolicy<'a> {
    /// Single-threaded execution.
    Serial,
    /// Multithreaded execution on the given pool.
    Threaded {
        /// Worker pool to run on.
        pool: &'a ThreadPool,
        /// Loop scheduling policy.
        schedule: Schedule,
    },
}

impl std::fmt::Debug for ExecPolicy<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecPolicy::Serial => f.write_str("Serial"),
            ExecPolicy::Threaded { pool, schedule } => f
                .debug_struct("Threaded")
                .field("threads", &pool.num_threads())
                .field("schedule", &schedule.name())
                .finish(),
        }
    }
}

pub(crate) fn check_shapes<V: Scalar>(m: &DynamicMatrix<V>, x: &[V], y: &[V]) -> Result<()> {
    if x.len() != m.ncols() || y.len() != m.nrows() {
        return Err(MorpheusError::ShapeMismatch {
            expected: format!("x: {}, y: {}", m.ncols(), m.nrows()),
            got: format!("x: {}, y: {}", x.len(), y.len()),
        });
    }
    Ok(())
}

/// `y = A x` under the given execution policy.
pub fn spmv<V: Scalar>(m: &DynamicMatrix<V>, x: &[V], y: &mut [V], policy: ExecPolicy<'_>) -> Result<()> {
    match policy {
        ExecPolicy::Serial => spmv_serial(m, x, y),
        ExecPolicy::Threaded { pool, schedule } => spmv_threaded(m, x, y, pool, schedule),
    }
}

/// `y = A x` on the serial backend.
pub fn spmv_serial<V: Scalar>(m: &DynamicMatrix<V>, x: &[V], y: &mut [V]) -> Result<()> {
    check_shapes(m, x, y)?;
    match m {
        DynamicMatrix::Coo(a) => serial::spmv_coo(a, x, y),
        DynamicMatrix::Csr(a) => serial::spmv_csr(a, x, y),
        DynamicMatrix::Dia(a) => serial::spmv_dia(a, x, y),
        DynamicMatrix::Ell(a) => serial::spmv_ell(a, x, y),
        DynamicMatrix::Hyb(a) => serial::spmv_hyb(a, x, y),
        DynamicMatrix::Hdc(a) => serial::spmv_hdc(a, x, y),
        DynamicMatrix::Bsr(a) => serial::spmv_bsr(a, x, y),
        DynamicMatrix::Bell(a) => serial::spmv_bell(a, x, y),
    }
    Ok(())
}

/// `y = A x` on the threaded backend.
pub fn spmv_threaded<V: Scalar>(
    m: &DynamicMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: &ThreadPool,
    schedule: Schedule,
) -> Result<()> {
    check_shapes(m, x, y)?;
    match m {
        DynamicMatrix::Coo(a) => threaded::spmv_coo(a, x, y, pool),
        DynamicMatrix::Csr(a) => threaded::spmv_csr(a, x, y, pool, schedule),
        DynamicMatrix::Dia(a) => threaded::spmv_dia(a, x, y, pool, schedule),
        DynamicMatrix::Ell(a) => threaded::spmv_ell(a, x, y, pool, schedule),
        DynamicMatrix::Hyb(a) => threaded::spmv_hyb(a, x, y, pool, schedule),
        DynamicMatrix::Hdc(a) => threaded::spmv_hdc(a, x, y, pool, schedule),
        DynamicMatrix::Bsr(a) => threaded::spmv_bsr(a, x, y, pool),
        DynamicMatrix::Bell(a) => threaded::spmv_bell(a, x, y, pool),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::ConvertOptions;
    use crate::format::ALL_FORMATS;
    use crate::test_util::random_coo;

    fn dense_reference(m: &DynamicMatrix<f64>, x: &[f64]) -> Vec<f64> {
        let d = m.to_dense();
        let mut y = vec![0.0; m.nrows()];
        d.spmv(x, &mut y);
        y
    }

    fn assert_close(a: &[f64], b: &[f64], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: length");
        for i in 0..a.len() {
            let scale = 1.0 + a[i].abs().max(b[i].abs());
            assert!((a[i] - b[i]).abs() <= 1e-10 * scale, "{ctx}: y[{i}] {} vs {}", a[i], b[i]);
        }
    }

    #[test]
    fn all_formats_match_dense_reference_serial() {
        let pool = ThreadPool::new(4);
        let _ = &pool;
        for seed in 0..4u64 {
            let coo = random_coo::<f64>(57, 43, 400, seed);
            let base = DynamicMatrix::from(coo);
            let x: Vec<f64> = (0..43).map(|i| (i as f64 * 0.37).sin()).collect();
            let expect = dense_reference(&base, &x);
            for &f in &ALL_FORMATS {
                let m = base.to_format(f, &ConvertOptions::default()).unwrap();
                let mut y = vec![f64::NAN; 57];
                spmv_serial(&m, &x, &mut y).unwrap();
                assert_close(&y, &expect, &format!("serial {f} seed {seed}"));
            }
        }
    }

    #[test]
    fn all_formats_match_dense_reference_threaded() {
        let pool = ThreadPool::new(4);
        let schedules = [Schedule::default(), Schedule::dynamic(), Schedule::guided()];
        for seed in 0..3u64 {
            let coo = random_coo::<f64>(101, 77, 900, seed + 10);
            let base = DynamicMatrix::from(coo);
            let x: Vec<f64> = (0..77).map(|i| (i as f64 * 0.11).cos()).collect();
            let expect = dense_reference(&base, &x);
            for &f in &ALL_FORMATS {
                let m = base.to_format(f, &ConvertOptions::default()).unwrap();
                for sched in schedules {
                    let mut y = vec![f64::NAN; 101];
                    spmv_threaded(&m, &x, &mut y, &pool, sched).unwrap();
                    assert_close(&y, &expect, &format!("threaded {f} {} seed {seed}", sched.name()));
                }
            }
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let m = DynamicMatrix::from(random_coo::<f64>(10, 8, 20, 1));
        let x_bad = vec![0.0; 7];
        let x_ok = vec![0.0; 8];
        let mut y_bad = vec![0.0; 9];
        let mut y_ok = vec![0.0; 10];
        assert!(spmv_serial(&m, &x_bad, &mut y_ok).is_err());
        assert!(spmv_serial(&m, &x_ok, &mut y_bad).is_err());
    }

    #[test]
    fn empty_matrix_yields_zero_vector() {
        let m = DynamicMatrix::from(crate::CooMatrix::<f64>::new(5, 5));
        let x = vec![1.0; 5];
        let mut y = vec![f64::NAN; 5];
        spmv_serial(&m, &x, &mut y).unwrap();
        assert_eq!(y, vec![0.0; 5]);
    }

    #[test]
    fn policy_dispatch() {
        let pool = ThreadPool::new(2);
        let m = DynamicMatrix::from(random_coo::<f64>(20, 20, 80, 2));
        let x = vec![1.0; 20];
        let mut y1 = vec![0.0; 20];
        let mut y2 = vec![0.0; 20];
        spmv(&m, &x, &mut y1, ExecPolicy::Serial).unwrap();
        spmv(&m, &x, &mut y2, ExecPolicy::Threaded { pool: &pool, schedule: Schedule::default() }).unwrap();
        assert_close(&y1, &y2, "policy dispatch");
    }
}
