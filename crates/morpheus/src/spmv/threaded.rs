//! Multithreaded SpMV kernels (the "OpenMP" backend).
//!
//! Every kernel partitions the *rows* of the matrix across workers so each
//! element of `y` has exactly one writer — no atomics are needed, and
//! results are bitwise identical to the serial kernels (same per-row
//! accumulation order).
//!
//! The per-range loop bodies are shared by three entry styles:
//!
//! * **schedule-driven** ([`spmv_csr`], [`spmv_dia`], [`spmv_ell`], ...):
//!   rows are partitioned with the caller's [`Schedule`] on every call, the
//!   analogue of Morpheus' `#pragma omp parallel for` loops;
//! * **per-call balanced** ([`spmv_csr_balanced`], [`spmv_coo`]): an
//!   nnz-weighted or row-aligned partition is recomputed on every call;
//! * **planned** (the `*_ranges` kernels behind [`crate::plan::ExecPlan`]):
//!   precomputed ranges are executed via
//!   [`ThreadPool::parallel_for_plan`] with no per-call scheduling work at
//!   all — the steady-state path for iterative solvers.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dia::DiaMatrix;
use crate::ell::{EllMatrix, ELL_PAD};
use crate::hdc::HdcMatrix;
use crate::hyb::HybMatrix;
use crate::scalar::Scalar;
use morpheus_parallel::{row_aligned_partition, weighted_partition, Schedule, SharedSlice, ThreadPool};
use std::ops::Range;

/// Shared mutable output vector. Soundness contract: concurrent callers must
/// write disjoint index sets, which the row partitioning guarantees.
type SharedOut<V> = SharedSlice<V>;

// ---------------------------------------------------------------------------
// Per-range loop bodies (shared by every entry style)
// ---------------------------------------------------------------------------

/// CSR rows `rows`: per-row gather/reduce, written (or accumulated) into
/// `out`. Same accumulation order as the serial kernel, so results are
/// bitwise identical.
///
/// # Safety
/// No concurrent caller may receive an overlapping row range.
#[inline]
unsafe fn csr_rows<V: Scalar, const ACC: bool>(
    a: &CsrMatrix<V>,
    x: &[V],
    out: &SharedOut<V>,
    rows: Range<usize>,
) {
    let offs = a.row_offsets();
    let cols = a.col_indices();
    let vals = a.values();
    for r in rows {
        let mut acc = V::ZERO;
        for i in offs[r]..offs[r + 1] {
            acc += vals[i] * x[cols[i]];
        }
        if ACC {
            out.add(r, acc);
        } else {
            out.set(r, acc);
        }
    }
}

/// COO entries `entries` (row-aligned): scatter-accumulate into `out`.
///
/// # Safety
/// Concurrent callers' entry ranges must be aligned to row boundaries and
/// disjoint, so each `y` element has exactly one writer.
#[inline]
unsafe fn coo_entries<V: Scalar>(a: &CooMatrix<V>, x: &[V], out: &SharedOut<V>, entries: Range<usize>) {
    let rows = a.row_indices();
    let cols = a.col_indices();
    let vals = a.values();
    for i in entries {
        out.add(rows[i], vals[i] * x[cols[i]]);
    }
}

/// DIA rows `rows`: zero the rows, then stream every diagonal's
/// intersection with the range — the serial kernel's per-row accumulation
/// order (diagonals ascending).
///
/// # Safety
/// No concurrent caller may receive an overlapping row range.
#[inline]
unsafe fn dia_rows<V: Scalar>(a: &DiaMatrix<V>, x: &[V], out: &SharedOut<V>, rows: Range<usize>) {
    let nrows = a.nrows();
    let offsets = a.offsets();
    let values = a.values();
    for i in rows.clone() {
        out.set(i, V::ZERO);
    }
    for (d, &off) in offsets.iter().enumerate() {
        let dr = a.diag_row_range(d);
        let lo = rows.start.max(dr.start);
        let hi = rows.end.min(dr.end);
        let base = d * nrows;
        for i in lo..hi {
            let j = (i as isize + off) as usize;
            out.add(i, values[base + i] * x[j]);
        }
    }
}

/// ELL rows `rows`: zero the rows, then walk the column-major slabs.
///
/// # Safety
/// No concurrent caller may receive an overlapping row range.
#[inline]
unsafe fn ell_rows<V: Scalar>(a: &EllMatrix<V>, x: &[V], out: &SharedOut<V>, rows: Range<usize>) {
    let nrows = a.nrows();
    let cols = a.col_indices();
    let vals = a.values();
    for i in rows.clone() {
        out.set(i, V::ZERO);
    }
    for k in 0..a.width() {
        let base = k * nrows;
        for i in rows.clone() {
            let c = cols[base + i];
            if c != ELL_PAD {
                out.add(i, vals[base + i] * x[c]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Schedule-driven kernels (per-call OpenMP-style partitioning)
// ---------------------------------------------------------------------------

/// CSR kernel with the caller's schedule over rows — the direct analogue of
/// Morpheus' `#pragma omp parallel for` CSR loop. Skewed row distributions
/// therefore suffer real load imbalance (which the auto-tuner exploits by
/// switching formats); see [`spmv_csr_balanced`] for the mitigated variant.
pub fn spmv_csr<V: Scalar>(a: &CsrMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool, schedule: Schedule) {
    let out = SharedOut::new(y);
    pool.parallel_for_ranges(0..a.nrows(), schedule, |rows| {
        // SAFETY: scheduled row ranges are disjoint.
        unsafe { csr_rows::<V, false>(a, x, &out, rows) };
    });
}

/// CSR accumulate kernel (`y += A x`), used by the HDC composite.
pub fn spmv_csr_acc<V: Scalar>(
    a: &CsrMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: &ThreadPool,
    schedule: Schedule,
) {
    let out = SharedOut::new(y);
    pool.parallel_for_ranges(0..a.nrows(), schedule, |rows| {
        // SAFETY: scheduled row ranges are disjoint.
        unsafe { csr_rows::<V, true>(a, x, &out, rows) };
    });
}

/// CSR kernel with nnz-balanced row partitioning — an extension over the
/// paper's OpenMP kernel that splits rows so every thread receives a near
/// equal number of non-zeros, taming skewed matrices without a format
/// switch. Recomputes the partition on every call; an
/// [`crate::plan::ExecPlan`] holds the identical partition precomputed.
pub fn spmv_csr_balanced<V: Scalar>(a: &CsrMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool) {
    let weights = a.row_nnz_counts();
    let parts = weighted_partition(&weights, pool.num_threads());
    let out = SharedOut::new(y);
    pool.parallel_over_parts(&parts, |_p, rows| {
        // SAFETY: weighted row partitions are disjoint.
        unsafe { csr_rows::<V, false>(a, x, &out, rows) };
    });
}

/// COO kernel: zero `y` in parallel, then accumulate row-aligned entry
/// chunks. The chunks are recomputed from the sorted row array on every
/// call; the planned variant reuses the splits held by an `ExecPlan`.
pub fn spmv_coo<V: Scalar>(a: &CooMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool) {
    parallel_fill_zero(y, pool);
    spmv_coo_acc(a, x, y, pool);
}

/// COO accumulate kernel (`y += A x`), used by the HYB composite.
pub fn spmv_coo_acc<V: Scalar>(a: &CooMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool) {
    if a.nnz() == 0 {
        return;
    }
    let chunks = row_aligned_partition(a.row_indices(), pool.num_threads());
    let out = SharedOut::new(y);
    pool.parallel_over_parts(&chunks, |_p, entries| {
        // SAFETY: chunks are aligned to row boundaries, so each row —
        // hence each y element — is touched by exactly one chunk.
        unsafe { coo_entries(a, x, &out, entries) };
    });
}

/// DIA kernel: rows are partitioned with the caller's schedule; within a
/// chunk each diagonal is streamed contiguously, as in the serial kernel.
pub fn spmv_dia<V: Scalar>(a: &DiaMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool, schedule: Schedule) {
    let out = SharedOut::new(y);
    pool.parallel_for_ranges(0..a.nrows(), schedule, |rows| {
        // SAFETY: row ranges scheduled by parallel_for_ranges are disjoint.
        unsafe { dia_rows(a, x, &out, rows) };
    });
}

/// ELL kernel: rows partitioned with the caller's schedule; the inner loop
/// walks the column-major slabs contiguously within the chunk.
pub fn spmv_ell<V: Scalar>(a: &EllMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool, schedule: Schedule) {
    let out = SharedOut::new(y);
    pool.parallel_for_ranges(0..a.nrows(), schedule, |rows| {
        // SAFETY: row ranges scheduled by parallel_for_ranges are disjoint.
        unsafe { ell_rows(a, x, &out, rows) };
    });
}

/// HYB kernel: threaded ELL pass defines `y`, threaded COO pass accumulates.
pub fn spmv_hyb<V: Scalar>(a: &HybMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool, schedule: Schedule) {
    spmv_ell(a.ell(), x, y, pool, schedule);
    spmv_coo_acc(a.coo(), x, y, pool);
}

/// HDC kernel: threaded DIA pass defines `y`, threaded CSR pass accumulates.
pub fn spmv_hdc<V: Scalar>(a: &HdcMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool, schedule: Schedule) {
    spmv_dia(a.dia(), x, y, pool, schedule);
    spmv_csr_acc(a.csr(), x, y, pool, schedule);
}

// ---------------------------------------------------------------------------
// Planned kernels: thin loops over precomputed `ExecPlan` ranges
// ---------------------------------------------------------------------------

/// CSR over precomputed row ranges (write).
pub(crate) fn spmv_csr_ranges<V: Scalar>(
    a: &CsrMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: &ThreadPool,
    rows: &[Range<usize>],
) {
    let out = SharedOut::new(y);
    pool.parallel_for_plan(rows, |_p, r| {
        // SAFETY: plan row ranges tile the rows disjointly.
        unsafe { csr_rows::<V, false>(a, x, &out, r) };
    });
}

/// CSR over precomputed row ranges (accumulate), for the HDC composite.
pub(crate) fn spmv_csr_acc_ranges<V: Scalar>(
    a: &CsrMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: &ThreadPool,
    rows: &[Range<usize>],
) {
    let out = SharedOut::new(y);
    pool.parallel_for_plan(rows, |_p, r| {
        // SAFETY: plan row ranges tile the rows disjointly.
        unsafe { csr_rows::<V, true>(a, x, &out, r) };
    });
}

/// COO over precomputed row-aligned entry ranges: zero `y`, accumulate.
pub(crate) fn spmv_coo_ranges<V: Scalar>(
    a: &CooMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: &ThreadPool,
    entries: &[Range<usize>],
) {
    parallel_fill_zero(y, pool);
    spmv_coo_acc_ranges(a, x, y, pool, entries);
}

/// COO accumulate over precomputed row-aligned entry ranges, for the HYB
/// composite.
pub(crate) fn spmv_coo_acc_ranges<V: Scalar>(
    a: &CooMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: &ThreadPool,
    entries: &[Range<usize>],
) {
    let out = SharedOut::new(y);
    pool.parallel_for_plan(entries, |_p, r| {
        // SAFETY: plan entry ranges are row-aligned and disjoint.
        unsafe { coo_entries(a, x, &out, r) };
    });
}

/// DIA over precomputed row ranges.
pub(crate) fn spmv_dia_ranges<V: Scalar>(
    a: &DiaMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: &ThreadPool,
    rows: &[Range<usize>],
) {
    let out = SharedOut::new(y);
    pool.parallel_for_plan(rows, |_p, r| {
        // SAFETY: plan row ranges tile the rows disjointly.
        unsafe { dia_rows(a, x, &out, r) };
    });
}

/// ELL over precomputed row ranges.
pub(crate) fn spmv_ell_ranges<V: Scalar>(
    a: &EllMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: &ThreadPool,
    rows: &[Range<usize>],
) {
    let out = SharedOut::new(y);
    pool.parallel_for_plan(rows, |_p, r| {
        // SAFETY: plan row ranges tile the rows disjointly.
        unsafe { ell_rows(a, x, &out, r) };
    });
}

pub(crate) fn parallel_fill_zero<V: Scalar>(y: &mut [V], pool: &ThreadPool) {
    let out = SharedOut::new(y);
    pool.parallel_for_ranges(0..out.len(), Schedule::default(), |r| {
        // SAFETY: static ranges are disjoint.
        unsafe { out.slice_mut(r.start, r.len()).fill(V::ZERO) };
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{coo_to_csr, ConvertOptions};
    use crate::spmv::serial;
    use crate::test_util::random_coo;

    #[test]
    fn row_aligned_partition_never_splits_rows() {
        // Rows with a big run in the middle (the property-based coverage
        // lives next to the function in `morpheus-parallel`).
        let rows = vec![0, 0, 1, 1, 1, 1, 1, 1, 1, 2, 3, 3];
        for parts in 1..=6 {
            let chunks = row_aligned_partition(&rows, parts);
            let mut covered = 0;
            let mut prev_end = 0;
            for c in &chunks {
                assert_eq!(c.start, prev_end);
                if c.start > 0 {
                    assert_ne!(rows[c.start], rows[c.start - 1], "chunk splits a row at {}", c.start);
                }
                covered += c.len();
                prev_end = c.end;
            }
            assert_eq!(covered, rows.len(), "parts={parts}");
        }
    }

    #[test]
    fn threaded_matches_serial_exactly() {
        // Same accumulation order per row => bitwise equality.
        let pool = ThreadPool::new(4);
        let coo = random_coo::<f64>(200, 150, 3000, 42);
        let csr = coo_to_csr(&coo);
        let x: Vec<f64> = (0..150).map(|i| (i as f64).sin()).collect();
        let mut ys = vec![0.0; 200];
        serial::spmv_csr(&csr, &x, &mut ys);
        for sched in [Schedule::default(), Schedule::dynamic(), Schedule::guided()] {
            let mut yt = vec![0.0; 200];
            spmv_csr(&csr, &x, &mut yt, &pool, sched);
            assert_eq!(ys, yt, "CSR threaded ({}) must be bitwise equal to serial", sched.name());
        }
        let mut yb = vec![0.0; 200];
        spmv_csr_balanced(&csr, &x, &mut yb, &pool);
        assert_eq!(ys, yb, "balanced CSR must be bitwise equal to serial");

        let mut ys = vec![0.0; 200];
        serial::spmv_coo(&coo, &x, &mut ys);
        let mut yt = vec![0.0; 200];
        spmv_coo(&coo, &x, &mut yt, &pool);
        assert_eq!(ys, yt, "COO threaded must be bitwise equal to serial");
    }

    #[test]
    fn threaded_hybrids_match_serial() {
        let pool = ThreadPool::new(3);
        let opts = ConvertOptions::default();
        let coo = random_coo::<f64>(120, 120, 1400, 7);
        let x: Vec<f64> = (0..120).map(|i| 1.0 + (i % 5) as f64).collect();

        let hyb = crate::convert::coo_to_hyb(&coo, &opts).unwrap();
        let mut ys = vec![0.0; 120];
        serial::spmv_hyb(&hyb, &x, &mut ys);
        let mut yt = vec![0.0; 120];
        spmv_hyb(&hyb, &x, &mut yt, &pool, Schedule::default());
        assert_eq!(ys, yt);

        let hdc = crate::convert::coo_to_hdc(&coo, &opts).unwrap();
        let mut ys = vec![0.0; 120];
        serial::spmv_hdc(&hdc, &x, &mut ys);
        let mut yt = vec![0.0; 120];
        spmv_hdc(&hdc, &x, &mut yt, &pool, Schedule::dynamic());
        assert_eq!(ys, yt);
    }

    #[test]
    fn empty_coo_acc_is_noop() {
        let pool = ThreadPool::new(2);
        let coo = CooMatrix::<f64>::new(4, 4);
        let x = vec![1.0; 4];
        let mut y = vec![3.0; 4];
        spmv_coo_acc(&coo, &x, &mut y, &pool);
        assert_eq!(y, vec![3.0; 4]);
    }

    #[test]
    fn ranged_kernels_match_scheduled_kernels_bitwise() {
        let pool = ThreadPool::new(4);
        let coo = random_coo::<f64>(150, 150, 2000, 3);
        let csr = coo_to_csr(&coo);
        let x: Vec<f64> = (0..150).map(|i| (i as f64 * 0.21).cos()).collect();

        let mut y_ref = vec![0.0; 150];
        serial::spmv_csr(&csr, &x, &mut y_ref);

        let weights = csr.row_nnz_counts();
        let rows = weighted_partition(&weights, pool.num_threads());
        let mut y = vec![f64::NAN; 150];
        spmv_csr_ranges(&csr, &x, &mut y, &pool, &rows);
        assert_eq!(y, y_ref);

        let mut y_ref = vec![0.0; 150];
        serial::spmv_coo(&coo, &x, &mut y_ref);
        let entries = row_aligned_partition(coo.row_indices(), pool.num_threads());
        let mut y = vec![f64::NAN; 150];
        spmv_coo_ranges(&coo, &x, &mut y, &pool, &entries);
        assert_eq!(y, y_ref);
    }
}
