//! Multithreaded SpMV kernels (the "OpenMP" backend).
//!
//! Every kernel partitions the *rows* of the matrix across workers so each
//! element of `y` has exactly one writer — no atomics are needed, and
//! results are bitwise identical to the serial kernels (same per-row
//! accumulation order). The per-range bodies additionally come in
//! bottleneck-specialised [`KernelVariant`]s (see [`crate::spmv::variant`]):
//! the schedule-driven and per-call kernels here only ever select
//! order-preserving variants, keeping the bitwise contract; planned
//! execution ([`crate::plan::ExecPlan`]) may additionally choose the
//! unrolled/SIMD CSR body, whose results are ULP-bounded instead.
//!
//! The per-range loop bodies are shared by three entry styles:
//!
//! * **schedule-driven** ([`spmv_csr`], [`spmv_dia`], [`spmv_ell`], ...):
//!   rows are partitioned with the caller's [`Schedule`] on every call, the
//!   analogue of Morpheus' `#pragma omp parallel for` loops;
//! * **per-call balanced** ([`spmv_csr_balanced`], [`spmv_coo`]): an
//!   nnz-weighted or row-aligned partition is recomputed on every call;
//! * **planned** (the `*_ranges` kernels behind [`crate::plan::ExecPlan`]):
//!   precomputed ranges are executed via
//!   [`ThreadPool::parallel_for_plan`] with no per-call scheduling work at
//!   all — the steady-state path for iterative solvers.

use crate::bell::{BellMatrix, BellSegment};
use crate::bsr::BsrMatrix;
use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dia::DiaMatrix;
use crate::ell::{EllMatrix, ELL_PAD};
use crate::hdc::HdcMatrix;
use crate::hyb::HybMatrix;
use crate::scalar::Scalar;
use crate::spmv::variant::{self, KernelVariant};
use morpheus_parallel::{
    row_aligned_partition, static_partition, weighted_partition, weighted_partition_with, Schedule,
    SharedSlice, ThreadPool,
};
use std::ops::Range;

/// Shared mutable output vector. Soundness contract: concurrent callers must
/// write disjoint index sets, which the row partitioning guarantees.
type SharedOut<V> = SharedSlice<V>;

// ---------------------------------------------------------------------------
// Per-range loop bodies (shared by every entry style)
// ---------------------------------------------------------------------------

/// CSR rows `rows`: per-row gather/reduce, written (or accumulated) into
/// `out`. Same accumulation order as the serial kernel, so results are
/// bitwise identical.
///
/// # Safety
/// No concurrent caller may receive an overlapping row range.
#[inline]
unsafe fn csr_rows<V: Scalar, const ACC: bool>(
    a: &CsrMatrix<V>,
    x: &[V],
    out: &SharedOut<V>,
    rows: Range<usize>,
) {
    let offs = a.row_offsets();
    let cols = a.col_indices();
    let vals = a.values();
    for r in rows {
        let mut acc = V::ZERO;
        for i in offs[r]..offs[r + 1] {
            acc += vals[i] * x[cols[i]];
        }
        if ACC {
            out.add(r, acc);
        } else {
            out.set(r, acc);
        }
    }
}

/// COO entries `entries` (row-aligned): scatter-accumulate into `out`.
///
/// # Safety
/// Concurrent callers' entry ranges must be aligned to row boundaries and
/// disjoint, so each `y` element has exactly one writer.
#[inline]
unsafe fn coo_entries<V: Scalar>(a: &CooMatrix<V>, x: &[V], out: &SharedOut<V>, entries: Range<usize>) {
    let rows = a.row_indices();
    let cols = a.col_indices();
    let vals = a.values();
    for i in entries {
        out.add(rows[i], vals[i] * x[cols[i]]);
    }
}

/// DIA rows `rows`: zero the rows, then stream every diagonal's
/// intersection with the range — the serial kernel's per-row accumulation
/// order (diagonals ascending).
///
/// # Safety
/// No concurrent caller may receive an overlapping row range.
#[inline]
unsafe fn dia_rows<V: Scalar>(a: &DiaMatrix<V>, x: &[V], out: &SharedOut<V>, rows: Range<usize>) {
    let nrows = a.nrows();
    let offsets = a.offsets();
    let values = a.values();
    for i in rows.clone() {
        out.set(i, V::ZERO);
    }
    for (d, &off) in offsets.iter().enumerate() {
        let dr = a.diag_row_range(d);
        let lo = rows.start.max(dr.start);
        let hi = rows.end.min(dr.end);
        let base = d * nrows;
        for i in lo..hi {
            let j = (i as isize + off) as usize;
            out.add(i, values[base + i] * x[j]);
        }
    }
}

/// ELL rows `rows`: zero the rows, then walk the column-major slabs.
///
/// # Safety
/// No concurrent caller may receive an overlapping row range.
#[inline]
unsafe fn ell_rows<V: Scalar>(a: &EllMatrix<V>, x: &[V], out: &SharedOut<V>, rows: Range<usize>) {
    let nrows = a.nrows();
    let cols = a.col_indices();
    let vals = a.values();
    for i in rows.clone() {
        out.set(i, V::ZERO);
    }
    for k in 0..a.width() {
        let base = k * nrows;
        for i in rows.clone() {
            let c = cols[base + i];
            if c != ELL_PAD {
                out.add(i, vals[base + i] * x[c]);
            }
        }
    }
}

/// BSR block rows `brows`: accumulate each block row's dense blocks into a
/// local register tile, then write the covered output rows. Per-row
/// accumulation order (blocks ascending, block columns ascending) matches
/// the serial kernel — bitwise identical.
///
/// # Safety
/// No concurrent caller may receive an overlapping block-row range (block
/// rows own disjoint output rows by construction).
#[inline]
unsafe fn bsr_block_rows<V: Scalar>(a: &BsrMatrix<V>, x: &[V], out: &SharedOut<V>, brows: Range<usize>) {
    // Monomorphise the supported square dims, as the serial kernel does:
    // fixed-trip-count inner loops keep the accumulator tile in registers.
    match (a.block_r(), a.block_c()) {
        (2, 2) => bsr_block_rows_body::<V, 2, 2>(a, x, out, brows),
        (4, 4) => bsr_block_rows_body::<V, 4, 4>(a, x, out, brows),
        (8, 8) => bsr_block_rows_body::<V, 8, 8>(a, x, out, brows),
        _ => bsr_block_rows_dyn(a, x, out, brows),
    }
}

/// [`bsr_block_rows`] with compile-time block dims. Same accumulation
/// order as the dynamic body and the serial kernel.
///
/// # Safety
/// See [`bsr_block_rows`].
#[inline(always)]
unsafe fn bsr_block_rows_body<V: Scalar, const R: usize, const C: usize>(
    a: &BsrMatrix<V>,
    x: &[V],
    out: &SharedOut<V>,
    brows: Range<usize>,
) {
    let offs = a.block_row_offsets();
    let bcols = a.block_cols();
    let vals = a.values();
    let (nrows, ncols) = (a.nrows(), a.ncols());
    for br in brows {
        let r0 = br * R;
        let rcount = R.min(nrows - r0);
        let mut acc = [V::ZERO; R];
        for b in offs[br]..offs[br + 1] {
            let c0 = bcols[b] * C;
            let bv = &vals[b * R * C..(b + 1) * R * C];
            if c0 + C <= ncols {
                let xs: &[V] = &x[c0..c0 + C];
                for rr in 0..R {
                    let mut s = acc[rr];
                    for cc in 0..C {
                        s += bv[rr * C + cc] * xs[cc];
                    }
                    acc[rr] = s;
                }
            } else {
                for rr in 0..R {
                    for cc in 0..ncols - c0 {
                        acc[rr] += bv[rr * C + cc] * x[c0 + cc];
                    }
                }
            }
        }
        for (rr, &v) in acc.iter().enumerate().take(rcount) {
            out.set(r0 + rr, v);
        }
    }
}

/// [`bsr_block_rows`] for arbitrary block dims.
///
/// # Safety
/// See [`bsr_block_rows`].
unsafe fn bsr_block_rows_dyn<V: Scalar>(a: &BsrMatrix<V>, x: &[V], out: &SharedOut<V>, brows: Range<usize>) {
    let (r, c) = (a.block_r(), a.block_c());
    let offs = a.block_row_offsets();
    let bcols = a.block_cols();
    let vals = a.values();
    let (nrows, ncols) = (a.nrows(), a.ncols());
    let mut acc = vec![V::ZERO; r];
    for br in brows {
        let r0 = br * r;
        let rcount = r.min(nrows - r0);
        acc.fill(V::ZERO);
        for b in offs[br]..offs[br + 1] {
            let c0 = bcols[b] * c;
            let ccount = c.min(ncols - c0);
            let bv = &vals[b * r * c..(b + 1) * r * c];
            for (rr, slot) in acc.iter_mut().enumerate() {
                for cc in 0..ccount {
                    *slot += bv[rr * c + cc] * x[c0 + cc];
                }
            }
        }
        for (rr, &v) in acc.iter().enumerate().take(rcount) {
            out.set(r0 + rr, v);
        }
    }
}

/// One BELL segment: stream the bucket slab column-major over the span,
/// accumulating into pre-zeroed output rows. Per-row order is `k`
/// ascending, as in the serial kernel — bitwise identical.
///
/// # Safety
/// Concurrent callers' segments must be disjoint (spans within a bucket
/// never overlap and buckets hold disjoint rows).
#[inline]
unsafe fn bell_segment<V: Scalar>(a: &BellMatrix<V>, x: &[V], out: &SharedOut<V>, seg: &BellSegment) {
    let bucket = &a.buckets()[seg.bucket];
    // Monomorphise the common narrow widths (see `serial::spmv_bell_acc`)
    // so the stride walk fully unrolls.
    match bucket.width() {
        1 => bell_segment_body::<V, 1>(bucket, x, out, seg.span.clone()),
        2 => bell_segment_body::<V, 2>(bucket, x, out, seg.span.clone()),
        3 => bell_segment_body::<V, 3>(bucket, x, out, seg.span.clone()),
        4 => bell_segment_body::<V, 4>(bucket, x, out, seg.span.clone()),
        6 => bell_segment_body::<V, 6>(bucket, x, out, seg.span.clone()),
        8 => bell_segment_body::<V, 8>(bucket, x, out, seg.span.clone()),
        w => bell_segment_dyn(bucket, x, out, seg.span.clone(), w),
    }
}

/// [`bell_segment`] with a compile-time bucket width.
///
/// # Safety
/// See [`bell_segment`].
#[inline(always)]
unsafe fn bell_segment_body<V: Scalar, const W: usize>(
    bucket: &crate::bell::BellBucket<V>,
    x: &[V],
    out: &SharedOut<V>,
    span: Range<usize>,
) {
    bell_segment_walk(bucket, x, out, span, W)
}

/// [`bell_segment`] for any other width.
///
/// # Safety
/// See [`bell_segment`].
unsafe fn bell_segment_dyn<V: Scalar>(
    bucket: &crate::bell::BellBucket<V>,
    x: &[V],
    out: &SharedOut<V>,
    span: Range<usize>,
    width: usize,
) {
    bell_segment_walk(bucket, x, out, span, width)
}

/// Four rows per step through the column-major slab (see
/// `serial::spmv_bell_acc`): each k-level reads four contiguous cols/vals
/// elements into four independent accumulators; padding is branchless
/// because pad slots store `V::ZERO`. Same k-ascending order per row as
/// the serial kernel, so the planned result stays bitwise identical.
///
/// # Safety
/// See [`bell_segment`].
#[inline(always)]
unsafe fn bell_segment_walk<V: Scalar>(
    bucket: &crate::bell::BellBucket<V>,
    x: &[V],
    out: &SharedOut<V>,
    span: Range<usize>,
    width: usize,
) {
    let rows = bucket.rows();
    let cols = bucket.cols();
    let vals = bucket.vals();
    let len = rows.len();
    let mut j = span.start;
    while j + 4 <= span.end {
        let mut acc = [V::ZERO; 4];
        let mut idx = j;
        for _ in 0..width {
            for l in 0..4 {
                let c = cols[idx + l];
                let c = if c == ELL_PAD { 0 } else { c };
                acc[l] += vals[idx + l] * x[c];
            }
            idx += len;
        }
        for l in 0..4 {
            out.add(rows[j + l], acc[l]);
        }
        j += 4;
    }
    while j < span.end {
        let mut acc = V::ZERO;
        let mut idx = j;
        for _ in 0..width {
            let c = cols[idx];
            if c == ELL_PAD {
                break;
            }
            acc += vals[idx] * x[c];
            idx += len;
        }
        out.add(rows[j], acc);
        j += 1;
    }
}

// ---------------------------------------------------------------------------
// Variant bodies (bottleneck-specialised; see `crate::spmv::variant`)
// ---------------------------------------------------------------------------

/// CSR rows with the unrolled/SIMD row reduction
/// ([`variant::dot_row_unrolled`]). Accumulation order differs from the
/// scalar body — results are ULP-bounded, not bitwise.
///
/// # Safety
/// No concurrent caller may receive an overlapping row range.
#[inline]
unsafe fn csr_rows_unrolled<V: Scalar, const ACC: bool>(
    a: &CsrMatrix<V>,
    x: &[V],
    out: &SharedOut<V>,
    rows: Range<usize>,
) {
    let offs = a.row_offsets();
    let cols = a.col_indices();
    let vals = a.values();
    for r in rows {
        let (lo, hi) = (offs[r], offs[r + 1]);
        let acc = variant::dot_row_unrolled(&vals[lo..hi], &cols[lo..hi], x);
        if ACC {
            out.add(r, acc);
        } else {
            out.set(r, acc);
        }
    }
}

/// CSR rows with software prefetch of the `x` gathers
/// [`variant::PREFETCH_DIST`] entries ahead. Accumulation order is the
/// scalar body's — results stay bitwise identical.
///
/// # Safety
/// No concurrent caller may receive an overlapping row range.
#[inline]
unsafe fn csr_rows_prefetch<V: Scalar, const ACC: bool>(
    a: &CsrMatrix<V>,
    x: &[V],
    out: &SharedOut<V>,
    rows: Range<usize>,
) {
    let offs = a.row_offsets();
    let cols = a.col_indices();
    let vals = a.values();
    let xp = x.as_ptr();
    for r in rows {
        let mut acc = V::ZERO;
        for i in offs[r]..offs[r + 1] {
            let pf = i + variant::PREFETCH_DIST;
            if pf < cols.len() {
                // Column indices are in-bounds for x by matrix invariant;
                // prefetching across the row boundary warms the next rows'
                // gathers too.
                variant::prefetch_read(xp.add(cols[pf]));
            }
            acc += vals[i] * x[cols[i]];
        }
        if ACC {
            out.add(r, acc);
        } else {
            out.set(r, acc);
        }
    }
}

/// DIA rows in blocks of [`variant::BLOCK_ROWS`]: the full diagonal sweep
/// runs per block, keeping the output block and its `x` window
/// cache-resident. Per-row accumulation order (diagonals ascending) is
/// unchanged — bitwise identical to the scalar body.
///
/// # Safety
/// No concurrent caller may receive an overlapping row range.
#[inline]
unsafe fn dia_rows_blocked<V: Scalar>(a: &DiaMatrix<V>, x: &[V], out: &SharedOut<V>, rows: Range<usize>) {
    let mut b = rows.start;
    while b < rows.end {
        let e = (b + variant::BLOCK_ROWS).min(rows.end);
        dia_rows(a, x, out, b..e);
        b = e;
    }
}

/// ELL rows in blocks of [`variant::BLOCK_ROWS`] (see [`dia_rows_blocked`];
/// per-row slab order `k` ascending is unchanged — bitwise identical).
///
/// # Safety
/// No concurrent caller may receive an overlapping row range.
#[inline]
unsafe fn ell_rows_blocked<V: Scalar>(a: &EllMatrix<V>, x: &[V], out: &SharedOut<V>, rows: Range<usize>) {
    let mut b = rows.start;
    while b < rows.end {
        let e = (b + variant::BLOCK_ROWS).min(rows.end);
        ell_rows(a, x, out, b..e);
        b = e;
    }
}

/// Variant-dispatching CSR body. Non-CSR variants fall back to the scalar
/// reference.
///
/// # Safety
/// Same contract as [`csr_rows`].
#[inline]
pub(crate) unsafe fn csr_rows_variant<V: Scalar, const ACC: bool>(
    a: &CsrMatrix<V>,
    x: &[V],
    out: &SharedOut<V>,
    rows: Range<usize>,
    v: KernelVariant,
) {
    match v {
        KernelVariant::Unrolled => csr_rows_unrolled::<V, ACC>(a, x, out, rows),
        KernelVariant::Prefetch => csr_rows_prefetch::<V, ACC>(a, x, out, rows),
        _ => csr_rows::<V, ACC>(a, x, out, rows),
    }
}

/// Variant-dispatching DIA body (only `Blocked` specialises).
///
/// # Safety
/// Same contract as [`dia_rows`].
#[inline]
pub(crate) unsafe fn dia_rows_variant<V: Scalar>(
    a: &DiaMatrix<V>,
    x: &[V],
    out: &SharedOut<V>,
    rows: Range<usize>,
    v: KernelVariant,
) {
    match v {
        KernelVariant::Blocked => dia_rows_blocked(a, x, out, rows),
        _ => dia_rows(a, x, out, rows),
    }
}

/// Variant-dispatching ELL body (only `Blocked` specialises).
///
/// # Safety
/// Same contract as [`ell_rows`].
#[inline]
pub(crate) unsafe fn ell_rows_variant<V: Scalar>(
    a: &EllMatrix<V>,
    x: &[V],
    out: &SharedOut<V>,
    rows: Range<usize>,
    v: KernelVariant,
) {
    match v {
        KernelVariant::Blocked => ell_rows_blocked(a, x, out, rows),
        _ => ell_rows(a, x, out, rows),
    }
}

/// BSR block rows in chunks of [`variant::BLOCK_ROWS`] block rows, keeping
/// the output tile and `x` window cache-resident. Per-row accumulation
/// order is unchanged — bitwise identical to the plain body.
///
/// # Safety
/// No concurrent caller may receive an overlapping block-row range.
#[inline]
unsafe fn bsr_block_rows_blocked<V: Scalar>(
    a: &BsrMatrix<V>,
    x: &[V],
    out: &SharedOut<V>,
    brows: Range<usize>,
) {
    let mut b = brows.start;
    while b < brows.end {
        let e = (b + variant::BLOCK_ROWS).min(brows.end);
        bsr_block_rows(a, x, out, b..e);
        b = e;
    }
}

/// Variant-dispatching BSR body (only `Blocked` specialises; the block
/// inner loops are already register-tiled).
///
/// # Safety
/// Same contract as [`bsr_block_rows`].
#[inline]
pub(crate) unsafe fn bsr_block_rows_variant<V: Scalar>(
    a: &BsrMatrix<V>,
    x: &[V],
    out: &SharedOut<V>,
    brows: Range<usize>,
    v: KernelVariant,
) {
    match v {
        KernelVariant::Blocked => bsr_block_rows_blocked(a, x, out, brows),
        _ => bsr_block_rows(a, x, out, brows),
    }
}

// ---------------------------------------------------------------------------
// Schedule-driven kernels (per-call OpenMP-style partitioning)
// ---------------------------------------------------------------------------

/// CSR kernel with the caller's schedule over rows — the direct analogue of
/// Morpheus' `#pragma omp parallel for` CSR loop. Skewed row distributions
/// therefore suffer real load imbalance (which the auto-tuner exploits by
/// switching formats); see [`spmv_csr_balanced`] for the mitigated variant.
pub fn spmv_csr<V: Scalar>(a: &CsrMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool, schedule: Schedule) {
    let out = SharedOut::new(y);
    pool.parallel_for_ranges(0..a.nrows(), schedule, |rows| {
        // SAFETY: scheduled row ranges are disjoint.
        unsafe { csr_rows::<V, false>(a, x, &out, rows) };
    });
}

/// CSR accumulate kernel (`y += A x`), used by the HDC composite.
pub fn spmv_csr_acc<V: Scalar>(
    a: &CsrMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: &ThreadPool,
    schedule: Schedule,
) {
    let out = SharedOut::new(y);
    pool.parallel_for_ranges(0..a.nrows(), schedule, |rows| {
        // SAFETY: scheduled row ranges are disjoint.
        unsafe { csr_rows::<V, true>(a, x, &out, rows) };
    });
}

/// CSR kernel with nnz-balanced row partitioning — an extension over the
/// paper's OpenMP kernel that splits rows so every thread receives a near
/// equal number of non-zeros, taming skewed matrices without a format
/// switch. Recomputes the partition on every call; an
/// [`crate::plan::ExecPlan`] holds the identical partition precomputed.
pub fn spmv_csr_balanced<V: Scalar>(a: &CsrMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool) {
    let weights = a.row_nnz_counts();
    let parts = weighted_partition(&weights, pool.num_threads());
    let out = SharedOut::new(y);
    pool.parallel_over_parts(&parts, |_p, rows| {
        // SAFETY: weighted row partitions are disjoint.
        unsafe { csr_rows::<V, false>(a, x, &out, rows) };
    });
}

/// COO kernel: zero `y` in parallel, then accumulate row-aligned entry
/// chunks. The chunks are recomputed from the sorted row array on every
/// call; the planned variant reuses the splits held by an `ExecPlan`.
pub fn spmv_coo<V: Scalar>(a: &CooMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool) {
    parallel_fill_zero(y, pool);
    spmv_coo_acc(a, x, y, pool);
}

/// COO accumulate kernel (`y += A x`), used by the HYB composite.
pub fn spmv_coo_acc<V: Scalar>(a: &CooMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool) {
    if a.nnz() == 0 {
        return;
    }
    let chunks = row_aligned_partition(a.row_indices(), pool.num_threads());
    let out = SharedOut::new(y);
    pool.parallel_over_parts(&chunks, |_p, entries| {
        // SAFETY: chunks are aligned to row boundaries, so each row —
        // hence each y element — is touched by exactly one chunk.
        unsafe { coo_entries(a, x, &out, entries) };
    });
}

/// DIA kernel: rows are partitioned with the caller's schedule; within a
/// chunk each diagonal is streamed contiguously, as in the serial kernel.
pub fn spmv_dia<V: Scalar>(a: &DiaMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool, schedule: Schedule) {
    let out = SharedOut::new(y);
    pool.parallel_for_ranges(0..a.nrows(), schedule, |rows| {
        // SAFETY: row ranges scheduled by parallel_for_ranges are disjoint.
        unsafe { dia_rows(a, x, &out, rows) };
    });
}

/// ELL kernel: rows partitioned with the caller's schedule; the inner loop
/// walks the column-major slabs contiguously within the chunk.
pub fn spmv_ell<V: Scalar>(a: &EllMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool, schedule: Schedule) {
    let out = SharedOut::new(y);
    pool.parallel_for_ranges(0..a.nrows(), schedule, |rows| {
        // SAFETY: row ranges scheduled by parallel_for_ranges are disjoint.
        unsafe { ell_rows(a, x, &out, rows) };
    });
}

/// HYB kernel: ELL pass defines `y`, COO pass accumulates. Both portions'
/// splits are derived **once** per call (static rows for the slab,
/// row-aligned entries for the surplus) and executed through the same
/// per-range variant bodies an [`crate::plan::ExecPlan`] replays, so kernel
/// variants apply uniformly to composite formats. The `schedule` parameter
/// is kept for API compatibility; composite portions always use their
/// plan-shaped partitions (results are bitwise identical either way).
pub fn spmv_hyb<V: Scalar>(a: &HybMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool, _schedule: Schedule) {
    let threads = pool.num_threads();
    let rows = static_partition(a.nrows(), threads);
    let row_variants: Vec<KernelVariant> =
        rows.iter().map(|r| variant::select_ell(a.ell().width(), r.len())).collect();
    spmv_ell_ranges(a.ell(), x, y, Some(pool), &rows, &row_variants);
    let entries = row_aligned_partition(a.coo().row_indices(), threads);
    spmv_coo_acc_ranges(a.coo(), x, y, Some(pool), &entries);
}

/// HDC kernel: DIA pass defines `y`, CSR pass accumulates. As with
/// [`spmv_hyb`], both portions' splits are derived once per call (static
/// DIA rows, nnz-weighted CSR rows) and run through the shared per-range
/// variant bodies; `schedule` is kept for API compatibility. Per-call
/// kernels keep this module's bitwise-identical-to-serial contract, so
/// only order-preserving variants are selected here (the CSR remainder
/// stays on the scalar body; bottleneck-driven `Unrolled`/`Prefetch`
/// selection lives in [`crate::plan::ExecPlan`]).
pub fn spmv_hdc<V: Scalar>(a: &HdcMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool, _schedule: Schedule) {
    let threads = pool.num_threads();
    let dia = a.dia();
    let rows = static_partition(dia.nrows(), threads);
    let dia_variants: Vec<KernelVariant> =
        rows.iter().map(|r| variant::select_dia(dia.offsets().len(), r.len())).collect();
    spmv_dia_ranges(dia, x, y, Some(pool), &rows, &dia_variants);
    let csr = a.csr();
    let offs = csr.row_offsets();
    let csr_rows = weighted_partition_with(csr.nrows(), threads, |r| offs[r + 1] - offs[r]);
    let csr_variants = vec![KernelVariant::Scalar; csr_rows.len()];
    spmv_csr_acc_ranges(csr, x, y, Some(pool), &csr_rows, &csr_variants);
}

/// BSR kernel: block rows are partitioned weighted by their entry counts
/// (a block row is the atomic work unit — it owns `block_r` output rows).
pub fn spmv_bsr<V: Scalar>(a: &BsrMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool) {
    let offs = a.block_row_offsets();
    let brows = weighted_partition_with(a.nblockrows(), pool.num_threads(), |br| offs[br + 1] - offs[br]);
    let out = SharedOut::new(y);
    pool.parallel_over_parts(&brows, |_p, r| {
        // SAFETY: weighted block-row partitions are disjoint.
        unsafe { bsr_block_rows(a, x, &out, r) };
    });
}

/// BELL kernel: zero `y` in parallel, then accumulate cell-balanced bucket
/// segments. Segments are recomputed per call; an [`crate::plan::ExecPlan`]
/// holds them precomputed.
pub fn spmv_bell<V: Scalar>(a: &BellMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool) {
    parallel_fill_zero(y, pool);
    let segs = a.segments(pool.num_threads());
    spmv_bell_acc_segments(a, x, y, Some(pool), &segs);
}

// ---------------------------------------------------------------------------
// Planned kernels: thin loops over precomputed `ExecPlan` ranges
// ---------------------------------------------------------------------------

/// CSR over precomputed row ranges (write), each range running its
/// planned [`KernelVariant`] body. Without a pool (`None`) or on a
/// one-worker pool the ranges run inline in order on the calling thread —
/// same bodies, bitwise-identical results, no dispatch overhead — so the
/// variant layer engages even on single-core hosts and on the serving
/// layer's busy-pool fallback.
pub(crate) fn spmv_csr_ranges<V: Scalar>(
    a: &CsrMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: Option<&ThreadPool>,
    rows: &[Range<usize>],
    variants: &[KernelVariant],
) {
    debug_assert_eq!(rows.len(), variants.len());
    let out = SharedOut::new(y);
    let Some(pool) = pool.filter(|p| p.num_threads() > 1) else {
        for (p, r) in rows.iter().enumerate() {
            // SAFETY: one caller, ranges executed sequentially.
            unsafe { csr_rows_variant::<V, false>(a, x, &out, r.clone(), variants[p]) };
        }
        return;
    };
    pool.parallel_for_plan(rows, |p, r| {
        // SAFETY: plan row ranges tile the rows disjointly.
        unsafe { csr_rows_variant::<V, false>(a, x, &out, r, variants[p]) };
    });
}

/// CSR over precomputed row ranges (accumulate), for the HDC composite.
pub(crate) fn spmv_csr_acc_ranges<V: Scalar>(
    a: &CsrMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: Option<&ThreadPool>,
    rows: &[Range<usize>],
    variants: &[KernelVariant],
) {
    debug_assert_eq!(rows.len(), variants.len());
    let out = SharedOut::new(y);
    let Some(pool) = pool.filter(|p| p.num_threads() > 1) else {
        for (p, r) in rows.iter().enumerate() {
            // SAFETY: one caller, ranges executed sequentially.
            unsafe { csr_rows_variant::<V, true>(a, x, &out, r.clone(), variants[p]) };
        }
        return;
    };
    pool.parallel_for_plan(rows, |p, r| {
        // SAFETY: plan row ranges tile the rows disjointly.
        unsafe { csr_rows_variant::<V, true>(a, x, &out, r, variants[p]) };
    });
}

/// COO over precomputed row-aligned entry ranges: zero `y`, accumulate.
/// (COO's scatter loop has no specialised variants.)
pub(crate) fn spmv_coo_ranges<V: Scalar>(
    a: &CooMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: Option<&ThreadPool>,
    entries: &[Range<usize>],
) {
    match pool {
        Some(pool) => parallel_fill_zero(y, pool),
        None => y.fill(V::ZERO),
    }
    spmv_coo_acc_ranges(a, x, y, pool, entries);
}

/// COO accumulate over precomputed row-aligned entry ranges, for the HYB
/// composite.
pub(crate) fn spmv_coo_acc_ranges<V: Scalar>(
    a: &CooMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: Option<&ThreadPool>,
    entries: &[Range<usize>],
) {
    let out = SharedOut::new(y);
    let Some(pool) = pool.filter(|p| p.num_threads() > 1) else {
        for r in entries {
            // SAFETY: one caller, ranges executed sequentially.
            unsafe { coo_entries(a, x, &out, r.clone()) };
        }
        return;
    };
    pool.parallel_for_plan(entries, |_p, r| {
        // SAFETY: plan entry ranges are row-aligned and disjoint.
        unsafe { coo_entries(a, x, &out, r) };
    });
}

/// DIA over precomputed row ranges, each running its planned variant.
pub(crate) fn spmv_dia_ranges<V: Scalar>(
    a: &DiaMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: Option<&ThreadPool>,
    rows: &[Range<usize>],
    variants: &[KernelVariant],
) {
    debug_assert_eq!(rows.len(), variants.len());
    let out = SharedOut::new(y);
    let Some(pool) = pool.filter(|p| p.num_threads() > 1) else {
        for (p, r) in rows.iter().enumerate() {
            // SAFETY: one caller, ranges executed sequentially.
            unsafe { dia_rows_variant(a, x, &out, r.clone(), variants[p]) };
        }
        return;
    };
    pool.parallel_for_plan(rows, |p, r| {
        // SAFETY: plan row ranges tile the rows disjointly.
        unsafe { dia_rows_variant(a, x, &out, r, variants[p]) };
    });
}

/// ELL over precomputed row ranges, each running its planned variant.
pub(crate) fn spmv_ell_ranges<V: Scalar>(
    a: &EllMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: Option<&ThreadPool>,
    rows: &[Range<usize>],
    variants: &[KernelVariant],
) {
    debug_assert_eq!(rows.len(), variants.len());
    let out = SharedOut::new(y);
    let Some(pool) = pool.filter(|p| p.num_threads() > 1) else {
        for (p, r) in rows.iter().enumerate() {
            // SAFETY: one caller, ranges executed sequentially.
            unsafe { ell_rows_variant(a, x, &out, r.clone(), variants[p]) };
        }
        return;
    };
    pool.parallel_for_plan(rows, |p, r| {
        // SAFETY: plan row ranges tile the rows disjointly.
        unsafe { ell_rows_variant(a, x, &out, r, variants[p]) };
    });
}

/// BSR over precomputed block-row ranges, each running its planned variant.
pub(crate) fn spmv_bsr_ranges<V: Scalar>(
    a: &BsrMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: Option<&ThreadPool>,
    brows: &[Range<usize>],
    variants: &[KernelVariant],
) {
    debug_assert_eq!(brows.len(), variants.len());
    let out = SharedOut::new(y);
    let Some(pool) = pool.filter(|p| p.num_threads() > 1) else {
        for (p, r) in brows.iter().enumerate() {
            // SAFETY: one caller, ranges executed sequentially.
            unsafe { bsr_block_rows_variant(a, x, &out, r.clone(), variants[p]) };
        }
        return;
    };
    pool.parallel_for_plan(brows, |p, r| {
        // SAFETY: plan block-row ranges tile the block rows disjointly.
        unsafe { bsr_block_rows_variant(a, x, &out, r, variants[p]) };
    });
}

/// BELL over precomputed bucket segments: zero `y`, accumulate.
pub(crate) fn spmv_bell_ranges<V: Scalar>(
    a: &BellMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: Option<&ThreadPool>,
    segs: &[BellSegment],
) {
    match pool.filter(|p| p.num_threads() > 1) {
        Some(pool) => parallel_fill_zero(y, pool),
        None => y.fill(V::ZERO),
    }
    spmv_bell_acc_segments(a, x, y, pool, segs);
}

/// BELL accumulate over precomputed bucket segments. Segments are indexed
/// through unit ranges so the pool's plan executor can replay them.
pub(crate) fn spmv_bell_acc_segments<V: Scalar>(
    a: &BellMatrix<V>,
    x: &[V],
    y: &mut [V],
    pool: Option<&ThreadPool>,
    segs: &[BellSegment],
) {
    let out = SharedOut::new(y);
    let Some(pool) = pool.filter(|p| p.num_threads() > 1) else {
        for seg in segs {
            // SAFETY: one caller, segments executed sequentially.
            unsafe { bell_segment(a, x, &out, seg) };
        }
        return;
    };
    let units: Vec<Range<usize>> = (0..segs.len()).map(|i| i..i + 1).collect();
    pool.parallel_for_plan(&units, |p, _r| {
        // SAFETY: segments are disjoint (see `BellMatrix::segments`).
        unsafe { bell_segment(a, x, &out, &segs[p]) };
    });
}

pub(crate) fn parallel_fill_zero<V: Scalar>(y: &mut [V], pool: &ThreadPool) {
    if pool.num_threads() == 1 {
        y.fill(V::ZERO);
        return;
    }
    let out = SharedOut::new(y);
    pool.parallel_for_ranges(0..out.len(), Schedule::default(), |r| {
        // SAFETY: static ranges are disjoint.
        unsafe { out.slice_mut(r.start, r.len()).fill(V::ZERO) };
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{coo_to_csr, ConvertOptions};
    use crate::spmv::serial;
    use crate::test_util::random_coo;

    #[test]
    fn row_aligned_partition_never_splits_rows() {
        // Rows with a big run in the middle (the property-based coverage
        // lives next to the function in `morpheus-parallel`).
        let rows = vec![0, 0, 1, 1, 1, 1, 1, 1, 1, 2, 3, 3];
        for parts in 1..=6 {
            let chunks = row_aligned_partition(&rows, parts);
            let mut covered = 0;
            let mut prev_end = 0;
            for c in &chunks {
                assert_eq!(c.start, prev_end);
                if c.start > 0 {
                    assert_ne!(rows[c.start], rows[c.start - 1], "chunk splits a row at {}", c.start);
                }
                covered += c.len();
                prev_end = c.end;
            }
            assert_eq!(covered, rows.len(), "parts={parts}");
        }
    }

    #[test]
    fn threaded_matches_serial_exactly() {
        // Same accumulation order per row => bitwise equality.
        let pool = ThreadPool::new(4);
        let coo = random_coo::<f64>(200, 150, 3000, 42);
        let csr = coo_to_csr(&coo);
        let x: Vec<f64> = (0..150).map(|i| (i as f64).sin()).collect();
        let mut ys = vec![0.0; 200];
        serial::spmv_csr(&csr, &x, &mut ys);
        for sched in [Schedule::default(), Schedule::dynamic(), Schedule::guided()] {
            let mut yt = vec![0.0; 200];
            spmv_csr(&csr, &x, &mut yt, &pool, sched);
            assert_eq!(ys, yt, "CSR threaded ({}) must be bitwise equal to serial", sched.name());
        }
        let mut yb = vec![0.0; 200];
        spmv_csr_balanced(&csr, &x, &mut yb, &pool);
        assert_eq!(ys, yb, "balanced CSR must be bitwise equal to serial");

        let mut ys = vec![0.0; 200];
        serial::spmv_coo(&coo, &x, &mut ys);
        let mut yt = vec![0.0; 200];
        spmv_coo(&coo, &x, &mut yt, &pool);
        assert_eq!(ys, yt, "COO threaded must be bitwise equal to serial");
    }

    #[test]
    fn threaded_hybrids_match_serial() {
        let pool = ThreadPool::new(3);
        let opts = ConvertOptions::default();
        let coo = random_coo::<f64>(120, 120, 1400, 7);
        let x: Vec<f64> = (0..120).map(|i| 1.0 + (i % 5) as f64).collect();

        let hyb = crate::convert::coo_to_hyb(&coo, &opts).unwrap();
        let mut ys = vec![0.0; 120];
        serial::spmv_hyb(&hyb, &x, &mut ys);
        let mut yt = vec![0.0; 120];
        spmv_hyb(&hyb, &x, &mut yt, &pool, Schedule::default());
        assert_eq!(ys, yt);

        let hdc = crate::convert::coo_to_hdc(&coo, &opts).unwrap();
        let mut ys = vec![0.0; 120];
        serial::spmv_hdc(&hdc, &x, &mut ys);
        let mut yt = vec![0.0; 120];
        spmv_hdc(&hdc, &x, &mut yt, &pool, Schedule::dynamic());
        assert_eq!(ys, yt);
    }

    #[test]
    fn empty_coo_acc_is_noop() {
        let pool = ThreadPool::new(2);
        let coo = CooMatrix::<f64>::new(4, 4);
        let x = vec![1.0; 4];
        let mut y = vec![3.0; 4];
        spmv_coo_acc(&coo, &x, &mut y, &pool);
        assert_eq!(y, vec![3.0; 4]);
    }

    #[test]
    fn ranged_kernels_match_scheduled_kernels_bitwise() {
        let pool = ThreadPool::new(4);
        let coo = random_coo::<f64>(150, 150, 2000, 3);
        let csr = coo_to_csr(&coo);
        let x: Vec<f64> = (0..150).map(|i| (i as f64 * 0.21).cos()).collect();

        let mut y_ref = vec![0.0; 150];
        serial::spmv_csr(&csr, &x, &mut y_ref);

        let weights = csr.row_nnz_counts();
        let rows = weighted_partition(&weights, pool.num_threads());
        let scalars = vec![KernelVariant::Scalar; rows.len()];
        let mut y = vec![f64::NAN; 150];
        spmv_csr_ranges(&csr, &x, &mut y, Some(&pool), &rows, &scalars);
        assert_eq!(y, y_ref);

        let mut y_ref = vec![0.0; 150];
        serial::spmv_coo(&coo, &x, &mut y_ref);
        let entries = row_aligned_partition(coo.row_indices(), pool.num_threads());
        let mut y = vec![f64::NAN; 150];
        spmv_coo_ranges(&coo, &x, &mut y, Some(&pool), &entries);
        assert_eq!(y, y_ref);
    }

    #[test]
    fn order_preserving_variant_bodies_are_bitwise_equal_to_scalar() {
        // Prefetch (CSR) and Blocked (DIA/ELL) keep the reference per-row
        // accumulation order; run them over both one- and multi-worker
        // pools (the planned path inlines ranges on one worker).
        let coo = random_coo::<f64>(700, 650, 9000, 19);
        let csr = coo_to_csr(&coo);
        let x: Vec<f64> = (0..650).map(|i| (i as f64 * 0.13).sin() + 0.5).collect();
        let mut y_ref = vec![0.0; 700];
        serial::spmv_csr(&csr, &x, &mut y_ref);
        for workers in [1, 3] {
            let pool = ThreadPool::new(workers);
            let rows = weighted_partition(&csr.row_nnz_counts(), workers);
            let prefetch = vec![KernelVariant::Prefetch; rows.len()];
            let mut y = vec![f64::NAN; 700];
            spmv_csr_ranges(&csr, &x, &mut y, Some(&pool), &rows, &prefetch);
            assert_eq!(y, y_ref, "prefetch CSR, {workers} worker(s)");
        }

        let opts = ConvertOptions { min_padded_allowance: 1 << 22, ..Default::default() };
        let ell = crate::convert::coo_to_ell(&coo, &opts).unwrap();
        let mut y_ref = vec![0.0; 700];
        serial::spmv_ell(&ell, &x, &mut y_ref);
        for workers in [1, 2] {
            let pool = ThreadPool::new(workers);
            let rows = static_partition(700, workers);
            let blocked = vec![KernelVariant::Blocked; rows.len()];
            let mut y = vec![f64::NAN; 700];
            spmv_ell_ranges(&ell, &x, &mut y, Some(&pool), &rows, &blocked);
            assert_eq!(y, y_ref, "blocked ELL, {workers} worker(s)");
        }
    }

    #[test]
    fn unrolled_csr_body_is_ulp_close_to_scalar() {
        let coo = random_coo::<f64>(300, 280, 6000, 23);
        let csr = coo_to_csr(&coo);
        let x: Vec<f64> = (0..280).map(|i| (i as f64 * 0.37).cos() * 2.0 - 0.3).collect();
        let mut y_ref = vec![0.0; 300];
        serial::spmv_csr(&csr, &x, &mut y_ref);
        let pool = ThreadPool::new(2);
        let rows = weighted_partition(&csr.row_nnz_counts(), 2);
        let unrolled = vec![KernelVariant::Unrolled; rows.len()];
        let mut y = vec![f64::NAN; 300];
        spmv_csr_ranges(&csr, &x, &mut y, Some(&pool), &rows, &unrolled);
        let offs = csr.row_offsets();
        for r in 0..300 {
            let row_abs: f64 =
                (offs[r]..offs[r + 1]).map(|i| (csr.values()[i] * x[csr.col_indices()[i]]).abs()).sum();
            let bound = ((offs[r + 1] - offs[r]) as f64 + 8.0) * f64::EPSILON * row_abs.max(1e-300);
            assert!((y[r] - y_ref[r]).abs() <= bound, "row {r}: |{} - {}| > {bound}", y[r], y_ref[r]);
        }
    }
}
