//! Dense vector kernels for iterative solvers.
//!
//! SpMV never lives alone: the CG/GMRES-style solvers the paper motivates
//! (§I, §VII-E) interleave it with AXPYs, dot products and norms. These are
//! provided on both backends so a whole solver iteration can run threaded.
//! Threaded reductions fold partials in worker order, keeping results
//! deterministic run-to-run for a fixed thread count.

use crate::scalar::Scalar;
use morpheus_parallel::{Schedule, ThreadPool};

/// `y += alpha * x` (serial).
pub fn axpy<V: Scalar>(alpha: V, x: &[V], y: &mut [V]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = x + beta * y` (serial) — the CG search-direction update.
pub fn xpby<V: Scalar>(x: &[V], beta: V, y: &mut [V]) {
    assert_eq!(x.len(), y.len(), "xpby length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// Dot product (serial).
pub fn dot<V: Scalar>(x: &[V], y: &[V]) -> V {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let mut acc = V::ZERO;
    for (&a, &b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}

/// Euclidean norm (serial).
pub fn norm2<V: Scalar>(x: &[V]) -> V {
    dot(x, x).sqrt()
}

/// `x *= alpha` (serial).
pub fn scale<V: Scalar>(alpha: V, x: &mut [V]) {
    for xi in x.iter_mut() {
        *xi = *xi * alpha;
    }
}

/// `y += alpha * x` (threaded).
pub fn axpy_threaded<V: Scalar>(alpha: V, x: &[V], y: &mut [V], pool: &ThreadPool) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    let ptr = SharedVec { ptr: y.as_mut_ptr(), len: y.len() };
    pool.parallel_for_ranges(0..x.len(), Schedule::default(), |r| {
        // SAFETY: static ranges are disjoint.
        let ys = unsafe { ptr.slice(r.clone()) };
        for (yi, &xi) in ys.iter_mut().zip(&x[r]) {
            *yi += alpha * xi;
        }
    });
}

/// `y = x + beta * y` (threaded).
pub fn xpby_threaded<V: Scalar>(x: &[V], beta: V, y: &mut [V], pool: &ThreadPool) {
    assert_eq!(x.len(), y.len(), "xpby length mismatch");
    let ptr = SharedVec { ptr: y.as_mut_ptr(), len: y.len() };
    pool.parallel_for_ranges(0..x.len(), Schedule::default(), |r| {
        // SAFETY: static ranges are disjoint.
        let ys = unsafe { ptr.slice(r.clone()) };
        for (yi, &xi) in ys.iter_mut().zip(&x[r]) {
            *yi = xi + beta * *yi;
        }
    });
}

/// Dot product (threaded); deterministic for a fixed thread count.
pub fn dot_threaded<V: Scalar>(x: &[V], y: &[V], pool: &ThreadPool) -> V {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    pool.parallel_reduce(
        0..x.len(),
        Schedule::default(),
        V::ZERO,
        |r| {
            let mut acc = V::ZERO;
            for i in r {
                acc += x[i] * y[i];
            }
            acc
        },
        |a, b| a + b,
    )
}

/// Euclidean norm (threaded).
pub fn norm2_threaded<V: Scalar>(x: &[V], pool: &ThreadPool) -> V {
    dot_threaded(x, x, pool).sqrt()
}

struct SharedVec<V> {
    ptr: *mut V,
    len: usize,
}

unsafe impl<V: Send> Send for SharedVec<V> {}
unsafe impl<V: Send> Sync for SharedVec<V> {}

impl<V> SharedVec<V> {
    /// # Safety
    /// Ranges passed by concurrent callers must be disjoint and in-bounds.
    #[allow(clippy::mut_from_ref)] // aliasing is excluded by the disjoint-ranges contract above
    unsafe fn slice(&self, r: std::ops::Range<usize>) -> &mut [V] {
        debug_assert!(r.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(r.start), r.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ThreadPool {
        ThreadPool::new(3)
    }

    #[test]
    fn axpy_basic() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    fn xpby_basic() {
        let x = vec![1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, vec![6.0, 12.0]);
    }

    #[test]
    fn dot_and_norm() {
        let x = vec![3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
    }

    #[test]
    fn scale_basic() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn threaded_matches_serial() {
        let p = pool();
        let n = 10_001usize;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut ys = vec![1.0; n];
        let mut yt = ys.clone();
        axpy(0.5, &x, &mut ys);
        axpy_threaded(0.5, &x, &mut yt, &p);
        assert_eq!(ys, yt);

        let mut ys2 = x.clone();
        let mut yt2 = x.clone();
        xpby(&x, -0.25, &mut ys2);
        xpby_threaded(&x, -0.25, &mut yt2, &p);
        assert_eq!(ys2, yt2);

        let ds = dot(&x, &ys);
        let dt = dot_threaded(&x, &yt, &p);
        assert!((ds - dt).abs() < 1e-9 * (1.0 + ds.abs()));
    }

    #[test]
    fn threaded_reduction_is_deterministic() {
        let p = pool();
        let x: Vec<f64> = (0..5000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let a = dot_threaded(&x, &x, &p);
        let b = dot_threaded(&x, &x, &p);
        assert_eq!(a, b, "same pool, same result bit-for-bit");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        axpy(1.0, &[1.0, 2.0], &mut [0.0]);
    }

    #[test]
    fn empty_vectors() {
        let p = pool();
        let x: Vec<f64> = vec![];
        let mut y: Vec<f64> = vec![];
        axpy(1.0, &x, &mut y);
        assert_eq!(dot_threaded(&x, &x, &p), 0.0);
    }
}
