//! Diagonal (DIA) format.

use crate::error::MorpheusError;
use crate::format::FormatId;
use crate::scalar::Scalar;
use crate::Result;

/// Diagonal-format sparse matrix (§II-B).
///
/// Non-zeros are stored in a dense two-dimensional array where each column
/// holds one diagonal of the matrix, plus an integer `offsets` array
/// recording which diagonal each column represents (`offset = col - row`).
/// Designed for "regular sparsity patterns ... a good fit for vector-like
/// processors".
///
/// Layout: diagonal-major, `values[d * nrows + i] == A[i, i + offsets[d]]`,
/// padded with zeros where `i + offsets[d]` falls outside `0..ncols`.
/// Offsets are strictly increasing.
#[derive(Debug, Clone, PartialEq)]
pub struct DiaMatrix<V> {
    nrows: usize,
    ncols: usize,
    offsets: Vec<isize>,
    values: Vec<V>,
    /// Structural non-zeros (entries that came from the source matrix, as
    /// opposed to padding).
    nnz: usize,
}

impl<V: Scalar> DiaMatrix<V> {
    /// An empty matrix of the given shape (zero diagonals).
    pub fn new(nrows: usize, ncols: usize) -> Self {
        DiaMatrix { nrows, ncols, offsets: Vec::new(), values: Vec::new(), nnz: 0 }
    }

    /// Builds from raw parts, validating the layout.
    ///
    /// `values.len()` must equal `offsets.len() * nrows`, offsets must be
    /// strictly increasing and inside `-(nrows-1)..=(ncols-1)`, and `nnz`
    /// must not exceed the number of in-bounds slots.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        offsets: Vec<isize>,
        values: Vec<V>,
        nnz: usize,
    ) -> Result<Self> {
        if values.len() != offsets.len() * nrows {
            return Err(MorpheusError::InvalidStructure(format!(
                "DIA values length {} != ndiags {} * nrows {}",
                values.len(),
                offsets.len(),
                nrows
            )));
        }
        for (i, &off) in offsets.iter().enumerate() {
            if nrows > 0 && ncols > 0 {
                let lo = -(nrows as isize - 1);
                let hi = ncols as isize - 1;
                if off < lo || off > hi {
                    return Err(MorpheusError::InvalidStructure(format!(
                        "DIA offset {off} outside valid range {lo}..={hi}"
                    )));
                }
            }
            if i > 0 && offsets[i - 1] >= off {
                return Err(MorpheusError::InvalidStructure(
                    "DIA offsets must be strictly increasing".into(),
                ));
            }
        }
        if nnz > values.len() {
            return Err(MorpheusError::InvalidStructure(format!(
                "DIA nnz {} exceeds total slots {}",
                nnz,
                values.len()
            )));
        }
        Ok(DiaMatrix { nrows, ncols, offsets, values, nnz })
    }

    /// Builds from raw parts the caller guarantees are valid (conversion
    /// kernels produce them correct by construction). Debug builds run the
    /// full [`DiaMatrix::from_parts`] validation; release builds skip it.
    pub(crate) fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        offsets: Vec<isize>,
        values: Vec<V>,
        nnz: usize,
    ) -> Self {
        #[cfg(debug_assertions)]
        {
            Self::from_parts(nrows, ncols, offsets, values, nnz)
                .expect("conversion kernel produced invalid DIA")
        }
        #[cfg(not(debug_assertions))]
        {
            DiaMatrix { nrows, ncols, offsets, values, nnz }
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Structural non-zeros (excludes padding).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Format identifier ([`FormatId::Dia`]).
    #[inline]
    pub fn format_id(&self) -> FormatId {
        FormatId::Dia
    }

    /// Number of stored diagonals.
    #[inline]
    pub fn ndiags(&self) -> usize {
        self.offsets.len()
    }

    /// Diagonal offsets (`col - row`), strictly increasing.
    #[inline]
    pub fn offsets(&self) -> &[isize] {
        &self.offsets
    }

    /// Dense diagonal storage, `ndiags * nrows`, diagonal-major.
    #[inline]
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// The slice of storage holding diagonal `d`.
    #[inline]
    pub fn diagonal(&self, d: usize) -> &[V] {
        &self.values[d * self.nrows..(d + 1) * self.nrows]
    }

    /// Total allocated slots including padding (`ndiags * nrows`).
    #[inline]
    pub fn padded_len(&self) -> usize {
        self.values.len()
    }

    /// The rows for which diagonal `d` has an in-bounds column, i.e. the
    /// iteration range of the SpMV inner loop for that diagonal.
    #[inline]
    pub fn diag_row_range(&self, d: usize) -> std::ops::Range<usize> {
        let off = self.offsets[d];
        let start = if off < 0 { (-off) as usize } else { 0 };
        let end = if off >= 0 {
            self.nrows.min(self.ncols.saturating_sub(off as usize))
        } else {
            self.nrows.min((-off) as usize + self.ncols)
        };
        start..end.max(start)
    }

    /// Bytes of heap storage the format occupies.
    pub fn storage_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<isize>() + self.values.len() * std::mem::size_of::<V>()
    }

    /// Consumes the matrix, returning `(nrows, ncols, offsets, values, nnz)`.
    pub fn into_parts(self) -> (usize, usize, Vec<isize>, Vec<V>, usize) {
        (self.nrows, self.ncols, self.offsets, self.values, self.nnz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiag3() -> DiaMatrix<f64> {
        // [2 -1  0]
        // [-1 2 -1]
        // [0 -1  2]
        let offsets = vec![-1isize, 0, 1];
        #[rustfmt::skip]
        let values = vec![
            0.0, -1.0, -1.0, // off -1: rows 1..3
            2.0, 2.0, 2.0,   // off 0
            -1.0, -1.0, 0.0, // off +1: rows 0..2
        ];
        DiaMatrix::from_parts(3, 3, offsets, values, 7).unwrap()
    }

    #[test]
    fn accessors() {
        let m = tridiag3();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ndiags(), 3);
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.padded_len(), 9);
        assert_eq!(m.diagonal(1), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn diag_row_ranges() {
        let m = tridiag3();
        assert_eq!(m.diag_row_range(0), 1..3); // off -1
        assert_eq!(m.diag_row_range(1), 0..3); // off 0
        assert_eq!(m.diag_row_range(2), 0..2); // off +1
    }

    #[test]
    fn diag_row_range_rectangular() {
        // 4x2 matrix, offset 1: A[i, i+1] valid for i = 0 only.
        let m = DiaMatrix::<f64>::from_parts(4, 2, vec![1], vec![5.0, 0.0, 0.0, 0.0], 1).unwrap();
        assert_eq!(m.diag_row_range(0), 0..1);
        // 2x4, offset -1: A[i, i-1] valid for i = 1 only (i in 1..2).
        let m = DiaMatrix::<f64>::from_parts(2, 4, vec![-1], vec![0.0, 5.0], 1).unwrap();
        assert_eq!(m.diag_row_range(0), 1..2);
    }

    #[test]
    fn rejects_bad_parts() {
        // Wrong values length.
        assert!(DiaMatrix::<f64>::from_parts(3, 3, vec![0], vec![1.0], 1).is_err());
        // Offsets not increasing.
        assert!(DiaMatrix::<f64>::from_parts(2, 2, vec![0, 0], vec![1.0; 4], 2).is_err());
        // Offset out of range.
        assert!(DiaMatrix::<f64>::from_parts(2, 2, vec![5], vec![1.0; 2], 1).is_err());
        // nnz too large.
        assert!(DiaMatrix::<f64>::from_parts(2, 2, vec![0], vec![1.0; 2], 3).is_err());
    }

    #[test]
    fn empty() {
        let m = DiaMatrix::<f64>::new(3, 3);
        assert_eq!(m.ndiags(), 0);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.padded_len(), 0);
    }
}
