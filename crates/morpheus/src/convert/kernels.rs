//! Conversion kernels: direct, parallel, zero-intermediate.
//!
//! Every kernel here writes the target format's arrays straight from the
//! source format's arrays — no intermediate COO triplet buffers, no sorting.
//! Row-partitionable passes (row histograms, slab fills, diagonal scatter,
//! row-major export) run on the process [`ThreadPool`] with nnz-weighted,
//! row-disjoint partitions once a matrix is large enough to amortise
//! fork/join overhead; below [`PARALLEL_CONVERT_THRESHOLD`] they run
//! serially on the calling thread with identical results.
//!
//! Planning steps (ELL width, DIA offset discovery, HYB split width, HDC
//! diagonal selection) read a caller-supplied [`Analysis`] when available
//! and only rescan the source when none is supplied; the rescans are
//! recorded on the [`crate::analysis::passes`] traversal counter.

use crate::analysis::{passes, Analysis, PARALLEL_ANALYSIS_THRESHOLD};
use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dia::DiaMatrix;
use crate::ell::{EllMatrix, ELL_PAD};
use crate::error::MorpheusError;
use crate::format::FormatId;
use crate::hdc::{true_diag_threshold, HdcMatrix};
use crate::hyb::{optimal_hyb_width_u32, HybMatrix, HybSplit};
use crate::rowmajor::RowMajor;
use crate::scalar::Scalar;
use crate::Result;
use std::borrow::Cow;

use super::ConvertOptions;
use morpheus_parallel::{global_pool, row_aligned_partition, weighted_partition, SharedSlice, ThreadPool};

/// Conversions touching at least this many structural non-zeros run their
/// row-partitionable passes on the process pool.
pub const PARALLEL_CONVERT_THRESHOLD: usize = PARALLEL_ANALYSIS_THRESHOLD;

/// The pool to run a conversion of `nnz` entries on, if any.
fn pool_for(nnz: usize) -> Option<&'static ThreadPool> {
    if nnz >= PARALLEL_CONVERT_THRESHOLD {
        let pool = global_pool();
        (pool.num_threads() > 1).then_some(pool)
    } else {
        None
    }
}

/// Runs `body` once per part of `parts`, on the pool when given, serially
/// otherwise. Parts must describe row-disjoint work.
fn run_parts(
    pool: Option<&ThreadPool>,
    parts: &[std::ops::Range<usize>],
    body: impl Fn(std::ops::Range<usize>) + Sync,
) {
    match pool {
        Some(pool) => pool.parallel_over_parts(parts, |_p, r| body(r)),
        None => {
            for r in parts {
                body(r.clone());
            }
        }
    }
}

fn guard_padding(format: FormatId, padded: usize, nnz: usize, opts: &ConvertOptions) -> Result<()> {
    let limit = opts.padded_allowance(nnz);
    if padded > limit {
        Err(MorpheusError::ExcessivePadding { format, padded, nnz, limit })
    } else {
        Ok(())
    }
}

/// Exclusive prefix sum: returns a vector one longer than `counts` whose
/// last element is the total.
fn prefix_sum(counts: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0usize;
    out.push(0);
    for &c in counts {
        acc += c;
        out.push(acc);
    }
    out
}

// ---------------------------------------------------------------------------
// Planning scans (used only when no `Analysis` is supplied)
// ---------------------------------------------------------------------------

/// Row-occupancy histogram of a sorted COO matrix. Full index traversal.
fn coo_row_lengths<V: Scalar>(coo: &CooMatrix<V>) -> Vec<u32> {
    passes::record_traversal();
    let mut lens = vec![0u32; coo.nrows()];
    for &r in coo.row_indices() {
        lens[r] += 1;
    }
    lens
}

/// Row-occupancy histogram of a CSR matrix — O(nrows) metadata read, not a
/// traversal.
fn csr_row_lengths<V: Scalar>(csr: &CsrMatrix<V>) -> Vec<u32> {
    (0..csr.nrows()).map(|r| csr.row_nnz(r) as u32).collect()
}

/// Diagonal populations (`diag[col + nrows - 1 - row]`) from an entry walk.
fn diag_population(nrows: usize, ncols: usize, entries: impl Iterator<Item = (usize, usize)>) -> Vec<u32> {
    passes::record_traversal();
    let mut pop = vec![0u32; nrows + ncols - 1];
    for (r, c) in entries {
        pop[c + nrows - 1 - r] += 1;
    }
    pop
}

fn coo_entry_indices<V: Scalar>(coo: &CooMatrix<V>) -> impl Iterator<Item = (usize, usize)> + '_ {
    coo.row_indices().iter().copied().zip(coo.col_indices().iter().copied())
}

fn csr_entry_indices<V: Scalar>(csr: &CsrMatrix<V>) -> impl Iterator<Item = (usize, usize)> + '_ {
    (0..csr.nrows()).flat_map(move |r| csr.row_cols(r).iter().map(move |&c| (r, c)))
}

/// Populated-diagonal offsets, ascending: from the plan when available,
/// otherwise from an entry scan. Both branches reduce through
/// [`crate::analysis::dia_offsets_from_pop`], so planned and unplanned
/// layouts are identical by construction.
fn plan_dia_offsets(
    plan: Option<&Analysis>,
    nrows: usize,
    ncols: usize,
    entries: impl Iterator<Item = (usize, usize)>,
) -> Vec<isize> {
    if let Some(a) = plan {
        return a.dia_offsets();
    }
    crate::analysis::dia_offsets_from_pop(&diag_population(nrows, ncols, entries), nrows)
}

/// True-diagonal slots (ascending) and the number of entries they hold;
/// same shared-reduction contract as [`plan_dia_offsets`].
fn plan_true_diag_slots(
    plan: Option<&Analysis>,
    nrows: usize,
    ncols: usize,
    threshold: usize,
    entries: impl Iterator<Item = (usize, usize)>,
) -> (Vec<usize>, usize) {
    if let Some(a) = plan {
        return a.true_diag_slots(threshold);
    }
    crate::analysis::true_diag_slots_from_pop(&diag_population(nrows, ncols, entries), threshold)
}

/// Maps diagonal slot -> dense diagonal index (`usize::MAX` = not stored).
fn slot_to_diag_map(slots_len: usize, stored: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut map = vec![usize::MAX; slots_len];
    for (d, slot) in stored.enumerate() {
        map[slot] = d;
    }
    map
}

// ---------------------------------------------------------------------------
// COO <-> CSR (direct both ways; by-value variants reuse allocations)
// ---------------------------------------------------------------------------

/// COO → CSR. O(nnz); relies on COO's sorted invariant.
pub fn coo_to_csr<V: Scalar>(coo: &CooMatrix<V>) -> CsrMatrix<V> {
    let nrows = coo.nrows();
    let mut offsets = vec![0usize; nrows + 1];
    for &r in coo.row_indices() {
        offsets[r + 1] += 1;
    }
    for i in 0..nrows {
        offsets[i + 1] += offsets[i];
    }
    CsrMatrix::from_parts_unchecked(
        nrows,
        coo.ncols(),
        offsets,
        coo.col_indices().to_vec(),
        coo.values().to_vec(),
    )
}

/// CSR → COO. O(nnz).
pub fn csr_to_coo<V: Scalar>(csr: &CsrMatrix<V>) -> CooMatrix<V> {
    let mut rows = Vec::with_capacity(csr.nnz());
    for r in 0..csr.nrows() {
        rows.extend(std::iter::repeat_n(r, csr.row_nnz(r)));
    }
    CooMatrix::from_sorted_parts_unchecked(
        csr.nrows(),
        csr.ncols(),
        rows,
        csr.col_indices().to_vec(),
        csr.values().to_vec(),
    )
}

/// COO → CSR consuming the source: the column-index and value allocations
/// move into the result untouched (both formats store them in the same
/// order); only the row representation is rebuilt.
pub fn coo_into_csr<V: Scalar>(coo: CooMatrix<V>) -> CsrMatrix<V> {
    let (nrows, ncols, rows, cols, vals) = coo.into_parts();
    let mut offsets = vec![0usize; nrows + 1];
    for &r in &rows {
        offsets[r + 1] += 1;
    }
    for i in 0..nrows {
        offsets[i + 1] += offsets[i];
    }
    drop(rows);
    CsrMatrix::from_parts_unchecked(nrows, ncols, offsets, cols, vals)
}

/// CSR → COO consuming the source: column indices and values are moved, the
/// offsets array is expanded into explicit row indices.
pub fn csr_into_coo<V: Scalar>(csr: CsrMatrix<V>) -> CooMatrix<V> {
    let (nrows, ncols, offsets, cols, vals) = csr.into_parts();
    let mut rows = Vec::with_capacity(cols.len());
    for r in 0..nrows {
        rows.extend(std::iter::repeat_n(r, offsets[r + 1] - offsets[r]));
    }
    CooMatrix::from_sorted_parts_unchecked(nrows, ncols, rows, cols, vals)
}

// ---------------------------------------------------------------------------
// {COO, CSR} -> ELL
// ---------------------------------------------------------------------------

/// COO → ELL. Fails if padding would exceed the configured fill limit.
pub fn coo_to_ell<V: Scalar>(coo: &CooMatrix<V>, opts: &ConvertOptions) -> Result<EllMatrix<V>> {
    coo_to_ell_planned(coo, opts, None)
}

pub(crate) fn coo_to_ell_planned<V: Scalar>(
    coo: &CooMatrix<V>,
    opts: &ConvertOptions,
    plan: Option<&Analysis>,
) -> Result<EllMatrix<V>> {
    let (nrows, ncols, nnz) = (coo.nrows(), coo.ncols(), coo.nnz());
    if nrows == 0 || nnz == 0 {
        return Ok(EllMatrix::new(nrows, ncols));
    }
    let width = match plan {
        Some(a) => a.ell_width(),
        None => {
            // Longest run in the sorted row array is the widest row.
            passes::record_traversal();
            let rows = coo.row_indices();
            let mut max = 0usize;
            let mut run = 0usize;
            for i in 0..nnz {
                run = if i > 0 && rows[i] == rows[i - 1] { run + 1 } else { 1 };
                max = max.max(run);
            }
            max
        }
    };
    guard_padding(FormatId::Ell, width * nrows, nnz, opts)?;
    let mut cols = vec![ELL_PAD; width * nrows];
    let mut vals = vec![V::ZERO; width * nrows];
    {
        let (src_rows, src_cols, src_vals) = (coo.row_indices(), coo.col_indices(), coo.values());
        let pool = pool_for(nnz);
        let parts = row_aligned_partition(src_rows, pool.map_or(1, ThreadPool::num_threads));
        let (out_cols, out_vals) = (SharedSlice::new(&mut cols), SharedSlice::new(&mut vals));
        run_parts(pool, &parts, |entries| {
            let mut prev = usize::MAX;
            let mut k = 0usize;
            for i in entries {
                let r = src_rows[i];
                k = if r == prev { k + 1 } else { 0 };
                prev = r;
                // SAFETY: parts are row-disjoint; slot (k, r) is written once.
                unsafe {
                    out_cols.set(k * nrows + r, src_cols[i]);
                    out_vals.set(k * nrows + r, src_vals[i]);
                }
            }
        });
    }
    Ok(EllMatrix::from_parts_unchecked(nrows, ncols, width, cols, vals, nnz))
}

/// CSR → ELL, writing the slabs straight from the CSR rows.
pub fn csr_to_ell<V: Scalar>(csr: &CsrMatrix<V>, opts: &ConvertOptions) -> Result<EllMatrix<V>> {
    csr_to_ell_planned(csr, opts, None)
}

pub(crate) fn csr_to_ell_planned<V: Scalar>(
    csr: &CsrMatrix<V>,
    opts: &ConvertOptions,
    plan: Option<&Analysis>,
) -> Result<EllMatrix<V>> {
    let (nrows, ncols, nnz) = (csr.nrows(), csr.ncols(), csr.nnz());
    if nrows == 0 || nnz == 0 {
        return Ok(EllMatrix::new(nrows, ncols));
    }
    let width = match plan {
        Some(a) => a.ell_width(),
        // Offsets are metadata: O(nrows), no entry traversal.
        None => (0..nrows).map(|r| csr.row_nnz(r)).max().unwrap_or(0),
    };
    guard_padding(FormatId::Ell, width * nrows, nnz, opts)?;
    let mut cols = vec![ELL_PAD; width * nrows];
    let mut vals = vec![V::ZERO; width * nrows];
    {
        let pool = pool_for(nnz);
        let parts = csr_row_parts(csr, pool);
        let (out_cols, out_vals) = (SharedSlice::new(&mut cols), SharedSlice::new(&mut vals));
        run_parts(pool, &parts, |rows| {
            for r in rows {
                for (k, (&c, &v)) in csr.row_cols(r).iter().zip(csr.row_vals(r)).enumerate() {
                    // SAFETY: row-disjoint parts; slot (k, r) written once.
                    unsafe {
                        out_cols.set(k * nrows + r, c);
                        out_vals.set(k * nrows + r, v);
                    }
                }
            }
        });
    }
    Ok(EllMatrix::from_parts_unchecked(nrows, ncols, width, cols, vals, nnz))
}

/// nnz-weighted row partition of a CSR matrix for the available pool.
fn csr_row_parts<V: Scalar>(csr: &CsrMatrix<V>, pool: Option<&ThreadPool>) -> Vec<std::ops::Range<usize>> {
    match pool {
        Some(pool) => weighted_partition(&csr.row_nnz_counts(), pool.num_threads()),
        None => std::iter::once(0..csr.nrows()).collect(),
    }
}

// ---------------------------------------------------------------------------
// {COO, CSR} -> DIA
// ---------------------------------------------------------------------------

/// COO → DIA. Fails if padding would exceed the configured fill limit.
pub fn coo_to_dia<V: Scalar>(coo: &CooMatrix<V>, opts: &ConvertOptions) -> Result<DiaMatrix<V>> {
    coo_to_dia_planned(coo, opts, None)
}

pub(crate) fn coo_to_dia_planned<V: Scalar>(
    coo: &CooMatrix<V>,
    opts: &ConvertOptions,
    plan: Option<&Analysis>,
) -> Result<DiaMatrix<V>> {
    let (nrows, ncols, nnz) = (coo.nrows(), coo.ncols(), coo.nnz());
    if nrows == 0 || ncols == 0 || nnz == 0 {
        return Ok(DiaMatrix::new(nrows, ncols));
    }
    let offsets = plan_dia_offsets(plan, nrows, ncols, coo_entry_indices(coo));
    guard_padding(FormatId::Dia, offsets.len() * nrows, nnz, opts)?;
    let base = nrows as isize - 1;
    let slot_to_diag = slot_to_diag_map(nrows + ncols - 1, offsets.iter().map(|&off| (off + base) as usize));
    let mut values = vec![V::ZERO; offsets.len() * nrows];
    {
        let (src_rows, src_cols, src_vals) = (coo.row_indices(), coo.col_indices(), coo.values());
        let pool = pool_for(nnz);
        let parts = row_aligned_partition(src_rows, pool.map_or(1, ThreadPool::num_threads));
        let out = SharedSlice::new(&mut values);
        run_parts(pool, &parts, |entries| {
            for i in entries {
                let (r, c) = (src_rows[i], src_cols[i]);
                let d = slot_to_diag[c + nrows - 1 - r];
                assert_ne!(d, usize::MAX, "DIA plan omits a populated diagonal: stale analysis?");
                // SAFETY: rows are disjoint across parts and each (r, c) is
                // unique, so each diagonal slot has one writer.
                unsafe { out.set(d * nrows + r, src_vals[i]) };
            }
        });
    }
    Ok(DiaMatrix::from_parts_unchecked(nrows, ncols, offsets, values, nnz))
}

/// CSR → DIA, scattering rows straight into the diagonal slabs.
pub fn csr_to_dia<V: Scalar>(csr: &CsrMatrix<V>, opts: &ConvertOptions) -> Result<DiaMatrix<V>> {
    csr_to_dia_planned(csr, opts, None)
}

pub(crate) fn csr_to_dia_planned<V: Scalar>(
    csr: &CsrMatrix<V>,
    opts: &ConvertOptions,
    plan: Option<&Analysis>,
) -> Result<DiaMatrix<V>> {
    let (nrows, ncols, nnz) = (csr.nrows(), csr.ncols(), csr.nnz());
    if nrows == 0 || ncols == 0 || nnz == 0 {
        return Ok(DiaMatrix::new(nrows, ncols));
    }
    let offsets = plan_dia_offsets(plan, nrows, ncols, csr_entry_indices(csr));
    guard_padding(FormatId::Dia, offsets.len() * nrows, nnz, opts)?;
    let base = nrows as isize - 1;
    let slot_to_diag = slot_to_diag_map(nrows + ncols - 1, offsets.iter().map(|&off| (off + base) as usize));
    let mut values = vec![V::ZERO; offsets.len() * nrows];
    {
        let pool = pool_for(nnz);
        let parts = csr_row_parts(csr, pool);
        let out = SharedSlice::new(&mut values);
        run_parts(pool, &parts, |rows| {
            for r in rows {
                for (&c, &v) in csr.row_cols(r).iter().zip(csr.row_vals(r)) {
                    let d = slot_to_diag[c + nrows - 1 - r];
                    assert_ne!(d, usize::MAX, "DIA plan omits a populated diagonal: stale analysis?");
                    // SAFETY: row-disjoint parts, unique coordinates.
                    unsafe { out.set(d * nrows + r, v) };
                }
            }
        });
    }
    Ok(DiaMatrix::from_parts_unchecked(nrows, ncols, offsets, values, nnz))
}

// ---------------------------------------------------------------------------
// {COO, CSR} -> HYB
// ---------------------------------------------------------------------------

fn plan_hyb_width<V: Scalar>(
    opts: &ConvertOptions,
    row_lens: &[u32],
    nrows: usize,
    nnz: usize,
) -> Result<usize> {
    match opts.hyb_split {
        HybSplit::Auto => Ok(optimal_hyb_width_u32(row_lens, std::mem::size_of::<V>())),
        HybSplit::Width(w) => {
            guard_padding(FormatId::Hyb, w * nrows, nnz, opts)?;
            Ok(w)
        }
    }
}

/// COO → HYB under the given split policy. The ELL portion never exceeds the
/// fill limit by construction when the policy is [`HybSplit::Auto`]; a fixed
/// width is still guarded.
pub fn coo_to_hyb<V: Scalar>(coo: &CooMatrix<V>, opts: &ConvertOptions) -> Result<HybMatrix<V>> {
    coo_to_hyb_planned(coo, opts, None)
}

pub(crate) fn coo_to_hyb_planned<V: Scalar>(
    coo: &CooMatrix<V>,
    opts: &ConvertOptions,
    plan: Option<&Analysis>,
) -> Result<HybMatrix<V>> {
    let (nrows, ncols, nnz) = (coo.nrows(), coo.ncols(), coo.nnz());
    let row_lens: Cow<'_, [u32]> = match plan {
        Some(a) => Cow::Borrowed(&a.row_hist),
        None => Cow::Owned(coo_row_lengths(coo)),
    };
    let k = plan_hyb_width::<V>(opts, &row_lens, nrows, nnz)?;
    let spill_counts: Vec<usize> = row_lens.iter().map(|&l| (l as usize).saturating_sub(k)).collect();
    let spill_starts = prefix_sum(&spill_counts);
    let spill_total = *spill_starts.last().unwrap_or(&0);

    let mut ell_cols = vec![ELL_PAD; k * nrows];
    let mut ell_vals = vec![V::ZERO; k * nrows];
    let mut sp_rows = vec![0usize; spill_total];
    let mut sp_cols = vec![0usize; spill_total];
    let mut sp_vals = vec![V::ZERO; spill_total];
    {
        let (src_rows, src_cols, src_vals) = (coo.row_indices(), coo.col_indices(), coo.values());
        let pool = pool_for(nnz);
        let parts = row_aligned_partition(src_rows, pool.map_or(1, ThreadPool::num_threads));
        let oc = SharedSlice::new(&mut ell_cols);
        let ov = SharedSlice::new(&mut ell_vals);
        let (or2, oc2, ov2) =
            (SharedSlice::new(&mut sp_rows), SharedSlice::new(&mut sp_cols), SharedSlice::new(&mut sp_vals));
        run_parts(pool, &parts, |entries| {
            let mut prev = usize::MAX;
            let mut pos = 0usize;
            for i in entries {
                let r = src_rows[i];
                pos = if r == prev { pos + 1 } else { 0 };
                prev = r;
                // SAFETY: row-disjoint parts; every target slot is derived
                // from (row, position-in-row), hence written exactly once —
                // the spill-segment assert keeps a stale plan's row
                // histogram from pushing writes into a neighbouring row's
                // (and thus possibly another worker's) segment.
                unsafe {
                    if pos < k {
                        oc.set(pos * nrows + r, src_cols[i]);
                        ov.set(pos * nrows + r, src_vals[i]);
                    } else {
                        let s = spill_starts[r] + (pos - k);
                        assert!(s < spill_starts[r + 1], "HYB plan understates row {r}: stale analysis?");
                        or2.set(s, r);
                        oc2.set(s, src_cols[i]);
                        ov2.set(s, src_vals[i]);
                    }
                }
            }
        });
    }
    let ell_nnz = nnz - spill_total;
    let ell = EllMatrix::from_parts_unchecked(nrows, ncols, k, ell_cols, ell_vals, ell_nnz);
    let spill = CooMatrix::from_sorted_parts_unchecked(nrows, ncols, sp_rows, sp_cols, sp_vals);
    HybMatrix::from_parts(ell, spill)
}

/// CSR → HYB, splitting each row straight into the ELL slab and the COO
/// spill arrays.
pub fn csr_to_hyb<V: Scalar>(csr: &CsrMatrix<V>, opts: &ConvertOptions) -> Result<HybMatrix<V>> {
    csr_to_hyb_planned(csr, opts, None)
}

pub(crate) fn csr_to_hyb_planned<V: Scalar>(
    csr: &CsrMatrix<V>,
    opts: &ConvertOptions,
    plan: Option<&Analysis>,
) -> Result<HybMatrix<V>> {
    let (nrows, ncols, nnz) = (csr.nrows(), csr.ncols(), csr.nnz());
    let row_lens: Cow<'_, [u32]> = match plan {
        Some(a) => Cow::Borrowed(&a.row_hist),
        None => Cow::Owned(csr_row_lengths(csr)),
    };
    let k = plan_hyb_width::<V>(opts, &row_lens, nrows, nnz)?;
    let spill_counts: Vec<usize> = row_lens.iter().map(|&l| (l as usize).saturating_sub(k)).collect();
    let spill_starts = prefix_sum(&spill_counts);
    let spill_total = *spill_starts.last().unwrap_or(&0);

    let mut ell_cols = vec![ELL_PAD; k * nrows];
    let mut ell_vals = vec![V::ZERO; k * nrows];
    let mut sp_rows = vec![0usize; spill_total];
    let mut sp_cols = vec![0usize; spill_total];
    let mut sp_vals = vec![V::ZERO; spill_total];
    {
        let pool = pool_for(nnz);
        let parts = csr_row_parts(csr, pool);
        let oc = SharedSlice::new(&mut ell_cols);
        let ov = SharedSlice::new(&mut ell_vals);
        let (or2, oc2, ov2) =
            (SharedSlice::new(&mut sp_rows), SharedSlice::new(&mut sp_cols), SharedSlice::new(&mut sp_vals));
        run_parts(pool, &parts, |rows| {
            for r in rows {
                for (pos, (&c, &v)) in csr.row_cols(r).iter().zip(csr.row_vals(r)).enumerate() {
                    // SAFETY: row-disjoint parts; slots keyed by (row, pos);
                    // the spill-segment assert rejects a stale plan before
                    // it can push writes into another row's segment.
                    unsafe {
                        if pos < k {
                            oc.set(pos * nrows + r, c);
                            ov.set(pos * nrows + r, v);
                        } else {
                            let s = spill_starts[r] + (pos - k);
                            assert!(s < spill_starts[r + 1], "HYB plan understates row {r}: stale analysis?");
                            or2.set(s, r);
                            oc2.set(s, c);
                            ov2.set(s, v);
                        }
                    }
                }
            }
        });
    }
    let ell_nnz = nnz - spill_total;
    let ell = EllMatrix::from_parts_unchecked(nrows, ncols, k, ell_cols, ell_vals, ell_nnz);
    let spill = CooMatrix::from_sorted_parts_unchecked(nrows, ncols, sp_rows, sp_cols, sp_vals);
    HybMatrix::from_parts(ell, spill)
}

// ---------------------------------------------------------------------------
// {COO, CSR} -> HDC
// ---------------------------------------------------------------------------

/// COO → HDC: true diagonals (population ≥ `alpha * min(M, N)`) go to DIA,
/// the remainder to CSR.
pub fn coo_to_hdc<V: Scalar>(coo: &CooMatrix<V>, opts: &ConvertOptions) -> Result<HdcMatrix<V>> {
    coo_to_hdc_planned(coo, opts, None)
}

pub(crate) fn coo_to_hdc_planned<V: Scalar>(
    coo: &CooMatrix<V>,
    opts: &ConvertOptions,
    plan: Option<&Analysis>,
) -> Result<HdcMatrix<V>> {
    let (nrows, ncols, nnz) = (coo.nrows(), coo.ncols(), coo.nnz());
    if nrows == 0 || ncols == 0 || nnz == 0 {
        return HdcMatrix::from_parts(
            DiaMatrix::new(nrows, ncols),
            CsrMatrix::new(nrows, ncols),
            opts.true_diag_alpha,
        );
    }
    let threshold = true_diag_threshold(nrows, ncols, opts.true_diag_alpha);
    let (true_slots, dia_nnz) = plan_true_diag_slots(plan, nrows, ncols, threshold, coo_entry_indices(coo));
    guard_padding(FormatId::Hdc, true_slots.len() * nrows, nnz, opts)?;
    let base = nrows as isize - 1;
    let slot_to_diag = slot_to_diag_map(nrows + ncols - 1, true_slots.iter().copied());
    let offsets: Vec<isize> = true_slots.iter().map(|&s| s as isize - base).collect();

    let (src_rows, src_cols, src_vals) = (coo.row_indices(), coo.col_indices(), coo.values());
    let pool = pool_for(nnz);
    let parts = row_aligned_partition(src_rows, pool.map_or(1, ThreadPool::num_threads));

    // Pass 1: per-row CSR-remainder counts (index-only).
    let mut rem_counts = vec![0usize; nrows];
    {
        let counts = SharedSlice::new(&mut rem_counts);
        run_parts(pool, &parts, |entries| {
            for i in entries {
                let (r, c) = (src_rows[i], src_cols[i]);
                if slot_to_diag[c + nrows - 1 - r] == usize::MAX {
                    // SAFETY: row-disjoint parts.
                    unsafe { counts.add(r, 1) };
                }
            }
        });
    }
    let csr_offsets = prefix_sum(&rem_counts);
    let csr_nnz = *csr_offsets.last().expect("prefix sum is non-empty");
    debug_assert_eq!(csr_nnz, nnz - dia_nnz);

    // Pass 2: scatter diagonals, pack the remainder.
    let mut dia_vals = vec![V::ZERO; offsets.len() * nrows];
    let mut csr_cols = vec![0usize; csr_nnz];
    let mut csr_vals = vec![V::ZERO; csr_nnz];
    {
        let od = SharedSlice::new(&mut dia_vals);
        let (oc, ov) = (SharedSlice::new(&mut csr_cols), SharedSlice::new(&mut csr_vals));
        run_parts(pool, &parts, |entries| {
            let mut prev = usize::MAX;
            let mut cursor = 0usize;
            for i in entries {
                let (r, c) = (src_rows[i], src_cols[i]);
                if r != prev {
                    cursor = csr_offsets[r];
                    prev = r;
                }
                let d = slot_to_diag[c + nrows - 1 - r];
                // SAFETY: row-disjoint parts; unique coordinates.
                unsafe {
                    if d != usize::MAX {
                        od.set(d * nrows + r, src_vals[i]);
                    } else {
                        oc.set(cursor, c);
                        ov.set(cursor, src_vals[i]);
                        cursor += 1;
                    }
                }
            }
        });
    }
    let dia = DiaMatrix::from_parts_unchecked(nrows, ncols, offsets, dia_vals, dia_nnz);
    let csr = CsrMatrix::from_parts_unchecked(nrows, ncols, csr_offsets, csr_cols, csr_vals);
    HdcMatrix::from_parts(dia, csr, opts.true_diag_alpha)
}

/// CSR → HDC, splitting rows straight into the DIA slab and the CSR
/// remainder.
pub fn csr_to_hdc<V: Scalar>(csr: &CsrMatrix<V>, opts: &ConvertOptions) -> Result<HdcMatrix<V>> {
    csr_to_hdc_planned(csr, opts, None)
}

pub(crate) fn csr_to_hdc_planned<V: Scalar>(
    csr: &CsrMatrix<V>,
    opts: &ConvertOptions,
    plan: Option<&Analysis>,
) -> Result<HdcMatrix<V>> {
    let (nrows, ncols, nnz) = (csr.nrows(), csr.ncols(), csr.nnz());
    if nrows == 0 || ncols == 0 || nnz == 0 {
        return HdcMatrix::from_parts(
            DiaMatrix::new(nrows, ncols),
            CsrMatrix::new(nrows, ncols),
            opts.true_diag_alpha,
        );
    }
    let threshold = true_diag_threshold(nrows, ncols, opts.true_diag_alpha);
    let (true_slots, dia_nnz) = plan_true_diag_slots(plan, nrows, ncols, threshold, csr_entry_indices(csr));
    guard_padding(FormatId::Hdc, true_slots.len() * nrows, nnz, opts)?;
    let base = nrows as isize - 1;
    let slot_to_diag = slot_to_diag_map(nrows + ncols - 1, true_slots.iter().copied());
    let offsets: Vec<isize> = true_slots.iter().map(|&s| s as isize - base).collect();

    let pool = pool_for(nnz);
    let parts = csr_row_parts(csr, pool);

    let mut rem_counts = vec![0usize; nrows];
    {
        let counts = SharedSlice::new(&mut rem_counts);
        run_parts(pool, &parts, |rows| {
            for r in rows {
                let n = csr
                    .row_cols(r)
                    .iter()
                    .filter(|&&c| slot_to_diag[c + nrows - 1 - r] == usize::MAX)
                    .count();
                // SAFETY: row-disjoint parts.
                unsafe { counts.set(r, n) };
            }
        });
    }
    let csr_offsets = prefix_sum(&rem_counts);
    let csr_nnz = *csr_offsets.last().expect("prefix sum is non-empty");
    debug_assert_eq!(csr_nnz, nnz - dia_nnz);

    let mut dia_vals = vec![V::ZERO; offsets.len() * nrows];
    let mut csr_cols = vec![0usize; csr_nnz];
    let mut csr_vals = vec![V::ZERO; csr_nnz];
    {
        let od = SharedSlice::new(&mut dia_vals);
        let (oc, ov) = (SharedSlice::new(&mut csr_cols), SharedSlice::new(&mut csr_vals));
        run_parts(pool, &parts, |rows| {
            for r in rows {
                let mut cursor = csr_offsets[r];
                for (&c, &v) in csr.row_cols(r).iter().zip(csr.row_vals(r)) {
                    let d = slot_to_diag[c + nrows - 1 - r];
                    // SAFETY: row-disjoint parts; unique coordinates.
                    unsafe {
                        if d != usize::MAX {
                            od.set(d * nrows + r, v);
                        } else {
                            oc.set(cursor, c);
                            ov.set(cursor, v);
                            cursor += 1;
                        }
                    }
                }
            }
        });
    }
    let dia = DiaMatrix::from_parts_unchecked(nrows, ncols, offsets, dia_vals, dia_nnz);
    let rem = CsrMatrix::from_parts_unchecked(nrows, ncols, csr_offsets, csr_cols, csr_vals);
    HdcMatrix::from_parts(dia, rem, opts.true_diag_alpha)
}

// ---------------------------------------------------------------------------
// {ELL, DIA, HYB, HDC} -> {CSR, COO}: row-major export
// ---------------------------------------------------------------------------

/// Exports any [`RowMajor`] source straight into CSR arrays: one parallel
/// per-row count pass, a prefix sum, one parallel fill pass. No triplet
/// buffers, no sort (sources emit rows in ascending column order).
pub(crate) fn export_to_csr<V: Scalar, S: RowMajor<V>>(
    src: &S,
    ncols: usize,
    nnz_hint: usize,
) -> CsrMatrix<V> {
    let (offsets, cols, vals, _rows) = export_row_major(src, nnz_hint, false);
    CsrMatrix::from_parts_unchecked(src.nrows(), ncols, offsets, cols, vals)
}

/// Exports any [`RowMajor`] source straight into sorted COO arrays.
pub(crate) fn export_to_coo<V: Scalar, S: RowMajor<V>>(
    src: &S,
    ncols: usize,
    nnz_hint: usize,
) -> CooMatrix<V> {
    let (_offsets, cols, vals, rows) = export_row_major(src, nnz_hint, true);
    CooMatrix::from_sorted_parts_unchecked(src.nrows(), ncols, rows, cols, vals)
}

fn export_row_major<V: Scalar, S: RowMajor<V>>(
    src: &S,
    nnz_hint: usize,
    want_rows: bool,
) -> (Vec<usize>, Vec<usize>, Vec<V>, Vec<usize>) {
    let nrows = src.nrows();
    let pool = pool_for(nnz_hint);
    let count_parts = match pool {
        Some(pool) => morpheus_parallel::static_partition(nrows, pool.num_threads()),
        None => {
            if nrows == 0 {
                Vec::new()
            } else {
                std::iter::once(0..nrows).collect()
            }
        }
    };
    let mut counts = vec![0usize; nrows];
    {
        let out = SharedSlice::new(&mut counts);
        run_parts(pool, &count_parts, |rows| {
            for r in rows {
                // SAFETY: row ranges are disjoint.
                unsafe { out.set(r, src.row_count(r)) };
            }
        });
    }
    let offsets = prefix_sum(&counts);
    let nnz = *offsets.last().unwrap_or(&0);

    let mut cols = vec![0usize; nnz];
    let mut vals = vec![V::ZERO; nnz];
    let mut rows_out = vec![0usize; if want_rows { nnz } else { 0 }];
    {
        let fill_parts = match pool {
            Some(pool) => weighted_partition(&counts, pool.num_threads()),
            None => count_parts,
        };
        let oc = SharedSlice::new(&mut cols);
        let ov = SharedSlice::new(&mut vals);
        let orr = SharedSlice::new(&mut rows_out);
        run_parts(pool, &fill_parts, |rows| {
            for r in rows {
                let mut cursor = offsets[r];
                src.emit_row(r, &mut |c, v| {
                    // SAFETY: row-disjoint parts; `cursor` walks this row's
                    // private output segment.
                    unsafe {
                        oc.set(cursor, c);
                        ov.set(cursor, v);
                        if want_rows {
                            orr.set(cursor, r);
                        }
                    }
                    cursor += 1;
                });
                debug_assert_eq!(cursor, offsets[r + 1], "row_count / emit_row disagreement in row {r}");
            }
        });
    }
    (offsets, cols, vals, rows_out)
}

/// ELL → CSR, reading the slabs row-major.
pub fn ell_to_csr<V: Scalar>(ell: &EllMatrix<V>) -> CsrMatrix<V> {
    export_to_csr(ell, ell.ncols(), ell.nnz())
}

/// DIA → CSR. Padding slots and explicit zeros are elided (they are
/// indistinguishable in DIA storage).
pub fn dia_to_csr<V: Scalar>(dia: &DiaMatrix<V>) -> CsrMatrix<V> {
    export_to_csr(dia, dia.ncols(), dia.nnz())
}

/// HYB → CSR, merging the two portions row by row.
pub fn hyb_to_csr<V: Scalar>(hyb: &HybMatrix<V>) -> CsrMatrix<V> {
    export_to_csr(hyb, hyb.ncols(), hyb.nnz())
}

/// HDC → CSR, merging the two portions row by row.
pub fn hdc_to_csr<V: Scalar>(hdc: &HdcMatrix<V>) -> CsrMatrix<V> {
    export_to_csr(hdc, hdc.ncols(), hdc.nnz())
}

/// ELL → COO. Padding slots are elided; explicit zeros survive (ELL tracks
/// padding via the sentinel, not the value).
pub fn ell_to_coo<V: Scalar>(ell: &EllMatrix<V>) -> CooMatrix<V> {
    export_to_coo(ell, ell.ncols(), ell.nnz())
}

/// DIA → COO. Padding slots and explicit zeros are elided (they are
/// indistinguishable in DIA storage).
pub fn dia_to_coo<V: Scalar>(dia: &DiaMatrix<V>) -> CooMatrix<V> {
    export_to_coo(dia, dia.ncols(), dia.nnz())
}

/// HYB → COO, merging the two portions.
pub fn hyb_to_coo<V: Scalar>(hyb: &HybMatrix<V>) -> CooMatrix<V> {
    export_to_coo(hyb, hyb.ncols(), hyb.nnz())
}

/// HDC → COO, merging the two portions. Explicit zeros stored in the DIA
/// portion are elided (same caveat as [`dia_to_coo`]).
pub fn hdc_to_coo<V: Scalar>(hdc: &HdcMatrix<V>) -> CooMatrix<V> {
    export_to_coo(hdc, hdc.ncols(), hdc.nnz())
}
