//! Conversions between all pairs of storage formats: direct-vs-hub
//! dispatch, parallel kernels, and the shared-analysis planning contract.
//!
//! # Direct vs hub
//!
//! Historically every pair converted through a materialised COO
//! intermediate. That round-trip sits on the tuning hot path — the paper's
//! Oracle only pays off once "the cost of conversion is amortized after a
//! number of SpMV iterations" (§VII) — so it is now the *fallback*, not the
//! rule. The dispatcher ([`crate::DynamicMatrix::to_format_with`]) picks:
//!
//! * **Identity** — source and target formats coincide: a clone (or a move,
//!   for [`crate::DynamicMatrix::into_format`]).
//! * **Direct** — whenever the source or the target is COO or CSR, a
//!   dedicated kernel in [`kernels`] writes the target arrays straight from
//!   the source arrays: CSR↔{COO, ELL, DIA, HYB, HDC} and
//!   COO↔{CSR, ELL, DIA, HYB, HDC}. No intermediate triplet buffers are
//!   allocated and nothing is sorted (sources are exported row-major in
//!   ascending column order). Row-partitionable passes — row histograms,
//!   slab fills, diagonal scatter, row-major export — run in parallel on
//!   the process pool with nnz-weighted, row-disjoint partitions once the
//!   matrix exceeds [`kernels::PARALLEL_CONVERT_THRESHOLD`] entries.
//! * **Hub** — conversions between two padded formats
//!   ({ELL, DIA, HYB, HDC} × {ELL, DIA, HYB, HDC}) export to COO first and
//!   rebuild from there. Both legs are themselves direct kernels, but the
//!   intermediate is materialised; these pairs are rare on the tuning path
//!   (the Oracle almost always switches from an ingestion format).
//!
//! Which path ran, and how long it took on the wall clock, is reported in
//! [`ConvertOutcome`] and surfaced by the Oracle in its `TuneReport`.
//!
//! # The `Analysis` reuse contract
//!
//! Every conversion *into* a padded format starts with a planning question:
//! the ELL slab width, DIA's populated-diagonal set, HYB's split width,
//! HDC's true-diagonal selection. All four answers derive from the two
//! histograms a [`crate::analysis::Analysis`] already holds, so planning
//! accepts an optional `&Analysis` (threaded through
//! [`crate::DynamicMatrix::to_format_with`]):
//!
//! * with a supplied analysis, planning reads the histograms and performs
//!   **zero** additional full traversals of the matrix (asserted by the
//!   [`crate::analysis::passes`] counter in the test suite);
//! * without one, the kernel rescans the source (recording the traversal on
//!   the counter).
//!
//! The caller must pass an analysis *of the matrix being converted* (any
//! active format with the same sparsity pattern is fine — the histograms
//! are format-independent). A mismatched artifact (wrong shape or nnz) is
//! ignored rather than trusted.
//!
//! # Padding guards
//!
//! DIA and ELL "can suffer from excessive padding" (§II-B); conversions
//! into them are guarded by [`ConvertOptions::max_fill`] and fail with
//! [`MorpheusError::ExcessivePadding`] *before* allocating the padded
//! arrays — the behaviour the profiling harness relies on to mark a format
//! non-viable for a matrix. Guards are applied identically on direct and
//! hub paths.

pub mod blocked;
pub mod kernels;

pub use blocked::{
    bell_to_coo, bell_to_csr, bsr_to_coo, bsr_to_csr, coo_to_bell, coo_to_bsr, csr_to_bell, csr_to_bsr,
};
pub(crate) use blocked::{rowmajor_to_bell, rowmajor_to_bsr, rowmajor_to_coo};

pub use kernels::{
    coo_to_csr, coo_to_dia, coo_to_ell, coo_to_hdc, coo_to_hyb, csr_to_coo, csr_to_dia, csr_to_ell,
    csr_to_hdc, csr_to_hyb, dia_to_coo, dia_to_csr, ell_to_coo, ell_to_csr, hdc_to_coo, hdc_to_csr,
    hyb_to_coo, hyb_to_csr,
};

use crate::analysis::Analysis;
use crate::dynamic::DynamicMatrix;
#[cfg(test)]
use crate::error::MorpheusError;
use crate::format::FormatId;
use crate::hdc::DEFAULT_TRUE_DIAG_ALPHA;
use crate::hyb::HybSplit;
use crate::params::FormatParams;
use crate::rowmajor::RowMajor;
use crate::scalar::Scalar;
use crate::Result;

/// Options controlling format conversions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvertOptions {
    /// Maximum padded slots per structural non-zero allowed when converting
    /// into DIA or ELL. Conversions needing more fail with
    /// [`MorpheusError::ExcessivePadding`].
    pub max_fill: f64,
    /// Padding allowance floor in slots, so small matrices may always
    /// convert regardless of fill ratio.
    pub min_padded_allowance: usize,
    /// HYB split-width policy.
    pub hyb_split: HybSplit,
    /// True-diagonal fraction for HDC splitting and the `NTD` statistic.
    pub true_diag_alpha: f64,
    /// Tunable format parameters (BSR block dims, BELL ladder, HYB/DIA
    /// overrides) — defaults reproduce the fixed heuristics.
    pub params: FormatParams,
}

impl Default for ConvertOptions {
    fn default() -> Self {
        ConvertOptions {
            max_fill: 20.0,
            min_padded_allowance: 4096,
            hyb_split: HybSplit::Auto,
            true_diag_alpha: DEFAULT_TRUE_DIAG_ALPHA,
            params: FormatParams::default(),
        }
    }
}

impl ConvertOptions {
    pub(crate) fn padded_allowance(&self, nnz: usize) -> usize {
        ((self.max_fill * nnz as f64) as usize).max(self.min_padded_allowance)
    }

    /// Applies the [`FormatParams`] overrides that map onto pre-existing
    /// knobs (HYB split width, DIA fill threshold) for a conversion into
    /// `target`. BSR/BELL parameters are read by their kernels directly.
    pub(crate) fn effective(&self, target: FormatId) -> ConvertOptions {
        let mut o = *self;
        if target == FormatId::Hyb {
            if let Some(w) = self.params.hyb_width {
                o.hyb_split = HybSplit::Width(w);
            }
        }
        if matches!(target, FormatId::Dia | FormatId::Hdc) {
            if let Some(f) = self.params.dia_fill {
                o.max_fill = f;
            }
        }
        o
    }
}

/// Which route a conversion took through the dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvertPath {
    /// Source already was the target format; no kernel ran.
    Identity,
    /// A direct kernel wrote the target arrays straight from the source.
    Direct,
    /// The conversion went through a materialised COO intermediate.
    Hub,
}

impl std::fmt::Display for ConvertPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ConvertPath::Identity => "identity",
            ConvertPath::Direct => "direct",
            ConvertPath::Hub => "hub",
        })
    }
}

/// What a conversion did and what it cost on the host wall clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvertOutcome {
    /// The route taken.
    pub path: ConvertPath,
    /// Wall-clock seconds the conversion took (planning + fills; measured,
    /// not modelled).
    pub seconds: f64,
}

impl ConvertOutcome {
    /// An outcome for "nothing happened" (already in the target format).
    pub fn identity() -> Self {
        ConvertOutcome { path: ConvertPath::Identity, seconds: 0.0 }
    }
}

/// Converts `m` to `target`, timing the kernel and reporting the path
/// taken. `analysis`, when supplied and matching, answers all planning
/// questions without re-traversing the matrix.
pub(crate) fn convert_timed<V: Scalar>(
    m: &DynamicMatrix<V>,
    target: FormatId,
    opts: &ConvertOptions,
    analysis: Option<&Analysis>,
) -> Result<(DynamicMatrix<V>, ConvertOutcome)> {
    let start = std::time::Instant::now();
    if target == m.format_id() {
        return Ok((m.clone(), ConvertOutcome::identity()));
    }
    // Trust the plan only if it plausibly describes this matrix.
    let plan = analysis.filter(|a| a.matches(m));
    let opts = opts.effective(target);
    let (converted, path) = dispatch(m, target, &opts, plan)?;
    Ok((converted, ConvertOutcome { path, seconds: start.elapsed().as_secs_f64() }))
}

/// The active representation as a row-major walker (all formats implement
/// [`RowMajor`]).
pub(crate) fn as_rowmajor<V: Scalar>(m: &DynamicMatrix<V>) -> &dyn RowMajor<V> {
    match m {
        DynamicMatrix::Coo(a) => a,
        DynamicMatrix::Csr(a) => a,
        DynamicMatrix::Dia(a) => a,
        DynamicMatrix::Ell(a) => a,
        DynamicMatrix::Hyb(a) => a,
        DynamicMatrix::Hdc(a) => a,
        DynamicMatrix::Bsr(a) => a,
        DynamicMatrix::Bell(a) => a,
    }
}

fn dispatch<V: Scalar>(
    m: &DynamicMatrix<V>,
    target: FormatId,
    opts: &ConvertOptions,
    plan: Option<&Analysis>,
) -> Result<(DynamicMatrix<V>, ConvertPath)> {
    use DynamicMatrix as D;
    let direct = |m: DynamicMatrix<V>| (m, ConvertPath::Direct);
    Ok(match (m, target) {
        // Everything exports to COO and CSR directly (row-major export for
        // the padded formats, array moves/expansions for COO<->CSR).
        (_, FormatId::Coo) => direct(D::Coo(m.to_coo())),
        (D::Coo(a), FormatId::Csr) => direct(D::Csr(coo_to_csr(a))),
        (D::Dia(a), FormatId::Csr) => direct(D::Csr(dia_to_csr(a))),
        (D::Ell(a), FormatId::Csr) => direct(D::Csr(ell_to_csr(a))),
        (D::Hyb(a), FormatId::Csr) => direct(D::Csr(hyb_to_csr(a))),
        (D::Hdc(a), FormatId::Csr) => direct(D::Csr(hdc_to_csr(a))),
        (D::Bsr(a), FormatId::Csr) => direct(D::Csr(bsr_to_csr(a))),
        (D::Bell(a), FormatId::Csr) => direct(D::Csr(bell_to_csr(a))),
        // The block formats build from any source via the row-major walk:
        // direct from everywhere, no COO hop.
        (_, FormatId::Bsr) => direct(D::Bsr(rowmajor_to_bsr(as_rowmajor(m), m.ncols(), opts)?)),
        (_, FormatId::Bell) => direct(D::Bell(rowmajor_to_bell(as_rowmajor(m), m.ncols(), opts)?)),
        // COO and CSR sources convert into the padded formats directly.
        (D::Coo(a), FormatId::Dia) => direct(D::Dia(kernels::coo_to_dia_planned(a, opts, plan)?)),
        (D::Coo(a), FormatId::Ell) => direct(D::Ell(kernels::coo_to_ell_planned(a, opts, plan)?)),
        (D::Coo(a), FormatId::Hyb) => direct(D::Hyb(kernels::coo_to_hyb_planned(a, opts, plan)?)),
        (D::Coo(a), FormatId::Hdc) => direct(D::Hdc(kernels::coo_to_hdc_planned(a, opts, plan)?)),
        (D::Csr(a), FormatId::Dia) => direct(D::Dia(kernels::csr_to_dia_planned(a, opts, plan)?)),
        (D::Csr(a), FormatId::Ell) => direct(D::Ell(kernels::csr_to_ell_planned(a, opts, plan)?)),
        (D::Csr(a), FormatId::Hyb) => direct(D::Hyb(kernels::csr_to_hyb_planned(a, opts, plan)?)),
        (D::Csr(a), FormatId::Hdc) => direct(D::Hdc(kernels::csr_to_hdc_planned(a, opts, plan)?)),
        // Padded -> padded: through the COO hub (both legs are direct
        // kernels, but the intermediate is materialised).
        (_, _) => {
            let coo = m.to_coo();
            let rebuilt = match target {
                FormatId::Dia => D::Dia(kernels::coo_to_dia_planned(&coo, opts, plan)?),
                FormatId::Ell => D::Ell(kernels::coo_to_ell_planned(&coo, opts, plan)?),
                FormatId::Hyb => D::Hyb(kernels::coo_to_hyb_planned(&coo, opts, plan)?),
                FormatId::Hdc => D::Hdc(kernels::coo_to_hdc_planned(&coo, opts, plan)?),
                FormatId::Coo | FormatId::Csr | FormatId::Bsr | FormatId::Bell => {
                    unreachable!("handled by the direct arms")
                }
            };
            (rebuilt, ConvertPath::Hub)
        }
    })
}

/// Converts `m` to `target` strictly through a materialised COO
/// intermediate, regardless of whether a direct kernel exists.
///
/// This is the reference path the property tests and the conversion
/// benchmarks compare the direct kernels against; production code should go
/// through [`crate::DynamicMatrix::to_format`], which dispatches to the
/// fastest route.
pub fn convert_via_hub<V: Scalar>(
    m: &DynamicMatrix<V>,
    target: FormatId,
    opts: &ConvertOptions,
) -> Result<DynamicMatrix<V>> {
    let coo = m.to_coo();
    let opts = &opts.effective(target);
    Ok(match target {
        FormatId::Coo => DynamicMatrix::Coo(coo),
        FormatId::Csr => DynamicMatrix::Csr(coo_to_csr(&coo)),
        FormatId::Dia => DynamicMatrix::Dia(coo_to_dia(&coo, opts)?),
        FormatId::Ell => DynamicMatrix::Ell(coo_to_ell(&coo, opts)?),
        FormatId::Hyb => DynamicMatrix::Hyb(coo_to_hyb(&coo, opts)?),
        FormatId::Hdc => DynamicMatrix::Hdc(coo_to_hdc(&coo, opts)?),
        FormatId::Bsr => DynamicMatrix::Bsr(coo_to_bsr(&coo, opts)?),
        FormatId::Bell => DynamicMatrix::Bell(coo_to_bell(&coo, opts)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::test_util::random_coo;

    fn sample_coo() -> CooMatrix<f64> {
        // [1 0 2 0]
        // [0 3 0 0]
        // [4 0 5 6]
        // [0 0 0 7]
        CooMatrix::from_triplets(
            4,
            4,
            &[0, 0, 1, 2, 2, 2, 3],
            &[0, 2, 1, 0, 2, 3, 3],
            &[1., 2., 3., 4., 5., 6., 7.],
        )
        .unwrap()
    }

    #[test]
    fn coo_csr_roundtrip() {
        let coo = sample_coo();
        let csr = coo_to_csr(&coo);
        assert_eq!(csr.row_offsets(), &[0, 2, 3, 6, 7]);
        let back = csr_to_coo(&csr);
        assert_eq!(back, coo);
    }

    #[test]
    fn coo_dia_roundtrip() {
        let coo = sample_coo();
        let dia = coo_to_dia(&coo, &ConvertOptions::default()).unwrap();
        assert_eq!(dia.nnz(), coo.nnz());
        // Diagonals present: offsets j - i in {0, 2, -2, 1}.
        assert_eq!(dia.offsets(), &[-2, 0, 1, 2]);
        let back = dia_to_coo(&dia);
        assert_eq!(back, coo);
    }

    #[test]
    fn coo_ell_roundtrip() {
        let coo = sample_coo();
        let ell = coo_to_ell(&coo, &ConvertOptions::default()).unwrap();
        assert_eq!(ell.width(), 3);
        assert_eq!(ell.nnz(), coo.nnz());
        let back = ell_to_coo(&ell);
        assert_eq!(back, coo);
    }

    #[test]
    fn coo_hyb_roundtrip() {
        let coo = sample_coo();
        for split in [HybSplit::Auto, HybSplit::Width(1), HybSplit::Width(2)] {
            let opts = ConvertOptions { hyb_split: split, ..Default::default() };
            let hyb = coo_to_hyb(&coo, &opts).unwrap();
            assert_eq!(hyb.nnz(), coo.nnz(), "{split:?}");
            let back = hyb_to_coo(&hyb);
            assert_eq!(back, coo, "{split:?}");
        }
    }

    #[test]
    fn coo_hdc_roundtrip() {
        let coo = sample_coo();
        let opts = ConvertOptions { true_diag_alpha: 0.5, ..Default::default() };
        let hdc = coo_to_hdc(&coo, &opts).unwrap();
        assert_eq!(hdc.nnz(), coo.nnz());
        // Main diagonal has 4 entries >= ceil(0.5*4) = 2 -> true diagonal.
        assert!(hdc.dia().ndiags() >= 1);
        assert!(hdc.dia().offsets().contains(&0));
        let back = hdc_to_coo(&hdc);
        assert_eq!(back, coo);
    }

    #[test]
    fn hyb_auto_split_spills_long_row() {
        // 63 rows with 1 entry, one row with 40 entries.
        let n = 64usize;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for r in 0..n - 1 {
            rows.push(r);
            cols.push(r % 8);
            vals.push(1.0);
        }
        for c in 0..40 {
            rows.push(n - 1);
            cols.push(c);
            vals.push(2.0);
        }
        let coo = CooMatrix::<f64>::from_triplets(n, n, &rows, &cols, &vals).unwrap();
        let hyb = coo_to_hyb(&coo, &ConvertOptions::default()).unwrap();
        assert_eq!(hyb.split_width(), 1);
        assert_eq!(hyb.coo().nnz(), 39);
        assert_eq!(hyb.nnz(), coo.nnz());
    }

    #[test]
    fn ell_conversion_rejects_excessive_padding() {
        // One dense row in an otherwise hypersparse large matrix.
        let n = 20_000usize;
        let mut rows = vec![0usize; 1000];
        let cols: Vec<usize> = (0..1000).collect();
        let vals = vec![1.0f64; 1000];
        rows.extend([n - 1]);
        let mut cols = cols;
        cols.push(0);
        let mut vals = vals;
        vals.push(1.0);
        let coo = CooMatrix::<f64>::from_triplets(n, n, &rows, &cols, &vals).unwrap();
        let err = coo_to_ell(&coo, &ConvertOptions::default()).unwrap_err();
        assert!(matches!(err, MorpheusError::ExcessivePadding { format: FormatId::Ell, .. }));
        // The direct CSR kernel applies the identical guard.
        let err = csr_to_ell(&coo_to_csr(&coo), &ConvertOptions::default()).unwrap_err();
        assert!(matches!(err, MorpheusError::ExcessivePadding { format: FormatId::Ell, .. }));
    }

    #[test]
    fn dia_conversion_rejects_excessive_padding() {
        // Random scatter -> many distinct diagonals.
        let coo = random_coo::<f64>(3000, 3000, 600, 7);
        let opts = ConvertOptions { max_fill: 2.0, min_padded_allowance: 16, ..Default::default() };
        let err = coo_to_dia(&coo, &opts).unwrap_err();
        assert!(matches!(err, MorpheusError::ExcessivePadding { format: FormatId::Dia, .. }));
        let err = csr_to_dia(&coo_to_csr(&coo), &opts).unwrap_err();
        assert!(matches!(err, MorpheusError::ExcessivePadding { format: FormatId::Dia, .. }));
    }

    #[test]
    fn empty_matrix_conversions() {
        let coo = CooMatrix::<f64>::new(5, 5);
        let opts = ConvertOptions::default();
        assert_eq!(coo_to_csr(&coo).nnz(), 0);
        assert_eq!(coo_to_dia(&coo, &opts).unwrap().nnz(), 0);
        assert_eq!(coo_to_ell(&coo, &opts).unwrap().nnz(), 0);
        assert_eq!(coo_to_hyb(&coo, &opts).unwrap().nnz(), 0);
        assert_eq!(coo_to_hdc(&coo, &opts).unwrap().nnz(), 0);
        let csr = coo_to_csr(&coo);
        assert_eq!(csr_to_dia(&csr, &opts).unwrap().nnz(), 0);
        assert_eq!(csr_to_ell(&csr, &opts).unwrap().nnz(), 0);
        assert_eq!(csr_to_hyb(&csr, &opts).unwrap().nnz(), 0);
        assert_eq!(csr_to_hdc(&csr, &opts).unwrap().nnz(), 0);
    }

    #[test]
    fn random_roundtrips_preserve_entries() {
        for seed in 0..5u64 {
            let coo = random_coo::<f64>(60, 45, 300, seed);
            // Random scatter populates most diagonals; raise the padding
            // allowance so the DIA leg of the roundtrip is exercised too.
            let opts = ConvertOptions { min_padded_allowance: 1 << 20, ..Default::default() };
            assert_eq!(csr_to_coo(&coo_to_csr(&coo)), coo, "csr seed {seed}");
            assert_eq!(dia_to_coo(&coo_to_dia(&coo, &opts).unwrap()), coo, "dia seed {seed}");
            assert_eq!(ell_to_coo(&coo_to_ell(&coo, &opts).unwrap()), coo, "ell seed {seed}");
            assert_eq!(hyb_to_coo(&coo_to_hyb(&coo, &opts).unwrap()), coo, "hyb seed {seed}");
            assert_eq!(hdc_to_coo(&coo_to_hdc(&coo, &opts).unwrap()), coo, "hdc seed {seed}");
        }
    }

    #[test]
    fn direct_csr_kernels_match_hub_path() {
        for seed in 0..4u64 {
            let coo = random_coo::<f64>(70, 55, 500, seed);
            let opts = ConvertOptions { min_padded_allowance: 1 << 20, ..Default::default() };
            let csr = coo_to_csr(&coo);
            assert_eq!(csr_to_ell(&csr, &opts).unwrap(), coo_to_ell(&coo, &opts).unwrap(), "{seed}");
            assert_eq!(csr_to_dia(&csr, &opts).unwrap(), coo_to_dia(&coo, &opts).unwrap(), "{seed}");
            assert_eq!(csr_to_hyb(&csr, &opts).unwrap(), coo_to_hyb(&coo, &opts).unwrap(), "{seed}");
            assert_eq!(csr_to_hdc(&csr, &opts).unwrap(), coo_to_hdc(&coo, &opts).unwrap(), "{seed}");
        }
    }

    #[test]
    fn export_to_csr_matches_coo_route() {
        let coo = random_coo::<f64>(50, 50, 400, 13);
        let opts = ConvertOptions { min_padded_allowance: 1 << 20, ..Default::default() };
        let expect = coo_to_csr(&coo);
        assert_eq!(ell_to_csr(&coo_to_ell(&coo, &opts).unwrap()), expect);
        assert_eq!(dia_to_csr(&coo_to_dia(&coo, &opts).unwrap()), expect);
        assert_eq!(hyb_to_csr(&coo_to_hyb(&coo, &opts).unwrap()), expect);
        assert_eq!(hdc_to_csr(&coo_to_hdc(&coo, &opts).unwrap()), expect);
    }

    #[test]
    fn planned_conversions_match_unplanned() {
        use crate::analysis::Analysis;
        let coo = random_coo::<f64>(80, 64, 600, 3);
        let opts = ConvertOptions { min_padded_allowance: 1 << 20, ..Default::default() };
        let m = DynamicMatrix::from(coo.clone());
        let a = Analysis::of(&m, opts.true_diag_alpha);
        let csr = coo_to_csr(&coo);
        assert_eq!(
            kernels::coo_to_ell_planned(&coo, &opts, Some(&a)).unwrap(),
            coo_to_ell(&coo, &opts).unwrap()
        );
        assert_eq!(
            kernels::coo_to_dia_planned(&coo, &opts, Some(&a)).unwrap(),
            coo_to_dia(&coo, &opts).unwrap()
        );
        assert_eq!(
            kernels::coo_to_hyb_planned(&coo, &opts, Some(&a)).unwrap(),
            coo_to_hyb(&coo, &opts).unwrap()
        );
        assert_eq!(
            kernels::coo_to_hdc_planned(&coo, &opts, Some(&a)).unwrap(),
            coo_to_hdc(&coo, &opts).unwrap()
        );
        assert_eq!(
            kernels::csr_to_ell_planned(&csr, &opts, Some(&a)).unwrap(),
            csr_to_ell(&csr, &opts).unwrap()
        );
        assert_eq!(
            kernels::csr_to_hdc_planned(&csr, &opts, Some(&a)).unwrap(),
            csr_to_hdc(&csr, &opts).unwrap()
        );
    }

    #[test]
    fn dispatcher_reports_paths() {
        let coo = random_coo::<f64>(40, 40, 250, 1);
        let opts = ConvertOptions { min_padded_allowance: 1 << 20, ..Default::default() };
        let m = DynamicMatrix::from(coo);

        let (_, same) = convert_timed(&m, FormatId::Coo, &opts, None).unwrap();
        assert_eq!(same.path, ConvertPath::Identity);

        let (ell, out) = convert_timed(&m, FormatId::Ell, &opts, None).unwrap();
        assert_eq!(out.path, ConvertPath::Direct);
        assert!(out.seconds >= 0.0);

        // Padded -> padded goes through the hub.
        let (_, out) = convert_timed(&ell, FormatId::Dia, &opts, None).unwrap();
        assert_eq!(out.path, ConvertPath::Hub);

        // Padded -> CSR is a direct export.
        let (_, out) = convert_timed(&ell, FormatId::Csr, &opts, None).unwrap();
        assert_eq!(out.path, ConvertPath::Direct);
    }

    #[test]
    fn hub_reference_path_equals_dispatcher() {
        let coo = random_coo::<f64>(64, 48, 420, 11);
        let opts = ConvertOptions { min_padded_allowance: 1 << 20, ..Default::default() };
        let m = DynamicMatrix::from(coo);
        for target in crate::format::ALL_FORMATS {
            let via_hub = convert_via_hub(&m, target, &opts).unwrap();
            let (dispatched, _) = convert_timed(&m, target, &opts, None).unwrap();
            assert_eq!(via_hub, dispatched, "{target}");
        }
    }

    #[test]
    fn large_parallel_conversion_matches_serial_plan() {
        // Cross the parallel threshold so the pool kernels actually run.
        let n = 400usize;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for i in 0..n {
            for d in -24isize..=24 {
                let j = i as isize + d;
                if j >= 0 && (j as usize) < n {
                    rows.push(i);
                    cols.push(j as usize);
                }
            }
        }
        // Strictly non-zero values: DIA storage elides explicit zeros, which
        // would legitimately break the roundtrip comparison below.
        let vals: Vec<f64> = (0..rows.len()).map(|i| (i % 16) as f64 - 7.5).collect();
        let coo = CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap();
        assert!(coo.nnz() >= kernels::PARALLEL_CONVERT_THRESHOLD);
        let opts = ConvertOptions { min_padded_allowance: 1 << 24, ..Default::default() };
        let m = DynamicMatrix::from(coo);
        for target in crate::format::ALL_FORMATS {
            let direct = m.to_format(target, &opts).unwrap();
            let hub = convert_via_hub(&m, target, &opts).unwrap();
            assert_eq!(direct, hub, "{target}");
            assert_eq!(direct.to_coo(), m.to_coo(), "{target}");
        }
    }
}
