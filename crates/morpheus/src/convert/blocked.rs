//! Conversions for the parameterized block formats (BSR, BELL).
//!
//! Both formats build from *any* source through the [`RowMajor`] trait —
//! the same per-row sorted walk the direct PR-2 kernels use — so every
//! format reaches BSR/BELL without a COO hop, and both export back to
//! COO/CSR generically. Padding guards mirror the DIA/ELL contract:
//! conversions whose padded slabs exceed the [`ConvertOptions`] allowance
//! fail with [`MorpheusError::ExcessivePadding`] (the tuner's non-viability
//! signal), although block padding is structurally bounded (at worst
//! `block_r * block_c` per entry for BSR, the ladder gap for BELL) where
//! ELL/DIA padding is unbounded.

use crate::bell::BellMatrix;
use crate::bsr::BsrMatrix;
use crate::convert::ConvertOptions;
use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::MorpheusError;
use crate::format::FormatId;
use crate::rowmajor::RowMajor;
use crate::scalar::Scalar;
use crate::Result;

/// Exports any row-major-walkable source to COO (sorted by construction).
pub(crate) fn rowmajor_to_coo<V: Scalar>(src: &dyn RowMajor<V>, ncols: usize) -> CooMatrix<V> {
    let nrows = src.nrows();
    let nnz: usize = (0..nrows).map(|r| src.row_count(r)).sum();
    let mut rows = Vec::with_capacity(nnz);
    let mut cols = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for r in 0..nrows {
        src.emit_row(r, &mut |c, v| {
            rows.push(r);
            cols.push(c);
            vals.push(v);
        });
    }
    CooMatrix::from_sorted_parts_unchecked(nrows, ncols, rows, cols, vals)
}

/// Exports any row-major-walkable source to CSR.
pub(crate) fn rowmajor_to_csr<V: Scalar>(src: &dyn RowMajor<V>, ncols: usize) -> CsrMatrix<V> {
    let nrows = src.nrows();
    let mut offsets = Vec::with_capacity(nrows + 1);
    offsets.push(0usize);
    let mut acc = 0usize;
    for r in 0..nrows {
        acc += src.row_count(r);
        offsets.push(acc);
    }
    let mut cols = Vec::with_capacity(acc);
    let mut vals = Vec::with_capacity(acc);
    for r in 0..nrows {
        src.emit_row(r, &mut |c, v| {
            cols.push(c);
            vals.push(v);
        });
    }
    CsrMatrix::from_parts_unchecked(nrows, ncols, offsets, cols, vals)
}

fn guard_padding(format: FormatId, padded: usize, nnz: usize, opts: &ConvertOptions) -> Result<()> {
    let limit = opts.padded_allowance(nnz);
    if padded > nnz && padded - nnz > limit {
        return Err(MorpheusError::ExcessivePadding { format, padded, nnz, limit });
    }
    Ok(())
}

/// Builds a BSR matrix from any row-major source with the options' block
/// dimensions, enforcing the padding allowance.
pub(crate) fn rowmajor_to_bsr<V: Scalar>(
    src: &dyn RowMajor<V>,
    ncols: usize,
    opts: &ConvertOptions,
) -> Result<BsrMatrix<V>> {
    let (r, c) = opts.params.normalized_block();
    let m = BsrMatrix::from_rowmajor(src, ncols, r, c);
    guard_padding(FormatId::Bsr, m.padded_len(), m.nnz(), opts)?;
    Ok(m)
}

/// Builds a BELL matrix from any row-major source with the options' bucket
/// ladder, enforcing the padding allowance.
pub(crate) fn rowmajor_to_bell<V: Scalar>(
    src: &dyn RowMajor<V>,
    ncols: usize,
    opts: &ConvertOptions,
) -> Result<BellMatrix<V>> {
    let m = BellMatrix::from_rowmajor(src, ncols, opts.params.bell_ladder());
    guard_padding(FormatId::Bell, m.padded_len(), m.nnz(), opts)?;
    Ok(m)
}

/// COO → BSR with the options' block dimensions.
pub fn coo_to_bsr<V: Scalar>(a: &CooMatrix<V>, opts: &ConvertOptions) -> Result<BsrMatrix<V>> {
    rowmajor_to_bsr(a, a.ncols(), opts)
}

/// CSR → BSR with the options' block dimensions.
pub fn csr_to_bsr<V: Scalar>(a: &CsrMatrix<V>, opts: &ConvertOptions) -> Result<BsrMatrix<V>> {
    rowmajor_to_bsr(a, a.ncols(), opts)
}

/// BSR → COO (row-major export; exact structural roundtrip).
pub fn bsr_to_coo<V: Scalar>(a: &BsrMatrix<V>) -> CooMatrix<V> {
    rowmajor_to_coo(a, a.ncols())
}

/// BSR → CSR (row-major export).
pub fn bsr_to_csr<V: Scalar>(a: &BsrMatrix<V>) -> CsrMatrix<V> {
    rowmajor_to_csr(a, a.ncols())
}

/// COO → BELL with the options' bucket ladder.
pub fn coo_to_bell<V: Scalar>(a: &CooMatrix<V>, opts: &ConvertOptions) -> Result<BellMatrix<V>> {
    rowmajor_to_bell(a, a.ncols(), opts)
}

/// CSR → BELL with the options' bucket ladder.
pub fn csr_to_bell<V: Scalar>(a: &CsrMatrix<V>, opts: &ConvertOptions) -> Result<BellMatrix<V>> {
    rowmajor_to_bell(a, a.ncols(), opts)
}

/// BELL → COO (row-major export; exact structural roundtrip).
pub fn bell_to_coo<V: Scalar>(a: &BellMatrix<V>) -> CooMatrix<V> {
    rowmajor_to_coo(a, a.ncols())
}

/// BELL → CSR (row-major export).
pub fn bell_to_csr<V: Scalar>(a: &BellMatrix<V>) -> CsrMatrix<V> {
    rowmajor_to_csr(a, a.ncols())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FormatParams;
    use crate::test_util::random_coo;

    #[test]
    fn bsr_roundtrips_exactly() {
        for seed in 0..4u64 {
            let coo = random_coo::<f64>(50, 41, 360, seed);
            for dims in [(2, 2), (4, 4), (8, 8)] {
                let opts = ConvertOptions {
                    params: FormatParams { bsr_block: dims, ..Default::default() },
                    ..Default::default()
                };
                let bsr = coo_to_bsr(&coo, &opts).unwrap();
                assert_eq!(bsr_to_coo(&bsr), coo, "seed {seed} dims {dims:?}");
                let csr = crate::convert::coo_to_csr(&coo);
                assert_eq!(csr_to_bsr(&csr, &opts).unwrap(), bsr);
                assert_eq!(bsr_to_csr(&bsr), csr);
            }
        }
    }

    #[test]
    fn bell_roundtrips_exactly() {
        for seed in 0..4u64 {
            let coo = random_coo::<f64>(60, 44, 420, seed + 50);
            for ladder in [vec![], vec![2, 6], vec![1, 2, 4, 8, 16, 32]] {
                let opts = ConvertOptions {
                    params: FormatParams::default().with_bell_ladder(&ladder),
                    ..Default::default()
                };
                let bell = coo_to_bell(&coo, &opts).unwrap();
                assert_eq!(bell_to_coo(&bell), coo, "seed {seed} ladder {ladder:?}");
                let csr = crate::convert::coo_to_csr(&coo);
                assert_eq!(csr_to_bell(&csr, &opts).unwrap(), bell);
                assert_eq!(bell_to_csr(&bell), csr);
            }
        }
    }

    #[test]
    fn bsr_padding_guard_fires_on_hypersparse_scatter() {
        // One entry per 8x8 block: 64 padded slots per non-zero.
        let n = 4000usize;
        let rows: Vec<usize> = (0..n / 8).map(|i| i * 8).collect();
        let cols: Vec<usize> = (0..n / 8).map(|i| (i * 8 + 3) % n).collect();
        let vals = vec![1.0f64; rows.len()];
        let coo = CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap();
        let opts = ConvertOptions {
            max_fill: 2.0,
            min_padded_allowance: 8,
            params: FormatParams { bsr_block: (8, 8), ..Default::default() },
            ..Default::default()
        };
        let err = coo_to_bsr(&coo, &opts).unwrap_err();
        assert!(matches!(err, MorpheusError::ExcessivePadding { format: FormatId::Bsr, .. }));
    }

    #[test]
    fn empty_matrices_convert() {
        let coo = CooMatrix::<f64>::new(6, 6);
        let opts = ConvertOptions::default();
        assert_eq!(coo_to_bsr(&coo, &opts).unwrap().nnz(), 0);
        assert_eq!(coo_to_bell(&coo, &opts).unwrap().nnz(), 0);
        assert_eq!(bsr_to_coo(&coo_to_bsr(&coo, &opts).unwrap()), coo);
        assert_eq!(bell_to_coo(&coo_to_bell(&coo, &opts).unwrap()), coo);
    }
}
