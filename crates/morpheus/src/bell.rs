//! Bucketed ELLPACK (BELL) format.
//!
//! Classic ELL pads every row to the *global* maximum width, so one heavy
//! row poisons the whole matrix. BELL bins rows into width buckets — each
//! bucket is an independent column-major ELL slab holding only the rows
//! assigned to it — so padding waste is bounded by the gap to the next
//! bucket width instead of the gap to the global maximum. Empty rows are
//! stored nowhere (kernels pre-zero the output).
//!
//! The bucket width list is the format's *parameter*: the default is the
//! power-of-two ladder, but the tuner may regress a custom ladder per
//! matrix (see `ConvertOptions::params`).

use crate::ell::ELL_PAD;
use crate::error::MorpheusError;
use crate::format::FormatId;
use crate::rowmajor::RowMajor;
use crate::scalar::Scalar;
use crate::Result;

/// One width bucket: an ELL slab over the subset of rows assigned to it.
///
/// `cols`/`vals` are column-major over the bucket's rows
/// (`cols[k * rows.len() + j]` is the `k`-th entry of `rows[j]`), padded
/// with [`ELL_PAD`] / `V::ZERO` exactly like [`crate::EllMatrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct BellBucket<V> {
    width: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<V>,
}

impl<V: Scalar> BellBucket<V> {
    /// Per-row entry budget of this bucket.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Global row indices stored in this bucket, strictly ascending.
    #[inline]
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// Column-major column indices (`width * rows.len()`).
    #[inline]
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Column-major values (`width * rows.len()`).
    #[inline]
    pub fn vals(&self) -> &[V] {
        &self.vals
    }

    /// Allocated slots including padding.
    #[inline]
    pub fn padded_len(&self) -> usize {
        self.cols.len()
    }
}

/// Bucketed-ELL sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BellMatrix<V> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    buckets: Vec<BellBucket<V>>,
}

/// The default bucket ladder: powers of two up to (and covering) `max_width`.
pub fn default_bucket_widths(max_width: usize) -> Vec<usize> {
    let mut widths = Vec::new();
    let mut w = 1usize;
    while w < max_width {
        widths.push(w);
        w *= 2;
    }
    if max_width > 0 {
        widths.push(max_width.max(w.min(max_width)));
    }
    widths.dedup();
    widths
}

impl<V: Scalar> BellMatrix<V> {
    /// An empty matrix of the given shape (no buckets).
    pub fn new(nrows: usize, ncols: usize) -> Self {
        BellMatrix { nrows, ncols, nnz: 0, buckets: Vec::new() }
    }

    /// Builds from any row-major-walkable source with the given bucket
    /// width ladder (ascending upper bounds; a final bucket at the maximum
    /// row width is appended when the ladder does not cover it). An empty
    /// ladder selects [`default_bucket_widths`].
    pub(crate) fn from_rowmajor(src: &dyn RowMajor<V>, ncols: usize, widths: &[usize]) -> Self {
        let nrows = src.nrows();
        let counts: Vec<usize> = (0..nrows).map(|r| src.row_count(r)).collect();
        let max_width = counts.iter().copied().max().unwrap_or(0);
        let mut ladder: Vec<usize> = if widths.is_empty() {
            default_bucket_widths(max_width)
        } else {
            let mut l: Vec<usize> = widths.iter().copied().filter(|&w| w > 0).collect();
            l.sort_unstable();
            l.dedup();
            l
        };
        if ladder.last().copied().unwrap_or(0) < max_width {
            ladder.push(max_width);
        }
        // Assign each non-empty row to the first bucket wide enough for it.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); ladder.len()];
        for (r, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let b = ladder.partition_point(|&w| w < n);
            members[b].push(r);
        }
        let mut nnz = 0usize;
        let mut buckets = Vec::new();
        for (b, rows) in members.into_iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let width = ladder[b];
            let len = rows.len();
            let mut cols = vec![ELL_PAD; width * len];
            let mut vals = vec![V::ZERO; width * len];
            for (j, &r) in rows.iter().enumerate() {
                let mut k = 0usize;
                src.emit_row(r, &mut |c, v| {
                    cols[k * len + j] = c;
                    vals[k * len + j] = v;
                    k += 1;
                    nnz += 1;
                });
            }
            buckets.push(BellBucket { width, rows, cols, vals });
        }
        BellMatrix { nrows, ncols, nnz, buckets }
    }

    /// Builds from raw buckets, validating the layout: bucket widths
    /// strictly increasing, rows strictly ascending within a bucket and
    /// disjoint across buckets, per-row columns strictly increasing with
    /// padding only after real entries.
    pub fn from_parts(nrows: usize, ncols: usize, buckets: Vec<BellBucket<V>>) -> Result<Self> {
        let mut seen_rows = std::collections::BTreeSet::new();
        let mut prev_width = 0usize;
        let mut nnz = 0usize;
        for bucket in &buckets {
            if bucket.width <= prev_width && prev_width > 0 || bucket.width == 0 {
                return Err(MorpheusError::InvalidStructure(
                    "BELL bucket widths must be positive and strictly increasing".into(),
                ));
            }
            prev_width = bucket.width;
            let len = bucket.rows.len();
            if len == 0 || bucket.cols.len() != bucket.width * len || bucket.vals.len() != bucket.width * len
            {
                return Err(MorpheusError::InvalidStructure(format!(
                    "BELL bucket (width {}) has inconsistent array lengths",
                    bucket.width
                )));
            }
            let mut prev_row: Option<usize> = None;
            for &r in &bucket.rows {
                if r >= nrows || prev_row.is_some_and(|p| p >= r) || !seen_rows.insert(r) {
                    return Err(MorpheusError::InvalidStructure(format!(
                        "BELL bucket rows invalid or duplicated (row {r})"
                    )));
                }
                prev_row = Some(r);
            }
            for j in 0..len {
                let mut prev: Option<usize> = None;
                let mut padded = false;
                for k in 0..bucket.width {
                    let c = bucket.cols[k * len + j];
                    if c == ELL_PAD {
                        padded = true;
                        continue;
                    }
                    if padded || c >= ncols || prev.is_some_and(|p| p >= c) {
                        return Err(MorpheusError::InvalidStructure(format!(
                            "BELL bucket (width {}) row {}: invalid column layout",
                            bucket.width, bucket.rows[j]
                        )));
                    }
                    prev = Some(c);
                    nnz += 1;
                }
            }
        }
        Ok(BellMatrix { nrows, ncols, nnz, buckets })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Structural non-zeros (excludes padding).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Format identifier ([`FormatId::Bell`]).
    #[inline]
    pub fn format_id(&self) -> FormatId {
        FormatId::Bell
    }

    /// The width buckets, ascending by width.
    #[inline]
    pub fn buckets(&self) -> &[BellBucket<V>] {
        &self.buckets
    }

    /// The bucket width ladder actually materialised.
    pub fn bucket_widths(&self) -> Vec<usize> {
        self.buckets.iter().map(|b| b.width).collect()
    }

    /// Total allocated slots including padding, across all buckets.
    pub fn padded_len(&self) -> usize {
        self.buckets.iter().map(|b| b.padded_len()).sum()
    }

    /// Bytes of heap storage the format occupies.
    pub fn storage_bytes(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| {
                (b.rows.len() + b.cols.len()) * std::mem::size_of::<usize>()
                    + b.vals.len() * std::mem::size_of::<V>()
            })
            .sum()
    }

    /// Locates row `r`: `(bucket index, position within the bucket)`, or
    /// `None` for empty rows.
    #[inline]
    pub(crate) fn locate_row(&self, r: usize) -> Option<(usize, usize)> {
        self.buckets
            .iter()
            .enumerate()
            .find_map(|(b, bucket)| bucket.rows.binary_search(&r).ok().map(|j| (b, j)))
    }

    /// Partitions the slabs into at most `parts` cell-balanced segments for
    /// threaded execution. Segment spans never overlap within a bucket and
    /// buckets hold disjoint rows, so every `y` element has one writer.
    pub(crate) fn segments(&self, parts: usize) -> Vec<BellSegment> {
        let total: usize = self.buckets.iter().map(BellBucket::padded_len).sum();
        if total == 0 {
            return Vec::new();
        }
        let target = total.div_ceil(parts.max(1)).max(1);
        let mut segs = Vec::new();
        for (b, bucket) in self.buckets.iter().enumerate() {
            let len = bucket.rows.len();
            if len == 0 {
                continue;
            }
            // Rows per segment so each carries ~`target` padded cells.
            let step = target.div_ceil(bucket.width.max(1)).max(1);
            let mut lo = 0;
            while lo < len {
                let hi = (lo + step).min(len);
                segs.push(BellSegment { bucket: b, span: lo..hi });
                lo = hi;
            }
        }
        segs
    }
}

/// A threaded-execution unit: a span of row positions inside one bucket's
/// slab. Spans from [`BellMatrix::segments`] are disjoint, so concurrent
/// segment execution has one writer per output row.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BellSegment {
    pub(crate) bucket: usize,
    pub(crate) span: std::ops::Range<usize>,
}

impl<V: Scalar> RowMajor<V> for BellMatrix<V> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn row_count(&self, r: usize) -> usize {
        match self.locate_row(r) {
            None => 0,
            Some((b, j)) => {
                let bucket = &self.buckets[b];
                let len = bucket.rows.len();
                (0..bucket.width).take_while(|&k| bucket.cols[k * len + j] != ELL_PAD).count()
            }
        }
    }

    fn emit_row(&self, r: usize, f: &mut dyn FnMut(usize, V)) {
        if let Some((b, j)) = self.locate_row(r) {
            let bucket = &self.buckets[b];
            let len = bucket.rows.len();
            for k in 0..bucket.width {
                let c = bucket.cols[k * len + j];
                if c == ELL_PAD {
                    break;
                }
                f(c, bucket.vals[k * len + j]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::random_coo;

    #[test]
    fn default_ladder_is_powers_of_two_plus_max() {
        assert_eq!(default_bucket_widths(0), Vec::<usize>::new());
        assert_eq!(default_bucket_widths(1), vec![1]);
        assert_eq!(default_bucket_widths(5), vec![1, 2, 4, 5]);
        assert_eq!(default_bucket_widths(8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn buckets_partition_the_nonempty_rows() {
        let coo = random_coo::<f64>(50, 40, 320, 7);
        let m = BellMatrix::from_rowmajor(&coo, 40, &[]);
        assert_eq!(m.nnz(), coo.nnz());
        let total_rows: usize = m.buckets().iter().map(|b| b.rows().len()).sum();
        let nonempty = (0..50).filter(|&r| RowMajor::row_count(&coo, r) > 0).count();
        assert_eq!(total_rows, nonempty);
        // Padding never exceeds the bucket-width granularity.
        for b in m.buckets() {
            for (j, &r) in b.rows().iter().enumerate() {
                let n = RowMajor::row_count(&coo, r);
                assert!(n <= b.width(), "row {r} overflows its bucket");
                let stored =
                    (0..b.width()).take_while(|&k| b.cols()[k * b.rows().len() + j] != ELL_PAD).count();
                assert_eq!(stored, n);
            }
        }
    }

    #[test]
    fn rowmajor_walk_matches_source() {
        let coo = random_coo::<f64>(45, 33, 260, 13);
        let expect: Vec<(usize, usize, f64)> = coo.iter().collect();
        for widths in [vec![], vec![3, 9], vec![1, 2, 4, 8, 16]] {
            let m = BellMatrix::from_rowmajor(&coo, 33, &widths);
            let mut got = Vec::new();
            for r in 0..RowMajor::nrows(&m) {
                m.emit_row(r, &mut |c, v| got.push((r, c, v)));
            }
            assert_eq!(got, expect, "widths {widths:?}");
        }
    }

    #[test]
    fn custom_ladder_is_extended_to_cover_the_max() {
        let coo = random_coo::<f64>(30, 30, 200, 5);
        let max = (0..30).map(|r| RowMajor::row_count(&coo, r)).max().unwrap();
        let m = BellMatrix::from_rowmajor(&coo, 30, &[2]);
        assert!(m.bucket_widths().last().copied().unwrap() >= max);
        assert_eq!(m.nnz(), coo.nnz());
    }

    #[test]
    fn from_parts_validates_and_roundtrips() {
        let coo = random_coo::<f64>(25, 25, 120, 2);
        let m = BellMatrix::from_rowmajor(&coo, 25, &[]);
        let rebuilt = BellMatrix::from_parts(25, 25, m.buckets().to_vec()).unwrap();
        assert_eq!(rebuilt, m);

        // Duplicated row across buckets.
        let mut bad = m.buckets().to_vec();
        if bad.len() >= 2 {
            let r = bad[0].rows[0];
            bad[1].rows[0] = r;
            assert!(BellMatrix::from_parts(25, 25, bad).is_err());
        }
    }

    #[test]
    fn empty_matrix_and_empty_rows() {
        let m = BellMatrix::<f64>::new(8, 8);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.buckets().len(), 0);
        assert_eq!(RowMajor::row_count(&m, 3), 0);
    }
}
