//! Minimal dense matrix, used as the reference implementation in tests,
//! examples and the documentation.

use crate::coo::CooMatrix;
use crate::scalar::Scalar;

/// Row-major dense matrix. Not intended for large problems — it exists so
/// sparse kernels have an oracle to be verified against.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<V> {
    nrows: usize,
    ncols: usize,
    data: Vec<V>,
}

impl<V: Scalar> DenseMatrix<V> {
    /// A zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix { nrows, ncols, data: vec![V::ZERO; nrows * ncols] }
    }

    /// Materialises a COO matrix densely.
    pub fn from_coo(coo: &CooMatrix<V>) -> Self {
        let mut m = DenseMatrix::zeros(coo.nrows(), coo.ncols());
        for (r, c, v) in coo.iter() {
            m.data[r * coo.ncols() + c] = v;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> V {
        self.data[r * self.ncols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut V {
        &mut self.data[r * self.ncols + c]
    }

    /// Reference dense `y = A x`.
    pub fn spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.ncols, "x length");
        assert_eq!(y.len(), self.nrows, "y length");
        for (r, out) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.ncols..(r + 1) * self.ncols];
            let mut acc = V::ZERO;
            for (&a, &b) in row.iter().zip(x) {
                acc += a * b;
            }
            *out = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_coo_and_spmv() {
        let coo = CooMatrix::<f64>::from_triplets(2, 3, &[0, 0, 1], &[0, 2, 1], &[1.0, 2.0, 3.0]).unwrap();
        let d = DenseMatrix::from_coo(&coo);
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(0, 2), 2.0);
        assert_eq!(d.get(1, 1), 3.0);
        assert_eq!(d.get(1, 0), 0.0);
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 2];
        d.spmv(&x, &mut y);
        assert_eq!(y, vec![7.0, 6.0]);
    }
}
