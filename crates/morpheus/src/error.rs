//! Error type shared across the Morpheus crates.

use crate::format::FormatId;

/// Errors produced by matrix construction, conversion, kernels and I/O.
#[derive(Debug)]
pub enum MorpheusError {
    /// Vector/matrix dimensions do not agree.
    ShapeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it was given.
        got: String,
    },
    /// A row/column index exceeds the matrix shape.
    IndexOutOfBounds {
        /// The offending index pair.
        index: (usize, usize),
        /// The matrix shape.
        shape: (usize, usize),
    },
    /// Structural invariant of a format violated (unsorted CSR rows,
    /// mismatched array lengths, non-monotone offsets, ...).
    InvalidStructure(String),
    /// A conversion to DIA/ELL-like formats would require padding beyond the
    /// configured fill limit (§II-B: "both formats can suffer from excessive
    /// padding").
    ExcessivePadding {
        /// Target format of the conversion.
        format: FormatId,
        /// Padded storage slots the conversion would allocate.
        padded: usize,
        /// Structural non-zeros of the source.
        nnz: usize,
        /// The configured limit, in slots.
        limit: usize,
    },
    /// An execution plan was applied to a matrix it was not built for
    /// (different format, shape or non-zero count).
    PlanMismatch {
        /// The matrix the plan was built for.
        expected: String,
        /// The matrix it was applied to.
        got: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// MatrixMarket (or model file) parse failure.
    Parse {
        /// 1-based line number where parsing failed.
        line: usize,
        /// Description of the failure.
        msg: String,
    },
}

impl std::fmt::Display for MorpheusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MorpheusError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            MorpheusError::IndexOutOfBounds { index, shape } => {
                write!(f, "index ({}, {}) out of bounds for {}x{} matrix", index.0, index.1, shape.0, shape.1)
            }
            MorpheusError::InvalidStructure(msg) => write!(f, "invalid matrix structure: {msg}"),
            MorpheusError::ExcessivePadding { format, padded, nnz, limit } => write!(
                f,
                "conversion to {format} needs {padded} padded slots for {nnz} non-zeros (limit {limit})"
            ),
            MorpheusError::PlanMismatch { expected, got } => {
                write!(f, "execution plan mismatch: plan built for {expected}, applied to {got}")
            }
            MorpheusError::Io(e) => write!(f, "i/o error: {e}"),
            MorpheusError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for MorpheusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MorpheusError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MorpheusError {
    fn from(e: std::io::Error) -> Self {
        MorpheusError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = MorpheusError::IndexOutOfBounds { index: (5, 6), shape: (4, 4) };
        assert!(e.to_string().contains("(5, 6)"));
        let e = MorpheusError::ExcessivePadding { format: FormatId::Ell, padded: 100, nnz: 3, limit: 50 };
        assert!(e.to_string().contains("ELL"));
        let e = MorpheusError::Parse { line: 3, msg: "bad".into() };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_source() {
        use std::error::Error;
        let e = MorpheusError::from(std::io::Error::other("x"));
        assert!(e.source().is_some());
    }
}
