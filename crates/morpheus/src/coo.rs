//! Coordinate (COO) format.

use crate::error::MorpheusError;
use crate::format::FormatId;
use crate::scalar::Scalar;
use crate::Result;

/// Coordinate-format sparse matrix (§II-B).
///
/// Each non-zero is stored as an explicit `(row, col, value)` triplet across
/// three parallel arrays. The paper notes COO gives "no guarantees in the
/// ordering of the elements"; this implementation *does* maintain the
/// invariant that entries are sorted by `(row, col)` with no duplicates,
/// which every constructor establishes. Sortedness is what lets the threaded
/// SpMV kernel partition entries at row boundaries without atomics.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix<V> {
    nrows: usize,
    ncols: usize,
    row_indices: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<V>,
}

impl<V: Scalar> CooMatrix<V> {
    /// An empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix { nrows, ncols, row_indices: Vec::new(), col_indices: Vec::new(), values: Vec::new() }
    }

    /// Builds from triplet arrays. Entries are sorted by `(row, col)`;
    /// duplicate coordinates are summed (the SuiteSparse convention for
    /// assembled matrices).
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: &[usize],
        cols: &[usize],
        vals: &[V],
    ) -> Result<Self> {
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(MorpheusError::InvalidStructure(format!(
                "triplet arrays disagree in length: rows={}, cols={}, vals={}",
                rows.len(),
                cols.len(),
                vals.len()
            )));
        }
        for (&r, &c) in rows.iter().zip(cols) {
            if r >= nrows || c >= ncols {
                return Err(MorpheusError::IndexOutOfBounds { index: (r, c), shape: (nrows, ncols) });
            }
        }
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_unstable_by_key(|&i| (rows[i], cols[i]));

        let mut row_indices = Vec::with_capacity(rows.len());
        let mut col_indices = Vec::with_capacity(rows.len());
        let mut values: Vec<V> = Vec::with_capacity(rows.len());
        for i in order {
            let (r, c, v) = (rows[i], cols[i], vals[i]);
            if let (Some(&lr), Some(&lc)) = (row_indices.last(), col_indices.last()) {
                if lr == r && lc == c {
                    let last = values.last_mut().expect("values tracks indices");
                    *last += v;
                    continue;
                }
            }
            row_indices.push(r);
            col_indices.push(c);
            values.push(v);
        }
        Ok(CooMatrix { nrows, ncols, row_indices, col_indices, values })
    }

    /// Builds from already-sorted, duplicate-free parts without re-sorting.
    /// Validates the invariants and rejects violations.
    pub fn from_sorted_parts(
        nrows: usize,
        ncols: usize,
        row_indices: Vec<usize>,
        col_indices: Vec<usize>,
        values: Vec<V>,
    ) -> Result<Self> {
        if row_indices.len() != col_indices.len() || row_indices.len() != values.len() {
            return Err(MorpheusError::InvalidStructure("COO arrays disagree in length".into()));
        }
        for i in 0..row_indices.len() {
            let (r, c) = (row_indices[i], col_indices[i]);
            if r >= nrows || c >= ncols {
                return Err(MorpheusError::IndexOutOfBounds { index: (r, c), shape: (nrows, ncols) });
            }
            if i > 0 {
                let prev = (row_indices[i - 1], col_indices[i - 1]);
                if prev >= (r, c) {
                    return Err(MorpheusError::InvalidStructure(format!(
                        "COO entries not strictly sorted at position {i}: {prev:?} >= {:?}",
                        (r, c)
                    )));
                }
            }
        }
        Ok(CooMatrix { nrows, ncols, row_indices, col_indices, values })
    }

    /// Builds from sorted, duplicate-free parts the caller guarantees are
    /// valid (conversion kernels produce them correct by construction).
    /// Debug builds run the full [`CooMatrix::from_sorted_parts`]
    /// validation; release builds skip the O(nnz) re-validation pass.
    pub(crate) fn from_sorted_parts_unchecked(
        nrows: usize,
        ncols: usize,
        row_indices: Vec<usize>,
        col_indices: Vec<usize>,
        values: Vec<V>,
    ) -> Self {
        #[cfg(debug_assertions)]
        {
            Self::from_sorted_parts(nrows, ncols, row_indices, col_indices, values)
                .expect("conversion kernel produced invalid COO")
        }
        #[cfg(not(debug_assertions))]
        {
            CooMatrix { nrows, ncols, row_indices, col_indices, values }
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Format identifier ([`FormatId::Coo`]).
    #[inline]
    pub fn format_id(&self) -> FormatId {
        FormatId::Coo
    }

    /// Row index array.
    #[inline]
    pub fn row_indices(&self) -> &[usize] {
        &self.row_indices
    }

    /// Column index array.
    #[inline]
    pub fn col_indices(&self) -> &[usize] {
        &self.col_indices
    }

    /// Value array.
    #[inline]
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Iterator over `(row, col, value)` triplets in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, V)> + '_ {
        (0..self.nnz()).map(move |i| (self.row_indices[i], self.col_indices[i], self.values[i]))
    }

    /// Bytes of heap storage the format occupies (used by the cost models).
    pub fn storage_bytes(&self) -> usize {
        self.nnz() * (2 * std::mem::size_of::<usize>() + std::mem::size_of::<V>())
    }

    /// Consumes the matrix, returning `(nrows, ncols, rows, cols, values)`.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<usize>, Vec<V>) {
        (self.nrows, self.ncols, self.row_indices, self.col_indices, self.values)
    }

    /// The transpose `Aᵀ` (entries re-sorted into the COO invariant).
    pub fn transpose(&self) -> CooMatrix<V> {
        CooMatrix::from_triplets(self.ncols, self.nrows, &self.col_indices, &self.row_indices, &self.values)
            .expect("transposing in-bounds entries stays in bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_sorts_and_sums_duplicates() {
        let m = CooMatrix::<f64>::from_triplets(3, 3, &[2, 0, 0, 2], &[1, 2, 2, 1], &[1.0, 2.0, 3.0, 4.0])
            .unwrap();
        assert_eq!(m.nnz(), 2);
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 2, 5.0), (2, 1, 5.0)]);
    }

    #[test]
    fn rejects_out_of_bounds() {
        let err = CooMatrix::<f64>::from_triplets(2, 2, &[2], &[0], &[1.0]).unwrap_err();
        assert!(matches!(err, MorpheusError::IndexOutOfBounds { .. }));
        let err = CooMatrix::<f64>::from_triplets(2, 2, &[0], &[5], &[1.0]).unwrap_err();
        assert!(matches!(err, MorpheusError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn rejects_length_mismatch() {
        let err = CooMatrix::<f64>::from_triplets(2, 2, &[0, 1], &[0], &[1.0]).unwrap_err();
        assert!(matches!(err, MorpheusError::InvalidStructure(_)));
    }

    #[test]
    fn from_sorted_parts_validates_order() {
        let err =
            CooMatrix::<f64>::from_sorted_parts(2, 2, vec![1, 0], vec![0, 0], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, MorpheusError::InvalidStructure(_)));
        // Duplicates also rejected.
        let err =
            CooMatrix::<f64>::from_sorted_parts(2, 2, vec![0, 0], vec![1, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, MorpheusError::InvalidStructure(_)));
    }

    #[test]
    fn empty_matrix() {
        let m = CooMatrix::<f64>::new(5, 7);
        assert_eq!(m.nrows(), 5);
        assert_eq!(m.ncols(), 7);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn storage_bytes_counts_triplets() {
        let m = CooMatrix::<f64>::from_triplets(2, 2, &[0, 1], &[0, 1], &[1.0, 2.0]).unwrap();
        assert_eq!(m.storage_bytes(), 2 * (8 + 8 + 8));
    }
}
