//! Numeric value types storable in sparse matrices.

use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Floating-point element type of a sparse matrix.
///
/// Implemented for `f32` and `f64`. The paper evaluates on real-valued
/// (double precision) matrices; `f32` is provided because mixed-precision
/// SpMV is a common downstream need.
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Lossy conversion from `f64` (used by generators and I/O).
    fn from_f64(v: f64) -> Self;
    /// Lossy conversion to `f64` (used by norms and reports).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root (for vector norms in the examples).
    fn sqrt(self) -> Self;
    /// Fused multiply-add: `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `true` if the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(f64::ZERO + f64::ONE, 1.0);
        assert_eq!(f32::ZERO + f32::ONE, 1.0f32);
    }

    #[test]
    fn conversions_roundtrip() {
        let v = 3.25f64;
        assert_eq!(f64::from_f64(v).to_f64(), v);
        assert_eq!(f32::from_f64(v).to_f64(), 3.25);
    }

    #[test]
    fn mul_add_matches() {
        assert_eq!(2.0f64.mul_add(3.0, 4.0), 10.0);
    }

    #[test]
    fn finiteness() {
        assert!(1.0f64.is_finite());
        assert!(!f64::NAN.is_finite());
        assert!(!f32::INFINITY.is_finite());
    }
}
