//! Cached per-matrix execution plans: the planned execution layer.
//!
//! The paper's amortisation argument (§IV) is that format selection pays
//! off over thousands of repeated SpMV iterations. The same holds for the
//! *schedule*: how rows are split across threads is a per-matrix artifact —
//! it depends only on the sparsity structure — yet per-call kernels
//! re-derive it on every invocation (`weighted_partition` over the row
//! lengths, `row_aligned_partition` re-searching the sorted COO entries).
//! An [`ExecPlan`] computes that schedule **once** and replays it on every
//! execution:
//!
//! * **CSR** — nnz-weighted row ranges (each worker gets a near equal
//!   number of non-zeros, taming skewed matrices);
//! * **COO** — row-aligned entry ranges, balanced by entry count;
//! * **DIA / ELL** — static row ranges (padded work is uniform per row);
//! * **HYB** — static row ranges for the ELL portion plus row-aligned
//!   entry ranges for the COO surplus;
//! * **HDC** — static row ranges for the DIA portion plus nnz-weighted row
//!   ranges for the CSR remainder;
//! * **BSR** — entry-weighted block-row ranges (a block row is the atomic
//!   unit: it owns `block_r` output rows);
//! * **BELL** — cell-balanced bucket segments (spans of one bucket's
//!   column-major slab).
//!
//! Construction reads the PR-2 [`Analysis`] artifact when one is supplied
//! (row-nnz histogram → weighted ranges and COO entry boundaries via prefix
//! sums) and otherwise only O(rows) metadata (`row_offsets` differences),
//! never a full matrix traversal — property-tested via
//! [`crate::analysis::passes`]. Executions run through
//! [`ThreadPool::parallel_for_plan`], which replays the precomputed ranges
//! with no scheduling state at all.
//!
//! Each row-range partition additionally carries one
//! [`KernelVariant`] per range, selected at build time from the analysis
//! bottleneck label (bandwidth / latency / imbalance, see
//! [`crate::spmv::variant`]) and the range's own shape — hub-row ranges and
//! tail-row ranges of the same matrix may run different bodies in one call.
//! Plans whose every variant is order-preserving
//! ([`ExecPlan::preserves_order`]) stay **bitwise identical** to the serial
//! kernels (same per-row accumulation order); a plan with
//! [`KernelVariant::Unrolled`] ranges reassociates row sums across SIMD
//! accumulators and is ULP-bounded instead. The detected [`CpuFeatures`]
//! are captured in the plan and re-checked by [`ExecPlan::matches`], so a
//! plan never replays under an ISA it was not built for.
//!
//! The plan also owns a reusable scratch buffer so iterative loops can run
//! `y = A x` without allocating an output per iteration
//! ([`ExecPlan::spmv_workspace`] / [`ExecPlan::spmm_workspace`]). For
//! *shared* plans — an `Arc<ExecPlan>` handed to many client threads by the
//! serving layer — the same machinery is available through a standalone
//! [`Workspace`]: every execution entry point takes `&self`, so any number
//! of threads can replay one plan concurrently, each bringing its own
//! per-thread `Workspace` ([`ExecPlan::spmv_into`] / [`ExecPlan::spmm_into`]).
//!
//! `core::Oracle` caches an `ExecPlan` alongside each `TuneDecision` under
//! the same structure-hash key, so `tune_and_spmv` / `tune_and_spmm` in an
//! iterative loop pay planning exactly once; `core::OracleService`
//! additionally shares each plan across client threads via `Arc`.

use crate::analysis::Analysis;
use crate::bell::BellSegment;
use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dynamic::DynamicMatrix;
use crate::error::MorpheusError;
use crate::format::FormatId;
use crate::hyb::HybMatrix;
use crate::scalar::Scalar;
use crate::spmv::threaded;
use crate::spmv::variant::{self, Bottleneck, CpuFeatures, KernelVariant};
use crate::{spmm, Result};
use morpheus_parallel::{row_aligned_partition, static_partition, weighted_partition_with, ThreadPool};
use std::ops::Range;

/// Precomputed thread schedule + reusable workspace for one matrix
/// structure, built once per (matrix structure, format, thread count).
///
/// See the [module docs](self) for what each format's plan holds. A plan is
/// tied to the matrix it was built from (format, shape, nnz — checked on
/// every execution) but not to a particular [`ThreadPool`]: executing on a
/// pool with fewer workers than the plan has parts just round-robins the
/// parts, still writing disjoint rows.
#[derive(Debug, Clone)]
pub struct ExecPlan<V: Scalar> {
    format: FormatId,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    threads: usize,
    parts: Parts,
    /// CPU feature set the variant bodies were dispatched under at build
    /// time. [`ExecPlan::matches`] refuses to replay the plan under a
    /// different set (a cached plan migrated across machines would
    /// otherwise run bodies selected for the wrong ISA).
    cpu: CpuFeatures,
    workspace: Workspace<V>,
}

/// A reusable output buffer for repeated plan executions.
///
/// A `Workspace` is deliberately separate from the plan so that one
/// *shared* plan (`Arc<ExecPlan>`, as handed out by the serving layer's
/// registered-matrix path) can be executed from many threads at once, each
/// thread owning its own workspace: the plan stays immutable, the buffer is
/// the only per-client state. The buffer grows to the largest output it has
/// produced and is never shrunk, so a steady-state request loop allocates
/// exactly once.
#[derive(Debug, Clone, Default)]
pub struct Workspace<V: Scalar> {
    buf: Vec<V>,
}

impl<V: Scalar> Workspace<V> {
    /// An empty workspace; the first execution sizes it.
    pub fn new() -> Self {
        Workspace { buf: Vec::new() }
    }

    /// The result of the most recent execution into this workspace.
    pub fn as_slice(&self) -> &[V] {
        &self.buf
    }

    /// Current buffer capacity in elements (allocation telemetry for
    /// zero-allocation tests).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Sizes the buffer to `len` (zeroing fresh elements) and runs `f` on
    /// it, returning the filled slice. The primitive under
    /// [`ExecPlan::spmv_into`] / [`ExecPlan::spmm_into`], public so callers
    /// with their own kernels (e.g. a serial execution path) get the same
    /// allocation reuse.
    pub fn run(&mut self, len: usize, f: impl FnOnce(&mut [V]) -> Result<()>) -> Result<&[V]> {
        self.buf.resize(len, V::ZERO);
        f(&mut self.buf)?;
        Ok(&self.buf)
    }
}

/// Gather/scatter scratch for coalescing `k` same-matrix SpMV requests
/// into one SpMM execution.
///
/// The batched serving path collects `k` queued right-hand sides for one
/// matrix, packs them into the row-major `ncols x k` block that
/// [`ExecPlan::spmm`] expects (`X[i*k + j] = column_j[i]`), executes once,
/// and unpacks row-major `nrows x k` results back into per-request output
/// vectors. Both blocks live here and grow to the largest batch they have
/// carried, so a steady-state coalescing loop allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct BatchWorkspace<V: Scalar> {
    x: Vec<V>,
    y: Vec<V>,
    nrows: usize,
    k: usize,
}

impl<V: Scalar> BatchWorkspace<V> {
    /// An empty batch workspace; the first batch sizes it.
    pub fn new() -> Self {
        BatchWorkspace::default()
    }

    /// Combined capacity of the gather and scatter blocks in elements
    /// (allocation telemetry for zero-allocation tests).
    pub fn capacity(&self) -> usize {
        self.x.capacity() + self.y.capacity()
    }

    /// Gathers `columns` (one equal-length input vector per coalesced
    /// request) into the row-major `ncols x k` block, sizes the output
    /// block to `nrows x k`, and runs `exec(x_block, y_block)` — typically
    /// a closure over [`ExecPlan::spmm`]. The results stay in the
    /// workspace for [`BatchWorkspace::scatter_into`] /
    /// [`BatchWorkspace::column`].
    ///
    /// Fails with [`MorpheusError::ShapeMismatch`] if the columns disagree
    /// in length or the batch is empty; `exec` errors propagate unchanged.
    pub fn run(
        &mut self,
        nrows: usize,
        columns: &[&[V]],
        exec: impl FnOnce(&[V], &mut [V]) -> Result<()>,
    ) -> Result<()> {
        let k = columns.len();
        let ncols = columns.first().map(|c| c.len()).ok_or_else(|| MorpheusError::ShapeMismatch {
            expected: "at least one right-hand side".into(),
            got: "an empty batch".into(),
        })?;
        if let Some(bad) = columns.iter().find(|c| c.len() != ncols) {
            return Err(MorpheusError::ShapeMismatch {
                expected: format!("every column of length {ncols}"),
                got: format!("a column of length {}", bad.len()),
            });
        }
        self.x.resize(ncols * k, V::ZERO);
        for (j, col) in columns.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                self.x[i * k + j] = v;
            }
        }
        self.y.resize(nrows * k, V::ZERO);
        self.nrows = nrows;
        self.k = k;
        exec(&self.x[..ncols * k], &mut self.y[..nrows * k])
    }

    /// Copies result column `j` (request `j`'s `y = A x_j`) of the most
    /// recent [`BatchWorkspace::run`] into `out`, replacing its contents.
    ///
    /// # Panics
    /// If `j` is not a column of the last batch.
    pub fn scatter_into(&self, j: usize, out: &mut Vec<V>) {
        out.clear();
        out.extend(self.column(j));
    }

    /// Iterates result column `j` of the most recent batch (strided view
    /// of the row-major `nrows x k` output block).
    ///
    /// # Panics
    /// If `j` is not a column of the last batch.
    pub fn column(&self, j: usize) -> impl Iterator<Item = V> + '_ {
        assert!(j < self.k, "column {j} out of range for a batch of {}", self.k);
        (0..self.nrows).map(move |i| self.y[i * self.k + j])
    }
}

/// Per-format precomputed ranges, each row-range partition paired with one
/// [`KernelVariant`] per range (hub-row ranges and tail-row ranges of the
/// same matrix may run different bodies in the same call). COO carries no
/// variants: its entry-parallel body is scalar-only.
#[derive(Debug, Clone)]
enum Parts {
    /// nnz-weighted row ranges.
    Csr { rows: Vec<Range<usize>>, variants: Vec<KernelVariant> },
    /// Row-aligned entry ranges.
    Coo { entries: Vec<Range<usize>> },
    /// Static row ranges (shared by DIA and ELL: padded work is uniform).
    Rows { rows: Vec<Range<usize>>, variants: Vec<KernelVariant> },
    /// ELL-portion row ranges + COO-surplus entry ranges.
    Hyb { rows: Vec<Range<usize>>, variants: Vec<KernelVariant>, coo_entries: Vec<Range<usize>> },
    /// DIA-portion row ranges + CSR-remainder weighted row ranges.
    Hdc {
        rows: Vec<Range<usize>>,
        dia_variants: Vec<KernelVariant>,
        csr_rows: Vec<Range<usize>>,
        csr_variants: Vec<KernelVariant>,
    },
    /// Entry-weighted BSR block-row ranges.
    Bsr { brows: Vec<Range<usize>>, variants: Vec<KernelVariant> },
    /// Cell-balanced BELL bucket segments (scalar-only bodies).
    Bell { segs: Vec<BellSegment> },
}

impl<V: Scalar> ExecPlan<V> {
    /// Builds the plan for `m` as it is currently stored, for a pool of
    /// `threads` workers.
    ///
    /// When `analysis` describes `m` (see [`Analysis::matches`]), weighted
    /// ranges and COO entry boundaries are derived from its row histogram —
    /// zero additional matrix traversals — and the per-range kernel
    /// variants are selected under its [`Analysis::bottleneck`] label.
    /// Without one, construction still touches only O(rows) metadata except
    /// for COO-style entry splits, which scan the sorted row index array
    /// once, and variant selection assumes the common bandwidth-bound case.
    pub fn build(m: &DynamicMatrix<V>, threads: usize, analysis: Option<&Analysis>) -> ExecPlan<V> {
        Self::build_inner(m, threads, analysis, None)
    }

    /// [`ExecPlan::build`] with every range forced to `forced` wherever the
    /// variant has a body for that portion of the format (per
    /// [`KernelVariant::applies_to`]), falling back to
    /// [`KernelVariant::Scalar`] elsewhere. This is the benchmark /
    /// cost-model probe entry point: it measures what a specific variant
    /// costs on a matrix regardless of what selection would pick.
    pub fn build_with_variant(
        m: &DynamicMatrix<V>,
        threads: usize,
        analysis: Option<&Analysis>,
        forced: KernelVariant,
    ) -> ExecPlan<V> {
        Self::build_inner(m, threads, analysis, Some(forced))
    }

    fn build_inner(
        m: &DynamicMatrix<V>,
        threads: usize,
        analysis: Option<&Analysis>,
        forced: Option<KernelVariant>,
    ) -> ExecPlan<V> {
        let threads = threads.max(1);
        let analysis = analysis.filter(|a| a.matches(m));
        let bottleneck = analysis.map(|a| a.bottleneck()).unwrap_or(Bottleneck::Bandwidth);
        // Per-portion forcing: a CSR(-remainder) range only takes the row
        // accumulation variants, a DIA/ELL(-portion) range only the blocked
        // body. Anything else degrades to the scalar reference.
        let force_csr = forced.map(|v| match v {
            KernelVariant::Unrolled | KernelVariant::Prefetch => v,
            _ => KernelVariant::Scalar,
        });
        let force_rows = forced.map(|v| match v {
            KernelVariant::Blocked => v,
            _ => KernelVariant::Scalar,
        });
        let csr_variants = |offs: &[usize], rows: &[Range<usize>]| -> Vec<KernelVariant> {
            match force_csr {
                Some(v) => vec![v; rows.len()],
                None => rows
                    .iter()
                    .map(|r| variant::select_csr(bottleneck, r.len(), offs[r.end] - offs[r.start]))
                    .collect(),
            }
        };
        let parts = match m {
            DynamicMatrix::Csr(a) => {
                let rows = csr_row_ranges(a, threads);
                let variants = csr_variants(a.row_offsets(), &rows);
                Parts::Csr { rows, variants }
            }
            DynamicMatrix::Coo(a) => Parts::Coo { entries: coo_entry_ranges(a, threads, analysis) },
            DynamicMatrix::Dia(a) => {
                let rows = static_partition(a.nrows(), threads);
                let ndiags = a.offsets().len();
                let variants = rows
                    .iter()
                    .map(|r| force_rows.unwrap_or_else(|| variant::select_dia(ndiags, r.len())))
                    .collect();
                Parts::Rows { rows, variants }
            }
            DynamicMatrix::Ell(a) => {
                let rows = static_partition(a.nrows(), threads);
                let width = a.width();
                let variants = rows
                    .iter()
                    .map(|r| force_rows.unwrap_or_else(|| variant::select_ell(width, r.len())))
                    .collect();
                Parts::Rows { rows, variants }
            }
            DynamicMatrix::Hyb(a) => {
                let rows = static_partition(a.nrows(), threads);
                let width = a.ell().width();
                let variants = rows
                    .iter()
                    .map(|r| force_rows.unwrap_or_else(|| variant::select_ell(width, r.len())))
                    .collect();
                Parts::Hyb { rows, variants, coo_entries: hyb_coo_entry_ranges(a, threads, analysis) }
            }
            DynamicMatrix::Hdc(a) => {
                let rows = static_partition(a.nrows(), threads);
                let ndiags = a.dia().offsets().len();
                let dia_variants = rows
                    .iter()
                    .map(|r| force_rows.unwrap_or_else(|| variant::select_dia(ndiags, r.len())))
                    .collect();
                let csr_rows = csr_row_ranges(a.csr(), threads);
                let csr_variants = csr_variants(a.csr().row_offsets(), &csr_rows);
                Parts::Hdc { rows, dia_variants, csr_rows, csr_variants }
            }
            DynamicMatrix::Bsr(a) => {
                let offs = a.block_row_offsets();
                let brows = weighted_partition_with(a.nblockrows(), threads, |br| offs[br + 1] - offs[br]);
                let cells = a.block_r() * a.block_c();
                let variants = brows
                    .iter()
                    .map(|r| force_rows.unwrap_or_else(|| variant::select_bsr(cells, r.len())))
                    .collect();
                Parts::Bsr { brows, variants }
            }
            DynamicMatrix::Bell(a) => Parts::Bell { segs: a.segments(threads) },
        };
        ExecPlan {
            format: m.format_id(),
            nrows: m.nrows(),
            ncols: m.ncols(),
            nnz: m.nnz(),
            threads,
            parts,
            cpu: CpuFeatures::detect(),
            workspace: Workspace::new(),
        }
    }

    /// Format the plan was built for.
    pub fn format(&self) -> FormatId {
        self.format
    }

    /// Worker count the ranges were balanced for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of precomputed ranges in the primary partition.
    pub fn num_parts(&self) -> usize {
        match &self.parts {
            Parts::Csr { rows, .. } | Parts::Rows { rows, .. } => rows.len(),
            Parts::Coo { entries } => entries.len(),
            Parts::Hyb { rows, .. } | Parts::Hdc { rows, .. } => rows.len(),
            Parts::Bsr { brows, .. } => brows.len(),
            Parts::Bell { segs } => segs.len(),
        }
    }

    /// Kernel variants of the primary partition, one per range in
    /// [`ExecPlan::num_parts`] order (empty for COO, whose entry-parallel
    /// body is scalar-only). HDC's CSR-remainder variants are folded into
    /// [`ExecPlan::dominant_variant`] but not exposed here.
    pub fn variants(&self) -> &[KernelVariant] {
        match &self.parts {
            Parts::Csr { variants, .. }
            | Parts::Rows { variants, .. }
            | Parts::Hyb { variants, .. }
            | Parts::Bsr { variants, .. } => variants,
            Parts::Coo { .. } | Parts::Bell { .. } => &[],
            Parts::Hdc { dia_variants, .. } => dia_variants,
        }
    }

    fn variant_slices(&self) -> (&[KernelVariant], &[KernelVariant]) {
        match &self.parts {
            Parts::Csr { variants, .. }
            | Parts::Rows { variants, .. }
            | Parts::Hyb { variants, .. }
            | Parts::Bsr { variants, .. } => (variants, &[]),
            Parts::Coo { .. } | Parts::Bell { .. } => (&[], &[]),
            Parts::Hdc { dia_variants, csr_variants, .. } => (dia_variants, csr_variants),
        }
    }

    /// The variant covering the most ranges across every partition of the
    /// plan (ties go to the more specialised body). [`KernelVariant::Scalar`]
    /// for COO plans and anywhere selection declined to specialise — this is
    /// what tuning reports and telemetry record as "the" variant of a plan.
    pub fn dominant_variant(&self) -> KernelVariant {
        let (a, b) = self.variant_slices();
        let mut counts = [0usize; KernelVariant::COUNT];
        for v in a.iter().chain(b) {
            counts[v.index()] += 1;
        }
        let mut best = KernelVariant::Scalar;
        let mut best_count = 0usize;
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 && c >= best_count {
                best = KernelVariant::from_index(i).unwrap_or(KernelVariant::Scalar);
                best_count = c;
            }
        }
        best
    }

    /// `true` when every range of the plan runs an order-preserving body,
    /// i.e. planned execution is bitwise identical to
    /// [`crate::spmv::spmv_serial`]. Plans containing
    /// [`KernelVariant::Unrolled`] ranges are instead ULP-bounded (the
    /// multi-accumulator reduction reassociates the per-row sum).
    pub fn preserves_order(&self) -> bool {
        let (a, b) = self.variant_slices();
        a.iter().chain(b).all(|v| v.preserves_order())
    }

    /// CPU feature set captured when the plan was built.
    pub fn cpu_features(&self) -> CpuFeatures {
        self.cpu
    }

    /// `true` when the plan was built for a matrix indistinguishable from
    /// `m` (same format, shape and non-zero count) **and** under the CPU
    /// feature set currently detected — a plan whose variant bodies were
    /// selected for a different ISA (e.g. deserialised on another machine)
    /// never replays. Cheap guard; executions check it and fail with
    /// [`MorpheusError::PlanMismatch`] otherwise.
    pub fn matches(&self, m: &DynamicMatrix<V>) -> bool {
        self.format == m.format_id()
            && self.nrows == m.nrows()
            && self.ncols == m.ncols()
            && self.nnz == m.nnz()
            && self.cpu == CpuFeatures::detect()
    }

    fn check(&self, m: &DynamicMatrix<V>) -> Result<()> {
        if !self.matches(m) {
            return Err(MorpheusError::PlanMismatch {
                expected: format!("{} {}x{} ({} nnz)", self.format, self.nrows, self.ncols, self.nnz),
                got: format!("{} {}x{} ({} nnz)", m.format_id(), m.nrows(), m.ncols(), m.nnz()),
            });
        }
        // Row-range partitions (CSR/DIA/ELL/HDC and the HYB ELL pass) tile
        // `0..nrows` disjointly by construction, so they are safe for *any*
        // matrix of this shape. Entry ranges (COO, HYB surplus) own rows
        // only via the sorted row array they were derived from — a
        // different same-shape/same-nnz matrix could have a range boundary
        // inside one of its rows, giving a `y` element two concurrent
        // writers. Re-validate the boundaries against the matrix actually
        // being executed (O(parts)), since this is a safe public API.
        let aligned = match (m, &self.parts) {
            (DynamicMatrix::Coo(a), Parts::Coo { entries }) => {
                entries.last().is_none_or(|r| r.end == a.nnz())
                    && boundaries_are_row_aligned(entries, a.row_indices())
            }
            (DynamicMatrix::Hyb(a), Parts::Hyb { coo_entries, .. }) => {
                // The surplus size is not covered by `matches` (it splits
                // the same total nnz differently per HYB), so check
                // coverage too.
                coo_entries.last().map_or(0, |r| r.end) == a.coo().nnz()
                    && boundaries_are_row_aligned(coo_entries, a.coo().row_indices())
            }
            // Block dims are a per-matrix parameter `matches` cannot see:
            // the same shape/nnz stored as 2x2 and 8x8 BSR have different
            // block-row counts, so verify the ranges tile *this* matrix's
            // block rows before the unsafe bodies index by them.
            (DynamicMatrix::Bsr(a), Parts::Bsr { brows, .. }) => {
                let mut end = 0usize;
                brows.iter().all(|r| {
                    let ok = r.start == end && r.end >= r.start;
                    end = r.end;
                    ok
                }) && end == a.nblockrows()
            }
            // Same for the bucket ladder: validate every segment against
            // this matrix's buckets and require full slab coverage.
            (DynamicMatrix::Bell(a), Parts::Bell { segs }) => {
                let covered: usize = segs.iter().map(|s| s.span.len()).sum();
                segs.iter().all(|s| a.buckets().get(s.bucket).is_some_and(|b| s.span.end <= b.rows().len()))
                    && covered == a.buckets().iter().map(|b| b.rows().len()).sum::<usize>()
            }
            _ => true,
        };
        if aligned {
            Ok(())
        } else {
            Err(MorpheusError::PlanMismatch {
                expected: "entry ranges aligned to this matrix's row boundaries".into(),
                got: "a same-shape matrix whose rows the plan's entry ranges would split".into(),
            })
        }
    }

    /// `y = A x` over the plan's precomputed ranges and kernel variants —
    /// the steady-state SpMV of an iterative loop. Bitwise identical to
    /// [`crate::spmv::spmv_serial`] whenever [`ExecPlan::preserves_order`]
    /// holds (always true for Scalar/Prefetch/Blocked plans); plans with
    /// [`KernelVariant::Unrolled`] ranges are ULP-bounded instead.
    pub fn spmv(&self, m: &DynamicMatrix<V>, x: &[V], y: &mut [V], pool: &ThreadPool) -> Result<()> {
        self.spmv_dispatch(m, x, y, Some(pool))
    }

    /// [`ExecPlan::spmv`] executed entirely on the calling thread: the same
    /// per-range variant bodies run sequentially in range order, producing
    /// results **bitwise identical** to the pooled execution (ranges write
    /// disjoint slices of `y`, so execution order cannot change any value).
    /// This is the serving layer's busy-pool fallback — when the pool is
    /// occupied by another client's batch, the request still runs the exact
    /// kernels its plan selected instead of degrading to the scalar
    /// reference (which plans with [`KernelVariant::Unrolled`] ranges would
    /// not match bitwise).
    pub fn spmv_unpooled(&self, m: &DynamicMatrix<V>, x: &[V], y: &mut [V]) -> Result<()> {
        self.spmv_dispatch(m, x, y, None)
    }

    fn spmv_dispatch(
        &self,
        m: &DynamicMatrix<V>,
        x: &[V],
        y: &mut [V],
        pool: Option<&ThreadPool>,
    ) -> Result<()> {
        self.check(m)?;
        crate::spmv::check_shapes(m, x, y)?;
        // No one-worker serial shortcut here: the ranged kernels execute
        // their ranges inline without a pool (or on a one-worker pool), so
        // the selected variant bodies engage even on single-core hosts.
        match (m, &self.parts) {
            (DynamicMatrix::Csr(a), Parts::Csr { rows, variants }) => {
                threaded::spmv_csr_ranges(a, x, y, pool, rows, variants)
            }
            (DynamicMatrix::Coo(a), Parts::Coo { entries }) => {
                threaded::spmv_coo_ranges(a, x, y, pool, entries)
            }
            (DynamicMatrix::Dia(a), Parts::Rows { rows, variants }) => {
                threaded::spmv_dia_ranges(a, x, y, pool, rows, variants)
            }
            (DynamicMatrix::Ell(a), Parts::Rows { rows, variants }) => {
                threaded::spmv_ell_ranges(a, x, y, pool, rows, variants)
            }
            (DynamicMatrix::Hyb(a), Parts::Hyb { rows, variants, coo_entries }) => {
                threaded::spmv_ell_ranges(a.ell(), x, y, pool, rows, variants);
                threaded::spmv_coo_acc_ranges(a.coo(), x, y, pool, coo_entries);
            }
            (DynamicMatrix::Hdc(a), Parts::Hdc { rows, dia_variants, csr_rows, csr_variants }) => {
                threaded::spmv_dia_ranges(a.dia(), x, y, pool, rows, dia_variants);
                threaded::spmv_csr_acc_ranges(a.csr(), x, y, pool, csr_rows, csr_variants);
            }
            (DynamicMatrix::Bsr(a), Parts::Bsr { brows, variants }) => {
                threaded::spmv_bsr_ranges(a, x, y, pool, brows, variants)
            }
            (DynamicMatrix::Bell(a), Parts::Bell { segs }) => threaded::spmv_bell_ranges(a, x, y, pool, segs),
            _ => unreachable!("plan/matrix format agreement checked above"),
        }
        Ok(())
    }

    /// `Y = A X` (`k` right-hand sides, row-major blocks) over the plan's
    /// ranges. Bitwise identical to [`crate::spmm::spmm_serial`].
    pub fn spmm(
        &self,
        m: &DynamicMatrix<V>,
        x: &[V],
        y: &mut [V],
        k: usize,
        pool: &ThreadPool,
    ) -> Result<()> {
        self.check(m)?;
        spmm::check_spmm_shapes(m, x, y, k)?;
        if pool.num_threads() == 1 {
            // See `spmv`: one worker ⇒ serial kernels, bitwise identical.
            return spmm::spmm_serial(m, x, y, k);
        }
        match (m, &self.parts) {
            (DynamicMatrix::Csr(a), Parts::Csr { rows, .. }) => {
                spmm::spmm_csr_ranges::<V, false>(a, x, y, k, pool, rows)
            }
            (DynamicMatrix::Coo(a), Parts::Coo { entries }) => {
                spmm::spmm_coo_ranges(a, x, y, k, pool, entries)
            }
            (DynamicMatrix::Dia(a), Parts::Rows { rows, .. }) => {
                spmm::spmm_dia_ranges(a, x, y, k, pool, rows)
            }
            (DynamicMatrix::Ell(a), Parts::Rows { rows, .. }) => {
                spmm::spmm_ell_ranges(a, x, y, k, pool, rows)
            }
            (DynamicMatrix::Hyb(a), Parts::Hyb { rows, coo_entries, .. }) => {
                spmm::spmm_ell_ranges(a.ell(), x, y, k, pool, rows);
                spmm::spmm_coo_acc_ranges(a.coo(), x, y, k, pool, coo_entries);
            }
            (DynamicMatrix::Hdc(a), Parts::Hdc { rows, csr_rows, .. }) => {
                spmm::spmm_dia_ranges(a.dia(), x, y, k, pool, rows);
                spmm::spmm_csr_ranges::<V, true>(a.csr(), x, y, k, pool, csr_rows);
            }
            (DynamicMatrix::Bsr(a), Parts::Bsr { brows, .. }) => {
                spmm::spmm_bsr_ranges(a, x, y, k, pool, brows)
            }
            (DynamicMatrix::Bell(a), Parts::Bell { segs }) => spmm::spmm_bell_ranges(a, x, y, k, pool, segs),
            _ => unreachable!("plan/matrix format agreement checked above"),
        }
        Ok(())
    }

    /// [`ExecPlan::spmv`] into a caller-owned [`Workspace`]: the shared-plan
    /// entry point. `&self` only, so an `Arc<ExecPlan>` serves any number of
    /// client threads, each with its own workspace; no output allocation
    /// once the workspace has reached size.
    pub fn spmv_into<'w>(
        &self,
        m: &DynamicMatrix<V>,
        x: &[V],
        ws: &'w mut Workspace<V>,
        pool: &ThreadPool,
    ) -> Result<&'w [V]> {
        ws.run(self.nrows, |y| self.spmv(m, x, y, pool))
    }

    /// [`ExecPlan::spmm`] into a caller-owned [`Workspace`] (see
    /// [`ExecPlan::spmv_into`]).
    pub fn spmm_into<'w>(
        &self,
        m: &DynamicMatrix<V>,
        x: &[V],
        k: usize,
        ws: &'w mut Workspace<V>,
        pool: &ThreadPool,
    ) -> Result<&'w [V]> {
        ws.run(self.nrows * k, |y| self.spmm(m, x, y, k, pool))
    }

    /// [`ExecPlan::spmv`] into the plan's own reusable workspace: no output
    /// allocation per iteration. The returned slice stays valid until the
    /// next workspace execution. Requires exclusive access to the plan; a
    /// shared plan uses [`ExecPlan::spmv_into`] with per-thread workspaces
    /// instead.
    pub fn spmv_workspace(&mut self, m: &DynamicMatrix<V>, x: &[V], pool: &ThreadPool) -> Result<&[V]> {
        let mut ws = std::mem::take(&mut self.workspace);
        let result = self.spmv_into(m, x, &mut ws, pool).map(|_| ());
        self.workspace = ws;
        result.map(|()| self.workspace.as_slice())
    }

    /// [`ExecPlan::spmm`] into the plan's own reusable workspace.
    pub fn spmm_workspace(
        &mut self,
        m: &DynamicMatrix<V>,
        x: &[V],
        k: usize,
        pool: &ThreadPool,
    ) -> Result<&[V]> {
        let mut ws = std::mem::take(&mut self.workspace);
        let result = self.spmm_into(m, x, k, &mut ws, pool).map(|_| ());
        self.workspace = ws;
        result.map(|()| self.workspace.as_slice())
    }
}

/// nnz-weighted row ranges straight from the CSR offsets — O(rows), no
/// weights vector materialised, no matrix traversal.
fn csr_row_ranges<V: Scalar>(a: &CsrMatrix<V>, threads: usize) -> Vec<Range<usize>> {
    let offs = a.row_offsets();
    weighted_partition_with(a.nrows(), threads, |r| offs[r + 1] - offs[r])
}

/// Entry ranges for sorted row-major entry storage, balanced by entry count
/// with boundaries at row ends: weighted row ranges from the per-row counts,
/// mapped to entry offsets by prefix summation. Empty ranges are dropped
/// (mirroring [`row_aligned_partition`]'s no-empty-chunk contract).
fn entry_ranges_from_counts(
    n_rows: usize,
    threads: usize,
    count_of: impl Fn(usize) -> usize,
) -> Vec<Range<usize>> {
    let row_ranges = weighted_partition_with(n_rows, threads, &count_of);
    let mut out = Vec::with_capacity(row_ranges.len());
    let mut offset = 0usize;
    for rr in row_ranges {
        let len: usize = rr.map(&count_of).sum();
        if len > 0 {
            out.push(offset..offset + len);
        }
        offset += len;
    }
    out
}

/// `true` when every interior range boundary falls on a row change of the
/// sorted row array — the invariant that gives each output row exactly one
/// writer. O(parts): the soundness of the histogram-derived fast path must
/// not rest on a caller-supplied `Analysis` being honest, since its
/// `row_hist` is a public field and the planned kernels race (UB) if a
/// range splits a row.
fn boundaries_are_row_aligned(ranges: &[Range<usize>], rows: &[usize]) -> bool {
    ranges.iter().all(|r| r.start == 0 || r.start >= rows.len() || rows[r.start] != rows[r.start - 1])
}

/// Row-aligned COO entry ranges. With a matching [`Analysis`] whose
/// histogram counts every stored entry (no explicit-zero elision), the
/// boundaries come from histogram prefix sums — zero matrix traversals —
/// and are then validated against the actual row array in O(parts);
/// otherwise (or if a doctored histogram misplaces a boundary) the sorted
/// row array is scanned once.
fn coo_entry_ranges<V: Scalar>(
    a: &CooMatrix<V>,
    threads: usize,
    analysis: Option<&Analysis>,
) -> Vec<Range<usize>> {
    if let Some(an) = analysis {
        // Trust the histogram only if it covers exactly the stored entries
        // (right row count, entries summing to nnz — a sum short of nnz
        // would silently drop entries, one beyond it would index past the
        // arrays) *and* its prefix boundaries land on real row changes.
        let sum: usize = an.row_hist.iter().map(|&c| c as usize).sum();
        if an.row_hist.len() == a.nrows() && sum == a.nnz() {
            let ranges = entry_ranges_from_counts(an.row_hist.len(), threads, |r| an.row_hist[r] as usize);
            if boundaries_are_row_aligned(&ranges, a.row_indices()) {
                return ranges;
            }
        }
    }
    row_aligned_partition(a.row_indices(), threads)
}

/// Row-aligned entry ranges for a HYB's COO surplus. The surplus of row `r`
/// is everything beyond the ELL width, so with a matching whole-matrix
/// [`Analysis`] the per-row surplus is `row_hist[r] - width` — again no
/// traversal. The derivation is verified against the actual surplus size
/// and falls back to scanning the surplus row array if it disagrees (e.g.
/// a hand-built HYB that does not fill ELL first).
fn hyb_coo_entry_ranges<V: Scalar>(
    a: &HybMatrix<V>,
    threads: usize,
    analysis: Option<&Analysis>,
) -> Vec<Range<usize>> {
    let surplus = a.coo();
    if let Some(an) = analysis {
        if an.row_hist.len() == a.nrows() && an.stats.nnz == a.nnz() {
            let width = a.ell().width();
            let spill = |r: usize| (an.row_hist[r] as usize).saturating_sub(width);
            let total: usize = (0..an.row_hist.len()).map(spill).sum();
            if total == surplus.nnz() {
                let ranges = entry_ranges_from_counts(an.row_hist.len(), threads, spill);
                if boundaries_are_row_aligned(&ranges, surplus.row_indices()) {
                    return ranges;
                }
            }
        }
    }
    row_aligned_partition(surplus.row_indices(), threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::ConvertOptions;
    use crate::format::ALL_FORMATS;
    use crate::spmv::spmv_serial;
    use crate::test_util::random_coo;

    fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    fn ulp_close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                let scale = 1.0 + x.abs().max(y.abs());
                (x - y).abs() <= 1e-12 * scale
            })
    }

    #[test]
    fn planned_spmv_matches_serial_for_every_format() {
        // Order-preserving plans (and scalar-forced plans always) are
        // bitwise identical to serial; plans that selected the unrolled
        // body reassociate row sums and must stay within a tight ULP bound.
        let pool = ThreadPool::new(4);
        let opts = ConvertOptions { min_padded_allowance: 1 << 22, ..Default::default() };
        for seed in 0..3u64 {
            let base = DynamicMatrix::from(random_coo::<f64>(130, 110, 1600, seed));
            let x: Vec<f64> = (0..110).map(|i| (i as f64 * 0.73).sin()).collect();
            for &fmt in &ALL_FORMATS {
                let m = base.to_format(fmt, &opts).unwrap();
                let analysis = Analysis::of(&m, opts.true_diag_alpha);
                let mut y_ref = vec![0.0; 130];
                spmv_serial(&m, &x, &mut y_ref).unwrap();
                let scalar =
                    ExecPlan::build_with_variant(&m, pool.num_threads(), None, KernelVariant::Scalar);
                assert!(scalar.preserves_order(), "{fmt}: scalar-forced plan must preserve order");
                let mut y = vec![f64::NAN; 130];
                scalar.spmv(&m, &x, &mut y, &pool).unwrap();
                assert!(bitwise_eq(&y, &y_ref), "{fmt} seed {seed}: scalar-forced");
                for plan in [
                    ExecPlan::build(&m, pool.num_threads(), None),
                    ExecPlan::build(&m, pool.num_threads(), Some(&analysis)),
                ] {
                    let mut y = vec![f64::NAN; 130];
                    plan.spmv(&m, &x, &mut y, &pool).unwrap();
                    if plan.preserves_order() {
                        assert!(bitwise_eq(&y, &y_ref), "{fmt} seed {seed}");
                    } else {
                        assert!(ulp_close(&y, &y_ref), "{fmt} seed {seed}: unrolled plan out of bound");
                    }
                }
            }
        }
    }

    #[test]
    fn forced_variants_respect_per_portion_applicability() {
        let pool = ThreadPool::new(3);
        let opts = ConvertOptions { min_padded_allowance: 1 << 22, ..Default::default() };
        let base = DynamicMatrix::from(random_coo::<f64>(400, 380, 4000, 7));
        let x: Vec<f64> = (0..380).map(|i| (i as f64 * 0.19).cos()).collect();
        for &fmt in &ALL_FORMATS {
            let m = base.to_format(fmt, &opts).unwrap();
            let mut y_ref = vec![0.0; 400];
            spmv_serial(&m, &x, &mut y_ref).unwrap();
            for forced in crate::spmv::variant::ALL_VARIANTS {
                let plan = ExecPlan::build_with_variant(&m, pool.num_threads(), None, forced);
                // Every range carries either the forced variant (where the
                // format portion has such a body) or the scalar fallback.
                let (a, b) = plan.variant_slices();
                assert!(
                    a.iter().chain(b).all(|&v| v == forced || v == KernelVariant::Scalar),
                    "{fmt} {forced}: unexpected variant mix {a:?} {b:?}"
                );
                let mut y = vec![f64::NAN; 400];
                plan.spmv(&m, &x, &mut y, &pool).unwrap();
                if plan.preserves_order() {
                    assert!(bitwise_eq(&y, &y_ref), "{fmt} {forced}");
                } else {
                    assert!(ulp_close(&y, &y_ref), "{fmt} {forced}");
                }
            }
        }
        // COO has no variant bodies at all.
        let coo = base.to_format(FormatId::Coo, &opts).unwrap();
        let plan = ExecPlan::build_with_variant(&coo, 3, None, KernelVariant::Unrolled);
        assert!(plan.variants().is_empty());
        assert_eq!(plan.dominant_variant(), KernelVariant::Scalar);
    }

    #[test]
    fn plan_from_a_different_cpu_feature_set_is_rejected() {
        let m = DynamicMatrix::from(random_coo::<f64>(30, 30, 150, 3));
        let plan = ExecPlan::build(&m, 2, None);
        assert_eq!(plan.cpu_features(), CpuFeatures::detect());
        assert!(plan.matches(&m));
        let mut foreign = plan.clone();
        foreign.cpu = CpuFeatures { avx2: !foreign.cpu.avx2, ..foreign.cpu };
        assert!(!foreign.matches(&m), "a plan built under another ISA must not replay");
        let pool = ThreadPool::new(2);
        let x = vec![1.0; 30];
        let mut y = vec![0.0; 30];
        assert!(matches!(foreign.spmv(&m, &x, &mut y, &pool), Err(MorpheusError::PlanMismatch { .. })));
    }

    #[test]
    fn variant_selection_follows_the_analysis_bottleneck() {
        // A heavily skewed matrix (one hub row) classifies as
        // imbalance-bound, whose CSR rule keeps the unrolled accumulator
        // body on the dense ranges; a sparse uniform matrix with ~2 nnz per
        // row stays on the scalar reference (below the unroll threshold).
        let mut rows = vec![0usize; 600];
        let mut cols: Vec<usize> = (0..600).collect();
        for r in 1..400 {
            rows.push(r);
            cols.push(r % 590);
        }
        let vals = vec![1.0f64; rows.len()];
        let hub =
            DynamicMatrix::from(crate::CooMatrix::from_triplets(400, 600, &rows, &cols, &vals).unwrap())
                .to_format(FormatId::Csr, &ConvertOptions::default())
                .unwrap();
        let an = Analysis::of(&hub, 0.2);
        assert_eq!(an.bottleneck(), Bottleneck::Imbalance);
        let plan = ExecPlan::build(&hub, 4, Some(&an));
        assert!(
            plan.variants().contains(&KernelVariant::Unrolled),
            "hub plan should unroll its dense ranges: {:?}",
            plan.variants()
        );

        // A tridiagonal matrix is bandwidth-bound (3 diagonals, no
        // scatter) with ~3 nnz per row — below the unroll threshold, so
        // every range stays on the scalar reference.
        let n = 500usize;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for i in 0..n {
            for j in [i.wrapping_sub(1), i, i + 1] {
                if j < n {
                    rows.push(i);
                    cols.push(j);
                }
            }
        }
        let vals = vec![1.0f64; rows.len()];
        let tri = DynamicMatrix::from(crate::CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
            .to_format(FormatId::Csr, &ConvertOptions::default())
            .unwrap();
        let an = Analysis::of(&tri, 0.2);
        assert_eq!(an.bottleneck(), Bottleneck::Bandwidth);
        let plan = ExecPlan::build(&tri, 4, Some(&an));
        assert!(
            plan.variants().iter().all(|&v| v == KernelVariant::Scalar),
            "short rows must stay scalar: {:?}",
            plan.variants()
        );
        assert_eq!(plan.dominant_variant(), KernelVariant::Scalar);
        assert!(plan.preserves_order());
    }

    #[test]
    fn analysis_and_scan_built_plans_agree_on_entry_boundaries() {
        // COO + HYB are where the Analysis-derived prefix sums replace a
        // scan of the entries; both derivations must produce row-aligned
        // chunks covering everything (they need not be identical chunks,
        // but here both balance by entry count so they are).
        let opts = ConvertOptions::default();
        let base = DynamicMatrix::from(random_coo::<f64>(300, 300, 4000, 11));
        for fmt in [FormatId::Coo, FormatId::Hyb] {
            let m = base.to_format(fmt, &opts).unwrap();
            let analysis = Analysis::of(&m, opts.true_diag_alpha);
            let with = ExecPlan::<f64>::build(&m, 4, Some(&analysis));
            let without = ExecPlan::<f64>::build(&m, 4, None);
            let ranges = |p: &ExecPlan<f64>| match &p.parts {
                Parts::Coo { entries } => entries.clone(),
                Parts::Hyb { coo_entries, .. } => coo_entries.clone(),
                _ => unreachable!(),
            };
            let (rw, ro) = (ranges(&with), ranges(&without));
            let covered: usize = rw.iter().map(|r| r.len()).sum();
            let covered_scan: usize = ro.iter().map(|r| r.len()).sum();
            assert_eq!(covered, covered_scan, "{fmt}: both derivations must cover every entry");
        }
    }

    #[test]
    fn plan_rejects_foreign_matrices() {
        let opts = ConvertOptions::default();
        let m = DynamicMatrix::from(random_coo::<f64>(40, 40, 200, 1));
        let plan = ExecPlan::build(&m, 2, None);
        let other_fmt = m.to_format(FormatId::Csr, &opts).unwrap();
        let other_shape = DynamicMatrix::from(random_coo::<f64>(41, 40, 200, 1));
        let pool = ThreadPool::new(2);
        let x = vec![1.0; 40];
        let mut y = vec![0.0; 40];
        assert!(matches!(plan.spmv(&other_fmt, &x, &mut y, &pool), Err(MorpheusError::PlanMismatch { .. })));
        let mut y41 = vec![0.0; 41];
        assert!(plan.spmv(&other_shape, &x, &mut y41, &pool).is_err());
        assert!(plan.spmv(&m, &x, &mut y, &pool).is_ok());
    }

    #[test]
    fn same_shape_matrix_with_different_row_layout_is_rejected() {
        // A and B agree on format, shape and nnz — `matches` cannot tell
        // them apart — but B's rows are distributed so that A's entry
        // ranges would split B's row 1, handing y[1] two concurrent
        // writers. Execution must refuse instead of racing.
        let a = DynamicMatrix::from(
            crate::CooMatrix::from_triplets(2, 4, &[0, 0, 1, 1], &[0, 1, 0, 1], &[1.0f64; 4]).unwrap(),
        );
        let b = DynamicMatrix::from(
            crate::CooMatrix::from_triplets(2, 4, &[0, 1, 1, 1], &[0, 0, 1, 2], &[1.0f64; 4]).unwrap(),
        );
        let plan = ExecPlan::build(&a, 2, None);
        assert!(plan.matches(&b), "the cheap guard cannot distinguish A from B");
        let pool = ThreadPool::new(2);
        let x = vec![1.0f64; 4];
        let mut y = vec![0.0f64; 2];
        assert!(matches!(plan.spmv(&b, &x, &mut y, &pool), Err(MorpheusError::PlanMismatch { .. })));
        let xk = vec![1.0f64; 8];
        let mut yk = vec![0.0f64; 4];
        assert!(matches!(plan.spmm(&b, &xk, &mut yk, 2, &pool), Err(MorpheusError::PlanMismatch { .. })));
        // A itself still executes.
        assert!(plan.spmv(&a, &x, &mut y, &pool).is_ok());
    }

    #[test]
    fn workspace_execution_matches_and_reuses_allocation() {
        let pool = ThreadPool::new(3);
        let m = DynamicMatrix::from(random_coo::<f64>(60, 50, 500, 5));
        let x: Vec<f64> = (0..50).map(|i| 0.5 + i as f64).collect();
        let mut y_ref = vec![0.0; 60];
        spmv_serial(&m, &x, &mut y_ref).unwrap();
        let mut plan = ExecPlan::build(&m, pool.num_threads(), None);
        let first_ptr = {
            let y = plan.spmv_workspace(&m, &x, &pool).unwrap();
            assert!(bitwise_eq(y, &y_ref));
            y.as_ptr()
        };
        // Second run reuses the same buffer.
        let second_ptr = plan.spmv_workspace(&m, &x, &pool).unwrap().as_ptr();
        assert_eq!(first_ptr, second_ptr, "workspace must be reused, not reallocated");

        // SpMM workspace resizes and still matches serial.
        let k = 3usize;
        let xk: Vec<f64> = (0..50 * k).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut ymm_ref = vec![0.0; 60 * k];
        spmm::spmm_serial(&m, &xk, &mut ymm_ref, k).unwrap();
        let ymm = plan.spmm_workspace(&m, &xk, k, &pool).unwrap();
        assert!(bitwise_eq(ymm, &ymm_ref));
    }

    #[test]
    fn plan_construction_adds_zero_matrix_traversals() {
        let opts = ConvertOptions::default();
        let base = DynamicMatrix::from(random_coo::<f64>(200, 200, 3000, 9));
        for &fmt in &ALL_FORMATS {
            let Ok(m) = base.to_format(fmt, &opts) else { continue };
            let analysis = Analysis::of(&m, opts.true_diag_alpha);
            crate::analysis::passes::reset();
            let plan = ExecPlan::build(&m, 8, Some(&analysis));
            assert_eq!(
                crate::analysis::passes::count(),
                0,
                "{fmt}: plan construction must not traverse the matrix"
            );
            assert_eq!(plan.format(), fmt);
            assert!(plan.num_parts() >= 1);
        }
    }

    #[test]
    fn doctored_histogram_cannot_split_a_row() {
        // rows [0,0,0,1]: an adversarial histogram [2,2] sums to the right
        // nnz but would place an entry boundary inside row 0 — which would
        // give y[0] two concurrent writers. Construction must detect the
        // misalignment and fall back to scanning the real row array.
        let m = DynamicMatrix::from(
            crate::CooMatrix::from_triplets(2, 4, &[0, 0, 0, 1], &[0, 1, 2, 3], &[1.0f64; 4]).unwrap(),
        );
        // Misaligned split, under-counting, over-counting and wrong-length
        // histograms must all be rejected in favour of the real boundaries.
        for hist in [vec![2, 2], vec![3, 0], vec![3, 2], vec![4]] {
            let mut an = Analysis::of(&m, 0.2);
            an.row_hist = hist.clone();
            assert!(an.matches(&m), "the doctored artifact still passes the cheap guard");
            let plan = ExecPlan::build(&m, 2, Some(&an));
            let Parts::Coo { entries } = &plan.parts else { panic!("COO plan expected") };
            assert_eq!(
                entries.as_slice(),
                &[0..3, 3..4],
                "hist {hist:?}: must fall back to the true row boundaries"
            );
            let pool = ThreadPool::new(2);
            let x = vec![1.0f64; 4];
            let mut y = vec![f64::NAN; 2];
            plan.spmv(&m, &x, &mut y, &pool).unwrap();
            assert_eq!(y, vec![3.0, 1.0]);
        }
    }

    #[test]
    fn shared_plan_executes_from_many_threads_with_private_workspaces() {
        // The serving-layer shape: one Arc'd plan + matrix, N client
        // threads, each with its own Workspace. Every client must see the
        // serial result bitwise, and a client's second request must not
        // reallocate its workspace.
        let pool = ThreadPool::new(2);
        let m = std::sync::Arc::new(DynamicMatrix::from(random_coo::<f64>(90, 80, 900, 21)));
        let plan = std::sync::Arc::new(ExecPlan::build(&m, pool.num_threads(), None));
        let x: Vec<f64> = (0..80).map(|i| (i as f64 * 0.31).cos()).collect();
        let mut y_ref = vec![0.0; 90];
        spmv_serial(&*m, &x, &mut y_ref).unwrap();

        std::thread::scope(|s| {
            for _ in 0..4 {
                let (m, plan, x, y_ref) = (m.clone(), plan.clone(), x.clone(), y_ref.clone());
                let pool = &pool;
                s.spawn(move || {
                    let mut ws = Workspace::new();
                    for round in 0..3 {
                        let before = ws.capacity();
                        let y = plan.spmv_into(&m, &x, &mut ws, pool).unwrap();
                        assert!(bitwise_eq(y, &y_ref), "round {round}");
                        if round > 0 {
                            assert_eq!(ws.capacity(), before, "steady state must not reallocate");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn batch_workspace_coalesced_spmm_matches_per_request_spmv_bitwise() {
        let pool = ThreadPool::new(3);
        let m = DynamicMatrix::from(random_coo::<f64>(70, 60, 700, 13));
        let plan = ExecPlan::build(&m, pool.num_threads(), None);
        let k = 4usize;
        let columns: Vec<Vec<f64>> =
            (0..k).map(|j| (0..60).map(|i| 0.25 + ((i * (j + 2) + 1) % 9) as f64 - 4.0).collect()).collect();
        let refs: Vec<&[f64]> = columns.iter().map(|c| c.as_slice()).collect();

        let mut bw = BatchWorkspace::new();
        bw.run(70, &refs, |x, y| plan.spmm(&m, x, y, k, &pool)).unwrap();

        let mut out = Vec::new();
        for (j, col) in columns.iter().enumerate() {
            let mut y_ref = vec![f64::NAN; 70];
            plan.spmv(&m, col, &mut y_ref, &pool).unwrap();
            bw.scatter_into(j, &mut out);
            assert!(bitwise_eq(&out, &y_ref), "column {j}");
        }

        // Steady state: a same-shape batch must not grow the blocks.
        let cap = bw.capacity();
        bw.run(70, &refs, |x, y| plan.spmm(&m, x, y, k, &pool)).unwrap();
        assert_eq!(bw.capacity(), cap, "same-shape batch must reuse the blocks");

        // Ragged and empty batches are shape errors, not silent truncation.
        let short = vec![1.0f64; 59];
        let ragged: Vec<&[f64]> = vec![&columns[0], &short];
        assert!(matches!(bw.run(70, &ragged, |_, _| Ok(())), Err(MorpheusError::ShapeMismatch { .. })));
        assert!(matches!(bw.run(70, &[], |_, _| Ok(())), Err(MorpheusError::ShapeMismatch { .. })));
    }

    #[test]
    fn degenerate_shapes_plan_and_execute() {
        let pool = ThreadPool::new(4);
        for (nr, nc) in [(0usize, 0usize), (5, 5), (0, 4), (4, 0), (1, 6)] {
            let m = DynamicMatrix::from(CooMatrix::<f64>::new(nr, nc));
            let plan = ExecPlan::build(&m, pool.num_threads(), None);
            let x = vec![1.0; nc];
            let mut y = vec![f64::NAN; nr];
            plan.spmv(&m, &x, &mut y, &pool).unwrap();
            assert!(y.iter().all(|&v| v == 0.0), "{nr}x{nc}");
        }
    }
}
