//! Conversions between all pairs of storage formats.
//!
//! COO is the canonical interchange format: every format converts losslessly
//! to COO (modulo explicit zeros in DIA padding, see below), and every format
//! is buildable from COO. Direct fast paths exist for CSR ↔ COO.
//!
//! DIA and ELL "can suffer from excessive padding" (§II-B); conversions into
//! them are guarded by [`ConvertOptions::max_fill`] and fail with
//! [`MorpheusError::ExcessivePadding`] rather than exhausting memory — the
//! behaviour the profiling harness relies on to mark a format non-viable for
//! a matrix.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dia::DiaMatrix;
use crate::ell::{EllMatrix, ELL_PAD};
use crate::error::MorpheusError;
use crate::format::FormatId;
use crate::hdc::{true_diag_threshold, HdcMatrix, DEFAULT_TRUE_DIAG_ALPHA};
use crate::hyb::{optimal_hyb_width, HybMatrix, HybSplit};
use crate::scalar::Scalar;
use crate::Result;

/// Options controlling format conversions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvertOptions {
    /// Maximum padded slots per structural non-zero allowed when converting
    /// into DIA or ELL. Conversions needing more fail with
    /// [`MorpheusError::ExcessivePadding`].
    pub max_fill: f64,
    /// Padding allowance floor in slots, so small matrices may always
    /// convert regardless of fill ratio.
    pub min_padded_allowance: usize,
    /// HYB split-width policy.
    pub hyb_split: HybSplit,
    /// True-diagonal fraction for HDC splitting and the `NTD` statistic.
    pub true_diag_alpha: f64,
}

impl Default for ConvertOptions {
    fn default() -> Self {
        ConvertOptions {
            max_fill: 20.0,
            min_padded_allowance: 4096,
            hyb_split: HybSplit::Auto,
            true_diag_alpha: DEFAULT_TRUE_DIAG_ALPHA,
        }
    }
}

impl ConvertOptions {
    fn padded_allowance(&self, nnz: usize) -> usize {
        ((self.max_fill * nnz as f64) as usize).max(self.min_padded_allowance)
    }
}

// ---------------------------------------------------------------------------
// COO -> *
// ---------------------------------------------------------------------------

/// COO → CSR. O(nnz); relies on COO's sorted invariant.
pub fn coo_to_csr<V: Scalar>(coo: &CooMatrix<V>) -> CsrMatrix<V> {
    let nrows = coo.nrows();
    let mut offsets = vec![0usize; nrows + 1];
    for &r in coo.row_indices() {
        offsets[r + 1] += 1;
    }
    for i in 0..nrows {
        offsets[i + 1] += offsets[i];
    }
    CsrMatrix::from_parts(nrows, coo.ncols(), offsets, coo.col_indices().to_vec(), coo.values().to_vec())
        .expect("sorted COO always yields valid CSR")
}

/// CSR → COO. O(nnz).
pub fn csr_to_coo<V: Scalar>(csr: &CsrMatrix<V>) -> CooMatrix<V> {
    let mut rows = Vec::with_capacity(csr.nnz());
    for r in 0..csr.nrows() {
        rows.extend(std::iter::repeat_n(r, csr.row_nnz(r)));
    }
    CooMatrix::from_sorted_parts(
        csr.nrows(),
        csr.ncols(),
        rows,
        csr.col_indices().to_vec(),
        csr.values().to_vec(),
    )
    .expect("valid CSR always yields sorted COO")
}

/// COO → DIA. Fails if padding would exceed the configured fill limit.
pub fn coo_to_dia<V: Scalar>(coo: &CooMatrix<V>, opts: &ConvertOptions) -> Result<DiaMatrix<V>> {
    let (nrows, ncols) = (coo.nrows(), coo.ncols());
    if nrows == 0 || ncols == 0 || coo.nnz() == 0 {
        return Ok(DiaMatrix::new(nrows, ncols));
    }
    // Mark which of the nrows + ncols - 1 possible diagonals are populated.
    let ndiag_slots = nrows + ncols - 1;
    let mut present = vec![false; ndiag_slots];
    for (r, c, _) in coo.iter() {
        present[c + nrows - 1 - r] = true;
    }
    let offsets: Vec<isize> = present
        .iter()
        .enumerate()
        .filter(|(_, &p)| p)
        .map(|(slot, _)| slot as isize - (nrows as isize - 1))
        .collect();
    let padded = offsets.len() * nrows;
    let allowance = opts.padded_allowance(coo.nnz());
    if padded > allowance {
        return Err(MorpheusError::ExcessivePadding {
            format: FormatId::Dia,
            padded,
            nnz: coo.nnz(),
            limit: allowance,
        });
    }
    // Map diagonal slot -> dense diagonal index.
    let mut slot_to_diag = vec![usize::MAX; ndiag_slots];
    for (d, &off) in offsets.iter().enumerate() {
        slot_to_diag[(off + nrows as isize - 1) as usize] = d;
    }
    let mut values = vec![V::ZERO; padded];
    for (r, c, v) in coo.iter() {
        let d = slot_to_diag[c + nrows - 1 - r];
        values[d * nrows + r] = v;
    }
    DiaMatrix::from_parts(nrows, ncols, offsets, values, coo.nnz())
}

/// DIA → COO. Padding slots and explicit zeros are elided (they are
/// indistinguishable in DIA storage).
pub fn dia_to_coo<V: Scalar>(dia: &DiaMatrix<V>) -> CooMatrix<V> {
    let nrows = dia.nrows();
    let mut triplets: Vec<(usize, usize, V)> = Vec::with_capacity(dia.nnz());
    for d in 0..dia.ndiags() {
        let off = dia.offsets()[d];
        let diag = dia.diagonal(d);
        for i in dia.diag_row_range(d) {
            let v = diag[i];
            if v != V::ZERO {
                triplets.push((i, (i as isize + off) as usize, v));
            }
        }
    }
    triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
    let rows: Vec<usize> = triplets.iter().map(|t| t.0).collect();
    let cols: Vec<usize> = triplets.iter().map(|t| t.1).collect();
    let vals: Vec<V> = triplets.iter().map(|t| t.2).collect();
    CooMatrix::from_sorted_parts(nrows, dia.ncols(), rows, cols, vals)
        .expect("distinct (row, col) per DIA slot")
}

/// COO → ELL. Fails if padding would exceed the configured fill limit.
pub fn coo_to_ell<V: Scalar>(coo: &CooMatrix<V>, opts: &ConvertOptions) -> Result<EllMatrix<V>> {
    let (nrows, ncols) = (coo.nrows(), coo.ncols());
    if nrows == 0 || coo.nnz() == 0 {
        return Ok(EllMatrix::new(nrows, ncols));
    }
    let mut row_len = vec![0usize; nrows];
    for &r in coo.row_indices() {
        row_len[r] += 1;
    }
    let width = row_len.iter().copied().max().unwrap_or(0);
    let padded = width * nrows;
    let allowance = opts.padded_allowance(coo.nnz());
    if padded > allowance {
        return Err(MorpheusError::ExcessivePadding {
            format: FormatId::Ell,
            padded,
            nnz: coo.nnz(),
            limit: allowance,
        });
    }
    let mut cols = vec![ELL_PAD; padded];
    let mut vals = vec![V::ZERO; padded];
    let mut cursor = vec![0usize; nrows];
    for (r, c, v) in coo.iter() {
        let k = cursor[r];
        cols[k * nrows + r] = c;
        vals[k * nrows + r] = v;
        cursor[r] += 1;
    }
    EllMatrix::from_parts(nrows, ncols, width, cols, vals)
}

/// ELL → COO. Padding slots are elided; explicit zeros survive (ELL tracks
/// padding via the sentinel, not the value).
pub fn ell_to_coo<V: Scalar>(ell: &EllMatrix<V>) -> CooMatrix<V> {
    let nrows = ell.nrows();
    let mut triplets: Vec<(usize, usize, V)> = Vec::with_capacity(ell.nnz());
    for i in 0..nrows {
        for k in 0..ell.width() {
            if let Some((c, v)) = ell.entry(i, k) {
                triplets.push((i, c, v));
            }
        }
    }
    // Rows ascend in the outer loop and columns ascend within a row by the
    // ELL invariant, so triplets are already sorted.
    let rows: Vec<usize> = triplets.iter().map(|t| t.0).collect();
    let cols: Vec<usize> = triplets.iter().map(|t| t.1).collect();
    let vals: Vec<V> = triplets.iter().map(|t| t.2).collect();
    CooMatrix::from_sorted_parts(nrows, ell.ncols(), rows, cols, vals).expect("ELL rows are sorted")
}

/// COO → HYB under the given split policy. The ELL portion never exceeds the
/// fill limit by construction when the policy is [`HybSplit::Auto`]; a fixed
/// width is still guarded.
pub fn coo_to_hyb<V: Scalar>(coo: &CooMatrix<V>, opts: &ConvertOptions) -> Result<HybMatrix<V>> {
    let (nrows, ncols) = (coo.nrows(), coo.ncols());
    let mut row_len = vec![0usize; nrows];
    for &r in coo.row_indices() {
        row_len[r] += 1;
    }
    let k = match opts.hyb_split {
        HybSplit::Auto => optimal_hyb_width(&row_len, std::mem::size_of::<V>()),
        HybSplit::Width(w) => w,
    };
    if let HybSplit::Width(_) = opts.hyb_split {
        let padded = k * nrows;
        let allowance = opts.padded_allowance(coo.nnz());
        if padded > allowance {
            return Err(MorpheusError::ExcessivePadding {
                format: FormatId::Hyb,
                padded,
                nnz: coo.nnz(),
                limit: allowance,
            });
        }
    }
    let mut ell_cols = vec![ELL_PAD; k * nrows];
    let mut ell_vals = vec![V::ZERO; k * nrows];
    let mut coo_rows = Vec::new();
    let mut coo_cols = Vec::new();
    let mut coo_vals = Vec::new();
    let mut cursor = vec![0usize; nrows];
    for (r, c, v) in coo.iter() {
        let pos = cursor[r];
        cursor[r] += 1;
        if pos < k {
            ell_cols[pos * nrows + r] = c;
            ell_vals[pos * nrows + r] = v;
        } else {
            coo_rows.push(r);
            coo_cols.push(c);
            coo_vals.push(v);
        }
    }
    let ell = EllMatrix::from_parts(nrows, ncols, k, ell_cols, ell_vals)?;
    let coo_part = CooMatrix::from_sorted_parts(nrows, ncols, coo_rows, coo_cols, coo_vals)?;
    HybMatrix::from_parts(ell, coo_part)
}

/// HYB → COO, merging the two portions.
pub fn hyb_to_coo<V: Scalar>(hyb: &HybMatrix<V>) -> CooMatrix<V> {
    let mut triplets: Vec<(usize, usize, V)> = Vec::with_capacity(hyb.nnz());
    let ell = hyb.ell();
    for i in 0..ell.nrows() {
        for k in 0..ell.width() {
            if let Some((c, v)) = ell.entry(i, k) {
                triplets.push((i, c, v));
            }
        }
    }
    triplets.extend(hyb.coo().iter());
    triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
    let rows: Vec<usize> = triplets.iter().map(|t| t.0).collect();
    let cols: Vec<usize> = triplets.iter().map(|t| t.1).collect();
    let vals: Vec<V> = triplets.iter().map(|t| t.2).collect();
    CooMatrix::from_sorted_parts(hyb.nrows(), hyb.ncols(), rows, cols, vals)
        .expect("HYB portions hold disjoint coordinates")
}

/// COO → HDC: true diagonals (population ≥ `alpha * min(M, N)`) go to DIA,
/// the remainder to CSR.
pub fn coo_to_hdc<V: Scalar>(coo: &CooMatrix<V>, opts: &ConvertOptions) -> Result<HdcMatrix<V>> {
    let (nrows, ncols) = (coo.nrows(), coo.ncols());
    if nrows == 0 || ncols == 0 || coo.nnz() == 0 {
        return HdcMatrix::from_parts(
            DiaMatrix::new(nrows, ncols),
            CsrMatrix::new(nrows, ncols),
            opts.true_diag_alpha,
        );
    }
    let threshold = true_diag_threshold(nrows, ncols, opts.true_diag_alpha);
    let ndiag_slots = nrows + ncols - 1;
    let mut pop = vec![0u32; ndiag_slots];
    for (r, c, _) in coo.iter() {
        pop[c + nrows - 1 - r] += 1;
    }
    let mut slot_to_diag = vec![usize::MAX; ndiag_slots];
    let mut offsets = Vec::new();
    for (slot, &p) in pop.iter().enumerate() {
        if p as usize >= threshold {
            slot_to_diag[slot] = offsets.len();
            offsets.push(slot as isize - (nrows as isize - 1));
        }
    }
    let padded = offsets.len() * nrows;
    let allowance = opts.padded_allowance(coo.nnz());
    if padded > allowance {
        return Err(MorpheusError::ExcessivePadding {
            format: FormatId::Hdc,
            padded,
            nnz: coo.nnz(),
            limit: allowance,
        });
    }
    let mut dia_vals = vec![V::ZERO; padded];
    let mut dia_nnz = 0usize;
    let mut csr_rows = Vec::new();
    let mut csr_cols = Vec::new();
    let mut csr_vals = Vec::new();
    for (r, c, v) in coo.iter() {
        let d = slot_to_diag[c + nrows - 1 - r];
        if d != usize::MAX {
            dia_vals[d * nrows + r] = v;
            dia_nnz += 1;
        } else {
            csr_rows.push(r);
            csr_cols.push(c);
            csr_vals.push(v);
        }
    }
    let dia = DiaMatrix::from_parts(nrows, ncols, offsets, dia_vals, dia_nnz)?;
    let csr_coo = CooMatrix::from_sorted_parts(nrows, ncols, csr_rows, csr_cols, csr_vals)?;
    let csr = coo_to_csr(&csr_coo);
    HdcMatrix::from_parts(dia, csr, opts.true_diag_alpha)
}

/// HDC → COO, merging the two portions. Explicit zeros stored in the DIA
/// portion are elided (same caveat as [`dia_to_coo`]).
pub fn hdc_to_coo<V: Scalar>(hdc: &HdcMatrix<V>) -> CooMatrix<V> {
    let mut triplets: Vec<(usize, usize, V)> = Vec::with_capacity(hdc.nnz());
    triplets.extend(dia_to_coo(hdc.dia()).iter());
    triplets.extend(csr_to_coo(hdc.csr()).iter());
    triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
    let rows: Vec<usize> = triplets.iter().map(|t| t.0).collect();
    let cols: Vec<usize> = triplets.iter().map(|t| t.1).collect();
    let vals: Vec<V> = triplets.iter().map(|t| t.2).collect();
    CooMatrix::from_sorted_parts(hdc.nrows(), hdc.ncols(), rows, cols, vals)
        .expect("HDC portions hold disjoint coordinates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::random_coo;

    fn sample_coo() -> CooMatrix<f64> {
        // [1 0 2 0]
        // [0 3 0 0]
        // [4 0 5 6]
        // [0 0 0 7]
        CooMatrix::from_triplets(
            4,
            4,
            &[0, 0, 1, 2, 2, 2, 3],
            &[0, 2, 1, 0, 2, 3, 3],
            &[1., 2., 3., 4., 5., 6., 7.],
        )
        .unwrap()
    }

    #[test]
    fn coo_csr_roundtrip() {
        let coo = sample_coo();
        let csr = coo_to_csr(&coo);
        assert_eq!(csr.row_offsets(), &[0, 2, 3, 6, 7]);
        let back = csr_to_coo(&csr);
        assert_eq!(back, coo);
    }

    #[test]
    fn coo_dia_roundtrip() {
        let coo = sample_coo();
        let dia = coo_to_dia(&coo, &ConvertOptions::default()).unwrap();
        assert_eq!(dia.nnz(), coo.nnz());
        // Diagonals present: offsets j - i in {0, 2, -2, 1}.
        assert_eq!(dia.offsets(), &[-2, 0, 1, 2]);
        let back = dia_to_coo(&dia);
        assert_eq!(back, coo);
    }

    #[test]
    fn coo_ell_roundtrip() {
        let coo = sample_coo();
        let ell = coo_to_ell(&coo, &ConvertOptions::default()).unwrap();
        assert_eq!(ell.width(), 3);
        assert_eq!(ell.nnz(), coo.nnz());
        let back = ell_to_coo(&ell);
        assert_eq!(back, coo);
    }

    #[test]
    fn coo_hyb_roundtrip() {
        let coo = sample_coo();
        for split in [HybSplit::Auto, HybSplit::Width(1), HybSplit::Width(2)] {
            let opts = ConvertOptions { hyb_split: split, ..Default::default() };
            let hyb = coo_to_hyb(&coo, &opts).unwrap();
            assert_eq!(hyb.nnz(), coo.nnz(), "{split:?}");
            let back = hyb_to_coo(&hyb);
            assert_eq!(back, coo, "{split:?}");
        }
    }

    #[test]
    fn coo_hdc_roundtrip() {
        let coo = sample_coo();
        let opts = ConvertOptions { true_diag_alpha: 0.5, ..Default::default() };
        let hdc = coo_to_hdc(&coo, &opts).unwrap();
        assert_eq!(hdc.nnz(), coo.nnz());
        // Main diagonal has 4 entries >= ceil(0.5*4) = 2 -> true diagonal.
        assert!(hdc.dia().ndiags() >= 1);
        assert!(hdc.dia().offsets().contains(&0));
        let back = hdc_to_coo(&hdc);
        assert_eq!(back, coo);
    }

    #[test]
    fn hyb_auto_split_spills_long_row() {
        // 63 rows with 1 entry, one row with 40 entries.
        let n = 64usize;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for r in 0..n - 1 {
            rows.push(r);
            cols.push(r % 8);
            vals.push(1.0);
        }
        for c in 0..40 {
            rows.push(n - 1);
            cols.push(c);
            vals.push(2.0);
        }
        let coo = CooMatrix::<f64>::from_triplets(n, n, &rows, &cols, &vals).unwrap();
        let hyb = coo_to_hyb(&coo, &ConvertOptions::default()).unwrap();
        assert_eq!(hyb.split_width(), 1);
        assert_eq!(hyb.coo().nnz(), 39);
        assert_eq!(hyb.nnz(), coo.nnz());
    }

    #[test]
    fn ell_conversion_rejects_excessive_padding() {
        // One dense row in an otherwise hypersparse large matrix.
        let n = 20_000usize;
        let mut rows = vec![0usize; 1000];
        let cols: Vec<usize> = (0..1000).collect();
        let vals = vec![1.0f64; 1000];
        rows.extend([n - 1]);
        let mut cols = cols;
        cols.push(0);
        let mut vals = vals;
        vals.push(1.0);
        let coo = CooMatrix::<f64>::from_triplets(n, n, &rows, &cols, &vals).unwrap();
        let err = coo_to_ell(&coo, &ConvertOptions::default()).unwrap_err();
        assert!(matches!(err, MorpheusError::ExcessivePadding { format: FormatId::Ell, .. }));
    }

    #[test]
    fn dia_conversion_rejects_excessive_padding() {
        // Random scatter -> many distinct diagonals.
        let coo = random_coo::<f64>(3000, 3000, 600, 7);
        let opts = ConvertOptions { max_fill: 2.0, min_padded_allowance: 16, ..Default::default() };
        let err = coo_to_dia(&coo, &opts).unwrap_err();
        assert!(matches!(err, MorpheusError::ExcessivePadding { format: FormatId::Dia, .. }));
    }

    #[test]
    fn empty_matrix_conversions() {
        let coo = CooMatrix::<f64>::new(5, 5);
        let opts = ConvertOptions::default();
        assert_eq!(coo_to_csr(&coo).nnz(), 0);
        assert_eq!(coo_to_dia(&coo, &opts).unwrap().nnz(), 0);
        assert_eq!(coo_to_ell(&coo, &opts).unwrap().nnz(), 0);
        assert_eq!(coo_to_hyb(&coo, &opts).unwrap().nnz(), 0);
        assert_eq!(coo_to_hdc(&coo, &opts).unwrap().nnz(), 0);
    }

    #[test]
    fn random_roundtrips_preserve_entries() {
        for seed in 0..5u64 {
            let coo = random_coo::<f64>(60, 45, 300, seed);
            // Random scatter populates most diagonals; raise the padding
            // allowance so the DIA leg of the roundtrip is exercised too.
            let opts = ConvertOptions { min_padded_allowance: 1 << 20, ..Default::default() };
            assert_eq!(csr_to_coo(&coo_to_csr(&coo)), coo, "csr seed {seed}");
            assert_eq!(dia_to_coo(&coo_to_dia(&coo, &opts).unwrap()), coo, "dia seed {seed}");
            assert_eq!(ell_to_coo(&coo_to_ell(&coo, &opts).unwrap()), coo, "ell seed {seed}");
            assert_eq!(hyb_to_coo(&coo_to_hyb(&coo, &opts).unwrap()), coo, "hyb seed {seed}");
            assert_eq!(hdc_to_coo(&coo_to_hdc(&coo, &opts).unwrap()), coo, "hdc seed {seed}");
        }
    }
}
