//! The shared one-pass [`Analysis`] artifact.
//!
//! Before this module existed, the tuning pipeline traversed a matrix once
//! per question it asked: `stats_of` for the feature vector,
//! `structure_hash` for the decision-cache key, and each converter's
//! planning step (ELL width, DIA offset discovery, HYB split, HDC diagonal
//! selection) rescanned the matrix again. [`Analysis`] computes the two
//! histograms everything derives from — the row-nnz histogram and the
//! diagonal-population array — plus the structure hash and the reduced
//! [`MatrixStats`] in **one fused pass** over the active format, and every
//! downstream consumer reads the artifact instead of the matrix:
//!
//! * feature extraction: `FeatureVector::from_stats(&analysis.stats)`,
//! * the Oracle's cache key: [`Analysis::structure_hash`],
//! * conversion planning: [`Analysis::ell_width`], [`Analysis::dia_offsets`],
//!   [`Analysis::hyb_width`], [`Analysis::true_diag_slots`].
//!
//! On multi-core hosts the pass is parallelised over the process pool
//! ([`Analysis::of_auto`]): entry ranges are partitioned at row boundaries
//! (so the row histogram needs no atomics) while one worker computes the
//! structure hash concurrently.
//!
//! # Instrumentation: the traversal counter
//!
//! [`passes`] maintains a thread-local count of *analysis-class full
//! traversals* — walks of the whole matrix performed to answer an analysis
//! or planning question (constructing an `Analysis`, `stats_of`,
//! `structure_hash`, `row_nnz_histogram`, converter planning scans, the
//! machine model's locality walk). Conversion *fill* passes are not counted:
//! they are inherent to producing the target arrays. Tests use the counter
//! to assert the reuse contract: once an `Analysis` exists, feature
//! extraction, cache keying and conversion planning add **zero** further
//! traversals.

use crate::dynamic::DynamicMatrix;
use crate::scalar::Scalar;
use crate::stats::{accumulate_hists, reduce_stats, MatrixStats};
use morpheus_parallel::{
    global_pool, row_aligned_partition, static_partition, weighted_partition, SharedSlice, ThreadPool,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Matrices with at least this many structural non-zeros analyse on the
/// process pool under [`Analysis::of_auto`]; smaller ones run serially
/// (fork/join overhead would dominate).
pub const PARALLEL_ANALYSIS_THRESHOLD: usize = 1 << 14;

/// Thread-local counter of analysis-class full matrix traversals.
///
/// See the [module docs](self) for what counts as a traversal. The counter
/// is thread-local so concurrently running tests do not observe each
/// other's work; parallel passes record **once** on the calling thread.
pub mod passes {
    use std::cell::Cell;

    thread_local! {
        static TRAVERSALS: Cell<u64> = const { Cell::new(0) };
    }

    /// Traversals recorded on this thread since the last [`reset`].
    pub fn count() -> u64 {
        TRAVERSALS.with(|c| c.get())
    }

    /// Zeroes this thread's counter.
    pub fn reset() {
        TRAVERSALS.with(|c| c.set(0));
    }

    /// Records one full traversal. Instrumentation hook for this workspace's
    /// analysis producers; not intended for end users.
    #[doc(hidden)]
    pub fn record_traversal() {
        TRAVERSALS.with(|c| c.set(c.get() + 1));
    }
}

/// One-pass structural analysis of a matrix, shared by feature extraction,
/// cache keying and conversion planning. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Rows of the analysed matrix.
    pub nrows: usize,
    /// Columns of the analysed matrix.
    pub ncols: usize,
    /// What the source matrix *reported* as its nnz. For DIA/HDC storage
    /// this can exceed [`MatrixStats::nnz`]: explicit stored zeros count
    /// toward the format's nnz but are elided from the structural
    /// histograms (they are indistinguishable from padding). Used by
    /// [`Analysis::matches`] so an artifact still recognises the matrix it
    /// was computed from.
    pub source_nnz: usize,
    /// Structural non-zeros per row.
    pub row_hist: Vec<u32>,
    /// Structural non-zeros per diagonal, indexed `col + nrows - 1 - row`
    /// (all `nrows + ncols - 1` diagonals; empty for degenerate shapes).
    pub diag_pop: Vec<u32>,
    /// Table-I statistics reduced from the histograms — bitwise equal to
    /// [`crate::stats::stats_of`] on the same matrix.
    pub stats: MatrixStats,
    /// The matrix's [`DynamicMatrix::structure_hash`].
    pub structure_hash: u64,
}

impl Analysis {
    /// Analyses `m` serially in one fused pass.
    pub fn of<V: Scalar>(m: &DynamicMatrix<V>, alpha: f64) -> Analysis {
        Self::build(m, alpha, None, None)
    }

    /// Analyses `m` on `pool`, partitioning the histogram accumulation at
    /// row boundaries and computing the structure hash on a dedicated
    /// worker. Identical output to [`Analysis::of`].
    pub fn of_parallel<V: Scalar>(m: &DynamicMatrix<V>, alpha: f64, pool: &ThreadPool) -> Analysis {
        Self::build(m, alpha, None, Some(pool))
    }

    /// Analyses `m`, choosing the process pool when the matrix is large
    /// enough to amortise fork/join overhead.
    pub fn of_auto<V: Scalar>(m: &DynamicMatrix<V>, alpha: f64) -> Analysis {
        if m.nnz() >= PARALLEL_ANALYSIS_THRESHOLD {
            Self::of_parallel(m, alpha, global_pool())
        } else {
            Self::of(m, alpha)
        }
    }

    /// [`Analysis::of_auto`] reusing an already-computed
    /// [`DynamicMatrix::structure_hash`] instead of re-hashing.
    ///
    /// The caller must pass the hash of **this** matrix in its **current**
    /// format (debug builds verify it) — the Oracle uses this after keying
    /// its decision cache, so a cache miss pays for the hash exactly once.
    pub fn of_auto_with_hash<V: Scalar>(m: &DynamicMatrix<V>, alpha: f64, hash: u64) -> Analysis {
        debug_assert_eq!(hash, m.structure_hash_raw(), "precomputed hash disagrees with the matrix");
        if m.nnz() >= PARALLEL_ANALYSIS_THRESHOLD {
            Self::build(m, alpha, Some(hash), Some(global_pool()))
        } else {
            Self::build(m, alpha, Some(hash), None)
        }
    }

    fn build<V: Scalar>(
        m: &DynamicMatrix<V>,
        alpha: f64,
        hash: Option<u64>,
        pool: Option<&ThreadPool>,
    ) -> Analysis {
        passes::record_traversal();
        let (nrows, ncols) = (m.nrows(), m.ncols());
        let slots = if nrows == 0 || ncols == 0 { 0 } else { nrows + ncols - 1 };
        let mut row_hist = vec![0u32; nrows];
        let mut diag_pop = vec![0u32; slots];

        let hash = match pool {
            Some(pool) if pool.num_threads() > 1 && m.nnz() > 0 => {
                accumulate_parallel(m, &mut row_hist, &mut diag_pop, hash, pool)
            }
            _ => {
                accumulate_hists(m, &mut row_hist, &mut diag_pop);
                hash.unwrap_or_else(|| m.structure_hash_raw())
            }
        };

        let stats = reduce_stats(nrows, ncols, &row_hist, &diag_pop, alpha);
        Analysis { nrows, ncols, source_nnz: m.nnz(), row_hist, diag_pop, stats, structure_hash: hash }
    }

    /// `true` when the artifact plausibly describes `m` (shape and the
    /// source-reported nnz match). A cheap guard for planning code handed a
    /// caller-supplied analysis — it cannot prove the sparsity *pattern*
    /// matches, which is why the conversion kernels additionally validate
    /// plan-derived indices during their fill passes.
    pub fn matches<V: Scalar>(&self, m: &DynamicMatrix<V>) -> bool {
        self.nrows == m.nrows() && self.ncols == m.ncols() && self.source_nnz == m.nnz()
    }

    /// Structural non-zeros.
    pub fn nnz(&self) -> usize {
        self.stats.nnz
    }

    /// ELL slab width the matrix needs (its maximum row occupancy).
    pub fn ell_width(&self) -> usize {
        self.stats.row_nnz_max
    }

    /// Offsets of every populated diagonal, ascending — the DIA planning
    /// answer, read straight from the histogram.
    pub fn dia_offsets(&self) -> Vec<isize> {
        dia_offsets_from_pop(&self.diag_pop, self.nrows)
    }

    /// Storage-optimal HYB split width for entries of `value_bytes` each.
    pub fn hyb_width(&self, value_bytes: usize) -> usize {
        crate::hyb::optimal_hyb_width_u32(&self.row_hist, value_bytes)
    }

    /// Diagonal slots meeting `threshold` (the HDC "true diagonal" set),
    /// ascending, plus the number of entries they hold.
    pub fn true_diag_slots(&self, threshold: usize) -> (Vec<usize>, usize) {
        true_diag_slots_from_pop(&self.diag_pop, threshold)
    }

    /// What limits this matrix's SpMV: bandwidth, latency or imbalance —
    /// derived from the Table-I statistics already reduced in the
    /// artifact (zero further traversals). Drives per-range
    /// [`crate::KernelVariant`] selection in [`crate::ExecPlan`]; the
    /// serving layer's `FeatureVector::bottleneck` goes through the same
    /// [`crate::Bottleneck::classify`], so the two labels cannot diverge.
    pub fn bottleneck(&self) -> crate::spmv::variant::Bottleneck {
        let s = &self.stats;
        crate::spmv::variant::Bottleneck::classify(
            s.nrows,
            s.ncols,
            s.nnz,
            s.row_nnz_mean,
            s.row_nnz_max,
            s.row_nnz_std,
            s.ndiags,
        )
    }
}

/// Populated-diagonal offsets (ascending) from a diagonal-population
/// histogram. The single reduction both [`Analysis::dia_offsets`] and the
/// converters' unplanned rescans go through, so the planned and unplanned
/// DIA layouts cannot diverge.
pub(crate) fn dia_offsets_from_pop(diag_pop: &[u32], nrows: usize) -> Vec<isize> {
    let base = nrows as isize - 1;
    diag_pop.iter().enumerate().filter(|(_, &p)| p > 0).map(|(slot, _)| slot as isize - base).collect()
}

/// True-diagonal slots (ascending) and the entries they hold, from a
/// diagonal-population histogram — shared by [`Analysis::true_diag_slots`]
/// and the converters' unplanned rescans.
pub(crate) fn true_diag_slots_from_pop(diag_pop: &[u32], threshold: usize) -> (Vec<usize>, usize) {
    let mut slots = Vec::new();
    let mut entries = 0usize;
    for (slot, &p) in diag_pop.iter().enumerate() {
        if p as usize >= threshold {
            slots.push(slot);
            entries += p as usize;
        }
    }
    (slots, entries)
}

/// Cap on per-worker partial diagonal histograms: total scratch stays under
/// `PARTIAL_CAP_U32 * 4` bytes (64 MiB) regardless of matrix shape.
const PARTIAL_CAP_U32: usize = 16 << 20;

/// Parallel histogram accumulation for row-partitionable formats. Returns
/// the structure hash (computed on worker 0 while the rest accumulate, or
/// passed through). Falls back to the serial walk for formats whose layouts
/// do not partition cheaply at row boundaries.
fn accumulate_parallel<V: Scalar>(
    m: &DynamicMatrix<V>,
    row_hist: &mut [u32],
    diag_pop: &mut [u32],
    hash: Option<u64>,
    pool: &ThreadPool,
) -> u64 {
    // Row-disjoint work chunks per format; `None` = no cheap partition.
    let chunks: Option<Vec<std::ops::Range<usize>>> = match m {
        DynamicMatrix::Coo(a) => Some(row_aligned_partition(a.row_indices(), pool.num_threads())),
        DynamicMatrix::Csr(a) => Some(weighted_partition(&a.row_nnz_counts(), pool.num_threads())),
        DynamicMatrix::Ell(a) => Some(static_partition(a.nrows(), pool.num_threads())),
        _ => None,
    };
    let Some(chunks) = chunks else {
        accumulate_hists(m, row_hist, diag_pop);
        return hash.unwrap_or_else(|| m.structure_hash_raw());
    };

    let slots = diag_pop.len();
    let n_partials = chunks.len().min((PARTIAL_CAP_U32 / slots.max(1)).max(1));
    let partials: Vec<Mutex<Vec<u32>>> = (0..n_partials).map(|_| Mutex::new(vec![0u32; slots])).collect();
    let shared_rows = SharedSlice::new(row_hist);
    let hash_cell = AtomicU64::new(0);
    let need_hash = hash.is_none();
    let next = std::sync::atomic::AtomicUsize::new(0);

    pool.run_on_all(&|w| {
        if w == 0 && need_hash {
            hash_cell.store(m.structure_hash_raw(), Ordering::SeqCst);
        }
        loop {
            let p = next.fetch_add(1, Ordering::Relaxed);
            if p >= chunks.len() {
                break;
            }
            let chunk = chunks[p].clone();
            // Workers may outnumber partials; lock striping keeps the
            // scratch memory bounded while staying effectively uncontended.
            let mut partial = partials[p % n_partials].lock().expect("partial lock");
            // SAFETY: chunks are row-disjoint, so each row-histogram slot
            // has exactly one writer.
            unsafe {
                match m {
                    DynamicMatrix::Coo(a) => {
                        let nrows = a.nrows();
                        let (rows, cols) = (a.row_indices(), a.col_indices());
                        for i in chunk {
                            shared_rows.add(rows[i], 1);
                            partial[cols[i] + nrows - 1 - rows[i]] += 1;
                        }
                    }
                    DynamicMatrix::Csr(a) => {
                        let nrows = a.nrows();
                        for r in chunk {
                            shared_rows.set(r, a.row_nnz(r) as u32);
                            for &c in a.row_cols(r) {
                                partial[c + nrows - 1 - r] += 1;
                            }
                        }
                    }
                    DynamicMatrix::Ell(a) => {
                        let nrows = a.nrows();
                        let cols = a.col_indices();
                        for r in chunk {
                            let mut n = 0u32;
                            for k in 0..a.width() {
                                let c = cols[k * nrows + r];
                                if c == crate::ell::ELL_PAD {
                                    break;
                                }
                                n += 1;
                                partial[c + nrows - 1 - r] += 1;
                            }
                            shared_rows.set(r, n);
                        }
                    }
                    _ => unreachable!("non-partitionable formats take the serial path"),
                }
            }
        }
    });

    for partial in &partials {
        let partial = partial.lock().expect("partial lock");
        for (acc, &p) in diag_pop.iter_mut().zip(partial.iter()) {
            *acc += p;
        }
    }
    hash.unwrap_or_else(|| hash_cell.load(Ordering::SeqCst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::ConvertOptions;
    use crate::format::ALL_FORMATS;
    use crate::stats::stats_of;
    use crate::test_util::random_coo;

    #[test]
    fn analysis_matches_stats_and_hash_for_every_format() {
        let coo = random_coo::<f64>(60, 45, 700, 5);
        let base = DynamicMatrix::from(coo);
        let opts = ConvertOptions { min_padded_allowance: 1 << 22, ..Default::default() };
        for &fmt in &ALL_FORMATS {
            let m = base.to_format(fmt, &opts).unwrap();
            let a = Analysis::of(&m, 0.2);
            assert_eq!(a.stats, stats_of(&m, 0.2), "stats for {fmt}");
            assert_eq!(a.structure_hash, m.structure_hash(), "hash for {fmt}");
            assert!(a.matches(&m));
        }
    }

    #[test]
    fn parallel_analysis_equals_serial() {
        let pool = ThreadPool::new(4);
        let opts = ConvertOptions { min_padded_allowance: 1 << 22, ..Default::default() };
        for seed in 0..3u64 {
            let base = DynamicMatrix::from(random_coo::<f64>(300, 280, 5000, seed));
            for &fmt in &ALL_FORMATS {
                let m = base.to_format(fmt, &opts).unwrap();
                let serial = Analysis::of(&m, 0.2);
                let parallel = Analysis::of_parallel(&m, 0.2, &pool);
                assert_eq!(serial, parallel, "{fmt} seed {seed}");
            }
        }
    }

    #[test]
    fn planning_helpers_read_the_histograms() {
        // Tridiagonal 50x50.
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for i in 0..50usize {
            for d in [-1isize, 0, 1] {
                let j = i as isize + d;
                if (0..50).contains(&j) {
                    rows.push(i);
                    cols.push(j as usize);
                }
            }
        }
        let vals = vec![1.0f64; rows.len()];
        let m = DynamicMatrix::from(crate::CooMatrix::from_triplets(50, 50, &rows, &cols, &vals).unwrap());
        let a = Analysis::of(&m, 0.2);
        assert_eq!(a.ell_width(), 3);
        assert_eq!(a.dia_offsets(), vec![-1, 0, 1]);
        let (slots, entries) = a.true_diag_slots(10);
        assert_eq!(slots.len(), 3);
        assert_eq!(entries, m.nnz());
        assert_eq!(a.hyb_width(8), 3);
    }

    #[test]
    fn of_with_hash_skips_rehash_but_agrees() {
        let m = DynamicMatrix::from(random_coo::<f64>(80, 80, 900, 2));
        let hash = m.structure_hash();
        let a = Analysis::of_auto_with_hash(&m, 0.2, hash);
        assert_eq!(a, Analysis::of(&m, 0.2));
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        for (nr, nc) in [(0, 0), (5, 5), (0, 4), (4, 0)] {
            let m = DynamicMatrix::from(crate::CooMatrix::<f64>::new(nr, nc));
            let a = Analysis::of(&m, 0.2);
            assert_eq!(a.nnz(), 0);
            assert_eq!(a.stats, stats_of(&m, 0.2));
            assert!(a.dia_offsets().is_empty());
            assert_eq!(a.ell_width(), 0);
        }
    }

    #[test]
    fn matches_tolerates_dia_explicit_zero_elision() {
        // (0,0) holds an explicit stored zero after duplicate summing; DIA
        // keeps it in its nnz but the structural histograms elide it. The
        // artifact must still recognise the matrix it was computed from.
        let coo =
            crate::CooMatrix::from_triplets(4, 4, &[0, 0, 1, 2], &[0, 0, 1, 2], &[2.0f64, -2.0, 3.0, 4.0])
                .unwrap();
        let m = DynamicMatrix::from(coo);
        let opts = ConvertOptions::default();
        for fmt in [crate::FormatId::Dia, crate::FormatId::Hdc] {
            let conv = m.to_format(fmt, &opts).unwrap();
            let a = Analysis::of(&conv, 0.2);
            assert!(a.matches(&conv), "{fmt}: analysis must match its own matrix");
            assert!(a.stats.nnz <= conv.nnz(), "{fmt}");
            // And the tuning-path derivation must not panic on it.
            let _ = conv.to_format_with(crate::FormatId::Csr, &opts, Some(&a)).unwrap();
        }
    }

    #[test]
    fn pass_counter_counts_analysis_construction_only_once() {
        let m = DynamicMatrix::from(random_coo::<f64>(30, 30, 200, 7));
        passes::reset();
        let a = Analysis::of(&m, 0.2);
        assert_eq!(passes::count(), 1);
        // Reading the artifact is free.
        let _ = (a.ell_width(), a.dia_offsets(), a.hyb_width(8), a.structure_hash);
        assert_eq!(passes::count(), 1);
        // Asking the matrix directly is not.
        let _ = stats_of(&m, 0.2);
        let _ = m.structure_hash();
        assert_eq!(passes::count(), 3);
    }
}
