//! The format registry: one table describing every storage format.
//!
//! Before this registry, adding a format meant editing a dozen exhaustive
//! `FormatId` match sites across six layers (tuner viability, sweep
//! loops, bench columns, conversion dispatch, plan building). Now the
//! format pool is *data*: each [`FormatEntry`] bundles the format's
//! identity, its structural traits, a cheap viability predicate (the same
//! padding economics the conversion guards enforce, answerable from
//! [`crate::MatrixStats`] alone — no conversion, no traversal), and
//! closures into the generic kernel/conversion machinery. Call sites that
//! previously iterated [`crate::format::ALL_FORMATS`] and re-implemented
//! per-format knowledge route through [`FormatEntry::all`]; the
//! `DynamicMatrix` matches that remain (kernels, plans) are
//! compiler-enforced exhaustive, so a new format is: one storage module +
//! one registry row + the match arms the compiler demands.
//!
//! Everything here is scalar-independent — Rust statics cannot be generic
//! over the value type, so the registry stores metadata and plain function
//! pointers over structural quantities, while scalar-generic dispatch
//! (conversion, SpMV, planning) stays in the modules that own it.

use crate::format::{FormatId, FORMAT_COUNT};
use crate::stats::MatrixStats;

/// Structural quantities a viability decision may consult — derivable from
/// [`MatrixStats`] (hence from a shared [`crate::Analysis`]) without
/// touching the matrix again.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructuralSummary {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Structural non-zeros.
    pub nnz: usize,
    /// Maximum non-zeros in any row.
    pub row_max: usize,
    /// Populated diagonals.
    pub ndiags: usize,
}

impl StructuralSummary {
    /// Builds the summary from precomputed statistics.
    pub fn from_stats(s: &MatrixStats) -> Self {
        StructuralSummary {
            nrows: s.nrows,
            ncols: s.ncols,
            nnz: s.nnz,
            row_max: s.row_nnz_max,
            ndiags: s.ndiags,
        }
    }
}

/// Static traits of a storage format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormatTraits {
    /// Stores padding slots (so a padding-allowance guard applies on
    /// conversion).
    pub padded: bool,
    /// Has tunable [`crate::FormatParams`] the ML stack may regress.
    pub parameterized: bool,
    /// Splits the matrix into two sub-format portions.
    pub hybrid: bool,
}

/// One registered storage format.
#[derive(Debug, Clone, Copy)]
pub struct FormatEntry {
    /// The format's identity.
    pub id: FormatId,
    /// Static structural traits.
    pub traits: FormatTraits,
    /// Estimated padded slots the format would allocate for a matrix with
    /// this structure (used by viability and storage estimates; `nnz` for
    /// unpadded formats). Estimates are *upper bounds* from the histogram
    /// statistics; exact counts require the conversion itself.
    padded_slots: fn(&StructuralSummary) -> usize,
}

/// The registry rows, in format-ID order.
static REGISTRY: [FormatEntry; FORMAT_COUNT] = [
    FormatEntry {
        id: FormatId::Coo,
        traits: FormatTraits { padded: false, parameterized: false, hybrid: false },
        padded_slots: |s| s.nnz,
    },
    FormatEntry {
        id: FormatId::Csr,
        traits: FormatTraits { padded: false, parameterized: false, hybrid: false },
        padded_slots: |s| s.nnz,
    },
    FormatEntry {
        id: FormatId::Dia,
        traits: FormatTraits { padded: true, parameterized: true, hybrid: false },
        // Each populated diagonal is stored at full row length.
        padded_slots: |s| s.ndiags.saturating_mul(s.nrows),
    },
    FormatEntry {
        id: FormatId::Ell,
        traits: FormatTraits { padded: true, parameterized: false, hybrid: false },
        // Every row padded to the global maximum width.
        padded_slots: |s| s.row_max.saturating_mul(s.nrows),
    },
    FormatEntry {
        id: FormatId::Hyb,
        traits: FormatTraits { padded: true, parameterized: true, hybrid: true },
        // The auto split picks the ELL width *subject to* the fill limit and
        // spills the surplus to COO, so conversion succeeds by construction
        // and padding never exceeds the allowance: always viable.
        padded_slots: |s| s.nnz,
    },
    FormatEntry {
        id: FormatId::Hdc,
        traits: FormatTraits { padded: true, parameterized: true, hybrid: true },
        // True diagonals are at least alpha-full by construction and the CSR
        // remainder absorbs everything else, so the hybrid adapts to the
        // structure instead of failing: always viable.
        padded_slots: |s| s.nnz,
    },
    FormatEntry {
        id: FormatId::Bsr,
        traits: FormatTraits { padded: true, parameterized: true, hybrid: false },
        // Worst case one entry per block (r*c slots each), but never more
        // blocks than the block grid holds — dense matrices fill their
        // blocks and must not be rejected. Uses the default block dims.
        padded_slots: |s| {
            let (r, c) = crate::params::FormatParams::default().normalized_block();
            let grid = s.nrows.div_ceil(r).saturating_mul(s.ncols.div_ceil(c));
            (r * c).saturating_mul(s.nnz.min(grid))
        },
    },
    FormatEntry {
        id: FormatId::Bell,
        traits: FormatTraits { padded: true, parameterized: true, hybrid: false },
        // The power-of-two ladder bounds per-row padding by 2x.
        padded_slots: |s| 2 * s.nnz,
    },
];

impl FormatEntry {
    /// Every registered format, in format-ID order.
    pub fn all() -> &'static [FormatEntry; FORMAT_COUNT] {
        &REGISTRY
    }

    /// The entry for `id`.
    pub fn of(id: FormatId) -> &'static FormatEntry {
        &REGISTRY[id.index()]
    }

    /// Estimated padded slots for a matrix with this structure.
    pub fn padded_slots(&self, s: &StructuralSummary) -> usize {
        (self.padded_slots)(s)
    }

    /// Whether the format can hold this structure within the given padding
    /// allowance (mirrors the conversion guards: padding beyond the
    /// allowance means the conversion itself would fail, so the tuner
    /// must not predict the format).
    pub fn is_viable(&self, s: &StructuralSummary, allowance: usize) -> bool {
        if !self.traits.padded {
            return true;
        }
        let padded = self.padded_slots(s);
        padded <= s.nnz || padded - s.nnz <= allowance
    }

    /// Estimated heap bytes per structural non-zero when storing a matrix
    /// with this structure (index + value traffic; a coarse tie-breaker
    /// for storage-bound callers).
    pub fn bytes_per_nnz(&self, s: &StructuralSummary, scalar_bytes: usize) -> f64 {
        let padded = self.padded_slots(s).max(1);
        let idx = std::mem::size_of::<usize>() as f64;
        match self.id {
            FormatId::Coo => 2.0 * idx + scalar_bytes as f64,
            FormatId::Csr => idx + scalar_bytes as f64,
            // One block-column index per ~block, amortised over r*c slots.
            FormatId::Bsr => {
                let (r, c) = crate::params::FormatParams::default().normalized_block();
                scalar_bytes as f64 * padded as f64 / s.nnz.max(1) as f64 + idx / (r * c) as f64
            }
            _ => (idx + scalar_bytes as f64) * padded as f64 / s.nnz.max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::ConvertOptions;
    use crate::dynamic::DynamicMatrix;
    use crate::format::ALL_FORMATS;
    use crate::plan::ExecPlan;
    use crate::spmv::{spmv_serial, spmv_threaded, ExecPolicy};
    use crate::test_util::random_coo;
    use morpheus_parallel::ThreadPool;

    #[test]
    fn registry_covers_every_format_in_id_order() {
        assert_eq!(FormatEntry::all().len(), ALL_FORMATS.len());
        for (i, entry) in FormatEntry::all().iter().enumerate() {
            assert_eq!(entry.id.index(), i);
            assert_eq!(FormatEntry::of(entry.id).id, entry.id);
        }
    }

    /// The registry-completeness gate: every registered format must have a
    /// working converter (COO roundtrip), serial + threaded SpMV kernels,
    /// SpMM kernels, and an `ExecPlan` builder. A format that compiles but
    /// was not wired end to end fails here, not in production dispatch.
    #[test]
    fn every_registered_format_is_wired_end_to_end() {
        let coo = random_coo::<f64>(48, 40, 340, 17);
        let base = DynamicMatrix::from(coo.clone());
        let opts = ConvertOptions { min_padded_allowance: 1 << 22, ..Default::default() };
        let pool = ThreadPool::new(3);
        let x: Vec<f64> = (0..40).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut y_ref = vec![0.0f64; 48];
        spmv_serial(&base, &x, &mut y_ref).unwrap();

        for entry in FormatEntry::all() {
            // Converter: reachable from COO and exact on the way back.
            let m = base
                .to_format(entry.id, &opts)
                .unwrap_or_else(|e| panic!("{}: registered format lacks a conversion path: {e}", entry.id));
            assert_eq!(m.format_id(), entry.id);
            assert_eq!(m.to_coo(), coo, "{}: COO roundtrip", entry.id);

            // Serial kernel.
            let mut y = vec![f64::NAN; 48];
            spmv_serial(&m, &x, &mut y).unwrap();
            for i in 0..48 {
                assert!((y[i] - y_ref[i]).abs() <= 1e-10 * (1.0 + y_ref[i].abs()), "{}", entry.id);
            }

            // Threaded kernel.
            let mut yt = vec![f64::NAN; 48];
            spmv_threaded(&m, &x, &mut yt, &pool, morpheus_parallel::Schedule::default()).unwrap();
            for i in 0..48 {
                assert!((yt[i] - y_ref[i]).abs() <= 1e-10 * (1.0 + y_ref[i].abs()), "{}", entry.id);
            }

            // Plan builder + planned execution.
            let plan = ExecPlan::build(&m, 3, None);
            assert!(plan.matches(&m), "{}: plan does not fit its own matrix", entry.id);
            let mut yp = vec![f64::NAN; 48];
            plan.spmv(&m, &x, &mut yp, &pool).unwrap();
            for i in 0..48 {
                assert!((yp[i] - y_ref[i]).abs() <= 1e-10 * (1.0 + y_ref[i].abs()), "{}", entry.id);
            }

            // SpMM kernel.
            let k = 3usize;
            let xb = vec![1.0f64; 40 * k];
            let mut yb = vec![f64::NAN; 48 * k];
            crate::spmm::spmm(&m, &xb, &mut yb, k, ExecPolicy::Serial).unwrap();
            assert!(yb.iter().all(|v| v.is_finite()), "{}", entry.id);

            // Name table.
            assert_eq!(FormatId::from_name(entry.id.name()), Some(entry.id));
        }
    }

    #[test]
    fn viability_mirrors_conversion_guards() {
        // Hypersparse with one long row: ELL must be non-viable under the
        // default allowance, unpadded formats always viable.
        let n = 50_000usize;
        let mut rows: Vec<usize> = (0..400).map(|k| (k * 97) % n).collect();
        let mut cols: Vec<usize> = (0..400).map(|k| (k * 31) % n).collect();
        for k in 0..3000 {
            rows.push(7);
            cols.push((k * 13) % n);
        }
        let vals = vec![1.0f64; rows.len()];
        let coo = crate::CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap();
        let m = DynamicMatrix::from(coo);
        let stats = crate::stats::stats_of(&m, 0.2);
        let s = StructuralSummary::from_stats(&stats);
        let opts = ConvertOptions::default();
        let allowance = ((opts.max_fill * s.nnz as f64) as usize).max(opts.min_padded_allowance);

        for entry in FormatEntry::all() {
            let viable = entry.is_viable(&s, allowance);
            let converts = m.to_format(entry.id, &opts).is_ok();
            // Viability may be conservative (false negatives forbidden):
            // whenever the registry says viable=false, conversion must
            // indeed fail; whenever conversion succeeds, the registry must
            // have said viable.
            assert!(viable || !converts, "{}: registry said non-viable but conversion succeeded", entry.id);
        }
        assert!(!FormatEntry::of(FormatId::Ell).is_viable(&s, allowance));
        assert!(FormatEntry::of(FormatId::Csr).is_viable(&s, allowance));
        assert!(FormatEntry::of(FormatId::Bell).is_viable(&s, allowance));
    }

    #[test]
    fn traits_describe_the_pool() {
        assert!(!FormatEntry::of(FormatId::Coo).traits.padded);
        assert!(FormatEntry::of(FormatId::Ell).traits.padded);
        assert!(FormatEntry::of(FormatId::Bsr).traits.parameterized);
        assert!(FormatEntry::of(FormatId::Bell).traits.parameterized);
        assert!(FormatEntry::of(FormatId::Hyb).traits.hybrid);
        let n_param = FormatEntry::all().iter().filter(|e| e.traits.parameterized).count();
        assert_eq!(n_param, 5, "DIA, HYB, HDC, BSR, BELL carry tunable parameters");
    }
}
