//! Compressed Sparse Row (CSR) format.

use crate::error::MorpheusError;
use crate::format::FormatId;
use crate::scalar::Scalar;
use crate::Result;

/// Compressed Sparse Row matrix (§II-B) — the general-purpose default format
/// the paper benchmarks every other format against.
///
/// Row indices are compressed into an offsets array of length `nrows + 1`
/// marking the boundary of each row in the column/value arrays. Invariants
/// (validated by all constructors):
///
/// * `row_offsets[0] == 0`, `row_offsets` monotone non-decreasing,
///   `row_offsets[nrows] == nnz`;
/// * column indices strictly increasing within each row (no duplicates);
/// * all column indices `< ncols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<V> {
    nrows: usize,
    ncols: usize,
    row_offsets: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<V>,
}

impl<V: Scalar> CsrMatrix<V> {
    /// An empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            row_offsets: vec![0; nrows + 1],
            col_indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds from raw CSR arrays, validating every invariant.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        row_offsets: Vec<usize>,
        col_indices: Vec<usize>,
        values: Vec<V>,
    ) -> Result<Self> {
        if row_offsets.len() != nrows + 1 {
            return Err(MorpheusError::InvalidStructure(format!(
                "row_offsets has length {}, expected nrows + 1 = {}",
                row_offsets.len(),
                nrows + 1
            )));
        }
        if row_offsets[0] != 0 {
            return Err(MorpheusError::InvalidStructure("row_offsets[0] must be 0".into()));
        }
        if col_indices.len() != values.len() {
            return Err(MorpheusError::InvalidStructure("col_indices and values disagree in length".into()));
        }
        if *row_offsets.last().expect("len >= 1") != col_indices.len() {
            return Err(MorpheusError::InvalidStructure(format!(
                "row_offsets[last] = {} but nnz = {}",
                row_offsets.last().unwrap(),
                col_indices.len()
            )));
        }
        for r in 0..nrows {
            let (lo, hi) = (row_offsets[r], row_offsets[r + 1]);
            if lo > hi {
                return Err(MorpheusError::InvalidStructure(format!("row_offsets not monotone at row {r}")));
            }
            for i in lo..hi {
                let c = col_indices[i];
                if c >= ncols {
                    return Err(MorpheusError::IndexOutOfBounds { index: (r, c), shape: (nrows, ncols) });
                }
                if i > lo && col_indices[i - 1] >= c {
                    return Err(MorpheusError::InvalidStructure(format!(
                        "columns not strictly increasing in row {r}"
                    )));
                }
            }
        }
        Ok(CsrMatrix { nrows, ncols, row_offsets, col_indices, values })
    }

    /// Builds from raw CSR arrays the caller guarantees are valid (the
    /// conversion kernels produce them correct by construction). Debug
    /// builds run the full [`CsrMatrix::from_parts`] validation; release
    /// builds skip it — that skipped O(nnz) re-validation pass is part of
    /// what makes the direct conversion paths fast.
    pub(crate) fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        row_offsets: Vec<usize>,
        col_indices: Vec<usize>,
        values: Vec<V>,
    ) -> Self {
        #[cfg(debug_assertions)]
        {
            Self::from_parts(nrows, ncols, row_offsets, col_indices, values)
                .expect("conversion kernel produced invalid CSR")
        }
        #[cfg(not(debug_assertions))]
        {
            CsrMatrix { nrows, ncols, row_offsets, col_indices, values }
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Format identifier ([`FormatId::Csr`]).
    #[inline]
    pub fn format_id(&self) -> FormatId {
        FormatId::Csr
    }

    /// Row offsets array (length `nrows + 1`).
    #[inline]
    pub fn row_offsets(&self) -> &[usize] {
        &self.row_offsets
    }

    /// Column index array.
    #[inline]
    pub fn col_indices(&self) -> &[usize] {
        &self.col_indices
    }

    /// Value array.
    #[inline]
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Half-open range of entry positions belonging to `row`.
    #[inline]
    pub fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        self.row_offsets[row]..self.row_offsets[row + 1]
    }

    /// Number of stored entries in `row`.
    #[inline]
    pub fn row_nnz(&self, row: usize) -> usize {
        self.row_offsets[row + 1] - self.row_offsets[row]
    }

    /// Column indices of `row`.
    #[inline]
    pub fn row_cols(&self, row: usize) -> &[usize] {
        &self.col_indices[self.row_range(row)]
    }

    /// Values of `row`.
    #[inline]
    pub fn row_vals(&self, row: usize) -> &[V] {
        &self.values[self.row_range(row)]
    }

    /// Per-row non-zero counts (the weights the nnz-balanced threaded kernel
    /// partitions on).
    pub fn row_nnz_counts(&self) -> Vec<usize> {
        (0..self.nrows).map(|r| self.row_nnz(r)).collect()
    }

    /// Bytes of heap storage the format occupies.
    pub fn storage_bytes(&self) -> usize {
        self.row_offsets.len() * std::mem::size_of::<usize>()
            + self.col_indices.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<V>()
    }

    /// Consumes the matrix, returning `(nrows, ncols, offsets, cols, values)`.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<usize>, Vec<V>) {
        (self.nrows, self.ncols, self.row_offsets, self.col_indices, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f64> {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        CsrMatrix::from_parts(3, 3, vec![0, 2, 2, 4], vec![0, 2, 0, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_cols(2), &[0, 1]);
        assert_eq!(m.row_vals(0), &[1.0, 2.0]);
        assert_eq!(m.row_nnz_counts(), vec![2, 0, 2]);
    }

    #[test]
    fn rejects_bad_offsets() {
        assert!(CsrMatrix::<f64>::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::<f64>::from_parts(2, 2, vec![1, 1, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::<f64>::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        assert!(CsrMatrix::<f64>::from_parts(2, 2, vec![0, 1, 3], vec![0, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn rejects_unsorted_or_duplicate_columns() {
        assert!(CsrMatrix::<f64>::from_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]).is_err());
        assert!(CsrMatrix::<f64>::from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn rejects_column_out_of_range() {
        let err = CsrMatrix::<f64>::from_parts(1, 2, vec![0, 1], vec![2], vec![1.0]).unwrap_err();
        assert!(matches!(err, MorpheusError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::<f64>::new(4, 4);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.row_nnz(3), 0);
    }

    #[test]
    fn zero_row_matrix() {
        let m = CsrMatrix::<f64>::from_parts(0, 5, vec![0], vec![], vec![]).unwrap();
        assert_eq!(m.nrows(), 0);
        assert_eq!(m.nnz(), 0);
    }
}
