//! Learnable per-matrix format parameters.
//!
//! The paper's tuner treats format selection as classification over a fixed
//! enum; AlphaSparse-style systems treat the format *parameters* as the
//! search space. `FormatParams` is that parameter vector: block dimensions
//! for BSR, the bucket-width ladder for BELL, and overrides for HYB's split
//! width and DIA's fill threshold. Defaults reproduce the historical fixed
//! heuristics; the Oracle's GBT machinery regresses better values per
//! matrix (see `morpheus-oracle`'s parameter regressor), and
//! [`crate::ConvertOptions`] carries the chosen vector into conversion.

use crate::bsr::BSR_BLOCK_DIMS;

/// Maximum explicit BELL bucket widths carried in a parameter vector
/// (`0` slots are unused; all-zero means the automatic power-of-two ladder).
pub const MAX_BELL_WIDTHS: usize = 8;

/// Tunable format parameters, regressed per matrix or left at the fixed
/// heuristic defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormatParams {
    /// BSR block dimensions `(rows, cols)`; each in `{2, 4, 8}`.
    pub bsr_block: (usize, usize),
    /// BELL bucket width ladder, ascending, zero-terminated; all zeros
    /// selects [`crate::bell::default_bucket_widths`].
    pub bell_widths: [usize; MAX_BELL_WIDTHS],
    /// HYB ELL-portion split width override (`None`: the
    /// [`crate::HybSplit`] policy in the conversion options applies).
    pub hyb_width: Option<usize>,
    /// DIA/HDC fill-threshold override (`None`: `ConvertOptions::max_fill`
    /// applies).
    pub dia_fill: Option<f64>,
}

impl Default for FormatParams {
    fn default() -> Self {
        FormatParams { bsr_block: (4, 4), bell_widths: [0; MAX_BELL_WIDTHS], hyb_width: None, dia_fill: None }
    }
}

impl FormatParams {
    /// `true` when every field is at its fixed-heuristic default.
    pub fn is_default(&self) -> bool {
        *self == FormatParams::default()
    }

    /// The explicit BELL ladder, or an empty slice for the automatic one.
    pub fn bell_ladder(&self) -> &[usize] {
        let n = self.bell_widths.iter().position(|&w| w == 0).unwrap_or(MAX_BELL_WIDTHS);
        &self.bell_widths[..n]
    }

    /// Builds a parameter vector with an explicit BELL ladder (truncated to
    /// [`MAX_BELL_WIDTHS`] entries).
    pub fn with_bell_ladder(mut self, widths: &[usize]) -> Self {
        self.bell_widths = [0; MAX_BELL_WIDTHS];
        for (slot, &w) in self.bell_widths.iter_mut().zip(widths) {
            *slot = w;
        }
        self
    }

    /// A compact code identifying this parameterization for telemetry keys
    /// (0 = defaults). Distinct parameterizations of the same format must
    /// not alias in the adaptive sample ring, so the code folds every
    /// field; it is *not* reversible.
    pub fn code(&self) -> u8 {
        if self.is_default() {
            return 0;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |w: u64| {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.bsr_block.0 as u64);
        mix(self.bsr_block.1 as u64);
        for &w in &self.bell_widths {
            mix(w as u64);
        }
        mix(self.hyb_width.map_or(u64::MAX, |w| w as u64));
        mix(self.dia_fill.map_or(u64::MAX, f64::to_bits));
        // Fold to 7 bits, avoiding the reserved 0.
        (h % 127) as u8 + 1
    }

    /// Serializes to the single-token text form used by versioned decision
    /// exports: `-` for the defaults, otherwise `;`-joined `key=value`
    /// fields (`bsr=RxC`, `bell=w1,w2,...`, `hyb=W`, `dia=F`). Inverse of
    /// [`FormatParams::parse_token`].
    pub fn to_token(&self) -> String {
        if self.is_default() {
            return "-".to_string();
        }
        let mut parts = Vec::new();
        if self.bsr_block != FormatParams::default().bsr_block {
            parts.push(format!("bsr={}x{}", self.bsr_block.0, self.bsr_block.1));
        }
        let ladder = self.bell_ladder();
        if !ladder.is_empty() {
            let ws: Vec<String> = ladder.iter().map(|w| w.to_string()).collect();
            parts.push(format!("bell={}", ws.join(",")));
        }
        if let Some(w) = self.hyb_width {
            parts.push(format!("hyb={w}"));
        }
        if let Some(f) = self.dia_fill {
            // f64 Display is shortest-round-trip, so parse gets bits back.
            parts.push(format!("dia={f}"));
        }
        parts.join(";")
    }

    /// Parses [`FormatParams::to_token`] output (`None` on malformed input).
    pub fn parse_token(tok: &str) -> Option<Self> {
        if tok == "-" {
            return Some(FormatParams::default());
        }
        let mut p = FormatParams::default();
        for part in tok.split(';') {
            let (key, val) = part.split_once('=')?;
            match key {
                "bsr" => {
                    let (r, c) = val.split_once('x')?;
                    p.bsr_block = (r.parse().ok()?, c.parse().ok()?);
                }
                "bell" => {
                    let mut widths = [0usize; MAX_BELL_WIDTHS];
                    for (n, w) in val.split(',').enumerate() {
                        if n >= MAX_BELL_WIDTHS {
                            return None;
                        }
                        widths[n] = w.parse().ok()?;
                    }
                    p.bell_widths = widths;
                }
                "hyb" => p.hyb_width = Some(val.parse().ok()?),
                "dia" => p.dia_fill = Some(val.parse().ok()?),
                _ => return None,
            }
        }
        Some(p)
    }

    /// Clamps the block dims to the supported set (nearest allowed dim).
    pub fn normalized_block(&self) -> (usize, usize) {
        let snap = |d: usize| {
            *BSR_BLOCK_DIMS.iter().min_by_key(|&&b| (b as isize - d as isize).unsigned_abs()).unwrap_or(&4)
        };
        (snap(self.bsr_block.0), snap(self.bsr_block.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_default() {
        let p = FormatParams::default();
        assert!(p.is_default());
        assert_eq!(p.code(), 0);
        assert_eq!(p.bell_ladder(), &[] as &[usize]);
        assert_eq!(p.normalized_block(), (4, 4));
    }

    #[test]
    fn ladder_roundtrip() {
        let p = FormatParams::default().with_bell_ladder(&[2, 8, 32]);
        assert_eq!(p.bell_ladder(), &[2, 8, 32]);
        assert!(!p.is_default());
        assert_ne!(p.code(), 0);
    }

    #[test]
    fn codes_distinguish_parameterizations() {
        let a = FormatParams { bsr_block: (2, 2), ..Default::default() };
        let b = FormatParams { bsr_block: (8, 8), ..Default::default() };
        let c = FormatParams { hyb_width: Some(9), ..Default::default() };
        assert_ne!(a.code(), 0);
        assert_ne!(a.code(), b.code());
        assert_ne!(a.code(), c.code());
    }

    #[test]
    fn token_roundtrip_preserves_every_field() {
        let cases = [
            FormatParams::default(),
            FormatParams { bsr_block: (2, 8), ..Default::default() },
            FormatParams::default().with_bell_ladder(&[1, 4, 16, 64]),
            FormatParams { hyb_width: Some(12), dia_fill: Some(3.25), ..Default::default() },
            FormatParams {
                bsr_block: (8, 2),
                hyb_width: Some(7),
                dia_fill: Some(0.1),
                ..FormatParams::default().with_bell_ladder(&[2, 32])
            },
        ];
        for p in cases {
            let tok = p.to_token();
            assert!(!tok.contains(' '), "token must be whitespace-free: {tok}");
            assert_eq!(FormatParams::parse_token(&tok), Some(p), "{tok}");
        }
        assert_eq!(FormatParams::default().to_token(), "-");
        assert_eq!(FormatParams::parse_token("bogus"), None);
        assert_eq!(FormatParams::parse_token("bsr=9"), None);
    }

    #[test]
    fn block_normalization_snaps_to_allowed_dims() {
        let p = FormatParams { bsr_block: (3, 100), ..Default::default() };
        let (r, c) = p.normalized_block();
        assert!(BSR_BLOCK_DIMS.contains(&r) && BSR_BLOCK_DIMS.contains(&c));
        assert_eq!((r, c), (2, 8));
    }
}
