//! Hybrid DIA + CSR (HDC) format.

use crate::csr::CsrMatrix;
use crate::dia::DiaMatrix;
use crate::error::MorpheusError;
use crate::format::FormatId;
use crate::scalar::Scalar;
use crate::Result;

/// Hybrid DIA/CSR matrix (§II-B).
///
/// Diagonals whose population meets the *true diagonal* threshold are stored
/// in the DIA portion; every remaining entry is stored in CSR. The paper's
/// parameter `N_D` ("the number of non-zeros in a diagonal above which the
/// diagonal is considered to be a 'true' diagonal") is expressed here as a
/// fraction `alpha` of `min(nrows, ncols)` — see
/// [`true_diag_threshold`].
#[derive(Debug, Clone, PartialEq)]
pub struct HdcMatrix<V> {
    dia: DiaMatrix<V>,
    csr: CsrMatrix<V>,
    alpha: f64,
}

/// Default fraction of `min(nrows, ncols)` a diagonal's population must
/// reach to count as a *true diagonal* (used by HDC splitting and by the
/// `NTD` feature of Table I).
pub const DEFAULT_TRUE_DIAG_ALPHA: f64 = 0.2;

/// Population threshold for a diagonal to be "true" in a matrix of the given
/// shape: `max(1, ceil(alpha * min(nrows, ncols)))`.
pub fn true_diag_threshold(nrows: usize, ncols: usize, alpha: f64) -> usize {
    let min_dim = nrows.min(ncols);
    ((alpha * min_dim as f64).ceil() as usize).max(1)
}

impl<V: Scalar> HdcMatrix<V> {
    /// Builds from a DIA and a CSR part with identical shapes.
    ///
    /// `alpha` records the split threshold used (informational; it feeds the
    /// `NTD` feature of Table I).
    pub fn from_parts(dia: DiaMatrix<V>, csr: CsrMatrix<V>, alpha: f64) -> Result<Self> {
        if dia.nrows() != csr.nrows() || dia.ncols() != csr.ncols() {
            return Err(MorpheusError::ShapeMismatch {
                expected: format!("{}x{}", dia.nrows(), dia.ncols()),
                got: format!("{}x{}", csr.nrows(), csr.ncols()),
            });
        }
        if !(0.0..=1.0).contains(&alpha) {
            return Err(MorpheusError::InvalidStructure(format!("HDC alpha {alpha} outside [0, 1]")));
        }
        Ok(HdcMatrix { dia, csr, alpha })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.dia.nrows()
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.dia.ncols()
    }

    /// Structural non-zeros across both portions.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.dia.nnz() + self.csr.nnz()
    }

    /// Format identifier ([`FormatId::Hdc`]).
    #[inline]
    pub fn format_id(&self) -> FormatId {
        FormatId::Hdc
    }

    /// The DIA portion (true diagonals).
    #[inline]
    pub fn dia(&self) -> &DiaMatrix<V> {
        &self.dia
    }

    /// The CSR portion (everything else).
    #[inline]
    pub fn csr(&self) -> &CsrMatrix<V> {
        &self.csr
    }

    /// The true-diagonal fraction used when this matrix was split.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Bytes of heap storage across both portions.
    pub fn storage_bytes(&self) -> usize {
        self.dia.storage_bytes() + self.csr.storage_bytes()
    }

    /// Consumes the matrix, returning the two portions.
    pub fn into_parts(self) -> (DiaMatrix<V>, CsrMatrix<V>) {
        (self.dia, self.csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_formula() {
        assert_eq!(true_diag_threshold(100, 100, 0.2), 20);
        assert_eq!(true_diag_threshold(10, 100, 0.2), 2);
        assert_eq!(true_diag_threshold(3, 3, 0.2), 1);
        assert_eq!(true_diag_threshold(0, 0, 0.2), 1);
        assert_eq!(true_diag_threshold(7, 7, 0.5), 4); // ceil(3.5)
    }

    #[test]
    fn shape_mismatch_rejected() {
        let dia = DiaMatrix::<f64>::new(3, 3);
        let csr = CsrMatrix::<f64>::new(4, 3);
        assert!(HdcMatrix::from_parts(dia, csr, 0.2).is_err());
    }

    #[test]
    fn alpha_out_of_range_rejected() {
        let dia = DiaMatrix::<f64>::new(3, 3);
        let csr = CsrMatrix::<f64>::new(3, 3);
        assert!(HdcMatrix::from_parts(dia, csr, 1.5).is_err());
    }

    #[test]
    fn nnz_sums_portions() {
        let dia = DiaMatrix::<f64>::from_parts(2, 2, vec![0], vec![1.0, 2.0], 2).unwrap();
        let csr = CsrMatrix::<f64>::from_parts(2, 2, vec![0, 1, 1], vec![1], vec![3.0]).unwrap();
        let hdc = HdcMatrix::from_parts(dia, csr, 0.2).unwrap();
        assert_eq!(hdc.nnz(), 3);
        assert_eq!(hdc.alpha(), 0.2);
    }
}
