//! Row-range partitioning for internally heterogeneous matrices.
//!
//! The paper selects **one** format for the whole matrix, but web-scale
//! matrices are internally heterogeneous: a powerlaw matrix's hub rows want
//! CSR/COO while its banded tail wants DIA/ELL. Per-shard selection is
//! strictly stronger than whole-matrix selection — the whole-matrix optimum
//! is the special case of one shard.
//!
//! Three artifacts live here:
//!
//! * [`Partition`] — row-range shard boundaries picked from an
//!   [`Analysis`] row-nnz histogram: balanced nnz per shard, with each
//!   boundary nudged to the largest nearby *regime shift* in mean row
//!   length so a hub block and a regular tail land in different shards.
//! * [`PartitionedMatrix`] — the shards, each independently converted
//!   (direct conversion kernels, CSR fallback) and independently planned
//!   (each shard gets its own single-part [`ExecPlan`] with variant
//!   selection). Execution runs shard plans across a
//!   [`ThreadPool`] with stable shard→worker ownership — a worker always
//!   executes the same contiguous run of shards, so each shard's arrays
//!   stay hot in one core's cache — writing disjoint output slices through
//!   [`SharedSlice`]. The pooled and unpooled paths run the same
//!   single-threaded kernel bodies per shard and are bitwise identical.
//! * [`StreamingPartitioner`] — ingests a row-major entry stream and seals
//!   CSR shards at row boundaries as the nnz target fills, so a matrix
//!   larger than one resident copy never materializes whole.

use std::ops::Range;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use morpheus_parallel::{weighted_partition_with, SharedSlice, ThreadPool};

use crate::analysis::{passes, Analysis};
use crate::convert::ConvertOptions;
use crate::csr::CsrMatrix;
use crate::dynamic::DynamicMatrix;
use crate::error::MorpheusError;
use crate::format::FormatId;
use crate::plan::ExecPlan;
use crate::rowmajor::for_each_entry_row_major;
use crate::scalar::Scalar;
use crate::spmv::variant::KernelVariant;
use crate::Result;

/// Controls shard boundary selection in [`Partition::from_analysis`].
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Upper bound on shard count. The actual count is
    /// `clamp(nnz / target_shard_nnz, 1, max_shards)`, further capped by
    /// the row count.
    pub max_shards: usize,
    /// Desired structural non-zeros per shard.
    pub target_shard_nnz: usize,
    /// Window length (in rows) over which mean row length is compared on
    /// each side of a candidate boundary. A balance boundary may travel
    /// anywhere between its neighbouring boundaries to reach the best
    /// shift; the window only sets the scale at which a shift is scored.
    pub regime_window: usize,
    /// Minimum ratio between the two window means for a nudge to be taken
    /// (the regime score is `|ln(mean_l / mean_r)|` with +1 smoothing; a
    /// boundary moves only if the best nearby score reaches
    /// `ln(regime_ratio)`).
    pub regime_ratio: f64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig { max_shards: 8, target_shard_nnz: 1 << 16, regime_window: 1024, regime_ratio: 2.0 }
    }
}

/// Row-range shard boundaries for one matrix structure.
///
/// Boundaries are a strictly increasing sequence `b_0 = 0 < b_1 < ... <
/// b_s = nrows`; shard `i` owns rows `b_i..b_{i+1}`. Construction is a
/// pure function of the [`Analysis`] histogram and the
/// [`PartitionConfig`] — identical inputs always produce identical
/// boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    nrows: usize,
    boundaries: Vec<usize>,
    shard_nnz: Vec<usize>,
}

impl Partition {
    /// Picks shard boundaries from the row-nnz histogram of `a`.
    ///
    /// Stage 1 balances nnz: `weighted_partition_with` over the histogram
    /// yields contiguous, non-empty row ranges with near-equal nnz. Stage 2
    /// refines each interior boundary: anywhere strictly between its
    /// neighbouring boundaries, the position maximizing the log-ratio of
    /// mean row length between the `regime_window`-row windows on its two
    /// sides is found (coarse stride scan + fine pass around the best
    /// coarse hit, so a hub edge far from the balance point is still
    /// reached); the boundary snaps there if the shift is at least
    /// `regime_ratio`. Scoring windows clamp at the neighbouring
    /// boundaries, so a shift already claimed by the previous boundary
    /// cannot recapture the next one.
    pub fn from_analysis(a: &Analysis, cfg: &PartitionConfig) -> Partition {
        let nrows = a.nrows;
        let total: usize = a.row_hist.iter().map(|&c| c as usize).sum();
        if nrows == 0 {
            return Partition { nrows: 0, boundaries: vec![0, 0], shard_nnz: vec![0] };
        }
        let target = cfg.target_shard_nnz.max(1);
        let want = (total / target).clamp(1, cfg.max_shards.max(1)).min(nrows);
        let ranges = weighted_partition_with(nrows, want, |r| a.row_hist[r] as usize);
        let mut boundaries: Vec<usize> = ranges.iter().map(|r| r.start).collect();
        boundaries.push(nrows);

        // Prefix sums of row nnz for O(1) window means.
        let mut pre = Vec::with_capacity(nrows + 1);
        pre.push(0u64);
        for &c in &a.row_hist {
            pre.push(pre.last().unwrap() + u64::from(c));
        }
        let window = cfg.regime_window.max(1);
        let threshold = cfg.regime_ratio.max(1.0).ln();
        let win_mean = |lo: usize, hi: usize| -> f64 {
            debug_assert!(lo < hi);
            (pre[hi] - pre[lo]) as f64 / (hi - lo) as f64
        };
        for i in 1..boundaries.len() - 1 {
            let (prev, next) = (boundaries[i - 1], boundaries[i + 1]);
            let b = boundaries[i];
            let (lo, hi) = (prev + 1, next - 1);
            if lo > hi {
                continue;
            }
            let score_at = |pos: usize| -> f64 {
                let lstart = pos.saturating_sub(window).max(prev);
                let rend = (pos + window).min(next);
                ((win_mean(lstart, pos) + 1.0) / (win_mean(pos, rend) + 1.0)).ln().abs()
            };
            // Coarse stride over the whole span, then exact scan around the
            // best coarse hit. The stride never exceeds the scoring window,
            // so a step edge (whose score plateaus over ~window rows)
            // cannot fall between probes.
            let stride = ((hi - lo) / 2048).clamp(1, window);
            let mut best = (0.0f64, b);
            let mut pos = lo;
            while pos <= hi {
                let score = score_at(pos);
                if score > best.0 {
                    best = (score, pos);
                }
                pos += stride;
            }
            let fine_lo = best.1.saturating_sub(stride).max(lo);
            let fine_hi = (best.1 + stride).min(hi);
            for pos in fine_lo..=fine_hi {
                let score = score_at(pos);
                if score > best.0 {
                    best = (score, pos);
                }
            }
            if best.0 >= threshold {
                boundaries[i] = best.1;
            }
        }
        let shard_nnz = boundaries.windows(2).map(|w| (pre[w[1]] - pre[w[0]]) as usize).collect();
        Partition { nrows, boundaries, shard_nnz }
    }

    /// Builds a partition from explicit boundaries (e.g. sealed by a
    /// [`StreamingPartitioner`]). `boundaries` must start at 0, end at
    /// `nrows`, be strictly increasing, and `shard_nnz` must have one
    /// entry per shard.
    pub fn from_boundaries(nrows: usize, boundaries: Vec<usize>, shard_nnz: Vec<usize>) -> Result<Partition> {
        let ok = boundaries.len() >= 2
            && boundaries[0] == 0
            && *boundaries.last().unwrap() == nrows
            && boundaries.windows(2).all(|w| w[0] < w[1] || (nrows == 0 && w[0] == w[1]))
            && shard_nnz.len() == boundaries.len() - 1;
        if !ok {
            return Err(MorpheusError::InvalidStructure(format!(
                "invalid partition boundaries {boundaries:?} for {nrows} rows"
            )));
        }
        Ok(Partition { nrows, boundaries, shard_nnz })
    }

    /// Rows of the partitioned matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of shards (≥ 1).
    pub fn num_shards(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// The boundary sequence `0 = b_0 < ... < b_s = nrows`.
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// Structural nnz per shard (from the histogram the partition was
    /// built from).
    pub fn shard_nnz(&self) -> &[usize] {
        &self.shard_nnz
    }

    /// Row range of shard `i`.
    pub fn shard_rows(&self, i: usize) -> Range<usize> {
        self.boundaries[i]..self.boundaries[i + 1]
    }

    /// Iterator over all shard row ranges.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        self.boundaries.windows(2).map(|w| w[0]..w[1])
    }
}

/// Splits `m` into per-shard CSR sub-matrices in one row-major traversal.
///
/// Each shard keeps the full column space (`ncols` unchanged), so shard
/// SpMV reads the same `x` and writes a disjoint `y` slice. Pass the
/// matrix's [`Analysis`] if one is at hand — its row histogram supplies
/// exact per-row counts; otherwise a counting pass runs first.
pub fn split_rows<V: Scalar>(
    m: &DynamicMatrix<V>,
    p: &Partition,
    analysis: Option<&Analysis>,
) -> Result<Vec<CsrMatrix<V>>> {
    if p.nrows != m.nrows() {
        return Err(MorpheusError::ShapeMismatch {
            expected: format!("partition over {} rows", p.nrows),
            got: format!("matrix with {} rows", m.nrows()),
        });
    }
    let counts: Vec<u32> = match analysis.filter(|a| a.matches(m)) {
        Some(a) => a.row_hist.clone(),
        None => {
            let mut c = vec![0u32; m.nrows()];
            for_each_entry_row_major(m, |r, _, _| c[r] += 1);
            passes::record_traversal();
            c
        }
    };
    struct Fill<V> {
        rows: Range<usize>,
        offsets: Vec<usize>,
        cols: Vec<usize>,
        vals: Vec<V>,
    }
    let mut fills: Vec<Fill<V>> = p
        .ranges()
        .map(|rows| {
            let mut offsets = Vec::with_capacity(rows.len() + 1);
            offsets.push(0usize);
            for r in rows.clone() {
                offsets.push(offsets.last().unwrap() + counts[r] as usize);
            }
            let nnz = *offsets.last().unwrap();
            Fill { rows, offsets, cols: Vec::with_capacity(nnz), vals: Vec::with_capacity(nnz) }
        })
        .collect();
    // Entries arrive row-major with ascending columns, i.e. exactly in each
    // shard's CSR order — appending is enough.
    let mut si = 0usize;
    for_each_entry_row_major(m, |r, c, v| {
        while r >= fills[si].rows.end {
            si += 1;
        }
        fills[si].cols.push(c);
        fills[si].vals.push(v);
    });
    passes::record_traversal();
    fills
        .into_iter()
        .map(|f| CsrMatrix::from_parts(f.rows.len(), m.ncols(), f.offsets, f.cols, f.vals))
        .collect()
}

/// One shard of a [`PartitionedMatrix`]: its row range, its independently
/// converted matrix, and its own single-part execution plan.
#[derive(Debug)]
pub struct Shard<V: Scalar> {
    rows: Range<usize>,
    matrix: DynamicMatrix<V>,
    plan: Arc<ExecPlan<V>>,
    structure: u64,
}

impl<V: Scalar> Shard<V> {
    /// A shard from externally tuned parts. `structure` must be the
    /// [`DynamicMatrix::structure_hash`] of `matrix`; plan/matrix
    /// agreement is validated when the shard enters
    /// [`PartitionedMatrix::from_shards`].
    pub fn new(
        rows: Range<usize>,
        matrix: DynamicMatrix<V>,
        plan: Arc<ExecPlan<V>>,
        structure: u64,
    ) -> Shard<V> {
        Shard { rows, matrix, plan, structure }
    }

    /// Rows of the parent matrix this shard owns.
    pub fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }

    /// The shard's matrix, in its realized format.
    pub fn matrix(&self) -> &DynamicMatrix<V> {
        &self.matrix
    }

    /// The shard's execution plan (built for 1 thread — parallelism comes
    /// from running shards concurrently, not from splitting a shard).
    pub fn plan(&self) -> &Arc<ExecPlan<V>> {
        &self.plan
    }

    /// [`DynamicMatrix::structure_hash`] of the shard as executed.
    pub fn structure(&self) -> u64 {
        self.structure
    }

    /// Realized storage format of the shard.
    pub fn format_id(&self) -> FormatId {
        self.matrix.format_id()
    }

    /// Structural non-zeros of the shard.
    pub fn nnz(&self) -> usize {
        self.matrix.nnz()
    }
}

/// Per-shard kernel body run by the shard executor against a disjoint
/// output slice.
type ShardKernel<'a, V> = &'a (dyn Fn(&Shard<V>, &mut [V]) -> Result<()> + Sync);

/// A matrix stored as independently formatted, independently planned
/// row-range shards.
///
/// SpMV/SpMM execute every shard's own plan against the shared `x` and a
/// disjoint slice of `y`. With a pool, shards are distributed by stable
/// contiguous ownership (nnz-weighted): worker `w` always runs the same
/// shards, keeping their arrays hot in one core's cache. The pooled and
/// unpooled paths run identical kernel bodies per shard, so their results
/// are bitwise equal.
#[derive(Debug)]
pub struct PartitionedMatrix<V: Scalar> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    shards: Vec<Shard<V>>,
    threads: usize,
    owners: Vec<Range<usize>>,
}

impl<V: Scalar> PartitionedMatrix<V> {
    /// Splits `m` by `partition`, converts each shard to the format chosen
    /// by `choose(shard_index, &shard, &shard_analysis)` (falling back to
    /// CSR when the chosen conversion is not viable, e.g. excessive DIA
    /// padding), and plans each shard for single-threaded execution.
    ///
    /// `threads` is the worker count shard ownership is balanced for.
    pub fn build(
        m: &DynamicMatrix<V>,
        partition: &Partition,
        opts: &ConvertOptions,
        threads: usize,
        analysis: Option<&Analysis>,
        mut choose: impl FnMut(usize, &DynamicMatrix<V>, &Analysis) -> FormatId,
    ) -> Result<PartitionedMatrix<V>> {
        let subs = split_rows(m, partition, analysis)?;
        let parts: Vec<(Range<usize>, CsrMatrix<V>)> = partition.ranges().zip(subs).collect();
        Self::assemble(m.ncols(), parts, threads, |i, sm, sa| {
            let fmt = choose(i, sm, sa);
            if fmt != sm.format_id() && sm.convert_to_with(fmt, opts, Some(sa)).is_err() {
                // Chosen format not viable for this shard; CSR always is.
                let _ = sm.convert_to_with(FormatId::Csr, opts, Some(sa));
            }
            Ok(())
        })
    }

    /// Assembles a partitioned matrix from per-shard CSR pieces (e.g. from
    /// [`StreamingPartitioner::finish`]), applying `tune` to each shard
    /// (convert in place; the shard is re-analysed and planned afterwards).
    pub fn assemble(
        ncols: usize,
        parts: Vec<(Range<usize>, CsrMatrix<V>)>,
        threads: usize,
        mut tune: impl FnMut(usize, &mut DynamicMatrix<V>, &Analysis) -> Result<()>,
    ) -> Result<PartitionedMatrix<V>> {
        if parts.is_empty() {
            return Err(MorpheusError::InvalidStructure(
                "partitioned matrix needs at least one shard".into(),
            ));
        }
        let mut shards = Vec::with_capacity(parts.len());
        let mut expect = 0usize;
        let alpha = ConvertOptions::default().true_diag_alpha;
        for (i, (rows, csr)) in parts.into_iter().enumerate() {
            if rows.start != expect || csr.nrows() != rows.len() || csr.ncols() != ncols {
                return Err(MorpheusError::InvalidStructure(format!(
                    "shard {i} rows {rows:?} do not tile the matrix contiguously"
                )));
            }
            expect = rows.end;
            let mut sm = DynamicMatrix::from(csr);
            let hash = sm.structure_hash();
            let sa = Analysis::of_auto_with_hash(&sm, alpha, hash);
            tune(i, &mut sm, &sa)?;
            let (structure, plan) = if sm.format_id() == FormatId::Csr {
                (hash, Arc::new(ExecPlan::build(&sm, 1, Some(&sa))))
            } else {
                // Re-analyse in the realized format: DIA/ELL padding can
                // change the stored-entry histogram the plan keys on.
                let h = sm.structure_hash();
                let ra = Analysis::of_auto_with_hash(&sm, alpha, h);
                (h, Arc::new(ExecPlan::build(&sm, 1, Some(&ra))))
            };
            shards.push(Shard { rows, matrix: sm, plan, structure });
        }
        Self::from_shards(expect, ncols, shards, threads)
    }

    /// Wraps already converted-and-planned shards. Shard row ranges must
    /// tile `0..nrows` contiguously; every plan must match its shard.
    pub fn from_shards(
        nrows: usize,
        ncols: usize,
        shards: Vec<Shard<V>>,
        threads: usize,
    ) -> Result<PartitionedMatrix<V>> {
        if shards.is_empty() {
            return Err(MorpheusError::InvalidStructure(
                "partitioned matrix needs at least one shard".into(),
            ));
        }
        let mut expect = 0usize;
        for (i, s) in shards.iter().enumerate() {
            if s.rows.start != expect || s.matrix.nrows() != s.rows.len() || s.matrix.ncols() != ncols {
                return Err(MorpheusError::InvalidStructure(format!(
                    "shard {i} rows {:?} do not tile the matrix contiguously",
                    s.rows
                )));
            }
            if !s.plan.matches(&s.matrix) {
                return Err(MorpheusError::PlanMismatch {
                    expected: format!("plan for shard {i}"),
                    got: format!("{:?} {}x{}", s.matrix.format_id(), s.matrix.nrows(), ncols),
                });
            }
            expect = s.rows.end;
        }
        if expect != nrows {
            return Err(MorpheusError::InvalidStructure(format!("shards cover {expect} of {nrows} rows")));
        }
        let nnz = shards.iter().map(|s| s.matrix.nnz()).sum();
        let threads = threads.max(1);
        let owners = owner_ranges(&shards, threads);
        Ok(PartitionedMatrix { nrows, ncols, nnz, shards, threads, owners })
    }

    /// Rows of the whole matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the whole matrix.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Total stored non-zeros across shards.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in row order.
    pub fn shards(&self) -> &[Shard<V>] {
        &self.shards
    }

    /// Shard `i`.
    pub fn shard(&self, i: usize) -> &Shard<V> {
        &self.shards[i]
    }

    /// Worker count the stored shard ownership was balanced for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Stable shard→worker ownership: `owners()[w]` is the contiguous
    /// shard-index range worker `w` executes.
    pub fn owners(&self) -> &[Range<usize>] {
        &self.owners
    }

    /// The format covering the most stored non-zeros (ties: first shard).
    pub fn dominant_format(&self) -> FormatId {
        let mut by_fmt = [0usize; crate::format::FORMAT_COUNT];
        for s in &self.shards {
            by_fmt[s.matrix.format_id().index()] += s.matrix.nnz();
        }
        crate::registry::FormatEntry::all()
            .iter()
            .map(|e| e.id)
            .max_by_key(|f| by_fmt[f.index()])
            .unwrap_or(FormatId::Csr)
    }

    /// The dominant kernel variant of the shard covering the most nnz.
    pub fn dominant_variant(&self) -> KernelVariant {
        self.shards
            .iter()
            .max_by_key(|s| s.matrix.nnz())
            .map(|s| s.plan.dominant_variant())
            .unwrap_or(KernelVariant::Scalar)
    }

    /// Distinct realized formats across shards, in format-id order.
    pub fn formats(&self) -> Vec<FormatId> {
        let mut present = [false; crate::format::FORMAT_COUNT];
        for s in &self.shards {
            present[s.matrix.format_id().index()] = true;
        }
        crate::registry::FormatEntry::all().iter().map(|e| e.id).filter(|f| present[f.index()]).collect()
    }

    /// `true` when every shard's plan preserves serial accumulation order
    /// (partitioned results are then bitwise equal to the serial
    /// reference on the same realized formats).
    pub fn preserves_order(&self) -> bool {
        self.shards.iter().all(|s| s.plan.preserves_order())
    }

    fn check_spmv_shapes(&self, x: &[V], y: &[V]) -> Result<()> {
        if x.len() != self.ncols || y.len() != self.nrows {
            return Err(MorpheusError::ShapeMismatch {
                expected: format!("x: {}, y: {}", self.ncols, self.nrows),
                got: format!("x: {}, y: {}", x.len(), y.len()),
            });
        }
        Ok(())
    }

    /// `y = A x` across the pool with stable shard ownership.
    pub fn spmv(&self, x: &[V], y: &mut [V], pool: &ThreadPool) -> Result<()> {
        self.spmv_observed(x, y, Some(pool), None)
    }

    /// `y = A x` on the calling thread, shard by shard. Bitwise identical
    /// to [`PartitionedMatrix::spmv`].
    pub fn spmv_unpooled(&self, x: &[V], y: &mut [V]) -> Result<()> {
        self.spmv_observed(x, y, None, None)
    }

    /// `y = A x`, optionally pooled, invoking `observe(shard_index,
    /// elapsed)` after each shard kernel — the hook the serving layer uses
    /// to record per-shard telemetry samples.
    pub fn spmv_observed(
        &self,
        x: &[V],
        y: &mut [V],
        pool: Option<&ThreadPool>,
        observe: Option<&(dyn Fn(usize, Duration) + Sync)>,
    ) -> Result<()> {
        self.check_spmv_shapes(x, y)?;
        self.run_shards(y, pool, observe, &|s, ys| s.plan.spmv_unpooled(&s.matrix, x, ys))
    }

    /// `Y = A X` (row-major, `k` right-hand sides) across the pool.
    pub fn spmm(&self, x: &[V], y: &mut [V], k: usize, pool: &ThreadPool) -> Result<()> {
        self.spmm_observed(x, y, k, Some(pool), None)
    }

    /// `Y = A X`, optionally pooled, with the same per-shard observation
    /// hook as [`PartitionedMatrix::spmv_observed`]. Shard kernels are the
    /// serial SpMM bodies (planned SpMM runs scalar bodies too), so pooled
    /// and unpooled results are bitwise equal.
    pub fn spmm_observed(
        &self,
        x: &[V],
        y: &mut [V],
        k: usize,
        pool: Option<&ThreadPool>,
        observe: Option<&(dyn Fn(usize, Duration) + Sync)>,
    ) -> Result<()> {
        if k == 0 || x.len() != self.ncols * k || y.len() != self.nrows * k {
            return Err(MorpheusError::ShapeMismatch {
                expected: format!("x: {}*k, y: {}*k, k >= 1", self.ncols, self.nrows),
                got: format!("x: {}, y: {}, k = {}", x.len(), y.len(), k),
            });
        }
        self.run_shards_scaled(y, k, pool, observe, &|s, ys| crate::spmm::spmm_serial(&s.matrix, x, ys, k))
    }

    fn run_shards(
        &self,
        y: &mut [V],
        pool: Option<&ThreadPool>,
        observe: Option<&(dyn Fn(usize, Duration) + Sync)>,
        kernel: ShardKernel<'_, V>,
    ) -> Result<()> {
        self.run_shards_scaled(y, 1, pool, observe, kernel)
    }

    /// Shared executor: shard `i` writes `y[rows.start*k .. rows.end*k]`.
    fn run_shards_scaled(
        &self,
        y: &mut [V],
        k: usize,
        pool: Option<&ThreadPool>,
        observe: Option<&(dyn Fn(usize, Duration) + Sync)>,
        kernel: ShardKernel<'_, V>,
    ) -> Result<()> {
        let run_one = |si: usize, ys: &mut [V]| -> Result<()> {
            let s = &self.shards[si];
            let t0 = observe.map(|_| Instant::now());
            kernel(s, ys)?;
            if let (Some(f), Some(t0)) = (observe, t0) {
                f(si, t0.elapsed());
            }
            Ok(())
        };
        match pool {
            None => {
                for si in 0..self.shards.len() {
                    let r = self.shards[si].rows.clone();
                    run_one(si, &mut y[r.start * k..r.end * k])?;
                }
                Ok(())
            }
            Some(pool) if pool.num_threads() <= 1 => {
                for si in 0..self.shards.len() {
                    let r = self.shards[si].rows.clone();
                    run_one(si, &mut y[r.start * k..r.end * k])?;
                }
                Ok(())
            }
            Some(pool) => {
                let owned;
                let owners: &[Range<usize>] = if pool.num_threads() == self.threads {
                    &self.owners
                } else {
                    owned = owner_ranges(&self.shards, pool.num_threads());
                    &owned
                };
                let shared = SharedSlice::new(y);
                let failed: Mutex<Option<MorpheusError>> = Mutex::new(None);
                pool.run_owned(owners, &|_, si| {
                    let r = self.shards[si].rows.clone();
                    // SAFETY: shard row ranges tile 0..nrows disjointly
                    // (validated in from_shards), and run_owned executes
                    // each shard index exactly once, so these mutable
                    // slices never overlap.
                    let ys = unsafe { shared.slice_mut(r.start * k, r.len() * k) };
                    if let Err(e) = run_one(si, ys) {
                        let mut g = failed.lock().unwrap();
                        if g.is_none() {
                            *g = Some(e);
                        }
                    }
                });
                match failed.into_inner().unwrap() {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
        }
    }
}

/// Contiguous nnz-weighted shard→worker ownership. Every worker index up
/// to `threads` gets a (possibly empty-by-omission) contiguous run; the
/// returned vector has at most `threads` non-empty ranges covering all
/// shards in order.
fn owner_ranges<V: Scalar>(shards: &[Shard<V>], threads: usize) -> Vec<Range<usize>> {
    // +1 so zero-nnz shards still carry weight and land in some range.
    weighted_partition_with(shards.len(), threads.max(1), |i| shards[i].matrix.nnz() + 1)
}

/// What a [`StreamingPartitioner`] yields: the partition plus the
/// per-shard CSR pieces, each tagged with its row range.
pub type StreamedParts<V> = (Partition, Vec<(Range<usize>, CsrMatrix<V>)>);

/// Builds a [`Partition`] and per-shard CSR pieces from a row-major entry
/// stream without ever materializing the whole matrix.
///
/// Rows must arrive in non-decreasing order; entries within a row may be
/// in any column order (each row is buffered, sorted, and duplicate
/// columns are summed when the row closes). A shard is sealed at a row
/// boundary once it holds at least `target_shard_nnz` entries, until
/// `max_shards - 1` shards are sealed; the remainder becomes the last
/// shard.
pub struct StreamingPartitioner<V: Scalar> {
    nrows: usize,
    ncols: usize,
    target_nnz: usize,
    max_shards: usize,
    cur_row: usize,
    row_buf: Vec<(usize, V)>,
    start_row: usize,
    offsets: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<V>,
    sealed: Vec<(Range<usize>, CsrMatrix<V>)>,
}

impl<V: Scalar> StreamingPartitioner<V> {
    /// A partitioner for an `nrows x ncols` stream under `cfg`'s shard
    /// sizing.
    pub fn new(nrows: usize, ncols: usize, cfg: &PartitionConfig) -> Self {
        StreamingPartitioner {
            nrows,
            ncols,
            target_nnz: cfg.target_shard_nnz.max(1),
            max_shards: cfg.max_shards.max(1),
            cur_row: 0,
            row_buf: Vec::new(),
            start_row: 0,
            offsets: vec![0],
            cols: Vec::new(),
            vals: Vec::new(),
            sealed: Vec::new(),
        }
    }

    /// Entries ingested so far (after duplicate merging in closed rows,
    /// before it in the open row).
    pub fn nnz(&self) -> usize {
        self.sealed.iter().map(|(_, c)| c.nnz()).sum::<usize>() + self.cols.len() + self.row_buf.len()
    }

    /// Shards sealed so far (the open shard is not counted).
    pub fn sealed_shards(&self) -> usize {
        self.sealed.len()
    }

    /// Feeds one entry. Rows must be non-decreasing across calls.
    pub fn push(&mut self, row: usize, col: usize, val: V) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(MorpheusError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.nrows, self.ncols),
            });
        }
        if row < self.cur_row {
            return Err(MorpheusError::InvalidStructure(format!(
                "streaming ingestion requires non-decreasing rows (row {row} after {})",
                self.cur_row
            )));
        }
        if row > self.cur_row {
            self.close_rows_through(row);
        }
        self.row_buf.push((col, val));
        Ok(())
    }

    /// Closes rows `cur_row..next` (flushing the open row buffer and
    /// emitting empty rows), sealing the open shard at any row boundary
    /// where it has reached the nnz target.
    fn close_rows_through(&mut self, next: usize) {
        while self.cur_row < next {
            if !self.row_buf.is_empty() {
                self.row_buf.sort_unstable_by_key(|&(c, _)| c);
                let mut merged: Vec<(usize, V)> = Vec::with_capacity(self.row_buf.len());
                for &(c, v) in &self.row_buf {
                    match merged.last_mut() {
                        Some(last) if last.0 == c => last.1 += v,
                        _ => merged.push((c, v)),
                    }
                }
                for (c, v) in merged {
                    self.cols.push(c);
                    self.vals.push(v);
                }
                self.row_buf.clear();
            }
            self.offsets.push(self.cols.len());
            self.cur_row += 1;
            if self.cols.len() >= self.target_nnz && self.sealed.len() + 1 < self.max_shards {
                self.seal();
            }
        }
    }

    /// Seals the open shard (rows `start_row..cur_row`) into a CSR piece.
    fn seal(&mut self) {
        let rows = self.start_row..self.cur_row;
        let offsets = std::mem::replace(&mut self.offsets, vec![0]);
        let cols = std::mem::take(&mut self.cols);
        let vals = std::mem::take(&mut self.vals);
        let csr = CsrMatrix::from_parts(rows.len(), self.ncols, offsets, cols, vals)
            .expect("streamed shard rows are sorted and merged");
        self.sealed.push((rows, csr));
        self.start_row = self.cur_row;
    }

    /// Closes remaining rows and returns the partition plus the per-shard
    /// CSR pieces, ready for [`PartitionedMatrix::assemble`].
    pub fn finish(mut self) -> Result<StreamedParts<V>> {
        self.close_rows_through(self.nrows);
        if self.start_row < self.nrows || self.sealed.is_empty() {
            self.seal();
        }
        let mut boundaries = Vec::with_capacity(self.sealed.len() + 1);
        boundaries.push(0);
        let mut shard_nnz = Vec::with_capacity(self.sealed.len());
        for (rows, csr) in &self.sealed {
            boundaries.push(rows.end);
            shard_nnz.push(csr.nnz());
        }
        let partition = Partition::from_boundaries(self.nrows, boundaries, shard_nnz)?;
        Ok((partition, self.sealed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::spmv::spmv_serial;

    fn hetero_coo(nrows: usize, hub_rows: usize, hub_deg: usize) -> CooMatrix<f64> {
        let mut b = crate::builder::CooBuilder::new(nrows, nrows);
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for r in 0..hub_rows {
            for j in 0..hub_deg {
                let c = (rng() as usize) % nrows;
                b.push(r, c, (j + 1) as f64 * 0.25).unwrap();
            }
        }
        for r in hub_rows..nrows {
            for d in -1i64..=1 {
                let c = r as i64 + d;
                if c >= 0 && (c as usize) < nrows {
                    b.push(r, c as usize, 1.0 + d as f64 * 0.5).unwrap();
                }
            }
        }
        b.build()
    }

    fn analysis_of(m: &DynamicMatrix<f64>) -> Analysis {
        let alpha = ConvertOptions::default().true_diag_alpha;
        Analysis::of_auto_with_hash(m, alpha, m.structure_hash())
    }

    #[test]
    fn partition_invariants_and_determinism() {
        let m = DynamicMatrix::from(hetero_coo(600, 40, 30));
        let a = analysis_of(&m);
        let cfg = PartitionConfig { target_shard_nnz: 300, regime_window: 32, ..Default::default() };
        let p1 = Partition::from_analysis(&a, &cfg);
        let p2 = Partition::from_analysis(&a, &cfg);
        assert_eq!(p1, p2, "partitioning must be deterministic");
        assert!(p1.num_shards() >= 2);
        assert_eq!(p1.boundaries()[0], 0);
        assert_eq!(*p1.boundaries().last().unwrap(), 600);
        assert!(p1.boundaries().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(p1.shard_nnz().iter().sum::<usize>(), m.nnz());
    }

    #[test]
    fn regime_refinement_snaps_to_hub_edge() {
        // 40 hub rows of ~30 nnz then a tridiagonal tail: the first interior
        // boundary should land exactly on the regime shift at row 40.
        let m = DynamicMatrix::from(hetero_coo(600, 40, 30));
        let a = analysis_of(&m);
        let cfg = PartitionConfig { target_shard_nnz: m.nnz() / 2, regime_window: 128, ..Default::default() };
        let p = Partition::from_analysis(&a, &cfg);
        assert!(
            p.boundaries().contains(&40),
            "expected a boundary at the hub/tail regime shift, got {:?}",
            p.boundaries()
        );
    }

    #[test]
    fn split_and_execute_matches_serial() {
        let m = DynamicMatrix::from(hetero_coo(500, 30, 25));
        let a = analysis_of(&m);
        let cfg = PartitionConfig { target_shard_nnz: 250, ..Default::default() };
        let p = Partition::from_analysis(&a, &cfg);
        let pm = PartitionedMatrix::build(&m, &p, &ConvertOptions::default(), 3, Some(&a), |_, _, sa| {
            // Alternate shard formats to exercise heterogeneous execution.
            if sa.stats.nnz % 2 == 0 {
                FormatId::Csr
            } else {
                FormatId::Ell
            }
        })
        .unwrap();
        assert_eq!(pm.nnz(), m.nnz());
        let x: Vec<f64> = (0..500).map(|i| (i as f64).sin()).collect();
        let mut want = vec![0.0; 500];
        spmv_serial(&m, &x, &mut want).unwrap();
        let mut got = vec![0.0; 500];
        pm.spmv_unpooled(&x, &mut got).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-12 * w.abs().max(1.0), "{g} vs {w}");
        }
        let pool = ThreadPool::new(3);
        let mut pooled = vec![1.0; 500];
        pm.spmv(&x, &mut pooled, &pool).unwrap();
        assert_eq!(pooled, got, "pooled and unpooled shard paths must be bitwise equal");
    }

    #[test]
    fn streaming_matches_batch() {
        let coo = hetero_coo(400, 20, 20);
        let m = DynamicMatrix::from(coo);
        let cfg = PartitionConfig { target_shard_nnz: 200, ..Default::default() };
        let mut sp = StreamingPartitioner::new(400, 400, &cfg);
        for_each_entry_row_major(&m, |r, c, v| sp.push(r, c, v).unwrap());
        let (partition, parts) = sp.finish().unwrap();
        assert!(partition.num_shards() >= 2);
        assert_eq!(partition.shard_nnz().iter().sum::<usize>(), m.nnz());
        let pm = PartitionedMatrix::assemble(400, parts, 2, |_, _, _| Ok(())).unwrap();
        let x = vec![0.5; 400];
        let mut want = vec![0.0; 400];
        spmv_serial(&m, &x, &mut want).unwrap();
        let mut got = vec![0.0; 400];
        pm.spmv_unpooled(&x, &mut got).unwrap();
        assert_eq!(got, want, "all-CSR streamed shards are bitwise equal to serial CSR-per-shard");
    }

    #[test]
    fn streaming_rejects_decreasing_rows_and_merges_duplicates() {
        let cfg = PartitionConfig::default();
        let mut sp = StreamingPartitioner::<f64>::new(4, 4, &cfg);
        sp.push(1, 2, 1.0).unwrap();
        assert!(sp.push(0, 0, 1.0).is_err());
        let mut sp = StreamingPartitioner::<f64>::new(2, 4, &cfg);
        sp.push(0, 3, 1.0).unwrap();
        sp.push(0, 1, 2.0).unwrap();
        sp.push(0, 3, 0.5).unwrap();
        let (_, parts) = sp.finish().unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].1.nnz(), 2, "duplicate columns merge");
    }

    #[test]
    fn degenerate_shapes() {
        // Empty matrix.
        let m = DynamicMatrix::from(CooMatrix::<f64>::from_triplets(0, 0, &[], &[], &[]).unwrap());
        let a = analysis_of(&m);
        let p = Partition::from_analysis(&a, &PartitionConfig::default());
        assert_eq!(p.num_shards(), 1);
        // Shard count request far above row count.
        let m = DynamicMatrix::from(hetero_coo(3, 1, 2));
        let a = analysis_of(&m);
        let cfg = PartitionConfig { max_shards: 16, target_shard_nnz: 1, ..Default::default() };
        let p = Partition::from_analysis(&a, &cfg);
        assert!(p.num_shards() <= 3);
        let pm = PartitionedMatrix::build(&m, &p, &ConvertOptions::default(), 8, Some(&a), |_, _, _| {
            FormatId::Csr
        })
        .unwrap();
        let x = vec![1.0; 3];
        let mut y = vec![9.0; 3];
        pm.spmv_unpooled(&x, &mut y).unwrap();
        let mut want = vec![0.0; 3];
        spmv_serial(&m, &x, &mut want).unwrap();
        assert_eq!(y, want);
    }
}
