//! BSR/BCSR: register-blocked compressed sparse row format.
//!
//! The matrix is tiled into `block_r x block_c` blocks; block rows store
//! their non-empty blocks CSR-style (`block_row_offsets` / `block_cols`)
//! with each block's values dense and row-major. Dense-block matrices (FEM
//! discretisations, multi-component PDEs) pay one column index per *block*
//! instead of one per entry — an `r*c`-fold index-traffic reduction — and
//! the fixed-trip-count block loops keep the right-hand side in registers.
//!
//! Structural occupancy inside a block is tracked by a per-block bitmask
//! (bit `rr * block_c + cc`), so explicitly stored zeros survive format
//! round-trips exactly like they do in CSR; padding slots hold `V::ZERO`
//! and are skipped by the mask on traversal, while SpMV kernels simply
//! multiply through them (a zero contribution) to keep the inner loops
//! branch-free.

use crate::error::MorpheusError;
use crate::format::FormatId;
use crate::rowmajor::RowMajor;
use crate::scalar::Scalar;
use crate::Result;

/// Block dimensions the tuner searches over (square blocks).
pub const BSR_BLOCK_DIMS: [usize; 3] = [2, 4, 8];

/// Register-blocked CSR sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BsrMatrix<V> {
    nrows: usize,
    ncols: usize,
    block_r: usize,
    block_c: usize,
    nnz: usize,
    block_row_offsets: Vec<usize>,
    block_cols: Vec<usize>,
    masks: Vec<u64>,
    values: Vec<V>,
}

/// Number of block rows covering `nrows` rows with blocks of `r` rows.
#[inline]
pub(crate) fn nblockrows(nrows: usize, r: usize) -> usize {
    nrows.div_ceil(r)
}

impl<V: Scalar> BsrMatrix<V> {
    /// An empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize, block_r: usize, block_c: usize) -> Self {
        BsrMatrix {
            nrows,
            ncols,
            block_r: block_r.max(1),
            block_c: block_c.max(1),
            nnz: 0,
            block_row_offsets: vec![0; nblockrows(nrows, block_r.max(1)) + 1],
            block_cols: Vec::new(),
            masks: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds from raw parts, validating the layout.
    ///
    /// Requirements: `block_r * block_c <= 64` (masks are one `u64` per
    /// block); offsets cover `ceil(nrows / block_r)` block rows and are
    /// non-decreasing; block columns are strictly increasing within each
    /// block row and in range; every block has a non-empty mask whose bits
    /// stay inside the logical matrix (tail blocks); `values` holds exactly
    /// `nblocks * block_r * block_c` slots with `V::ZERO` in padding slots.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        block_r: usize,
        block_c: usize,
        block_row_offsets: Vec<usize>,
        block_cols: Vec<usize>,
        masks: Vec<u64>,
        values: Vec<V>,
    ) -> Result<Self> {
        if block_r == 0 || block_c == 0 || block_r * block_c > 64 {
            return Err(MorpheusError::InvalidStructure(format!(
                "BSR block dims {block_r}x{block_c} invalid (need 1 <= r*c <= 64)"
            )));
        }
        let nbr = nblockrows(nrows, block_r);
        let nbc = nblockrows(ncols, block_c);
        if block_row_offsets.len() != nbr + 1 || block_row_offsets.first() != Some(&0) {
            return Err(MorpheusError::InvalidStructure(format!(
                "BSR offsets must have length {} and start at 0",
                nbr + 1
            )));
        }
        let nblocks = *block_row_offsets.last().unwrap();
        if block_cols.len() != nblocks
            || masks.len() != nblocks
            || values.len() != nblocks * block_r * block_c
        {
            return Err(MorpheusError::InvalidStructure(format!(
                "BSR arrays inconsistent: {nblocks} blocks, {} cols, {} masks, {} values",
                block_cols.len(),
                masks.len(),
                values.len()
            )));
        }
        let mut nnz = 0usize;
        for br in 0..nbr {
            let (lo, hi) = (block_row_offsets[br], block_row_offsets[br + 1]);
            if lo > hi || hi > nblocks {
                return Err(MorpheusError::InvalidStructure(format!(
                    "BSR offsets not monotone at block row {br}"
                )));
            }
            let rcount = block_r.min(nrows - br * block_r);
            let mut prev: Option<usize> = None;
            for b in lo..hi {
                let bc = block_cols[b];
                if bc >= nbc {
                    return Err(MorpheusError::IndexOutOfBounds {
                        index: (br * block_r, bc * block_c),
                        shape: (nrows, ncols),
                    });
                }
                if let Some(p) = prev {
                    if p >= bc {
                        return Err(MorpheusError::InvalidStructure(format!(
                            "BSR block row {br}: block columns not strictly increasing"
                        )));
                    }
                }
                prev = Some(bc);
                let mask = masks[b];
                if mask == 0 {
                    return Err(MorpheusError::InvalidStructure(format!(
                        "BSR block row {br}: empty block stored at block column {bc}"
                    )));
                }
                let ccount = block_c.min(ncols - bc * block_c);
                for rr in 0..block_r {
                    for cc in 0..block_c {
                        if mask >> (rr * block_c + cc) & 1 == 1 && (rr >= rcount || cc >= ccount) {
                            return Err(MorpheusError::InvalidStructure(format!(
                                "BSR block row {br}: mask bit outside the {nrows}x{ncols} matrix"
                            )));
                        }
                    }
                }
                nnz += mask.count_ones() as usize;
            }
        }
        Ok(BsrMatrix { nrows, ncols, block_r, block_c, nnz, block_row_offsets, block_cols, masks, values })
    }

    /// Builds from any row-major-walkable source (the registry conversion
    /// path: every format implements [`RowMajor`], so BSR is reachable from
    /// all of them without a COO hop).
    pub(crate) fn from_rowmajor(src: &dyn RowMajor<V>, ncols: usize, block_r: usize, block_c: usize) -> Self {
        let nrows = src.nrows();
        let (r, c) = (block_r.max(1), block_c.max(1));
        debug_assert!(r * c <= 64, "BSR block dims must satisfy r*c <= 64");
        let nbr = nblockrows(nrows, r);
        let mut offsets = Vec::with_capacity(nbr + 1);
        offsets.push(0usize);
        let mut block_cols: Vec<usize> = Vec::new();
        let mut masks: Vec<u64> = Vec::new();
        let mut values: Vec<V> = Vec::new();
        let mut nnz = 0usize;
        let mut bcols_scratch: Vec<usize> = Vec::new();
        for br in 0..nbr {
            let r0 = br * r;
            let rcount = r.min(nrows - r0);
            bcols_scratch.clear();
            for rr in 0..rcount {
                src.emit_row(r0 + rr, &mut |col, _| bcols_scratch.push(col / c));
            }
            bcols_scratch.sort_unstable();
            bcols_scratch.dedup();
            let base = block_cols.len();
            block_cols.extend_from_slice(&bcols_scratch);
            masks.resize(base + bcols_scratch.len(), 0u64);
            values.resize(values.len() + bcols_scratch.len() * r * c, V::ZERO);
            for rr in 0..rcount {
                src.emit_row(r0 + rr, &mut |col, v| {
                    let bi = base + bcols_scratch.binary_search(&(col / c)).unwrap();
                    let slot = rr * c + col % c;
                    masks[bi] |= 1u64 << slot;
                    values[bi * r * c + slot] = v;
                    nnz += 1;
                });
            }
            offsets.push(block_cols.len());
        }
        BsrMatrix {
            nrows,
            ncols,
            block_r: r,
            block_c: c,
            nnz,
            block_row_offsets: offsets,
            block_cols,
            masks,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Structural non-zeros (mask popcount; excludes block padding).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Format identifier ([`FormatId::Bsr`]).
    #[inline]
    pub fn format_id(&self) -> FormatId {
        FormatId::Bsr
    }

    /// Rows per block.
    #[inline]
    pub fn block_r(&self) -> usize {
        self.block_r
    }

    /// Columns per block.
    #[inline]
    pub fn block_c(&self) -> usize {
        self.block_c
    }

    /// Number of block rows (`ceil(nrows / block_r)`).
    #[inline]
    pub fn nblockrows(&self) -> usize {
        self.block_row_offsets.len() - 1
    }

    /// Number of stored blocks.
    #[inline]
    pub fn nblocks(&self) -> usize {
        self.block_cols.len()
    }

    /// Block-row offsets (`nblockrows + 1` entries).
    #[inline]
    pub fn block_row_offsets(&self) -> &[usize] {
        &self.block_row_offsets
    }

    /// Per-block block-column indices, ascending within each block row.
    #[inline]
    pub fn block_cols(&self) -> &[usize] {
        &self.block_cols
    }

    /// Per-block structural occupancy bitmaps (bit `rr * block_c + cc`).
    #[inline]
    pub fn masks(&self) -> &[u64] {
        &self.masks
    }

    /// Dense block values (`nblocks * block_r * block_c`, row-major per
    /// block); padding slots hold `V::ZERO`.
    #[inline]
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Stored entries of block row `br` (structural, over all its blocks).
    #[inline]
    pub fn block_row_nnz(&self, br: usize) -> usize {
        let (lo, hi) = (self.block_row_offsets[br], self.block_row_offsets[br + 1]);
        self.masks[lo..hi].iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Total allocated value slots including padding.
    #[inline]
    pub fn padded_len(&self) -> usize {
        self.values.len()
    }

    /// Bytes of heap storage the format occupies.
    pub fn storage_bytes(&self) -> usize {
        (self.block_row_offsets.len() + self.block_cols.len()) * std::mem::size_of::<usize>()
            + self.masks.len() * std::mem::size_of::<u64>()
            + self.values.len() * std::mem::size_of::<V>()
    }
}

impl<V: Scalar> RowMajor<V> for BsrMatrix<V> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn row_count(&self, r: usize) -> usize {
        let br = r / self.block_r;
        let rr = r % self.block_r;
        let row_bits = ((1u128 << self.block_c) - 1) as u64;
        let (lo, hi) = (self.block_row_offsets[br], self.block_row_offsets[br + 1]);
        self.masks[lo..hi].iter().map(|m| (m >> (rr * self.block_c) & row_bits).count_ones() as usize).sum()
    }

    fn emit_row(&self, r: usize, f: &mut dyn FnMut(usize, V)) {
        let br = r / self.block_r;
        let rr = r % self.block_r;
        let (rdim, cdim) = (self.block_r, self.block_c);
        for b in self.block_row_offsets[br]..self.block_row_offsets[br + 1] {
            let c0 = self.block_cols[b] * cdim;
            let mask = self.masks[b];
            let vals = &self.values[b * rdim * cdim..];
            for cc in 0..cdim {
                if mask >> (rr * cdim + cc) & 1 == 1 {
                    f(c0 + cc, vals[rr * cdim + cc]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::random_coo;

    fn sample() -> BsrMatrix<f64> {
        // 4x4, 2x2 blocks:
        // [1 2 | 0 0]
        // [0 3 | 0 0]
        // [----+----]
        // [0 0 | 4 0]
        // [5 0 | 0 6]
        let coo = crate::CooMatrix::from_triplets(
            4,
            4,
            &[0, 0, 1, 2, 3, 3],
            &[0, 1, 1, 2, 0, 3],
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap();
        BsrMatrix::from_rowmajor(&coo, 4, 2, 2)
    }

    #[test]
    fn builds_blocks_from_rowmajor() {
        let m = sample();
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.nblockrows(), 2);
        assert_eq!(m.nblocks(), 3);
        assert_eq!(m.block_row_offsets(), &[0, 1, 3]);
        assert_eq!(m.block_cols(), &[0, 0, 1]);
        // Block (0,0): entries (0,0) (0,1) (1,1) -> bits 0,1,3.
        assert_eq!(m.masks()[0], 0b1011);
        assert_eq!(m.block_row_nnz(0), 3);
        assert_eq!(m.block_row_nnz(1), 3);
    }

    #[test]
    fn rowmajor_walk_matches_source() {
        let coo = random_coo::<f64>(37, 29, 300, 11);
        let expect: Vec<(usize, usize, f64)> = coo.iter().collect();
        for &(r, c) in &[(2, 2), (4, 4), (8, 8), (2, 4), (3, 5)] {
            let m = BsrMatrix::from_rowmajor(&coo, 29, r, c);
            assert_eq!(m.nnz(), expect.len());
            let mut got = Vec::new();
            for row in 0..RowMajor::nrows(&m) {
                m.emit_row(row, &mut |c, v| got.push((row, c, v)));
            }
            assert_eq!(got, expect, "{r}x{c}");
        }
    }

    #[test]
    fn from_parts_validates() {
        let m = sample();
        let (nbr, nb) = (m.nblockrows(), m.nblocks());
        assert_eq!((nbr, nb), (2, 3));
        let rebuilt = BsrMatrix::from_parts(
            4,
            4,
            2,
            2,
            m.block_row_offsets().to_vec(),
            m.block_cols().to_vec(),
            m.masks().to_vec(),
            m.values().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, m);

        // Oversized block.
        assert!(BsrMatrix::<f64>::from_parts(4, 4, 16, 8, vec![0], vec![], vec![], vec![]).is_err());
        // Empty mask.
        assert!(BsrMatrix::<f64>::from_parts(2, 2, 2, 2, vec![0, 1], vec![0], vec![0], vec![0.0; 4]).is_err());
        // Mask bit outside a 3-row matrix's tail block.
        assert!(BsrMatrix::<f64>::from_parts(
            3,
            2,
            2,
            2,
            vec![0, 1, 2],
            vec![0, 0],
            vec![1, 1 << 2],
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0]
        )
        .is_err());
        // Unsorted block columns.
        assert!(BsrMatrix::<f64>::from_parts(2, 4, 2, 2, vec![0, 2], vec![1, 0], vec![1, 1], vec![0.0; 8])
            .is_err());
    }

    #[test]
    fn tail_blocks_clamp_to_shape() {
        // 5x5 with 4x4 blocks: tail block row/column of size 1.
        let coo = random_coo::<f64>(5, 5, 18, 3);
        let m = BsrMatrix::from_rowmajor(&coo, 5, 4, 4);
        assert_eq!(m.nblockrows(), 2);
        assert_eq!(m.nnz(), coo.nnz());
        let mut got = Vec::new();
        for row in 0..5 {
            m.emit_row(row, &mut |c, v| got.push((row, c, v)));
        }
        let expect: Vec<(usize, usize, f64)> = coo.iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_matrix() {
        let m = BsrMatrix::<f64>::new(0, 0, 4, 4);
        assert_eq!(m.nblockrows(), 0);
        assert_eq!(m.nnz(), 0);
        assert!(m.storage_bytes() > 0); // the offsets sentinel
    }
}
