//! MatrixMarket (`.mtx`) I/O.
//!
//! The paper's dataset is "~2200 real-valued, square matrices ... available
//! from the SuiteSparse Collection", which distributes MatrixMarket files.
//! This module reads and writes the coordinate flavour so real SuiteSparse
//! matrices can be dropped into the pipeline in place of (or alongside) the
//! synthetic corpus.

use std::io::{BufRead, Write};

use crate::builder::CooBuilder;
use crate::coo::CooMatrix;
use crate::error::MorpheusError;
use crate::scalar::Scalar;
use crate::Result;

/// Symmetry qualifier of a MatrixMarket file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Value field of a MatrixMarket file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

/// Reads a MatrixMarket coordinate matrix into COO form.
///
/// Supports `real`, `integer` and `pattern` fields (pattern entries get the
/// value 1) and `general`, `symmetric` and `skew-symmetric` qualifiers
/// (symmetric halves are expanded; skew diagonals are rejected per the
/// standard). `complex` matrices are rejected — the paper's dataset is
/// real-valued.
pub fn read_matrix_market<V: Scalar, R: BufRead>(reader: R) -> Result<CooMatrix<V>> {
    let mut lines = reader.lines().enumerate();

    // Header line.
    let (mut lineno, header) = loop {
        match lines.next() {
            Some((n, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (n + 1, line);
                }
            }
            None => return Err(MorpheusError::Parse { line: 0, msg: "empty file".into() }),
        }
    };
    let tokens: Vec<String> = header.split_whitespace().map(|t| t.to_ascii_lowercase()).collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(MorpheusError::Parse {
            line: lineno,
            msg: format!("not a MatrixMarket header: {header}"),
        });
    }
    if tokens[2] != "coordinate" {
        return Err(MorpheusError::Parse {
            line: lineno,
            msg: format!("unsupported format '{}' (only 'coordinate' is supported)", tokens[2]),
        });
    }
    let field = match tokens[3].as_str() {
        "real" | "double" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(MorpheusError::Parse { line: lineno, msg: format!("unsupported field '{other}'") })
        }
    };
    let symmetry = match tokens[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => {
            return Err(MorpheusError::Parse { line: lineno, msg: format!("unsupported symmetry '{other}'") })
        }
    };

    // Size line (skipping comments).
    let (nrows, ncols, declared_nnz) = loop {
        let (n, line) =
            lines.next().ok_or(MorpheusError::Parse { line: lineno, msg: "missing size line".into() })?;
        lineno = n + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(MorpheusError::Parse { line: lineno, msg: format!("bad size line: {t}") });
        }
        let parse = |s: &str| -> Result<usize> {
            s.parse().map_err(|_| MorpheusError::Parse { line: lineno, msg: format!("bad integer '{s}'") })
        };
        break (parse(parts[0])?, parse(parts[1])?, parse(parts[2])?);
    };

    let mut builder = CooBuilder::<V>::with_capacity(nrows, ncols, declared_nnz);
    let mut seen = 0usize;
    for (n, line) in lines {
        lineno = n + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        let expected_fields = match field {
            Field::Pattern => 2,
            _ => 3,
        };
        if parts.len() < expected_fields {
            return Err(MorpheusError::Parse { line: lineno, msg: format!("bad entry line: {t}") });
        }
        let r: usize = parts[0].parse().map_err(|_| MorpheusError::Parse {
            line: lineno,
            msg: format!("bad row index '{}'", parts[0]),
        })?;
        let c: usize = parts[1].parse().map_err(|_| MorpheusError::Parse {
            line: lineno,
            msg: format!("bad col index '{}'", parts[1]),
        })?;
        if r == 0 || c == 0 {
            return Err(MorpheusError::Parse {
                line: lineno,
                msg: "MatrixMarket indices are 1-based".into(),
            });
        }
        let v = match field {
            Field::Pattern => 1.0,
            _ => parts[2].parse::<f64>().map_err(|_| MorpheusError::Parse {
                line: lineno,
                msg: format!("bad value '{}'", parts[2]),
            })?,
        };
        let (r0, c0) = (r - 1, c - 1);
        builder.push(r0, c0, V::from_f64(v)).map_err(|_| MorpheusError::Parse {
            line: lineno,
            msg: format!("entry ({r}, {c}) outside declared shape {nrows}x{ncols}"),
        })?;
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric => {
                if r0 != c0 {
                    builder.push(c0, r0, V::from_f64(v)).expect("transposed entry in bounds");
                }
            }
            Symmetry::SkewSymmetric => {
                if r0 == c0 {
                    return Err(MorpheusError::Parse {
                        line: lineno,
                        msg: "skew-symmetric matrix with diagonal entry".into(),
                    });
                }
                builder.push(c0, r0, V::from_f64(-v)).expect("transposed entry in bounds");
            }
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(MorpheusError::Parse {
            line: lineno,
            msg: format!("declared {declared_nnz} entries but found {seen}"),
        });
    }
    Ok(builder.build())
}

/// Writes a COO matrix as a `general real coordinate` MatrixMarket file.
pub fn write_matrix_market<V: Scalar, W: Write>(mut writer: W, m: &CooMatrix<V>) -> Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by morpheus-rs")?;
    writeln!(writer, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(writer, "{} {} {:e}", r + 1, c + 1, v.to_f64())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 3\n\
                    1 1 2.5\n\
                    2 3 -1.0\n\
                    3 2 4.0\n";
        let m: CooMatrix<f64> = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 3);
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 0, 2.5), (1, 2, -1.0), (2, 1, 4.0)]);
    }

    #[test]
    fn read_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 1.0\n\
                    2 1 5.0\n";
        let m: CooMatrix<f64> = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(m.nnz(), 3);
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 0, 1.0), (0, 1, 5.0), (1, 0, 5.0)]);
    }

    #[test]
    fn read_skew_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n\
                    2 1 3.0\n";
        let m: CooMatrix<f64> = read_matrix_market(Cursor::new(text)).unwrap();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 1, -3.0), (1, 0, 3.0)]);
    }

    #[test]
    fn read_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n\
                    1 2\n\
                    2 1\n";
        let m: CooMatrix<f64> = read_matrix_market(Cursor::new(text)).unwrap();
        assert_eq!(m.nnz(), 2);
        assert!(m.iter().all(|(_, _, v)| v == 1.0));
    }

    #[test]
    fn rejects_malformed() {
        let cases = [
            ("", "empty"),
            ("%%MatrixMarket matrix array real general\n2 2 4\n", "array format"),
            ("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n", "complex"),
            ("%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 5.0\n", "0-based"),
            ("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 5.0\n", "count mismatch"),
            ("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 5.0\n", "out of bounds"),
            ("%%MatrixMarket matrix coordinate real general\nnot a size line\n", "bad size"),
            ("%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n1 1 2.0\n", "skew diagonal"),
        ];
        for (text, why) in cases {
            let r: Result<CooMatrix<f64>> = read_matrix_market(Cursor::new(text));
            assert!(r.is_err(), "expected failure: {why}");
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let m = crate::test_util::random_coo::<f64>(20, 17, 60, 5);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &m).unwrap();
        let back: CooMatrix<f64> = read_matrix_market(Cursor::new(buf)).unwrap();
        assert_eq!(back.nrows(), m.nrows());
        assert_eq!(back.ncols(), m.ncols());
        assert_eq!(back.nnz(), m.nnz());
        for ((r1, c1, v1), (r2, c2, v2)) in m.iter().zip(back.iter()) {
            assert_eq!((r1, c1), (r2, c2));
            assert!((v1 - v2).abs() < 1e-12 * (1.0 + v1.abs()));
        }
    }
}
